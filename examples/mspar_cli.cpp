// mspar_cli: the end-user command-line tool.
//
//   mspar_cli --db proteins.fasta --queries spectra.mgf --out hits.tsv
//             --algorithm a --p 16 --tau 10 --tolerance 3.0
//
// With --synth-db N and/or --synth-queries M it generates synthetic inputs
// instead of reading files (and writes them next to --out for inspection).
#include <fstream>
#include <iostream>

#include "core/pipeline.hpp"
#include "dbgen/protein_gen.hpp"
#include "dbgen/query_gen.hpp"
#include "io/fasta.hpp"
#include "io/mgf.hpp"
#include "io/results_io.hpp"
#include "util/cli.hpp"
#include "util/str.hpp"

int main(int argc, char** argv) {
  msp::Cli cli("mspar_cli", "parallel peptide identification (ICPP'09 repro)");
  cli.add_string("db", "", "input FASTA database (omit with --synth-db)");
  cli.add_string("queries", "", "input MGF spectra (omit with --synth-queries)");
  cli.add_string("out", "hits.tsv", "output TSV hit report");
  cli.add_string("algorithm", "a", "serial|a|b|master-worker|query");
  cli.add_int("p", 8, "simulated processor count");
  cli.add_int("tau", 10, "hits reported per query");
  cli.add_double("tolerance", 3.0, "parent mass tolerance (Da)");
  cli.add_string("model", "likelihood", "likelihood|hyperscore|shared-peak");
  cli.add_string("candidates", "prefix-suffix", "prefix-suffix|tryptic");
  cli.add_int("synth-db", 0, "generate this many synthetic proteins");
  cli.add_int("synth-queries", 0, "generate this many synthetic spectra");
  cli.add_int("seed", 1, "seed for synthetic inputs");
  try {
    if (!cli.parse(argc, argv)) return 0;

    // --- inputs ---
    std::string fasta_image;
    msp::ProteinDatabase db;
    if (cli.get_int("synth-db") > 0) {
      msp::ProteinGenOptions options = msp::microbial_like_options(1.0);
      options.sequence_count = static_cast<std::size_t>(cli.get_int("synth-db"));
      options.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
      db = msp::generate_proteins(options);
      fasta_image = msp::to_fasta_string(db);
    } else {
      if (cli.get_string("db").empty())
        throw msp::InvalidArgument("need --db FILE or --synth-db N");
      std::ifstream in(cli.get_string("db"));
      if (!in) throw msp::IoError("cannot open " + cli.get_string("db"));
      fasta_image.assign((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
      db = msp::read_fasta_string(fasta_image);
    }

    std::vector<msp::Spectrum> queries;
    if (cli.get_int("synth-queries") > 0) {
      msp::QueryGenOptions options;
      options.query_count =
          static_cast<std::size_t>(cli.get_int("synth-queries"));
      options.seed = static_cast<std::uint64_t>(cli.get_int("seed")) + 1;
      queries = msp::spectra_of(msp::generate_queries(db, options));
    } else {
      if (cli.get_string("queries").empty())
        throw msp::InvalidArgument("need --queries FILE or --synth-queries M");
      queries = msp::read_mgf_file(cli.get_string("queries"));
    }

    // --- configuration ---
    msp::PipelineOptions options;
    options.algorithm = msp::algorithm_from_name(cli.get_string("algorithm"));
    options.p = static_cast<int>(cli.get_int("p"));
    options.config.tau = static_cast<std::size_t>(cli.get_int("tau"));
    options.config.tolerance_da = cli.get_double("tolerance");
    const std::string model = cli.get_string("model");
    if (model == "likelihood")
      options.config.model = msp::ScoreModel::kLikelihood;
    else if (model == "hyperscore")
      options.config.model = msp::ScoreModel::kHyperscore;
    else if (model == "shared-peak")
      options.config.model = msp::ScoreModel::kSharedPeak;
    else
      throw msp::InvalidArgument("unknown --model " + model);
    const std::string candidates = cli.get_string("candidates");
    if (candidates == "tryptic")
      options.config.candidate_mode = msp::CandidateMode::kTryptic;
    else if (candidates != "prefix-suffix")
      throw msp::InvalidArgument("unknown --candidates " + candidates);

    // --- run ---
    std::cout << "searching " << msp::group_digits(db.sequence_count())
              << " proteins with " << queries.size() << " spectra ("
              << msp::algorithm_name(options.algorithm) << ", p=" << options.p
              << ")...\n";
    const msp::PipelineResult result =
        msp::run_pipeline(fasta_image, queries, options);

    const auto records = msp::to_hit_records(queries, result.hits);
    msp::write_hits_file(cli.get_string("out"), records);
    std::cout << "wrote " << records.size() << " hits to "
              << cli.get_string("out") << '\n';
    if (options.algorithm != msp::Algorithm::kSerial) {
      std::cout << "simulated run-time: " << result.run_seconds
                << " s on p=" << options.p << "; candidates evaluated: "
                << msp::group_digits(result.candidates) << '\n';
    }
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << '\n';
    return 1;
  }
}
