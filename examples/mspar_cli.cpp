// mspar_cli: the end-user command-line tool.
//
//   mspar_cli [search] --db proteins.fasta --queries spectra.mgf
//             --out hits.tsv --algorithm a --p 16 --tau 10 --tolerance 3.0
//   mspar_cli serve --synth-db 4000 --synth-queries 120 --rate 200
//             --mode multi --out hits.tsv
//   mspar_cli sched --synth-db 4000 --synth-queries 360 --p 16
//             --serve-queries 48 --out hits.tsv
//
// `search` (the default subcommand) answers the whole query set at once
// through one of the batch drivers; `serve` plays the queries as an online
// arrival stream through the continuous-ring service and reports virtual
// completion-latency percentiles; `sched` runs a two-tenant job mix (one
// serve session plus one backfilled batch job) through the cluster
// scheduler and reports per-tenant accounting. With --synth-db N and/or
// --synth-queries M any subcommand generates synthetic inputs instead of
// reading files.
//
// Exit codes: 0 on success (including --help), 2 for unknown subcommands,
// unknown flags, or malformed values (usage goes to stderr), 1 for runtime
// failures (unreadable inputs, unrecoverable fault schedules, ...).
#include <algorithm>
#include <fstream>
#include <iostream>
#include <string_view>

#include "core/candidate_record.hpp"
#include "core/pipeline.hpp"
#include "dbgen/protein_gen.hpp"
#include "dbgen/query_gen.hpp"
#include "io/fasta.hpp"
#include "io/mgf.hpp"
#include "io/results_io.hpp"
#include "mass/ptm.hpp"
#include "sched/scheduler.hpp"
#include "scoring/kernel.hpp"
#include "serve/service.hpp"
#include "util/cli.hpp"
#include "util/str.hpp"
#include "util/table.hpp"

namespace {

constexpr int kUsageError = 2;

void add_input_options(msp::Cli& cli) {
  cli.add_string("db", "", "input FASTA database (omit with --synth-db)");
  cli.add_string("queries", "",
                 "input MGF spectra (omit with --synth-queries)");
  cli.add_string("out", "hits.tsv", "output TSV hit report");
  cli.add_int("tau", 10, "hits reported per query");
  cli.add_double("tolerance", 3.0, "parent mass tolerance (Da)");
  cli.add_string("model", "likelihood",
                 "likelihood|hyperscore|shared-peak|xcorr");
  cli.add_string("score-model", "",
                 "alias of --model (takes precedence when set)");
  cli.add_string("scoring-backend", "auto",
                 "scoring kernel backend: auto|scalar|simd (simd requires a "
                 "build with -DMSPAR_SIMD=ON; results are bit-identical "
                 "either way)");
  cli.add_double("open-window-da", 0.0,
                 "widen the precursor window by this many Da on each side "
                 "(open search; 0 = narrow)");
  cli.add_string("ptm-set", "",
                 "comma-separated variable modifications widening the "
                 "window: phospho-s|phospho-t|phospho-st|oxidation-m|"
                 "acetyl-k");
  cli.add_int("synth-db", 0, "generate this many synthetic proteins");
  cli.add_int("synth-queries", 0, "generate this many synthetic spectra");
  cli.add_int("seed", 1, "seed for synthetic inputs");
}

/// Parse --ptm-set into Ptm rules; unknown names are usage errors.
std::vector<msp::Ptm> ptms_from_cli(const msp::Cli& cli) {
  std::vector<msp::Ptm> rules;
  for (const std::string& name : msp::split(cli.get_string("ptm-set"), ',')) {
    if (name.empty()) continue;
    if (name == "phospho-s") {
      rules.push_back(msp::ptm_phospho_s());
    } else if (name == "phospho-t") {
      rules.push_back(msp::ptm_phospho_t());
    } else if (name == "phospho-st") {
      rules.push_back(msp::ptm_phospho_s());
      rules.push_back(msp::ptm_phospho_t());
    } else if (name == "oxidation-m") {
      rules.push_back(msp::ptm_oxidation_m());
    } else if (name == "acetyl-k") {
      rules.push_back(msp::ptm_acetyl_k());
    } else {
      throw msp::InvalidArgument("unknown --ptm-set entry '" + name + "'");
    }
  }
  return rules;
}

/// Apply the shared open-search flags onto a SearchConfig.
void apply_open_options(const msp::Cli& cli, msp::SearchConfig& config) {
  config.open_window_da = cli.get_double("open-window-da");
  if (config.open_window_da < 0.0)
    throw msp::InvalidArgument("--open-window-da must be non-negative");
  config.ptms = ptms_from_cli(cli);
}

struct Inputs {
  std::string fasta_image;
  msp::ProteinDatabase db;
  std::vector<msp::Spectrum> queries;
};

Inputs load_inputs(const msp::Cli& cli) {
  Inputs inputs;
  if (cli.get_int("synth-db") > 0) {
    msp::ProteinGenOptions options = msp::microbial_like_options(1.0);
    options.sequence_count = static_cast<std::size_t>(cli.get_int("synth-db"));
    options.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
    inputs.db = msp::generate_proteins(options);
    inputs.fasta_image = msp::to_fasta_string(inputs.db);
  } else {
    if (cli.get_string("db").empty())
      throw msp::InvalidArgument("need --db FILE or --synth-db N");
    std::ifstream in(cli.get_string("db"));
    if (!in) throw msp::IoError("cannot open " + cli.get_string("db"));
    inputs.fasta_image.assign((std::istreambuf_iterator<char>(in)),
                              std::istreambuf_iterator<char>());
    inputs.db = msp::read_fasta_string(inputs.fasta_image);
  }

  if (cli.get_int("synth-queries") > 0) {
    msp::QueryGenOptions options;
    options.query_count =
        static_cast<std::size_t>(cli.get_int("synth-queries"));
    options.seed = static_cast<std::uint64_t>(cli.get_int("seed")) + 1;
    inputs.queries = msp::spectra_of(msp::generate_queries(inputs.db, options));
  } else {
    if (cli.get_string("queries").empty())
      throw msp::InvalidArgument("need --queries FILE or --synth-queries M");
    inputs.queries = msp::read_mgf_file(cli.get_string("queries"));
  }
  return inputs;
}

msp::ScoreModel score_model_from_cli(const msp::Cli& cli) {
  const std::string alias = cli.get_string("score-model");
  const std::string model = alias.empty() ? cli.get_string("model") : alias;
  if (model == "likelihood") return msp::ScoreModel::kLikelihood;
  if (model == "hyperscore") return msp::ScoreModel::kHyperscore;
  if (model == "shared-peak") return msp::ScoreModel::kSharedPeak;
  if (model == "xcorr") return msp::ScoreModel::kXcorr;
  throw msp::InvalidArgument("unknown --model " + model);
}

/// Apply --scoring-backend to the process-global kernel backend switch.
void apply_scoring_backend(const msp::Cli& cli) {
  const std::string backend = cli.get_string("scoring-backend");
  if (backend == "auto") {
    msp::set_scoring_backend(msp::ScoringBackend::kAuto);
  } else if (backend == "scalar") {
    msp::set_scoring_backend(msp::ScoringBackend::kScalar);
  } else if (backend == "simd") {
    msp::set_scoring_backend(msp::ScoringBackend::kSimd);
  } else {
    throw msp::InvalidArgument("unknown --scoring-backend " + backend);
  }
}

int run_search(int argc, const char* const* argv) {
  msp::Cli cli("mspar_cli search",
               "parallel peptide identification (ICPP'09 repro)");
  add_input_options(cli);
  cli.add_string("algorithm", "a", "serial|a|b|master-worker|query");
  cli.add_int("p", 8, "simulated processor count");
  cli.add_string("candidates", "prefix-suffix", "prefix-suffix|tryptic");
  if (!cli.parse(argc, argv)) return 0;

  const Inputs inputs = load_inputs(cli);

  msp::PipelineOptions options;
  options.algorithm = msp::algorithm_from_name(cli.get_string("algorithm"));
  options.p = static_cast<int>(cli.get_int("p"));
  options.config.tau = static_cast<std::size_t>(cli.get_int("tau"));
  options.config.tolerance_da = cli.get_double("tolerance");
  options.config.model = score_model_from_cli(cli);
  apply_scoring_backend(cli);
  apply_open_options(cli, options.config);
  const std::string candidates = cli.get_string("candidates");
  if (candidates == "tryptic")
    options.config.candidate_mode = msp::CandidateMode::kTryptic;
  else if (candidates != "prefix-suffix")
    throw msp::InvalidArgument("unknown --candidates " + candidates);

  std::cout << "searching " << msp::group_digits(inputs.db.sequence_count())
            << " proteins with " << inputs.queries.size() << " spectra ("
            << msp::algorithm_name(options.algorithm) << ", p=" << options.p
            << ")...\n";
  const msp::PipelineResult result =
      msp::run_pipeline(inputs.fasta_image, inputs.queries, options);

  const auto records = msp::to_hit_records(inputs.queries, result.hits);
  msp::write_hits_file(cli.get_string("out"), records);
  std::cout << "wrote " << records.size() << " hits to "
            << cli.get_string("out") << '\n';
  if (options.algorithm != msp::Algorithm::kSerial) {
    std::cout << "simulated run-time: " << result.run_seconds
              << " s on p=" << options.p << "; candidates evaluated: "
              << msp::group_digits(result.candidates) << '\n';
  }
  return 0;
}

int run_serve(int argc, const char* const* argv) {
  msp::Cli cli("mspar_cli serve",
               "online peptide-identification service (virtual clock)");
  add_input_options(cli);
  cli.add_int("p", 8, "simulated processor count");
  cli.add_string("arrival", "poisson", "uniform|poisson|burst");
  cli.add_double("rate", 200.0, "arrival rate (queries per virtual second)");
  cli.add_string("mode", "multi",
                 "dispatch: multi (continuous ring) | naive (batch-at-a-time)");
  cli.add_int("batch", 8, "batcher size-close threshold");
  cli.add_double("wait-ms", 20.0, "batcher deadline close (virtual ms)");
  cli.add_int("outstanding", 512, "admission cap (queued + in-flight)");
  cli.add_string("overload", "delay", "overload policy: shed|delay");
  cli.add_flag("no-routing",
               "disable mass-aware shard routing (visit every band; "
               "hits are bit-identical either way)");
  if (!cli.parse(argc, argv)) return 0;

  const Inputs inputs = load_inputs(cli);

  msp::SearchConfig config;
  config.tau = static_cast<std::size_t>(cli.get_int("tau"));
  config.tolerance_da = cli.get_double("tolerance");
  config.model = score_model_from_cli(cli);
  apply_scoring_backend(cli);
  apply_open_options(cli, config);
  // The banded serving ring stores candidates as fixed-width records
  // (core/candidate_record.hpp), which cap peptide length at 63 residues.
  const std::size_t record_cap = sizeof(msp::CandidateRecord{}.peptide) - 1;
  if (config.max_candidate_length > record_cap) {
    std::cout << "note: serving mode caps candidate length at " << record_cap
              << " residues (was " << config.max_candidate_length << ")\n";
    config.max_candidate_length = record_cap;
  }

  msp::serve::ServiceOptions options;
  options.arrivals.kind =
      msp::serve::arrival_kind_from_name(cli.get_string("arrival"));
  options.arrivals.rate_qps = cli.get_double("rate");
  options.arrivals.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  options.batch.max_batch = static_cast<std::size_t>(cli.get_int("batch"));
  options.batch.max_wait_s = cli.get_double("wait-ms") * 1e-3;
  options.admission.max_outstanding =
      static_cast<std::size_t>(cli.get_int("outstanding"));
  options.admission.overload =
      msp::serve::overload_policy_from_name(cli.get_string("overload"));
  options.mode = msp::serve::dispatch_mode_from_name(cli.get_string("mode"));
  options.mass_routing = !cli.flag("no-routing");

  std::cout << "serving " << inputs.queries.size() << " spectra at "
            << options.arrivals.rate_qps << " q/s against "
            << msp::group_digits(inputs.db.sequence_count()) << " proteins ("
            << msp::serve::dispatch_mode_name(options.mode)
            << ", p=" << cli.get_int("p") << ")...\n";
  const msp::sim::Runtime runtime(static_cast<int>(cli.get_int("p")));
  const msp::serve::ServiceResult result = msp::serve::run_service(
      runtime, inputs.fasta_image, inputs.queries, config, options);

  const auto records = msp::to_hit_records(inputs.queries, result.hits);
  msp::write_hits_file(cli.get_string("out"), records);
  std::cout << "wrote " << records.size() << " hits to "
            << cli.get_string("out") << '\n';
  std::cout << "completed " << result.completed << "/"
            << inputs.queries.size() << " queries (" << result.shed
            << " shed) in " << result.batches << " batches, "
            << result.ring_steps << " ring steps\n";
  if (options.mass_routing)
    std::cout << "routing: skipped " << result.steps_skipped << "/"
              << result.steps_visited + result.steps_skipped
              << " scoring slots (skip ratio "
              << msp::Table::cell(result.skip_ratio, 2) << ")\n";
  std::cout << "throughput: " << msp::Table::cell(result.throughput_qps, 1)
            << " q/s; latency p50/p95/p99: "
            << msp::Table::cell(result.latency.p50) << "/"
            << msp::Table::cell(result.latency.p95) << "/"
            << msp::Table::cell(result.latency.p99) << " s (virtual)\n";
  return 0;
}

int run_sched(int argc, const char* const* argv) {
  msp::Cli cli("mspar_cli sched",
               "multi-tenant scheduler: serve session + backfilled batch job");
  add_input_options(cli);
  cli.add_int("p", 8, "simulated processor count");
  cli.add_int("serve-queries", 0,
              "queries owned by the serve tenant (0 = one third)");
  cli.add_string("arrival", "burst", "uniform|poisson|burst");
  cli.add_double("rate", 200.0, "arrival rate (queries per virtual second)");
  cli.add_int("burst", 8, "serve arrivals per burst");
  cli.add_double("burst-gap-ms", 200.0, "virtual ms between serve bursts");
  cli.add_int("chunk", 8, "batch queries per backfill chunk");
  cli.add_int("inflight-chunks", 2, "max batch chunks in flight");
  cli.add_flag("no-backfill",
               "strict partition: batch waits until serve drains");
  cli.add_flag("no-preempt", "never evict batch chunks for serve batches");
  if (!cli.parse(argc, argv)) return 0;

  const Inputs inputs = load_inputs(cli);

  msp::SearchConfig config;
  config.tau = static_cast<std::size_t>(cli.get_int("tau"));
  config.tolerance_da = cli.get_double("tolerance");
  config.model = score_model_from_cli(cli);
  apply_scoring_backend(cli);
  apply_open_options(cli, config);
  const std::size_t record_cap = sizeof(msp::CandidateRecord{}.peptide) - 1;
  if (config.max_candidate_length > record_cap)
    config.max_candidate_length = record_cap;

  const std::size_t total = inputs.queries.size();
  std::size_t serve_count =
      static_cast<std::size_t>(cli.get_int("serve-queries"));
  if (serve_count == 0) serve_count = total / 3;
  if (serve_count == 0 || serve_count >= total)
    throw msp::InvalidArgument(
        "--serve-queries must leave queries for both tenants");

  msp::sched::SchedOptions options;
  options.tenants = {{"frontend", 2.0, 0}, {"analytics", 1.0, 0}};
  options.backfill = !cli.flag("no-backfill");
  options.preempt = !cli.flag("no-preempt");
  options.chunk_queries = static_cast<std::size_t>(cli.get_int("chunk"));
  options.max_inflight_chunks =
      static_cast<std::size_t>(cli.get_int("inflight-chunks"));

  msp::sched::JobSpec serve_job;
  serve_job.name = "stream";
  serve_job.tenant = "frontend";
  serve_job.kind = msp::sched::JobKind::kServe;
  serve_job.priority = msp::sched::Priority::kHigh;
  serve_job.submit_s = 0.0;
  serve_job.query_begin = 0;
  serve_job.query_end = serve_count;
  serve_job.arrivals.kind =
      msp::serve::arrival_kind_from_name(cli.get_string("arrival"));
  serve_job.arrivals.rate_qps = cli.get_double("rate");
  serve_job.arrivals.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  serve_job.arrivals.burst_size = static_cast<std::size_t>(cli.get_int("burst"));
  serve_job.arrivals.burst_gap_s = cli.get_double("burst-gap-ms") * 1e-3;
  serve_job.batch.max_batch = serve_job.arrivals.burst_size;
  options.jobs.push_back(serve_job);

  msp::sched::JobSpec batch_job;
  batch_job.name = "scan";
  batch_job.tenant = "analytics";
  batch_job.kind = msp::sched::JobKind::kBatch;
  batch_job.priority = msp::sched::Priority::kLow;
  batch_job.submit_s = 0.0;
  batch_job.query_begin = serve_count;
  batch_job.query_end = total;
  options.jobs.push_back(batch_job);

  std::cout << "scheduling " << serve_count << " serve + "
            << total - serve_count << " batch queries against "
            << msp::group_digits(inputs.db.sequence_count()) << " proteins (p="
            << cli.get_int("p") << ", backfill "
            << (options.backfill ? "on" : "off") << ", preempt "
            << (options.preempt ? "on" : "off") << ")...\n";
  const msp::sim::Runtime runtime(static_cast<int>(cli.get_int("p")));
  const msp::sched::SchedResult result = msp::sched::run_sched(
      runtime, inputs.fasta_image, inputs.queries, config, options);

  const auto records = msp::to_hit_records(inputs.queries, result.hits);
  msp::write_hits_file(cli.get_string("out"), records);
  std::cout << "wrote " << records.size() << " hits to "
            << cli.get_string("out") << '\n';
  std::cout << "completed " << result.completed << "/" << total
            << " queries (" << result.shed << " shed) in " << result.batches
            << " ring flights, " << result.ring_steps << " steps; "
            << result.backfill_chunks << " backfill chunks, "
            << result.preemptions << " preemptions\n";
  std::cout << "makespan " << msp::Table::cell(result.makespan_s)
            << " s (virtual); backfill busy "
            << msp::Table::cell(result.backfill_busy_s) << " s\n";

  msp::Table table({"tenant", "jobs", "done", "shed", "chunks", "preempt",
                    "usage", "q/s", "p99 (s)"});
  for (const msp::sched::TenantAccounting& tenant : result.tenants) {
    table.add_row({tenant.name, msp::Table::cell(tenant.jobs_completed),
                   msp::Table::cell(tenant.queries_completed),
                   msp::Table::cell(tenant.queries_shed),
                   msp::Table::cell(tenant.backfill_chunks),
                   msp::Table::cell(tenant.preemptions),
                   msp::Table::cell(tenant.usage_end, 1),
                   msp::Table::cell(tenant.throughput_qps, 1),
                   tenant.serve_latency.count == 0
                       ? std::string("-")
                       : msp::Table::cell(tenant.serve_latency.p99)});
  }
  table.print(std::cout);
  return 0;
}

/// The subcommand registry: the single source of truth main() dispatches
/// from and print_usage() renders, so the usage text can never drift from
/// the set of subcommands that actually parse.
struct Subcommand {
  const char* name;
  const char* summary;
  int (*run)(int argc, const char* const* argv);
};

constexpr Subcommand kSubcommands[] = {
    {"search", "one-shot batch identification (default subcommand)",
     run_search},
    {"serve", "online arrival-stream service with latency accounting",
     run_serve},
    {"sched", "multi-tenant job mix through the cluster scheduler", run_sched},
};

void print_usage(std::ostream& os) {
  os << "usage: mspar_cli [";
  std::size_t width = 0;
  for (const Subcommand& sub : kSubcommands) {
    if (&sub != kSubcommands) os << '|';
    os << sub.name;
    width = std::max(width, std::string_view(sub.name).size());
  }
  os << "] [--options]\n";
  for (const Subcommand& sub : kSubcommands)
    os << "  " << sub.name << std::string(width - std::string_view(sub.name).size(), ' ')
       << "   " << sub.summary << '\n';
  os << "run 'mspar_cli <subcommand> --help' for the subcommand's options\n";
}

}  // namespace

int main(int argc, char** argv) {
  // Optional leading subcommand; bare flags mean `search` (the historical
  // interface). Everything after the subcommand is parsed by it.
  std::string command = "search";
  int skip = 0;
  if (argc > 1 && argv[1][0] != '-') {
    command = argv[1];
    skip = 1;
  }

  std::vector<const char*> args;
  args.push_back(argv[0]);
  for (int i = 1 + skip; i < argc; ++i) args.push_back(argv[i]);
  const int sub_argc = static_cast<int>(args.size());

  try {
    for (const Subcommand& sub : kSubcommands)
      if (command == sub.name) return sub.run(sub_argc, args.data());
    std::cerr << "error: unknown subcommand '" << command << "'\n";
    print_usage(std::cerr);
    return kUsageError;
  } catch (const msp::InvalidArgument& error) {
    std::cerr << "error: " << error.what() << '\n';
    print_usage(std::cerr);
    return kUsageError;
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << '\n';
    return 1;
  }
}
