// De novo sequencing vs database search — the two complementary approaches
// of the paper's related work (Section I-A). Database search "provides an
// independent evidence of the peptide" but needs the organism's sequences;
// de novo needs no database but "has traditionally been handicapped by the
// large number of peaks that can be missing from an experimental spectrum".
// This example measures both claims on the same spectra.
#include <iostream>

#include "core/search_engine.hpp"
#include "denovo/sequencer.hpp"
#include "dbgen/protein_gen.hpp"
#include "dbgen/query_gen.hpp"
#include "util/table.hpp"

int main() {
  using namespace msp;

  ProteinGenOptions db_options = microbial_like_options(1.0);
  db_options.sequence_count = 2000;
  const ProteinDatabase db = generate_proteins(db_options);

  SearchConfig config;
  config.tau = 1;
  const SearchEngine engine(config);

  Table table({"peak dropout", "database search (top-1 correct)",
               "de novo (complete paths)", "de novo ladder agreement"});

  for (double dropout : {0.0, 0.15, 0.3, 0.45}) {
    QueryGenOptions q_options;
    q_options.query_count = 30;
    q_options.seed = 11 + static_cast<std::uint64_t>(dropout * 100);
    q_options.noise.peak_dropout = dropout;
    q_options.noise.mz_sigma_da = 0.05;
    q_options.noise.noise_peaks_per_100da = 0.5;
    q_options.noise.precursor_sigma_da = 0.02;  // de novo needs this accurate
    const auto generated = generate_queries(db, q_options);
    const auto queries = spectra_of(generated);

    // Database search.
    const QueryHits hits = engine.search(db, queries);
    std::size_t db_correct = 0;
    for (std::size_t q = 0; q < queries.size(); ++q)
      if (!hits[q].empty() &&
          (hits[q][0].peptide.find(generated[q].true_peptide) !=
               std::string::npos ||
           generated[q].true_peptide.find(hits[q][0].peptide) !=
               std::string::npos))
        ++db_correct;

    // De novo.
    std::size_t complete = 0;
    double agreement_total = 0.0;
    for (std::size_t q = 0; q < queries.size(); ++q) {
      const denovo::DeNovoResult result =
          denovo::sequence_peptide(queries[q]);
      if (result.complete) ++complete;
      agreement_total +=
          result.complete
              ? denovo::ladder_agreement(result.sequence,
                                         generated[q].true_peptide)
              : 0.0;
    }

    table.add_row({Table::cell(dropout, 2),
                   std::to_string(db_correct) + "/30",
                   std::to_string(complete) + "/30",
                   Table::cell(agreement_total / 30.0, 2)});
  }

  std::cout << "== De novo vs database search as fragment peaks go missing ==\n";
  table.print(std::cout);
  std::cout << "\nThe paper's related-work claims, measured: database search "
               "degrades gracefully\nwith missing peaks (the parent-mass "
               "window plus statistical scoring carry it),\nwhile de novo "
               "reconstruction collapses — its paths literally break.\n";
  return 0;
}
