// Using the simmpi substrate directly: a miniature "hello, distributed
// memory" showing the primitives the search algorithms are built from —
// collectives, one-sided windows with masked prefetch, and the virtual-time
// performance report. Useful as a template for building other simulated
// parallel algorithms on this runtime.
#include <iostream>
#include <numeric>

#include "simmpi/runtime.hpp"
#include "util/table.hpp"

int main() {
  using namespace msp;

  sim::NetworkModel network;     // 8 ranks/node, gigabit-like defaults
  sim::Runtime runtime(16, network);

  std::cout << "simulated cluster: p=16, " << network.ranks_per_node
            << " ranks/node\n\n";

  // Each rank owns a data shard; the job is a ring reduction where every
  // rank must see every shard (the skeleton of the paper's Algorithm A).
  const sim::RunReport report = runtime.run([&](sim::Comm& comm) {
    const int p = comm.size();
    const int rank = comm.rank();

    // Local shard: 64 KiB of rank-stamped bytes.
    std::vector<char> shard(64 * 1024, static_cast<char>(rank));
    sim::Window window(comm, shard);

    // Ring rotation with masked prefetch: request the next shard, do this
    // iteration's "compute", then complete the request.
    std::uint64_t checksum = 0;
    std::vector<char> incoming;
    std::vector<char> current = shard;
    for (int s = 0; s < p; ++s) {
      sim::RmaRequest prefetch;
      if (s + 1 < p)
        prefetch = window.rget((rank + s + 1) % p, incoming,
                               network.concurrent_pulls(p));
      // "Compute": checksum the current shard; charge modeled time.
      checksum += static_cast<std::uint64_t>(
          std::accumulate(current.begin(), current.end(), 0L));
      comm.clock().charge_compute(2e-3);
      if (s + 1 < p) {
        window.wait(prefetch);
        std::swap(current, incoming);
      }
      window.fence();
    }

    // Everyone must agree on the global checksum.
    const double global = comm.allreduce_max(static_cast<double>(checksum));
    if (global != static_cast<double>(checksum))
      throw Error("checksum mismatch — ring rotation lost a shard");
    comm.bump("shards_seen", static_cast<std::uint64_t>(p));
  });

  std::cout << "every rank saw " << report.sum_counter("shards_seen") / 16
            << " shards; run report:\n\n";
  Table table({"rank", "total (s)", "compute (s)", "residual comm (s)",
               "sync wait (s)"});
  for (const auto& rank : report.ranks) {
    if (rank.rank % 4 != 0) continue;  // sample a few rows
    table.add_row({std::to_string(rank.rank),
                   Table::cell(rank.total_time, 4),
                   Table::cell(rank.compute_seconds, 4),
                   Table::cell(rank.residual_comm_seconds, 4),
                   Table::cell(rank.sync_wait_seconds, 4)});
  }
  table.print(std::cout);
  std::cout << "\nparallel run-time: " << report.total_time()
            << " s (virtual)\n";
  std::cout << "mean residual/compute: " << report.mean_residual_over_compute()
            << '\n';
  return 0;
}
