// Using the simmpi substrate directly: a miniature "hello, distributed
// memory" showing the primitives the search algorithms are built from —
// collectives, one-sided windows with masked prefetch, and the virtual-time
// performance report — then the same job re-run on a degraded cluster via
// the fault-injection layer (simmpi/faults.hpp). Useful as a template for
// building other simulated parallel algorithms on this runtime.
#include <fstream>
#include <iostream>
#include <numeric>

#include "simmpi/runtime.hpp"
#include "simmpi/trace_validate.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

// The ring-rotation job, factored out so the healthy and the degraded
// cluster run the byte-identical program.
void ring_job(msp::sim::Comm& comm, const msp::sim::NetworkModel& network) {
  using namespace msp;
  const int p = comm.size();
  const int rank = comm.rank();

  std::vector<char> shard(64 * 1024, static_cast<char>(rank));
  sim::Window window(comm, shard);

  std::uint64_t checksum = 0;
  std::vector<char> incoming;
  std::vector<char> current = shard;
  for (int s = 0; s < p; ++s) {
    comm.trace_mark("ring step " + std::to_string(s));
    sim::RmaRequest prefetch;
    if (s + 1 < p)
      prefetch = window.rget((rank + s + 1) % p, incoming,
                             network.concurrent_pulls(p));
    checksum += static_cast<std::uint64_t>(
        std::accumulate(current.begin(), current.end(), 0L));
    comm.clock().charge_compute(2e-3);
    if (s + 1 < p) {
      window.wait(prefetch);
      std::swap(current, incoming);
    }
    window.fence();
  }

  const double global = comm.allreduce_max(static_cast<double>(checksum));
  if (global != static_cast<double>(checksum))
    throw Error("checksum mismatch — ring rotation lost a shard");
  comm.bump("shards_seen", static_cast<std::uint64_t>(p));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace msp;

  Cli cli("cluster_sim",
          "simmpi primer: ring job on a healthy and a degraded cluster");
  cli.add_string("trace-out", "",
                 "write a Chrome trace-event JSON of the healthy run here "
                 "(plus <path>.iterations.csv); open in Perfetto");
  if (!cli.parse(argc, argv)) return 0;
  const std::string trace_out = cli.get_string("trace-out");

  sim::NetworkModel network;     // 8 ranks/node, gigabit-like defaults
  sim::Runtime runtime(16, network);
  if (!trace_out.empty()) runtime.enable_tracing();

  std::cout << "simulated cluster: p=16, " << network.ranks_per_node
            << " ranks/node\n\n";

  // Each rank owns a data shard; the job is a ring reduction where every
  // rank must see every shard (the skeleton of the paper's Algorithm A).
  const sim::RunReport report =
      runtime.run([&](sim::Comm& comm) { ring_job(comm, network); });

  if (!trace_out.empty()) {
    const std::string json = report.to_chrome_trace();
    const std::string problem = sim::validate_chrome_trace(json);
    if (!problem.empty()) {
      std::cerr << "trace validation failed: " << problem << '\n';
      return 1;
    }
    std::ofstream(trace_out, std::ios::binary) << json;
    std::ofstream(trace_out + ".iterations.csv", std::ios::binary)
        << report.to_iteration_csv();
    std::cout << "trace written to " << trace_out << " (validated; load in "
              << "chrome://tracing or https://ui.perfetto.dev)\n"
              << "masking efficiency: " << report.masking_efficiency()
              << ", estimated masking saving: "
              << report.masking_saving_estimate() << "\n\n";
  }

  std::cout << "every rank saw " << report.sum_counter("shards_seen") / 16
            << " shards; run report:\n\n";
  Table table({"rank", "total (s)", "compute (s)", "residual comm (s)",
               "sync wait (s)"});
  for (const auto& rank : report.ranks) {
    if (rank.rank % 4 != 0) continue;  // sample a few rows
    table.add_row({std::to_string(rank.rank),
                   Table::cell(rank.total_time, 4),
                   Table::cell(rank.compute_seconds, 4),
                   Table::cell(rank.residual_comm_seconds, 4),
                   Table::cell(rank.sync_wait_seconds, 4)});
  }
  table.print(std::cout);
  std::cout << "\nparallel run-time: " << report.total_time()
            << " s (virtual)\n";
  std::cout << "mean residual/compute: " << report.mean_residual_over_compute()
            << '\n';

  // ---- the same job on a degraded cluster ----
  // A deterministic fault schedule: rank 5 runs 4x slower (and its link at
  // half speed), and rank 9's first two transfers time out and are retried
  // with exponential backoff. Same schedule → same virtual times, every run.
  sim::FaultModel faults;
  faults.straggle(5, 4.0, 2.0).fail_transfers(9, {0, 1});
  sim::Runtime degraded(16, network, {}, faults);
  const sim::RunReport faulty =
      degraded.run([&](sim::Comm& comm) { ring_job(comm, network); });

  std::cout << "\n== same ring on a degraded cluster (straggler + transient "
               "failures) ==\n";
  std::cout << "parallel run-time: " << faulty.total_time()
            << " s (virtual), was " << report.total_time() << " s\n";
  std::cout << "transfer retries: " << faulty.total_transfer_retries()
            << ", time lost to retries: " << faulty.total_recovery_seconds()
            << " s\n";
  for (const auto& rank : faulty.ranks)
    for (const auto& event : rank.fault_events)
      std::cout << "  rank " << rank.rank << " @" << event.time << "s: "
                << sim::fault_kind_name(event.kind) << " — " << event.detail
                << '\n';
  return 0;
}
