// Metagenome-scale search: the scenario that motivates the paper.
//
// A metagenomic sample contains organisms whose genomes may not be in the
// reference collection. This example builds a "community" reference
// database, generates spectra where half the target peptides come from an
// unsequenced organism, searches with Algorithm A, and shows how the
// likelihood-ratio cutoff separates identifiable from foreign spectra —
// plus why O(N/p) memory matters at community scale (per-rank footprint).
#include <algorithm>
#include <iostream>

#include "core/pipeline.hpp"
#include "core/protein_inference.hpp"
#include "dbgen/protein_gen.hpp"
#include "dbgen/query_gen.hpp"
#include "io/fasta.hpp"
#include "util/stats.hpp"
#include "util/str.hpp"

int main() {
  using namespace msp;

  // Reference: a multi-organism community database.
  ProteinGenOptions reference_options = microbial_like_options(1.0);
  reference_options.sequence_count = 5000;
  reference_options.seed = 42;
  const ProteinDatabase reference = generate_proteins(reference_options);

  // An organism that is NOT in the reference (the metagenomic unknown).
  ProteinGenOptions unknown_options = microbial_like_options(1.0);
  unknown_options.sequence_count = 1000;
  unknown_options.seed = 4242;
  unknown_options.id_prefix = "UNKNOWN";
  const ProteinDatabase unknown = generate_proteins(unknown_options);

  QueryGenOptions query_options;
  query_options.query_count = 60;
  query_options.foreign_fraction = 0.5;  // half the sample is the unknown
  const auto generated = generate_queries(reference, query_options, &unknown);
  const std::vector<Spectrum> queries = spectra_of(generated);

  std::cout << "community reference: " << group_digits(reference.sequence_count())
            << " proteins; sample: " << queries.size()
            << " spectra (50% from an unsequenced organism)\n\n";

  PipelineOptions options;
  options.algorithm = Algorithm::kAlgorithmA;
  options.p = 16;
  options.config.tau = 1;
  const PipelineResult result =
      run_pipeline(to_fasta_string(reference), queries, options);

  Accumulator native_scores, foreign_scores;
  for (std::size_t q = 0; q < queries.size(); ++q) {
    if (result.hits[q].empty()) continue;
    (generated[q].foreign ? foreign_scores : native_scores)
        .add(result.hits[q][0].score);
  }
  std::cout << "best-hit likelihood-ratio scores:\n";
  std::cout << "  in-reference spectra:  mean " << native_scores.mean()
            << " (n=" << native_scores.count() << ")\n";
  std::cout << "  foreign spectra:       mean " << foreign_scores.mean()
            << " (n=" << foreign_scores.count() << ")\n";

  // A simple cutoff halfway between the two means: how well does it split?
  const double cutoff = (native_scores.mean() + foreign_scores.mean()) / 2.0;
  std::size_t true_accepts = 0, false_accepts = 0;
  for (std::size_t q = 0; q < queries.size(); ++q) {
    if (result.hits[q].empty()) continue;
    const bool accepted = result.hits[q][0].score >= cutoff;
    if (accepted && !generated[q].foreign) ++true_accepts;
    if (accepted && generated[q].foreign) ++false_accepts;
  }
  std::cout << "  cutoff " << cutoff << ": accepts " << true_accepts
            << " native vs " << false_accepts << " foreign spectra\n\n";

  std::cout << "per-rank peak memory on p=" << options.p << ": "
            << format_bytes(result.report.max_peak_memory())
            << " (the full database is "
            << format_bytes(reference.total_residues()) << " of residues)\n";
  std::cout << "simulated run-time: " << result.run_seconds << " s\n\n";

  // Protein-level answer: which reference proteins are actually present?
  InferenceOptions inference;
  inference.min_score = cutoff;
  const auto proteins = infer_proteins(result.hits, inference);
  std::cout << "protein evidence above the score cutoff ("
            << proteins.size() << " proteins):\n";
  for (std::size_t i = 0; i < proteins.size() && i < 5; ++i) {
    std::cout << "  " << proteins[i].protein_id << ": "
              << proteins[i].psm_count << " PSM(s), "
              << proteins[i].distinct_peptides
              << " distinct peptide(s), best score "
              << proteins[i].best_score << '\n';
  }
  return 0;
}
