// Quickstart: the 60-second tour of the public API.
//
//   1. generate (or load) a protein database,
//   2. generate (or load) experimental spectra,
//   3. run the parallel search (Algorithm A on a simulated 8-rank cluster),
//   4. inspect the top hits and the run's performance report.
//
// Swap step 1/2 for read_fasta_file() / read_mgf_file() to search real data.
#include <iostream>

#include "core/pipeline.hpp"
#include "dbgen/protein_gen.hpp"
#include "dbgen/query_gen.hpp"
#include "io/fasta.hpp"
#include "util/str.hpp"

int main() {
  using namespace msp;

  // 1. A 2,000-protein synthetic database with microbial-like statistics.
  ProteinGenOptions db_options = microbial_like_options(1.0);
  db_options.sequence_count = 2000;
  const ProteinDatabase db = generate_proteins(db_options);
  const std::string fasta_image = to_fasta_string(db);
  std::cout << "database: " << group_digits(db.sequence_count())
            << " proteins, " << group_digits(db.total_residues())
            << " residues\n";

  // 2. Twenty simulated MS/MS spectra of peptides implanted from that
  //    database (ground truth kept in the spectrum title).
  QueryGenOptions query_options;
  query_options.query_count = 20;
  const auto generated = generate_queries(db, query_options);
  const std::vector<Spectrum> queries = spectra_of(generated);
  std::cout << "queries:  " << queries.size() << " simulated spectra\n\n";

  // 3. Search with Algorithm A on 8 simulated ranks.
  PipelineOptions options;
  options.algorithm = Algorithm::kAlgorithmA;
  options.p = 8;
  options.config.tau = 3;
  const PipelineResult result = run_pipeline(fasta_image, queries, options);

  // 4. Report.
  std::cout << "top hit per query (score | protein | peptide):\n";
  std::size_t recovered = 0;
  for (std::size_t q = 0; q < queries.size(); ++q) {
    if (result.hits[q].empty()) continue;
    const Hit& best = result.hits[q][0];
    const bool correct =
        best.peptide.find(generated[q].true_peptide) != std::string::npos ||
        generated[q].true_peptide.find(best.peptide) != std::string::npos;
    recovered += correct;
    if (q < 5) {
      std::cout << "  " << queries[q].title() << ": " << best.score << " | "
                << best.protein_id << " | " << best.peptide
                << (correct ? "  <- true peptide" : "") << '\n';
    }
  }
  std::cout << "  ... (" << recovered << "/" << queries.size()
            << " queries rank their true peptide on top)\n\n";

  std::cout << "simulated parallel run-time on p=8: " << result.run_seconds
            << " s (virtual)\n";
  std::cout << "candidates evaluated: " << group_digits(result.candidates)
            << '\n';
  return 0;
}
