// Spectral-library search: MSPolygraph's hybrid scoring in action.
//
// Half of the sample's peptides have been measured before (replicate
// spectra exist → consensus library entries); the other half are new. The
// engine scores library peptides against their measured consensus pattern
// and everything else against the on-the-fly b/y model — Section I-A's
// "combines the use of highly accurate spectral libraries, when available,
// with the use of on-the-fly generation of sequence averaged model
// spectra".
#include <iostream>

#include "core/search_engine.hpp"
#include "dbgen/protein_gen.hpp"
#include "dbgen/query_gen.hpp"
#include "mass/digest.hpp"
#include "spectra/generator.hpp"
#include "spectra/library.hpp"
#include "util/rng.hpp"
#include "util/str.hpp"

int main() {
  using namespace msp;

  ProteinGenOptions db_options = microbial_like_options(1.0);
  db_options.sequence_count = 1500;
  const ProteinDatabase db = generate_proteins(db_options);

  // Sample query peptides; build library entries for every second one.
  QueryGenOptions q_options;
  q_options.query_count = 40;
  q_options.noise.peak_dropout = 0.5;   // very noisy acquisition
  q_options.noise.noise_peaks_per_100da = 5.0;
  // Real CID intensities are sequence-specific; the library's whole edge
  // is capturing that pattern where the generic b/y model cannot.
  q_options.noise.fragmentation_sigma = 1.4;
  const auto generated = generate_queries(db, q_options);

  SpectralLibrary library;
  SpectrumNoiseModel replicate_noise;
  replicate_noise.peak_dropout = 0.2;
  replicate_noise.fragmentation_sigma = 1.4;  // same instrument physics
  for (std::size_t q = 0; q < generated.size(); q += 2) {
    std::vector<Spectrum> replicates;
    for (int r = 0; r < 6; ++r) {
      Xoshiro256 rng(7000 + q * 10 + static_cast<std::uint64_t>(r));
      replicates.push_back(
          simulate_spectrum(generated[q].true_peptide, replicate_noise, rng));
    }
    library.add_replicates(generated[q].true_peptide, replicates);
  }
  std::cout << "database: " << group_digits(db.sequence_count())
            << " proteins; library: " << library.size()
            << " consensus entries (built from 6 replicates each)\n\n";

  auto recovery = [&](const SearchConfig& config, bool library_half) {
    const SearchEngine engine(config);
    const QueryHits hits = engine.search(db, spectra_of(generated));
    std::size_t recovered = 0, total = 0;
    for (std::size_t q = 0; q < generated.size(); ++q) {
      const bool in_library_half = (q % 2 == 0);
      if (in_library_half != library_half) continue;
      ++total;
      if (!hits[q].empty() &&
          (hits[q][0].peptide.find(generated[q].true_peptide) !=
               std::string::npos ||
           generated[q].true_peptide.find(hits[q][0].peptide) !=
               std::string::npos))
        ++recovered;
    }
    return std::pair{recovered, total};
  };

  SearchConfig model_only;
  model_only.tau = 1;
  SearchConfig hybrid = model_only;
  hybrid.library = &library;

  const auto [model_lib_half, lib_total] = recovery(model_only, true);
  const auto [hybrid_lib_half, lib_total2] = recovery(hybrid, true);
  const auto [model_new_half, new_total] = recovery(model_only, false);
  const auto [hybrid_new_half, new_total2] = recovery(hybrid, false);

  std::cout << "top-1 recovery of the true peptide:\n";
  std::cout << "  peptides WITH a library entry:    model-only "
            << model_lib_half << "/" << lib_total << "  vs  hybrid "
            << hybrid_lib_half << "/" << lib_total2 << '\n';
  std::cout << "  peptides WITHOUT a library entry: model-only "
            << model_new_half << "/" << new_total << "  vs  hybrid "
            << hybrid_new_half << "/" << new_total2
            << "  (identical path — falls back to the b/y model)\n";
  return 0;
}
