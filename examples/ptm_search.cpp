// PTM-aware searching: the paper's related-work section calls out
// post-translational modifications as a key driver of candidate explosion
// (Fig. 1b) and a feature parallel X!Tandem variants lacked.
//
// This example: (1) quantifies the variant blow-up for standard variable
// modifications, (2) generates a phosphopeptide spectrum, shows a plain
// search miss it, and (3) recovers it by scoring PTM variants of the
// mass-shifted candidates.
#include <iostream>

#include "core/search_engine.hpp"
#include "dbgen/protein_gen.hpp"
#include "mass/digest.hpp"
#include "mass/ptm.hpp"
#include "scoring/likelihood.hpp"
#include "spectra/preprocess.hpp"
#include "spectra/theoretical.hpp"
#include "util/stats.hpp"
#include "util/str.hpp"

int main() {
  using namespace msp;

  const std::vector<Ptm> rules{ptm_phospho_s(), ptm_phospho_t(),
                               ptm_oxidation_m()};

  // (1) Variant blow-up over a realistic digest.
  ProteinGenOptions db_options = microbial_like_options(1.0);
  db_options.sequence_count = 300;
  const ProteinDatabase db = generate_proteins(db_options);
  DigestOptions digest;
  digest.min_length = 6;
  digest.max_length = 30;
  Accumulator variants_per_peptide;
  for (const Protein& protein : db.proteins)
    for (const auto& peptide : digest_tryptic(protein.residues, digest))
      variants_per_peptide.add(static_cast<double>(count_variants(
          peptide_string(protein.residues, peptide), rules, 2)));
  std::cout << "variable PTMs " << rules[0].name << ", " << rules[1].name
            << ", " << rules[2].name << " (max 2 sites):\n";
  std::cout << "  mean variants per tryptic peptide: "
            << variants_per_peptide.mean() << " (max "
            << variants_per_peptide.max()
            << ") -> the Fig. 1b candidate multiplier\n\n";

  // (2) A phosphopeptide spectrum misses in a plain search.
  std::string target;
  for (const Protein& protein : db.proteins) {
    for (const auto& peptide : digest_tryptic(protein.residues, digest)) {
      if (peptide.offset != 0) continue;  // anchored: findable candidate
      const std::string text = peptide_string(protein.residues, peptide);
      if (text.find('S') != std::string::npos && text.size() >= 10) {
        target = text;
        break;
      }
    }
    if (!target.empty()) break;
  }
  const auto variants = enumerate_variants(target, rules, 1);
  const PtmVariant& phospho = variants[1];
  std::vector<double> deltas(target.size(), 0.0);
  for (const auto& [pos, rule] : phospho.sites)
    deltas[pos] = rules[rule].mass_delta;
  TheoreticalOptions theo;
  theo.site_deltas = deltas;
  const Spectrum spectrum = model_spectrum(target, theo);
  std::cout << "true (modified) peptide: " << annotate(target, phospho, rules)
            << "  parent mass " << spectrum.parent_mass() << " Da\n";

  SearchConfig config;
  config.tau = 3;
  const SearchEngine engine(config);
  const std::vector<Spectrum> queries{spectrum};
  const QueryHits plain = engine.search(db, queries);
  bool found_plain = false;
  for (const Hit& hit : plain[0])
    found_plain |= hit.peptide == target;
  std::cout << "plain search finds it: " << (found_plain ? "yes" : "no")
            << " (parent mass shifted by +" << phospho.mass_delta
            << " Da, outside the window)\n";

  // (3) Variant-expanded rescoring: widen the window by the max PTM delta,
  // then score each candidate's variants and keep the best.
  const QueryContext context(preprocess(spectrum), config.bin_width);
  double best_score = -1e18;
  std::string best_annotation;
  for (const Protein& protein : db.proteins) {
    for (const auto& peptide : digest_tryptic(protein.residues, digest)) {
      if (peptide.offset != 0) continue;
      const std::string text = peptide_string(protein.residues, peptide);
      for (const PtmVariant& variant : enumerate_variants(text, rules, 1)) {
        const double mass = peptide_mass(text) + variant.mass_delta;
        if (std::abs(mass - spectrum.parent_mass()) > config.tolerance_da)
          continue;
        std::vector<double> site_deltas(text.size(), 0.0);
        for (const auto& [pos, rule] : variant.sites)
          site_deltas[pos] = rules[rule].mass_delta;
        TheoreticalOptions opts;
        opts.site_deltas = site_deltas;
        const double score = likelihood_ratio(context, fragment_ions(text, opts));
        if (score > best_score) {
          best_score = score;
          best_annotation = annotate(text, variant, rules);
        }
      }
    }
  }
  std::cout << "variant-expanded search best hit: " << best_annotation
            << " (score " << best_score << ")\n";
  std::cout << (best_annotation == annotate(target, phospho, rules)
                    ? "-> exact modified peptide recovered\n"
                    : "-> differs from the implanted peptide\n");
  return 0;
}
