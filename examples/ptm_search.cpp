// PTM-aware open search: the paper's related-work section calls out
// post-translational modifications as a key driver of candidate explosion
// (Fig. 1b) and a feature parallel X!Tandem variants lacked.
//
// This example: (1) quantifies the variant blow-up for standard variable
// modifications, (2) generates phosphopeptide spectra, shows a plain
// narrow-window search miss them, and (3) recovers them with the engine's
// open/PTM mode running the fragment-ion-indexed candidate source through
// the parallel ring driver, then (4) routes the remaining index-miss
// queries (nothing cleared the vote gate anywhere — e.g. a peptide the
// database does not contain) down the de novo spectrum-graph fallback
// lane, reporting the fallback count from the RunReport.
#include <iostream>

#include "core/algorithm_a.hpp"
#include "core/search_engine.hpp"
#include "dbgen/protein_gen.hpp"
#include "denovo/sequencer.hpp"
#include "io/fasta.hpp"
#include "mass/digest.hpp"
#include "mass/ptm.hpp"
#include "spectra/preprocess.hpp"
#include "spectra/theoretical.hpp"
#include "util/stats.hpp"
#include "util/str.hpp"

int main() {
  using namespace msp;

  const std::vector<Ptm> rules{ptm_phospho_s(), ptm_phospho_t(),
                               ptm_oxidation_m()};

  // (1) Variant blow-up over a realistic digest — the candidate multiplier
  // that makes exhaustive open enumeration expensive.
  ProteinGenOptions db_options = microbial_like_options(1.0);
  db_options.sequence_count = 300;
  const ProteinDatabase db = generate_proteins(db_options);
  const std::string fasta_image = to_fasta_string(db);
  DigestOptions digest;
  digest.min_length = 6;
  digest.max_length = 30;
  Accumulator variants_per_peptide;
  for (const Protein& protein : db.proteins)
    for (const auto& peptide : digest_tryptic(protein.residues, digest))
      variants_per_peptide.add(static_cast<double>(count_variants(
          peptide_string(protein.residues, peptide), rules, 2)));
  std::cout << "variable PTMs " << rules[0].name << ", " << rules[1].name
            << ", " << rules[2].name << " (max 2 sites):\n";
  std::cout << "  mean variants per tryptic peptide: "
            << variants_per_peptide.mean() << " (max "
            << variants_per_peptide.max()
            << ") -> the Fig. 1b candidate multiplier\n\n";

  // (2) Phosphopeptide spectra: modified parent masses sit outside the
  // narrow window, so a plain search cannot see their true peptides.
  std::vector<std::string> targets;
  std::vector<Spectrum> queries;
  for (const Protein& protein : db.proteins) {
    if (targets.size() >= 4) break;
    for (const auto& peptide : digest_tryptic(protein.residues, digest)) {
      if (peptide.offset != 0) continue;  // anchored: findable candidate
      const std::string text = peptide_string(protein.residues, peptide);
      if (text.find('S') == std::string::npos || text.size() < 10) continue;
      const auto variants = enumerate_variants(text, rules, 1);
      const PtmVariant& modified = variants[1];
      std::vector<double> deltas(text.size(), 0.0);
      for (const auto& [pos, rule] : modified.sites)
        deltas[pos] = rules[rule].mass_delta;
      TheoreticalOptions theo;
      theo.site_deltas = deltas;
      targets.push_back(text);
      queries.push_back(model_spectrum(text, theo));
      break;
    }
  }
  // Plus one spectrum of a peptide the database does NOT contain, heavier
  // than any enumerable candidate: even the open window holds nothing for
  // it, making it a guaranteed index miss — de novo's input.
  const std::string unknown =
      "LAKEGVSTREAMWINDKTTVNPEAKSLLGRDYFTQSAMKVVLRDE";
  queries.push_back(model_spectrum(unknown));

  SearchConfig config;
  config.tau = 3;
  config.max_candidate_length = 40;  // the unknown (45 residues) stays out
  const SearchEngine narrow_engine(config);
  const QueryHits plain = narrow_engine.search(db, queries);
  std::size_t plain_found = 0;
  for (std::size_t q = 0; q < targets.size(); ++q)
    for (const Hit& hit : plain[q])
      if (hit.peptide == targets[q]) ++plain_found;
  std::cout << "plain narrow search finds " << plain_found << "/"
            << targets.size()
            << " implanted phosphopeptides (parent masses shifted "
               "outside the window)\n";

  // (3) Open/PTM mode through the parallel ring driver: the PTM set widens
  // the precursor window, and each rank ships a fragment-ion index with its
  // shard so only vote-gate survivors are ever fully scored.
  config.ptms = rules;
  config.max_ptm_mods = 1;
  config.candidate_source = CandidateSourceKind::kFragmentIndex;
  AlgorithmAOptions options;
  const sim::Runtime runtime(4);
  const ParallelRunResult open =
      run_algorithm_a(runtime, fasta_image, queries, config, options);
  std::size_t open_found = 0;
  for (std::size_t q = 0; q < targets.size(); ++q)
    for (const Hit& hit : open.hits[q])
      if (hit.peptide == targets[q]) ++open_found;
  std::cout << "indexed open search finds " << open_found << "/"
            << targets.size() << " (postings scanned: "
            << open.report.sum_counter("postings") << ", candidates scored: "
            << open.report.sum_counter("candidates") << ")\n";

  // (4) The de novo fallback lane: queries the index answered with nothing
  // (RunReport's open_index_miss_queries) go to the spectrum graph.
  const std::uint64_t misses =
      open.report.sum_counter("open_index_miss_queries");
  std::cout << "index-miss queries routed to de novo fallback: " << misses
            << "\n";
  for (std::size_t q = 0; q < queries.size(); ++q) {
    if (!open.hits[q].empty()) continue;
    const denovo::DeNovoResult result = denovo::sequence_peptide(queries[q]);
    std::cout << "  query " << q << ": de novo "
              << (result.complete ? "sequenced " : "partial ")
              << result.sequence << " (ladder agreement vs truth "
              << denovo::ladder_agreement(result.sequence, unknown) << ")\n";
  }
  return 0;
}
