// Validation of the parallel algorithms — the reproduction of Section III's
// "both implementations A & B successfully reproduce MSPolygraph's output":
// Algorithm A (masked and unmasked), Algorithm B, the master–worker baseline
// and the query-transport ablation must all produce, at every p, exactly
// the hit lists of the serial engine.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/algorithm_a.hpp"
#include "core/algorithm_b.hpp"
#include "core/algorithm_hybrid.hpp"
#include "core/candidate_store.hpp"
#include "core/master_worker.hpp"
#include "core/partition.hpp"
#include "core/pipeline.hpp"
#include "core/query_transport.hpp"
#include "core/search_engine.hpp"
#include "core/sortmz.hpp"
#include "dbgen/protein_gen.hpp"
#include "dbgen/query_gen.hpp"
#include "io/fasta.hpp"
#include "util/error.hpp"

namespace msp {
namespace {

struct Fixture {
  ProteinDatabase db;
  std::string image;
  std::vector<Spectrum> queries;
  SearchConfig config;
  QueryHits serial;

  explicit Fixture(std::size_t sequences = 60, std::size_t query_count = 14) {
    ProteinGenOptions db_options;
    db_options.sequence_count = sequences;
    db_options.mean_length = 150;
    db_options.seed = 404;
    db = generate_proteins(db_options);
    image = to_fasta_string(db);

    QueryGenOptions q_options;
    q_options.query_count = query_count;
    q_options.digest.min_length = 6;
    q_options.digest.max_length = 25;
    queries = spectra_of(generate_queries(db, q_options));

    config.tolerance_da = 3.0;
    config.tau = 7;
    config.min_candidate_length = 4;
    config.max_candidate_length = 60;
    config.model = ScoreModel::kLikelihood;

    const SearchEngine engine(config);
    serial = engine.search(db, queries);
  }
};

const Fixture& fixture() {
  static const Fixture f;
  return f;
}

void expect_hits_equal(const QueryHits& got, const QueryHits& want,
                       const std::string& label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (std::size_t q = 0; q < want.size(); ++q) {
    ASSERT_EQ(got[q].size(), want[q].size()) << label << " query " << q;
    for (std::size_t h = 0; h < want[q].size(); ++h) {
      EXPECT_EQ(got[q][h].protein_id, want[q][h].protein_id)
          << label << " q" << q << " h" << h;
      EXPECT_EQ(got[q][h].length, want[q][h].length)
          << label << " q" << q << " h" << h;
      EXPECT_EQ(got[q][h].end, want[q][h].end)
          << label << " q" << q << " h" << h;
      EXPECT_DOUBLE_EQ(got[q][h].score, want[q][h].score)
          << label << " q" << q << " h" << h;
    }
  }
}

// ---------- Algorithm A ----------

class AlgorithmAValidation : public ::testing::TestWithParam<int> {};

TEST_P(AlgorithmAValidation, ReproducesSerialOutput) {
  const Fixture& f = fixture();
  const sim::Runtime runtime(GetParam());
  const ParallelRunResult result =
      run_algorithm_a(runtime, f.image, f.queries, f.config);
  expect_hits_equal(result.hits, f.serial, "A p=" + std::to_string(GetParam()));
  EXPECT_GT(result.candidates, 0u);
}

INSTANTIATE_TEST_SUITE_P(RankSweep, AlgorithmAValidation,
                         ::testing::Values(1, 2, 3, 4, 5, 8, 13, 16));

TEST(AlgorithmA, UnmaskedVariantSameHitsSlowerClock) {
  const Fixture& f = fixture();
  const sim::Runtime runtime(4);
  AlgorithmAOptions masked, unmasked;
  unmasked.mask = false;
  const ParallelRunResult with_mask =
      run_algorithm_a(runtime, f.image, f.queries, f.config, masked);
  const ParallelRunResult without_mask =
      run_algorithm_a(runtime, f.image, f.queries, f.config, unmasked);
  expect_hits_equal(without_mask.hits, with_mask.hits, "mask ablation");
  // Masking can only help the simulated run-time.
  EXPECT_LE(with_mask.report.total_time(),
            without_mask.report.total_time() + 1e-9);
}

TEST(AlgorithmA, FenceAblationSameHits) {
  const Fixture& f = fixture();
  const sim::Runtime runtime(4);
  AlgorithmAOptions no_fence;
  no_fence.fence_per_iteration = false;
  const ParallelRunResult result =
      run_algorithm_a(runtime, f.image, f.queries, f.config, no_fence);
  expect_hits_equal(result.hits, f.serial, "no-fence");
}

TEST(AlgorithmA, CandidateTotalIndependentOfP) {
  const Fixture& f = fixture();
  std::uint64_t reference = 0;
  for (int p : {1, 2, 4, 8}) {
    const sim::Runtime runtime(p);
    const ParallelRunResult result =
        run_algorithm_a(runtime, f.image, f.queries, f.config);
    if (reference == 0)
      reference = result.candidates;
    else
      EXPECT_EQ(result.candidates, reference) << "p=" << p;
  }
}

TEST(AlgorithmA, SpaceScalesDownWithP) {
  const Fixture& f = fixture();
  std::size_t peak_p2 = 0, peak_p8 = 0;
  {
    const sim::Runtime runtime(2);
    peak_p2 = run_algorithm_a(runtime, f.image, f.queries, f.config)
                  .report.max_peak_memory();
  }
  {
    const sim::Runtime runtime(8);
    peak_p8 = run_algorithm_a(runtime, f.image, f.queries, f.config)
                  .report.max_peak_memory();
  }
  // O(N/p) per rank: quadrupling p should at least halve the peak.
  EXPECT_LT(peak_p8, peak_p2 / 2 + 100000);
}

TEST(AlgorithmA, MemoryBudgetEnforced) {
  const Fixture& f = fixture();
  const sim::Runtime runtime(2);
  AlgorithmAOptions options;
  options.memory_budget_bytes = 100;  // absurdly small
  EXPECT_THROW(
      run_algorithm_a(runtime, f.image, f.queries, f.config, options),
      OutOfMemoryBudget);
}

TEST(AlgorithmA, MoreRanksThanQueries) {
  Fixture small(30, 3);  // p=8 > m=3
  const sim::Runtime runtime(8);
  const ParallelRunResult result =
      run_algorithm_a(runtime, small.image, small.queries, small.config);
  expect_hits_equal(result.hits, small.serial, "p>m");
}

TEST(AlgorithmA, MoreRanksThanSequences) {
  Fixture tiny(5, 6);  // p=16 > n=5: some shards empty
  const sim::Runtime runtime(16);
  const ParallelRunResult result =
      run_algorithm_a(runtime, tiny.image, tiny.queries, tiny.config);
  expect_hits_equal(result.hits, tiny.serial, "p>n");
}

// ---------- Algorithm B ----------

class AlgorithmBValidation : public ::testing::TestWithParam<int> {};

TEST_P(AlgorithmBValidation, ReproducesSerialOutput) {
  const Fixture& f = fixture();
  const sim::Runtime runtime(GetParam());
  const AlgorithmBResult result =
      run_algorithm_b(runtime, f.image, f.queries, f.config);
  expect_hits_equal(result.hits, f.serial, "B p=" + std::to_string(GetParam()));
  EXPECT_GE(result.max_sort_seconds, 0.0);
}

INSTANTIATE_TEST_SUITE_P(RankSweep, AlgorithmBValidation,
                         ::testing::Values(1, 2, 3, 4, 5, 8, 13, 16));

TEST(AlgorithmB, SenderGroupsNeverExceedP) {
  const Fixture& f = fixture();
  const sim::Runtime runtime(8);
  const AlgorithmBResult result =
      run_algorithm_b(runtime, f.image, f.queries, f.config);
  EXPECT_GT(result.mean_shards_visited, 0.0);
  EXPECT_LE(result.mean_shards_visited, 8.0);
}

TEST(AlgorithmB, CandidatesMatchAlgorithmA) {
  const Fixture& f = fixture();
  const sim::Runtime runtime(4);
  const ParallelRunResult a = run_algorithm_a(runtime, f.image, f.queries, f.config);
  const AlgorithmBResult b = run_algorithm_b(runtime, f.image, f.queries, f.config);
  EXPECT_EQ(a.candidates, b.candidates);
}

// ---------- parallel counting sort ----------

TEST(SortMz, ProducesGloballySortedBalancedShards) {
  const Fixture& f = fixture();
  for (int p : {2, 4, 8}) {
    const sim::Runtime runtime(p);
    std::vector<ProteinDatabase> sorted(static_cast<std::size_t>(p));
    std::vector<std::vector<MzBoundary>> bounds(static_cast<std::size_t>(p));
    runtime.run([&](sim::Comm& comm) {
      const ProteinDatabase local =
          load_database_shard(f.image, comm.rank(), p);
      SortedShard shard = parallel_sort_by_mz(comm, local);
      sorted[static_cast<std::size_t>(comm.rank())] = std::move(shard.shard);
      bounds[static_cast<std::size_t>(comm.rank())] = shard.boundaries;
    });

    // (1) Same multiset of sequences.
    std::size_t total = 0;
    for (const auto& shard : sorted) total += shard.sequence_count();
    EXPECT_EQ(total, f.db.sequence_count());

    // (2) Globally non-decreasing m/z across the shard concatenation.
    std::uint32_t previous = 0;
    for (const auto& shard : sorted)
      for (const Protein& protein : shard.proteins) {
        const std::uint32_t bucket = mz_bucket(protein);
        EXPECT_GE(bucket, previous);
        previous = bucket;
      }

    // (3) Boundary tuples identical on all ranks and consistent with data.
    for (int r = 1; r < p; ++r) {
      for (int k = 0; k < p; ++k) {
        EXPECT_DOUBLE_EQ(bounds[static_cast<std::size_t>(r)][static_cast<std::size_t>(k)].begin_mz,
                         bounds[0][static_cast<std::size_t>(k)].begin_mz);
        EXPECT_DOUBLE_EQ(bounds[static_cast<std::size_t>(r)][static_cast<std::size_t>(k)].end_mz,
                         bounds[0][static_cast<std::size_t>(k)].end_mz);
      }
    }
    for (int r = 0; r < p; ++r)
      for (const Protein& protein : sorted[static_cast<std::size_t>(r)].proteins) {
        const double mz = static_cast<double>(mz_bucket(protein));
        EXPECT_GE(mz, bounds[0][static_cast<std::size_t>(r)].begin_mz - 1e-9);
        EXPECT_LT(mz, bounds[0][static_cast<std::size_t>(r)].end_mz + 1e-9);
      }

    // (4) Equal m/z buckets coalesce on one rank (paper's invariant).
    std::map<std::uint32_t, std::set<int>> bucket_owners;
    for (int r = 0; r < p; ++r)
      for (const Protein& protein : sorted[static_cast<std::size_t>(r)].proteins)
        bucket_owners[mz_bucket(protein)].insert(r);
    for (const auto& [bucket, owners] : bucket_owners)
      EXPECT_EQ(owners.size(), 1u) << "bucket " << bucket;
  }
}

// ---------- sub-group hybrid (the paper's proposed extension) ----------

class HybridValidation
    : public ::testing::TestWithParam<std::pair<int, int>> {};  // (p, groups)

TEST_P(HybridValidation, ReproducesSerialOutput) {
  const auto [p, groups] = GetParam();
  const Fixture& f = fixture();
  const sim::Runtime runtime(p);
  HybridOptions options;
  options.groups = groups;
  const HybridResult result =
      run_algorithm_hybrid(runtime, f.image, f.queries, f.config, options);
  expect_hits_equal(result.hits, f.serial,
                    "hybrid p=" + std::to_string(p) +
                        " g=" + std::to_string(groups));
  EXPECT_EQ(result.groups_used, groups);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, HybridValidation,
    ::testing::Values(std::pair{4, 1}, std::pair{4, 2}, std::pair{4, 4},
                      std::pair{8, 2}, std::pair{8, 4}, std::pair{12, 3},
                      std::pair{16, 4}));

TEST(Hybrid, DefaultGroupCountDividesP) {
  for (int p : {1, 2, 4, 6, 8, 12, 16, 36, 128}) {
    const int g = default_group_count(p);
    EXPECT_EQ(p % g, 0) << p;
    EXPECT_LE(g * g, p) << p;
  }
}

TEST(Hybrid, AutoGroupsReproduceSerial) {
  const Fixture& f = fixture();
  const sim::Runtime runtime(8);
  const HybridResult result =
      run_algorithm_hybrid(runtime, f.image, f.queries, f.config);
  expect_hits_equal(result.hits, f.serial, "hybrid auto");
  EXPECT_EQ(result.groups_used, 2);  // largest divisor of 8 with g^2 <= 8
}

TEST(Hybrid, RejectsNonDividingGroups) {
  const Fixture& f = fixture();
  const sim::Runtime runtime(8);
  HybridOptions options;
  options.groups = 3;
  EXPECT_THROW(
      run_algorithm_hybrid(runtime, f.image, f.queries, f.config, options),
      InvalidArgument);
}

TEST(Hybrid, MemoryInterpolatesBetweenAAndBaseline) {
  // Per-rank memory grows with group count: g=1 is Algorithm A (O(N/p)),
  // g=p replicates the database per rank (the baseline's O(N)).
  const Fixture& f = fixture();
  const sim::Runtime runtime(8);
  std::size_t previous = 0;
  for (int g : {1, 2, 4, 8}) {
    HybridOptions options;
    options.groups = g;
    const HybridResult result =
        run_algorithm_hybrid(runtime, f.image, f.queries, f.config, options);
    const std::size_t peak = result.report.max_peak_memory();
    EXPECT_GT(peak, previous) << "g=" << g;
    previous = peak;
  }
}

// ---------- master–worker baseline ----------

class MasterWorkerValidation : public ::testing::TestWithParam<int> {};

TEST_P(MasterWorkerValidation, ReproducesSerialOutput) {
  const Fixture& f = fixture();
  const sim::Runtime runtime(GetParam());
  const ParallelRunResult result =
      run_master_worker(runtime, f.image, f.queries, f.config);
  expect_hits_equal(result.hits, f.serial,
                    "MW p=" + std::to_string(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(RankSweep, MasterWorkerValidation,
                         ::testing::Values(1, 2, 3, 5, 8));

TEST(MasterWorker, ReplicatedDatabaseMemoryDoesNotShrinkWithP) {
  const Fixture& f = fixture();
  std::size_t peak_p2 = 0, peak_p8 = 0;
  {
    const sim::Runtime runtime(2);
    peak_p2 = run_master_worker(runtime, f.image, f.queries, f.config)
                  .report.max_peak_memory();
  }
  {
    const sim::Runtime runtime(8);
    peak_p8 = run_master_worker(runtime, f.image, f.queries, f.config)
                  .report.max_peak_memory();
  }
  // O(N) per worker: the peak stays ~constant as p grows.
  EXPECT_GT(peak_p8 * 2, peak_p2);
}

TEST(MasterWorker, BudgetBelowDatabaseSizeFails) {
  const Fixture& f = fixture();
  const sim::Runtime runtime(3);
  MasterWorkerOptions options;
  options.memory_budget_bytes = f.db.total_residues() / 2;  // < O(N)
  EXPECT_THROW(
      run_master_worker(runtime, f.image, f.queries, f.config, options),
      OutOfMemoryBudget);
}

TEST(MasterWorker, BatchSizeDoesNotChangeResults) {
  const Fixture& f = fixture();
  const sim::Runtime runtime(4);
  for (std::size_t batch : {1u, 3u, 100u}) {
    MasterWorkerOptions options;
    options.batch_size = batch;
    const ParallelRunResult result =
        run_master_worker(runtime, f.image, f.queries, f.config, options);
    expect_hits_equal(result.hits, f.serial,
                      "batch=" + std::to_string(batch));
  }
}

// ---------- candidate store (the paper's second proposed extension) ----------

class CandidateStoreValidation : public ::testing::TestWithParam<int> {};

TEST_P(CandidateStoreValidation, ReproducesSerialOutput) {
  const Fixture& f = fixture();
  const sim::Runtime runtime(GetParam());
  const CandidateStoreResult result =
      run_candidate_store(runtime, f.image, f.queries, f.config);
  expect_hits_equal(result.hits, f.serial,
                    "store p=" + std::to_string(GetParam()));
  EXPECT_GT(result.stored_candidates, 0u);
  EXPECT_GE(result.build_seconds, 0.0);
}

INSTANTIATE_TEST_SUITE_P(RankSweep, CandidateStoreValidation,
                         ::testing::Values(1, 2, 3, 4, 8, 13));

TEST(CandidateStore, EvaluationsMatchAlgorithmA) {
  const Fixture& f = fixture();
  const sim::Runtime runtime(4);
  const ParallelRunResult a =
      run_algorithm_a(runtime, f.image, f.queries, f.config);
  const CandidateStoreResult store =
      run_candidate_store(runtime, f.image, f.queries, f.config);
  // Same candidate population is scored (the same (query, fragment) pairs).
  EXPECT_EQ(store.candidates, a.candidates);
}

TEST(CandidateStore, TradesMemoryForComputeAsThePaperPredicts) {
  // The paper's trade-off, both directions: "current approaches are not
  // designed to store such large magnitudes of candidates in memory"
  // (records dwarf raw residues) but "this strategy could drastically
  // reduce the overall computation time" (generation paid once per stored
  // candidate instead of once per evaluation). The compute win needs the
  // paper's regime — a query set dense enough in mass that each stored
  // candidate serves queries on several ranks (their 1,210 spectra) — so
  // this test builds a paper-sized query set rather than reusing the sparse
  // fixture. The bar is higher than it once was: the candidate-centric
  // kernel already amortizes ion generation across one rank's queries, so
  // the store only wins when candidates are shared across ranks too.
  Fixture dense(80, 1210);
  const sim::Runtime runtime(8);
  const ParallelRunResult a =
      run_algorithm_a(runtime, dense.image, dense.queries, dense.config);
  const CandidateStoreResult store =
      run_candidate_store(runtime, dense.image, dense.queries, dense.config);
  // Memory: the record store dwarfs the raw residues it was derived from.
  EXPECT_GT(store.stored_candidates * sizeof(CandidateRecord),
            dense.db.total_residues());
  // Compute: generation paid once per stored candidate, not per evaluation.
  EXPECT_LT(store.report.sum_compute(), a.report.sum_compute());
}

TEST(CandidateStore, RejectsUnsupportedConfigs) {
  const Fixture& f = fixture();
  const sim::Runtime runtime(2);
  SearchConfig tryptic = f.config;
  tryptic.candidate_mode = CandidateMode::kTryptic;
  EXPECT_THROW(run_candidate_store(runtime, f.image, f.queries, tryptic),
               InvalidArgument);
  SearchConfig too_long = f.config;
  too_long.max_candidate_length = 200;
  EXPECT_THROW(run_candidate_store(runtime, f.image, f.queries, too_long),
               InvalidArgument);
}

// ---------- query-transport ablation ----------

class QueryTransportValidation : public ::testing::TestWithParam<int> {};

TEST_P(QueryTransportValidation, ReproducesSerialOutput) {
  const Fixture& f = fixture();
  const sim::Runtime runtime(GetParam());
  const ParallelRunResult result =
      run_query_transport(runtime, f.image, f.queries, f.config);
  expect_hits_equal(result.hits, f.serial,
                    "QT p=" + std::to_string(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(RankSweep, QueryTransportValidation,
                         ::testing::Values(1, 2, 4, 8));

// ---------- pipeline facade ----------

TEST(Pipeline, AllAlgorithmsAgree) {
  const Fixture& f = fixture();
  for (Algorithm algorithm :
       {Algorithm::kSerial, Algorithm::kAlgorithmA, Algorithm::kAlgorithmB,
        Algorithm::kMasterWorker, Algorithm::kQueryTransport}) {
    PipelineOptions options;
    options.algorithm = algorithm;
    options.p = 4;
    options.config = f.config;
    const PipelineResult result = run_pipeline(f.image, f.queries, options);
    expect_hits_equal(result.hits, f.serial, algorithm_name(algorithm));
  }
}

TEST(Pipeline, AlgorithmNamesRoundTrip) {
  EXPECT_EQ(algorithm_from_name("a"), Algorithm::kAlgorithmA);
  EXPECT_EQ(algorithm_from_name("b"), Algorithm::kAlgorithmB);
  EXPECT_EQ(algorithm_from_name("serial"), Algorithm::kSerial);
  EXPECT_EQ(algorithm_from_name("master-worker"), Algorithm::kMasterWorker);
  EXPECT_EQ(algorithm_from_name("query"), Algorithm::kQueryTransport);
  EXPECT_THROW(algorithm_from_name("nope"), InvalidArgument);
}

TEST(Pipeline, HitRecordsCarryQueryTitles) {
  const Fixture& f = fixture();
  const auto records = to_hit_records(f.queries, f.serial);
  ASSERT_FALSE(records.empty());
  EXPECT_EQ(records[0].rank, 1u);
  EXPECT_FALSE(records[0].query_title.empty());
}

}  // namespace
}  // namespace msp
