// Online service validation: the streamed per-shard top-τ merge must be
// bit-identical to the one-shot search for any shard order (the property
// the incremental publish rests on), the service must reproduce the serial
// engine's exact hit lists under every dispatch mode, overload policy and
// fault schedule, its latency accounting must be deterministic across
// reruns and kernel thread counts, and its traces must validate with the
// serve lane populated.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "core/partition.hpp"
#include "core/search_engine.hpp"
#include "dbgen/protein_gen.hpp"
#include "dbgen/query_gen.hpp"
#include "io/fasta.hpp"
#include "scoring/incremental_topk.hpp"
#include "serve/service.hpp"
#include "serve/slo.hpp"
#include "simmpi/runtime.hpp"
#include "simmpi/trace_validate.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace msp {
namespace {

struct Fixture {
  ProteinDatabase db;
  std::string image;
  std::vector<Spectrum> queries;
  SearchConfig config;
  QueryHits serial;

  Fixture() {
    ProteinGenOptions db_options;
    db_options.sequence_count = 36;
    db_options.mean_length = 110;
    db_options.seed = 5001;
    db = generate_proteins(db_options);
    image = to_fasta_string(db);

    QueryGenOptions q_options;
    q_options.query_count = 24;
    q_options.seed = 5002;
    q_options.digest.min_length = 6;
    q_options.digest.max_length = 25;
    queries = spectra_of(generate_queries(db, q_options));

    config.tolerance_da = 3.0;
    config.tau = 6;
    config.min_candidate_length = 4;
    config.max_candidate_length = 60;
    config.model = ScoreModel::kLikelihood;

    const SearchEngine engine(config);
    serial = engine.search(db, queries);
  }
};

const Fixture& fixture() {
  static const Fixture f;
  return f;
}

void expect_hits_equal(const QueryHits& got, const QueryHits& want,
                       const std::string& label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (std::size_t q = 0; q < want.size(); ++q) {
    ASSERT_EQ(got[q].size(), want[q].size()) << label << " query " << q;
    for (std::size_t h = 0; h < want[q].size(); ++h) {
      EXPECT_EQ(got[q][h].protein_id, want[q][h].protein_id)
          << label << " q" << q << " h" << h;
      EXPECT_EQ(got[q][h].end, want[q][h].end)
          << label << " q" << q << " h" << h;
      EXPECT_DOUBLE_EQ(got[q][h].score, want[q][h].score)
          << label << " q" << q << " h" << h;
    }
  }
}

serve::ServiceOptions default_options() {
  serve::ServiceOptions options;
  options.arrivals.kind = serve::ArrivalKind::kPoisson;
  options.arrivals.rate_qps = 400.0;
  options.arrivals.seed = 77;
  options.batch.max_batch = 6;
  options.batch.max_wait_s = 0.02;
  options.admission.max_outstanding = 256;
  return options;
}

// ---------------------------------------------------------------------------
// Satellite: streamed per-shard merge == one-shot TopK, any shard order.

TEST(IncrementalTopK, MatchesOneShotForAnyShardOrder) {
  const Fixture& f = fixture();
  const SearchEngine engine(f.config);
  const PreparedQueries prepared = engine.prepare(
      std::span<const Spectrum>(f.queries.data(), f.queries.size()));

  for (const int shards : {3, 5, 8}) {
    // Per-shard partial top-τ lists, one vector<TopK> per shard.
    std::vector<std::vector<TopK<Hit>>> partials;
    for (int s = 0; s < shards; ++s) {
      const ProteinDatabase shard_db =
          load_database_shard(f.image, s, shards);
      std::vector<TopK<Hit>> tops = engine.make_tops(f.queries.size());
      engine.search_shard(shard_db, prepared, tops, nullptr, nullptr);
      partials.push_back(std::move(tops));
    }

    // Absorb in several deterministic random orders (plus forward and
    // reverse) and require the exact serial lists every time — the shard
    // order a crashed-and-recovered service sees is just another
    // permutation.
    std::vector<std::size_t> order(static_cast<std::size_t>(shards));
    for (std::size_t s = 0; s < order.size(); ++s) order[s] = s;
    Xoshiro256 rng(900 + static_cast<std::uint64_t>(shards));
    for (int trial = 0; trial < 6; ++trial) {
      if (trial == 1) {
        std::reverse(order.begin(), order.end());
      } else if (trial > 1) {
        for (std::size_t i = order.size() - 1; i > 0; --i)
          std::swap(order[i], order[rng() % (i + 1)]);
      }
      QueryHits streamed(f.queries.size());
      for (std::size_t q = 0; q < f.queries.size(); ++q) {
        IncrementalTopK<Hit> merged(f.config.tau,
                                    static_cast<std::size_t>(shards));
        for (const std::size_t s : order) {
          EXPECT_FALSE(merged.complete());
          merged.absorb(s, partials[s][q]);
        }
        ASSERT_TRUE(merged.complete());
        streamed[q] = merged.finalize();
      }
      expect_hits_equal(streamed, f.serial,
                        "shards=" + std::to_string(shards) + " trial=" +
                            std::to_string(trial));
    }
  }
}

TEST(IncrementalTopK, RejectsDoubleAbsorbAndEarlyFinalize) {
  IncrementalTopK<Hit> merged(4, 2);
  TopK<Hit> partial(4);
  merged.absorb(0, partial);
  EXPECT_THROW(merged.absorb(0, partial), InvalidArgument);
  EXPECT_THROW(merged.finalize(), InvalidArgument);
  EXPECT_THROW(merged.absorb(2, partial), InvalidArgument);
}

// ---------------------------------------------------------------------------
// The service reproduces the serial hit lists.

TEST(Service, MultiBatchRingMatchesSerialHits) {
  const Fixture& f = fixture();
  for (const int p : {4, 7}) {
    const sim::Runtime runtime(p);
    const serve::ServiceResult result = serve::run_service(
        runtime, f.image, f.queries, f.config, default_options());
    EXPECT_EQ(result.completed, f.queries.size());
    EXPECT_EQ(result.shed, 0u);
    expect_hits_equal(result.hits, f.serial, "multi p=" + std::to_string(p));
    EXPECT_GT(result.batches, 1u);
    EXPECT_EQ(result.latency.count, f.queries.size());
    for (const serve::QueryOutcome& q : result.outcomes) {
      EXPECT_FALSE(q.shed);
      EXPECT_LE(q.arrival_s, q.admit_s);
      EXPECT_LE(q.admit_s, q.dispatch_s);
      EXPECT_LT(q.dispatch_s, q.complete_s);
    }
  }
}

TEST(Service, NaiveModeMatchesAndIsSlower) {
  const Fixture& f = fixture();
  const sim::Runtime runtime(6);
  serve::ServiceOptions options = default_options();

  options.mode = serve::DispatchMode::kMultiBatchRing;
  const serve::ServiceResult multi =
      serve::run_service(runtime, f.image, f.queries, f.config, options);
  options.mode = serve::DispatchMode::kBatchAtATime;
  const serve::ServiceResult naive =
      serve::run_service(runtime, f.image, f.queries, f.config, options);

  expect_hits_equal(naive.hits, f.serial, "naive");
  expect_hits_equal(multi.hits, f.serial, "multi");
  EXPECT_EQ(naive.completed, f.queries.size());
  // The continuous ring amortizes rotations over in-flight batches; the
  // batch-at-a-time baseline pays a full rotation per batch, so it can
  // never finish sooner and uses at least as many ring steps.
  EXPECT_LE(multi.makespan_s, naive.makespan_s);
  EXPECT_LE(multi.ring_steps, naive.ring_steps);
  EXPECT_GE(multi.throughput_qps, naive.throughput_qps);
}

// ---------------------------------------------------------------------------
// Determinism: reruns and kernel thread counts change nothing observable.

TEST(Service, DeterministicAcrossRerunsAndKernelThreads) {
  const Fixture& f = fixture();
  const sim::Runtime runtime(5);

  auto run_with_threads = [&](std::size_t threads) {
    SearchConfig config = f.config;
    config.kernel_threads = threads;
    return serve::run_service(runtime, f.image, f.queries, config,
                              default_options());
  };

  const serve::ServiceResult a = run_with_threads(1);
  const serve::ServiceResult b = run_with_threads(1);
  const serve::ServiceResult c = run_with_threads(3);

  for (const serve::ServiceResult* other : {&b, &c}) {
    expect_hits_equal(other->hits, a.hits, "rerun");
    ASSERT_EQ(other->outcomes.size(), a.outcomes.size());
    for (std::size_t q = 0; q < a.outcomes.size(); ++q) {
      EXPECT_EQ(other->outcomes[q].arrival_s, a.outcomes[q].arrival_s);
      EXPECT_EQ(other->outcomes[q].admit_s, a.outcomes[q].admit_s);
      EXPECT_EQ(other->outcomes[q].dispatch_s, a.outcomes[q].dispatch_s);
      EXPECT_EQ(other->outcomes[q].complete_s, a.outcomes[q].complete_s);
      EXPECT_EQ(other->outcomes[q].batch_id, a.outcomes[q].batch_id);
    }
    EXPECT_EQ(other->ring_steps, a.ring_steps);
    EXPECT_EQ(other->makespan_s, a.makespan_s);
    EXPECT_EQ(other->latency.p99, a.latency.p99);
    EXPECT_EQ(other->report.total_time(), a.report.total_time());
  }
}

// ---------------------------------------------------------------------------
// Fault schedules: orphaned queries re-enter admission and still finish
// with the exact serial hits.

TEST(Service, CrashOrphansAreReadmittedAndComplete) {
  const Fixture& f = fixture();
  const int p = 5;
  sim::FaultModel faults;
  faults.crash(2, 3);  // rank 2 dies at service ring step 3, mid-flight
  const sim::Runtime runtime(p, {}, {}, faults);

  const serve::ServiceResult result = serve::run_service(
      runtime, f.image, f.queries, f.config, default_options());

  EXPECT_EQ(result.completed, f.queries.size());
  EXPECT_EQ(result.shed, 0u);
  expect_hits_equal(result.hits, f.serial, "crash");
  std::uint32_t redispatches = 0;
  for (const serve::QueryOutcome& q : result.outcomes)
    redispatches += q.redispatches;
  EXPECT_GT(redispatches, 0u);
  EXPECT_TRUE(result.report.has_fault_activity());

  // And the faulty run is itself deterministic.
  const serve::ServiceResult again = serve::run_service(
      runtime, f.image, f.queries, f.config, default_options());
  expect_hits_equal(again.hits, result.hits, "crash rerun");
  EXPECT_EQ(again.makespan_s, result.makespan_s);
}

// ---------------------------------------------------------------------------
// Admission control: shed drops deterministically, delay completes all.

TEST(Service, OverloadShedsOrDelaysDeterministically) {
  const Fixture& f = fixture();
  const sim::Runtime runtime(4);
  serve::ServiceOptions options = default_options();
  options.arrivals.kind = serve::ArrivalKind::kBurst;
  options.arrivals.burst_size = 12;
  options.arrivals.burst_gap_s = 0.1;
  options.admission.max_outstanding = 8;

  options.admission.overload = serve::OverloadPolicy::kShed;
  const serve::ServiceResult shed =
      serve::run_service(runtime, f.image, f.queries, f.config, options);
  EXPECT_GT(shed.shed, 0u);
  EXPECT_EQ(shed.completed + shed.shed, f.queries.size());
  for (std::size_t q = 0; q < shed.outcomes.size(); ++q) {
    if (!shed.outcomes[q].shed) continue;
    EXPECT_TRUE(shed.hits[q].empty()) << "shed query " << q << " has hits";
    EXPECT_LT(shed.outcomes[q].complete_s, 0.0);
  }
  const serve::ServiceResult shed_again =
      serve::run_service(runtime, f.image, f.queries, f.config, options);
  ASSERT_EQ(shed_again.outcomes.size(), shed.outcomes.size());
  for (std::size_t q = 0; q < shed.outcomes.size(); ++q)
    EXPECT_EQ(shed_again.outcomes[q].shed, shed.outcomes[q].shed) << q;

  options.admission.overload = serve::OverloadPolicy::kDelay;
  const serve::ServiceResult delay =
      serve::run_service(runtime, f.image, f.queries, f.config, options);
  EXPECT_EQ(delay.shed, 0u);
  EXPECT_EQ(delay.completed, f.queries.size());
  expect_hits_equal(delay.hits, f.serial, "delay");
  bool backpressured = false;
  for (const serve::QueryOutcome& q : delay.outcomes)
    if (q.admit_s > q.arrival_s) backpressured = true;
  EXPECT_TRUE(backpressured) << "delay policy never queued an arrival";
  // Backpressure trades latency for completeness: the delay run completes
  // more queries than the shed run at the same capacity.
  EXPECT_GT(delay.completed, shed.completed);
}

// ---------------------------------------------------------------------------
// Traces: serve lane present, validator clean, byte-identical across runs.

TEST(Service, TraceValidatesWithServeLane) {
  const Fixture& f = fixture();
  sim::Runtime runtime(4);
  runtime.enable_tracing();

  const serve::ServiceResult result = serve::run_service(
      runtime, f.image, f.queries, f.config, default_options());
  const std::string trace = result.report.to_chrome_trace();
  EXPECT_EQ(sim::validate_chrome_trace(trace), "");
  EXPECT_NE(trace.find("\"serve\""), std::string::npos);
  EXPECT_NE(trace.find("serve-admit"), std::string::npos);
  EXPECT_NE(trace.find("serve-dispatch"), std::string::npos);
  EXPECT_NE(trace.find("serve-publish"), std::string::npos);

  const serve::ServiceResult again = serve::run_service(
      runtime, f.image, f.queries, f.config, default_options());
  EXPECT_EQ(again.report.to_chrome_trace(), trace);

  // Faulty traces validate too, with the shed/admit markers intact.
  sim::FaultModel faults;
  faults.crash(1, 2);
  sim::Runtime faulty(4, {}, {}, faults);
  faulty.enable_tracing();
  const serve::ServiceResult crashed = serve::run_service(
      faulty, f.image, f.queries, f.config, default_options());
  EXPECT_EQ(sim::validate_chrome_trace(crashed.report.to_chrome_trace()), "");
}

// ---------------------------------------------------------------------------
// simcheck: the service's cross-batch window reads are race-free.

TEST(Service, SimcheckCleanIncludingFaults) {
  const Fixture& f = fixture();
  std::vector<sim::check::Violation> violations;

  sim::Runtime runtime(4);
  runtime.set_check_sink(&violations);
  const serve::ServiceResult clean = serve::run_service(
      runtime, f.image, f.queries, f.config, default_options());
  EXPECT_EQ(clean.completed, f.queries.size());
  EXPECT_TRUE(violations.empty()) << violations.size() << " violations";

  sim::FaultModel faults;
  faults.crash(3, 2);
  sim::Runtime faulty(4, {}, {}, faults);
  faulty.set_check_sink(&violations);
  const serve::ServiceResult crashed = serve::run_service(
      faulty, f.image, f.queries, f.config, default_options());
  EXPECT_EQ(crashed.completed, f.queries.size());
  EXPECT_TRUE(violations.empty()) << violations.size() << " violations";
}

// ---------------------------------------------------------------------------
// Arrival schedules and latency summaries.

TEST(Arrivals, SchedulesAreDeterministicAndOrdered) {
  serve::ArrivalModel model;
  for (const serve::ArrivalKind kind :
       {serve::ArrivalKind::kUniform, serve::ArrivalKind::kPoisson,
        serve::ArrivalKind::kBurst}) {
    model.kind = kind;
    const std::vector<double> a = serve::make_arrivals(model, 50);
    const std::vector<double> b = serve::make_arrivals(model, 50);
    ASSERT_EQ(a.size(), 50u);
    EXPECT_EQ(a, b) << serve::arrival_kind_name(kind);
    EXPECT_TRUE(std::is_sorted(a.begin(), a.end()))
        << serve::arrival_kind_name(kind);
    EXPECT_GE(a.front(), 0.0);
  }
  model.kind = serve::ArrivalKind::kReplay;
  model.replay_times = {0.0, 0.5, 0.5, 2.0};
  EXPECT_EQ(serve::make_arrivals(model, 3),
            (std::vector<double>{0.0, 0.5, 0.5}));
  model.replay_times = {1.0, 0.5};
  EXPECT_THROW(serve::make_arrivals(model, 2), InvalidArgument);
  EXPECT_THROW(serve::arrival_kind_from_name("bogus"), InvalidArgument);
}

TEST(Slo, LatencySummaryNearestRank) {
  std::vector<double> sample;
  for (int i = 100; i >= 1; --i) sample.push_back(static_cast<double>(i));
  const serve::LatencySummary s = serve::summarize_latencies(sample);
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.mean, 50.5);
  EXPECT_DOUBLE_EQ(s.p50, 50.0);
  EXPECT_DOUBLE_EQ(s.p95, 95.0);
  EXPECT_DOUBLE_EQ(s.p99, 99.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  const serve::LatencySummary empty = serve::summarize_latencies({});
  EXPECT_EQ(empty.count, 0u);
  EXPECT_EQ(empty.p99, 0.0);
}

}  // namespace
}  // namespace msp
