// Property-based and fuzz tests across modules: parameterized sweeps of the
// validation invariants, plus robustness of every parser against arbitrary
// and truncated input (must throw IoError or succeed — never crash).
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <tuple>

#include "core/algorithm_a.hpp"
#include "core/packdb.hpp"
#include "core/partition.hpp"
#include "core/search_engine.hpp"
#include "dbgen/protein_gen.hpp"
#include "dbgen/query_gen.hpp"
#include "io/fasta.hpp"
#include "io/mgf.hpp"
#include "io/pkl.hpp"
#include "mass/digest.hpp"
#include "util/rng.hpp"

namespace msp {
namespace {

// ---------- engine invariants over the config space ----------

// (tolerance, tau, model): at every point, Algorithm A on 3 ranks equals
// the serial engine hit-for-hit, and all hits respect the mass window.
class ConfigSweep
    : public ::testing::TestWithParam<std::tuple<double, int, ScoreModel>> {};

TEST_P(ConfigSweep, ParallelEqualsSerialAndWindowHolds) {
  const auto [tolerance, tau, model] = GetParam();
  ProteinGenOptions db_options;
  db_options.sequence_count = 40;
  db_options.mean_length = 120;
  db_options.seed = 5150;
  const ProteinDatabase db = generate_proteins(db_options);
  const std::string image = to_fasta_string(db);
  QueryGenOptions q_options;
  q_options.query_count = 8;
  q_options.seed = 5151;
  const auto queries = spectra_of(generate_queries(db, q_options));

  SearchConfig config;
  config.tolerance_da = tolerance;
  config.tau = static_cast<std::size_t>(tau);
  config.min_candidate_length = 4;
  config.model = model;

  const SearchEngine engine(config);
  const QueryHits serial = engine.search(db, queries);
  const PreparedQueries prepared = engine.prepare(queries);

  const sim::Runtime runtime(3);
  const ParallelRunResult parallel =
      run_algorithm_a(runtime, image, queries, config);

  ASSERT_EQ(parallel.hits.size(), serial.size());
  for (std::size_t q = 0; q < serial.size(); ++q) {
    ASSERT_EQ(parallel.hits[q].size(), serial[q].size()) << "query " << q;
    for (std::size_t h = 0; h < serial[q].size(); ++h) {
      EXPECT_EQ(parallel.hits[q][h], serial[q][h]) << "query " << q;
      EXPECT_LE(std::abs(serial[q][h].mass - prepared.masses[q]),
                tolerance + 1e-9);
    }
    EXPECT_LE(serial[q].size(), static_cast<std::size_t>(tau));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Space, ConfigSweep,
    ::testing::Combine(::testing::Values(0.5, 3.0, 10.0),
                       ::testing::Values(1, 5, 50),
                       ::testing::Values(ScoreModel::kLikelihood,
                                         ScoreModel::kHyperscore,
                                         ScoreModel::kXcorr)));

// ---------- digestion invariants over random sequences ----------

class DigestSweep : public ::testing::TestWithParam<int> {};

TEST_P(DigestSweep, AllPeptidesHaveEnzymaticTermini) {
  Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()));
  std::string sequence;
  for (int i = 0; i < 200; ++i)
    sequence.push_back(residue_from_index(static_cast<int>(rng.bounded(20))));

  DigestOptions options;
  options.min_length = 2;
  options.max_length = 100;
  options.missed_cleavages = 2;
  for (const DigestedPeptide& peptide : digest_tryptic(sequence, options)) {
    // N-terminus: sequence start, or preceded by a cleavage site.
    if (peptide.offset != 0) {
      EXPECT_TRUE(is_tryptic_site(sequence, peptide.offset - 1))
          << "offset " << peptide.offset;
    }
    // C-terminus: sequence end, or itself a cleavage site.
    const std::size_t last = peptide.offset + peptide.length - 1;
    if (last + 1 != sequence.size()) {
      EXPECT_TRUE(is_tryptic_site(sequence, last)) << "last " << last;
    }
    // Missed-cleavage count matches the internal sites spanned.
    std::size_t internal_sites = 0;
    for (std::size_t i = peptide.offset; i < last; ++i)
      if (is_tryptic_site(sequence, i)) ++internal_sites;
    EXPECT_EQ(internal_sites, peptide.missed);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DigestSweep, ::testing::Range(1, 9));

// ---------- mass invariants over random peptides ----------

TEST(MassProperty, IndexMatchesDirectMassForRandomPeptides) {
  Xoshiro256 rng(2718);
  for (int trial = 0; trial < 50; ++trial) {
    std::string peptide;
    const std::size_t length = 2 + rng.bounded(80);
    for (std::size_t i = 0; i < length; ++i)
      peptide.push_back(residue_from_index(static_cast<int>(rng.bounded(20))));
    const FragmentMassIndex index(peptide);
    const std::size_t k = 1 + rng.bounded(length);
    EXPECT_NEAR(index.prefix_mass(k), peptide_mass(peptide.substr(0, k)), 1e-8);
    EXPECT_NEAR(index.suffix_mass(k),
                peptide_mass(peptide.substr(length - k)), 1e-8);
    // Prefix + suffix of complementary lengths = whole + water.
    EXPECT_NEAR(index.prefix_mass(k) + index.suffix_mass(length - k),
                peptide_mass(peptide) + kWaterMass, 1e-8);
  }
}

// ---------- parser fuzzing: arbitrary input never crashes ----------

std::string random_bytes(Xoshiro256& rng, std::size_t max_length) {
  std::string bytes;
  const std::size_t length = rng.bounded(max_length);
  for (std::size_t i = 0; i < length; ++i)
    bytes.push_back(static_cast<char>(rng.bounded(256)));
  return bytes;
}

std::string random_texty(Xoshiro256& rng, std::size_t max_length) {
  static constexpr char kChars[] =
      ">ACDEFGHIKLMNPQRSTVWY \n\t0123456789.=+BEGINIONSEND";
  std::string text;
  const std::size_t length = rng.bounded(max_length);
  for (std::size_t i = 0; i < length; ++i)
    text.push_back(kChars[rng.bounded(sizeof(kChars) - 1)]);
  return text;
}

TEST(Fuzz, FastaParserNeverCrashes) {
  Xoshiro256 rng(101);
  for (int trial = 0; trial < 300; ++trial) {
    std::istringstream in(trial % 2 ? random_bytes(rng, 400)
                                    : random_texty(rng, 400));
    try {
      (void)read_fasta(in);
    } catch (const IoError&) {
      // malformed input is expected to throw, not crash
    }
  }
}

TEST(Fuzz, MgfParserNeverCrashes) {
  Xoshiro256 rng(102);
  for (int trial = 0; trial < 300; ++trial) {
    std::istringstream in(trial % 2 ? random_bytes(rng, 400)
                                    : random_texty(rng, 400));
    try {
      (void)read_mgf(in);
    } catch (const IoError&) {
    }
  }
}

TEST(Fuzz, PklParserNeverCrashes) {
  Xoshiro256 rng(103);
  for (int trial = 0; trial < 300; ++trial) {
    std::istringstream in(trial % 2 ? random_bytes(rng, 400)
                                    : random_texty(rng, 400));
    try {
      (void)read_pkl(in);
    } catch (const IoError&) {
    }
  }
}

// ---------- packed-database round trip ----------
// pack/unpack is the wire format every shard rotation — and, under crash
// recovery, every replica re-pull — rides on. Any database must survive the
// round trip losslessly.

TEST(PackedDatabase, RoundTripIsLosslessOnRandomDatabases) {
  Xoshiro256 rng(20260806);
  for (int trial = 0; trial < 25; ++trial) {
    ProteinGenOptions options;
    options.sequence_count = rng.bounded(40);  // includes empty databases
    options.mean_length = 40.0 + rng.uniform(0.0, 200.0);
    options.seed = rng();
    const ProteinDatabase db = generate_proteins(options);
    const std::vector<char> packed = pack_database(db);
    const ProteinDatabase back = unpack_database(packed);
    ASSERT_EQ(back.proteins.size(), db.proteins.size()) << "trial " << trial;
    for (std::size_t i = 0; i < db.proteins.size(); ++i) {
      EXPECT_EQ(back.proteins[i].id, db.proteins[i].id)
          << "trial " << trial << " protein " << i;
      EXPECT_EQ(back.proteins[i].residues, db.proteins[i].residues)
          << "trial " << trial << " protein " << i;
    }
    EXPECT_EQ(back.total_residues(), db.total_residues()) << "trial " << trial;
    // Packing the unpacked copy yields the identical byte stream.
    EXPECT_EQ(pack_database(back), packed) << "trial " << trial;
  }
}

TEST(PackedDatabase, RoundTripEdgeCases) {
  const ProteinDatabase empty;
  EXPECT_EQ(unpack_database(pack_database(empty)).proteins.size(), 0u);

  ProteinDatabase awkward;
  Protein spacey;
  spacey.id = "sp|P12345|TEST_HUMAN description with spaces";
  spacey.residues = "M";
  Protein blank;  // empty id and empty sequence still round-trip
  awkward.proteins = {spacey, blank};
  const ProteinDatabase back = unpack_database(pack_database(awkward));
  ASSERT_EQ(back.proteins.size(), 2u);
  EXPECT_EQ(back.proteins[0].id, spacey.id);
  EXPECT_EQ(back.proteins[0].residues, "M");
  EXPECT_TRUE(back.proteins[1].id.empty());
  EXPECT_TRUE(back.proteins[1].residues.empty());
}

TEST(Fuzz, PackedDatabaseTruncationsAlwaysThrowOrParse) {
  ProteinGenOptions options;
  options.sequence_count = 10;
  const ProteinDatabase db = generate_proteins(options);
  const std::vector<char> bytes = pack_database(db);
  for (std::size_t cut = 0; cut < bytes.size(); cut += 7) {
    std::vector<char> truncated(bytes.begin(),
                                bytes.begin() + static_cast<long>(cut));
    try {
      (void)unpack_database(truncated);
    } catch (const IoError&) {
    }
  }
}

TEST(Fuzz, PackedDatabaseBitFlipsNeverCrash) {
  ProteinGenOptions options;
  options.sequence_count = 6;
  const ProteinDatabase db = generate_proteins(options);
  const std::vector<char> bytes = pack_database(db);
  Xoshiro256 rng(104);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<char> corrupted = bytes;
    const std::size_t position = rng.bounded(corrupted.size());
    corrupted[position] ^= static_cast<char>(1u << rng.bounded(8));
    try {
      (void)unpack_database(corrupted);
    } catch (const Error&) {
      // IoError (truncation) or other msp::Error (bad residues) both fine
    } catch (const std::length_error&) {
      // a corrupted length prefix may exceed vector limits — also fine
    } catch (const std::bad_alloc&) {
      // or request an absurd-but-valid allocation
    }
  }
}

// ---------- chunk loading over random line widths ----------

class WrapSweep : public ::testing::TestWithParam<int> {};

TEST_P(WrapSweep, ChunkPartitionIsExactForAnyLineWidth) {
  const std::size_t width = static_cast<std::size_t>(GetParam());
  ProteinGenOptions options;
  options.sequence_count = 30;
  options.mean_length = 90;
  options.seed = 42 + width;
  const ProteinDatabase db = generate_proteins(options);
  const std::string image = to_fasta_string(db, width);
  for (int p : {2, 5, 9}) {
    std::size_t total = 0;
    for (int r = 0; r < p; ++r)
      total += load_database_shard(image, r, p).sequence_count();
    EXPECT_EQ(total, db.sequence_count()) << "width " << width << " p " << p;
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, WrapSweep,
                         ::testing::Values(1, 3, 17, 60, 200, 10000));

}  // namespace
}  // namespace msp
