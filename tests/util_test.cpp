// Unit tests for src/util: stats, RNG, CLI, table, strings.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

#include "util/backoff.hpp"
#include "util/base64.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/str.hpp"
#include "util/table.hpp"

namespace msp {
namespace {

// ---------- Accumulator ----------

TEST(Accumulator, EmptyIsZero) {
  Accumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
  EXPECT_DOUBLE_EQ(acc.stddev(), 0.0);
}

TEST(Accumulator, KnownMoments) {
  Accumulator acc;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.add(x);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  // Sample stddev of this classic dataset: sqrt(32/7).
  EXPECT_NEAR(acc.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);
  EXPECT_DOUBLE_EQ(acc.sum(), 40.0);
}

TEST(Accumulator, MergeMatchesSequential) {
  Accumulator left, right, all;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(i) * 10.0;
    (i < 37 ? left : right).add(x);
    all.add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(left.stddev(), all.stddev(), 1e-12);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(Accumulator, MergeWithEmpty) {
  Accumulator a, empty;
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 3.0);
}

// ---------- Histogram ----------

TEST(Histogram, BinningAndClamping) {
  Histogram hist(0.0, 10.0, 10);
  hist.add(0.5);    // bin 0
  hist.add(9.99);   // bin 9
  hist.add(-5.0);   // clamps to bin 0
  hist.add(50.0);   // clamps to bin 9
  EXPECT_EQ(hist.bin_count(0), 2u);
  EXPECT_EQ(hist.bin_count(9), 2u);
  EXPECT_EQ(hist.total(), 4u);
}

TEST(Histogram, QuantileMonotone) {
  Histogram hist(0.0, 100.0, 100);
  for (int i = 0; i < 1000; ++i) hist.add(static_cast<double>(i % 100));
  EXPECT_LE(hist.quantile(0.1), hist.quantile(0.5));
  EXPECT_LE(hist.quantile(0.5), hist.quantile(0.9));
  EXPECT_NEAR(hist.quantile(0.5), 50.0, 2.0);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), InvalidArgument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), InvalidArgument);
}

// ---------- LinearFit ----------

TEST(LinearFit, ExactLine) {
  std::vector<double> x{1, 2, 3, 4, 5};
  std::vector<double> y{3, 5, 7, 9, 11};  // y = 1 + 2x
  const LinearFit fit = fit_linear(x, y);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-9);
  EXPECT_NEAR(fit.slope, 2.0, 1e-9);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-9);
}

TEST(LinearFit, RejectsMismatchedInput) {
  EXPECT_THROW(fit_linear({1.0}, {1.0, 2.0}), InvalidArgument);
  EXPECT_THROW(fit_linear({1.0}, {1.0}), InvalidArgument);
}

// ---------- RNG ----------

TEST(Rng, DeterministicStreams) {
  Xoshiro256 a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
  bool any_different = false;
  Xoshiro256 a2(42);
  for (int i = 0; i < 100; ++i) any_different |= (a2() != c());
  EXPECT_TRUE(any_different);
}

TEST(Rng, UniformInRange) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, BoundedInRange) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.bounded(17), 17u);
}

TEST(Rng, NormalMomentsApproximately) {
  Xoshiro256 rng(11);
  Accumulator acc;
  for (int i = 0; i < 20000; ++i) acc.add(rng.normal());
  EXPECT_NEAR(acc.mean(), 0.0, 0.05);
  EXPECT_NEAR(acc.stddev(), 1.0, 0.05);
}

TEST(Rng, PoissonMeanApproximately) {
  Xoshiro256 rng(13);
  Accumulator small, large;
  for (int i = 0; i < 20000; ++i) small.add(static_cast<double>(rng.poisson(3.0)));
  for (int i = 0; i < 20000; ++i) large.add(static_cast<double>(rng.poisson(100.0)));
  EXPECT_NEAR(small.mean(), 3.0, 0.1);
  EXPECT_NEAR(large.mean(), 100.0, 1.0);
  EXPECT_EQ(rng.poisson(0.0), 0u);
}

// ---------- Cli ----------

TEST(Cli, ParsesAllKinds) {
  Cli cli("prog", "test");
  cli.add_flag("verbose", "flag");
  cli.add_int("count", 5, "int");
  cli.add_double("ratio", 0.5, "double");
  cli.add_string("name", "x", "string");
  const char* argv[] = {"prog", "--verbose", "--count", "12",
                        "--ratio=2.25", "--name", "abc"};
  ASSERT_TRUE(cli.parse(7, argv));
  EXPECT_TRUE(cli.flag("verbose"));
  EXPECT_EQ(cli.get_int("count"), 12);
  EXPECT_DOUBLE_EQ(cli.get_double("ratio"), 2.25);
  EXPECT_EQ(cli.get_string("name"), "abc");
}

TEST(Cli, DefaultsSurviveWhenUnset) {
  Cli cli("prog", "test");
  cli.add_int("count", 5, "int");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(cli.parse(1, argv));
  EXPECT_EQ(cli.get_int("count"), 5);
}

TEST(Cli, RejectsUnknownAndMalformed) {
  Cli cli("prog", "test");
  cli.add_int("count", 5, "int");
  const char* unknown[] = {"prog", "--nope", "3"};
  EXPECT_THROW(cli.parse(3, unknown), InvalidArgument);
  const char* bad_int[] = {"prog", "--count", "abc"};
  EXPECT_THROW(cli.parse(3, bad_int), InvalidArgument);
  const char* missing[] = {"prog", "--count"};
  EXPECT_THROW(cli.parse(2, missing), InvalidArgument);
}

TEST(Cli, IntListParsing) {
  Cli cli("prog", "test");
  cli.add_string("procs", "1,2,4,8", "list");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(cli.parse(1, argv));
  EXPECT_EQ(cli.get_int_list("procs"),
            (std::vector<std::int64_t>{1, 2, 4, 8}));
}

// ---------- Table ----------

TEST(Table, FormatsAlignedGrid) {
  Table table({"a", "bb"});
  table.add_row({"1", "2"});
  table.add_row({"333", "4"});
  const std::string text = table.to_string();
  EXPECT_NE(text.find("| 333 |"), std::string::npos);
  EXPECT_EQ(table.rows(), 2u);
}

TEST(Table, RejectsArityMismatch) {
  Table table({"a", "b"});
  EXPECT_THROW(table.add_row({"1"}), InvalidArgument);
}

TEST(Table, CellFormatsNanAsDash) {
  EXPECT_EQ(Table::cell(std::nan("")), "-");
  EXPECT_EQ(Table::cell(1.23456, 2), "1.23");
  EXPECT_EQ(Table::cell(std::size_t{42}), "42");
}

// ---------- strings ----------

TEST(Str, SplitAndTrim) {
  EXPECT_EQ(split("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(trim("  hi \t\n"), "hi");
  EXPECT_EQ(trim(""), "");
}

TEST(Str, Formatters) {
  EXPECT_EQ(group_digits(0), "0");
  EXPECT_EQ(group_digits(999), "999");
  EXPECT_EQ(group_digits(2655064), "2,655,064");
  EXPECT_EQ(format_bytes(512), "512.0 B");
  EXPECT_NE(format_bytes(1 << 20).find("MiB"), std::string::npos);
}

TEST(Str, Predicates) {
  EXPECT_TRUE(starts_with("foobar", "foo"));
  EXPECT_FALSE(starts_with("fo", "foo"));
  EXPECT_EQ(to_upper("aBc"), "ABC");
}

// ---------- base64 ----------

TEST(Base64, Rfc4648TestVectors) {
  auto encode_text = [](std::string_view text) {
    return base64_encode(text.data(), text.size());
  };
  EXPECT_EQ(encode_text(""), "");
  EXPECT_EQ(encode_text("f"), "Zg==");
  EXPECT_EQ(encode_text("fo"), "Zm8=");
  EXPECT_EQ(encode_text("foo"), "Zm9v");
  EXPECT_EQ(encode_text("foob"), "Zm9vYg==");
  EXPECT_EQ(encode_text("fooba"), "Zm9vYmE=");
  EXPECT_EQ(encode_text("foobar"), "Zm9vYmFy");
}

TEST(Base64, RoundTripBinary) {
  Xoshiro256 rng(55);
  for (std::size_t length : {0u, 1u, 2u, 3u, 100u, 257u}) {
    std::vector<std::uint8_t> bytes(length);
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.bounded(256));
    const std::string encoded = base64_encode(bytes);
    EXPECT_EQ(base64_decode(encoded), bytes) << length;
  }
}

TEST(Base64, DecodeToleratesWhitespace) {
  EXPECT_EQ(base64_decode("Zm9v\n  YmFy\t"),
            (std::vector<std::uint8_t>{'f', 'o', 'o', 'b', 'a', 'r'}));
}

TEST(Base64, DecodeRejectsGarbage) {
  EXPECT_THROW(base64_decode("Zm9v!"), InvalidArgument);
  EXPECT_THROW(base64_decode("Zg==Zg"), InvalidArgument);  // data after pad
  EXPECT_THROW(base64_decode("Z"), InvalidArgument);       // truncated
  EXPECT_THROW(base64_decode("Zg==="), InvalidArgument);   // excess pad
}

// ---------- error macros ----------

TEST(Error, CheckThrowsWithContext) {
  try {
    MSP_CHECK_MSG(false, "value was " << 42);
    FAIL() << "expected throw";
  } catch (const InvalidArgument& error) {
    EXPECT_NE(std::string(error.what()).find("value was 42"), std::string::npos);
  }
}

// ---------- exponential backoff ----------

TEST(Backoff, ClosedFormMatchesDoubling) {
  EXPECT_DOUBLE_EQ(exponential_backoff(0, 1e-3, 16e-3), 1e-3);
  EXPECT_DOUBLE_EQ(exponential_backoff(1, 1e-3, 16e-3), 2e-3);
  EXPECT_DOUBLE_EQ(exponential_backoff(3, 1e-3, 16e-3), 8e-3);
  EXPECT_DOUBLE_EQ(exponential_backoff(4, 1e-3, 16e-3), 16e-3);
  EXPECT_DOUBLE_EQ(exponential_backoff(5, 1e-3, 16e-3), 16e-3);  // capped
}

TEST(Backoff, LargeRetryWithCapSaturatesAtCap) {
  EXPECT_DOUBLE_EQ(exponential_backoff(10'000, 1e-3, 16e-3), 16e-3);
  EXPECT_DOUBLE_EQ(
      exponential_backoff(std::numeric_limits<int>::max(), 1e-3, 16e-3),
      16e-3);
}

TEST(Backoff, DisabledCapNeverOverflowsToInfinity) {
  // The old doubling loop overflowed to inf for large retry counts with a
  // non-positive cap; the closed form saturates at the largest finite
  // double instead.
  const double huge = exponential_backoff(5'000, 1e-3, 0.0);
  EXPECT_TRUE(std::isfinite(huge));
  EXPECT_DOUBLE_EQ(huge, std::numeric_limits<double>::max());
  // Small retries with the cap disabled stay exact.
  EXPECT_DOUBLE_EQ(exponential_backoff(10, 1e-3, 0.0), 1e-3 * 1024.0);
  EXPECT_DOUBLE_EQ(exponential_backoff(10, 1e-3, -1.0), 1e-3 * 1024.0);
}

TEST(Backoff, NegativeRetryClampsToBase) {
  EXPECT_DOUBLE_EQ(exponential_backoff(-5, 1e-3, 16e-3), 1e-3);
}

}  // namespace
}  // namespace msp
