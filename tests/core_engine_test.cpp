// Tests for the serial search kernel: candidate generation correctness
// (against a brute-force reference), partitioning, packing, and the engine's
// determinism guarantees.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <set>

#include "core/packdb.hpp"
#include "core/partition.hpp"
#include "core/wire.hpp"
#include "core/protein_inference.hpp"
#include "core/refinement.hpp"
#include "core/search_engine.hpp"
#include "dbgen/protein_gen.hpp"
#include "dbgen/query_gen.hpp"
#include "io/fasta.hpp"
#include "mass/amino_acid.hpp"
#include "util/error.hpp"

namespace msp {
namespace {

SearchConfig test_config() {
  SearchConfig config;
  config.tolerance_da = 3.0;
  config.tau = 5;
  config.min_candidate_length = 4;
  config.max_candidate_length = 50;
  config.model = ScoreModel::kSharedPeak;  // hand-checkable
  return config;
}

ProteinDatabase small_db() {
  ProteinGenOptions options;
  options.sequence_count = 40;
  options.mean_length = 120;
  options.seed = 31;
  return generate_proteins(options);
}

std::vector<Spectrum> small_queries(const ProteinDatabase& db,
                                    std::size_t count = 12) {
  QueryGenOptions options;
  options.query_count = count;
  options.digest.min_length = 6;
  options.digest.max_length = 20;
  return spectra_of(generate_queries(db, options));
}

// Brute-force candidate enumeration straight from the paper's definition.
struct BruteCandidate {
  std::string protein_id;
  std::uint32_t length;
  FragmentEnd end;
};

std::vector<BruteCandidate> brute_candidates(const ProteinDatabase& db,
                                             double query_mass,
                                             const SearchConfig& config) {
  std::vector<BruteCandidate> out;
  for (const Protein& protein : db.proteins) {
    const std::size_t len = protein.residues.size();
    const std::size_t max_k = std::min(len, config.max_candidate_length);
    for (std::size_t k = config.min_candidate_length; k <= max_k; ++k) {
      const std::string prefix = protein.residues.substr(0, k);
      if (std::abs(peptide_mass(prefix) - query_mass) <= config.tolerance_da)
        out.push_back({protein.id, static_cast<std::uint32_t>(k),
                       FragmentEnd::kPrefix});
      if (k < len) {
        const std::string suffix = protein.residues.substr(len - k);
        if (std::abs(peptide_mass(suffix) - query_mass) <= config.tolerance_da)
          out.push_back({protein.id, static_cast<std::uint32_t>(k),
                         FragmentEnd::kSuffix});
      }
    }
  }
  return out;
}

// ---------- candidate generation ----------

TEST(Engine, CandidateCountsMatchBruteForce) {
  const SearchConfig config = test_config();
  const SearchEngine engine(config);
  const ProteinDatabase db = small_db();
  const auto queries = small_queries(db);
  const PreparedQueries prepared = engine.prepare(queries);

  std::vector<std::uint64_t> per_query(queries.size(), 0);
  auto tops = engine.make_tops(queries.size());
  engine.search_shard(db, prepared, tops, &per_query);

  for (std::size_t q = 0; q < queries.size(); ++q) {
    const auto brute =
        brute_candidates(db, prepared.masses[q], config);
    EXPECT_EQ(per_query[q], brute.size()) << "query " << q;
  }
}

TEST(Engine, CandidateMassesWithinWindow) {
  const SearchConfig config = test_config();
  const SearchEngine engine(config);
  const ProteinDatabase db = small_db();
  const auto queries = small_queries(db);
  const PreparedQueries prepared = engine.prepare(queries);
  auto tops = engine.make_tops(queries.size());
  engine.search_shard(db, prepared, tops);
  const QueryHits hits = engine.finalize(tops);
  for (std::size_t q = 0; q < hits.size(); ++q)
    for (const Hit& hit : hits[q]) {
      EXPECT_LE(std::abs(hit.mass - prepared.masses[q]),
                config.tolerance_da + 1e-9);
      EXPECT_GE(hit.length, config.min_candidate_length);
      EXPECT_LE(hit.length, config.max_candidate_length);
      EXPECT_NEAR(peptide_mass(hit.peptide), hit.mass, 1e-6);
    }
}

TEST(Engine, FullSequenceCountedOnceAsPrefix) {
  // A database sequence whose full length is in the window must appear as a
  // prefix candidate only (no duplicate suffix of the same span).
  SearchConfig config = test_config();
  config.min_candidate_length = 2;
  const SearchEngine engine(config);
  ProteinDatabase db;
  db.proteins.push_back({"tiny", "GGGG"});  // mass known
  const double mass = peptide_mass("GGGG");
  Spectrum query({{100.0, 1.0}}, mz_from_mass(mass, 1), 1, "q");
  const std::vector<Spectrum> queries{query};
  const PreparedQueries prepared = engine.prepare(queries);
  std::vector<std::uint64_t> per_query(1, 0);
  auto tops = engine.make_tops(1);
  engine.search_shard(db, prepared, tops, &per_query);
  const QueryHits hits = engine.finalize(tops);
  std::size_t full_length_hits = 0;
  for (const Hit& hit : hits[0])
    if (hit.length == 4) ++full_length_hits;
  EXPECT_EQ(full_length_hits, 1u);
  EXPECT_EQ(hits[0][0].end, FragmentEnd::kPrefix);
}

TEST(Engine, EmptyInputsAreFine) {
  const SearchEngine engine(test_config());
  const ProteinDatabase db = small_db();
  const std::vector<Spectrum> no_queries;
  const PreparedQueries prepared = engine.prepare(no_queries);
  auto tops = engine.make_tops(0);
  const auto stats = engine.search_shard(db, prepared, tops);
  EXPECT_EQ(stats.candidates_evaluated, 0u);

  const auto queries = small_queries(db, 3);
  const PreparedQueries prepared2 = engine.prepare(queries);
  auto tops2 = engine.make_tops(3);
  const auto stats2 = engine.search_shard(ProteinDatabase{}, prepared2, tops2);
  EXPECT_EQ(stats2.candidates_evaluated, 0u);
}

TEST(Engine, ShardDecompositionEqualsWholeDatabase) {
  // Property at the heart of Algorithm A: searching shards one at a time
  // into the same tops produces exactly the whole-database result.
  const SearchConfig config = test_config();
  const SearchEngine engine(config);
  const ProteinDatabase db = small_db();
  const auto queries = small_queries(db);
  const PreparedQueries prepared = engine.prepare(queries);

  auto whole_tops = engine.make_tops(queries.size());
  engine.search_shard(db, prepared, whole_tops);
  const QueryHits whole = engine.finalize(whole_tops);

  for (int p : {2, 3, 7}) {
    const auto shards = partition_by_residues(db, p);
    auto tops = engine.make_tops(queries.size());
    for (const auto& shard : shards) engine.search_shard(shard, prepared, tops);
    const QueryHits pieces = engine.finalize(tops);
    ASSERT_EQ(pieces.size(), whole.size());
    for (std::size_t q = 0; q < whole.size(); ++q)
      EXPECT_EQ(pieces[q], whole[q]) << "p=" << p << " query " << q;
  }
}

TEST(Engine, ScoreCutoffFiltersReports) {
  SearchConfig config = test_config();
  config.score_cutoff = 1e9;  // nothing clears this
  const SearchEngine engine(config);
  const ProteinDatabase db = small_db();
  const auto queries = small_queries(db, 4);
  const QueryHits hits = engine.search(db, queries);
  for (const auto& list : hits) EXPECT_TRUE(list.empty());
}

TEST(Engine, TauLimitsHitListLength) {
  for (std::size_t tau : {1u, 3u, 10u}) {
    SearchConfig config = test_config();
    config.tau = tau;
    const SearchEngine engine(config);
    const ProteinDatabase db = small_db();
    const auto queries = small_queries(db, 6);
    const QueryHits hits = engine.search(db, queries);
    for (const auto& list : hits) {
      EXPECT_LE(list.size(), tau);
      EXPECT_TRUE(std::is_sorted(list.begin(), list.end(),
                                 TopK<Hit>::better));
    }
  }
}

TEST(Engine, AllScoreModelsRankTruePeptideFirst) {
  // Implanted-peptide sanity for every scoring model: with mild noise the
  // true peptide should top the list for most queries.
  const ProteinDatabase db = small_db();
  QueryGenOptions qopts;
  qopts.query_count = 15;
  qopts.noise.peak_dropout = 0.1;
  qopts.noise.noise_peaks_per_100da = 0.5;
  const auto generated = generate_queries(db, qopts);
  const auto queries = spectra_of(generated);

  for (ScoreModel model : {ScoreModel::kLikelihood, ScoreModel::kHyperscore,
                           ScoreModel::kSharedPeak}) {
    SearchConfig config = test_config();
    config.model = model;
    config.tau = 10;
    const SearchEngine engine(config);
    const QueryHits hits = engine.search(db, queries);
    std::size_t recovered = 0;
    for (std::size_t q = 0; q < hits.size(); ++q) {
      for (const Hit& hit : hits[q]) {
        if (hit.peptide.find(generated[q].true_peptide) != std::string::npos ||
            generated[q].true_peptide.find(hit.peptide) != std::string::npos) {
          ++recovered;
          break;
        }
      }
    }
    EXPECT_GE(recovered, hits.size() / 2)
        << "model " << static_cast<int>(model);
  }
}

// ---------- tryptic candidate extension ----------

TEST(Engine, TrypticCandidateCountsMatchBruteForce) {
  SearchConfig config = test_config();
  config.candidate_mode = CandidateMode::kTryptic;
  config.candidate_missed_cleavages = 2;
  const SearchEngine engine(config);
  const ProteinDatabase db = small_db();
  QueryGenOptions q_options;
  q_options.query_count = 8;
  q_options.anchored_only = false;
  const auto queries = spectra_of(generate_queries(db, q_options));
  const PreparedQueries prepared = engine.prepare(queries);

  std::vector<std::uint64_t> per_query(queries.size(), 0);
  auto tops = engine.make_tops(queries.size());
  engine.search_shard(db, prepared, tops, &per_query);

  for (std::size_t q = 0; q < queries.size(); ++q) {
    std::uint64_t brute = 0;
    for (const Protein& protein : db.proteins) {
      DigestOptions digest;
      digest.min_length = config.min_candidate_length;
      digest.max_length =
          std::min(protein.residues.size(), config.max_candidate_length);
      if (digest.max_length < digest.min_length) continue;
      digest.missed_cleavages = config.candidate_missed_cleavages;
      for (const auto& peptide : digest_tryptic(protein.residues, digest)) {
        const double mass =
            peptide_mass(peptide_string(protein.residues, peptide));
        if (std::abs(mass - prepared.masses[q]) <= config.tolerance_da)
          ++brute;
      }
    }
    EXPECT_EQ(per_query[q], brute) << "query " << q;
  }
}

TEST(Engine, TrypticModeRecoversInternalPeptides) {
  SearchConfig config = test_config();
  config.candidate_mode = CandidateMode::kTryptic;
  config.model = ScoreModel::kLikelihood;
  config.tau = 5;
  const SearchEngine engine(config);
  const ProteinDatabase db = small_db();
  QueryGenOptions q_options;
  q_options.query_count = 15;
  q_options.anchored_only = false;  // internal peptides allowed
  q_options.noise.peak_dropout = 0.1;
  const auto generated = generate_queries(db, q_options);
  const QueryHits hits = engine.search(db, spectra_of(generated));
  std::size_t recovered = 0;
  for (std::size_t q = 0; q < hits.size(); ++q) {
    for (const Hit& hit : hits[q]) {
      if (hit.peptide.find(generated[q].true_peptide) != std::string::npos ||
          generated[q].true_peptide.find(hit.peptide) != std::string::npos) {
        ++recovered;
        break;
      }
    }
  }
  EXPECT_GE(recovered, hits.size() * 7 / 10);
}

TEST(Engine, TrypticShardDecompositionEqualsWhole) {
  SearchConfig config = test_config();
  config.candidate_mode = CandidateMode::kTryptic;
  const SearchEngine engine(config);
  const ProteinDatabase db = small_db();
  const auto queries = small_queries(db, 6);
  const QueryHits whole = engine.search(db, queries);
  const PreparedQueries prepared = engine.prepare(queries);
  auto tops = engine.make_tops(queries.size());
  for (const auto& shard : partition_by_residues(db, 5))
    engine.search_shard(shard, prepared, tops);
  const QueryHits pieces = engine.finalize(tops);
  for (std::size_t q = 0; q < whole.size(); ++q)
    EXPECT_EQ(pieces[q], whole[q]) << "query " << q;
}

// ---------- charge-state hypotheses ----------

TEST(Engine, AlternateChargeRecoversMisassignedPrecursor) {
  // The instrument measured a 2+ precursor but the file claims 1+: the
  // reported parent mass is ~half the true one, so the plain search
  // misses. Searching charge hypotheses {1,2,3} recovers it.
  const ProteinDatabase db = small_db();
  QueryGenOptions q_options;
  q_options.query_count = 10;
  q_options.noise.charge = 2;  // true charge
  const auto generated = generate_queries(db, q_options);

  std::vector<Spectrum> mislabeled;
  for (const GeneratedQuery& query : generated) {
    // Same peaks and precursor m/z, charge field overwritten to 1.
    mislabeled.emplace_back(query.spectrum.peaks(),
                            query.spectrum.precursor_mz(), 1,
                            query.spectrum.title());
  }

  SearchConfig plain = test_config();
  plain.model = ScoreModel::kLikelihood;
  SearchConfig multi = plain;
  multi.try_alternate_charges = true;
  multi.charge_hypotheses = {1, 2, 3};

  auto recovered_with = [&](const SearchConfig& config) {
    const QueryHits hits = SearchEngine(config).search(db, mislabeled);
    std::size_t recovered = 0;
    for (std::size_t q = 0; q < hits.size(); ++q)
      for (const Hit& hit : hits[q])
        if (hit.peptide.find(generated[q].true_peptide) != std::string::npos ||
            generated[q].true_peptide.find(hit.peptide) != std::string::npos) {
          ++recovered;
          break;
        }
    return recovered;
  };
  EXPECT_EQ(recovered_with(plain), 0u);          // wrong mass window
  EXPECT_GE(recovered_with(multi), 8u);          // hypothesis z=2 matches
}

TEST(Engine, AlternateChargesAreSupersetOfPlainSearch) {
  const ProteinDatabase db = small_db();
  const auto queries = small_queries(db, 8);
  SearchConfig plain = test_config();
  SearchConfig multi = plain;
  multi.try_alternate_charges = true;
  multi.charge_hypotheses = {2};  // queries report charge 2 → same window

  const QueryHits a = SearchEngine(plain).search(db, queries);
  const QueryHits b = SearchEngine(multi).search(db, queries);
  // Identical hypothesis set → identical hits.
  for (std::size_t q = 0; q < a.size(); ++q) EXPECT_EQ(a[q], b[q]);
}

TEST(Engine, RejectsBadChargeHypotheses) {
  const ProteinDatabase db = small_db();
  const auto queries = small_queries(db, 2);
  SearchConfig config = test_config();
  config.try_alternate_charges = true;
  config.charge_hypotheses = {0};
  const SearchEngine engine(config);
  EXPECT_THROW(engine.prepare(queries), InvalidArgument);
}

// ---------- spectral-library hybrid scoring ----------

TEST(Engine, LibraryNeverHurtsAndCanRescueRecovery) {
  const ProteinDatabase db = small_db();
  QueryGenOptions q_options;
  q_options.query_count = 20;
  q_options.noise.peak_dropout = 0.5;
  q_options.noise.noise_peaks_per_100da = 5.0;
  q_options.noise.fragmentation_sigma = 1.4;  // sequence-specific pattern
  const auto generated = generate_queries(db, q_options);
  const auto queries = spectra_of(generated);

  // Library entries for every query's true peptide, from replicates.
  SpectralLibrary library;
  SpectrumNoiseModel replicate_noise;
  replicate_noise.peak_dropout = 0.25;
  replicate_noise.fragmentation_sigma = 1.4;
  for (const GeneratedQuery& query : generated) {
    std::vector<Spectrum> replicates;
    for (int r = 0; r < 6; ++r) {
      Xoshiro256 rng(40000 + static_cast<std::uint64_t>(r) * 997 +
                     std::hash<std::string>{}(query.true_peptide));
      replicates.push_back(
          simulate_spectrum(query.true_peptide, replicate_noise, rng));
    }
    library.add_replicates(query.true_peptide, replicates);
  }

  SearchConfig model_only = test_config();
  model_only.model = ScoreModel::kLikelihood;
  model_only.tau = 1;
  SearchConfig hybrid = model_only;
  hybrid.library = &library;

  auto recovered_with = [&](const SearchConfig& config) {
    const QueryHits hits = SearchEngine(config).search(db, queries);
    std::size_t recovered = 0;
    for (std::size_t q = 0; q < hits.size(); ++q)
      if (!hits[q].empty() &&
          (hits[q][0].peptide.find(generated[q].true_peptide) !=
               std::string::npos ||
           generated[q].true_peptide.find(hits[q][0].peptide) !=
               std::string::npos))
        ++recovered;
    return recovered;
  };
  const std::size_t base = recovered_with(model_only);
  const std::size_t with_library = recovered_with(hybrid);
  EXPECT_GE(with_library, base);  // max() hybrid can only help
}

TEST(Engine, LibraryIgnoredByNonLikelihoodModels) {
  const ProteinDatabase db = small_db();
  const auto queries = small_queries(db, 4);
  SpectralLibrary library;  // empty is fine — pointer presence is the test
  SearchConfig config = test_config();
  config.model = ScoreModel::kHyperscore;
  SearchConfig with_library = config;
  with_library.library = &library;
  const QueryHits a = SearchEngine(config).search(db, queries);
  const QueryHits b = SearchEngine(with_library).search(db, queries);
  for (std::size_t q = 0; q < a.size(); ++q) EXPECT_EQ(a[q], b[q]);
}

// ---------- prefilter (the X!!Tandem-style aggressive screen) ----------

TEST(Engine, PrefilterReducesFullyScoredCandidates) {
  const ProteinDatabase db = small_db();
  const auto queries = small_queries(db);
  SearchConfig plain_config = test_config();
  plain_config.model = ScoreModel::kHyperscore;
  SearchConfig filtered_config = plain_config;
  filtered_config.prefilter = true;
  filtered_config.prefilter_min_shared_peaks = 4;

  const SearchEngine plain(plain_config);
  const SearchEngine filtered(filtered_config);
  const PreparedQueries prepared = plain.prepare(queries);

  auto plain_tops = plain.make_tops(queries.size());
  const ShardSearchStats plain_stats =
      plain.search_shard(db, prepared, plain_tops);
  auto filtered_tops = filtered.make_tops(queries.size());
  const ShardSearchStats filtered_stats =
      filtered.search_shard(db, prepared, filtered_tops);

  EXPECT_EQ(plain_stats.candidates_prefiltered, 0u);
  EXPECT_GT(filtered_stats.candidates_prefiltered, 0u);
  EXPECT_LT(filtered_stats.candidates_evaluated,
            plain_stats.candidates_evaluated);
  // Screen + full = the same windowed candidate population.
  EXPECT_EQ(filtered_stats.candidates_evaluated +
                filtered_stats.candidates_prefiltered,
            plain_stats.candidates_evaluated);
}

TEST(Engine, PrefilterSurvivorsScoreIdentically) {
  // Any hit reported by the prefiltered engine must also exist, with the
  // identical score, in the unfiltered engine's output.
  const ProteinDatabase db = small_db();
  const auto queries = small_queries(db);
  SearchConfig config = test_config();
  config.model = ScoreModel::kLikelihood;
  config.tau = 20;
  SearchConfig filtered_config = config;
  filtered_config.prefilter = true;

  const QueryHits full = SearchEngine(config).search(db, queries);
  const QueryHits filtered = SearchEngine(filtered_config).search(db, queries);
  for (std::size_t q = 0; q < queries.size(); ++q) {
    for (const Hit& hit : filtered[q]) {
      const bool found = std::any_of(
          full[q].begin(), full[q].end(), [&](const Hit& other) {
            return other == hit;
          });
      EXPECT_TRUE(found) << "query " << q << " peptide " << hit.peptide;
    }
    EXPECT_LE(filtered[q].size(), full[q].size());
  }
}

TEST(Engine, AggressivePrefilterLosesTrueHits) {
  // The paper's accusation made concrete: with a harsh screen on noisy
  // spectra, fewer implanted peptides survive to be scored at all.
  const ProteinDatabase db = small_db();
  QueryGenOptions q_options;
  q_options.query_count = 30;
  q_options.noise.peak_dropout = 0.45;  // noisy: many true ions missing
  q_options.noise.noise_peaks_per_100da = 3.0;
  const auto generated = generate_queries(db, q_options);
  const auto queries = spectra_of(generated);

  SearchConfig accurate = test_config();
  accurate.model = ScoreModel::kLikelihood;
  SearchConfig harsh = accurate;
  harsh.prefilter = true;
  harsh.prefilter_min_shared_peaks = 8;  // aggressive

  auto recovered_with = [&](const SearchConfig& config) {
    const QueryHits hits = SearchEngine(config).search(db, queries);
    std::size_t recovered = 0;
    for (std::size_t q = 0; q < hits.size(); ++q)
      for (const Hit& hit : hits[q])
        if (hit.peptide.find(generated[q].true_peptide) != std::string::npos ||
            generated[q].true_peptide.find(hit.peptide) != std::string::npos) {
          ++recovered;
          break;
        }
    return recovered;
  };
  EXPECT_LT(recovered_with(harsh), recovered_with(accurate));
}

TEST(Engine, RejectsBadConfig) {
  SearchConfig config = test_config();
  config.tolerance_da = 0.0;
  EXPECT_THROW(SearchEngine{config}, InvalidArgument);
  config = test_config();
  config.tau = 0;
  EXPECT_THROW(SearchEngine{config}, InvalidArgument);
  config = test_config();
  config.min_candidate_length = 1;
  EXPECT_THROW(SearchEngine{config}, InvalidArgument);
}

// ---------- two-pass refinement ----------

TEST(Refinement, ShortlistCoversTrueSourceProteins) {
  const ProteinDatabase db = small_db();
  QueryGenOptions q_options;
  q_options.query_count = 15;
  q_options.noise.peak_dropout = 0.15;
  const auto generated = generate_queries(db, q_options);
  const auto queries = spectra_of(generated);

  RefinementOptions options;
  options.max_refined_proteins = 15;
  const RefinementResult result = run_refinement(db, queries, options);
  EXPECT_LE(result.shortlisted_proteins, 15u);
  EXPECT_GT(result.shortlisted_proteins, 0u);

  // Most true peptides survive into the refined (pass-2) hits.
  std::size_t recovered = 0;
  for (std::size_t q = 0; q < queries.size(); ++q)
    for (const Hit& hit : result.hits[q])
      if (hit.peptide.find(generated[q].true_peptide) != std::string::npos ||
          generated[q].true_peptide.find(hit.peptide) != std::string::npos) {
        ++recovered;
        break;
      }
  EXPECT_GE(recovered, queries.size() * 7 / 10);
}

TEST(Refinement, SecondPassCostIsMuchSmaller) {
  const ProteinDatabase db = small_db();
  const auto queries = small_queries(db, 10);
  RefinementOptions options;
  options.max_refined_proteins = 5;
  const RefinementResult result = run_refinement(db, queries, options);
  // Pass 2 fully scores far fewer candidates than a whole-database pass:
  // compare against the unrefined accurate engine.
  const SearchEngine accurate(options.second_pass);
  const PreparedQueries prepared = accurate.prepare(queries);
  auto tops = accurate.make_tops(queries.size());
  const ShardSearchStats full = accurate.search_shard(db, prepared, tops);
  EXPECT_LT(result.second_pass_stats.candidates_evaluated,
            full.candidates_evaluated / 2);
  // And pass 1 screened aggressively (its whole point).
  EXPECT_GT(result.first_pass_stats.candidates_prefiltered, 0u);
}

TEST(Refinement, HitsAgreeWithAccurateEngineOnShortlistedProteins) {
  const ProteinDatabase db = small_db();
  const auto queries = small_queries(db, 8);
  RefinementOptions options;
  const RefinementResult refined = run_refinement(db, queries, options);

  const SearchEngine accurate(options.second_pass);
  const QueryHits full = accurate.search(db, queries);
  // Every refined hit must appear with the identical score in the full
  // accurate search (refinement only restricts the protein set).
  for (std::size_t q = 0; q < queries.size(); ++q)
    for (const Hit& hit : refined.hits[q]) {
      const bool found =
          std::any_of(full[q].begin(), full[q].end(),
                      [&](const Hit& other) { return other == hit; });
      // Absent only if the full list's tau cut it; then the refined hit
      // scores no better than the full list's worst.
      if (!found && full[q].size() >= options.second_pass.tau) {
        EXPECT_LE(hit.score, full[q].back().score + 1e-12);
      }
    }
}

TEST(Refinement, RejectsEmptyShortlistBudget) {
  const ProteinDatabase db = small_db();
  const auto queries = small_queries(db, 2);
  RefinementOptions options;
  options.max_refined_proteins = 0;
  EXPECT_THROW(run_refinement(db, queries, options), InvalidArgument);
}

// ---------- protein inference ----------

QueryHits fake_hits() {
  auto hit = [](double score, const char* protein, const char* peptide) {
    Hit h;
    h.score = score;
    h.protein_id = protein;
    h.peptide = peptide;
    return h;
  };
  QueryHits hits;
  hits.push_back({hit(10, "A", "PEPK"), hit(9, "B", "XXXK")});
  hits.push_back({hit(8, "A", "GGGR"), hit(7, "C", "YYYK")});
  hits.push_back({hit(6, "A", "PEPK")});  // repeat peptide for A
  hits.push_back({hit(5, "B", "ZZZK")});
  hits.push_back({});  // query with no hits
  return hits;
}

TEST(ProteinInference, AggregatesBestHitsPerQuery) {
  const auto proteins = infer_proteins(fake_hits());
  ASSERT_EQ(proteins.size(), 2u);  // rank-1 hits only: A (3 PSMs), B (1)
  EXPECT_EQ(proteins[0].protein_id, "A");
  EXPECT_EQ(proteins[0].psm_count, 3u);
  EXPECT_EQ(proteins[0].distinct_peptides, 2u);  // PEPK counted once
  EXPECT_DOUBLE_EQ(proteins[0].best_score, 10.0);
  EXPECT_DOUBLE_EQ(proteins[0].score_sum, 24.0);
  EXPECT_EQ(proteins[1].protein_id, "B");
  EXPECT_EQ(proteins[1].distinct_peptides, 1u);
}

TEST(ProteinInference, DeeperRanksAndScoreCutoff) {
  InferenceOptions options;
  options.max_hit_rank = 2;
  auto proteins = infer_proteins(fake_hits(), options);
  ASSERT_EQ(proteins.size(), 3u);  // C appears at rank 2
  options.min_score = 7.5;
  proteins = infer_proteins(fake_hits(), options);
  // Only scores >= 7.5 survive: A(10), B(9), A(8).
  ASSERT_EQ(proteins.size(), 2u);
  EXPECT_EQ(proteins[0].protein_id, "A");
  EXPECT_EQ(proteins[0].psm_count, 2u);
}

TEST(ProteinInference, ConfidentFilterDropsOneHitWonders) {
  const auto confident = confident_proteins(fake_hits(), 2);
  ASSERT_EQ(confident.size(), 1u);
  EXPECT_EQ(confident[0].protein_id, "A");
}

TEST(ProteinInference, EndToEndRecoversSourceProteins) {
  // Queries drawn from a handful of proteins: inference should rank those
  // source proteins (with >= 2 peptides each) at the top.
  const ProteinDatabase db = small_db();
  QueryGenOptions q_options;
  q_options.query_count = 24;
  q_options.seed = 99;
  q_options.noise.peak_dropout = 0.1;
  const auto generated = generate_queries(db, q_options);
  SearchConfig config = test_config();
  config.model = ScoreModel::kLikelihood;
  config.tau = 1;
  const QueryHits hits = SearchEngine(config).search(db, spectra_of(generated));
  const auto proteins = infer_proteins(hits);

  std::set<std::string> true_sources;
  for (const GeneratedQuery& query : generated)
    true_sources.insert(db.proteins[query.source_protein].id);
  std::size_t top_matches = 0;
  for (std::size_t i = 0; i < proteins.size() && i < true_sources.size(); ++i)
    if (true_sources.count(proteins[i].protein_id)) ++top_matches;
  EXPECT_GE(top_matches, true_sources.size() * 6 / 10);
}

TEST(ProteinInference, RejectsBadOptions) {
  InferenceOptions options;
  options.max_hit_rank = 0;
  EXPECT_THROW(infer_proteins({}, options), InvalidArgument);
}

// ---------- pack / partition ----------

TEST(PackDb, RoundTrip) {
  const ProteinDatabase db = small_db();
  const std::vector<char> bytes = pack_database(db);
  const ProteinDatabase back = unpack_database(bytes);
  ASSERT_EQ(back.sequence_count(), db.sequence_count());
  for (std::size_t i = 0; i < db.sequence_count(); ++i) {
    EXPECT_EQ(back.proteins[i].id, db.proteins[i].id);
    EXPECT_EQ(back.proteins[i].residues, db.proteins[i].residues);
  }
}

TEST(PackDb, EmptyDatabase) {
  const std::vector<char> bytes = pack_database(ProteinDatabase{});
  EXPECT_EQ(unpack_database(bytes).sequence_count(), 0u);
}

TEST(PackDb, RejectsCorruptBytes) {
  const ProteinDatabase db = small_db();
  std::vector<char> bytes = pack_database(db);
  bytes.resize(bytes.size() / 2);  // truncate mid-record
  EXPECT_THROW(unpack_database(bytes), IoError);
}

TEST(PackSpectra, RoundTrip) {
  const ProteinDatabase db = small_db();
  const auto queries = small_queries(db, 5);
  const std::vector<char> bytes = pack_spectra(queries);
  const auto back = unpack_spectra(bytes);
  ASSERT_EQ(back.size(), queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(back[i].title(), queries[i].title());
    EXPECT_EQ(back[i].charge(), queries[i].charge());
    EXPECT_DOUBLE_EQ(back[i].precursor_mz(), queries[i].precursor_mz());
    ASSERT_EQ(back[i].size(), queries[i].size());
    for (std::size_t k = 0; k < back[i].size(); ++k)
      EXPECT_DOUBLE_EQ(back[i].peaks()[k].mz, queries[i].peaks()[k].mz);
  }
}

// Pack images are machine-written: out-of-domain values are wire corruption
// and must be rejected at load with IoError, never "filtered as noise" the
// way the Spectrum constructor treats instrument data. The +Inf / absurd
// m/z cases are the load-bearing ones — they would survive the noise filter
// and drive the binned-grid allocation out of memory downstream.
TEST(PackSpectra, RejectsOutOfDomainValues) {
  struct Corruption {
    const char* label;
    double precursor;
    int charge;
    double mz;
    double intensity;
  };
  constexpr double kInf = std::numeric_limits<double>::infinity();
  constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
  const Corruption cases[] = {
      {"non-finite precursor", kNan, 2, 500.0, 1.0},
      {"infinite precursor", kInf, 2, 500.0, 1.0},
      {"non-positive precursor", -3.0, 2, 500.0, 1.0},
      {"zero charge", 700.0, 0, 500.0, 1.0},
      {"negative charge", 700.0, -2, 500.0, 1.0},
      {"NaN peak m/z", 700.0, 2, kNan, 1.0},
      {"infinite peak m/z", 700.0, 2, kInf, 1.0},
      {"absurd peak m/z", 700.0, 2, kMaxPackedPeakMz * 2, 1.0},
      {"non-positive peak m/z", 700.0, 2, -1.0, 1.0},
      {"NaN intensity", 700.0, 2, 500.0, kNan},
      {"infinite intensity", 700.0, 2, 500.0, kInf},
      {"negative intensity", 700.0, 2, 500.0, -1.0},
  };
  for (const Corruption& corruption : cases) {
    wire::Writer writer;
    writer.put_u64(1);
    writer.put_string("q");
    writer.put_double(corruption.precursor);
    writer.put_i32(corruption.charge);
    writer.put_u32(1);
    writer.put_double(corruption.mz);
    writer.put_double(corruption.intensity);
    EXPECT_THROW(unpack_spectra(writer.take()), IoError) << corruption.label;
  }
}

TEST(PackSpectra, RejectsCountsExceedingPayload) {
  // A huge spectrum count with a tiny payload must fail the bound check,
  // not reserve() terabytes; same for a huge per-spectrum peak count.
  {
    wire::Writer writer;
    writer.put_u64(std::numeric_limits<std::uint64_t>::max());
    EXPECT_THROW(unpack_spectra(writer.take()), IoError);
  }
  {
    wire::Writer writer;
    writer.put_u64(1);
    writer.put_string("q");
    writer.put_double(700.0);
    writer.put_i32(2);
    writer.put_u32(std::numeric_limits<std::uint32_t>::max());
    writer.put_double(500.0);
    writer.put_double(1.0);
    EXPECT_THROW(unpack_spectra(writer.take()), IoError);
  }
}

TEST(PackSpectra, BoundaryValuesSurviveTheLoadChecks) {
  // Legal extremes must round-trip: the validation rejects corruption, not
  // unusual-but-valid data.
  const Spectrum edge({{kMaxPackedPeakMz, 0.5}, {1e-3, 1e-42}}, 1e-6, 1,
                      "edge");
  const auto back = unpack_spectra(pack_spectra(std::vector{edge}));
  ASSERT_EQ(back.size(), 1u);
  EXPECT_EQ(back[0].charge(), 1);
  EXPECT_DOUBLE_EQ(back[0].precursor_mz(), 1e-6);
}

TEST(Partition, QueryBlocksCoverExactly) {
  for (std::size_t m : {0u, 1u, 10u, 97u}) {
    for (int p : {1, 2, 5, 16}) {
      std::size_t covered = 0;
      std::size_t expected_begin = 0;
      for (int r = 0; r < p; ++r) {
        const QueryRange range = query_block(m, r, p);
        EXPECT_EQ(range.begin, expected_begin);
        covered += range.count();
        expected_begin = range.end;
      }
      EXPECT_EQ(covered, m);
    }
  }
}

TEST(Partition, ResidueBalancedShards) {
  const ProteinDatabase db = small_db();
  const std::size_t total = db.total_residues();
  for (int p : {2, 4, 8}) {
    const auto shards = partition_by_residues(db, p);
    ASSERT_EQ(shards.size(), static_cast<std::size_t>(p));
    std::size_t covered_sequences = 0;
    for (const auto& shard : shards) {
      covered_sequences += shard.sequence_count();
      // No shard grossly over target (2x slack covers granularity).
      EXPECT_LE(shard.total_residues(),
                2 * total / static_cast<std::size_t>(p) + 4000);
    }
    EXPECT_EQ(covered_sequences, db.sequence_count());
  }
}

TEST(Partition, FastaShardLoadingMatchesDirectPartition) {
  const ProteinDatabase db = small_db();
  const std::string image = to_fasta_string(db);
  for (int p : {1, 3, 8}) {
    std::size_t total_loaded = 0;
    for (int r = 0; r < p; ++r)
      total_loaded += load_database_shard(image, r, p).sequence_count();
    EXPECT_EQ(total_loaded, db.sequence_count()) << "p=" << p;
  }
}

}  // namespace
}  // namespace msp
