// Open-search validation for the fragment-ion-indexed candidate source.
//
// The central claim (DESIGN.md §5i): both open-search candidate sources —
// exhaustive mass-window enumeration and the fragment-ion index — compute
// the identical integer votes (shared_peak_count over the same b/y ladder
// and global bin grid), so they admit the identical survivor set and the
// kernel produces bit-identical hits whichever source is plugged in, across
// window widths, PTM sets, thread counts, fault schedules, and transports.
// The database-walking search_shard_reference() is the oracle both are
// compared against. The wire tests pin the "MSPARFRG" record format:
// round-trip equality, loud rejection of corrupted records, and silent
// fallback to exhaustive enumeration for legacy pack images.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/algorithm_a.hpp"
#include "core/candidate_index.hpp"
#include "core/candidate_source.hpp"
#include "core/fragment_index.hpp"
#include "core/packdb.hpp"
#include "core/search_engine.hpp"
#include "core/wire.hpp"
#include "dbgen/protein_gen.hpp"
#include "dbgen/query_gen.hpp"
#include "io/fasta.hpp"
#include "mass/ptm.hpp"
#include "scoring/shared_peak.hpp"
#include "serve/service.hpp"
#include "simmpi/runtime.hpp"
#include "util/error.hpp"

namespace msp {
namespace {

struct Workload {
  ProteinDatabase db;
  std::string image;
  std::vector<Spectrum> queries;

  Workload() {
    ProteinGenOptions db_options;
    db_options.sequence_count = 40;
    db_options.mean_length = 110;
    db_options.seed = 9117;
    db = generate_proteins(db_options);
    image = to_fasta_string(db);

    QueryGenOptions q_options;
    q_options.query_count = 14;
    q_options.seed = 9118;
    q_options.digest.min_length = 6;
    q_options.digest.max_length = 25;
    queries = spectra_of(generate_queries(db, q_options));
  }
};

const Workload& workload() {
  static const Workload w;
  return w;
}

/// An open-search base config: ±25 Da on top of the tolerance unless a test
/// overrides it. Votes gate at 2 matched ions, the shipping default.
SearchConfig open_config() {
  SearchConfig config;
  config.tolerance_da = 2.0;
  config.tau = 5;
  config.min_candidate_length = 5;
  config.max_candidate_length = 40;
  config.model = ScoreModel::kLikelihood;
  config.open_window_da = 25.0;
  config.min_fragment_votes = 2;
  return config;
}

struct KernelRun {
  QueryHits hits;
  ShardSearchStats stats;
  std::vector<std::uint64_t> per_query;
};

KernelRun run_shard(const SearchConfig& config, const CandidateIndex* index,
                    const FragmentIndex* fragment) {
  const Workload& w = workload();
  const SearchEngine engine(config);
  const PreparedQueries prepared = engine.prepare(
      std::span<const Spectrum>(w.queries.data(), w.queries.size()));
  KernelRun run;
  run.per_query.assign(prepared.size(), 0);
  std::vector<TopK<Hit>> tops = engine.make_tops(prepared.size());
  run.stats =
      engine.search_shard(w.db, prepared, tops, &run.per_query, index,
                          fragment);
  run.hits = engine.finalize(tops);
  return run;
}

KernelRun run_reference(const SearchConfig& config) {
  const Workload& w = workload();
  const SearchEngine engine(config);
  const PreparedQueries prepared = engine.prepare(
      std::span<const Spectrum>(w.queries.data(), w.queries.size()));
  KernelRun run;
  run.per_query.assign(prepared.size(), 0);
  std::vector<TopK<Hit>> tops = engine.make_tops(prepared.size());
  run.stats =
      engine.search_shard_reference(w.db, prepared, tops, &run.per_query);
  run.hits = engine.finalize(tops);
  return run;
}

/// Bit-exact: determinism means exact score equality, not tolerance
/// equality — every path sums the same doubles in the same order.
void expect_hits_identical(const QueryHits& got, const QueryHits& want,
                           const std::string& label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (std::size_t q = 0; q < want.size(); ++q) {
    ASSERT_EQ(got[q].size(), want[q].size()) << label << " query " << q;
    for (std::size_t h = 0; h < want[q].size(); ++h) {
      const Hit& a = got[q][h];
      const Hit& b = want[q][h];
      EXPECT_EQ(a.score, b.score) << label << " q" << q << " h" << h;
      EXPECT_EQ(a.protein_id, b.protein_id) << label << " q" << q << " h" << h;
      EXPECT_EQ(a.offset, b.offset) << label << " q" << q << " h" << h;
      EXPECT_EQ(a.length, b.length) << label << " q" << q << " h" << h;
      EXPECT_EQ(a.end, b.end) << label << " q" << q << " h" << h;
      EXPECT_EQ(a.peptide, b.peptide) << label << " q" << q << " h" << h;
    }
  }
}

std::vector<Ptm> ptm_set(int which) {
  switch (which) {
    case 1:
      return {ptm_phospho_s(), ptm_phospho_t()};
    case 2:
      return {ptm_phospho_s(), ptm_phospho_t(), ptm_oxidation_m()};
    default:
      return {};
  }
}

// ---------- oracle matrix: both sources vs the reference kernel ----------

TEST(OpenSearchOracle, SourcesMatchReferenceAcrossWindowsAndPtms) {
  const Workload& w = workload();
  for (const double window : {25.0, 100.0}) {
    for (const int ptms : {0, 1, 2}) {
      for (const CandidateMode mode :
           {CandidateMode::kPrefixSuffix, CandidateMode::kTryptic}) {
        SearchConfig config = open_config();
        config.open_window_da = window;
        config.ptms = ptm_set(ptms);
        config.max_ptm_mods = 1;
        config.candidate_mode = mode;
        const std::string label = "window=" + std::to_string(window) +
                                  " ptms=" + std::to_string(ptms) + " mode=" +
                                  std::to_string(static_cast<int>(mode));

        const CandidateIndex index = CandidateIndex::build(w.db, config);
        const FragmentIndex fragment =
            FragmentIndex::build(w.db, index, config.bin_width);

        const KernelRun oracle = run_reference(config);

        config.candidate_source = CandidateSourceKind::kMassWindow;
        const KernelRun exhaustive = run_shard(config, &index, nullptr);

        config.candidate_source = CandidateSourceKind::kFragmentIndex;
        const KernelRun indexed = run_shard(config, &index, &fragment);

        // kAuto with a shipped fragment record takes the indexed path; the
        // result must be indistinguishable either way.
        config.candidate_source = CandidateSourceKind::kAuto;
        const KernelRun automatic = run_shard(config, &index, &fragment);

        expect_hits_identical(exhaustive.hits, oracle.hits,
                              label + " exhaustive");
        expect_hits_identical(indexed.hits, oracle.hits, label + " indexed");
        expect_hits_identical(automatic.hits, oracle.hits, label + " auto");

        // Both sources window and gate identically: same survivors fully
        // scored, same per-query candidate accounting, same hit offers.
        EXPECT_EQ(indexed.stats.candidates_evaluated,
                  exhaustive.stats.candidates_evaluated)
            << label;
        EXPECT_EQ(indexed.stats.hits_offered, exhaustive.stats.hits_offered)
            << label;
        EXPECT_EQ(indexed.per_query, exhaustive.per_query) << label;

        // The costs differ in the advertised direction: the indexed source
        // builds ions only for survivors and pays postings scans instead.
        EXPECT_LT(indexed.stats.ions_built, exhaustive.stats.ions_built)
            << label;
        EXPECT_GT(indexed.stats.postings_scanned, 0u) << label;
        EXPECT_EQ(exhaustive.stats.postings_scanned, 0u) << label;
      }
    }
  }
}

TEST(OpenSearchOracle, NarrowSearchIgnoresFragmentIndex) {
  const Workload& w = workload();
  SearchConfig config = open_config();
  config.open_window_da = 0.0;  // not open: ±tolerance merge-join
  const CandidateIndex index = CandidateIndex::build(w.db, config);
  const FragmentIndex fragment =
      FragmentIndex::build(w.db, index, config.bin_width);

  const KernelRun plain = run_shard(config, &index, nullptr);
  config.candidate_source = CandidateSourceKind::kFragmentIndex;
  const KernelRun with_fragment = run_shard(config, &index, &fragment);
  expect_hits_identical(with_fragment.hits, plain.hits, "narrow");
  EXPECT_EQ(with_fragment.stats.postings_scanned, 0u);
}

// ---------- postings completeness: votes == shared_peak_count ----------

TEST(FragmentIndexPostings, VotesEqualSharedPeakCountExactly) {
  const Workload& w = workload();
  const SearchConfig config = open_config();
  const SearchEngine engine(config);
  const CandidateIndex index = CandidateIndex::build(w.db, config);
  const FragmentIndex fragment =
      FragmentIndex::build(w.db, index, config.bin_width);
  ASSERT_EQ(fragment.candidate_count(), index.size());
  const PreparedQueries prepared = engine.prepare(
      std::span<const Spectrum>(w.queries.data(), w.queries.size()));

  for (const std::size_t q : {std::size_t{0}, std::size_t{5}}) {
    const QueryContext& context = prepared.contexts[q];
    // Accumulate votes the way the source does: walk the query's occupied
    // bins, bump every posted ordinal (with multiplicity).
    std::vector<std::uint32_t> votes(index.size(), 0);
    for (const std::uint32_t bin : occupied_bins(context.binned()))
      for (const std::uint32_t ordinal : fragment.postings(bin))
        ++votes[ordinal];
    // Every candidate's vote count must equal the matched-ion count the
    // exhaustive source (and the prefilter, and kSharedPeak scoring)
    // computes from the candidate's freshly built ladder.
    for (std::size_t ordinal = 0; ordinal < index.size(); ++ordinal) {
      const IndexedCandidate& entry = index.entries()[ordinal];
      const Protein& protein = w.db.proteins[entry.protein];
      const std::string_view peptide =
          std::string_view(protein.residues).substr(entry.offset,
                                                    entry.length);
      EXPECT_EQ(votes[ordinal],
                shared_peak_count(context.binned(), peptide))
          << "q" << q << " ordinal " << ordinal << " peptide " << peptide;
    }
  }
}

TEST(FragmentIndexPostings, PostingListsAreOrdinalAscending) {
  const Workload& w = workload();
  const SearchConfig config = open_config();
  const CandidateIndex index = CandidateIndex::build(w.db, config);
  const FragmentIndex fragment =
      FragmentIndex::build(w.db, index, config.bin_width);
  std::size_t walked = 0;
  for (std::uint32_t bin = 0; bin < fragment.bin_count(); ++bin) {
    const auto postings = fragment.postings(bin);
    for (std::size_t i = 0; i < postings.size(); ++i) {
      ASSERT_LT(postings[i], index.size()) << "bin " << bin;
      if (i > 0) {
        ASSERT_GE(postings[i], postings[i - 1]) << "bin " << bin;
      }
    }
    walked += postings.size();
  }
  EXPECT_EQ(walked, fragment.posting_count());
  EXPECT_GT(walked, index.size());  // every candidate posts several ions
}

// ---------- wire format: round-trip, corruption, legacy fallback ----------

TEST(FragmentIndexWire, RoundTripsThroughWriterAndPackImage) {
  const Workload& w = workload();
  const SearchConfig config = open_config();
  const CandidateIndex index = CandidateIndex::build(w.db, config);
  const FragmentIndex fragment =
      FragmentIndex::build(w.db, index, config.bin_width);

  wire::Writer writer;
  put_fragment_index(writer, fragment);
  wire::Reader reader(writer.bytes());
  EXPECT_TRUE(peek_fragment_index(reader));
  EXPECT_EQ(get_fragment_index(reader), fragment);

  // The pack image: trailer parsed back intact, with and without the
  // histogram record in front of it.
  const PackedShard shard =
      unpack_shard(pack_database(w.db, index, fragment));
  ASSERT_TRUE(shard.has_fragment);
  EXPECT_EQ(shard.fragment, fragment);
  EXPECT_FALSE(shard.has_histogram);

  const MassHistogram histogram = MassHistogram::build(index);
  const PackedShard both =
      unpack_shard(pack_database(w.db, index, histogram, fragment));
  ASSERT_TRUE(both.has_fragment);
  EXPECT_EQ(both.fragment, fragment);
  EXPECT_TRUE(both.has_histogram);
}

TEST(FragmentIndexWire, RejectsCorruptedRecords) {
  const Workload& w = workload();
  const SearchConfig config = open_config();
  const CandidateIndex index = CandidateIndex::build(w.db, config);
  const FragmentIndex fragment =
      FragmentIndex::build(w.db, index, config.bin_width);
  wire::Writer writer;
  put_fragment_index(writer, fragment);
  const std::vector<char> good = writer.bytes();

  {  // flipped magic: peek says "no record", a forced get throws
    std::vector<char> bytes = good;
    bytes[0] ^= 0x1;
    wire::Reader peeker(bytes);
    EXPECT_FALSE(peek_fragment_index(peeker));
    wire::Reader reader(bytes);
    EXPECT_THROW(get_fragment_index(reader), IoError);
  }
  {  // unsupported version (u32 right after the 8-byte magic)
    std::vector<char> bytes = good;
    bytes[8] = 0x7f;
    wire::Reader reader(bytes);
    EXPECT_THROW(get_fragment_index(reader), IoError);
  }
  // Truncation anywhere in the payload must throw, never misparse: the
  // record carries untrusted sizes, so every slice is validated against
  // the remaining payload.
  for (const std::size_t keep :
       {std::size_t{12}, good.size() / 2, good.size() - 1}) {
    std::vector<char> bytes(good.begin(),
                            good.begin() + static_cast<std::ptrdiff_t>(keep));
    wire::Reader reader(bytes);
    EXPECT_THROW(get_fragment_index(reader), IoError) << "keep=" << keep;
  }
}

TEST(FragmentIndexWire, ConstructorRejectsBrokenCsr) {
  const FragmentIndexParams params{CandidateIndexParams{}, 1.0};
  // starts must begin at 0, be monotone, and sum to the posting count;
  // ordinals must be in range and ascending per bin; the grid finite.
  EXPECT_THROW(FragmentIndex(params, 2, {1, 1}, {}), InvalidArgument);
  EXPECT_THROW(FragmentIndex(params, 2, {0, 2, 1}, {0, 1}), InvalidArgument);
  EXPECT_THROW(FragmentIndex(params, 2, {0, 1}, {0, 1}), InvalidArgument);
  EXPECT_THROW(FragmentIndex(params, 2, {0, 1}, {5}), InvalidArgument);
  EXPECT_THROW(FragmentIndex(params, 2, {0, 2}, {1, 0}), InvalidArgument);
  EXPECT_THROW(
      FragmentIndex(FragmentIndexParams{CandidateIndexParams{}, -1.0}, 0, {},
                    {}),
      InvalidArgument);
  EXPECT_NO_THROW(FragmentIndex(params, 2, {0, 1, 2}, {0, 1}));
}

TEST(FragmentIndexWire, LegacyPackFallsBackToExhaustiveSearch) {
  const Workload& w = workload();
  SearchConfig config = open_config();
  const CandidateIndex index = CandidateIndex::build(w.db, config);

  // A legacy (pre-fragment-record) image: no fragment trailer at all.
  const PackedShard legacy = unpack_shard(pack_database(w.db, index));
  ASSERT_TRUE(legacy.has_index);
  EXPECT_FALSE(legacy.has_fragment);

  // kAuto with no fragment record silently enumerates exhaustively and
  // still lands on the oracle's hits.
  const KernelRun oracle = run_reference(config);
  config.candidate_source = CandidateSourceKind::kAuto;
  const KernelRun fallback = run_shard(config, &legacy.index, nullptr);
  expect_hits_identical(fallback.hits, oracle.hits, "legacy fallback");
  EXPECT_EQ(fallback.stats.postings_scanned, 0u);
}

TEST(FragmentIndexWire, EngineRejectsMismatchedIndexParams) {
  const Workload& w = workload();
  SearchConfig config = open_config();
  config.candidate_source = CandidateSourceKind::kFragmentIndex;
  const CandidateIndex index = CandidateIndex::build(w.db, config);
  // Built on a different bin grid: a different grid is a different vote
  // gate, so the engine must refuse it rather than silently change hits.
  const FragmentIndex wrong_grid =
      FragmentIndex::build(w.db, index, config.bin_width * 2.0);
  EXPECT_THROW(run_shard(config, &index, &wrong_grid), InvalidArgument);
}

// ---------- determinism: threads, faults, and the parallel driver ----------

TEST(OpenSearchDeterminism, KernelThreadCountIsInvisible) {
  const Workload& w = workload();
  SearchConfig config = open_config();
  config.candidate_source = CandidateSourceKind::kFragmentIndex;
  const CandidateIndex index = CandidateIndex::build(w.db, config);
  const FragmentIndex fragment =
      FragmentIndex::build(w.db, index, config.bin_width);

  config.kernel_threads = 1;
  const KernelRun serial = run_shard(config, &index, &fragment);
  for (const std::size_t threads : {std::size_t{2}, std::size_t{5}}) {
    config.kernel_threads = threads;
    const KernelRun fanned = run_shard(config, &index, &fragment);
    const std::string label = "threads=" + std::to_string(threads);
    expect_hits_identical(fanned.hits, serial.hits, label);
    EXPECT_EQ(fanned.stats.candidates_evaluated,
              serial.stats.candidates_evaluated)
        << label;
    EXPECT_EQ(fanned.stats.candidates_prefiltered,
              serial.stats.candidates_prefiltered)
        << label;
    EXPECT_EQ(fanned.stats.ions_built, serial.stats.ions_built) << label;
    EXPECT_EQ(fanned.stats.postings_scanned, serial.stats.postings_scanned)
        << label;
    EXPECT_EQ(fanned.per_query, serial.per_query) << label;
  }
}

TEST(OpenSearchDeterminism, ParallelOpenSearchMatchesSerialUnderFaults) {
  const Workload& w = workload();
  SearchConfig config = open_config();
  config.ptms = ptm_set(1);
  config.max_ptm_mods = 1;
  const QueryHits serial = SearchEngine(config).search(w.db, w.queries);

  for (const bool crash : {false, true}) {
    sim::FaultModel faults;
    if (crash) faults.crash(1, 1);
    for (const CandidateSourceKind source :
         {CandidateSourceKind::kMassWindow,
          CandidateSourceKind::kFragmentIndex}) {
      SearchConfig run_config = config;
      run_config.candidate_source = source;
      const sim::Runtime runtime(4, {}, {}, faults);
      const ParallelRunResult result = run_algorithm_a(
          runtime, w.image, w.queries, run_config, AlgorithmAOptions{});
      const std::string label =
          std::string(crash ? "crash" : "clean") + " source=" +
          std::to_string(static_cast<int>(source));
      expect_hits_identical(result.hits, serial, label);
      if (source == CandidateSourceKind::kFragmentIndex) {
        EXPECT_GT(result.report.sum_counter("postings"), 0u) << label;
      } else {
        EXPECT_EQ(result.report.sum_counter("postings"), 0u) << label;
      }
    }
  }
}

TEST(OpenSearchDeterminism, ParallelRunsAreByteIdenticalAcrossRepeats) {
  const Workload& w = workload();
  SearchConfig config = open_config();
  config.candidate_source = CandidateSourceKind::kFragmentIndex;
  auto run_once = [&] {
    const sim::Runtime runtime(4);
    return run_algorithm_a(runtime, w.image, w.queries, config,
                           AlgorithmAOptions{});
  };
  const ParallelRunResult first = run_once();
  const ParallelRunResult second = run_once();
  expect_hits_identical(second.hits, first.hits, "repeat");
  EXPECT_EQ(second.report.to_string(), first.report.to_string());
}

// ---------- the serving ring in open mode ----------

TEST(OpenSearchServe, RoutedServiceMatchesSerialOpenHits) {
  const Workload& w = workload();
  SearchConfig config = open_config();
  const QueryHits serial = SearchEngine(config).search(w.db, w.queries);

  for (const bool routed : {true, false}) {
    serve::ServiceOptions options;
    options.arrivals.kind = serve::ArrivalKind::kPoisson;
    options.arrivals.rate_qps = 400.0;
    options.arrivals.seed = 77;
    options.batch.max_batch = 6;
    options.batch.max_wait_s = 0.02;
    options.admission.max_outstanding = 256;
    options.mass_routing = routed;

    const sim::Runtime runtime(4);
    const serve::ServiceResult result =
        serve::run_service(runtime, w.image, w.queries, config, options);
    const std::string label = routed ? "routed" : "unrouted";
    EXPECT_EQ(result.completed, w.queries.size()) << label;
    EXPECT_EQ(result.shed, 0u) << label;
    expect_hits_identical(result.hits, serial, label);
  }
}

}  // namespace
}  // namespace msp
