// Mass-aware shard routing validation: the oracle matrix (routed and
// unrouted service hits must be bit-identical to the reference kernel
// across precursor-window widths, query-mass distributions, and fault
// schedules), the exhaustive skip proof (a routed-away band truly holds no
// candidate for any skipped query), byte-level determinism of routed runs
// (hits, report JSON, trace) across reruns, kernel thread counts, and crash
// re-admission, the histogram wire record's round-trip/fallback/corruption
// properties, and the router's audit counters in the report schema.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "core/algorithm_a.hpp"
#include "core/candidate_record.hpp"
#include "core/packdb.hpp"
#include "core/partition.hpp"
#include "core/ring_service.hpp"
#include "core/search_engine.hpp"
#include "core/shard_map.hpp"
#include "core/wire.hpp"
#include "dbgen/protein_gen.hpp"
#include "dbgen/query_gen.hpp"
#include "io/fasta.hpp"
#include "serve/service.hpp"
#include "simmpi/runtime.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace msp {
namespace {

// ---------------------------------------------------------------------------
// Workloads: a uniform query-mass spread and a skewed one (all targets
// excised from a narrow digest-length slice, so the masses pile into a thin
// band and most of the ring's mass bands are provably irrelevant).

struct Workload {
  std::string name;
  ProteinDatabase db;
  std::string image;
  std::vector<Spectrum> queries;
};

Workload make_workload(bool skewed) {
  Workload w;
  w.name = skewed ? "skewed" : "uniform";

  ProteinGenOptions db_options;
  db_options.sequence_count = 30;
  db_options.mean_length = 100;
  db_options.seed = skewed ? 7101 : 7001;
  w.db = generate_proteins(db_options);
  w.image = to_fasta_string(w.db);

  QueryGenOptions q_options;
  q_options.query_count = 18;
  q_options.seed = skewed ? 7102 : 7002;
  q_options.digest.min_length = 6;
  q_options.digest.max_length = skewed ? 9 : 25;
  w.queries = spectra_of(generate_queries(w.db, q_options));
  return w;
}

const Workload& workload(bool skewed) {
  static const Workload uniform = make_workload(false);
  static const Workload skew = make_workload(true);
  return skewed ? skew : uniform;
}

SearchConfig make_config(double tolerance_da) {
  SearchConfig config;
  config.tolerance_da = tolerance_da;
  config.tau = 6;
  config.min_candidate_length = 4;
  config.max_candidate_length = 60;
  config.model = ScoreModel::kLikelihood;
  return config;
}

/// The routing oracle: the original database-walking kernel over the whole
/// (unsharded) database — no banding, no histograms, no ring.
QueryHits reference_hits(const Workload& w, const SearchConfig& config) {
  const SearchEngine engine(config);
  const PreparedQueries prepared = engine.prepare(
      std::span<const Spectrum>(w.queries.data(), w.queries.size()));
  std::vector<TopK<Hit>> tops = engine.make_tops(w.queries.size());
  engine.search_shard_reference(w.db, prepared, tops, nullptr);
  return engine.finalize(tops);
}

/// Bit-identity, not tolerance: every field of every hit, scores compared
/// with operator== on the doubles.
void expect_hits_identical(const QueryHits& got, const QueryHits& want,
                           const std::string& label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (std::size_t q = 0; q < want.size(); ++q) {
    ASSERT_EQ(got[q].size(), want[q].size()) << label << " query " << q;
    for (std::size_t h = 0; h < want[q].size(); ++h) {
      EXPECT_EQ(got[q][h].protein_id, want[q][h].protein_id)
          << label << " q" << q << " h" << h;
      EXPECT_EQ(got[q][h].offset, want[q][h].offset)
          << label << " q" << q << " h" << h;
      EXPECT_EQ(got[q][h].length, want[q][h].length)
          << label << " q" << q << " h" << h;
      EXPECT_EQ(got[q][h].end, want[q][h].end)
          << label << " q" << q << " h" << h;
      EXPECT_EQ(got[q][h].peptide, want[q][h].peptide)
          << label << " q" << q << " h" << h;
      EXPECT_EQ(got[q][h].score, want[q][h].score)
          << label << " q" << q << " h" << h;
    }
  }
}

serve::ServiceOptions service_options(bool routed) {
  serve::ServiceOptions options;
  options.arrivals.kind = serve::ArrivalKind::kPoisson;
  options.arrivals.rate_qps = 400.0;
  options.arrivals.seed = 77;
  options.batch.max_batch = 6;
  options.batch.max_wait_s = 0.02;
  options.admission.max_outstanding = 256;
  options.mass_routing = routed;
  return options;
}

// ---------------------------------------------------------------------------
// The oracle matrix: {narrow, wide, open-ish} windows × {uniform, skewed}
// mass distributions × {clean, crash} schedules. In every cell the routed
// and unrouted service must reproduce the reference kernel's hit lists
// bit-for-bit; in narrow cells the router must actually skip.

TEST(Routing, OracleMatrixRoutedEqualsUnroutedEqualsReference) {
  const int p = 5;
  for (const bool skewed : {false, true}) {
    const Workload& w = workload(skewed);
    for (const double tolerance : {0.05, 3.0, 25.0}) {
      const SearchConfig config = make_config(tolerance);
      const QueryHits reference = reference_hits(w, config);
      for (const bool crash : {false, true}) {
        const std::string cell = w.name + " tol=" + std::to_string(tolerance) +
                                 (crash ? " crash" : " clean");
        sim::FaultModel faults;
        if (crash) faults.crash(2, 3);  // rank 2 dies at ring step 3
        const sim::Runtime runtime(p, {}, {}, faults);

        const serve::ServiceResult routed = serve::run_service(
            runtime, w.image, w.queries, config, service_options(true));
        const serve::ServiceResult unrouted = serve::run_service(
            runtime, w.image, w.queries, config, service_options(false));

        EXPECT_EQ(routed.completed, w.queries.size()) << cell;
        EXPECT_EQ(unrouted.completed, w.queries.size()) << cell;
        expect_hits_identical(routed.hits, reference, cell + " routed");
        expect_hits_identical(unrouted.hits, reference, cell + " unrouted");

        // Audit sanity: routing off never reports a skip; ratios in range.
        EXPECT_EQ(unrouted.steps_skipped, 0u) << cell;
        EXPECT_EQ(unrouted.skip_ratio, 0.0) << cell;
        EXPECT_GE(routed.skip_ratio, 0.0) << cell;
        EXPECT_LE(routed.skip_ratio, 1.0) << cell;
        // Narrow windows over banded shards must skip most of the ring —
        // otherwise the router is vacuous and this suite proves nothing.
        if (tolerance <= 0.05) {
          EXPECT_GT(routed.steps_skipped, 0u) << cell;
          EXPECT_GT(routed.skip_ratio, 0.5) << cell;
          EXPECT_LE(routed.makespan_s, unrouted.makespan_s) << cell;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// The skip proof, checked against ground truth: rebuild the service's band
// layout collectively, then for every (query, band) the map routes away,
// exhaustively scan the band and require zero candidates inside any of the
// query's hypothesis windows. Also checks record_range's superset contract
// on the visited side — every in-window record index lies in the range.

TEST(Routing, SkippedShardsContainNoCandidatesExhaustive) {
  const Workload& w = workload(false);
  const SearchConfig config = make_config(0.05);
  const SearchEngine engine(config);
  const int p = 6;
  const sim::Runtime runtime(p);

  std::vector<std::uint64_t> skipped(static_cast<std::size_t>(p), 0);
  std::vector<std::uint64_t> skip_violations(static_cast<std::size_t>(p), 0);
  std::vector<std::uint64_t> range_violations(static_cast<std::size_t>(p), 0);

  runtime.run([&](sim::Comm& comm) {
    const auto rank = static_cast<std::size_t>(comm.rank());
    ProteinDatabase local_db =
        load_database_shard(w.image, comm.rank(), p);

    // The stream envelope the service enumerates under.
    double stream_lo = 1e30;
    double stream_hi = -1e30;
    for (const Spectrum& query : w.queries)
      for (const double mass : engine.hypothesis_masses(query)) {
        stream_lo = std::min(stream_lo, mass);
        stream_hi = std::max(stream_hi, mass);
      }
    std::vector<CandidateRecord> records = enumerate_candidate_records(
        local_db, config, stream_lo - config.tolerance_da,
        stream_hi + config.tolerance_da);
    const std::vector<CandidateRecord> band =
        sort_candidate_records_by_mass(comm, std::move(records));

    std::vector<double> masses;
    masses.reserve(band.size());
    for (const CandidateRecord& record : band) masses.push_back(record.mass);
    const MassHistogram histogram =
        MassHistogram::build(masses, kServeRouteBucketDa);
    const ShardMassMap map = ShardMassMap::exchange(comm, histogram);

    for (const Spectrum& query : w.queries) {
      const std::vector<double> hyp = engine.hypothesis_masses(query);
      const auto in_window = [&](double mass) {
        for (const double m : hyp)
          if (mass >= m - config.tolerance_da &&
              mass <= m + config.tolerance_da)
            return true;
        return false;
      };
      if (!map.needed(comm.rank(), hyp, config.tolerance_da)) {
        ++skipped[rank];
        for (const CandidateRecord& record : band)
          if (in_window(record.mass)) ++skip_violations[rank];
      } else if (!hyp.empty()) {
        double lo = hyp.front();
        double hi = hyp.front();
        for (const double m : hyp) {
          lo = std::min(lo, m);
          hi = std::max(hi, m);
        }
        const auto [first, last] = map.histogram(comm.rank())->record_range(
            lo - config.tolerance_da, hi + config.tolerance_da);
        for (std::size_t i = 0; i < band.size(); ++i)
          if (in_window(band[i].mass) && (i < first || i >= last))
            ++range_violations[rank];
      }
    }
  });

  std::uint64_t total_skipped = 0;
  for (int r = 0; r < p; ++r) {
    const auto rank = static_cast<std::size_t>(r);
    total_skipped += skipped[rank];
    EXPECT_EQ(skip_violations[rank], 0u)
        << "rank " << r << " skipped a band holding in-window candidates";
    EXPECT_EQ(range_violations[rank], 0u)
        << "rank " << r << " record_range dropped an in-window record";
  }
  // The proof is vacuous unless the narrow window actually skips.
  EXPECT_GT(total_skipped, 0u);
}

// ---------------------------------------------------------------------------
// Byte-level determinism with routing on: reruns, kernel thread counts, and
// a crash schedule whose orphans re-enter admission through the router all
// produce identical hits, report JSON, CSV, and trace bytes.

TEST(Routing, ByteIdenticalAcrossRerunsThreadsAndCrashes) {
  const Workload& w = workload(false);
  sim::FaultModel faults;
  faults.crash(2, 3);
  sim::Runtime runtime(5, {}, {}, faults);
  runtime.enable_tracing();

  auto run_with_threads = [&](std::size_t threads) {
    SearchConfig config = make_config(0.05);
    config.kernel_threads = threads;
    return serve::run_service(runtime, w.image, w.queries, config,
                              service_options(true));
  };

  const serve::ServiceResult a = run_with_threads(1);
  const serve::ServiceResult b = run_with_threads(1);
  const serve::ServiceResult c = run_with_threads(3);

  // The crash exercised the router's re-admission path.
  std::uint32_t redispatches = 0;
  for (const serve::QueryOutcome& q : a.outcomes)
    redispatches += q.redispatches;
  EXPECT_GT(redispatches, 0u);
  EXPECT_GT(a.steps_skipped, 0u);

  for (const serve::ServiceResult* other : {&b, &c}) {
    expect_hits_identical(other->hits, a.hits, "routed rerun");
    EXPECT_EQ(other->report.to_json(), a.report.to_json());
    EXPECT_EQ(other->report.to_csv(), a.report.to_csv());
    EXPECT_EQ(other->report.to_chrome_trace(), a.report.to_chrome_trace());
    EXPECT_EQ(other->steps_visited, a.steps_visited);
    EXPECT_EQ(other->steps_skipped, a.steps_skipped);
    EXPECT_EQ(other->makespan_s, a.makespan_s);
  }
}

// ---------------------------------------------------------------------------
// Batch mode: Algorithm A's router shares the invariant — bit-identical
// hits with routing on or off, same candidate totals, skips only when on.

TEST(Routing, AlgorithmARoutedMatchesUnroutedAndSerial) {
  const Workload& w = workload(false);
  const SearchConfig config = make_config(0.05);
  const SearchEngine engine(config);
  const QueryHits serial = engine.search(w.db, w.queries);
  const sim::Runtime runtime(6);

  AlgorithmAOptions options;
  options.mass_routing = true;
  const ParallelRunResult routed =
      run_algorithm_a(runtime, w.image, w.queries, config, options);
  options.mass_routing = false;
  const ParallelRunResult unrouted =
      run_algorithm_a(runtime, w.image, w.queries, config, options);

  expect_hits_identical(routed.hits, serial, "algorithm A routed");
  expect_hits_identical(unrouted.hits, serial, "algorithm A unrouted");
  EXPECT_EQ(routed.candidates, unrouted.candidates);
  EXPECT_GT(routed.report.sum_counter("route_steps_skipped"), 0u);
  EXPECT_EQ(unrouted.report.sum_counter("route_steps_skipped"), 0u);
}

// ---------------------------------------------------------------------------
// Report schema: the router's audit counters ride the standard counter
// columns (CSV) and counter sums (JSON), and vanish when routing is off —
// the zero-cost-when-disabled contract the fault columns already honor.

TEST(Routing, AuditCountersAppearInReportSchema) {
  const Workload& w = workload(false);
  const SearchConfig config = make_config(0.05);
  const sim::Runtime runtime(5);

  const serve::ServiceResult routed = serve::run_service(
      runtime, w.image, w.queries, config, service_options(true));
  const std::string csv = routed.report.to_csv();
  const std::string json = routed.report.to_json();
  EXPECT_NE(csv.find("route_steps_visited"), std::string::npos);
  EXPECT_NE(csv.find("route_steps_skipped"), std::string::npos);
  EXPECT_NE(json.find("route_steps_visited"), std::string::npos);
  EXPECT_NE(json.find("route_steps_skipped"), std::string::npos);
  EXPECT_GT(routed.report.sum_counter("route_steps_skipped"), 0u);

  // The per-batch audit aggregates to the result's totals.
  std::uint64_t visited = 0;
  std::uint64_t skipped = 0;
  for (const serve::BatchRouteStats& batch : routed.batch_routes) {
    visited += batch.steps_visited;
    skipped += batch.steps_skipped;
  }
  EXPECT_EQ(visited, routed.steps_visited);
  EXPECT_EQ(skipped, routed.steps_skipped);

  const serve::ServiceResult unrouted = serve::run_service(
      runtime, w.image, w.queries, config, service_options(false));
  EXPECT_EQ(unrouted.report.sum_counter("route_steps_skipped"), 0u);
  EXPECT_EQ(unrouted.report.to_csv().find("route_steps_skipped"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Wire format: the histogram record round-trips losslessly under fuzzed
// mass sets, widths, and sizes (empty and singleton included).

TEST(RoutingWire, HistogramRecordRoundTripFuzz) {
  Xoshiro256 rng(424242);
  const double widths[] = {0.01, 0.25, 1.0, 17.3};
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t count =
        trial == 0 ? 0 : (trial == 1 ? 1 : rng() % 300);
    std::vector<double> masses(count);
    for (double& mass : masses)
      mass = 300.0 + static_cast<double>(rng() % 3700000) * 1e-3;
    std::sort(masses.begin(), masses.end());
    const double width = widths[rng() % 4];
    const MassHistogram histogram = MassHistogram::build(masses, width);
    EXPECT_EQ(histogram.total(), masses.size());

    wire::Writer writer;
    put_histogram(writer, histogram);
    const std::vector<char> bytes = writer.take();
    wire::Reader reader(bytes);
    EXPECT_TRUE(peek_histogram(reader));
    const MassHistogram parsed = get_histogram(reader);
    EXPECT_TRUE(reader.exhausted()) << "trial " << trial;

    EXPECT_EQ(parsed.bucket_width, histogram.bucket_width);
    EXPECT_EQ(parsed.min_mass, histogram.min_mass);
    EXPECT_EQ(parsed.bucket_count, histogram.bucket_count);
    ASSERT_EQ(parsed.buckets.size(), histogram.buckets.size());
    for (std::size_t i = 0; i < histogram.buckets.size(); ++i) {
      EXPECT_EQ(parsed.buckets[i].index, histogram.buckets[i].index);
      EXPECT_EQ(parsed.buckets[i].count, histogram.buckets[i].count);
    }

    // Semantic equivalence on random windows, not just field equality.
    for (int probe = 0; probe < 8; ++probe) {
      const double lo = 250.0 + static_cast<double>(rng() % 3900000) * 1e-3;
      const double hi = lo + static_cast<double>(rng() % 5000) * 1e-3;
      EXPECT_EQ(parsed.occupied(lo, hi), histogram.occupied(lo, hi));
      EXPECT_EQ(parsed.record_range(lo, hi), histogram.record_range(lo, hi));
    }
  }
}

// ---------------------------------------------------------------------------
// Bucket-math boundaries: occupied()/record_range() are integer math over
// clamped bucket ordinals (no float compare against the grid), so masses
// exactly on bucket edges, windows far outside the grid, infinities and
// NaN all take defined paths — edges err occupied (the ±1-bucket widening),
// out-of-grid windows are provably empty, NaN never routes a visit.

TEST(RoutingBucketMath, ExactBucketEdgesAreOccupied) {
  const double width = 0.25;
  std::vector<double> masses = {500.0, 500.5, 501.0};
  const MassHistogram histogram = MassHistogram::build(masses, width);
  for (const double mass : masses) {
    // A zero-width window exactly on a stored mass (a bucket's floor edge,
    // since these masses are multiples of the width).
    EXPECT_TRUE(histogram.occupied(mass, mass)) << mass;
    const auto [first, last] = histogram.record_range(mass, mass);
    EXPECT_LT(first, last) << mass;
  }
  // The grid edges themselves: one bucket-width below the first mass and
  // at/above the last stored bucket are inside the ±1 widening → occupied;
  // two widths out is provably empty.
  EXPECT_TRUE(histogram.occupied(500.0 - width, 500.0 - width));
  EXPECT_FALSE(histogram.occupied(500.0 - 2 * width, 500.0 - 2 * width));
  EXPECT_TRUE(histogram.occupied(501.0 + width, 501.0 + width));
  EXPECT_FALSE(histogram.occupied(501.25 + width, 501.25 + width));
}

TEST(RoutingBucketMath, WindowsOutsideTheGridAreEmpty) {
  std::vector<double> masses = {800.0, 900.0, 1000.0};
  const MassHistogram histogram = MassHistogram::build(masses, 0.01);
  // Far below, far above, and astronomically outside — including values
  // whose float bucket ordinal overflows int32/uint32 if computed naively.
  EXPECT_FALSE(histogram.occupied(1.0, 2.0));
  EXPECT_FALSE(histogram.occupied(5000.0, 6000.0));
  EXPECT_FALSE(histogram.occupied(1e30, 1e30));
  EXPECT_FALSE(histogram.occupied(-1e30, -1e30));
  EXPECT_EQ(histogram.record_range(1.0, 2.0), (std::pair<std::uint64_t,
                                               std::uint64_t>{0, 0}));
  EXPECT_EQ(histogram.record_range(1e30, 1e30).first,
            histogram.record_range(1e30, 1e30).second);
  // An envelope that swallows the whole grid (±inf) routes a visit and
  // covers every record.
  constexpr double kInf = std::numeric_limits<double>::infinity();
  EXPECT_TRUE(histogram.occupied(-kInf, kInf));
  EXPECT_EQ(histogram.record_range(-kInf, kInf),
            (std::pair<std::uint64_t, std::uint64_t>{0, masses.size()}));
  // Inverted and empty-intersection windows are empty, not UB.
  EXPECT_FALSE(histogram.occupied(900.0, 800.0));
}

TEST(RoutingBucketMath, NanWindowsNeverRoute) {
  std::vector<double> masses = {700.0, 701.0};
  const MassHistogram histogram = MassHistogram::build(masses, 0.01);
  constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
  // Every NaN comparison is false, so a NaN bound lands on the below-grid
  // sentinel and the window is treated as empty — deterministically, on
  // every rank (a NaN that routed "visit" on some ranks and "skip" on
  // others would desynchronize the replicated controllers).
  EXPECT_FALSE(histogram.occupied(kNan, kNan));
  // A NaN lower bound alone degrades to "from below the grid": with a real
  // upper bound the window still conservatively routes a visit.
  EXPECT_TRUE(histogram.occupied(kNan, 701.0));
  EXPECT_EQ(histogram.record_range(kNan, kNan),
            (std::pair<std::uint64_t, std::uint64_t>{0, 0}));
}

// Corrupt records must be rejected loudly, each with a specific IoError —
// never parsed into a histogram that silently misroutes.

TEST(RoutingWire, CorruptedHistogramRecordsAreRejected) {
  std::vector<double> masses;
  for (int i = 0; i < 50; ++i) masses.push_back(500.0 + 3.1 * i);
  const MassHistogram histogram = MassHistogram::build(masses, 0.25);
  wire::Writer writer;
  put_histogram(writer, histogram);
  const std::vector<char> valid = writer.take();

  const auto expect_rejected = [](std::vector<char> bytes,
                                  const std::string& label) {
    wire::Reader reader(bytes);
    EXPECT_THROW(get_histogram(reader), IoError) << label;
  };

  {  // Bad magic: peek says "not a histogram", get throws.
    std::vector<char> bytes = valid;
    bytes[0] ^= 0x5A;
    wire::Reader reader(bytes);
    EXPECT_FALSE(peek_histogram(reader));
    expect_rejected(bytes, "bad magic");
  }
  {  // Truncation anywhere in the record.
    for (const std::size_t keep :
         {std::size_t{4}, std::size_t{12}, valid.size() - 3}) {
      std::vector<char> bytes(valid.begin(),
                              valid.begin() + static_cast<long>(keep));
      expect_rejected(std::move(bytes),
                      "truncated to " + std::to_string(keep));
    }
  }

  // Structurally valid framing with hostile field values, crafted off the
  // real magic (read from the valid image so the constant stays private).
  wire::Reader magic_reader(valid);
  const std::uint64_t magic = magic_reader.peek_u64();
  const auto craft = [&](std::uint32_t version, double width, double min_mass,
                         std::uint64_t grid, auto&&... bucket_fields) {
    wire::Writer bad;
    bad.put_u64(magic);
    bad.put_u32(version);
    bad.put_double(width);
    bad.put_double(min_mass);
    bad.put_u64(grid);
    const std::vector<std::uint32_t> fields{
        static_cast<std::uint32_t>(bucket_fields)...};
    bad.put_u64(fields.size() / 2);
    for (const std::uint32_t field : fields) bad.put_u32(field);
    return bad.take();
  };

  expect_rejected(craft(99, 0.25, 100.0, 10), "unsupported version");
  expect_rejected(craft(1, 0.0, 100.0, 10), "zero width");
  expect_rejected(craft(1, -0.25, 100.0, 10), "negative width");
  expect_rejected(craft(1, std::nan(""), 100.0, 10), "NaN width");
  expect_rejected(craft(1, 0.25, std::nan(""), 10), "NaN min mass");
  expect_rejected(craft(1, 0.25, 100.0, 10, 0u, 0u), "zero-count bucket");
  expect_rejected(craft(1, 0.25, 100.0, 10, 12u, 3u), "bucket outside grid");
  expect_rejected(craft(1, 0.25, 100.0, 10, 5u, 1u, 5u, 2u),
                  "non-ascending buckets");
  expect_rejected(craft(1, 0.25, 100.0, 1, 0u, 1u, 0u, 1u, 0u, 1u),
                  "more nonzero buckets than the grid");
}

// Legacy images and unknown shards: no histogram record means
// route-everything, never a wrong skip.

TEST(RoutingWire, LegacyImagesFallBackToRouteEverything) {
  const Workload& w = workload(false);
  const SearchConfig config = make_config(0.05);

  // Plain and indexed pack images predate the histogram trailer; both must
  // still parse, reporting no histogram.
  const PackedShard plain = unpack_shard(pack_database(w.db));
  EXPECT_FALSE(plain.has_histogram);
  const CandidateIndex index = CandidateIndex::build(w.db, config);
  const PackedShard indexed = unpack_shard(pack_database(w.db, index));
  EXPECT_TRUE(indexed.has_index);
  EXPECT_FALSE(indexed.has_histogram);

  // The trailer form round-trips its histogram.
  const MassHistogram histogram = MassHistogram::build(index);
  const PackedShard tagged =
      unpack_shard(pack_database(w.db, index, histogram));
  ASSERT_TRUE(tagged.has_histogram);
  EXPECT_EQ(tagged.histogram.total(), histogram.total());
  EXPECT_EQ(tagged.histogram.bucket_count, histogram.bucket_count);

  // A map built from nothing knows nothing and routes everything; a map
  // holding an empty histogram proves that shard empty and skips it.
  const ShardMassMap unknown;
  EXPECT_FALSE(unknown.routes());
  EXPECT_FALSE(unknown.known(0));
  EXPECT_EQ(unknown.histogram(0), nullptr);
  const std::vector<double> hyp{1000.0};
  EXPECT_TRUE(unknown.needed(0, hyp, 0.05));

  std::vector<std::optional<MassHistogram>> shards(2);
  shards[0] = histogram;
  shards[1] = MassHistogram{};  // provably empty shard
  const ShardMassMap partial{std::move(shards)};
  EXPECT_TRUE(partial.routes());
  EXPECT_FALSE(partial.needed(1, hyp, 0.05));
  EXPECT_TRUE(partial.needed(2, hyp, 0.05));  // out of range: visit
}

}  // namespace
}  // namespace msp
