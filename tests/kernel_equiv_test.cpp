// Kernel-equivalence validation for the candidate-centric scoring kernel.
//
// Two independent claims are enforced here. First, the indexed merge-join
// kernel (search_shard) is hit-for-hit and counter-for-counter identical to
// the retained database-walking kernel (search_shard_reference) across every
// candidate mode, prefilter setting and charge-hypothesis setting — scores
// compared bit-exactly, because both paths consume the same sorted ion
// vectors in the same order. Second, intra-rank threading is invisible:
// any kernel_threads setting produces identical hits, identical counters
// and (through the algorithms) byte-identical virtual-time traces, with and
// without an injected fault schedule.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/algorithm_a.hpp"
#include "core/candidate_index.hpp"
#include "core/packdb.hpp"
#include "core/search_engine.hpp"
#include "dbgen/protein_gen.hpp"
#include "dbgen/query_gen.hpp"
#include "io/fasta.hpp"
#include "simmpi/runtime.hpp"
#include "util/error.hpp"

namespace msp {
namespace {

struct Workload {
  ProteinDatabase db;
  std::string image;
  std::vector<Spectrum> queries;

  Workload() {
    ProteinGenOptions db_options;
    db_options.sequence_count = 50;
    db_options.mean_length = 130;
    db_options.seed = 7717;
    db = generate_proteins(db_options);
    image = to_fasta_string(db);

    QueryGenOptions q_options;
    q_options.query_count = 24;
    q_options.seed = 7718;
    q_options.digest.min_length = 6;
    q_options.digest.max_length = 25;
    queries = spectra_of(generate_queries(db, q_options));
  }
};

const Workload& workload() {
  static const Workload w;
  return w;
}

SearchConfig base_config() {
  SearchConfig config;
  config.tolerance_da = 3.0;
  config.tau = 7;
  config.min_candidate_length = 4;
  config.max_candidate_length = 60;
  config.model = ScoreModel::kLikelihood;
  return config;
}

struct KernelRun {
  QueryHits hits;
  ShardSearchStats stats;
  std::vector<std::uint64_t> per_query;
};

KernelRun run_indexed(const SearchEngine& engine, const ProteinDatabase& db,
                      const PreparedQueries& prepared,
                      const CandidateIndex* index = nullptr) {
  KernelRun run;
  run.per_query.assign(prepared.size(), 0);
  std::vector<TopK<Hit>> tops = engine.make_tops(prepared.size());
  run.stats = engine.search_shard(db, prepared, tops, &run.per_query, index);
  run.hits = engine.finalize(tops);
  return run;
}

KernelRun run_reference(const SearchEngine& engine, const ProteinDatabase& db,
                        const PreparedQueries& prepared) {
  KernelRun run;
  run.per_query.assign(prepared.size(), 0);
  std::vector<TopK<Hit>> tops = engine.make_tops(prepared.size());
  run.stats = engine.search_shard_reference(db, prepared, tops, &run.per_query);
  run.hits = engine.finalize(tops);
  return run;
}

/// Bit-exact hit comparison: the determinism claim is exact equality, not
/// tolerance equality — both kernels sum the same doubles in the same order.
void expect_hits_identical(const QueryHits& got, const QueryHits& want,
                           const std::string& label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (std::size_t q = 0; q < want.size(); ++q) {
    ASSERT_EQ(got[q].size(), want[q].size()) << label << " query " << q;
    for (std::size_t h = 0; h < want[q].size(); ++h) {
      const Hit& a = got[q][h];
      const Hit& b = want[q][h];
      EXPECT_EQ(a.score, b.score) << label << " q" << q << " h" << h;
      EXPECT_EQ(a.protein_id, b.protein_id) << label << " q" << q << " h" << h;
      EXPECT_EQ(a.offset, b.offset) << label << " q" << q << " h" << h;
      EXPECT_EQ(a.length, b.length) << label << " q" << q << " h" << h;
      EXPECT_EQ(a.end, b.end) << label << " q" << q << " h" << h;
      EXPECT_EQ(a.peptide, b.peptide) << label << " q" << q << " h" << h;
    }
  }
}

void expect_runs_identical(const KernelRun& got, const KernelRun& want,
                           const std::string& label) {
  expect_hits_identical(got.hits, want.hits, label);
  EXPECT_EQ(got.stats.candidates_evaluated, want.stats.candidates_evaluated)
      << label;
  EXPECT_EQ(got.stats.candidates_prefiltered, want.stats.candidates_prefiltered)
      << label;
  EXPECT_EQ(got.stats.hits_offered, want.stats.hits_offered) << label;
  EXPECT_EQ(got.per_query, want.per_query) << label;
}

// ---------- indexed kernel vs. retained reference ----------

TEST(KernelEquivalence, IndexedMatchesReferenceAcrossConfigs) {
  const Workload& w = workload();
  for (const CandidateMode mode :
       {CandidateMode::kPrefixSuffix, CandidateMode::kTryptic}) {
    for (const bool prefilter : {false, true}) {
      for (const bool alternate : {false, true}) {
        for (const ScoreModel model :
             {ScoreModel::kLikelihood, ScoreModel::kHyperscore,
              ScoreModel::kSharedPeak, ScoreModel::kXcorr}) {
          SearchConfig config = base_config();
          config.candidate_mode = mode;
          config.prefilter = prefilter;
          config.try_alternate_charges = alternate;
          config.model = model;
          const std::string label =
              std::string(mode == CandidateMode::kTryptic ? "tryptic"
                                                          : "prefix/suffix") +
              (prefilter ? "+prefilter" : "") + (alternate ? "+charges" : "") +
              " model=" + std::to_string(static_cast<int>(model));

          const SearchEngine engine(config);
          const PreparedQueries prepared = engine.prepare(w.queries);
          const KernelRun indexed = run_indexed(engine, w.db, prepared);
          const KernelRun reference = run_reference(engine, w.db, prepared);
          expect_runs_identical(indexed, reference, label);
          // The whole point of the candidate-centric kernel: it never
          // generates a candidate's ions more often than the reference.
          EXPECT_LE(indexed.stats.ions_built, reference.stats.ions_built)
              << label;
          EXPECT_LE(indexed.stats.ions_built,
                    indexed.stats.candidates_evaluated +
                        indexed.stats.candidates_prefiltered)
              << label;
        }
      }
    }
  }
}

TEST(KernelEquivalence, AmortizesIonGenerationAcrossChargeHypotheses) {
  const Workload& w = workload();
  SearchConfig config = base_config();
  config.try_alternate_charges = true;  // several hypotheses share candidates
  const SearchEngine engine(config);
  const PreparedQueries prepared = engine.prepare(w.queries);
  const KernelRun run = run_indexed(engine, w.db, prepared);
  ASSERT_GT(run.stats.ions_built, 0u);
  EXPECT_LT(run.stats.ions_built,
            run.stats.candidates_evaluated + run.stats.candidates_prefiltered);
}

TEST(KernelEquivalence, ShippedIndexMatchesLocalBuild) {
  const Workload& w = workload();
  const SearchConfig config = base_config();
  const SearchEngine engine(config);
  const PreparedQueries prepared = engine.prepare(w.queries);

  const CandidateIndex index = CandidateIndex::build(w.db, config);
  ASSERT_FALSE(index.empty());
  const std::vector<char> bytes = pack_database(w.db, index);

  // The indexed image is self-describing and survives the wire intact.
  const PackedShard shard = unpack_shard(bytes);
  ASSERT_TRUE(shard.has_index);
  EXPECT_TRUE(shard.index.params() == index.params());
  ASSERT_EQ(shard.index.size(), index.size());
  for (std::size_t i = 0; i < index.size(); ++i) {
    const IndexedCandidate& a = shard.index.entries()[i];
    const IndexedCandidate& b = index.entries()[i];
    ASSERT_EQ(a.mass, b.mass) << "entry " << i;
    ASSERT_EQ(a.protein, b.protein) << "entry " << i;
    ASSERT_EQ(a.offset, b.offset) << "entry " << i;
    ASSERT_EQ(a.length, b.length) << "entry " << i;
    ASSERT_EQ(a.end, b.end) << "entry " << i;
  }

  // Searching with the shipped index == searching with an internal build.
  const KernelRun shipped =
      run_indexed(engine, shard.db, prepared, &shard.index);
  const KernelRun internal = run_indexed(engine, w.db, prepared);
  expect_runs_identical(shipped, internal, "shipped index");
  EXPECT_EQ(shipped.stats.ions_built, internal.stats.ions_built);

  // Legacy consumers that only want proteins still work on indexed images.
  const ProteinDatabase plain = unpack_database(bytes);
  ASSERT_EQ(plain.proteins.size(), w.db.proteins.size());
  EXPECT_EQ(plain.proteins.back().residues, w.db.proteins.back().residues);

  // And an un-indexed image reports has_index = false.
  const PackedShard legacy = unpack_shard(pack_database(w.db));
  EXPECT_FALSE(legacy.has_index);
  EXPECT_EQ(legacy.db.proteins.size(), w.db.proteins.size());
}

TEST(KernelEquivalence, RejectsIndexBuiltUnderDifferentParams) {
  const Workload& w = workload();
  SearchConfig tryptic = base_config();
  tryptic.candidate_mode = CandidateMode::kTryptic;
  const CandidateIndex wrong = CandidateIndex::build(w.db, tryptic);

  const SearchEngine engine(base_config());
  const PreparedQueries prepared = engine.prepare(w.queries);
  std::vector<TopK<Hit>> tops = engine.make_tops(prepared.size());
  EXPECT_THROW(engine.search_shard(w.db, prepared, tops, nullptr, &wrong),
               InvalidArgument);
}

// ---------- kernel_threads determinism matrix ----------

TEST(KernelThreads, AnyThreadCountProducesIdenticalResults) {
  const Workload& w = workload();
  // Exercise the threaded merge under both a plain config and the most
  // stateful one (prefilter + alternate charges → shared candidates and
  // both counter paths).
  for (const bool stateful : {false, true}) {
    SearchConfig config = base_config();
    config.prefilter = stateful;
    config.try_alternate_charges = stateful;

    KernelRun baseline;
    for (const std::size_t threads : {1, 2, 4, 8}) {
      config.kernel_threads = threads;
      const SearchEngine engine(config);
      const PreparedQueries prepared = engine.prepare(w.queries);
      const KernelRun run = run_indexed(engine, w.db, prepared);
      if (threads == 1) {
        baseline = run;
        continue;
      }
      const std::string label =
          "kernel_threads=" + std::to_string(threads) +
          (stateful ? " (prefilter+charges)" : "");
      expect_runs_identical(run, baseline, label);
      EXPECT_EQ(run.stats.ions_built, baseline.stats.ions_built) << label;
    }
  }
}

TEST(KernelThreads, ParallelTraceIsThreadCountInvariant) {
  const Workload& w = workload();
  SearchConfig config = base_config();
  sim::Runtime runtime(3);
  runtime.enable_tracing();

  config.kernel_threads = 1;
  const ParallelRunResult serial_kernel =
      run_algorithm_a(runtime, w.image, w.queries, config);
  config.kernel_threads = 4;
  const ParallelRunResult threaded_kernel =
      run_algorithm_a(runtime, w.image, w.queries, config);

  expect_hits_identical(threaded_kernel.hits, serial_kernel.hits,
                        "algorithm A, kernel_threads 4 vs 1");
  EXPECT_EQ(threaded_kernel.candidates, serial_kernel.candidates);
  // Byte-identical virtual trace: every counter and every clock charge must
  // be independent of intra-rank threading — including the span timeline.
  EXPECT_EQ(threaded_kernel.report.to_string(),
            serial_kernel.report.to_string());
  EXPECT_EQ(threaded_kernel.report.to_chrome_trace(),
            serial_kernel.report.to_chrome_trace());
  EXPECT_EQ(threaded_kernel.report.to_iteration_csv(),
            serial_kernel.report.to_iteration_csv());
}

TEST(KernelThreads, FaultScheduleOutcomeIsThreadCountInvariant) {
  const Workload& w = workload();
  sim::FaultModel faults;
  faults.straggle(1, 3.0).fail_transfers(2, {0}).crash(3, 2);
  sim::Runtime runtime(4, {}, {}, faults);
  runtime.enable_tracing();

  SearchConfig config = base_config();
  config.kernel_threads = 1;
  const ParallelRunResult serial_kernel =
      run_algorithm_a(runtime, w.image, w.queries, config);
  config.kernel_threads = 4;
  const ParallelRunResult threaded_kernel =
      run_algorithm_a(runtime, w.image, w.queries, config);

  expect_hits_identical(threaded_kernel.hits, serial_kernel.hits,
                        "algorithm A under faults, kernel_threads 4 vs 1");
  EXPECT_EQ(threaded_kernel.report.to_string(),
            serial_kernel.report.to_string());
  EXPECT_EQ(threaded_kernel.report.to_chrome_trace(),
            serial_kernel.report.to_chrome_trace());
}

}  // namespace
}  // namespace msp
