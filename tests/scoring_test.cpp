// Tests for src/scoring: peak matching, hyperscore, likelihood-ratio model,
// and the top-τ list (including its order-independence property, which the
// cross-algorithm validation relies on).
#include <gtest/gtest.h>

#include <algorithm>

#include "mass/amino_acid.hpp"
#include "scoring/fdr.hpp"
#include "scoring/hyperscore.hpp"
#include "scoring/likelihood.hpp"
#include "scoring/shared_peak.hpp"
#include "scoring/top_hits.hpp"
#include "spectra/generator.hpp"
#include "spectra/library.hpp"
#include "spectra/theoretical.hpp"
#include "util/rng.hpp"

namespace msp {
namespace {

Spectrum perfect_spectrum(std::string_view peptide) {
  return model_spectrum(peptide);
}

// ---------- shared peaks ----------

TEST(SharedPeak, PerfectSpectrumMatchesAllIons) {
  const Spectrum spectrum = perfect_spectrum("PEPTIDEK");
  const BinnedSpectrum binned(spectrum);
  const PeakMatchStats stats = match_peptide(binned, "PEPTIDEK");
  EXPECT_EQ(stats.total_ions, 14u);
  EXPECT_EQ(stats.matched_b + stats.matched_y, 14u);
  EXPECT_EQ(shared_peak_count(binned, "PEPTIDEK"), 14u);
}

TEST(SharedPeak, UnrelatedPeptideMatchesFew) {
  const Spectrum spectrum = perfect_spectrum("PEPTIDEK");
  const BinnedSpectrum binned(spectrum);
  // A very different composition should share few fragment bins.
  EXPECT_LT(shared_peak_count(binned, "WWWWWWWW"), 3u);
}

TEST(SharedPeak, EmptySpectrumMatchesNothing) {
  const BinnedSpectrum binned(Spectrum({}, 500.0, 1));
  EXPECT_EQ(shared_peak_count(binned, "PEPTIDEK"), 0u);
}

// ---------- hyperscore ----------

TEST(Hyperscore, TruePeptideBeatsDecoys) {
  const Spectrum spectrum = perfect_spectrum("ACDEFGHIK");
  const BinnedSpectrum binned(spectrum);
  const double true_score = hyperscore(binned, "ACDEFGHIK");
  for (const char* decoy : {"KIHGFEDCA", "LLLLLLLLL", "ACDEFGHIR"})
    EXPECT_GT(true_score, hyperscore(binned, decoy)) << decoy;
}

TEST(Hyperscore, NoMatchIsFloor) {
  const BinnedSpectrum binned(Spectrum({}, 500.0, 1));
  EXPECT_DOUBLE_EQ(hyperscore(binned, "PEPTIDEK"), kHyperscoreFloor);
}

TEST(Hyperscore, MoreMatchesScoreHigher) {
  // Against the full model spectrum, a longer shared subsequence wins.
  const Spectrum spectrum = perfect_spectrum("AAAACDEFGHIK");
  const BinnedSpectrum binned(spectrum);
  EXPECT_GT(hyperscore(binned, "AAAACDEFGHIK"), hyperscore(binned, "ACDEFGHIK"));
}

// ---------- likelihood ratio ----------

TEST(Likelihood, QueryContextEstimatesBackground) {
  const Spectrum sparse({{100, 1.0}, {900, 1.0}}, 1000.0, 1);
  const Spectrum dense = perfect_spectrum("ACDEFGHIKLMNPQRSTVWY");
  const QueryContext sparse_ctx(sparse);
  const QueryContext dense_ctx(dense);
  EXPECT_LT(sparse_ctx.background_rate(), dense_ctx.background_rate());
  EXPECT_GT(sparse_ctx.background_rate(), 0.0);
  EXPECT_LE(dense_ctx.background_rate(), 0.5);
}

TEST(Likelihood, TruePeptideScoresAboveDecoys) {
  SpectrumNoiseModel noise;  // realistic: dropout + jitter + noise
  Xoshiro256 rng(2024);
  const Spectrum spectrum = simulate_spectrum("ACDEFGHIKLMNK", noise, rng);
  const QueryContext context(spectrum);
  const double true_score = likelihood_ratio(context, "ACDEFGHIKLMNK");
  for (const char* decoy :
       {"KNMLKIHGFEDCA", "AAAAAAAAAAAAA", "WYWYWYWYWYWYW"})
    EXPECT_GT(true_score, likelihood_ratio(context, decoy)) << decoy;
}

TEST(Likelihood, MatchedIonsIncreaseScore) {
  const Spectrum spectrum = perfect_spectrum("ACDEFGHIK");
  const QueryContext context(spectrum);
  // Score strictly increases with each matched ion added (same miss count),
  // exercised indirectly: the true peptide beats its own reversal.
  EXPECT_GT(likelihood_ratio(context, "ACDEFGHIK"),
            likelihood_ratio(context, "KIHGFEDCA"));
}

TEST(Likelihood, DeterministicAcrossCalls) {
  const Spectrum spectrum = perfect_spectrum("PEPTIDEK");
  const QueryContext context(spectrum);
  const double a = likelihood_ratio(context, "PEPTIDEK");
  const double b = likelihood_ratio(context, "PEPTIDEK");
  EXPECT_EQ(a, b);  // bitwise: validation demands reproducible doubles
}

TEST(Likelihood, RejectsDegenerateModel) {
  LikelihoodModel model;
  model.detection_rate = 1.0;
  EXPECT_THROW(QueryContext(perfect_spectrum("PEPTIDEK"), kDefaultBinWidth,
                            model),
               InvalidArgument);
}

// ---------- library scoring ----------

TEST(LibraryScore, ReplicateQueryPrefersLibraryEntry) {
  // Build a consensus library entry from replicates, then score a fresh
  // replicate: the library path should beat the idealized model (it knows
  // the peptide's real intensity pattern) and beat decoy peptides.
  const std::string peptide = "ACDEFGHIKLMNK";
  SpectrumNoiseModel noise;
  noise.peak_dropout = 0.25;
  std::vector<Spectrum> replicates;
  for (int i = 0; i < 8; ++i) {
    Xoshiro256 rng(900 + static_cast<std::uint64_t>(i));
    replicates.push_back(simulate_spectrum(peptide, noise, rng));
  }
  SpectralLibrary library;
  library.add_replicates(peptide, replicates);

  Xoshiro256 fresh_rng(999);
  const Spectrum fresh = simulate_spectrum(peptide, noise, fresh_rng);
  const QueryContext context(fresh);

  const Spectrum* entry = library.find(peptide);
  ASSERT_NE(entry, nullptr);
  const double library_score = likelihood_ratio_library(context, *entry);
  const double model_score = likelihood_ratio(context, peptide);
  const double decoy_score = likelihood_ratio(context, "KNMLKIHGFEDCA");
  EXPECT_GT(library_score, decoy_score);
  EXPECT_GT(model_score, decoy_score);
}

TEST(LibraryScore, EmptyLibrarySpectrumIsNeutral) {
  const Spectrum query = model_spectrum("PEPTIDEK");
  const QueryContext context(query);
  const Spectrum empty({}, 500.0, 1);
  EXPECT_DOUBLE_EQ(likelihood_ratio_library(context, empty), 0.0);
}

TEST(LibraryScore, DeterministicAcrossCalls) {
  const Spectrum query = model_spectrum("PEPTIDEK");
  const QueryContext context(query);
  const Spectrum entry = model_spectrum("PEPTIDEK");
  EXPECT_EQ(likelihood_ratio_library(context, entry),
            likelihood_ratio_library(context, entry));
}

// ---------- target–decoy FDR ----------

TEST(Fdr, DecoyDatabasePreservesStatistics) {
  ProteinDatabase db;
  db.proteins.push_back({"p1", "ACDEFGHIK"});
  db.proteins.push_back({"p2", "LMNPQR"});
  const ProteinDatabase decoys = make_decoy_database(db);
  ASSERT_EQ(decoys.sequence_count(), 2u);
  EXPECT_EQ(decoys.proteins[0].id, "DECOY_p1");
  EXPECT_EQ(decoys.proteins[0].residues, "KIHGFEDCA");
  EXPECT_NEAR(peptide_mass(decoys.proteins[0].residues),
              peptide_mass(db.proteins[0].residues), 1e-9);
  EXPECT_TRUE(is_decoy_id("DECOY_p1"));
  EXPECT_FALSE(is_decoy_id("p1"));
}

TEST(Fdr, ConcatenateKeepsOrder) {
  ProteinDatabase a, b;
  a.proteins.push_back({"t", "GGG"});
  b.proteins.push_back({"DECOY_t", "GGG"});
  const ProteinDatabase combined = concatenate(a, b);
  ASSERT_EQ(combined.sequence_count(), 2u);
  EXPECT_EQ(combined.proteins[0].id, "t");
  EXPECT_EQ(combined.proteins[1].id, "DECOY_t");
}

TEST(Fdr, PerfectSeparationGivesLowQ) {
  std::vector<Psm> psms;
  for (int i = 0; i < 50; ++i) psms.push_back({100.0 + i, false});  // targets
  for (int i = 0; i < 50; ++i) psms.push_back({-100.0 - i, true});  // decoys
  const auto q = estimate_q_values(psms);
  for (int i = 0; i < 50; ++i) {
    EXPECT_LE(q[static_cast<std::size_t>(i)], 0.05) << i;
    EXPECT_DOUBLE_EQ(q[static_cast<std::size_t>(50 + i)], 1.0);  // decoys
  }
  EXPECT_EQ(accepted_at(psms, 0.05), 50u);
}

TEST(Fdr, InterleavedScoresRaiseQ) {
  // Alternating target/decoy scores → FDR ≈ 1 throughout.
  std::vector<Psm> psms;
  for (int i = 0; i < 40; ++i)
    psms.push_back({static_cast<double>(100 - i), i % 2 == 1});
  EXPECT_EQ(accepted_at(psms, 0.05), 0u);
  const auto q = estimate_q_values(psms);
  for (std::size_t i = 10; i < psms.size(); ++i) {
    if (!psms[i].decoy) {
      EXPECT_GT(q[i], 0.5) << i;
    }
  }
}

TEST(Fdr, QValuesAreMonotoneInScore) {
  Xoshiro256 rng(31);
  std::vector<Psm> psms;
  for (int i = 0; i < 200; ++i)
    psms.push_back({rng.normal() + (i % 3 == 0 ? 1.5 : 0.0), i % 4 == 0});
  const auto q = estimate_q_values(psms);
  // Sort targets by score; q must be non-increasing as score grows.
  std::vector<std::pair<double, double>> target_q;
  for (std::size_t i = 0; i < psms.size(); ++i)
    if (!psms[i].decoy) target_q.emplace_back(psms[i].score, q[i]);
  std::sort(target_q.begin(), target_q.end());
  for (std::size_t i = 1; i < target_q.size(); ++i)
    EXPECT_GE(target_q[i - 1].second + 1e-12, target_q[i].second);
}

TEST(Fdr, AcceptedCountMonotoneInThreshold) {
  Xoshiro256 rng(32);
  std::vector<Psm> psms;
  for (int i = 0; i < 100; ++i)
    psms.push_back({rng.normal() + (i % 2 ? 0.0 : 2.0), i % 2 == 1});
  std::size_t previous = 0;
  for (double threshold : {0.0, 0.01, 0.05, 0.2, 1.0}) {
    const std::size_t accepted = accepted_at(psms, threshold);
    EXPECT_GE(accepted, previous);
    previous = accepted;
  }
}

TEST(Fdr, RejectsBadThreshold) {
  EXPECT_THROW(accepted_at({}, -0.1), InvalidArgument);
  EXPECT_THROW(accepted_at({}, 1.5), InvalidArgument);
}

// ---------- TopK ----------

struct FakeHit {
  double score = 0.0;
  int id = 0;
  int tie_key() const { return id; }
  bool operator==(const FakeHit&) const = default;
};

TEST(TopK, KeepsBestK) {
  TopK<FakeHit> top(3);
  for (int i = 0; i < 10; ++i) top.offer({static_cast<double>(i), i});
  const auto sorted = top.sorted();
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_EQ(sorted[0].id, 9);
  EXPECT_EQ(sorted[1].id, 8);
  EXPECT_EQ(sorted[2].id, 7);
}

TEST(TopK, TieBreakIsDeterministic) {
  TopK<FakeHit> top(2);
  top.offer({5.0, 30});
  top.offer({5.0, 10});
  top.offer({5.0, 20});
  const auto sorted = top.sorted();
  ASSERT_EQ(sorted.size(), 2u);
  EXPECT_EQ(sorted[0].id, 10);  // smaller tie key wins
  EXPECT_EQ(sorted[1].id, 20);
}

// Property: final content independent of offer order (the paper's ring
// iterations present candidates in p different orders).
TEST(TopK, OrderIndependent) {
  std::vector<FakeHit> hits;
  Xoshiro256 rng(7);
  for (int i = 0; i < 200; ++i)
    hits.push_back({rng.uniform(0, 10), i});  // unique ids
  TopK<FakeHit> forward(17), backward(17), shuffled(17);
  for (const auto& hit : hits) forward.offer(hit);
  for (auto it = hits.rbegin(); it != hits.rend(); ++it) backward.offer(*it);
  std::vector<FakeHit> mixed = hits;
  for (std::size_t i = mixed.size(); i > 1; --i)
    std::swap(mixed[i - 1], mixed[rng.bounded(i)]);
  for (const auto& hit : mixed) shuffled.offer(hit);
  EXPECT_EQ(forward.sorted(), backward.sorted());
  EXPECT_EQ(forward.sorted(), shuffled.sorted());
}

TEST(TopK, MergeEqualsUnion) {
  Xoshiro256 rng(9);
  TopK<FakeHit> left(11), right(11), whole(11);
  for (int i = 0; i < 150; ++i) {
    const FakeHit hit{rng.uniform(0, 1), i};
    (i % 2 ? left : right).offer(hit);
    whole.offer(hit);
  }
  left.merge(right);
  EXPECT_EQ(left.sorted(), whole.sorted());
}

TEST(TopK, CapacityAndCutoff) {
  TopK<FakeHit> top(2);
  EXPECT_FALSE(top.full());
  top.offer({1.0, 1});
  top.offer({2.0, 2});
  EXPECT_TRUE(top.full());
  EXPECT_DOUBLE_EQ(top.cutoff(), 1.0);
  top.offer({3.0, 3});
  EXPECT_DOUBLE_EQ(top.cutoff(), 2.0);
  EXPECT_THROW(TopK<FakeHit>(0), InvalidArgument);
}

// Parameterized sweep: TopK(k) over n offers always returns the true best k.
class TopKSweep : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(TopKSweep, MatchesSortReference) {
  const auto [k, n] = GetParam();
  Xoshiro256 rng(static_cast<std::uint64_t>(k * 1000 + n));
  std::vector<FakeHit> hits;
  for (int i = 0; i < n; ++i) hits.push_back({rng.uniform(0, 5), i});
  TopK<FakeHit> top(static_cast<std::size_t>(k));
  for (const auto& hit : hits) top.offer(hit);
  std::sort(hits.begin(), hits.end(), TopK<FakeHit>::better);
  hits.resize(std::min<std::size_t>(hits.size(), static_cast<std::size_t>(k)));
  EXPECT_EQ(top.sorted(), hits);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, TopKSweep,
    ::testing::Values(std::pair{1, 10}, std::pair{5, 5}, std::pair{5, 100},
                      std::pair{10, 9}, std::pair{100, 1000},
                      std::pair{1000, 50}));

}  // namespace
}  // namespace msp
