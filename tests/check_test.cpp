// simcheck validation: the rejection matrix (one deterministic scenario per
// violation class of the transport contract, see simmpi/check.hpp), the
// throw-on-detection mode, the clean pass over every parallel driver and
// fault schedule, and the zero-behavioral-diff contract (a clean run's hits,
// stats and traces are byte-identical with checking on or off).
//
// The forbidden interleavings are provoked with check::TestBackdoor::
// unsynced_barrier — a physical rendezvous that sequences the ranks in real
// time without recording a happens-before edge, modeling a driver that
// synchronizes through a side channel the transport cannot see.
#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "core/algorithm_a.hpp"
#include "core/algorithm_b.hpp"
#include "core/algorithm_hybrid.hpp"
#include "core/candidate_store.hpp"
#include "core/master_worker.hpp"
#include "core/query_transport.hpp"
#include "core/search_engine.hpp"
#include "dbgen/protein_gen.hpp"
#include "dbgen/query_gen.hpp"
#include "io/fasta.hpp"
#include "simmpi/check.hpp"
#include "simmpi/runtime.hpp"
#include "simmpi/span.hpp"
#include "util/error.hpp"

namespace msp {
namespace {

using sim::Comm;
using sim::RmaRequest;
using sim::Runtime;
using sim::Window;
using sim::check::TestBackdoor;
using sim::check::Violation;
using sim::check::ViolationKind;

// ---------- rejection matrix ----------

/// Run `body` on `p` ranks with the checker in sink mode and return every
/// violation it recorded.
std::vector<Violation> violations_of(
    int p, const std::function<void(Comm&)>& body,
    sim::FaultModel faults = {}, bool tracing = false) {
  Runtime runtime(p, {}, {}, std::move(faults));
  runtime.enable_tracing(tracing);
  std::vector<Violation> sink;
  runtime.set_check_sink(&sink);
  runtime.run(body);
  return sink;
}

TEST(RejectionMatrix, UnorderedShardRead) {
  // Rank 0 rewrites its exposed shard; rank 1 reads it with only an
  // out-of-band rendezvous in between — no fence/barrier orders the write
  // before the read, so the read is of an unsynchronized epoch.
  const std::vector<Violation> sink = violations_of(2, [](Comm& comm) {
    std::vector<char> local(8, static_cast<char>('a' + comm.rank()));
    Window window(comm, local);
    if (comm.rank() == 0) window.note_local_write("rewrite shard in place");
    TestBackdoor::unsynced_barrier(comm);
    if (comm.rank() == 1) {
      std::vector<char> fetched;
      RmaRequest request = window.rget(0, fetched, 1);
      window.wait(request);
    }
    window.fence();
  });
  ASSERT_EQ(sink.size(), 1u);
  const Violation& v = sink.front();
  EXPECT_EQ(v.kind, ViolationKind::kUnorderedShardRead);
  EXPECT_EQ(v.first.rank, 0);   // the unsynchronized write
  EXPECT_EQ(v.second.rank, 1);  // the read that observed it
  EXPECT_EQ(v.first.what, "rewrite shard in place");
  EXPECT_NE(v.second.what.find("rget"), std::string::npos);
  const std::string text = v.to_string();
  EXPECT_NE(text.find("simcheck[unordered-shard-read]"), std::string::npos)
      << text;
  EXPECT_NE(text.find("not ordered after the epoch's last write"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("first : rank 0"), std::string::npos) << text;
  EXPECT_NE(text.find("second: rank 1"), std::string::npos) << text;
}

TEST(RejectionMatrix, ConcurrentShardWrite) {
  // Rank 1 reads rank 0's shard; rank 0 then rewrites it without any
  // synchronization closing the epoch after the read.
  const std::vector<Violation> sink = violations_of(2, [](Comm& comm) {
    std::vector<char> local(8, static_cast<char>('a' + comm.rank()));
    Window window(comm, local);
    if (comm.rank() == 1) {
      std::vector<char> fetched;
      RmaRequest request = window.rget(0, fetched, 1);
      window.wait(request);
    }
    TestBackdoor::unsynced_barrier(comm);
    if (comm.rank() == 0) window.note_local_write("in-place shard update");
    window.fence();
  });
  ASSERT_EQ(sink.size(), 1u);
  const Violation& v = sink.front();
  EXPECT_EQ(v.kind, ViolationKind::kConcurrentShardWrite);
  EXPECT_EQ(v.first.rank, 1);   // the peer's read of the epoch
  EXPECT_EQ(v.second.rank, 0);  // the concurrent local write
  EXPECT_EQ(v.second.what, "in-place shard update");
  const std::string text = v.to_string();
  EXPECT_NE(text.find("simcheck[concurrent-shard-write]"), std::string::npos)
      << text;
  EXPECT_NE(text.find("concurrent with a peer's read"), std::string::npos)
      << text;
}

TEST(RejectionMatrix, DestBufferReuse) {
  const std::vector<Violation> sink = violations_of(1, [](Comm& comm) {
    std::vector<char> local(8, 'a');
    Window window(comm, local);
    std::vector<char> fetched;
    RmaRequest first = window.rget(comm.rank(), fetched, 1);
    RmaRequest second = window.rget(comm.rank(), fetched, 1);
    window.wait(first);
    window.wait(second);
    window.fence();
  });
  ASSERT_EQ(sink.size(), 1u);
  const Violation& v = sink.front();
  EXPECT_EQ(v.kind, ViolationKind::kDestBufferLifetime);
  EXPECT_EQ(v.first.rank, 0);
  EXPECT_EQ(v.second.rank, 0);
  EXPECT_NE(v.first.what.find("rget"), std::string::npos);
  const std::string text = v.to_string();
  EXPECT_NE(text.find("simcheck[dest-buffer-lifetime]"), std::string::npos)
      << text;
  EXPECT_NE(text.find("still has a pending request"), std::string::npos)
      << text;
}

TEST(RejectionMatrix, DestBufferSwappedBeforeWait) {
  const std::vector<Violation> sink = violations_of(1, [](Comm& comm) {
    std::vector<char> local(8, 'b');
    Window window(comm, local);
    std::vector<char> fetched;
    std::vector<char> other(3, 'z');
    RmaRequest request = window.rget(comm.rank(), fetched, 1);
    std::swap(fetched, other);  // the classic D_recv/D_comp footgun
    window.wait(request);
    window.fence();
  });
  ASSERT_EQ(sink.size(), 1u);
  const Violation& v = sink.front();
  EXPECT_EQ(v.kind, ViolationKind::kDestBufferLifetime);
  const std::string text = v.to_string();
  EXPECT_NE(text.find("resized, reassigned or swapped"), std::string::npos)
      << text;
  EXPECT_NE(text.find("different buffer identity"), std::string::npos) << text;
}

TEST(RejectionMatrix, FenceWithPending) {
  const std::vector<Violation> sink = violations_of(1, [](Comm& comm) {
    std::vector<char> local(8, 'c');
    Window window(comm, local);
    std::vector<char> fetched;
    RmaRequest request = window.rget(comm.rank(), fetched, 1);
    window.fence();  // request never waited
    window.wait(request);
  });
  ASSERT_EQ(sink.size(), 1u);
  const Violation& v = sink.front();
  EXPECT_EQ(v.kind, ViolationKind::kFenceWithPending);
  EXPECT_NE(v.first.what.find("rget"), std::string::npos);
  EXPECT_NE(v.second.what.find("fence()"), std::string::npos);
  const std::string text = v.to_string();
  EXPECT_NE(text.find("simcheck[fence-with-pending]"), std::string::npos)
      << text;
  EXPECT_NE(text.find("still un-waited"), std::string::npos) << text;
}

// ---------- span-id linkage into the Chrome trace ----------

TEST(CheckTrace, ViolationCitesTheRgetIssueSpan) {
  Runtime runtime(1);
  runtime.enable_tracing(true);
  std::vector<Violation> sink;
  runtime.set_check_sink(&sink);
  const sim::RunReport report = runtime.run([](Comm& comm) {
    std::vector<char> local(8, 'd');
    Window window(comm, local);
    std::vector<char> fetched;
    RmaRequest request = window.rget(comm.rank(), fetched, 1);
    window.fence();
    window.wait(request);
  });
  ASSERT_EQ(sink.size(), 1u);
  const Violation& v = sink.front();
  // The "first" side is the pending rget issue; with tracing on it carries
  // the span's index on the rank's timeline.
  ASSERT_GE(v.first.trace_event, 0);
  const sim::SpanLog& spans = report.ranks.at(0).spans;
  ASSERT_LT(static_cast<std::size_t>(v.first.trace_event), spans.size());
  EXPECT_EQ(spans[static_cast<std::size_t>(v.first.trace_event)].kind,
            sim::SpanKind::kRgetIssue);
  // The rendered report cites it as trace#N ...
  EXPECT_NE(v.to_string().find("trace#" + std::to_string(v.first.trace_event)),
            std::string::npos);
  // ... and the Chrome trace labels every event with the same index.
  EXPECT_NE(report.to_chrome_trace().find(
                "\"args\":{\"i\":" + std::to_string(v.first.trace_event) + "}"),
            std::string::npos);
}

// ---------- throw-on-detection mode ----------

TEST(CheckThrow, FirstViolationThrowsCheckFailed) {
  Runtime runtime(1);
  runtime.enable_checking(true);  // no sink installed: detection throws
  try {
    runtime.run([](Comm& comm) {
      std::vector<char> local(4, 'e');
      Window window(comm, local);
      std::vector<char> fetched;
      RmaRequest request = window.rget(comm.rank(), fetched, 1);
      window.fence();
      window.wait(request);
    });
    FAIL() << "expected check::CheckFailed";
  } catch (const sim::check::CheckFailed& failure) {
    EXPECT_NE(std::string(failure.what()).find("simcheck[fence-with-pending]"),
              std::string::npos)
        << failure.what();
  }
}

TEST(CheckThrow, CheckFailedIsAnInvalidArgument) {
  // Existing EXPECT_THROW(..., InvalidArgument) call sites keep passing
  // whether the point assert or the checker reports first.
  Runtime runtime(1);
  runtime.enable_checking(true);
  EXPECT_THROW(runtime.run([](Comm& comm) {
    std::vector<char> local(4, 'f');
    Window window(comm, local);
    std::vector<char> fetched;
    RmaRequest first = window.rget(comm.rank(), fetched, 1);
    window.rget(comm.rank(), fetched, 1);
    window.wait(first);
  }),
               InvalidArgument);
}

// ---------- clean pass: every driver, checker on, zero violations ----------

struct Fixture {
  ProteinDatabase db;
  std::string image;
  std::vector<Spectrum> queries;
  SearchConfig config;
  QueryHits serial;

  Fixture() {
    ProteinGenOptions db_options;
    db_options.sequence_count = 40;
    db_options.mean_length = 120;
    db_options.seed = 404;
    db = generate_proteins(db_options);
    image = to_fasta_string(db);

    QueryGenOptions q_options;
    q_options.query_count = 10;
    q_options.digest.min_length = 6;
    q_options.digest.max_length = 25;
    queries = spectra_of(generate_queries(db, q_options));

    config.tolerance_da = 3.0;
    config.tau = 7;
    config.min_candidate_length = 4;
    config.max_candidate_length = 60;
    config.model = ScoreModel::kLikelihood;

    const SearchEngine engine(config);
    serial = engine.search(db, queries);
  }
};

const Fixture& fixture() {
  static const Fixture f;
  return f;
}

void expect_hits_equal(const QueryHits& got, const QueryHits& want,
                       const std::string& label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (std::size_t q = 0; q < want.size(); ++q) {
    ASSERT_EQ(got[q].size(), want[q].size()) << label << " query " << q;
    for (std::size_t h = 0; h < want[q].size(); ++h) {
      EXPECT_EQ(got[q][h].protein_id, want[q][h].protein_id)
          << label << " q" << q << " h" << h;
      EXPECT_DOUBLE_EQ(got[q][h].score, want[q][h].score)
          << label << " q" << q << " h" << h;
    }
  }
}

/// A checked Runtime whose sink proves the absence of violations (a throw
/// would only prove the absence of a *first* one).
struct CheckedRuntime {
  Runtime runtime;
  std::vector<Violation> sink;
  explicit CheckedRuntime(int p, sim::FaultModel faults = {})
      : runtime(p, {}, {}, std::move(faults)) {
    runtime.set_check_sink(&sink);
  }
};

TEST(CleanPass, AlgorithmA) {
  const Fixture& f = fixture();
  CheckedRuntime checked(4);
  const ParallelRunResult result =
      run_algorithm_a(checked.runtime, f.image, f.queries, f.config);
  expect_hits_equal(result.hits, f.serial, "A");
  EXPECT_TRUE(checked.sink.empty());
}

TEST(CleanPass, AlgorithmB) {
  const Fixture& f = fixture();
  CheckedRuntime checked(4);
  const AlgorithmBResult result =
      run_algorithm_b(checked.runtime, f.image, f.queries, f.config);
  expect_hits_equal(result.hits, f.serial, "B");
  EXPECT_TRUE(checked.sink.empty());
}

TEST(CleanPass, AlgorithmHybrid) {
  const Fixture& f = fixture();
  CheckedRuntime checked(4);
  const HybridResult result =
      run_algorithm_hybrid(checked.runtime, f.image, f.queries, f.config);
  expect_hits_equal(result.hits, f.serial, "hybrid");
  EXPECT_TRUE(checked.sink.empty());
}

TEST(CleanPass, MasterWorker) {
  const Fixture& f = fixture();
  CheckedRuntime checked(3);
  const ParallelRunResult result =
      run_master_worker(checked.runtime, f.image, f.queries, f.config);
  expect_hits_equal(result.hits, f.serial, "master-worker");
  EXPECT_TRUE(checked.sink.empty());
}

TEST(CleanPass, QueryTransport) {
  const Fixture& f = fixture();
  CheckedRuntime checked(4);
  const ParallelRunResult result =
      run_query_transport(checked.runtime, f.image, f.queries, f.config);
  expect_hits_equal(result.hits, f.serial, "query-transport");
  EXPECT_TRUE(checked.sink.empty());
}

TEST(CleanPass, CandidateStore) {
  const Fixture& f = fixture();
  CheckedRuntime checked(4);
  const CandidateStoreResult result =
      run_candidate_store(checked.runtime, f.image, f.queries, f.config);
  expect_hits_equal(result.hits, f.serial, "candidate-store");
  EXPECT_TRUE(checked.sink.empty());
}

/// Same schedules as tests/fault_test.cpp's matrix: straggler, transient
/// transfer failures, a mid-ring crash, and all three combined.
sim::FaultModel fault_schedule(int variant, int p) {
  sim::FaultModel faults;
  switch (variant) {
    case 0: faults.straggle(1, 4.0, 2.0); break;
    case 1: faults.fail_transfers(1, {0, 1, 2}); break;
    case 2: faults.crash(1, p / 2); break;
    default:
      faults.straggle(0, 2.0, 1.5)
          .fail_transfers(p - 1, {1, 2})
          .crash(1, p / 2);
  }
  return faults;
}

class CleanPassFaults : public ::testing::TestWithParam<int> {};

TEST_P(CleanPassFaults, AlgorithmARecoveryIsRaceFree) {
  const Fixture& f = fixture();
  CheckedRuntime checked(4, fault_schedule(GetParam(), 4));
  const ParallelRunResult result =
      run_algorithm_a(checked.runtime, f.image, f.queries, f.config);
  expect_hits_equal(result.hits, f.serial,
                    "faults variant " + std::to_string(GetParam()));
  EXPECT_TRUE(checked.sink.empty());
}

INSTANTIATE_TEST_SUITE_P(Schedules, CleanPassFaults,
                         ::testing::Values(0, 1, 2, 3));

// ---------- zero behavioral diff: checker on vs off ----------

TEST(CheckDeterminism, HitsStatsAndTracesAreByteIdenticalWithCheckerOn) {
  const Fixture& f = fixture();
  const sim::FaultModel faults = fault_schedule(3, 4);

  Runtime plain(4, {}, {}, faults);
  plain.enable_tracing(true);
  plain.enable_checking(false);  // explicit: defeat MSPAR_CHECK=ON defaults
  const ParallelRunResult off =
      run_algorithm_a(plain, f.image, f.queries, f.config);

  CheckedRuntime checked(4, faults);
  checked.runtime.enable_tracing(true);
  const ParallelRunResult on =
      run_algorithm_a(checked.runtime, f.image, f.queries, f.config);

  EXPECT_TRUE(checked.sink.empty());
  expect_hits_equal(on.hits, off.hits, "checker on/off");
  EXPECT_EQ(on.report.to_csv(), off.report.to_csv());
  EXPECT_EQ(on.report.to_chrome_trace(), off.report.to_chrome_trace());
  EXPECT_EQ(on.report.to_iteration_csv(), off.report.to_iteration_csv());
  EXPECT_EQ(on.report.to_string(), off.report.to_string());
}

}  // namespace
}  // namespace msp
