// Unit and property tests for src/mass: residue chemistry, peptide masses,
// tryptic digestion, PTM enumeration.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "mass/amino_acid.hpp"
#include "mass/digest.hpp"
#include "mass/isotope.hpp"
#include "mass/peptide.hpp"
#include "mass/ptm.hpp"
#include "util/error.hpp"

namespace msp {
namespace {

TEST(AminoAcid, AlphabetRoundTrip) {
  for (int i = 0; i < 20; ++i) {
    const char c = residue_from_index(i);
    EXPECT_TRUE(is_residue(c));
    EXPECT_EQ(residue_index(c), i);
  }
  for (char c : {'B', 'J', 'O', 'U', 'X', 'Z', 'a', '1', '*'})
    EXPECT_FALSE(is_residue(c)) << c;
}

TEST(AminoAcid, KnownMonoisotopicMasses) {
  EXPECT_NEAR(residue_mass('G'), 57.02146, 1e-4);
  EXPECT_NEAR(residue_mass('W'), 186.07931, 1e-4);
  EXPECT_NEAR(residue_mass('A'), 71.03711, 1e-4);
  // Leucine and isoleucine are isobaric.
  EXPECT_DOUBLE_EQ(residue_mass('L'), residue_mass('I'));
}

TEST(AminoAcid, PeptideMassKnownValues) {
  // Angiotensin II (DRVYIHPF): monoisotopic [M] = 1045.5345 Da.
  EXPECT_NEAR(peptide_mass("DRVYIHPF"), 1045.5345, 1e-3);
  // Glycine dipeptide: 2*57.02146 + water.
  EXPECT_NEAR(peptide_mass("GG"), 2 * 57.02146374 + kWaterMass, 1e-6);
}

TEST(AminoAcid, MassAdditivity) {
  // mass(AB) = mass(A) + mass(B) - water (peptide-bond condensation).
  const double ab = peptide_mass("ACDEFG");
  const double a = peptide_mass("ACD");
  const double b = peptide_mass("EFG");
  EXPECT_NEAR(ab, a + b - kWaterMass, 1e-9);
}

TEST(AminoAcid, MzRoundTrip) {
  const double mass = 1234.567;
  for (int z = 1; z <= 4; ++z)
    EXPECT_NEAR(mass_from_mz(mz_from_mass(mass, z), z), mass, 1e-9);
}

TEST(AminoAcid, AverageMassExceedsMonoisotopic) {
  for (int i = 0; i < 20; ++i) {
    const char c = residue_from_index(i);
    // Heavier isotopes only add mass; average >= monoisotopic (tiny slack
    // for glycine where they are closest).
    EXPECT_GT(residue_mass_average(c) + 1e-6, residue_mass(c)) << c;
  }
}

TEST(AminoAcid, FrequenciesFormDistribution) {
  double total = 0.0;
  for (int i = 0; i < 20; ++i) total += residue_frequency(residue_from_index(i));
  EXPECT_NEAR(total, 1.0, 0.01);  // published table rounds to ~0.999
  EXPECT_GT(residue_frequency('L'), residue_frequency('W'));  // Leu common, Trp rare
}

TEST(AminoAcid, RejectsInvalidInput) {
  EXPECT_THROW(residue_mass('X'), InvalidArgument);
  EXPECT_THROW(peptide_mass("PEPTIDEX"), InvalidArgument);
  EXPECT_THROW(mz_from_mass(100.0, 0), InvalidArgument);
}

// ---------- FragmentMassIndex ----------

TEST(FragmentMassIndex, MatchesDirectComputation) {
  const std::string seq = "ACDEFGHIKLMNPQRSTVWY";
  const FragmentMassIndex index(seq);
  ASSERT_EQ(index.length(), seq.size());
  for (std::size_t k = 0; k <= seq.size(); ++k) {
    EXPECT_NEAR(index.prefix_mass(k), peptide_mass(seq.substr(0, k)), 1e-9)
        << "prefix k=" << k;
    EXPECT_NEAR(index.suffix_mass(k), peptide_mass(seq.substr(seq.size() - k)),
                1e-9)
        << "suffix k=" << k;
  }
}

TEST(FragmentMassIndex, ZeroLengthIsWater) {
  const FragmentMassIndex index("GG");
  EXPECT_NEAR(index.prefix_mass(0), kWaterMass, 1e-12);
  EXPECT_NEAR(index.suffix_mass(0), kWaterMass, 1e-12);
}

// ---------- Peptide / ProteinDatabase ----------

TEST(ProteinDatabase, Totals) {
  ProteinDatabase db;
  db.proteins.push_back({"p1", "ACDE"});
  db.proteins.push_back({"p2", "FGHIKL"});
  EXPECT_EQ(db.sequence_count(), 2u);
  EXPECT_EQ(db.total_residues(), 10u);
  EXPECT_DOUBLE_EQ(db.average_length(), 5.0);
}

TEST(Peptide, ViewSelectsCorrectEnd) {
  ProteinDatabase db;
  db.proteins.push_back({"p", "ABCDEFG"});  // note: B not a residue, view only
  Peptide prefix{0, 3, FragmentEnd::kPrefix, 0.0};
  Peptide suffix{0, 3, FragmentEnd::kSuffix, 0.0};
  EXPECT_EQ(prefix.view(db), "ABC");
  EXPECT_EQ(suffix.view(db), "EFG");
}

// ---------- digestion ----------

TEST(Digest, CleavesAfterKAndRNotBeforeP) {
  //            0123456789
  const std::string seq = "AAKBBRPCCKDD";
  EXPECT_TRUE(is_tryptic_site(seq, 2));    // K|B
  EXPECT_FALSE(is_tryptic_site(seq, 5));   // R before P — no cleavage
  EXPECT_TRUE(is_tryptic_site(seq, 9));    // K|D
  EXPECT_FALSE(is_tryptic_site(seq, 11));  // last residue
}

TEST(Digest, FullyCleavedPeptides) {
  DigestOptions options;
  options.min_length = 1;
  options.max_length = 100;
  const auto peptides = digest_tryptic("AAKCCCRDDDD", options);
  // Segments: AAK | CCCR | DDDD.
  ASSERT_EQ(peptides.size(), 3u);
  EXPECT_EQ(peptide_string("AAKCCCRDDDD", peptides[0]), "AAK");
  EXPECT_EQ(peptide_string("AAKCCCRDDDD", peptides[1]), "CCCR");
  EXPECT_EQ(peptide_string("AAKCCCRDDDD", peptides[2]), "DDDD");
  for (const auto& peptide : peptides) EXPECT_EQ(peptide.missed, 0u);
}

TEST(Digest, MissedCleavagesSpanSegments) {
  DigestOptions options;
  options.min_length = 1;
  options.max_length = 100;
  options.missed_cleavages = 1;
  const auto peptides = digest_tryptic("AAKCCCRDDDD", options);
  // Fully cleaved (3) plus AAKCCCR and CCCRDDDD.
  ASSERT_EQ(peptides.size(), 5u);
  std::multiset<std::string> produced;
  for (const auto& peptide : peptides)
    produced.insert(peptide_string("AAKCCCRDDDD", peptide));
  EXPECT_TRUE(produced.count("AAKCCCR"));
  EXPECT_TRUE(produced.count("CCCRDDDD"));
}

TEST(Digest, LengthWindowFilters) {
  DigestOptions options;
  options.min_length = 4;
  options.max_length = 4;
  const auto peptides = digest_tryptic("AAKCCCRDDDD", options);
  ASSERT_EQ(peptides.size(), 2u);  // CCCR and DDDD only
  for (const auto& peptide : peptides) EXPECT_EQ(peptide.length, 4u);
}

TEST(Digest, NoSitesYieldsWholeSequence) {
  DigestOptions options;
  options.min_length = 1;
  const auto peptides = digest_tryptic("AAAAAA", options);
  ASSERT_EQ(peptides.size(), 1u);
  EXPECT_EQ(peptides[0].length, 6u);
}

TEST(Digest, ProlineSuppression) {
  DigestOptions options;
  options.min_length = 1;
  // KP: no cleavage at all → single peptide.
  EXPECT_EQ(digest_tryptic("AAKPBB", options).size(), 1u);
}

TEST(Digest, RejectsBadOptions) {
  DigestOptions options;
  options.min_length = 0;
  EXPECT_THROW(digest_tryptic("AAA", options), InvalidArgument);
  options.min_length = 10;
  options.max_length = 5;
  EXPECT_THROW(digest_tryptic("AAA", options), InvalidArgument);
}

// Property: digested peptides tile the sequence (offsets valid, no overlap
// among missed==0 peptides, and they reconstruct the parent).
TEST(Digest, FullyCleavedPeptidesTileParent) {
  DigestOptions options;
  options.min_length = 1;
  options.max_length = 1000;
  const std::string seq = "MKTAYIAKQRQISFVKSHFSRQLEERLGLIEVQAPILSRVGDGTQDNLSGAEK";
  const auto peptides = digest_tryptic(seq, options);
  std::string rebuilt;
  for (const auto& peptide : peptides) {
    if (peptide.missed != 0) continue;
    EXPECT_EQ(peptide.offset, rebuilt.size());
    rebuilt += peptide_string(seq, peptide);
  }
  EXPECT_EQ(rebuilt, seq);
}

// ---------- isotope envelopes ----------

TEST(Isotope, SmallPeptideIsMonoisotopicDominated) {
  // A ~1 kDa peptide: M is the tallest line, M+1 roughly half.
  const auto envelope = isotope_envelope(1000.0);
  ASSERT_GE(envelope.size(), 2u);
  EXPECT_DOUBLE_EQ(envelope[0], 1.0);
  EXPECT_GT(envelope[1], 0.3);
  EXPECT_LT(envelope[1], 0.8);
}

TEST(Isotope, LargePeptideShiftsTheEnvelope) {
  // Past ~1.8 kDa the expected heavy count crosses 1 and M+1 overtakes M.
  EXPECT_LT(expected_heavy_isotopes(1000.0), 1.0);
  EXPECT_GT(expected_heavy_isotopes(2500.0), 1.0);
  const auto envelope = isotope_envelope(3000.0);
  ASSERT_GE(envelope.size(), 2u);
  EXPECT_GT(envelope[1], envelope[0] * 0.99);  // M+1 at least rivals M
}

TEST(Isotope, HeavyRateScalesLinearlyWithMass) {
  const double rate1 = expected_heavy_isotopes(800.0);
  const double rate2 = expected_heavy_isotopes(1600.0);
  EXPECT_NEAR(rate2 / rate1, 2.0, 1e-9);
}

TEST(Isotope, EnvelopeValuesAreNormalizedAndTrimmed) {
  const auto envelope = isotope_envelope(500.0, 8);
  EXPECT_DOUBLE_EQ(*std::max_element(envelope.begin(), envelope.end()), 1.0);
  EXPECT_GE(envelope.back(), 1e-3);  // tail trimmed
  for (double value : envelope) {
    EXPECT_GE(value, 0.0);
    EXPECT_LE(value, 1.0);
  }
}

TEST(Isotope, RejectsBadInput) {
  EXPECT_THROW(isotope_envelope(-5.0), InvalidArgument);
  EXPECT_THROW(isotope_envelope(100.0, 0), InvalidArgument);
  EXPECT_THROW(expected_heavy_isotopes(0.0), InvalidArgument);
}

// ---------- PTMs ----------

TEST(Ptm, UnmodifiedVariantAlwaysFirst) {
  const std::vector<Ptm> rules{ptm_phospho_s()};
  const auto variants = enumerate_variants("PEPSIDE", rules, 2);
  ASSERT_FALSE(variants.empty());
  EXPECT_TRUE(variants[0].sites.empty());
  EXPECT_DOUBLE_EQ(variants[0].mass_delta, 0.0);
}

TEST(Ptm, CountsMatchCombinatorics) {
  const std::vector<Ptm> rules{ptm_phospho_s()};
  // "SSS": subsets of 3 sites with <=2 mods: 1 + 3 + 3 = 7.
  EXPECT_EQ(enumerate_variants("SSS", rules, 2).size(), 7u);
  EXPECT_EQ(count_variants("SSS", rules, 2), 7u);
  // max_mods = 3 → all 8 subsets.
  EXPECT_EQ(count_variants("SSS", rules, 3), 8u);
}

TEST(Ptm, EnumerationAgreesWithCount) {
  const std::vector<Ptm> rules{ptm_phospho_s(), ptm_phospho_t(),
                               ptm_oxidation_m()};
  for (const char* peptide : {"STM", "PEPTIDEMST", "AAAA", "MMSSTT"}) {
    for (std::size_t max_mods : {0u, 1u, 2u, 3u}) {
      EXPECT_EQ(enumerate_variants(peptide, rules, max_mods).size(),
                count_variants(peptide, rules, max_mods))
          << peptide << " max_mods=" << max_mods;
    }
  }
}

TEST(Ptm, MassDeltaSumsPerSite) {
  const std::vector<Ptm> rules{ptm_phospho_s()};
  const auto variants = enumerate_variants("SAS", rules, 2);
  double max_delta = 0.0;
  for (const auto& variant : variants)
    max_delta = std::max(max_delta, variant.mass_delta);
  EXPECT_NEAR(max_delta, 2 * 79.96633, 1e-6);
}

TEST(Ptm, SitesAreDistinctPositions) {
  const std::vector<Ptm> rules{ptm_phospho_s(), ptm_phospho_t()};
  for (const auto& variant : enumerate_variants("SSTT", rules, 3)) {
    std::set<std::uint32_t> positions;
    for (const auto& [pos, rule] : variant.sites) positions.insert(pos);
    EXPECT_EQ(positions.size(), variant.sites.size());
  }
}

TEST(Ptm, AnnotateShowsDeltas) {
  const std::vector<Ptm> rules{ptm_phospho_s()};
  const auto variants = enumerate_variants("ASA", rules, 1);
  ASSERT_EQ(variants.size(), 2u);
  EXPECT_EQ(annotate("ASA", variants[1], rules), "AS[+79.97]A");
}

}  // namespace
}  // namespace msp
