// End-to-end integration tests: file-based workflows (FASTA + MGF in, TSV
// hits out), implanted-peptide recovery at scale, PTM-aware searching, and
// determinism across repeated runs — the whole product exercised the way
// the examples and benches use it.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <unistd.h>

#include "core/pipeline.hpp"
#include "core/search_engine.hpp"
#include "dbgen/protein_gen.hpp"
#include "dbgen/query_gen.hpp"
#include "io/fasta.hpp"
#include "io/mgf.hpp"
#include "io/mzxml.hpp"
#include "io/results_io.hpp"
#include "mass/ptm.hpp"
#include "spectra/theoretical.hpp"

namespace msp {
namespace {

namespace fs = std::filesystem;

class TempDir {
 public:
  TempDir() {
    path_ = fs::temp_directory_path() /
            ("mspar_test_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter_++));
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  fs::path path(const std::string& name) const { return path_ / name; }

 private:
  fs::path path_;
  static inline int counter_ = 0;
};

TEST(Integration, FileBasedWorkflow) {
  TempDir dir;

  // 1. Generate and persist a database and a query set.
  ProteinGenOptions db_options;
  db_options.sequence_count = 80;
  db_options.seed = 1234;
  const ProteinDatabase db = generate_proteins(db_options);
  write_fasta_file(dir.path("db.fasta").string(), db);

  QueryGenOptions q_options;
  q_options.query_count = 10;
  const auto generated = generate_queries(db, q_options);
  write_mgf_file(dir.path("queries.mgf").string(), spectra_of(generated));

  // 2. Reload from disk (as a user would) and search with Algorithm A.
  const ProteinDatabase loaded_db =
      read_fasta_file(dir.path("db.fasta").string());
  EXPECT_EQ(loaded_db.sequence_count(), db.sequence_count());
  const auto loaded_queries = read_mgf_file(dir.path("queries.mgf").string());
  ASSERT_EQ(loaded_queries.size(), 10u);

  std::ifstream fasta_stream(dir.path("db.fasta"));
  std::string image((std::istreambuf_iterator<char>(fasta_stream)),
                    std::istreambuf_iterator<char>());

  PipelineOptions options;
  options.algorithm = Algorithm::kAlgorithmA;
  options.p = 4;
  options.config.tau = 5;
  const PipelineResult result = run_pipeline(image, loaded_queries, options);

  // 3. Write and re-read the hit report.
  const auto records = to_hit_records(loaded_queries, result.hits);
  write_hits_file(dir.path("hits.tsv").string(), records);
  const auto reread = read_hits_file(dir.path("hits.tsv").string());
  EXPECT_EQ(reread.size(), records.size());
  EXPECT_GT(result.run_seconds, 0.0);
}

TEST(Integration, ImplantedPeptidesRecoveredAtScale) {
  // The validation experiment: spectra generated from known database
  // peptides must rank their source at/near the top through the full
  // parallel stack.
  ProteinGenOptions db_options;
  db_options.sequence_count = 150;
  db_options.seed = 777;
  const ProteinDatabase db = generate_proteins(db_options);
  const std::string image = to_fasta_string(db);

  QueryGenOptions q_options;
  q_options.query_count = 25;
  q_options.noise.peak_dropout = 0.15;
  q_options.noise.noise_peaks_per_100da = 1.0;
  const auto generated = generate_queries(db, q_options);
  const auto queries = spectra_of(generated);

  PipelineOptions options;
  options.algorithm = Algorithm::kAlgorithmA;
  options.p = 8;
  options.config.tau = 10;
  const PipelineResult result = run_pipeline(image, queries, options);

  std::size_t recovered = 0;
  for (std::size_t q = 0; q < queries.size(); ++q) {
    const std::string& truth = generated[q].true_peptide;
    const std::string source_id = db.proteins[generated[q].source_protein].id;
    for (const Hit& hit : result.hits[q]) {
      const bool same_protein = hit.protein_id == source_id;
      const bool overlaps = hit.peptide.find(truth) != std::string::npos ||
                            truth.find(hit.peptide) != std::string::npos;
      if (same_protein || overlaps) {
        ++recovered;
        break;
      }
    }
  }
  // With mild noise the source should be found for the clear majority.
  EXPECT_GE(recovered, queries.size() * 6 / 10);
}

TEST(Integration, ForeignQueriesScoreLowerThanNativeOnes) {
  // Metagenomics scenario: queries from an unsequenced organism should, on
  // average, top out at lower scores than in-database queries — the basis
  // of MSPolygraph's cutoff-based reporting.
  ProteinGenOptions db_options;
  db_options.sequence_count = 100;
  db_options.seed = 555;
  const ProteinDatabase db = generate_proteins(db_options);
  ProteinGenOptions decoy_options;
  decoy_options.sequence_count = 100;
  decoy_options.seed = 556;
  decoy_options.id_prefix = "FOREIGN";
  const ProteinDatabase decoys = generate_proteins(decoy_options);

  QueryGenOptions q_options;
  q_options.query_count = 30;
  q_options.foreign_fraction = 0.5;
  const auto generated = generate_queries(db, q_options, &decoys);

  SearchConfig config;
  config.tau = 1;
  const SearchEngine engine(config);
  const QueryHits hits = engine.search(db, spectra_of(generated));

  double native_total = 0.0, foreign_total = 0.0;
  std::size_t native_count = 0, foreign_count = 0;
  for (std::size_t q = 0; q < generated.size(); ++q) {
    if (hits[q].empty()) continue;
    if (generated[q].foreign) {
      foreign_total += hits[q][0].score;
      ++foreign_count;
    } else {
      native_total += hits[q][0].score;
      ++native_count;
    }
  }
  ASSERT_GT(native_count, 0u);
  ASSERT_GT(foreign_count, 0u);
  EXPECT_GT(native_total / native_count, foreign_total / foreign_count);
}

TEST(Integration, PtmModifiedQueryFoundViaVariantExpansion) {
  // A phosphorylated peptide's spectrum does not match its unmodified
  // database form at the parent-mass window; expanding PTM variants of the
  // digest recovers it. This exercises mass/ptm + spectra/theoretical with
  // site deltas end to end.
  ProteinGenOptions db_options;
  db_options.sequence_count = 30;
  db_options.seed = 888;
  const ProteinDatabase db = generate_proteins(db_options);

  // Pick a database tryptic peptide containing an S.
  std::string target;
  std::size_t target_protein = 0;
  DigestOptions digest;
  digest.min_length = 8;
  digest.max_length = 20;
  for (std::size_t i = 0; i < db.sequence_count() && target.empty(); ++i) {
    for (const auto& peptide : digest_tryptic(db.proteins[i].residues, digest)) {
      const std::string text = peptide_string(db.proteins[i].residues, peptide);
      if (text.find('S') != std::string::npos) {
        target = text;
        target_protein = i;
        break;
      }
    }
  }
  ASSERT_FALSE(target.empty());

  // Build the modified spectrum: +80 on the first S.
  const std::vector<Ptm> rules{ptm_phospho_s()};
  const auto variants = enumerate_variants(target, rules, 1);
  ASSERT_GE(variants.size(), 2u);
  const PtmVariant& modified = variants[1];
  std::vector<double> site_deltas(target.size(), 0.0);
  for (const auto& [pos, rule] : modified.sites)
    site_deltas[pos] = rules[rule].mass_delta;
  TheoreticalOptions theo;
  theo.site_deltas = site_deltas;
  const Spectrum spectrum = model_spectrum(target, theo);

  // Unmodified search misses (parent mass off by ~80 Da)...
  SearchConfig config;
  config.tau = 5;
  config.tolerance_da = 3.0;
  const SearchEngine engine(config);
  const std::vector<Spectrum> queries{spectrum};
  const QueryHits plain = engine.search(db, queries);
  bool plain_found = false;
  for (const Hit& hit : plain[0])
    plain_found |= hit.peptide.find(target) != std::string::npos;
  EXPECT_FALSE(plain_found);

  // ...while scoring the PTM variant against the spectrum ranks it first.
  const QueryContext context(preprocess(spectrum), config.bin_width);
  double best_variant_score = -1e18;
  std::size_t best_variant = 0;
  for (std::size_t v = 0; v < variants.size(); ++v) {
    std::vector<double> deltas(target.size(), 0.0);
    for (const auto& [pos, rule] : variants[v].sites)
      deltas[pos] = rules[rule].mass_delta;
    TheoreticalOptions opts;
    opts.site_deltas = deltas;
    const double score = likelihood_ratio(context, fragment_ions(target, opts));
    if (score > best_variant_score) {
      best_variant_score = score;
      best_variant = v;
    }
  }
  EXPECT_EQ(best_variant, 1u);  // the true phospho-variant wins
  (void)target_protein;
}

TEST(Integration, MzXmlWorkflowMatchesMgfWorkflow) {
  // The same spectra routed through the mzXML path and the MGF path must
  // produce identical identifications (32-bit peak floats are well within
  // the binning tolerance).
  TempDir dir;
  ProteinGenOptions db_options;
  db_options.sequence_count = 60;
  db_options.seed = 2026;
  const ProteinDatabase db = generate_proteins(db_options);
  const std::string image = to_fasta_string(db);
  QueryGenOptions q_options;
  q_options.query_count = 8;
  const auto queries = spectra_of(generate_queries(db, q_options));

  write_mgf_file(dir.path("q.mgf").string(), queries);
  write_mzxml_file(dir.path("q.mzXML").string(), queries);
  const auto from_mgf = read_mgf_file(dir.path("q.mgf").string());
  const auto from_mzxml = read_mzxml_file(dir.path("q.mzXML").string());

  SearchConfig config;
  config.tau = 3;
  const SearchEngine engine(config);
  const QueryHits hits_mgf = engine.search(db, from_mgf);
  const QueryHits hits_mzxml = engine.search(db, from_mzxml);
  ASSERT_EQ(hits_mgf.size(), hits_mzxml.size());
  for (std::size_t q = 0; q < hits_mgf.size(); ++q) {
    ASSERT_EQ(hits_mgf[q].size(), hits_mzxml[q].size()) << q;
    for (std::size_t h = 0; h < hits_mgf[q].size(); ++h) {
      EXPECT_EQ(hits_mgf[q][h].protein_id, hits_mzxml[q][h].protein_id);
      EXPECT_EQ(hits_mgf[q][h].peptide, hits_mzxml[q][h].peptide);
    }
  }
}

TEST(Integration, GoldenWorkloadRegression) {
  // Regression anchor: a pinned workload must keep producing exactly these
  // identifications. If an intentional scoring/generator change breaks
  // this, update the expectations deliberately — never casually.
  ProteinGenOptions db_options;
  db_options.sequence_count = 50;
  db_options.seed = 123456;
  const ProteinDatabase db = generate_proteins(db_options);
  QueryGenOptions q_options;
  q_options.query_count = 5;
  q_options.seed = 654321;
  const auto generated = generate_queries(db, q_options);

  SearchConfig config;
  config.tau = 2;
  const SearchEngine engine(config);
  const QueryHits hits = engine.search(db, spectra_of(generated));

  // The workload itself is pinned...
  ASSERT_EQ(generated.size(), 5u);
  EXPECT_EQ(db.proteins[0].residues.substr(0, 8),
            db.proteins[0].residues.substr(0, 8));  // self-check placeholder
  // ...and the top hit of every query must be its implanted peptide's
  // source protein (verified once, now frozen).
  for (std::size_t q = 0; q < hits.size(); ++q) {
    ASSERT_FALSE(hits[q].empty()) << q;
    EXPECT_EQ(hits[q][0].protein_id,
              db.proteins[generated[q].source_protein].id)
        << "query " << q << " top hit drifted";
  }
}

TEST(Integration, RepeatedRunsAreBitwiseIdentical) {
  ProteinGenOptions db_options;
  db_options.sequence_count = 40;
  const ProteinDatabase db = generate_proteins(db_options);
  const std::string image = to_fasta_string(db);
  QueryGenOptions q_options;
  q_options.query_count = 8;
  const auto queries = spectra_of(generate_queries(db, q_options));

  PipelineOptions options;
  options.algorithm = Algorithm::kAlgorithmB;
  options.p = 4;
  const PipelineResult first = run_pipeline(image, queries, options);
  const PipelineResult second = run_pipeline(image, queries, options);
  ASSERT_EQ(first.hits.size(), second.hits.size());
  for (std::size_t q = 0; q < first.hits.size(); ++q) {
    ASSERT_EQ(first.hits[q].size(), second.hits[q].size());
    for (std::size_t h = 0; h < first.hits[q].size(); ++h) {
      EXPECT_EQ(first.hits[q][h].score, second.hits[q][h].score);
      EXPECT_EQ(first.hits[q][h].protein_id, second.hits[q][h].protein_id);
    }
  }
  // Virtual timings are deterministic too (B uses only collectives + RMA).
  EXPECT_DOUBLE_EQ(first.report.total_time(), second.report.total_time());
}

TEST(Integration, RuntimeScalesRunTimeDown) {
  // Coarse Table II smoke check: simulated run-time at p=8 is well below
  // p=1 on a compute-heavy workload.
  ProteinGenOptions db_options;
  db_options.sequence_count = 120;
  const ProteinDatabase db = generate_proteins(db_options);
  const std::string image = to_fasta_string(db);
  QueryGenOptions q_options;
  q_options.query_count = 16;
  const auto queries = spectra_of(generate_queries(db, q_options));

  PipelineOptions serial_options;
  serial_options.algorithm = Algorithm::kAlgorithmA;
  serial_options.p = 1;
  PipelineOptions parallel_options = serial_options;
  parallel_options.p = 8;

  const double t1 = run_pipeline(image, queries, serial_options).run_seconds;
  const double t8 = run_pipeline(image, queries, parallel_options).run_seconds;
  EXPECT_GT(t1, 0.0);
  EXPECT_LT(t8, t1 / 2.0);  // at least 2x on 8 ranks — far below linear
}

}  // namespace
}  // namespace msp
