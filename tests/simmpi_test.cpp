// Tests for the simulated distributed-memory runtime: collectives, RMA,
// p2p, virtual-time semantics (masking!), memory accounting, and failure
// propagation.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <numeric>
#include <sstream>

#include "simmpi/comm.hpp"
#include "simmpi/runtime.hpp"
#include "simmpi/trace_validate.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace msp::sim {
namespace {

NetworkModel test_network() {
  NetworkModel network;
  network.latency_s = 1e-4;
  network.seconds_per_byte = 1e-8;
  network.shm_latency_s = 1e-6;
  network.shm_seconds_per_byte = 1e-9;
  network.ranks_per_node = 4;
  return network;
}

TEST(Runtime, RunsEveryRankOnce) {
  Runtime runtime(8, test_network());
  std::atomic<int> visits{0};
  std::atomic<int> rank_mask{0};
  runtime.run([&](Comm& comm) {
    visits.fetch_add(1);
    rank_mask.fetch_or(1 << comm.rank());
    EXPECT_EQ(comm.size(), 8);
  });
  EXPECT_EQ(visits.load(), 8);
  EXPECT_EQ(rank_mask.load(), 0xFF);
}

TEST(Runtime, SingleRankRunsInline) {
  Runtime runtime(1);
  int rank_seen = -1;
  runtime.run([&](Comm& comm) { rank_seen = comm.rank(); });
  EXPECT_EQ(rank_seen, 0);
}

TEST(Runtime, RejectsBadRankCounts) {
  EXPECT_THROW(Runtime(0), InvalidArgument);
  EXPECT_THROW(Runtime(5000), InvalidArgument);
}

TEST(Runtime, ExceptionInOneRankPropagates) {
  Runtime runtime(4, test_network());
  EXPECT_THROW(runtime.run([&](Comm& comm) {
    comm.barrier();
    if (comm.rank() == 2) throw InvalidArgument("rank 2 exploded");
    comm.barrier();  // others park here; abort must release them
    comm.barrier();
  }),
               InvalidArgument);
}

TEST(Runtime, ReportCollectsPerRankStats) {
  Runtime runtime(3, test_network());
  const RunReport report = runtime.run([&](Comm& comm) {
    comm.clock().charge_compute(0.5 * (comm.rank() + 1));
    comm.bump("work", static_cast<std::uint64_t>(comm.rank()));
  });
  ASSERT_EQ(report.ranks.size(), 3u);
  EXPECT_DOUBLE_EQ(report.ranks[1].compute_seconds, 1.0);
  EXPECT_EQ(report.sum_counter("work"), 3u);
  EXPECT_DOUBLE_EQ(report.max_compute(), 1.5);
  EXPECT_DOUBLE_EQ(report.total_time(), 1.5);
}

// ---------- collectives ----------

TEST(Collectives, AllreduceValues) {
  Runtime runtime(6, test_network());
  runtime.run([&](Comm& comm) {
    const double rank = static_cast<double>(comm.rank());
    EXPECT_DOUBLE_EQ(comm.allreduce_max(rank), 5.0);
    EXPECT_DOUBLE_EQ(comm.allreduce_min(rank), 0.0);
    EXPECT_EQ(comm.allreduce_sum(static_cast<std::uint64_t>(comm.rank() + 1)),
              21u);
  });
}

TEST(Collectives, AllreduceVectorSums) {
  Runtime runtime(4, test_network());
  runtime.run([&](Comm& comm) {
    std::vector<std::uint64_t> counts(5, 0);
    counts[static_cast<std::size_t>(comm.rank())] = 10;
    counts[4] = 1;
    comm.allreduce_sum(counts);
    EXPECT_EQ(counts, (std::vector<std::uint64_t>{10, 10, 10, 10, 4}));
  });
}

TEST(Collectives, AllgatherRankOrder) {
  Runtime runtime(5, test_network());
  runtime.run([&](Comm& comm) {
    const auto values = comm.allgather(comm.rank() * 7);
    ASSERT_EQ(values.size(), 5u);
    for (int r = 0; r < 5; ++r) EXPECT_EQ(values[static_cast<std::size_t>(r)], r * 7);
  });
}

TEST(Collectives, BarrierSynchronizesClocks) {
  Runtime runtime(4, test_network());
  const RunReport report = runtime.run([&](Comm& comm) {
    comm.clock().charge_compute(comm.rank() == 3 ? 2.0 : 0.1);
    comm.barrier();
    // All clocks advanced to at least the slowest rank's entry time.
    EXPECT_GE(comm.clock().now(), 2.0);
  });
  // Fast ranks waited; the wait is visible as sync time, not compute.
  EXPECT_GT(report.ranks[0].sync_wait_seconds, 1.8);
  EXPECT_LT(report.ranks[3].sync_wait_seconds, 1e-6);
}

TEST(Collectives, AlltoallvDeliversPersonalizedPayloads) {
  Runtime runtime(4, test_network());
  runtime.run([&](Comm& comm) {
    std::vector<std::vector<char>> send(4);
    for (int destination = 0; destination < 4; ++destination) {
      // payload = [source, destination] so both sides can be checked.
      send[static_cast<std::size_t>(destination)] = {
          static_cast<char>(comm.rank()), static_cast<char>(destination)};
    }
    const auto received = comm.alltoallv(send);
    ASSERT_EQ(received.size(), 4u);
    for (int source = 0; source < 4; ++source) {
      ASSERT_EQ(received[static_cast<std::size_t>(source)].size(), 2u);
      EXPECT_EQ(received[static_cast<std::size_t>(source)][0],
                static_cast<char>(source));
      EXPECT_EQ(received[static_cast<std::size_t>(source)][1],
                static_cast<char>(comm.rank()));
    }
  });
}

TEST(Collectives, AlltoallvHandlesEmptyPayloads) {
  Runtime runtime(3, test_network());
  runtime.run([&](Comm& comm) {
    std::vector<std::vector<char>> send(3);
    if (comm.rank() == 0) send[1] = {'x'};
    const auto received = comm.alltoallv(send);
    if (comm.rank() == 1)
      EXPECT_EQ(received[0], (std::vector<char>{'x'}));
    else
      EXPECT_TRUE(received[0].empty());
  });
}

// ---------- RMA windows ----------

TEST(Rma, GetCopiesRemoteShard) {
  Runtime runtime(4, test_network());
  runtime.run([&](Comm& comm) {
    std::vector<char> local(16, static_cast<char>('A' + comm.rank()));
    Window window(comm, local);
    const int target = (comm.rank() + 1) % 4;
    std::vector<char> fetched;
    RmaRequest request = window.rget(target, fetched, 1);
    window.wait(request);
    ASSERT_EQ(fetched.size(), 16u);
    for (char c : fetched) EXPECT_EQ(c, static_cast<char>('A' + target));
    EXPECT_EQ(window.shard_size(target), 16u);
    window.fence();
  });
}

TEST(Rma, ShardSizesMayDiffer) {
  Runtime runtime(3, test_network());
  runtime.run([&](Comm& comm) {
    std::vector<char> local(static_cast<std::size_t>(comm.rank() + 1) * 8, 'z');
    Window window(comm, local);
    for (int r = 0; r < 3; ++r)
      EXPECT_EQ(window.shard_size(r), static_cast<std::size_t>(r + 1) * 8);
    window.fence();
  });
}

// The masking semantics the paper depends on: a transfer overlapped with
// enough computation costs (almost) nothing; without computation the full
// transfer time is residual.
TEST(Rma, MaskingHidesTransferBehindCompute) {
  NetworkModel network = test_network();
  network.ranks_per_node = 1;  // force cross-node costs
  Runtime runtime(2, network);
  const std::size_t bytes = 10'000'000;  // 0.1 s at 1e-8 s/B
  const RunReport report = runtime.run([&](Comm& comm) {
    std::vector<char> local(bytes, 'd');
    Window window(comm, local);
    std::vector<char> fetched;
    RmaRequest request = window.rget(1 - comm.rank(), fetched, 1);
    if (comm.rank() == 0) comm.clock().charge_compute(1.0);  // rank 0 masks
    window.wait(request);
    window.fence();  // window close is collective (MPI_Win_free semantics)
  });
  // Rank 0: compute (1 s) exceeded the 0.1 s transfer → only the collective
  // window bookkeeping (µs-scale latency) remains unmasked.
  EXPECT_LT(report.ranks[0].residual_comm_seconds, 1e-3);
  // Rank 1: no compute → the whole transfer is residual.
  EXPECT_NEAR(report.ranks[1].residual_comm_seconds, 0.1, 0.01);
  // Both issued the same modeled communication volume.
  EXPECT_NEAR(report.ranks[0].comm_issued_seconds,
              report.ranks[1].comm_issued_seconds, 1e-9);
}

TEST(Rma, SameNodeTransfersAreCheaper) {
  NetworkModel network = test_network();
  network.node_count = 4;  // cyclic placement: ranks 0 and 4 share node 0
  Runtime runtime(8, network);
  ASSERT_TRUE(network.same_node(0, 4));
  ASSERT_FALSE(network.same_node(1, 2));
  const RunReport report = runtime.run([&](Comm& comm) {
    std::vector<char> local(1'000'000, 'b');
    Window window(comm, local);
    std::vector<char> fetched;
    // Rank 0 fetches from rank 4 (same node); rank 1 fetches from rank 2
    // (cross node). Everyone else just participates in the window.
    if (comm.rank() == 0) {
      RmaRequest request = window.rget(4, fetched, 1);
      window.wait(request);
    } else if (comm.rank() == 1) {
      RmaRequest request = window.rget(2, fetched, 1);
      window.wait(request);
    }
    window.fence();
  });
  EXPECT_LT(report.ranks[0].residual_comm_seconds,
            report.ranks[1].residual_comm_seconds);
}

TEST(Rma, PartialGetFetchesExactRange) {
  Runtime runtime(2, test_network());
  runtime.run([&](Comm& comm) {
    std::vector<char> local(26);
    for (int i = 0; i < 26; ++i)
      local[static_cast<std::size_t>(i)] = static_cast<char>('a' + i);
    Window window(comm, local);
    std::vector<char> fetched;
    RmaRequest request =
        window.rget_range(1 - comm.rank(), 3, 5, fetched, 1);
    window.wait(request);
    EXPECT_EQ(std::string(fetched.begin(), fetched.end()), "defgh");
    // Zero-length and full-range edges.
    RmaRequest empty = window.rget_range(1 - comm.rank(), 26, 0, fetched, 1);
    window.wait(empty);
    EXPECT_TRUE(fetched.empty());
    window.fence();
  });
}

TEST(Rma, PartialGetOutOfBoundsThrows) {
  Runtime runtime(2, test_network());
  EXPECT_THROW(runtime.run([&](Comm& comm) {
    std::vector<char> local(8, 'x');
    Window window(comm, local);
    std::vector<char> fetched;
    window.rget_range(comm.rank(), 4, 5, fetched, 1);  // 4+5 > 8
  }),
               InvalidArgument);
}

TEST(Rma, WaitTwiceIsAnError) {
  Runtime runtime(2, test_network());
  EXPECT_THROW(runtime.run([&](Comm& comm) {
    std::vector<char> local(4, 'a');
    Window window(comm, local);
    std::vector<char> fetched;
    // Self-get so the error path cannot race another rank's teardown.
    RmaRequest request = window.rget(comm.rank(), fetched, 1);
    window.wait(request);
    window.wait(request);
  }),
               InvalidArgument);
}

// The destination-buffer lifetime rule (see the Window doc block): between
// rget and wait the destination vector must stay untouched, and every
// request must be waited before fence. Each violation is detected eagerly.

TEST(Rma, RgetIntoPendingBufferIsAnError) {
  Runtime runtime(2, test_network());
  EXPECT_THROW(runtime.run([&](Comm& comm) {
    std::vector<char> local(8, 'a');
    Window window(comm, local);
    std::vector<char> fetched;
    // Self-get so the error path cannot race another rank's teardown.
    RmaRequest first = window.rget(comm.rank(), fetched, 1);
    RmaRequest second = window.rget(comm.rank(), fetched, 1);
    window.wait(first);
    window.wait(second);
  }),
               InvalidArgument);
}

TEST(Rma, SwappedDestinationDetectedAtWait) {
  Runtime runtime(2, test_network());
  EXPECT_THROW(runtime.run([&](Comm& comm) {
    std::vector<char> local(8, 'b');
    Window window(comm, local);
    std::vector<char> fetched;
    std::vector<char> other(3, 'z');
    RmaRequest request = window.rget(comm.rank(), fetched, 1);
    std::swap(fetched, other);  // the classic D_recv/D_comp footgun
    window.wait(request);
  }),
               InvalidArgument);
}

TEST(Rma, FenceWithPendingRequestIsAnError) {
  Runtime runtime(2, test_network());
  EXPECT_THROW(runtime.run([&](Comm& comm) {
    std::vector<char> local(8, 'c');
    Window window(comm, local);
    std::vector<char> fetched;
    RmaRequest request = window.rget(comm.rank(), fetched, 1);
    window.fence();  // request never waited: detected before the barrier
    window.wait(request);
  }),
               InvalidArgument);
}

// ---------- communicator splitting ----------

TEST(Split, RanksAndSizesPerColor) {
  Runtime runtime(6, test_network());
  runtime.run([&](Comm& world) {
    // Colors: {0,1,2} even/odd split.
    const int color = world.rank() % 2;
    const auto sub = world.split(color);
    EXPECT_EQ(sub->size(), 3);
    EXPECT_EQ(sub->rank(), world.rank() / 2);
    EXPECT_EQ(sub->global_rank(), world.rank());
    // Member mapping: sub rank r -> global rank 2r + color.
    for (int r = 0; r < 3; ++r)
      EXPECT_EQ(sub->global_rank_of(r), 2 * r + color);
  });
}

TEST(Split, CollectivesAreGroupLocal) {
  Runtime runtime(8, test_network());
  runtime.run([&](Comm& world) {
    const int color = world.rank() < 5 ? 0 : 1;  // uneven groups: 5 + 3
    const auto sub = world.split(color);
    EXPECT_EQ(sub->size(), color == 0 ? 5 : 3);
    const double group_max =
        sub->allreduce_max(static_cast<double>(world.rank()));
    EXPECT_DOUBLE_EQ(group_max, color == 0 ? 4.0 : 7.0);
    const auto gathered = sub->allgather(world.rank());
    ASSERT_EQ(gathered.size(), static_cast<std::size_t>(sub->size()));
    EXPECT_EQ(gathered[0], color == 0 ? 0 : 5);
  });
}

TEST(Split, WindowsScopeToSubgroup) {
  Runtime runtime(4, test_network());
  runtime.run([&](Comm& world) {
    const int color = world.rank() / 2;  // {0,1} and {2,3}
    const auto sub = world.split(color);
    std::vector<char> shard{static_cast<char>(world.rank())};
    Window window(*sub, shard);
    std::vector<char> fetched;
    RmaRequest request = window.rget(1 - sub->rank(), fetched, 1);
    window.wait(request);
    ASSERT_EQ(fetched.size(), 1u);
    // The partner within the sub-group, never a rank of the other group.
    EXPECT_EQ(fetched[0], static_cast<char>(world.rank() ^ 1));
    window.fence();
  });
}

TEST(Split, SharesClockAndCounters) {
  Runtime runtime(2, test_network());
  const RunReport report = runtime.run([&](Comm& world) {
    const auto sub = world.split(0);  // everyone same color
    sub->clock().charge_compute(0.25);
    sub->bump("shared_counter");
    world.bump("shared_counter");
  });
  EXPECT_EQ(report.sum_counter("shared_counter"), 4u);
  EXPECT_DOUBLE_EQ(report.ranks[0].compute_seconds, 0.25);
}

TEST(Split, NestedSplit) {
  Runtime runtime(8, test_network());
  runtime.run([&](Comm& world) {
    const auto half = world.split(world.rank() / 4);    // two groups of 4
    const auto quarter = half->split(half->rank() / 2); // four groups of 2
    EXPECT_EQ(quarter->size(), 2);
    const std::uint64_t pair_sum =
        quarter->allreduce_sum(static_cast<std::uint64_t>(world.rank()));
    // Pairs are {0,1},{2,3},{4,5},{6,7} → sums 1, 5, 9, 13.
    EXPECT_EQ(pair_sum, static_cast<std::uint64_t>(
                            (world.rank() / 2) * 4 + 1));
  });
}

TEST(Split, SingletonGroups) {
  Runtime runtime(3, test_network());
  runtime.run([&](Comm& world) {
    const auto alone = world.split(world.rank());  // p singleton groups
    EXPECT_EQ(alone->size(), 1);
    EXPECT_EQ(alone->rank(), 0);
    EXPECT_DOUBLE_EQ(alone->allreduce_max(3.5), 3.5);
  });
}

TEST(Split, AbortInsideSubgroupReleasesEveryone) {
  // A rank failing while others are parked in a *sub*-communicator barrier
  // must still release them (the abort fans out to every live group).
  Runtime runtime(6, test_network());
  EXPECT_THROW(runtime.run([&](Comm& world) {
    const auto sub = world.split(world.rank() % 2);
    if (world.rank() == 3) throw InvalidArgument("boom in a subgroup");
    sub->barrier();  // the other ranks park here
    sub->barrier();
  }),
               InvalidArgument);
}

TEST(Stress, RandomCollectiveSequencesStayConsistent) {
  // Property: any same-on-all-ranks sequence of collectives completes, all
  // clocks agree afterwards, and reductions return the analytic values.
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    Runtime runtime(5, test_network());
    const RunReport report = runtime.run([&](Comm& comm) {
      msp::Xoshiro256 rng(seed);  // same stream on every rank
      for (int op = 0; op < 30; ++op) {
        comm.clock().charge_compute(1e-4 * (comm.rank() + 1));
        switch (rng.bounded(4)) {
          case 0:
            comm.barrier();
            break;
          case 1:
            EXPECT_DOUBLE_EQ(
                comm.allreduce_max(static_cast<double>(comm.rank())), 4.0);
            break;
          case 2:
            EXPECT_EQ(comm.allreduce_sum(std::uint64_t{1}), 5u);
            break;
          case 3: {
            const auto all = comm.allgather(comm.rank());
            EXPECT_EQ(all.size(), 5u);
            break;
          }
        }
      }
      comm.barrier();
    });
    // Clocks converge at the final barrier.
    for (const auto& rank : report.ranks)
      EXPECT_NEAR(rank.total_time, report.total_time(), 1e-12);
  }
}

TEST(Stress, ClockIsMonotoneThroughMixedOperations) {
  Runtime runtime(4, test_network());
  runtime.run([&](Comm& comm) {
    double last = comm.clock().now();
    auto check = [&] {
      EXPECT_GE(comm.clock().now() + 1e-15, last);
      last = comm.clock().now();
    };
    std::vector<char> shard(1024, 'q');
    Window window(comm, shard);
    check();
    std::vector<char> buffer;
    for (int i = 0; i < 10; ++i) {
      RmaRequest request =
          window.rget((comm.rank() + 1) % 4, buffer, 1);
      check();
      comm.clock().charge_compute(1e-5);
      check();
      window.wait(request);
      check();
      window.fence();
      check();
    }
  });
}

TEST(Bcast, RootPayloadReachesEveryone) {
  Runtime runtime(5, test_network());
  runtime.run([&](Comm& world) {
    const std::vector<char> payload =
        world.rank() == 2 ? std::vector<char>{'a', 'b', 'c'}
                          : std::vector<char>{};
    const std::vector<char> received = world.bcast(2, payload);
    EXPECT_EQ(received, (std::vector<char>{'a', 'b', 'c'}));
  });
}

// ---------- point-to-point ----------

TEST(P2p, SendRecvRoundTrip) {
  Runtime runtime(2, test_network());
  runtime.run([&](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 42, {'h', 'i'});
      const Comm::Message reply = comm.recv(1, 43);
      EXPECT_EQ(reply.payload, (std::vector<char>{'o', 'k'}));
    } else {
      const Comm::Message message = comm.recv(Comm::kAnySource, 42);
      EXPECT_EQ(message.source, 0);
      EXPECT_EQ(message.payload, (std::vector<char>{'h', 'i'}));
      comm.send(0, 43, {'o', 'k'});
    }
  });
}

TEST(P2p, TagAndSourceFiltering) {
  Runtime runtime(3, test_network());
  runtime.run([&](Comm& comm) {
    if (comm.rank() == 1) comm.send(0, 7, {'a'});
    if (comm.rank() == 2) comm.send(0, 9, {'b'});
    if (comm.rank() == 0) {
      // Receive tag 9 first even if tag 7 arrived earlier.
      const Comm::Message nine = comm.recv(Comm::kAnySource, 9);
      EXPECT_EQ(nine.source, 2);
      const Comm::Message seven = comm.recv(1, 7);
      EXPECT_EQ(seven.payload, (std::vector<char>{'a'}));
    }
  });
}

TEST(P2p, RecvAdvancesClockByTransferCost) {
  NetworkModel network = test_network();
  network.ranks_per_node = 1;
  Runtime runtime(2, network);
  const RunReport report = runtime.run([&](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 1, std::vector<char>(1'000'000, 'x'));  // 0.01 s wire
    } else {
      comm.recv(0, 1);
      EXPECT_GT(comm.clock().now(), 0.009);
    }
  });
  EXPECT_GT(report.ranks[1].residual_comm_seconds, 0.009);
}

// ---------- memory accounting ----------

TEST(Memory, TracksCurrentAndPeak) {
  Runtime runtime(1);
  const RunReport report = runtime.run([&](Comm& comm) {
    comm.charge_alloc(100);
    comm.charge_alloc(50);
    comm.release_alloc(120);
    comm.charge_alloc(10);
    EXPECT_EQ(comm.current_memory(), 40u);
    EXPECT_EQ(comm.peak_memory(), 150u);
  });
  EXPECT_EQ(report.ranks[0].peak_memory_bytes, 150u);
}

TEST(Memory, BudgetEnforced) {
  Runtime runtime(2, test_network());
  EXPECT_THROW(runtime.run([&](Comm& comm) {
    comm.set_memory_budget(100);
    comm.charge_alloc(60);
    comm.barrier();
    if (comm.rank() == 1) comm.charge_alloc(60);  // 120 > 100
    comm.barrier();
  }),
               OutOfMemoryBudget);
}

TEST(Memory, OverReleaseIsAnError) {
  Runtime runtime(1);
  EXPECT_THROW(runtime.run([&](Comm& comm) { comm.release_alloc(1); }),
               InvalidArgument);
}

// ---------- run report ----------

TEST(RunReport, CsvHasOneRowPerRankAndUnionOfCounters) {
  Runtime runtime(3, test_network());
  const RunReport report = runtime.run([&](Comm& comm) {
    comm.clock().charge_compute(0.1 * (comm.rank() + 1));
    if (comm.rank() == 0) comm.bump("alpha", 5);
    if (comm.rank() == 2) comm.bump("beta", 7);
  });
  const std::string csv = report.to_csv();
  // Header + 3 rows.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 4);
  EXPECT_NE(csv.find("alpha"), std::string::npos);
  EXPECT_NE(csv.find("beta"), std::string::npos);
  // Rank 1 has neither counter → zeros, but the columns exist.
  std::istringstream lines(csv);
  std::string header, row0, row1;
  std::getline(lines, header);
  std::getline(lines, row0);
  std::getline(lines, row1);
  EXPECT_EQ(std::count(header.begin(), header.end(), ','),
            std::count(row1.begin(), row1.end(), ','));
}

// ---------- virtual clock ----------

TEST(VClock, BucketsAccumulateIndependently) {
  VirtualClock clock;
  clock.charge_compute(1.0);
  clock.charge_io(0.5);
  clock.note_comm_issued(0.3);
  clock.wait_until(2.0);   // 0.5 residual
  clock.sync_until(2.25);  // 0.25 sync
  EXPECT_DOUBLE_EQ(clock.now(), 2.25);
  EXPECT_DOUBLE_EQ(clock.compute_seconds(), 1.0);
  EXPECT_DOUBLE_EQ(clock.io_seconds(), 0.5);
  EXPECT_DOUBLE_EQ(clock.comm_issued_seconds(), 0.3);
  EXPECT_DOUBLE_EQ(clock.residual_comm_seconds(), 0.5);
  EXPECT_DOUBLE_EQ(clock.sync_wait_seconds(), 0.25);
  clock.wait_until(1.0);  // the past: no-op
  EXPECT_DOUBLE_EQ(clock.now(), 2.25);
}

// ---------- report-layer bugfixes ----------

TEST(RunReport, MeanResidualCountsZeroComputeRanks) {
  RunReport report;
  report.p = 2;
  RankStats worker;
  worker.rank = 0;
  worker.compute_seconds = 1.0;
  worker.residual_comm_seconds = 0.5;
  RankStats idle;  // e.g. crashed before its first charge
  idle.rank = 1;
  idle.sync_wait_seconds = 0.5;
  report.ranks = {worker, idle};
  // Aggregate ratio: (0.5 + 0.5) / 1.0. The old per-rank mean silently
  // dropped the zero-compute rank and reported 0.5.
  EXPECT_DOUBLE_EQ(report.mean_residual_over_compute(), 1.0);

  RankStats nobody_computed;
  nobody_computed.residual_comm_seconds = 3.0;
  report.ranks = {nobody_computed};
  EXPECT_DOUBLE_EQ(report.mean_residual_over_compute(), 0.0);
}

TEST(RunReport, CsvFaultColumnSchemaIsCallerControlled) {
  Runtime runtime(2, test_network());
  const RunReport clean = runtime.run([&](Comm& comm) {
    comm.clock().charge_compute(0.1);
  });
  // kAuto on a clean run: no fault columns (zero-cost contract)...
  EXPECT_EQ(clean.to_csv().find("retries"), std::string::npos);
  // ...but a parser comparing against a faulty run can force them in.
  const std::string forced = clean.to_csv(CsvFaultColumns::kInclude);
  EXPECT_NE(forced.find(",retries,recovery_s,crashed"), std::string::npos);

  FaultModel faults;
  faults.fail_transfers(1, {0});
  Runtime faulty_runtime(2, test_network(), {}, faults);
  const RunReport faulty = faulty_runtime.run([&](Comm& comm) {
    std::vector<char> shard(8, 'x');
    Window window(comm, shard);
    std::vector<char> dest;
    RmaRequest req = window.rget((comm.rank() + 1) % 2, dest, 1);
    window.wait(req);
    window.fence();
  });
  EXPECT_TRUE(faulty.has_fault_activity());
  EXPECT_NE(faulty.to_csv().find("retries"), std::string::npos);
  EXPECT_EQ(faulty.to_csv(CsvFaultColumns::kOmit).find("retries"),
            std::string::npos);
  // Forced schemas align: same column count on clean and faulty headers.
  auto header_commas = [](const std::string& csv) {
    return std::count(csv.begin(), csv.end(), ',') /
           static_cast<long>(std::count(csv.begin(), csv.end(), '\n'));
  };
  const std::string faulty_forced = faulty.to_csv(CsvFaultColumns::kInclude);
  EXPECT_EQ(forced.substr(0, forced.find('\n')),
            faulty_forced.substr(0, faulty_forced.find('\n')));
  (void)header_commas;
}

TEST(RunReport, CsvEscapesHostileCounterNames) {
  Runtime runtime(1, test_network());
  const RunReport report = runtime.run([&](Comm& comm) {
    comm.bump("evil,name", 3);
    comm.bump("with\"quote", 4);
  });
  const std::string csv = report.to_csv();
  EXPECT_NE(csv.find("\"evil,name\""), std::string::npos);
  EXPECT_NE(csv.find("\"with\"\"quote\""), std::string::npos);
  // Every row still has the same number of columns as the header.
  std::istringstream lines(csv);
  std::string header, row;
  std::getline(lines, header);
  std::getline(lines, row);
  // The quoted comma must not add a column: header has exactly one more
  // comma (inside quotes) than the row's plain integer fields.
  EXPECT_EQ(std::count(header.begin(), header.end(), ','),
            std::count(row.begin(), row.end(), ',') + 1);
}

TEST(RunReport, CsvEscapeHelper) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
}

// ---------- span tracing ----------

namespace {

/// The traced workload used by the determinism tests: masked ring rotation
/// with markers, compute, and a final reduction.
void traced_ring_job(Comm& comm) {
  const int p = comm.size();
  std::vector<char> shard(4096, static_cast<char>(comm.rank()));
  Window window(comm, shard);
  std::vector<char> current = shard;
  std::vector<char> incoming;
  for (int s = 0; s < p; ++s) {
    comm.trace_mark("step " + std::to_string(s));
    RmaRequest prefetch;
    if (s + 1 < p)
      prefetch = window.rget((comm.rank() + s + 1) % p, incoming, 1);
    comm.clock().charge_compute(1e-3);
    if (s + 1 < p) {
      window.wait(prefetch);
      std::swap(current, incoming);
    }
    window.fence();
  }
  comm.allreduce_max(static_cast<double>(comm.rank()));
}

}  // namespace

TEST(Trace, DisabledRunRecordsNoSpans) {
  Runtime runtime(4, test_network());
  const RunReport report =
      runtime.run([&](Comm& comm) { traced_ring_job(comm); });
  for (const RankStats& r : report.ranks) EXPECT_TRUE(r.spans.empty());
  // The exports stay well-formed (metadata-only trace, header-only CSV).
  EXPECT_EQ(validate_chrome_trace(report.to_chrome_trace()), "");
}

TEST(Trace, EnabledRunEmitsValidatedSpans) {
  Runtime runtime(4, test_network());
  runtime.enable_tracing();
  const RunReport report =
      runtime.run([&](Comm& comm) { traced_ring_job(comm); });
  bool saw_compute = false, saw_marker = false, saw_issue = false;
  for (const RankStats& r : report.ranks) {
    ASSERT_FALSE(r.spans.empty());
    double clock_cursor = 0.0;
    for (const Span& span : r.spans) {
      EXPECT_LE(span.begin, span.end);
      if (span.kind == SpanKind::kCompute) saw_compute = true;
      if (span.kind == SpanKind::kMarker) saw_marker = true;
      if (span.kind == SpanKind::kRgetIssue) saw_issue = true;
      if (span_lane(span.kind) == 0) {
        // Clock lane: flat, non-overlapping, monotone.
        EXPECT_GE(span.begin, clock_cursor);
        clock_cursor = span.end;
      }
    }
  }
  EXPECT_TRUE(saw_compute);
  EXPECT_TRUE(saw_marker);
  EXPECT_TRUE(saw_issue);
  EXPECT_EQ(validate_chrome_trace(report.to_chrome_trace()), "");
}

TEST(Trace, ByteIdenticalAcrossRepeatedRuns) {
  auto run_once = [&]() {
    Runtime runtime(6, test_network());
    runtime.enable_tracing();
    return runtime.run([&](Comm& comm) { traced_ring_job(comm); });
  };
  const RunReport first = run_once();
  const RunReport second = run_once();
  EXPECT_EQ(first.to_chrome_trace(), second.to_chrome_trace());
  EXPECT_EQ(first.to_iteration_csv(), second.to_iteration_csv());
}

TEST(Trace, MarkersSegmentTheIterationCsv) {
  Runtime runtime(2, test_network());
  runtime.enable_tracing();
  const RunReport report =
      runtime.run([&](Comm& comm) { traced_ring_job(comm); });
  const std::string csv = report.to_iteration_csv();
  EXPECT_NE(csv.find("step 0"), std::string::npos);
  EXPECT_NE(csv.find("step 1"), std::string::npos);
  // Header + (p ring steps + possibly an (init) segment) per rank.
  EXPECT_GE(std::count(csv.begin(), csv.end(), '\n'), 1 + 2 * 2);
}

TEST(Trace, ValidatorRejectsMalformedInput) {
  EXPECT_NE(validate_chrome_trace("not json at all"), "");
  EXPECT_NE(validate_chrome_trace("[1,2,3]"), "");
  EXPECT_NE(validate_chrome_trace("{\"noTraceEvents\":[]}"), "");
  // Missing pid.
  EXPECT_NE(validate_chrome_trace(
                R"({"traceEvents":[{"ph":"X","tid":0,"ts":0,"dur":1,"name":"x"}]})"),
            "");
  // Non-monotone timestamps on one lane.
  EXPECT_NE(validate_chrome_trace(
                R"({"traceEvents":[)"
                R"({"ph":"X","pid":0,"tid":0,"ts":10,"dur":1,"name":"a"},)"
                R"({"ph":"X","pid":0,"tid":0,"ts":5,"dur":1,"name":"b"}]})"),
            "");
  // Overlapping clock-lane spans.
  EXPECT_NE(validate_chrome_trace(
                R"({"traceEvents":[)"
                R"({"ph":"X","pid":0,"tid":0,"ts":0,"dur":10,"name":"a"},)"
                R"({"ph":"X","pid":0,"tid":0,"ts":5,"dur":10,"name":"b"}]})"),
            "");
  // The same overlap on the transfers lane is legal (that IS masking).
  EXPECT_EQ(validate_chrome_trace(
                R"({"traceEvents":[)"
                R"({"ph":"X","pid":0,"tid":1,"ts":0,"dur":10,"name":"a"},)"
                R"({"ph":"X","pid":0,"tid":1,"ts":5,"dur":10,"name":"b"}]})"),
            "");
}

// ---------- masking metric ----------

TEST(Masking, FullyOverlappedTransferScoresEfficiencyOne) {
  Runtime runtime(2, test_network());
  const RunReport report = runtime.run([&](Comm& comm) {
    std::vector<char> shard(64 * 1024, static_cast<char>(comm.rank()));
    Window window(comm, shard);
    std::vector<char> dest;
    RmaRequest request = window.rget((comm.rank() + 1) % 2, dest, 1);
    comm.clock().charge_compute(10.0);  // far longer than the transfer
    window.wait(request);
    window.fence();
  });
  EXPECT_GT(report.masking_efficiency(), 0.999);
  for (const RankStats& r : report.ranks) {
    EXPECT_GT(r.rget_issued_seconds, 0.0);
    EXPECT_NEAR(r.rget_overlapped_seconds, r.rget_issued_seconds, 1e-12);
    EXPECT_DOUBLE_EQ(r.masking_efficiency(), 1.0);
  }
}

TEST(Masking, ImmediateWaitScoresEfficiencyZero) {
  Runtime runtime(2, test_network());
  const RunReport report = runtime.run([&](Comm& comm) {
    std::vector<char> shard(64 * 1024, static_cast<char>(comm.rank()));
    Window window(comm, shard);
    std::vector<char> dest;
    RmaRequest request = window.rget((comm.rank() + 1) % 2, dest, 1);
    window.wait(request);  // nothing overlapped
    window.fence();
  });
  EXPECT_DOUBLE_EQ(report.masking_efficiency(), 0.0);
  EXPECT_DOUBLE_EQ(report.masking_saving_estimate(), 0.0);
}

TEST(Masking, SavingEstimateMatchesUnmaskedRerun) {
  // Masked vs unmasked versions of the same ring: the overlap-derived
  // estimate from the masked run should land within 2 points of the
  // run-time-derived saving (the bench_masking acceptance bar).
  auto ring = [](Comm& comm, bool mask) {
    const int p = comm.size();
    std::vector<char> shard(256 * 1024, static_cast<char>(comm.rank()));
    Window window(comm, shard);
    std::vector<char> current = shard;
    std::vector<char> incoming;
    for (int s = 0; s < p; ++s) {
      RmaRequest prefetch;
      if (mask && s + 1 < p)
        prefetch = window.rget((comm.rank() + s + 1) % p, incoming, 1);
      comm.clock().charge_compute(2e-3);
      if (mask && s + 1 < p) {
        window.wait(prefetch);
        std::swap(current, incoming);
      } else if (!mask && s + 1 < p) {
        RmaRequest fetch = window.rget((comm.rank() + s + 1) % p, incoming, 1);
        window.wait(fetch);
        std::swap(current, incoming);
      }
      window.fence();
    }
  };
  Runtime runtime(8, test_network());
  const RunReport masked =
      runtime.run([&](Comm& comm) { ring(comm, true); });
  const RunReport unmasked =
      runtime.run([&](Comm& comm) { ring(comm, false); });
  const double runtime_saving =
      (unmasked.total_time() - masked.total_time()) / unmasked.total_time();
  const double overlap_saving = masked.masking_saving_estimate();
  EXPECT_GT(runtime_saving, 0.0);
  EXPECT_NEAR(overlap_saving, runtime_saving, 0.02);
}

// Parameterized: the runtime behaves identically for many rank counts.
class RuntimeScale : public ::testing::TestWithParam<int> {};

TEST_P(RuntimeScale, RingRotationVisitsEveryShardOnce) {
  const int p = GetParam();
  Runtime runtime(p, test_network());
  runtime.run([&](Comm& comm) {
    std::vector<char> local{static_cast<char>(comm.rank())};
    Window window(comm, local);
    std::vector<bool> visited(static_cast<std::size_t>(p), false);
    std::vector<char> fetched;
    for (int s = 0; s < p; ++s) {
      const int j = (comm.rank() + s) % p;
      RmaRequest request = window.rget(j, fetched, 1);
      window.wait(request);
      ASSERT_EQ(fetched.size(), 1u);
      EXPECT_EQ(fetched[0], static_cast<char>(j));
      visited[static_cast<std::size_t>(j)] = true;
      window.fence();
    }
    for (bool v : visited) EXPECT_TRUE(v);
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, RuntimeScale,
                         ::testing::Values(1, 2, 3, 4, 7, 8, 16, 32));

}  // namespace
}  // namespace msp::sim
