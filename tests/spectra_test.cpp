// Tests for src/spectra: spectrum invariants, binning, theoretical ions,
// preprocessing and the synthetic CID generator.
#include <gtest/gtest.h>

#include <algorithm>

#include <sstream>

#include "mass/amino_acid.hpp"
#include "spectra/generator.hpp"
#include "spectra/library.hpp"
#include "spectra/preprocess.hpp"
#include "spectra/spectrum.hpp"
#include "spectra/theoretical.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace msp {
namespace {

TEST(Spectrum, SortsPeaksAndDropsNonPositive) {
  Spectrum spectrum({{300.0, 1.0}, {100.0, 2.0}, {200.0, 0.0}, {-5.0, 3.0}},
                    500.0, 2, "t");
  ASSERT_EQ(spectrum.size(), 2u);
  EXPECT_DOUBLE_EQ(spectrum.peaks()[0].mz, 100.0);
  EXPECT_DOUBLE_EQ(spectrum.peaks()[1].mz, 300.0);
  EXPECT_DOUBLE_EQ(spectrum.min_mz(), 100.0);
  EXPECT_DOUBLE_EQ(spectrum.max_mz(), 300.0);
  EXPECT_DOUBLE_EQ(spectrum.total_intensity(), 3.0);
  EXPECT_DOUBLE_EQ(spectrum.max_intensity(), 2.0);
}

TEST(Spectrum, ParentMassFromPrecursor) {
  const double mass = 1500.75;
  Spectrum spectrum({{100.0, 1.0}}, mz_from_mass(mass, 2), 2);
  EXPECT_NEAR(spectrum.parent_mass(), mass, 1e-9);
}

TEST(Spectrum, RejectsBadConstruction) {
  EXPECT_THROW(Spectrum({}, 500.0, 0), InvalidArgument);
  EXPECT_THROW(Spectrum({}, -1.0, 2), InvalidArgument);
}

TEST(BinnedSpectrum, LookupMatchesPeaks) {
  Spectrum spectrum({{100.2, 1.0}, {250.7, 3.0}}, 500.0, 1);
  const BinnedSpectrum binned(spectrum, 1.0);
  EXPECT_TRUE(binned.has_peak_at(100.2));
  EXPECT_TRUE(binned.has_peak_at(100.9));   // same 1 Da bin
  EXPECT_FALSE(binned.has_peak_at(101.5));
  EXPECT_DOUBLE_EQ(binned.intensity_at(250.3), 3.0);
  EXPECT_DOUBLE_EQ(binned.intensity_at(9999.0), 0.0);  // out of range
  EXPECT_EQ(binned.peak_bin_count(), 2u);
}

TEST(BinnedSpectrum, SameBinKeepsMaxIntensity) {
  Spectrum spectrum({{100.1, 1.0}, {100.4, 5.0}}, 500.0, 1);
  const BinnedSpectrum binned(spectrum, 1.0);
  EXPECT_DOUBLE_EQ(binned.intensity_at(100.0), 5.0);
  EXPECT_EQ(binned.peak_bin_count(), 1u);
}

// ---------- theoretical ions ----------

TEST(Theoretical, CountsAndOrdering) {
  const auto ions = fragment_ions("PEPTIDE");
  // 6 cuts × (b + y) = 12 singly-charged ions.
  ASSERT_EQ(ions.size(), 12u);
  EXPECT_TRUE(std::is_sorted(ions.begin(), ions.end(),
                             [](const FragmentIon& a, const FragmentIon& b) {
                               return a.mz < b.mz;
                             }));
}

TEST(Theoretical, KnownIonMasses) {
  // b2 of "PE...": P + E residues + proton.
  const auto ions = fragment_ions("PEPTIDE");
  const double b2_expected =
      residue_mass('P') + residue_mass('E') + kProtonMass;
  const double y1_expected = residue_mass('E') + kWaterMass + kProtonMass;
  bool saw_b2 = false, saw_y1 = false;
  for (const FragmentIon& ion : ions) {
    if (ion.type == FragmentIon::Type::kB && ion.index == 2) {
      EXPECT_NEAR(ion.mz, b2_expected, 1e-6);
      saw_b2 = true;
    }
    if (ion.type == FragmentIon::Type::kY && ion.index == 1) {
      EXPECT_NEAR(ion.mz, y1_expected, 1e-6);
      saw_y1 = true;
    }
  }
  EXPECT_TRUE(saw_b2);
  EXPECT_TRUE(saw_y1);
}

// Property: complementary b/y pairs sum to parent + 2 protons.
TEST(Theoretical, ComplementaryPairsSumToParent) {
  const std::string peptide = "ACDEFGHIK";
  const double parent = peptide_mass(peptide);
  const auto ions = fragment_ions(peptide);
  for (const FragmentIon& b : ions) {
    if (b.type != FragmentIon::Type::kB) continue;
    for (const FragmentIon& y : ions) {
      if (y.type != FragmentIon::Type::kY) continue;
      if (b.index + y.index != peptide.size()) continue;
      {
        EXPECT_NEAR(b.mz + y.mz, parent + 2 * kProtonMass, 1e-6);
      }
    }
  }
}

TEST(Theoretical, SiteDeltasShiftDownstreamIons) {
  TheoreticalOptions plain;
  TheoreticalOptions modified;
  modified.site_deltas = {0.0, 80.0, 0.0, 0.0};  // +80 on residue 1
  const auto base = fragment_ions("ACDE", plain);
  const auto shifted = fragment_ions("ACDE", modified);
  // b1 unchanged; b2, b3 shifted by +80; y3 shifted; y1, y2 unchanged.
  auto find_ion = [](const std::vector<FragmentIon>& ions,
                     FragmentIon::Type type, unsigned index) {
    for (const FragmentIon& ion : ions)
      if (ion.type == type && ion.index == index) return ion.mz;
    return -1.0;
  };
  EXPECT_NEAR(find_ion(shifted, FragmentIon::Type::kB, 1),
              find_ion(base, FragmentIon::Type::kB, 1), 1e-9);
  EXPECT_NEAR(find_ion(shifted, FragmentIon::Type::kB, 2),
              find_ion(base, FragmentIon::Type::kB, 2) + 80.0, 1e-9);
  EXPECT_NEAR(find_ion(shifted, FragmentIon::Type::kY, 1),
              find_ion(base, FragmentIon::Type::kY, 1), 1e-9);
  EXPECT_NEAR(find_ion(shifted, FragmentIon::Type::kY, 3),
              find_ion(base, FragmentIon::Type::kY, 3) + 80.0, 1e-9);
}

TEST(Theoretical, DoublyChargedIonsIncluded) {
  TheoreticalOptions options;
  options.max_fragment_charge = 2;
  EXPECT_EQ(fragment_ions("PEPTIDE", options).size(), 24u);
}

TEST(Theoretical, RejectsBadInput) {
  EXPECT_THROW(fragment_ions("A"), InvalidArgument);
  TheoreticalOptions options;
  options.site_deltas = {1.0};
  EXPECT_THROW(fragment_ions("ACD", options), InvalidArgument);
}

TEST(Theoretical, ModelSpectrumWeightsYOverB) {
  const Spectrum model = model_spectrum("PEPTIDEK");
  const auto ions = fragment_ions("PEPTIDEK");
  const BinnedSpectrum binned(model, 0.01);
  for (const FragmentIon& ion : ions) {
    const double intensity = binned.intensity_at(ion.mz);
    if (ion.type == FragmentIon::Type::kY) {
      EXPECT_DOUBLE_EQ(intensity, 1.0);
    }
  }
  EXPECT_NEAR(model.parent_mass(), peptide_mass("PEPTIDEK"), 1e-6);
}

// ---------- preprocessing ----------

TEST(Preprocess, RemovesPrecursorNeighborhood) {
  Spectrum spectrum({{499.5, 10.0}, {300.0, 1.0}}, 500.0, 1);
  PreprocessOptions options;
  options.precursor_exclusion_da = 2.0;
  options.sqrt_transform = false;
  const Spectrum cleaned = preprocess(spectrum, options);
  ASSERT_EQ(cleaned.size(), 1u);
  EXPECT_DOUBLE_EQ(cleaned.peaks()[0].mz, 300.0);
}

TEST(Preprocess, KeepsTopPeaksPerWindow) {
  std::vector<Peak> peaks;
  for (int i = 0; i < 20; ++i)
    peaks.push_back({100.0 + i, 1.0 + i});  // all in window [100, 200)
  Spectrum spectrum(std::move(peaks), 5000.0, 1);
  PreprocessOptions options;
  options.peaks_per_window = 6;
  options.window_da = 100.0;
  options.precursor_exclusion_da = 0.0;
  const Spectrum cleaned = preprocess(spectrum, options);
  EXPECT_EQ(cleaned.size(), 6u);
  // The six most intense survive: intensities 15..20 → mz 114..119.
  EXPECT_GE(cleaned.min_mz(), 114.0);
}

TEST(Preprocess, NormalizesMaxToOne) {
  Spectrum spectrum({{100.0, 4.0}, {200.0, 16.0}}, 5000.0, 1);
  PreprocessOptions options;
  options.sqrt_transform = true;
  options.normalize_max = true;
  options.precursor_exclusion_da = 0.0;
  const Spectrum cleaned = preprocess(spectrum, options);
  EXPECT_DOUBLE_EQ(cleaned.max_intensity(), 1.0);
  // sqrt preserved ratio: sqrt(4)/sqrt(16) = 0.5.
  EXPECT_DOUBLE_EQ(cleaned.peaks()[0].intensity, 0.5);
}

TEST(Preprocess, EmptySpectrumSurvives) {
  Spectrum spectrum({}, 500.0, 1);
  const Spectrum cleaned = preprocess(spectrum);
  EXPECT_TRUE(cleaned.empty());
  EXPECT_DOUBLE_EQ(cleaned.precursor_mz(), 500.0);
}

// ---------- generator ----------

TEST(Generator, DeterministicGivenSeed) {
  SpectrumNoiseModel model;
  Xoshiro256 rng_a(99), rng_b(99);
  const Spectrum a = simulate_spectrum("ACDEFGHIK", model, rng_a);
  const Spectrum b = simulate_spectrum("ACDEFGHIK", model, rng_b);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.peaks()[i].mz, b.peaks()[i].mz);
    EXPECT_DOUBLE_EQ(a.peaks()[i].intensity, b.peaks()[i].intensity);
  }
}

TEST(Generator, PrecursorNearTruePeptideMass) {
  SpectrumNoiseModel model;
  model.precursor_sigma_da = 0.0;
  Xoshiro256 rng(1);
  const Spectrum spectrum = simulate_spectrum("ACDEFGHIK", model, rng);
  EXPECT_NEAR(spectrum.parent_mass(), peptide_mass("ACDEFGHIK"), 1e-9);
  EXPECT_EQ(spectrum.charge(), model.charge);
}

TEST(Generator, NoNoiseNoDropoutReproducesAllIons) {
  SpectrumNoiseModel model;
  model.peak_dropout = 0.0;
  model.mz_sigma_da = 0.0;
  model.noise_peaks_per_100da = 0.0;
  model.intensity_sigma = 0.0;
  Xoshiro256 rng(5);
  const Spectrum spectrum = simulate_spectrum("ACDEFGHIK", model, rng);
  const auto ions = fragment_ions("ACDEFGHIK");
  const BinnedSpectrum binned(spectrum, 0.01);
  for (const FragmentIon& ion : ions)
    EXPECT_TRUE(binned.has_peak_at(ion.mz)) << ion.mz;
}

TEST(Generator, DropoutReducesPeakCount) {
  SpectrumNoiseModel keep, drop;
  keep.peak_dropout = 0.0;
  keep.noise_peaks_per_100da = 0.0;
  drop.peak_dropout = 0.7;
  drop.noise_peaks_per_100da = 0.0;
  std::size_t kept_total = 0, dropped_total = 0;
  for (int i = 0; i < 50; ++i) {
    Xoshiro256 rng_keep(1000 + i), rng_drop(1000 + i);
    kept_total += simulate_spectrum("ACDEFGHIKLMNPQR", keep, rng_keep).size();
    dropped_total += simulate_spectrum("ACDEFGHIKLMNPQR", drop, rng_drop).size();
  }
  EXPECT_LT(dropped_total, kept_total / 2);
}

// ---------- spectral library ----------

std::vector<Spectrum> make_replicates(std::string_view peptide, int count,
                                      std::uint64_t seed) {
  SpectrumNoiseModel model;
  model.peak_dropout = 0.2;
  model.noise_peaks_per_100da = 2.0;
  std::vector<Spectrum> replicates;
  for (int i = 0; i < count; ++i) {
    Xoshiro256 rng(seed + static_cast<std::uint64_t>(i));
    replicates.push_back(simulate_spectrum(peptide, model, rng));
  }
  return replicates;
}

TEST(Library, ConsensusSuppressesNoiseKeepsFragments) {
  const std::string peptide = "ACDEFGHIKLMNK";
  const auto replicates = make_replicates(peptide, 9, 500);
  const Spectrum consensus = build_consensus(peptide, replicates);
  ASSERT_FALSE(consensus.empty());
  // Most true fragment ions (dropout 0.2 → present in ~80% of replicates)
  // survive the 50% presence threshold...
  const auto ions = fragment_ions(peptide);
  const BinnedSpectrum binned(consensus);
  std::size_t present = 0;
  for (const FragmentIon& ion : ions) {
    // ±1 bin: replicate jitter can center the consensus on either side of
    // a bin boundary relative to the exact theoretical m/z.
    if (binned.has_peak_at(ion.mz) ||
        binned.has_peak_at(ion.mz - kDefaultBinWidth) ||
        binned.has_peak_at(ion.mz + kDefaultBinWidth))
      ++present;
  }
  EXPECT_GE(present, ions.size() * 2 / 3);
  // ...while uniform random noise (each peak in ~1 replicate) is mostly
  // gone: the consensus has few peaks beyond the fragment set.
  EXPECT_LE(consensus.size(), ions.size() + 8);
}

TEST(Library, ConsensusParentMassFromPeptide) {
  const std::string peptide = "PEPTIDEK";
  const auto replicates = make_replicates(peptide, 3, 41);
  const Spectrum consensus = build_consensus(peptide, replicates);
  EXPECT_NEAR(consensus.parent_mass(), peptide_mass(peptide), 1e-6);
  EXPECT_EQ(consensus.title(), peptide);
}

TEST(Library, RejectsBadInput) {
  EXPECT_THROW(build_consensus("PEPTIDEK", {}), InvalidArgument);
  ConsensusOptions options;
  options.min_replicate_fraction = 0.0;
  EXPECT_THROW(build_consensus("PEPTIDEK", make_replicates("PEPTIDEK", 2, 1),
                               options),
               InvalidArgument);
}

TEST(Library, FindAndReplace) {
  SpectralLibrary library;
  EXPECT_TRUE(library.empty());
  library.add_replicates("ACDEFGHIK", make_replicates("ACDEFGHIK", 4, 7));
  EXPECT_EQ(library.size(), 1u);
  ASSERT_NE(library.find("ACDEFGHIK"), nullptr);
  EXPECT_EQ(library.find("OTHERPEP"), nullptr);
  const std::size_t before = library.find("ACDEFGHIK")->size();
  library.add("ACDEFGHIK", Spectrum({{100.0, 1.0}},
                                    mz_from_mass(peptide_mass("ACDEFGHIK"), 1),
                                    1, "ACDEFGHIK"));
  EXPECT_EQ(library.find("ACDEFGHIK")->size(), 1u);
  EXPECT_NE(before, 1u);
}

TEST(Library, SaveLoadRoundTrip) {
  SpectralLibrary library;
  library.add_replicates("ACDEFGHIK", make_replicates("ACDEFGHIK", 4, 11));
  library.add_replicates("LMNPQRSTK", make_replicates("LMNPQRSTK", 4, 12));
  std::ostringstream out;
  library.save(out);
  std::istringstream in(out.str());
  const SpectralLibrary loaded = SpectralLibrary::load(in);
  EXPECT_EQ(loaded.size(), 2u);
  const Spectrum* original = library.find("ACDEFGHIK");
  const Spectrum* reloaded = loaded.find("ACDEFGHIK");
  ASSERT_NE(reloaded, nullptr);
  ASSERT_EQ(reloaded->size(), original->size());
  for (std::size_t i = 0; i < reloaded->size(); ++i)
    EXPECT_NEAR(reloaded->peaks()[i].mz, original->peaks()[i].mz, 1e-3);
}

TEST(Library, LoadRejectsTruncatedEntry) {
  std::istringstream in("PEPTIDEK 3\n100.0 1.0\n");
  EXPECT_THROW(SpectralLibrary::load(in), IoError);
}

TEST(Generator, IsotopeEnvelopesAddSatellitePeaks) {
  SpectrumNoiseModel plain;
  plain.peak_dropout = 0.0;
  plain.noise_peaks_per_100da = 0.0;
  plain.mz_sigma_da = 0.0;
  SpectrumNoiseModel enveloped = plain;
  enveloped.isotope_envelopes = true;

  Xoshiro256 rng_a(10), rng_b(10);
  const Spectrum mono = simulate_spectrum("ACDEFGHIK", plain, rng_a);
  const Spectrum iso = simulate_spectrum("ACDEFGHIK", enveloped, rng_b);
  EXPECT_GT(iso.size(), mono.size());
  // Each fragment line gains an M+1 satellite ~1.0034 Da above it.
  const BinnedSpectrum binned(iso, 0.01);
  std::size_t satellites = 0;
  for (const Peak& peak : mono.peaks())
    if (binned.has_peak_at(peak.mz + 1.0033548)) ++satellites;
  EXPECT_GE(satellites, mono.size() * 9 / 10);
}

TEST(Generator, TitleDefaultsToPeptide) {
  SpectrumNoiseModel model;
  Xoshiro256 rng(3);
  EXPECT_EQ(simulate_spectrum("ACDEFG", model, rng).title(), "ACDEFG");
  Xoshiro256 rng2(3);
  EXPECT_EQ(simulate_spectrum("ACDEFG", model, rng2, "custom").title(),
            "custom");
}

}  // namespace
}  // namespace msp
