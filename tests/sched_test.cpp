// Cluster-scheduler validation: every job mix must reproduce the serial
// engine's exact hit lists (each query-backed job is hit-identical to its
// standalone run — the oracle the preemption satellite names), preemption
// must ride the crash-recovery contract deterministically across reruns,
// kernel thread counts and fault schedules, backfill must reclaim measured
// serve idle without corrupting anything, fair-share/tenant caps must bind,
// the tenant accounting must land in the RunReport, and traces must
// validate with the sched lane populated.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "core/search_engine.hpp"
#include "dbgen/protein_gen.hpp"
#include "dbgen/query_gen.hpp"
#include "io/fasta.hpp"
#include "sched/scheduler.hpp"
#include "serve/slo.hpp"
#include "simmpi/runtime.hpp"
#include "simmpi/trace_validate.hpp"
#include "util/error.hpp"

namespace msp {
namespace {

struct Fixture {
  ProteinDatabase db;
  std::string image;
  std::vector<Spectrum> queries;
  SearchConfig config;
  QueryHits serial;

  Fixture() {
    ProteinGenOptions db_options;
    db_options.sequence_count = 36;
    db_options.mean_length = 110;
    db_options.seed = 6001;
    db = generate_proteins(db_options);
    image = to_fasta_string(db);

    QueryGenOptions q_options;
    q_options.query_count = 36;
    q_options.seed = 6002;
    q_options.digest.min_length = 6;
    q_options.digest.max_length = 25;
    queries = spectra_of(generate_queries(db, q_options));

    config.tolerance_da = 3.0;
    config.tau = 6;
    config.min_candidate_length = 4;
    config.max_candidate_length = 60;
    config.model = ScoreModel::kLikelihood;

    const SearchEngine engine(config);
    serial = engine.search(db, queries);
  }
};

const Fixture& fixture() {
  static const Fixture f;
  return f;
}

void expect_hits_equal(const QueryHits& got, const QueryHits& want,
                       const std::string& label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (std::size_t q = 0; q < want.size(); ++q) {
    ASSERT_EQ(got[q].size(), want[q].size()) << label << " query " << q;
    for (std::size_t h = 0; h < want[q].size(); ++h) {
      EXPECT_EQ(got[q][h].protein_id, want[q][h].protein_id)
          << label << " q" << q << " h" << h;
      EXPECT_EQ(got[q][h].end, want[q][h].end)
          << label << " q" << q << " h" << h;
      EXPECT_DOUBLE_EQ(got[q][h].score, want[q][h].score)
          << label << " q" << q << " h" << h;
    }
  }
}

sched::JobSpec serve_job(const std::string& name, const std::string& tenant,
                         std::size_t begin, std::size_t end) {
  sched::JobSpec job;
  job.name = name;
  job.tenant = tenant;
  job.kind = sched::JobKind::kServe;
  job.priority = sched::Priority::kHigh;
  job.submit_s = 0.0;
  job.query_begin = begin;
  job.query_end = end;
  job.arrivals.kind = serve::ArrivalKind::kPoisson;
  job.arrivals.rate_qps = 400.0;
  job.arrivals.seed = 77;
  job.batch.max_batch = 4;
  job.batch.max_wait_s = 0.02;
  job.admission.max_outstanding = 256;
  return job;
}

sched::JobSpec batch_job(const std::string& name, const std::string& tenant,
                         std::size_t begin, std::size_t end,
                         sched::Priority priority) {
  sched::JobSpec job;
  job.name = name;
  job.tenant = tenant;
  job.kind = sched::JobKind::kBatch;
  job.priority = priority;
  job.submit_s = 0.0;
  job.query_begin = begin;
  job.query_end = end;
  return job;
}

/// One serve session plus two batch jobs from two tenants — the default
/// mixed workload most tests run.
sched::SchedOptions default_mix() {
  sched::SchedOptions options;
  options.tenants = {{"acme", 1.0, 0}, {"zeta", 2.0, 0}};
  options.jobs.push_back(serve_job("frontend", "acme", 0, 12));
  options.jobs.push_back(
      batch_job("analytics", "zeta", 12, 24, sched::Priority::kLow));
  options.jobs.back().algorithm = Algorithm::kAlgorithmA;
  options.jobs.push_back(
      batch_job("reproc", "acme", 24, 36, sched::Priority::kNormal));
  options.jobs.back().algorithm = Algorithm::kAlgorithmB;
  options.chunk_queries = 6;
  return options;
}

/// A mix tuned so preemption provably fires: the optimistic initial step
/// estimate lets backfill admit chunks at t = 0, the serve job submits
/// mid-flight (a fixture flight spans ~13 virtual ms), and its first burst
/// closes a high-priority batch that evicts the chunks on the spot.
sched::SchedOptions preempting_mix() {
  sched::SchedOptions options = default_mix();
  options.jobs[0].submit_s = 0.004;
  options.jobs[0].arrivals.kind = serve::ArrivalKind::kBurst;
  options.jobs[0].arrivals.burst_size = 6;
  options.jobs[0].arrivals.burst_gap_s = 0.05;
  options.step_estimate_init_s = 1e-6;
  return options;
}

// ---------------------------------------------------------------------------
// A mixed job mix reproduces the serial hit lists, every job completes.

TEST(Sched, MixedMixMatchesSerialHits) {
  const Fixture& f = fixture();
  for (const int p : {4, 7}) {
    const sim::Runtime runtime(p);
    const sched::SchedResult result = sched::run_sched(
        runtime, f.image, f.queries, f.config, default_mix());
    EXPECT_EQ(result.completed, f.queries.size());
    EXPECT_EQ(result.shed, 0u);
    expect_hits_equal(result.hits, f.serial, "mix p=" + std::to_string(p));
    ASSERT_EQ(result.jobs.size(), 3u);
    for (const sched::JobOutcome& job : result.jobs) {
      EXPECT_GE(job.start_s, 0.0) << job.name;
      EXPECT_GE(job.complete_s, job.start_s) << job.name;
      EXPECT_EQ(job.queries_completed, 12u) << job.name;
    }
    for (const serve::QueryOutcome& q : result.outcomes) {
      EXPECT_FALSE(q.shed);
      EXPECT_LE(q.arrival_s, q.admit_s);
      EXPECT_LE(q.admit_s, q.dispatch_s);
      EXPECT_LT(q.dispatch_s, q.complete_s);
    }
    EXPECT_GT(result.batches, 3u);
    EXPECT_GT(result.throughput_qps, 0.0);
  }
}

// ---------------------------------------------------------------------------
// Determinism: reruns and kernel thread counts change nothing observable —
// hits, per-query outcomes, and the rendered reports are byte-identical.

TEST(Sched, DeterministicAcrossRerunsAndKernelThreads) {
  const Fixture& f = fixture();
  const sim::Runtime runtime(5);

  auto run_with_threads = [&](std::size_t threads) {
    SearchConfig config = f.config;
    config.kernel_threads = threads;
    return sched::run_sched(runtime, f.image, f.queries, config,
                            default_mix());
  };

  const sched::SchedResult a = run_with_threads(1);
  const sched::SchedResult b = run_with_threads(1);
  const sched::SchedResult c = run_with_threads(3);

  const std::string csv = a.report.to_csv();
  const std::string json = a.report.to_json();
  for (const sched::SchedResult* other : {&b, &c}) {
    expect_hits_equal(other->hits, a.hits, "rerun");
    ASSERT_EQ(other->outcomes.size(), a.outcomes.size());
    for (std::size_t q = 0; q < a.outcomes.size(); ++q) {
      EXPECT_EQ(other->outcomes[q].arrival_s, a.outcomes[q].arrival_s);
      EXPECT_EQ(other->outcomes[q].admit_s, a.outcomes[q].admit_s);
      EXPECT_EQ(other->outcomes[q].dispatch_s, a.outcomes[q].dispatch_s);
      EXPECT_EQ(other->outcomes[q].complete_s, a.outcomes[q].complete_s);
      EXPECT_EQ(other->outcomes[q].batch_id, a.outcomes[q].batch_id);
    }
    EXPECT_EQ(other->ring_steps, a.ring_steps);
    EXPECT_EQ(other->makespan_s, a.makespan_s);
    EXPECT_EQ(other->backfill_busy_s, a.backfill_busy_s);
    EXPECT_EQ(other->report.to_csv(), csv);
    EXPECT_EQ(other->report.to_json(), json);
  }
}

// ---------------------------------------------------------------------------
// Preemption: high-priority serve batches evict lower-priority chunks, the
// evicted queries are re-scored from scratch, and everything stays exact —
// including when a crash lands in the same run.

TEST(Sched, PreemptionKeepsHitsExact) {
  const Fixture& f = fixture();
  const sim::Runtime runtime(5);
  const sched::SchedResult result = sched::run_sched(
      runtime, f.image, f.queries, f.config, preempting_mix());

  EXPECT_GT(result.preemptions, 0u) << "mix never triggered a preemption";
  EXPECT_EQ(result.completed, f.queries.size());
  expect_hits_equal(result.hits, f.serial, "preempt");
  // Evicted chunks re-enter through the same re-dispatch counter crash
  // orphans use (the induced-fault contract).
  std::uint32_t redispatches = 0;
  for (const serve::QueryOutcome& q : result.outcomes)
    redispatches += q.redispatches;
  EXPECT_GT(redispatches, 0u);
  // Only batch jobs were victimized; the serve session never was.
  EXPECT_EQ(result.jobs[0].preemptions, 0u);
  EXPECT_GT(result.jobs[1].preemptions + result.jobs[2].preemptions, 0u);
}

TEST(Sched, PreemptionDeterministicAcrossThreadsAndFaults) {
  const Fixture& f = fixture();
  sim::FaultModel faults;
  faults.crash(2, 3);  // rank 2 dies at ring step 3, mid-flight
  const sim::Runtime runtime(5, {}, {}, faults);

  auto run_with_threads = [&](std::size_t threads) {
    SearchConfig config = f.config;
    config.kernel_threads = threads;
    return sched::run_sched(runtime, f.image, f.queries, config,
                            preempting_mix());
  };

  const sched::SchedResult a = run_with_threads(1);
  EXPECT_GT(a.preemptions, 0u);
  EXPECT_TRUE(a.report.has_fault_activity());
  EXPECT_EQ(a.completed, f.queries.size());
  expect_hits_equal(a.hits, f.serial, "preempt+crash");

  const sched::SchedResult b = run_with_threads(1);
  const sched::SchedResult c = run_with_threads(3);
  for (const sched::SchedResult* other : {&b, &c}) {
    expect_hits_equal(other->hits, a.hits, "preempt+crash rerun");
    EXPECT_EQ(other->preemptions, a.preemptions);
    EXPECT_EQ(other->makespan_s, a.makespan_s);
    EXPECT_EQ(other->report.to_csv(), a.report.to_csv());
  }
}

// The oracle the satellite names: a preempted-then-resumed batch job's hit
// lists equal a standalone serial run over just its query slice,
// bit-for-bit — not merely the full-stream serial run.

TEST(Sched, PreemptedJobMatchesUncontendedRun) {
  const Fixture& f = fixture();
  const sim::Runtime runtime(5);
  const sched::SchedOptions options = preempting_mix();
  const sched::SchedResult result =
      sched::run_sched(runtime, f.image, f.queries, f.config, options);
  ASSERT_GT(result.preemptions, 0u);

  for (std::size_t j = 1; j < options.jobs.size(); ++j) {
    const sched::JobSpec& spec = options.jobs[j];
    const std::vector<Spectrum> slice(
        f.queries.begin() + static_cast<std::ptrdiff_t>(spec.query_begin),
        f.queries.begin() + static_cast<std::ptrdiff_t>(spec.query_end));
    const SearchEngine engine(f.config);
    const QueryHits uncontended = engine.search(f.db, slice);
    QueryHits scheduled(slice.size());
    for (std::size_t q = 0; q < slice.size(); ++q)
      scheduled[q] = result.hits[spec.query_begin + q];
    expect_hits_equal(scheduled, uncontended, "job " + spec.name);
  }
}

// ---------------------------------------------------------------------------
// Backfill: chunks ride measured serve gaps (reclaimed idle > 0); with
// backfill off the cluster is strictly partitioned — batch work waits for
// the serve session to drain.

TEST(Sched, BackfillReclaimsServeIdle) {
  const Fixture& f = fixture();
  const sim::Runtime runtime(4);

  sched::SchedOptions serve_only;
  serve_only.tenants = {{"acme", 1.0, 0}};
  serve_only.jobs.push_back(serve_job("frontend", "acme", 0, 12));
  serve_only.jobs[0].arrivals.kind = serve::ArrivalKind::kBurst;
  serve_only.jobs[0].arrivals.burst_size = 4;
  serve_only.jobs[0].arrivals.burst_gap_s = 0.2;
  const sched::SchedResult baseline = sched::run_sched(
      runtime, f.image, f.queries, f.config, serve_only);
  EXPECT_GT(baseline.report.serve_idle_seconds(), 0.0)
      << "bursty serve-only run measured no idle to reclaim";

  sched::SchedOptions mixed = serve_only;
  mixed.tenants.push_back({"zeta", 1.0, 0});
  mixed.jobs.push_back(
      batch_job("analytics", "zeta", 12, 36, sched::Priority::kLow));
  mixed.chunk_queries = 4;
  const sched::SchedResult result =
      sched::run_sched(runtime, f.image, f.queries, f.config, mixed);
  EXPECT_EQ(result.completed, f.queries.size());
  expect_hits_equal(result.hits, f.serial, "backfill");
  EXPECT_GT(result.backfill_chunks, 0u);
  EXPECT_GT(result.backfill_busy_s, 0.0);

  mixed.backfill = false;
  const sched::SchedResult strict =
      sched::run_sched(runtime, f.image, f.queries, f.config, mixed);
  EXPECT_EQ(strict.completed, f.queries.size());
  expect_hits_equal(strict.hits, f.serial, "strict partition");
  EXPECT_EQ(strict.backfill_chunks, 0u);
  EXPECT_EQ(strict.backfill_busy_s, 0.0);
  // Strict partition: the batch job cannot start before the serve session
  // completed, so sharing the gaps finishes the mix sooner.
  EXPECT_GE(strict.jobs[1].start_s, strict.jobs[0].complete_s);
  EXPECT_LT(result.makespan_s, strict.makespan_s);
}

// ---------------------------------------------------------------------------
// Fair share and tenant QOS caps.

TEST(Sched, TenantInflightCapBoundsChunkSize) {
  const Fixture& f = fixture();
  const sim::Runtime runtime(4);
  sched::SchedOptions options;
  options.tenants = {{"capped", 1.0, 3}, {"free", 1.0, 0}};
  options.jobs.push_back(
      batch_job("small", "capped", 0, 18, sched::Priority::kNormal));
  options.jobs.push_back(
      batch_job("large", "free", 18, 36, sched::Priority::kNormal));
  options.chunk_queries = 8;
  const sched::SchedResult result =
      sched::run_sched(runtime, f.image, f.queries, f.config, options);
  EXPECT_EQ(result.completed, f.queries.size());
  expect_hits_equal(result.hits, f.serial, "capped");

  // Group published queries by flight: flights of the capped tenant never
  // exceed its in-flight cap; the free tenant got full-size chunks.
  std::map<std::size_t, std::size_t> flight_sizes;
  for (std::size_t q = 0; q < result.outcomes.size(); ++q)
    ++flight_sizes[result.outcomes[q].batch_id];
  std::size_t free_max = 0;
  for (std::size_t q = 0; q < 18; ++q)
    EXPECT_LE(flight_sizes[result.outcomes[q].batch_id], 3u) << "query " << q;
  for (std::size_t q = 18; q < 36; ++q)
    free_max = std::max(free_max, flight_sizes[result.outcomes[q].batch_id]);
  EXPECT_EQ(free_max, 8u);

  ASSERT_EQ(result.tenants.size(), 2u);
  EXPECT_EQ(result.tenants[0].name, "capped");
  EXPECT_EQ(result.tenants[0].queries_completed, 18u);
  EXPECT_EQ(result.tenants[0].jobs_completed, 1u);
  EXPECT_EQ(result.tenants[1].queries_completed, 18u);
  EXPECT_GT(result.tenants[0].usage_end + result.tenants[1].usage_end, 0.0);
}

TEST(Sched, TenantAccountingLandsInRunReport) {
  const Fixture& f = fixture();
  const sim::Runtime runtime(4);
  const sched::SchedResult result = sched::run_sched(
      runtime, f.image, f.queries, f.config, default_mix());
  EXPECT_EQ(result.report.sum_counter("tenant_acme_completed"), 24u);
  EXPECT_EQ(result.report.sum_counter("tenant_zeta_completed"), 12u);
  EXPECT_EQ(result.report.sum_counter("tenant_acme_jobs"), 2u);
  EXPECT_EQ(result.report.sum_counter("tenant_zeta_jobs"), 1u);
  const std::string csv = result.report.to_csv();
  EXPECT_NE(csv.find("tenant_acme_completed"), std::string::npos);
  EXPECT_NE(csv.find("tenant_zeta_usage_micro"), std::string::npos);
  // Per-tenant serve latency summarizes only serve queries.
  EXPECT_EQ(result.tenants[0].serve_latency.count, 12u);
  EXPECT_EQ(result.tenants[1].serve_latency.count, 0u);
  EXPECT_GT(result.tenants[0].throughput_qps, 0.0);
}

// ---------------------------------------------------------------------------
// Pack jobs: deterministic build slices consume idle boundaries.

TEST(Sched, PackJobRunsToCompletion) {
  const Fixture& f = fixture();
  const sim::Runtime runtime(4);
  sched::SchedOptions options = default_mix();
  sched::JobSpec pack;
  pack.name = "repack";
  pack.tenant = "zeta";
  pack.kind = sched::JobKind::kPack;
  pack.priority = sched::Priority::kLow;
  pack.submit_s = 0.0;
  pack.pack_slices = 3;
  options.jobs.push_back(pack);

  const sched::SchedResult result =
      sched::run_sched(runtime, f.image, f.queries, f.config, options);
  EXPECT_EQ(result.completed, f.queries.size());
  expect_hits_equal(result.hits, f.serial, "with pack");
  const sched::JobOutcome& outcome = result.jobs.back();
  EXPECT_EQ(outcome.pack_slices_done, 3u);
  EXPECT_GE(outcome.complete_s, outcome.start_s);
  EXPECT_EQ(result.tenants[1].pack_slices, 3u);
}

// ---------------------------------------------------------------------------
// Traces: sched lane present, validator clean, byte-identical reruns.

TEST(Sched, TraceValidatesWithSchedLane) {
  const Fixture& f = fixture();
  sim::Runtime runtime(4);
  runtime.enable_tracing();

  const sched::SchedResult result = sched::run_sched(
      runtime, f.image, f.queries, f.config, preempting_mix());
  ASSERT_GT(result.preemptions, 0u);
  const std::string trace = result.report.to_chrome_trace();
  EXPECT_EQ(sim::validate_chrome_trace(trace), "");
  EXPECT_NE(trace.find("\"sched\""), std::string::npos);
  EXPECT_NE(trace.find("sched-submit"), std::string::npos);
  EXPECT_NE(trace.find("sched-start"), std::string::npos);
  EXPECT_NE(trace.find("sched-preempt"), std::string::npos);
  EXPECT_NE(trace.find("sched-complete"), std::string::npos);
  EXPECT_NE(trace.find("serve-admit"), std::string::npos);

  const sched::SchedResult again = sched::run_sched(
      runtime, f.image, f.queries, f.config, preempting_mix());
  EXPECT_EQ(again.report.to_chrome_trace(), trace);

  // Faulty traces validate too.
  sim::FaultModel faults;
  faults.crash(1, 2);
  sim::Runtime faulty(4, {}, {}, faults);
  faulty.enable_tracing();
  const sched::SchedResult crashed = sched::run_sched(
      faulty, f.image, f.queries, f.config, preempting_mix());
  EXPECT_EQ(sim::validate_chrome_trace(crashed.report.to_chrome_trace()), "");
}

// ---------------------------------------------------------------------------
// simcheck: the scheduler's ring reads stay race-free, preemption included.

TEST(Sched, SimcheckCleanIncludingFaults) {
  const Fixture& f = fixture();
  std::vector<sim::check::Violation> violations;

  sim::Runtime runtime(4);
  runtime.set_check_sink(&violations);
  const sched::SchedResult clean = sched::run_sched(
      runtime, f.image, f.queries, f.config, preempting_mix());
  EXPECT_EQ(clean.completed, f.queries.size());
  EXPECT_TRUE(violations.empty()) << violations.size() << " violations";

  sim::FaultModel faults;
  faults.crash(3, 2);
  sim::Runtime faulty(4, {}, {}, faults);
  faulty.set_check_sink(&violations);
  const sched::SchedResult crashed = sched::run_sched(
      faulty, f.image, f.queries, f.config, preempting_mix());
  EXPECT_EQ(crashed.completed, f.queries.size());
  EXPECT_TRUE(violations.empty()) << violations.size() << " violations";
}

// ---------------------------------------------------------------------------
// Spec validation and name round-trips.

TEST(Sched, RejectsMalformedMixes) {
  const Fixture& f = fixture();
  const sim::Runtime runtime(4);
  const auto run = [&](const sched::SchedOptions& options) {
    return sched::run_sched(runtime, f.image, f.queries, f.config, options);
  };

  sched::SchedOptions empty;
  empty.tenants = {{"acme", 1.0, 0}};
  EXPECT_THROW(run(empty), InvalidArgument);

  sched::SchedOptions overlap = default_mix();
  overlap.jobs[2].query_begin = 20;  // overlaps analytics' [12, 24)
  EXPECT_THROW(run(overlap), InvalidArgument);

  sched::SchedOptions bad_range = default_mix();
  bad_range.jobs[2].query_end = f.queries.size() + 1;
  EXPECT_THROW(run(bad_range), InvalidArgument);

  sched::SchedOptions unknown_tenant = default_mix();
  unknown_tenant.jobs[1].tenant = "nobody";
  EXPECT_THROW(run(unknown_tenant), InvalidArgument);

  sched::SchedOptions empty_pack = default_mix();
  sched::JobSpec pack;
  pack.name = "broken";
  pack.tenant = "acme";
  pack.kind = sched::JobKind::kPack;
  pack.pack_slices = 0;
  empty_pack.jobs.push_back(pack);
  EXPECT_THROW(run(empty_pack), InvalidArgument);

  sched::SchedOptions zero_chunk = default_mix();
  zero_chunk.chunk_queries = 0;
  EXPECT_THROW(run(zero_chunk), InvalidArgument);
}

TEST(Sched, NamesRoundTrip) {
  for (const sched::JobKind kind :
       {sched::JobKind::kBatch, sched::JobKind::kServe, sched::JobKind::kPack})
    EXPECT_EQ(sched::job_kind_from_name(sched::job_kind_name(kind)), kind);
  for (const sched::Priority priority :
       {sched::Priority::kLow, sched::Priority::kNormal,
        sched::Priority::kHigh})
    EXPECT_EQ(sched::priority_from_name(sched::priority_name(priority)),
              priority);
  EXPECT_THROW(sched::job_kind_from_name("bogus"), InvalidArgument);
  EXPECT_THROW(sched::priority_from_name("bogus"), InvalidArgument);
}

}  // namespace
}  // namespace msp
