// Fault-injection validation: every deterministic fault schedule —
// stragglers, transient transfer failures, rank crashes — must still
// reproduce the serial engine's exact hit lists (the invariant
// core_parallel_test.cpp enforces for failure-free runs), the RunReport
// counters must match the injected schedule, and the whole fault layer
// must be bit-exactly zero-cost when no schedule is given.
#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "core/algorithm_a.hpp"
#include "core/algorithm_hybrid.hpp"
#include "core/master_worker.hpp"
#include "core/partition.hpp"
#include "core/search_engine.hpp"
#include "dbgen/protein_gen.hpp"
#include "dbgen/query_gen.hpp"
#include "io/fasta.hpp"
#include "simmpi/runtime.hpp"
#include "simmpi/trace_validate.hpp"
#include "util/error.hpp"

namespace msp {
namespace {

struct Fixture {
  ProteinDatabase db;
  std::string image;
  std::vector<Spectrum> queries;
  SearchConfig config;
  QueryHits serial;

  Fixture() {
    ProteinGenOptions db_options;
    db_options.sequence_count = 40;
    db_options.mean_length = 120;
    db_options.seed = 1009;
    db = generate_proteins(db_options);
    image = to_fasta_string(db);

    QueryGenOptions q_options;
    q_options.query_count = 12;
    q_options.seed = 1010;
    q_options.digest.min_length = 6;
    q_options.digest.max_length = 25;
    queries = spectra_of(generate_queries(db, q_options));

    config.tolerance_da = 3.0;
    config.tau = 7;
    config.min_candidate_length = 4;
    config.max_candidate_length = 60;
    config.model = ScoreModel::kLikelihood;

    const SearchEngine engine(config);
    serial = engine.search(db, queries);
  }
};

const Fixture& fixture() {
  static const Fixture f;
  return f;
}

void expect_hits_equal(const QueryHits& got, const QueryHits& want,
                       const std::string& label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (std::size_t q = 0; q < want.size(); ++q) {
    ASSERT_EQ(got[q].size(), want[q].size()) << label << " query " << q;
    for (std::size_t h = 0; h < want[q].size(); ++h) {
      EXPECT_EQ(got[q][h].protein_id, want[q][h].protein_id)
          << label << " q" << q << " h" << h;
      EXPECT_EQ(got[q][h].length, want[q][h].length)
          << label << " q" << q << " h" << h;
      EXPECT_EQ(got[q][h].end, want[q][h].end) << label << " q" << q << " h"
                                               << h;
      EXPECT_DOUBLE_EQ(got[q][h].score, want[q][h].score)
          << label << " q" << q << " h" << h;
    }
  }
}

enum class Algo { kA, kMasterWorker };
enum class Schedule { kStraggler, kTransient, kCrash, kCombined };

const char* algo_name(Algo algo) {
  return algo == Algo::kA ? "A" : "master-worker";
}

const char* schedule_name(Schedule kind) {
  switch (kind) {
    case Schedule::kStraggler: return "straggler";
    case Schedule::kTransient: return "transient";
    case Schedule::kCrash: return "crash";
    case Schedule::kCombined: return "combined";
  }
  return "?";
}

/// Crash steps are ring iterations for Algorithm A and received-batch
/// ordinals for master-worker; rank 1 is always the victim.
sim::FaultModel make_schedule(Schedule kind, Algo algo, int p) {
  sim::FaultModel faults;
  const int crash_step = algo == Algo::kA ? p / 2 : 0;
  switch (kind) {
    case Schedule::kStraggler:
      faults.straggle(1, 4.0, 2.0);
      break;
    case Schedule::kTransient:
      faults.fail_transfers(1, {0, 1, 2});
      break;
    case Schedule::kCrash:
      faults.crash(1, crash_step);
      break;
    case Schedule::kCombined:
      faults.straggle(0, 2.0, 1.5)
          .fail_transfers(p - 1, {1, 2})
          .crash(1, crash_step);
      break;
  }
  return faults;
}

// ---------- the main matrix: algorithm × schedule × p ----------

class FaultSchedule
    : public ::testing::TestWithParam<std::tuple<Algo, Schedule, int>> {};

TEST_P(FaultSchedule, ReproducesSerialHitsAndCounters) {
  const auto [algo, kind, p] = GetParam();
  const Fixture& f = fixture();
  const sim::FaultModel faults = make_schedule(kind, algo, p);
  const sim::Runtime runtime(p, {}, {}, faults);
  const std::string label = std::string(algo_name(algo)) + "/" +
                            schedule_name(kind) + " p=" + std::to_string(p);

  // Losing rank 1 at p=2 leaves master-worker with no worker at all —
  // that schedule is rejected deterministically, not half-recovered.
  const bool sole_worker_lost =
      algo == Algo::kMasterWorker && p == 2 &&
      (kind == Schedule::kCrash || kind == Schedule::kCombined);
  if (sole_worker_lost) {
    EXPECT_THROW(run_master_worker(runtime, f.image, f.queries, f.config),
                 FaultUnrecoverable)
        << label;
    return;
  }

  const ParallelRunResult result =
      algo == Algo::kA
          ? run_algorithm_a(runtime, f.image, f.queries, f.config)
          : run_master_worker(runtime, f.image, f.queries, f.config);
  expect_hits_equal(result.hits, f.serial, label);
  const sim::RunReport& report = result.report;

  switch (kind) {
    case Schedule::kStraggler:
      EXPECT_EQ(report.total_transfer_retries(), 0u) << label;
      EXPECT_TRUE(report.crashed_ranks().empty()) << label;
      break;
    case Schedule::kTransient: {
      // Ordinals {0,1,2} are consumed by rank 1's first transfer: exactly
      // three retries, whatever the algorithm's communication pattern.
      EXPECT_EQ(report.total_transfer_retries(), 3u) << label;
      EXPECT_EQ(report.ranks[1].transfer_retries, 3u) << label;
      const double expected_cost = faults.retry_delay(0) +
                                   faults.retry_delay(1) +
                                   faults.retry_delay(2);
      EXPECT_DOUBLE_EQ(report.ranks[1].recovery_seconds, expected_cost)
          << label;
      EXPECT_TRUE(report.crashed_ranks().empty()) << label;
      break;
    }
    case Schedule::kCrash:
      EXPECT_EQ(report.crashed_ranks(), std::vector<int>{1}) << label;
      EXPECT_TRUE(report.ranks[1].crashed) << label;
      if (algo == Algo::kA) {
        EXPECT_GT(report.total_recovery_seconds(), 0.0) << label;
        EXPECT_EQ(report.sum_counter("recovered_queries"),
                  query_block(f.queries.size(), 1, p).count())
            << label;
      }
      break;
    case Schedule::kCombined:
      EXPECT_EQ(report.crashed_ranks(), std::vector<int>{1}) << label;
      if (algo == Algo::kA) {
        EXPECT_EQ(report.total_transfer_retries(), 2u) << label;
        EXPECT_GT(report.total_recovery_seconds(), 0.0) << label;
      }
      break;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AlgorithmScheduleRanks, FaultSchedule,
    ::testing::Combine(::testing::Values(Algo::kA, Algo::kMasterWorker),
                       ::testing::Values(Schedule::kStraggler,
                                         Schedule::kTransient, Schedule::kCrash,
                                         Schedule::kCombined),
                       ::testing::Values(2, 4, 8)));

// The hybrid shares the ring recovery path: a crash inside one sub-group
// is absorbed by that group's survivors.
TEST(FaultHybrid, GroupLocalCrashRecovers) {
  const Fixture& f = fixture();
  sim::FaultModel faults;
  faults.crash(1, 1);  // rank 1 = member 1 of group 0 when p=4, groups=2
  const sim::Runtime runtime(4, {}, {}, faults);
  HybridOptions options;
  options.groups = 2;
  const HybridResult result =
      run_algorithm_hybrid(runtime, f.image, f.queries, f.config, options);
  expect_hits_equal(result.hits, f.serial, "hybrid crash");
  EXPECT_EQ(result.report.crashed_ranks(), std::vector<int>{1});
}

// ---------- determinism regression ----------
// netmodel.hpp promises that (workload, model, p[, fault schedule]) fully
// determines every virtual-time result; these tests pin it down.
// Master-worker is exempt by design: its batch assignment follows the
// physical arrival order of worker requests (see faults.hpp).

TEST(FaultDeterminism, FailureFreeRunsAreByteIdentical) {
  const Fixture& f = fixture();
  const sim::Runtime runtime(4);
  const ParallelRunResult first =
      run_algorithm_a(runtime, f.image, f.queries, f.config);
  const ParallelRunResult second =
      run_algorithm_a(runtime, f.image, f.queries, f.config);
  EXPECT_EQ(first.report.to_csv(), second.report.to_csv());
  EXPECT_EQ(first.report.to_string(), second.report.to_string());
  EXPECT_EQ(first.report.total_time(), second.report.total_time());
}

TEST(FaultDeterminism, FaultScheduleRunsAreByteIdentical) {
  const Fixture& f = fixture();
  const sim::FaultModel faults = make_schedule(Schedule::kCombined, Algo::kA, 4);
  const sim::Runtime runtime(4, {}, {}, faults);
  const ParallelRunResult first =
      run_algorithm_a(runtime, f.image, f.queries, f.config);
  const ParallelRunResult second =
      run_algorithm_a(runtime, f.image, f.queries, f.config);
  expect_hits_equal(second.hits, first.hits, "fault determinism");
  EXPECT_EQ(first.report.to_csv(), second.report.to_csv());
  EXPECT_EQ(first.report.to_string(), second.report.to_string());
  EXPECT_EQ(first.report.total_time(), second.report.total_time());
  EXPECT_EQ(first.report.total_recovery_seconds(),
            second.report.total_recovery_seconds());
  EXPECT_EQ(first.report.total_transfer_retries(),
            second.report.total_transfer_retries());
}

TEST(FaultDeterminism, TracedFaultRunsAreByteIdentical) {
  // The span timeline (crash, retries, recovery re-search included) must
  // render byte-identically run over run, and pass the schema validator.
  const Fixture& f = fixture();
  const sim::FaultModel faults = make_schedule(Schedule::kCombined, Algo::kA, 4);
  sim::Runtime runtime(4, {}, {}, faults);
  runtime.enable_tracing();
  const ParallelRunResult first =
      run_algorithm_a(runtime, f.image, f.queries, f.config);
  const ParallelRunResult second =
      run_algorithm_a(runtime, f.image, f.queries, f.config);
  const std::string trace = first.report.to_chrome_trace();
  EXPECT_EQ(trace, second.report.to_chrome_trace());
  EXPECT_EQ(first.report.to_iteration_csv(), second.report.to_iteration_csv());
  EXPECT_EQ(sim::validate_chrome_trace(trace), "");
  // Fault activity reached the fault lane.
  EXPECT_NE(trace.find("fault-crash"), std::string::npos);
  EXPECT_NE(trace.find("fault-retry"), std::string::npos);
}

TEST(FaultDeterminism, TracingDoesNotChangeVirtualTimes) {
  const Fixture& f = fixture();
  const sim::FaultModel faults = make_schedule(Schedule::kCombined, Algo::kA, 4);
  sim::Runtime traced(4, {}, {}, faults);
  traced.enable_tracing();
  const sim::Runtime plain(4, {}, {}, faults);
  const ParallelRunResult with_spans =
      run_algorithm_a(traced, f.image, f.queries, f.config);
  const ParallelRunResult without =
      run_algorithm_a(plain, f.image, f.queries, f.config);
  expect_hits_equal(with_spans.hits, without.hits, "tracing transparency");
  EXPECT_EQ(with_spans.report.to_csv(), without.report.to_csv());
  EXPECT_EQ(with_spans.report.to_string(), without.report.to_string());
}

// ---------- zero cost when disabled ----------

TEST(FaultLayer, EmptyScheduleIsByteIdenticalToNoSchedule) {
  const Fixture& f = fixture();
  const sim::Runtime plain(4);
  const sim::Runtime with_empty_schedule(4, {}, {}, sim::FaultModel{});
  const ParallelRunResult base =
      run_algorithm_a(plain, f.image, f.queries, f.config);
  const ParallelRunResult layered =
      run_algorithm_a(with_empty_schedule, f.image, f.queries, f.config);
  expect_hits_equal(layered.hits, base.hits, "zero-cost");
  EXPECT_EQ(base.report.to_csv(), layered.report.to_csv());
  EXPECT_EQ(base.report.to_string(), layered.report.to_string());
  EXPECT_EQ(base.report.total_time(), layered.report.total_time());
  EXPECT_FALSE(layered.report.has_fault_activity());
}

// ---------- runtime-level fault semantics ----------

TEST(FaultLayer, StragglerScalesComputeExactly) {
  sim::FaultModel faults;
  faults.straggle(1, 2.5);
  const sim::Runtime runtime(2, {}, {}, faults);
  const sim::RunReport report =
      runtime.run([](sim::Comm& comm) { comm.clock().charge_compute(1.0); });
  EXPECT_DOUBLE_EQ(report.ranks[0].compute_seconds, 1.0);
  EXPECT_DOUBLE_EQ(report.ranks[1].compute_seconds, 2.5);
}

TEST(FaultLayer, ComputeStragglerScalingIsExactOnAlgorithmA) {
  const Fixture& f = fixture();
  const sim::Runtime plain(4);
  sim::FaultModel faults;
  faults.straggle(1, 4.0);  // power of two: scaling commutes with rounding
  const sim::Runtime slowed(4, {}, {}, faults);
  const ParallelRunResult base =
      run_algorithm_a(plain, f.image, f.queries, f.config);
  const ParallelRunResult straggled =
      run_algorithm_a(slowed, f.image, f.queries, f.config);
  expect_hits_equal(straggled.hits, base.hits, "straggler");
  EXPECT_DOUBLE_EQ(straggled.report.ranks[1].compute_seconds,
                   4.0 * base.report.ranks[1].compute_seconds);
  EXPECT_DOUBLE_EQ(straggled.report.ranks[0].compute_seconds,
                   base.report.ranks[0].compute_seconds);
  EXPECT_GT(straggled.report.total_time(), base.report.total_time());
}

TEST(FaultLayer, NetworkStragglerScalesTransferCost) {
  const auto body = [](sim::Comm& comm) {
    std::vector<char> local(1 << 14, 'x');
    sim::Window window(comm, local);
    std::vector<char> fetched;
    sim::RmaRequest request =
        window.rget((comm.rank() + 1) % 2, fetched, 1);
    window.wait(request);
    window.fence();
  };
  const sim::NetworkModel network;
  const sim::Runtime plain(2, network);
  sim::FaultModel faults;
  faults.straggle(1, 1.0, 3.0);
  const sim::Runtime degraded(2, network, {}, faults);
  const sim::RunReport base = plain.run(body);
  const sim::RunReport slow = degraded.run(body);
  // Rank 1 is an endpoint of both pulls, so both transfers cost 3x; the
  // extra residual wait is exactly two baseline transfer costs. (Total
  // residual also contains the window-setup collective, which the network
  // multiplier does not touch — hence the difference, not a ratio.)
  const double cost = network.transfer_cost(1 << 14, 1, 0, 1);
  EXPECT_NEAR(slow.ranks[1].residual_comm_seconds -
                  base.ranks[1].residual_comm_seconds,
              2.0 * cost, 1e-12);
  EXPECT_NEAR(slow.ranks[0].residual_comm_seconds -
                  base.ranks[0].residual_comm_seconds,
              2.0 * cost, 1e-12);
}

TEST(FaultLayer, TransientRetryCostIsExact) {
  sim::FaultModel faults;
  faults.fail_transfers(1, {0});
  const sim::Runtime runtime(2, {}, {}, faults);
  const sim::RunReport report = runtime.run([](sim::Comm& comm) {
    std::vector<char> local(64, 'x');
    sim::Window window(comm, local);
    std::vector<char> fetched;
    sim::RmaRequest request =
        window.rget((comm.rank() + 1) % 2, fetched, 1);
    window.wait(request);
    window.fence();
  });
  EXPECT_EQ(report.ranks[0].transfer_retries, 0u);
  EXPECT_EQ(report.ranks[1].transfer_retries, 1u);
  EXPECT_DOUBLE_EQ(report.ranks[1].recovery_seconds, faults.retry_delay(0));
  ASSERT_EQ(report.ranks[1].fault_events.size(), 1u);
  EXPECT_EQ(report.ranks[1].fault_events[0].kind, sim::FaultKind::kRetry);
  EXPECT_TRUE(report.has_fault_activity());
}

TEST(FaultLayer, BackoffDoublesUpToCap) {
  sim::FaultModel faults;
  EXPECT_DOUBLE_EQ(faults.retry_delay(0),
                   faults.retry_timeout_s + faults.backoff_base_s);
  EXPECT_DOUBLE_EQ(faults.retry_delay(1),
                   faults.retry_timeout_s + 2.0 * faults.backoff_base_s);
  EXPECT_DOUBLE_EQ(faults.retry_delay(10),
                   faults.retry_timeout_s + faults.backoff_cap_s);
}

TEST(FaultLayer, CrashEventsAppearInTrace) {
  const Fixture& f = fixture();
  sim::FaultModel faults;
  faults.crash(1, 2);
  const sim::Runtime runtime(4, {}, {}, faults);
  const ParallelRunResult result =
      run_algorithm_a(runtime, f.image, f.queries, f.config);
  ASSERT_FALSE(result.report.ranks[1].fault_events.empty());
  EXPECT_EQ(result.report.ranks[1].fault_events[0].kind, sim::FaultKind::kCrash);
  const std::string trace = result.report.to_string();
  EXPECT_NE(trace.find("CRASHED"), std::string::npos);
  EXPECT_NE(trace.find("fault[crash]"), std::string::npos);
  EXPECT_NE(trace.find("fault[recovery]"), std::string::npos);
  // Survivors recorded the detection timeout and the re-search span.
  for (int r : {0, 2, 3})
    EXPECT_GT(result.report.ranks[static_cast<std::size_t>(r)].recovery_seconds,
              0.0)
        << "rank " << r;
}

// ---------- schedule validation and unrecoverable schedules ----------

TEST(FaultLayer, ScheduleValidation) {
  sim::FaultModel out_of_range;
  out_of_range.crash(5, 0);
  EXPECT_THROW(sim::Runtime(2, {}, {}, out_of_range), InvalidArgument);

  sim::FaultModel bad_multiplier;
  bad_multiplier.straggle(0, -1.0);
  EXPECT_THROW(sim::Runtime(2, {}, {}, bad_multiplier), InvalidArgument);

  sim::FaultModel negative_step;
  negative_step.crash(1, -3);
  EXPECT_THROW(sim::Runtime(2, {}, {}, negative_step), InvalidArgument);
}

TEST(FaultLayer, AllRanksDeadIsUnrecoverable) {
  const Fixture& f = fixture();
  sim::FaultModel faults;
  faults.crash(0, 0).crash(1, 1);
  const sim::Runtime runtime(2, {}, {}, faults);
  EXPECT_THROW(run_algorithm_a(runtime, f.image, f.queries, f.config),
               FaultUnrecoverable);
}

TEST(FaultLayer, ShardAndReplicaBothLostIsUnrecoverable) {
  const Fixture& f = fixture();
  sim::FaultModel faults;
  faults.crash(1, 0).crash(2, 1);  // shard 1's owner and its successor
  const sim::Runtime runtime(4, {}, {}, faults);
  EXPECT_THROW(run_algorithm_a(runtime, f.image, f.queries, f.config),
               FaultUnrecoverable);
}

TEST(FaultLayer, MasterCrashIsUnrecoverable) {
  const Fixture& f = fixture();
  sim::FaultModel faults;
  faults.crash(0, 0);
  const sim::Runtime runtime(4, {}, {}, faults);
  EXPECT_THROW(run_master_worker(runtime, f.image, f.queries, f.config),
               FaultUnrecoverable);
}

TEST(FaultLayer, AllWorkersDeadIsUnrecoverable) {
  const Fixture& f = fixture();
  sim::FaultModel faults;
  faults.crash(1, 0).crash(2, 3).crash(3, 1);
  const sim::Runtime runtime(4, {}, {}, faults);
  EXPECT_THROW(run_master_worker(runtime, f.image, f.queries, f.config),
               FaultUnrecoverable);
}

}  // namespace
}  // namespace msp
