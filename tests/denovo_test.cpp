// Tests for the de novo sequencer: graph construction, exact recovery on
// clean spectra, and the missing-peak degradation the paper's related work
// describes ("traditionally handicapped by the large number of peaks that
// can be missing from an experimental spectrum").
#include <gtest/gtest.h>

#include "denovo/sequencer.hpp"
#include "denovo/spectrum_graph.hpp"
#include "mass/amino_acid.hpp"
#include "spectra/generator.hpp"
#include "spectra/theoretical.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace msp::denovo {
namespace {

// ---------- graph construction ----------

TEST(SpectrumGraph, SentinelsBracketTheGraph) {
  const Spectrum spectrum = model_spectrum("PEPTIDEK");
  const auto vertices = build_spectrum_graph(spectrum);
  ASSERT_GE(vertices.size(), 2u);
  EXPECT_DOUBLE_EQ(vertices.front().prefix_mass, 0.0);
  EXPECT_NEAR(vertices.back().prefix_mass,
              peptide_mass("PEPTIDEK") - kWaterMass, 1e-6);
  EXPECT_TRUE(std::is_sorted(vertices.begin(), vertices.end(),
                             [](const Vertex& a, const Vertex& b) {
                               return a.prefix_mass < b.prefix_mass;
                             }));
}

TEST(SpectrumGraph, ComplementaryInterpretationsMerge) {
  // On a perfect model spectrum, the b_i peak and the y_{n-i} peak map to
  // the same prefix mass: merged vertices should carry 2+ supports.
  const Spectrum spectrum = model_spectrum("ACDEFGHIK");
  const auto vertices = build_spectrum_graph(spectrum);
  std::size_t corroborated = 0;
  for (const Vertex& vertex : vertices)
    if (vertex.supports >= 2) ++corroborated;
  // n-1 = 8 cut positions, each doubly supported.
  EXPECT_GE(corroborated, 7u);
}

TEST(SpectrumGraph, TruePrefixMassesArePresent) {
  const std::string peptide = "LNDAEKR";
  const Spectrum spectrum = model_spectrum(peptide);
  const auto vertices = build_spectrum_graph(spectrum);
  double running = 0.0;
  for (std::size_t i = 0; i + 1 < peptide.size(); ++i) {
    running += residue_mass(peptide[i]);
    bool found = false;
    for (const Vertex& vertex : vertices)
      found |= std::abs(vertex.prefix_mass - running) < 0.3;
    EXPECT_TRUE(found) << "prefix " << i + 1;
  }
}

TEST(SpectrumGraph, RejectsDegenerateParent) {
  const Spectrum tiny({{50.0, 1.0}}, 5.0, 1);
  EXPECT_THROW(build_spectrum_graph(tiny), InvalidArgument);
}

// ---------- sequencing ----------

TEST(Sequencer, ExactRecoveryOnCleanSpectra) {
  for (const char* peptide :
       {"ACDEFGHK", "LNDAEKR", "GGSTVWYK", "PEPTWDEK"}) {
    const Spectrum spectrum = model_spectrum(peptide);
    const DeNovoResult result = sequence_peptide(spectrum);
    ASSERT_TRUE(result.complete) << peptide;
    // I/L ambiguity: compare with I→L normalization.
    std::string expected = peptide;
    for (char& c : expected)
      if (c == 'I') c = 'L';
    EXPECT_EQ(result.sequence, expected) << peptide;
    EXPECT_GE(ladder_agreement(result.sequence, peptide), 0.99);
  }
}

TEST(Sequencer, BridgesOneMissingPeak) {
  // Remove one internal b/y pair: the two-residue edge should bridge it.
  const std::string peptide = "ACDEFGHK";
  const Spectrum full = model_spectrum(peptide);
  std::vector<Peak> peaks;
  const double b3 = mz_from_mass(peptide_mass("ACD") - kWaterMass, 1);
  const double y5 = mz_from_mass(peptide_mass("EFGHK"), 1);
  for (const Peak& peak : full.peaks()) {
    if (std::abs(peak.mz - b3) < 0.01 || std::abs(peak.mz - y5) < 0.01)
      continue;
    peaks.push_back(peak);
  }
  const Spectrum gapped(std::move(peaks), full.precursor_mz(), 1);
  const DeNovoResult result = sequence_peptide(gapped);
  ASSERT_TRUE(result.complete);
  // The bridged pair {C,D} may come back in either order; the ladder
  // around it still matches everywhere else.
  EXPECT_GE(ladder_agreement(result.sequence, peptide), 0.8);
}

TEST(Sequencer, WithoutTwoResidueGapsAMissingPeakIsFatal) {
  const std::string peptide = "ACDEFGHK";
  const Spectrum full = model_spectrum(peptide);
  const double b3 = mz_from_mass(peptide_mass("ACD") - kWaterMass, 1);
  const double y5 = mz_from_mass(peptide_mass("EFGHK"), 1);
  std::vector<Peak> peaks;
  for (const Peak& peak : full.peaks())
    if (std::abs(peak.mz - b3) >= 0.01 && std::abs(peak.mz - y5) >= 0.01)
      peaks.push_back(peak);
  const Spectrum gapped(std::move(peaks), full.precursor_mz(), 1);
  SequencerOptions options;
  options.allow_two_residue_gaps = false;
  const DeNovoResult result = sequence_peptide(gapped, options);
  EXPECT_FALSE(result.complete);
  EXPECT_TRUE(result.sequence.empty());
}

TEST(Sequencer, PrecursorErrorShearsTheGraph) {
  // The flip side of the above: with a sloppy precursor (±0.5 Da), y-ion
  // interpretations no longer line up with b-ion ones and accuracy drops —
  // why de novo needs calibrated parent masses while database search only
  // needs them within δ.
  const std::string peptide = "ACDEFGHKLMNR";
  auto mean_agreement = [&](double precursor_sigma) {
    SpectrumNoiseModel noise;
    noise.mz_sigma_da = 0.05;
    noise.noise_peaks_per_100da = 0.5;
    noise.precursor_sigma_da = precursor_sigma;
    double total = 0.0;
    const int trials = 15;
    for (int t = 0; t < trials; ++t) {
      Xoshiro256 rng(6000 + static_cast<std::uint64_t>(t));
      const Spectrum spectrum = simulate_spectrum(peptide, noise, rng);
      const DeNovoResult result = sequence_peptide(spectrum);
      total += result.complete ? ladder_agreement(result.sequence, peptide) : 0.0;
    }
    return total / trials;
  };
  EXPECT_GT(mean_agreement(0.02), mean_agreement(0.5) + 0.1);
}

TEST(Sequencer, DeterministicAcrossCalls) {
  SpectrumNoiseModel noise;
  Xoshiro256 rng(77);
  const Spectrum spectrum = simulate_spectrum("ACDEFGHKLMNR", noise, rng);
  const DeNovoResult a = sequence_peptide(spectrum);
  const DeNovoResult b = sequence_peptide(spectrum);
  EXPECT_EQ(a.sequence, b.sequence);
  EXPECT_EQ(a.evidence, b.evidence);
}

// The paper's related-work claim, measured: de novo accuracy collapses as
// fragment peaks go missing, far faster than database search would.
TEST(Sequencer, AccuracyDegradesWithPeakDropout) {
  const std::string peptide = "ACDEFGHKLMNR";
  auto mean_agreement = [&](double dropout) {
    SpectrumNoiseModel noise;
    noise.peak_dropout = dropout;
    noise.mz_sigma_da = 0.05;
    noise.noise_peaks_per_100da = 0.5;
    // De novo interpretation hinges on the parent mass: the y-ion reading
    // of every peak is computed relative to it, so precursor error shears
    // the whole graph. Assume a well-calibrated instrument here.
    noise.precursor_sigma_da = 0.02;
    double total = 0.0;
    const int trials = 20;
    for (int t = 0; t < trials; ++t) {
      Xoshiro256 rng(4000 + static_cast<std::uint64_t>(t));
      const Spectrum spectrum = simulate_spectrum(peptide, noise, rng);
      const DeNovoResult result = sequence_peptide(spectrum);
      total += result.complete ? ladder_agreement(result.sequence, peptide) : 0.0;
    }
    return total / trials;
  };
  const double clean = mean_agreement(0.0);
  const double noisy = mean_agreement(0.45);
  EXPECT_GT(clean, 0.8);
  EXPECT_LT(noisy, clean - 0.2);
}

// ---------- ladder agreement metric ----------

TEST(LadderAgreement, IdentityAndDisjoint) {
  EXPECT_DOUBLE_EQ(ladder_agreement("PEPTIDEK", "PEPTIDEK"), 1.0);
  EXPECT_DOUBLE_EQ(ladder_agreement("GGGGGGGG", "WWWWWWWW"), 0.0);
}

TEST(LadderAgreement, IsobaricSwapStillMatchesElsewhere) {
  // Swapping adjacent residues breaks exactly one ladder rung.
  const double agreement = ladder_agreement("ACDEFGHK", "ACDFEGHK");
  EXPECT_NEAR(agreement, 6.0 / 7.0, 1e-9);
}

TEST(LadderAgreement, ILEquivalence) {
  EXPECT_DOUBLE_EQ(ladder_agreement("ALK", "AIK"), 1.0);
}

}  // namespace
}  // namespace msp::denovo
