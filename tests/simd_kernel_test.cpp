// The blocked scoring kernel's three contracts (DESIGN.md §5j):
//
//  1. Duplicate-bin dedup: two theoretical ions landing in one fragment bin
//     are ONE piece of evidence. The IonLadder collapses them at build time
//     (first-hit wins on the m/z-sorted ion list), so a kernel cannot
//     re-count a query peak — the regression tests here fail against the
//     pre-fix per-ion counting.
//  2. Scalar/SIMD bit-identity: both backends accumulate the same values in
//     the same canonical (ascending ladder-entry) order, so stats, matched
//     intensities and ladder_dot results are bit-equal — checked over random
//     workloads plus the adversarial corners (empty ladders, all-miss
//     ladders, duplicate-bin ladders, denormal intensities), and end-to-end
//     through search_shard across kernel_threads and a fault schedule.
//  3. Xcorr parity: the fast single-pass formulation agrees with the naive
//     151-offset reference on any input, and the engine under
//     ScoreModel::kXcorr is oracle-identical (kernel_equiv_test covers the
//     oracle side; here the formulation itself is validated).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "core/algorithm_a.hpp"
#include "core/search_engine.hpp"
#include "dbgen/protein_gen.hpp"
#include "dbgen/query_gen.hpp"
#include "io/fasta.hpp"
#include "scoring/kernel.hpp"
#include "scoring/xcorr.hpp"
#include "simmpi/runtime.hpp"
#include "spectra/spectrum.hpp"
#include "spectra/theoretical.hpp"
#include "util/error.hpp"

namespace msp {
namespace {

constexpr double kBinWidth = kDefaultBinWidth;

/// Restores the process-global backend switch on scope exit so a failing
/// test cannot leak a forced backend into later tests.
struct BackendGuard {
  ~BackendGuard() { set_scoring_backend(ScoringBackend::kAuto); }
};

double bin_center(std::int32_t bin) {
  return (static_cast<double>(bin) + 0.5) * kBinWidth;
}

// ---------- ladder construction: dedup, classification, padding ----------

TEST(IonLadder, CollapsesDuplicateBinsFirstHitWins) {
  // Three ions, the first two in one bin: a b-ion then a y-ion. The bin is
  // claimed by the b-ion (first hit on the sorted list), the y-ion is the
  // duplicate that must not create a second entry.
  const std::vector<FragmentIon> ions = {
      {bin_center(100) - 0.2, FragmentIon::Type::kB, 1},
      {bin_center(100) + 0.2, FragmentIon::Type::kY, 2},
      {bin_center(250), FragmentIon::Type::kY, 3},
  };
  IonLadder ladder;
  build_ion_ladder(ions, kBinWidth, ladder);
  EXPECT_EQ(ladder.total_ions, 3u);
  ASSERT_EQ(ladder.size, 2u);
  EXPECT_EQ(ladder.bins[0], 100);
  EXPECT_EQ(ladder.bins[1], 250);
  // Classification follows the claiming ion: entry 0 is b, entry 1 is y.
  EXPECT_EQ(ladder.y_mask[0] & 1u, 0u);
  EXPECT_NE(ladder.y_mask[0] & 2u, 0u);
}

TEST(IonLadder, PadsToFullBlocksWithSentinel) {
  std::vector<FragmentIon> ions;
  for (std::int32_t bin = 10; bin < 13; ++bin)
    ions.push_back({bin_center(bin), FragmentIon::Type::kB, 1});
  IonLadder ladder;
  build_ion_ladder(ions, kBinWidth, ladder);
  EXPECT_EQ(ladder.size, 3u);
  ASSERT_EQ(ladder.bins.size() % kLadderBlock, 0u);
  EXPECT_EQ(ladder.block_count(), ladder.bins.size() / kLadderBlock);
  for (std::size_t i = ladder.size; i < ladder.bins.size(); ++i)
    EXPECT_EQ(ladder.bins[i], kLadderPadBin) << "pad entry " << i;
}

TEST(IonLadder, EmptyIonListYieldsEmptyLadder) {
  IonLadder ladder;
  build_ion_ladder({}, kBinWidth, ladder);
  EXPECT_EQ(ladder.size, 0u);
  EXPECT_EQ(ladder.total_ions, 0u);
  EXPECT_EQ(ladder.block_count(), 0u);
}

// ---------- duplicate-bin regression: one peak, one count ----------

TEST(DuplicateBinRegression, TwiceHitBinCountsOnce) {
  // One query peak; a candidate whose b2 and y5 ions both land in its bin.
  // Pre-fix, the per-ion match loop counted the peak twice (matched == 2,
  // intensity doubled); the deduplicated ladder makes that impossible.
  const double peak_mz = bin_center(400);
  const Spectrum query({{peak_mz, 7.0}}, 500.0, 1);
  const BinnedSpectrum binned(query, kBinWidth);

  const std::vector<FragmentIon> ions = {
      {peak_mz - 0.3, FragmentIon::Type::kB, 2},
      {peak_mz + 0.3, FragmentIon::Type::kY, 5},
  };
  IonLadder ladder;
  build_ion_ladder(ions, kBinWidth, ladder);
  ASSERT_EQ(ladder.size, 1u);

  std::vector<float> matched;
  const PeakMatchStats stats = match_ladder(binned, ladder, &matched);
  EXPECT_EQ(stats.matched_b + stats.matched_y, 1u);
  EXPECT_EQ(stats.matched_b, 1u);  // the b-ion claimed the bin
  EXPECT_EQ(stats.total_ions, 2u);
  EXPECT_EQ(stats.matched_intensity, 7.0);  // counted once, not 14
  ASSERT_EQ(matched.size(), 1u);
  EXPECT_EQ(matched[0], 7.0f);
}

TEST(DuplicateBinRegression, RealPeptideWithCollidingSeries) {
  // Find a peptide whose b/y series actually collide in a bin, then check
  // the engine-facing invariant: distinct matched bins never exceed the
  // number of occupied query bins, even when the query contains every
  // theoretical ion (the self-match, where pre-fix double counting was
  // largest).
  // This peptide's b and y series collide in one fragment bin (found by
  // scanning random octamers: 13 distinct bins from 14 ions).
  const std::string peptide = "PCFCSECI";
  const std::vector<FragmentIon> ions = fragment_ions(peptide, {});
  IonLadder ladder;
  build_ion_ladder(ions, kBinWidth, ladder);
  ASSERT_LT(ladder.size, ladder.total_ions)
      << "workload has no duplicate-bin collision; pick another peptide";

  std::vector<Peak> peaks;
  for (const FragmentIon& ion : ions) peaks.push_back({ion.mz, 1.0});
  const Spectrum query(std::move(peaks), 800.0, 1);
  const BinnedSpectrum binned(query, kBinWidth);

  const PeakMatchStats stats = match_ladder(binned, ladder);
  EXPECT_EQ(stats.matched_b + stats.matched_y, ladder.size);
  EXPECT_LE(stats.matched_b + stats.matched_y, binned.peak_bin_count());
  EXPECT_EQ(stats.matched_intensity,
            static_cast<double>(ladder.size));  // unit peaks, once each
}

// ---------- scalar/SIMD bit-identity ----------

void expect_backends_identical(const BinnedSpectrum& binned,
                               const IonLadder& ladder,
                               const std::string& label) {
  std::vector<float> scalar_matched;
  std::vector<float> simd_matched;
  const PeakMatchStats scalar =
      match_ladder_scalar(binned, ladder, &scalar_matched);
  const PeakMatchStats simd = match_ladder_simd(binned, ladder, &simd_matched);
  EXPECT_EQ(scalar.matched_b, simd.matched_b) << label;
  EXPECT_EQ(scalar.matched_y, simd.matched_y) << label;
  EXPECT_EQ(scalar.total_ions, simd.total_ions) << label;
  EXPECT_EQ(scalar.matched_intensity, simd.matched_intensity) << label;
  ASSERT_EQ(scalar_matched.size(), simd_matched.size()) << label;
  for (std::size_t i = 0; i < scalar_matched.size(); ++i)
    EXPECT_EQ(scalar_matched[i], simd_matched[i]) << label << " match " << i;
}

TEST(BackendBitIdentity, RandomWorkloads) {
  if (!simd_compiled()) GTEST_SKIP() << "scalar-only build";
  std::mt19937 rng(20090817);
  std::uniform_int_distribution<int> peak_count(0, 120);
  std::uniform_real_distribution<double> mz(50.0, 2000.0);
  std::uniform_real_distribution<double> intensity(1e-3, 100.0);
  std::uniform_int_distribution<int> ion_count(0, 80);

  for (int trial = 0; trial < 200; ++trial) {
    std::vector<Peak> peaks;
    const int peaks_n = peak_count(rng);
    for (int i = 0; i < peaks_n; ++i)
      peaks.push_back({mz(rng), intensity(rng)});
    const Spectrum query(std::move(peaks), 900.0, 2);
    const BinnedSpectrum binned(query, kBinWidth);

    std::vector<FragmentIon> ions;
    const int ions_n = ion_count(rng);
    for (int i = 0; i < ions_n; ++i)
      ions.push_back({mz(rng),
                      (rng() & 1u) ? FragmentIon::Type::kY
                                   : FragmentIon::Type::kB,
                      static_cast<unsigned>(i + 1)});
    std::sort(ions.begin(), ions.end(),
              [](const FragmentIon& a, const FragmentIon& b) {
                return a.mz < b.mz;
              });
    IonLadder ladder;
    build_ion_ladder(ions, kBinWidth, ladder);
    expect_backends_identical(binned, ladder,
                              "trial " + std::to_string(trial));
  }
}

TEST(BackendBitIdentity, AdversarialCorners) {
  if (!simd_compiled()) GTEST_SKIP() << "scalar-only build";
  const Spectrum query({{bin_center(64), 3.5}, {bin_center(65), 1.0}}, 500.0,
                       1);
  const BinnedSpectrum binned(query, kBinWidth);

  // Empty ladder.
  IonLadder empty;
  build_ion_ladder({}, kBinWidth, empty);
  expect_backends_identical(binned, empty, "empty ladder");

  // All-miss ladder: every bin beyond the query grid (the early-break path).
  std::vector<FragmentIon> far;
  for (std::int32_t bin = 5000; bin < 5040; ++bin)
    far.push_back({bin_center(bin), FragmentIon::Type::kB, 1});
  IonLadder all_miss;
  build_ion_ladder(far, kBinWidth, all_miss);
  expect_backends_identical(binned, all_miss, "all-miss ladder");

  // Duplicate-bin ladder hitting the grid.
  IonLadder dup;
  build_ion_ladder({{bin_center(64) - 0.2, FragmentIon::Type::kB, 1},
                    {bin_center(64) + 0.2, FragmentIon::Type::kY, 2}},
                   kBinWidth, dup);
  expect_backends_identical(binned, dup, "duplicate-bin ladder");

  // Empty query grid against a non-empty ladder.
  const BinnedSpectrum no_peaks{Spectrum({}, 500.0, 1), kBinWidth};
  expect_backends_identical(no_peaks, dup, "empty query");

  // Denormal intensities: the compare-greater-than-zero mask must agree
  // between the vector compare and the scalar compare at the denormal edge.
  const Spectrum tiny({{bin_center(64), 1e-42}, {bin_center(65), 1e-300}},
                      500.0, 1);
  const BinnedSpectrum tiny_binned(tiny, kBinWidth);
  IonLadder both;
  build_ion_ladder({{bin_center(64), FragmentIon::Type::kB, 1},
                    {bin_center(65), FragmentIon::Type::kY, 2}},
                   kBinWidth, both);
  expect_backends_identical(tiny_binned, both, "denormal intensities");
}

TEST(BackendBitIdentity, LadderDotMatchesAcrossBackends) {
  if (!simd_compiled()) GTEST_SKIP() << "scalar-only build";
  std::mt19937 rng(775);
  std::uniform_real_distribution<float> weight(-5.0f, 5.0f);
  std::vector<float> weights(700);
  for (float& w : weights) w = weight(rng);

  std::vector<FragmentIon> ions;
  for (std::int32_t bin = 3; bin < 900; bin += 7)
    ions.push_back({bin_center(bin), FragmentIon::Type::kB, 1});
  IonLadder ladder;
  build_ion_ladder(ions, kBinWidth, ladder);

  const double scalar = ladder_dot_scalar(weights, ladder);
  const double simd = ladder_dot_simd(weights, ladder);
  EXPECT_EQ(scalar, simd);  // bit-equal: same values, same order

  // And through the dispatcher under both forced backends.
  BackendGuard guard;
  set_scoring_backend(ScoringBackend::kScalar);
  EXPECT_EQ(ladder_dot(weights, ladder), scalar);
  set_scoring_backend(ScoringBackend::kSimd);
  EXPECT_EQ(ladder_dot(weights, ladder), scalar);
}

// ---------- backend switch semantics ----------

TEST(BackendSwitch, AutoResolvesToCompiledBest) {
  BackendGuard guard;
  set_scoring_backend(ScoringBackend::kAuto);
  EXPECT_EQ(active_scoring_backend(), simd_compiled()
                                          ? ScoringBackend::kSimd
                                          : ScoringBackend::kScalar);
  set_scoring_backend(ScoringBackend::kScalar);
  EXPECT_EQ(active_scoring_backend(), ScoringBackend::kScalar);
}

TEST(BackendSwitch, ForcingSimdThrowsInScalarOnlyBuild) {
  BackendGuard guard;
  if (simd_compiled()) {
    set_scoring_backend(ScoringBackend::kSimd);
    EXPECT_EQ(active_scoring_backend(), ScoringBackend::kSimd);
  } else {
    EXPECT_THROW(set_scoring_backend(ScoringBackend::kSimd), InvalidArgument);
  }
}

// ---------- end-to-end backend identity (engine, threads, faults) ----------

struct EngineWorkload {
  ProteinDatabase db;
  std::string image;
  std::vector<Spectrum> queries;

  EngineWorkload() {
    ProteinGenOptions db_options;
    db_options.sequence_count = 40;
    db_options.mean_length = 120;
    db_options.seed = 5150;
    db = generate_proteins(db_options);
    image = to_fasta_string(db);

    QueryGenOptions q_options;
    q_options.query_count = 16;
    q_options.seed = 5151;
    queries = spectra_of(generate_queries(db, q_options));
  }
};

const EngineWorkload& engine_workload() {
  static const EngineWorkload w;
  return w;
}

QueryHits search_hits(const SearchConfig& config) {
  const EngineWorkload& w = engine_workload();
  const SearchEngine engine(config);
  const PreparedQueries prepared = engine.prepare(w.queries);
  std::vector<TopK<Hit>> tops = engine.make_tops(prepared.size());
  engine.search_shard(w.db, prepared, tops, nullptr);
  return engine.finalize(tops);
}

void expect_hits_equal(const QueryHits& a, const QueryHits& b,
                       const std::string& label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (std::size_t q = 0; q < a.size(); ++q) {
    ASSERT_EQ(a[q].size(), b[q].size()) << label << " query " << q;
    for (std::size_t h = 0; h < a[q].size(); ++h) {
      EXPECT_EQ(a[q][h].score, b[q][h].score) << label << " q" << q;
      EXPECT_EQ(a[q][h].peptide, b[q][h].peptide) << label << " q" << q;
    }
  }
}

TEST(BackendEngineIdentity, SearchHitsAcrossModelsAndThreads) {
  if (!simd_compiled()) GTEST_SKIP() << "scalar-only build";
  BackendGuard guard;
  for (const ScoreModel model :
       {ScoreModel::kLikelihood, ScoreModel::kHyperscore,
        ScoreModel::kSharedPeak, ScoreModel::kXcorr}) {
    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
      SearchConfig config;
      config.model = model;
      config.kernel_threads = threads;
      set_scoring_backend(ScoringBackend::kScalar);
      const QueryHits scalar = search_hits(config);
      set_scoring_backend(ScoringBackend::kSimd);
      const QueryHits simd = search_hits(config);
      expect_hits_equal(scalar, simd,
                        "model=" + std::to_string(static_cast<int>(model)) +
                            " threads=" + std::to_string(threads));
    }
  }
}

TEST(BackendEngineIdentity, FaultScheduleOutcomeIsBackendInvariant) {
  if (!simd_compiled()) GTEST_SKIP() << "scalar-only build";
  BackendGuard guard;
  const EngineWorkload& w = engine_workload();
  SearchConfig config;
  config.model = ScoreModel::kXcorr;

  sim::FaultModel faults;
  faults.straggle(1, 2.0).crash(2, 3);
  sim::Runtime runtime(3, {}, {}, faults);

  set_scoring_backend(ScoringBackend::kScalar);
  const ParallelRunResult scalar =
      run_algorithm_a(runtime, w.image, w.queries, config);
  set_scoring_backend(ScoringBackend::kSimd);
  const ParallelRunResult simd =
      run_algorithm_a(runtime, w.image, w.queries, config);

  expect_hits_equal(scalar.hits, simd.hits, "algorithm A under faults");
  EXPECT_EQ(scalar.candidates, simd.candidates);
}

// ---------- Xcorr formulation ----------

TEST(Xcorr, FastFormulationMatchesNaiveReference) {
  std::mt19937 rng(81);
  std::uniform_real_distribution<double> mz(100.0, 1600.0);
  std::uniform_real_distribution<double> intensity(0.5, 50.0);
  const std::string alphabet = "ACDEFGHIKLMNPQRSTVWY";
  std::uniform_int_distribution<std::size_t> letter(0, alphabet.size() - 1);
  std::uniform_int_distribution<int> length(6, 24);

  for (int trial = 0; trial < 40; ++trial) {
    std::vector<Peak> peaks;
    for (int i = 0; i < 60; ++i) peaks.push_back({mz(rng), intensity(rng)});
    const Spectrum query(std::move(peaks), 700.0, 2);
    const BinnedSpectrum binned(query, kBinWidth);

    std::string peptide;
    const int n = length(rng);
    for (int i = 0; i < n; ++i) peptide += alphabet[letter(rng)];
    const std::vector<FragmentIon> ions = fragment_ions(peptide, {});
    IonLadder ladder;
    build_ion_ladder(ions, kBinWidth, ladder);

    const XcorrContext context(binned);
    const double fast = xcorr(context, ladder);
    const double naive = xcorr_reference(binned, ions);
    // The fast path stores float weights; the naive path accumulates the
    // same terms in double, so agreement is to float rounding of the
    // per-bin weights, not bit-exact.
    EXPECT_NEAR(fast, naive, 1e-3 * std::max(1.0, std::abs(naive)))
        << "trial " << trial << " peptide " << peptide;
  }
}

TEST(Xcorr, BackgroundSubtractionZeroesFlatSpectra) {
  // A perfectly flat spectrum has zero cross-correlation signal: every
  // weight is x - mean(window) ≈ 0 away from the grid edges.
  std::vector<Peak> peaks;
  for (std::int32_t bin = 0; bin < 800; ++bin)
    peaks.push_back({bin_center(bin), 4.0});
  const Spectrum query(std::move(peaks), 900.0, 1);
  const BinnedSpectrum binned(query, kBinWidth);
  const XcorrContext context(binned);

  IonLadder ladder;  // interior bins only, away from the edge ramp
  std::vector<FragmentIon> ions;
  for (std::int32_t bin = 200; bin < 600; bin += 13)
    ions.push_back({bin_center(bin), FragmentIon::Type::kB, 1});
  build_ion_ladder(ions, kBinWidth, ladder);
  EXPECT_NEAR(xcorr(context, ladder), 0.0, 1e-3);
}

TEST(Xcorr, EngineRequiresXcorrContext) {
  // score_candidate under kXcorr on a context prepared without enable_xcorr
  // must refuse rather than silently score 0 — the engine's prepare() wires
  // it, but a hand-built QueryContext might not.
  const EngineWorkload& w = engine_workload();
  SearchConfig config;
  config.model = ScoreModel::kXcorr;
  const SearchEngine engine(config);
  const PreparedQueries prepared = engine.prepare(w.queries);
  ASSERT_FALSE(prepared.contexts.empty());
  EXPECT_NE(prepared.contexts.front().xcorr(), nullptr)
      << "prepare() must build the Xcorr context under ScoreModel::kXcorr";
}

}  // namespace
}  // namespace msp
