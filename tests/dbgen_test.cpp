// Tests for src/dbgen: synthetic database/query generation and the Fig. 1
// models. These are the stand-ins for the paper's GenBank data, so the key
// properties are determinism, prefix-nesting, and statistical fidelity to
// Table I.
#include <gtest/gtest.h>

#include <set>

#include "dbgen/growth_model.hpp"
#include "dbgen/protein_gen.hpp"
#include "dbgen/query_gen.hpp"
#include "mass/amino_acid.hpp"
#include "util/error.hpp"

namespace msp {
namespace {

TEST(ProteinGen, DeterministicAndDistinctBySeed) {
  ProteinGenOptions options;
  options.sequence_count = 50;
  const ProteinDatabase a = generate_proteins(options);
  const ProteinDatabase b = generate_proteins(options);
  ASSERT_EQ(a.sequence_count(), b.sequence_count());
  for (std::size_t i = 0; i < a.sequence_count(); ++i)
    EXPECT_EQ(a.proteins[i].residues, b.proteins[i].residues);

  options.seed += 1;
  const ProteinDatabase c = generate_proteins(options);
  bool any_difference = false;
  for (std::size_t i = 0; i < a.sequence_count(); ++i)
    any_difference |= (a.proteins[i].residues != c.proteins[i].residues);
  EXPECT_TRUE(any_difference);
}

// The paper's scaling study uses nested subsets (1K ⊂ 2K ⊂ 4K ...): with
// per-sequence RNG streams, a smaller database is a strict prefix.
TEST(ProteinGen, SmallerDatabaseIsPrefixOfLarger) {
  ProteinGenOptions small, large;
  small.sequence_count = 20;
  large.sequence_count = 60;
  const ProteinDatabase a = generate_proteins(small);
  const ProteinDatabase b = generate_proteins(large);
  for (std::size_t i = 0; i < a.sequence_count(); ++i) {
    EXPECT_EQ(a.proteins[i].id, b.proteins[i].id);
    EXPECT_EQ(a.proteins[i].residues, b.proteins[i].residues);
  }
}

TEST(ProteinGen, MatchesRequestedStatistics) {
  ProteinGenOptions options;
  options.sequence_count = 2000;
  options.mean_length = 314.44;  // Table I microbial average
  const ProteinDatabase db = generate_proteins(options);
  EXPECT_EQ(db.sequence_count(), 2000u);
  EXPECT_NEAR(db.average_length(), 314.44, 25.0);
  for (const Protein& protein : db.proteins) {
    EXPECT_GE(protein.length(), options.min_length);
    EXPECT_LE(protein.length(), options.max_length);
    for (char c : protein.residues) EXPECT_TRUE(is_residue(c));
  }
}

TEST(ProteinGen, UniqueIds) {
  ProteinGenOptions options;
  options.sequence_count = 500;
  const ProteinDatabase db = generate_proteins(options);
  std::set<std::string> ids;
  for (const Protein& protein : db.proteins) ids.insert(protein.id);
  EXPECT_EQ(ids.size(), db.sequence_count());
}

TEST(ProteinGen, CompositionTracksNaturalFrequencies) {
  ProteinGenOptions options;
  options.sequence_count = 300;
  const ProteinDatabase db = generate_proteins(options);
  std::array<std::size_t, 20> counts{};
  std::size_t total = 0;
  for (const Protein& protein : db.proteins)
    for (char c : protein.residues) {
      ++counts[static_cast<std::size_t>(residue_index(c))];
      ++total;
    }
  for (int i = 0; i < 20; ++i) {
    const char c = residue_from_index(i);
    const double observed =
        static_cast<double>(counts[static_cast<std::size_t>(i)]) /
        static_cast<double>(total);
    EXPECT_NEAR(observed, residue_frequency(c), 0.01) << c;
  }
}

TEST(ProteinGen, PaperPresets) {
  const ProteinGenOptions human = human_like_options(0.01);
  EXPECT_EQ(human.sequence_count, 883u);
  EXPECT_DOUBLE_EQ(human.mean_length, 301.66);
  const ProteinGenOptions microbial = microbial_like_options(0.001);
  EXPECT_EQ(microbial.sequence_count, 2655u);
  EXPECT_DOUBLE_EQ(microbial.mean_length, 314.44);
  EXPECT_THROW(human_like_options(0.0), InvalidArgument);
}

// ---------- query generation ----------

TEST(QueryGen, DeterministicAndTitled) {
  ProteinGenOptions db_options;
  db_options.sequence_count = 100;
  const ProteinDatabase db = generate_proteins(db_options);
  QueryGenOptions options;
  options.query_count = 20;
  const auto a = generate_queries(db, options);
  const auto b = generate_queries(db, options);
  ASSERT_EQ(a.size(), 20u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].true_peptide, b[i].true_peptide);
    EXPECT_EQ(a[i].spectrum.size(), b[i].spectrum.size());
    EXPECT_EQ(a[i].spectrum.title(), "query_" + std::to_string(i));
  }
}

TEST(QueryGen, TruePeptideComesFromSourceProtein) {
  ProteinGenOptions db_options;
  db_options.sequence_count = 50;
  const ProteinDatabase db = generate_proteins(db_options);
  QueryGenOptions options;
  options.query_count = 30;
  for (const GeneratedQuery& query : generate_queries(db, options)) {
    ASSERT_LT(query.source_protein, db.sequence_count());
    const std::string& parent = db.proteins[query.source_protein].residues;
    EXPECT_NE(parent.find(query.true_peptide), std::string::npos);
    EXPECT_FALSE(query.foreign);
  }
}

TEST(QueryGen, DigestBoundsRespected) {
  ProteinGenOptions db_options;
  db_options.sequence_count = 50;
  const ProteinDatabase db = generate_proteins(db_options);
  QueryGenOptions options;
  options.query_count = 30;
  options.digest.min_length = 8;
  options.digest.max_length = 12;
  for (const GeneratedQuery& query : generate_queries(db, options)) {
    EXPECT_GE(query.true_peptide.size(), 8u);
    EXPECT_LE(query.true_peptide.size(), 12u);
  }
}

TEST(QueryGen, MutationChangesPeptideButKeepsLength) {
  ProteinGenOptions db_options;
  db_options.sequence_count = 50;
  const ProteinDatabase db = generate_proteins(db_options);
  QueryGenOptions options;
  options.query_count = 40;
  options.mutation_fraction = 1.0;
  for (const GeneratedQuery& query : generate_queries(db, options)) {
    const std::string& parent = db.proteins[query.source_protein].residues;
    // One substitution: the mutated peptide is absent from the parent.
    EXPECT_EQ(parent.find(query.true_peptide), std::string::npos);
  }
}

TEST(QueryGen, ForeignQueriesNeedDecoySource) {
  ProteinGenOptions db_options;
  db_options.sequence_count = 20;
  const ProteinDatabase db = generate_proteins(db_options);
  QueryGenOptions options;
  options.query_count = 5;
  options.foreign_fraction = 0.5;
  EXPECT_THROW(generate_queries(db, options), InvalidArgument);

  ProteinGenOptions decoy_options;
  decoy_options.sequence_count = 20;
  decoy_options.seed = 777;
  decoy_options.id_prefix = "DEC";
  const ProteinDatabase decoys = generate_proteins(decoy_options);
  options.foreign_fraction = 1.0;
  for (const GeneratedQuery& query : generate_queries(db, options, &decoys))
    EXPECT_TRUE(query.foreign);
}

TEST(QueryGen, SpectraOfStripsGroundTruth) {
  ProteinGenOptions db_options;
  db_options.sequence_count = 20;
  const ProteinDatabase db = generate_proteins(db_options);
  QueryGenOptions options;
  options.query_count = 7;
  const auto queries = generate_queries(db, options);
  const auto spectra = spectra_of(queries);
  ASSERT_EQ(spectra.size(), 7u);
  for (std::size_t i = 0; i < spectra.size(); ++i)
    EXPECT_EQ(spectra[i].title(), queries[i].spectrum.title());
}

// ---------- growth / candidate models (Fig. 1) ----------

TEST(GrowthModel, ExponentialGenBankCurve) {
  const auto points = genbank_growth(1988, 2008);
  ASSERT_EQ(points.size(), 21u);
  EXPECT_EQ(points.front().year, 1988);
  EXPECT_NEAR(points.front().base_pairs, 2.3e7, 1e6);
  // Strictly increasing, ~1e10-1e11 by 2008 (published GenBank ballpark).
  for (std::size_t i = 1; i < points.size(); ++i)
    EXPECT_GT(points[i].base_pairs, points[i - 1].base_pairs);
  EXPECT_GT(points.back().base_pairs, 1e10);
  EXPECT_LT(points.back().base_pairs, 1e12);
}

TEST(CandidateModel, ScalesLinearlyWithDatabase) {
  const double small = expected_candidates(1'000'000, 314.44, 3.0);
  const double large = expected_candidates(10'000'000, 314.44, 3.0);
  EXPECT_NEAR(large / small, 10.0, 1e-9);
  const double tight = expected_candidates(1'000'000, 314.44, 1.0);
  EXPECT_LT(tight, small);
}

TEST(CandidateModel, Fig1bOrdering) {
  const auto rows = candidate_magnitudes();
  ASSERT_EQ(rows.size(), 4u);
  for (std::size_t i = 1; i < rows.size(); ++i) {
    EXPECT_GT(rows[i].candidates_no_ptm, rows[i - 1].candidates_no_ptm)
        << rows[i].scope;
  }
  for (const auto& row : rows)
    EXPECT_GT(row.candidates_with_ptm, row.candidates_no_ptm);
  // The paper's microbial scope: ~10^4-10^5 candidates per spectrum.
  EXPECT_GT(rows[2].candidates_no_ptm, 10'000u);
  EXPECT_LT(rows[2].candidates_no_ptm, 1'000'000u);
}

}  // namespace
}  // namespace msp
