// Tests for src/io: FASTA (incl. the paper's chunked parallel loading with
// boundary repair), MGF, and hit reports.
#include <gtest/gtest.h>

#include <sstream>

#include "dbgen/protein_gen.hpp"
#include "io/fasta.hpp"
#include "io/mgf.hpp"
#include "io/mzxml.hpp"
#include "io/pkl.hpp"
#include "io/results_io.hpp"
#include "util/error.hpp"

namespace msp {
namespace {

// ---------- FASTA ----------

TEST(Fasta, ParsesBasicRecords) {
  std::istringstream in(">p1 human protein\nACDE\nFGH\n>p2\nIKLMN\n");
  const ProteinDatabase db = read_fasta(in);
  ASSERT_EQ(db.sequence_count(), 2u);
  EXPECT_EQ(db.proteins[0].id, "p1");
  EXPECT_EQ(db.proteins[0].residues, "ACDEFGH");
  EXPECT_EQ(db.proteins[1].id, "p2");
  EXPECT_EQ(db.proteins[1].residues, "IKLMN");
}

TEST(Fasta, ToleratesBlankLinesLowercaseAndStops) {
  std::istringstream in(">p1\n\nac de\nFG*\n");
  const ProteinDatabase db = read_fasta(in);
  ASSERT_EQ(db.sequence_count(), 1u);
  EXPECT_EQ(db.proteins[0].residues, "ACDEFG");
}

TEST(Fasta, RejectsMalformedInput) {
  std::istringstream no_header("ACDE\n");
  EXPECT_THROW(read_fasta(no_header), IoError);
  std::istringstream bad_char(">p\nAC!E\n");
  EXPECT_THROW(read_fasta(bad_char), IoError);
}

TEST(Fasta, RoundTrip) {
  ProteinGenOptions options;
  options.sequence_count = 25;
  const ProteinDatabase db = generate_proteins(options);
  const std::string text = to_fasta_string(db, 60);
  const ProteinDatabase back = read_fasta_string(text);
  ASSERT_EQ(back.sequence_count(), db.sequence_count());
  for (std::size_t i = 0; i < db.sequence_count(); ++i) {
    EXPECT_EQ(back.proteins[i].id, db.proteins[i].id);
    EXPECT_EQ(back.proteins[i].residues, db.proteins[i].residues);
  }
}

// ---------- chunk_range ----------

TEST(ChunkRange, PartitionsExactly) {
  for (std::size_t total : {0u, 1u, 7u, 100u, 1001u}) {
    for (std::size_t p : {1u, 2u, 3u, 8u, 16u}) {
      std::size_t covered = 0;
      std::size_t expected_begin = 0;
      for (std::size_t r = 0; r < p; ++r) {
        const ByteRange range = chunk_range(total, r, p);
        EXPECT_EQ(range.begin, expected_begin);
        EXPECT_LE(range.begin, range.end);
        covered += range.end - range.begin;
        expected_begin = range.end;
      }
      EXPECT_EQ(covered, total);
    }
  }
}

TEST(ChunkRange, SizesDifferByAtMostOne) {
  for (std::size_t p : {2u, 3u, 7u}) {
    std::size_t smallest = SIZE_MAX, largest = 0;
    for (std::size_t r = 0; r < p; ++r) {
      const ByteRange range = chunk_range(1000, r, p);
      smallest = std::min(smallest, range.end - range.begin);
      largest = std::max(largest, range.end - range.begin);
    }
    EXPECT_LE(largest - smallest, 1u);
  }
}

// ---------- read_fasta_chunk: the paper's step A1 ----------

// Property: the p chunks partition the records — every sequence appears in
// exactly one chunk, regardless of where byte boundaries fall.
TEST(FastaChunk, ChunksPartitionRecords) {
  ProteinGenOptions options;
  options.sequence_count = 60;
  options.mean_length = 80;
  const ProteinDatabase db = generate_proteins(options);
  const std::string image = to_fasta_string(db, 50);

  for (std::size_t p : {1u, 2u, 3u, 5u, 8u, 13u}) {
    std::vector<std::string> seen;
    for (std::size_t r = 0; r < p; ++r) {
      const ByteRange range = chunk_range(image.size(), r, p);
      const ProteinDatabase shard =
          read_fasta_chunk(image, range.begin, range.end);
      for (const Protein& protein : shard.proteins) {
        seen.push_back(protein.id);
        // Boundary repair: the record must be complete, not truncated.
        bool found = false;
        for (const Protein& original : db.proteins) {
          if (original.id == protein.id) {
            EXPECT_EQ(original.residues, protein.residues);
            found = true;
          }
        }
        EXPECT_TRUE(found) << protein.id;
      }
    }
    std::sort(seen.begin(), seen.end());
    EXPECT_EQ(seen.size(), db.sequence_count()) << "p=" << p;
    EXPECT_EQ(std::adjacent_find(seen.begin(), seen.end()), seen.end())
        << "duplicate record at p=" << p;
  }
}

TEST(FastaChunk, HeaderExactlyAtBoundaryBelongsToRightChunk) {
  const std::string image = ">a\nGG\n>b\nCC\n";
  const std::size_t b_header = image.find(">b");
  // Chunk [0, b_header) gets only 'a'; [b_header, end) gets only 'b'.
  const ProteinDatabase left = read_fasta_chunk(image, 0, b_header);
  const ProteinDatabase right = read_fasta_chunk(image, b_header, image.size());
  ASSERT_EQ(left.sequence_count(), 1u);
  ASSERT_EQ(right.sequence_count(), 1u);
  EXPECT_EQ(left.proteins[0].id, "a");
  EXPECT_EQ(right.proteins[0].id, "b");
}

TEST(FastaChunk, MidRecordChunkReadsNothing) {
  const std::string image = ">a\nGGGGGGGGGG\nGGGG\n";
  // A chunk entirely inside a's sequence data owns no header → empty.
  const ProteinDatabase shard = read_fasta_chunk(image, 5, 10);
  EXPECT_EQ(shard.sequence_count(), 0u);
}

TEST(FastaChunk, RecordStraddlingEndIsRepaired) {
  const std::string image = ">a\nGGGG\n>b\nCCCCCCCCCC\nCCCC\n";
  const std::size_t cut = image.find("CCCC");  // inside b's data
  const ProteinDatabase shard = read_fasta_chunk(image, 0, cut);
  ASSERT_EQ(shard.sequence_count(), 2u);
  EXPECT_EQ(shard.proteins[1].residues, "CCCCCCCCCCCCCC");  // fully read
}

// ---------- MGF ----------

TEST(Mgf, RoundTrip) {
  std::vector<Spectrum> spectra;
  spectra.emplace_back(std::vector<Peak>{{100.25, 5.5}, {200.5, 1.0}}, 450.75,
                       2, "spec one");
  spectra.emplace_back(std::vector<Peak>{{300.0, 2.0}}, 900.0, 1, "two");
  std::ostringstream out;
  write_mgf(out, spectra);
  std::istringstream in(out.str());
  const auto back = read_mgf(in);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0].title(), "spec one");
  EXPECT_EQ(back[0].charge(), 2);
  EXPECT_NEAR(back[0].precursor_mz(), 450.75, 1e-4);
  ASSERT_EQ(back[0].size(), 2u);
  EXPECT_NEAR(back[0].peaks()[0].mz, 100.25, 1e-3);
  EXPECT_NEAR(back[0].peaks()[0].intensity, 5.5, 1e-2);
}

TEST(Mgf, ParsesChargeVariants) {
  for (const char* charge : {"2+", "2", "+2"}) {
    std::istringstream in(std::string("BEGIN IONS\nPEPMASS=500\nCHARGE=") +
                          charge + "\n100 1\nEND IONS\n");
    const auto spectra = read_mgf(in);
    ASSERT_EQ(spectra.size(), 1u);
    EXPECT_EQ(spectra[0].charge(), 2) << charge;
  }
}

TEST(Mgf, IntensityDefaultsToOne) {
  std::istringstream in("BEGIN IONS\nPEPMASS=500\n123.4\nEND IONS\n");
  const auto spectra = read_mgf(in);
  ASSERT_EQ(spectra[0].size(), 1u);
  EXPECT_DOUBLE_EQ(spectra[0].peaks()[0].intensity, 1.0);
}

TEST(Mgf, IgnoresUnknownHeadersAndComments) {
  std::istringstream in(
      "# comment\nBEGIN IONS\nTITLE=t\nPEPMASS=500\nRTINSECONDS=12.5\n"
      "SCANS=4\n100 1\nEND IONS\n");
  EXPECT_EQ(read_mgf(in).size(), 1u);
}

TEST(Mgf, RejectsStructuralErrors) {
  std::istringstream unterminated("BEGIN IONS\nPEPMASS=500\n100 1\n");
  EXPECT_THROW(read_mgf(unterminated), IoError);
  std::istringstream no_pepmass("BEGIN IONS\n100 1\nEND IONS\n");
  EXPECT_THROW(read_mgf(no_pepmass), IoError);
  std::istringstream nested("BEGIN IONS\nBEGIN IONS\nEND IONS\n");
  EXPECT_THROW(read_mgf(nested), IoError);
  std::istringstream stray_end("END IONS\n");
  EXPECT_THROW(read_mgf(stray_end), IoError);
  std::istringstream bad_peak("BEGIN IONS\nPEPMASS=500\nxyz abc\nEND IONS\n");
  EXPECT_THROW(read_mgf(bad_peak), IoError);
}

// ---------- PKL ----------

TEST(Pkl, RoundTrip) {
  std::vector<Spectrum> spectra;
  spectra.emplace_back(std::vector<Peak>{{100.25, 5.5}, {200.5, 1.0}}, 450.75,
                       2, "ignored");
  spectra.emplace_back(std::vector<Peak>{{300.0, 2.0}}, 900.0, 1, "ignored2");
  std::ostringstream out;
  write_pkl(out, spectra);
  std::istringstream in(out.str());
  const auto back = read_pkl(in);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0].title(), "pkl_0");  // PKL carries no titles
  EXPECT_EQ(back[0].charge(), 2);
  EXPECT_NEAR(back[0].precursor_mz(), 450.75, 1e-4);
  ASSERT_EQ(back[0].size(), 2u);
  EXPECT_NEAR(back[0].peaks()[1].mz, 200.5, 1e-3);
  EXPECT_EQ(back[1].charge(), 1);
}

TEST(Pkl, ToleratesExtraBlankLinesAndNoTrailingBlank) {
  std::istringstream in("\n\n500.5 100 2\n100 1\n\n\n600.5 50 1\n200 2");
  const auto spectra = read_pkl(in);
  ASSERT_EQ(spectra.size(), 2u);
  EXPECT_EQ(spectra[1].size(), 1u);
}

TEST(Pkl, RejectsMalformedInput) {
  std::istringstream bad_header("abc def ghi\n");
  EXPECT_THROW(read_pkl(bad_header), IoError);
  std::istringstream bad_charge("500 100 0\n");
  EXPECT_THROW(read_pkl(bad_charge), IoError);
  std::istringstream bad_peak("500 100 2\nxyz 1\n");
  EXPECT_THROW(read_pkl(bad_peak), IoError);
}

TEST(Pkl, CrossFormatAgreementWithMgf) {
  // The same spectra serialized as MGF and PKL parse to the same peaks.
  std::vector<Spectrum> spectra;
  spectra.emplace_back(std::vector<Peak>{{111.1, 3.0}, {222.2, 4.0}}, 333.3, 2,
                       "x");
  std::ostringstream mgf_out, pkl_out;
  write_mgf(mgf_out, spectra);
  write_pkl(pkl_out, spectra);
  std::istringstream mgf_in(mgf_out.str()), pkl_in(pkl_out.str());
  const auto from_mgf = read_mgf(mgf_in);
  const auto from_pkl = read_pkl(pkl_in);
  ASSERT_EQ(from_mgf.size(), from_pkl.size());
  ASSERT_EQ(from_mgf[0].size(), from_pkl[0].size());
  for (std::size_t i = 0; i < from_mgf[0].size(); ++i)
    EXPECT_NEAR(from_mgf[0].peaks()[i].mz, from_pkl[0].peaks()[i].mz, 1e-3);
}

// ---------- mzXML ----------

TEST(MzXml, RoundTrip) {
  std::vector<Spectrum> spectra;
  spectra.emplace_back(std::vector<Peak>{{100.25, 5.5}, {200.5, 1.0}}, 450.75,
                       2, "x");
  spectra.emplace_back(std::vector<Peak>{{300.0, 2.0}}, 900.0, 3, "y");
  std::ostringstream out;
  write_mzxml(out, spectra);
  std::istringstream in(out.str());
  const auto back = read_mzxml(in);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0].title(), "scan_1");
  EXPECT_EQ(back[0].charge(), 2);
  EXPECT_NEAR(back[0].precursor_mz(), 450.75, 1e-4);
  ASSERT_EQ(back[0].size(), 2u);
  // 32-bit float payload: ~7 significant digits survive.
  EXPECT_NEAR(back[0].peaks()[0].mz, 100.25, 1e-3);
  EXPECT_NEAR(back[0].peaks()[0].intensity, 5.5, 1e-3);
  EXPECT_EQ(back[1].charge(), 3);
}

TEST(MzXml, SkipsMs1ScansAndNestedStructure) {
  // A realistic layout: an MS1 survey scan wrapping an MS2 child.
  const std::string xml =
      "<mzXML><msRun>"
      "<scan num=\"1\" msLevel=\"1\" peaksCount=\"0\">"
      "<peaks precision=\"32\"></peaks>"
      "<scan num=\"2\" msLevel=\"2\">"
      "<precursorMz precursorCharge=\"2\">500.25</precursorMz>"
      "<peaks precision=\"32\" byteOrder=\"network\">" +
      [] {
        std::vector<Spectrum> one;
        one.emplace_back(std::vector<Peak>{{123.5, 7.0}}, 500.25, 2);
        std::ostringstream os;
        write_mzxml(os, one);
        const std::string text = os.str();
        const auto open = text.find("contentType=\"m/z-int\">") +
                          std::string("contentType=\"m/z-int\">").size();
        const auto close = text.find("</peaks>");
        return text.substr(open, close - open);
      }() +
      "</peaks></scan></scan></msRun></mzXML>";
  std::istringstream in(xml);
  const auto spectra = read_mzxml(in);
  ASSERT_EQ(spectra.size(), 1u);
  EXPECT_EQ(spectra[0].title(), "scan_2");
  EXPECT_NEAR(spectra[0].peaks()[0].mz, 123.5, 1e-3);
}

TEST(MzXml, RejectsStructuralProblems) {
  std::istringstream no_precursor(
      "<scan msLevel=\"2\"><peaks precision=\"32\"></peaks></scan>");
  EXPECT_THROW(read_mzxml(no_precursor), IoError);
  std::istringstream bad_payload(
      "<scan msLevel=\"2\"><precursorMz>500</precursorMz>"
      "<peaks precision=\"32\">!!notbase64!!</peaks></scan>");
  EXPECT_THROW(read_mzxml(bad_payload), IoError);
  std::istringstream bad_precision(
      "<scan msLevel=\"2\"><precursorMz>500</precursorMz>"
      "<peaks precision=\"64\">AAAA</peaks></scan>");
  EXPECT_THROW(read_mzxml(bad_precision), IoError);
  std::istringstream odd_payload(
      "<scan msLevel=\"2\"><precursorMz>500</precursorMz>"
      "<peaks precision=\"32\">AAAA</peaks></scan>");  // 3 bytes, not 8k
  EXPECT_THROW(read_mzxml(odd_payload), IoError);
}

TEST(MzXml, CrossFormatAgreementWithMgf) {
  std::vector<Spectrum> spectra;
  spectra.emplace_back(std::vector<Peak>{{111.125, 3.0}, {222.25, 4.0}},
                       333.375, 2, "z");
  std::ostringstream mzxml_out, mgf_out;
  write_mzxml(mzxml_out, spectra);
  write_mgf(mgf_out, spectra);
  std::istringstream mzxml_in(mzxml_out.str()), mgf_in(mgf_out.str());
  const auto a = read_mzxml(mzxml_in);
  const auto b = read_mgf(mgf_in);
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a[0].size(), b[0].size());
  for (std::size_t i = 0; i < a[0].size(); ++i)
    EXPECT_NEAR(a[0].peaks()[i].mz, b[0].peaks()[i].mz, 1e-3);
}

// ---------- hit reports ----------

TEST(Results, RoundTrip) {
  std::vector<HitRecord> hits;
  hits.push_back({"q0", 1, "prot7", "PEPTIDEK", 'P', 904.4680, 12.345678});
  hits.push_back({"q0", 2, "prot9", "GGGGGGK", 'S', 560.2767, -3.5});
  std::ostringstream out;
  write_hits(out, hits);
  std::istringstream in(out.str());
  const auto back = read_hits(in);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0].query_title, "q0");
  EXPECT_EQ(back[0].rank, 1u);
  EXPECT_EQ(back[0].protein_id, "prot7");
  EXPECT_EQ(back[0].peptide, "PEPTIDEK");
  EXPECT_EQ(back[0].fragment_end, 'P');
  EXPECT_NEAR(back[0].candidate_mass, 904.4680, 1e-3);
  EXPECT_NEAR(back[0].score, 12.345678, 1e-5);
  EXPECT_EQ(back[1].fragment_end, 'S');
}

TEST(Results, RejectsCorruptFiles) {
  std::istringstream bad_header("not a header\n");
  EXPECT_THROW(read_hits(bad_header), IoError);
  std::istringstream bad_fields(
      "query\trank\tprotein\tpeptide\tend\tmass\tscore\nonly\tthree\tfields\n");
  EXPECT_THROW(read_hits(bad_fields), IoError);
}

}  // namespace
}  // namespace msp
