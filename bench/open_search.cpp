// Open-search ablation: exhaustive enumeration vs the fragment-ion-indexed
// candidate source on the identical open/PTM workload, both through the
// Algorithm A ring at the paper's p=16 — measured on the simulated cluster
// clock, whose kernel cost model charges ion builds, prefilter screens, and
// postings scans separately (simmpi/netmodel.hpp). The two sources are
// hit-for-hit identical by construction (DESIGN.md §5i); the ablation is
// aborted if they ever disagree. Results land in BENCH_open.json.
#include <iostream>
#include <string>

#include "bench/common.hpp"
#include "core/algorithm_a.hpp"
#include "util/json.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  msp::Cli cli("bench_open_search",
               "indexed vs exhaustive open-search candidate generation");
  cli.add_int("sequences", 2000, "database size");
  cli.add_int("queries", 64, "query spectra");
  cli.add_int("p", 16, "simulated processor count");
  cli.add_double("open-window-da", 200.0, "open precursor window (Da, each "
                                          "side on top of the tolerance)");
  cli.add_int("votes", 4, "fragment-ion vote gate");
  cli.add_int("seed", 2009, "workload seed");
  cli.add_string("trace-out", "",
                 "write a Chrome trace-event JSON of the indexed run");
  cli.add_string("out", "BENCH_open.json", "JSON output path");
  if (!cli.parse(argc, argv)) return 0;

  const auto sequences = static_cast<std::size_t>(cli.get_int("sequences"));
  const auto query_count = static_cast<std::size_t>(cli.get_int("queries"));
  const int p = static_cast<int>(cli.get_int("p"));

  const msp::bench::Workload workload = msp::bench::make_workload(
      sequences, query_count, static_cast<std::uint64_t>(cli.get_int("seed")));
  const std::string fasta_image = msp::to_fasta_string(workload.db);

  msp::SearchConfig config = msp::bench::bench_config();
  config.open_window_da = cli.get_double("open-window-da");
  config.min_fragment_votes = static_cast<std::size_t>(cli.get_int("votes"));

  const msp::AlgorithmAOptions options;

  // Unlike the paper-table benches, this ablation runs on a contemporary
  // interconnect (~500 MB/s effective per stream) rather than the 2009
  // 22 MB/s TCP testbed: open-search index shipping moves MBs of postings
  // per shard, and on the 2009 wire the ablation would measure the network,
  // not the candidate-generation algorithm it isolates. The exhaustive arm
  // runs on the identical network, so the comparison stays like-for-like.
  msp::sim::NetworkModel network = msp::bench::bench_network();
  network.latency_s = 10e-6;
  network.seconds_per_byte = 2e-9;

  auto run_with = [&](msp::CandidateSourceKind source, bool traced) {
    msp::SearchConfig run_config = config;
    run_config.candidate_source = source;
    msp::sim::Runtime runtime(p, network, msp::bench::bench_compute());
    msp::bench::TraceGate gate(runtime, cli.get_string("trace-out"), traced);
    msp::ParallelRunResult result = msp::run_algorithm_a(
        runtime, fasta_image, workload.queries, run_config, options);
    gate.write(result.report);
    return result;
  };

  const msp::ParallelRunResult exhaustive =
      run_with(msp::CandidateSourceKind::kMassWindow, false);
  const msp::ParallelRunResult indexed =
      run_with(msp::CandidateSourceKind::kFragmentIndex, true);

  if (indexed.hits != exhaustive.hits) {
    std::cerr << "FATAL: open-search sources disagree — ablation invalid\n";
    return 1;
  }

  const double exhaustive_seconds = exhaustive.report.total_time();
  const double indexed_seconds = indexed.report.total_time();
  const double speedup = exhaustive_seconds / indexed_seconds;
  const std::uint64_t ions_exhaustive = exhaustive.report.sum_counter("ions");
  const std::uint64_t ions_indexed = indexed.report.sum_counter("ions");
  const std::uint64_t postings = indexed.report.sum_counter("postings");

  msp::Table table({"source", "sim run (s)", "speedup", "ions built",
                    "postings scanned", "candidates scored"});
  table.add_row({"exhaustive", msp::Table::cell(exhaustive_seconds), "1.00",
                 std::to_string(ions_exhaustive), "0",
                 std::to_string(exhaustive.candidates)});
  table.add_row({"indexed", msp::Table::cell(indexed_seconds),
                 msp::Table::cell(speedup), std::to_string(ions_indexed),
                 std::to_string(postings), std::to_string(indexed.candidates)});

  std::cout << "== Open-search ablation (" << sequences << " sequences, "
            << query_count << " queries, +-" << config.open_window_da
            << " Da open window, vote gate " << config.min_fragment_votes
            << ", p=" << p << ") ==\n";
  table.print(std::cout);
  std::cout << "hits: bit-identical across sources ("
            << indexed.report.sum_counter("open_index_miss_queries")
            << " index-miss queries)\n";

  msp::JsonWriter json;
  json.begin_object();
  json.field("sequences", sequences);
  json.field("queries", query_count);
  json.field("p", p);
  json.field("open_window_da", config.open_window_da);
  json.field("vote_gate", config.min_fragment_votes);
  json.field("candidates_scored", indexed.candidates);
  json.field("ions_built_exhaustive", ions_exhaustive);
  json.field("ions_built_indexed", ions_indexed);
  json.field("postings_scanned", postings);
  json.field("index_miss_queries",
             indexed.report.sum_counter("open_index_miss_queries"));
  json.field("exhaustive_seconds", exhaustive_seconds);
  json.field("indexed_seconds", indexed_seconds);
  json.field("speedup", speedup);
  json.end_object();
  msp::bench::write_json_summary(cli.get_string("out"), json.str());
  return 0;
}
