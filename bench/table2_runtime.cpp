// Table II reproduction: run-time of Algorithm A for various database and
// processor sizes, on the simulated cluster (virtual seconds).
//
// Paper shape to check (their Table II, 1K..2.65M rows × p = 1..128):
//   * within a column, run-time grows ~linearly with database size;
//   * within a row, run-time ~halves per doubling of p for large inputs;
//   * small inputs stop scaling at large p (latency/overhead-bound — the
//     paper's footnote 1: "for input sizes < 16K the algorithm scales only
//     until 8 processors").
// Also prints the residual-communication/computation ratio the paper
// reports as 0.36 ± 0.11 for p > 2.
#include <iostream>

#include "bench/common.hpp"
#include "core/algorithm_a.hpp"
#include "util/stats.hpp"
#include "util/str.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  msp::Cli cli("bench_table2_runtime",
               "Table II: Algorithm A run-time vs database and processor size");
  msp::bench::add_common_options(cli);
  cli.add_string("sizes", "1000,2000,4000,8000,16000",
                 "database sizes (sequence counts)");
  if (!cli.parse(argc, argv)) return 0;

  const auto sizes = cli.get_int_list("sizes");
  const auto procs = cli.get_int_list("procs");
  const auto query_count = static_cast<std::size_t>(cli.get_int("queries"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  const std::size_t max_size = static_cast<std::size_t>(
      *std::max_element(sizes.begin(), sizes.end()));
  const msp::bench::Workload workload =
      msp::bench::make_workload(max_size, query_count, seed);
  const msp::SearchConfig config = msp::bench::bench_config();

  std::vector<std::string> header{"DB size (n)"};
  for (auto p : procs) header.push_back("p=" + std::to_string(p));
  msp::Table table(header);

  msp::Accumulator residual_ratio;  // over p > 2 runs, as in the paper
  std::vector<double> col_sizes, col_times;  // linearity check at max p

  for (auto size : sizes) {
    const std::string image =
        workload.image_of_first(static_cast<std::size_t>(size));
    std::vector<std::string> row{msp::group_digits(
        static_cast<std::uint64_t>(size))};
    for (auto p : procs) {
      const msp::sim::Runtime runtime(static_cast<int>(p),
                                      msp::bench::bench_network(),
                                      msp::bench::bench_compute());
      const msp::ParallelRunResult result =
          msp::run_algorithm_a(runtime, image, workload.queries, config);
      const double seconds = result.report.total_time();
      row.push_back(msp::Table::cell(seconds));
      if (p > 2) {
        for (const auto& rank : result.report.ranks) {
          if (rank.compute_seconds > 0.0)
            residual_ratio.add(
                (rank.residual_comm_seconds + rank.sync_wait_seconds) /
                rank.compute_seconds);
        }
      }
      if (p == procs.back()) {
        col_sizes.push_back(static_cast<double>(size));
        col_times.push_back(seconds);
      }
    }
    table.add_row(std::move(row));
  }

  std::cout << "== Table II: Algorithm A run-time (simulated seconds), "
            << query_count << " queries ==\n";
  table.print(std::cout);

  if (col_sizes.size() >= 2) {
    const msp::LinearFit fit = msp::fit_linear(col_sizes, col_times);
    std::cout << "\nlinearity in DB size at p=" << procs.back()
              << ": R^2 = " << msp::Table::cell(fit.r_squared, 4)
              << " (paper: \"run-time scales linearly with the database "
                 "size\")\n";
  } else {
    std::cout << "\n(single database size: linearity fit skipped)\n";
  }
  std::cout << "residual-communication/computation ratio for p > 2: "
            << msp::Table::cell(residual_ratio.mean(), 2) << " +/- "
            << msp::Table::cell(residual_ratio.stddev(), 2)
            << " (paper: 0.36 +/- 0.11)\n";
  return 0;
}
