// Wall-clock timer for host-side bench measurements. Algorithm timing in
// the parallel engine uses simmpi's VirtualClock instead, which is
// deterministic; this timer lives under bench/ (not src/) because the
// mspar-no-wall-clock tidy check bans host clocks from engine code.
#pragma once

#include <chrono>

namespace msp {

class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace msp
