// Online serving latency sweep: arrival rate × dispatch mode.
//
// The one-shot benches answer "how fast does p chew a fixed workload"; this
// bench answers the serving question: at a given offered load (queries per
// virtual second), what throughput does the service sustain and what
// completion latency do queries see? It sweeps the arrival rate against
// three dispatch policies —
//   naive   batch-at-a-time: a closed batch owns the ring for a full p-step
//           rotation; the next batch waits (the per-batch comm floor),
//   multi   continuous ring: every in-flight batch is scored during the
//           same rotation, amortizing one shard fetch + one fence per step
//           over all of them,
//   routed  multi plus mass-aware shard routing: the global shard mass map
//           skips ring steps whose shard provably holds no candidate for
//           any in-flight block (constant decision cost, no fetch, no
//           scoring) —
// and emits BENCH_serve.json with per-cell throughput, p50/p95/p99
// virtual-clock completion latency, and the router's audit trail
// (steps_visited / steps_skipped per batch, so the skip-ratio column can be
// re-derived from the per-batch rows), plus a head-to-head block at the
// saturating rate. The default precursor window is narrow (--tolerance),
// the regime mass routing exists for; hits are bit-identical across modes.
// All numbers are deterministic: the same invocation writes byte-identical
// JSON on every machine and kernel_threads setting.
#include <algorithm>
#include <iostream>

#include "bench/common.hpp"
#include "serve/service.hpp"
#include "util/json.hpp"
#include "util/table.hpp"

namespace {

struct Mode {
  const char* name;
  msp::serve::DispatchMode dispatch;
  bool mass_routing;
};

}  // namespace

int main(int argc, char** argv) {
  msp::Cli cli("bench_serve_latency",
               "online service: arrival rate x batch policy latency sweep");
  msp::bench::add_common_options(cli);
  cli.add_int("p", 16, "simulated ranks (the service runs on one ring)");
  cli.add_int("sequences", 4000, "database size (proteins)");
  cli.add_string("rates", "50,100,200,400",
                 "comma-separated arrival rates (queries per virtual second)");
  cli.add_string("arrival", "poisson",
                 "arrival process: uniform|poisson|burst");
  cli.add_int("batch", 8, "batcher size-close threshold (queries)");
  cli.add_double("wait-ms", 20.0, "batcher deadline close (virtual ms)");
  cli.add_int("outstanding", 512, "admission cap (queued + in-flight queries)");
  cli.add_string("overload", "delay", "overload policy: shed|delay");
  cli.add_double("tolerance", 0.05,
                 "precursor window half-width in Da (narrow by default — "
                 "the routing regime; pass 3.0 for the wide-window config "
                 "of the batch benches)");
  cli.add_string("out", "BENCH_serve.json", "JSON output path");
  if (!cli.parse(argc, argv)) return 0;

  const int p = static_cast<int>(cli.get_int("p"));
  const auto rates = cli.get_int_list("rates");
  const auto query_count = static_cast<std::size_t>(cli.get_int("queries"));
  const msp::bench::Workload workload = msp::bench::make_workload(
      static_cast<std::size_t>(cli.get_int("sequences")), query_count,
      static_cast<std::uint64_t>(cli.get_int("seed")));
  const std::string image = workload.image_of_first(
      static_cast<std::size_t>(cli.get_int("sequences")));
  msp::SearchConfig config = msp::bench::bench_config();
  config.tolerance_da = cli.get_double("tolerance");

  msp::serve::ServiceOptions base;
  base.arrivals.kind =
      msp::serve::arrival_kind_from_name(cli.get_string("arrival"));
  base.arrivals.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  base.batch.max_batch = static_cast<std::size_t>(cli.get_int("batch"));
  base.batch.max_wait_s = cli.get_double("wait-ms") * 1e-3;
  base.admission.max_outstanding =
      static_cast<std::size_t>(cli.get_int("outstanding"));
  base.admission.overload =
      msp::serve::overload_policy_from_name(cli.get_string("overload"));

  const Mode modes[] = {
      {"naive", msp::serve::DispatchMode::kBatchAtATime, false},
      {"multi", msp::serve::DispatchMode::kMultiBatchRing, false},
      {"routed", msp::serve::DispatchMode::kMultiBatchRing, true},
  };
  constexpr int kModeCount = 3;

  msp::Table table({"rate (q/s)", "mode", "done", "shed", "steps", "skip%",
                    "thr (q/s)", "p50 (s)", "p95 (s)", "p99 (s)"});
  msp::JsonWriter json;
  json.begin_object();
  json.field("p", p);
  json.field("queries", query_count);
  json.field("arrival", cli.get_string("arrival"));
  json.field("batch_max", base.batch.max_batch);
  json.field("batch_wait_s", base.batch.max_wait_s);
  json.field("max_outstanding", base.admission.max_outstanding);
  json.field("overload", cli.get_string("overload"));
  json.field("tolerance_da", config.tolerance_da);
  json.key("cells").begin_array();

  // Per-(mode, top rate) results for the head-to-head summary.
  msp::serve::ServiceResult head_to_head[kModeCount];
  for (const auto rate : rates) {
    for (int m = 0; m < kModeCount; ++m) {
      msp::serve::ServiceOptions options = base;
      options.arrivals.rate_qps = static_cast<double>(rate);
      options.mode = modes[m].dispatch;
      options.mass_routing = modes[m].mass_routing;
      msp::sim::Runtime runtime(p, msp::bench::bench_network(),
                                msp::bench::bench_compute());
      // Trace the routed run at the saturating (last) rate.
      msp::bench::TraceGate trace(runtime, cli.get_string("trace-out"),
                                  rate == rates.back() && m == kModeCount - 1);
      msp::serve::ServiceResult result = msp::serve::run_service(
          runtime, image, workload.queries, config, options);
      trace.write(result.report);

      table.add_row({std::to_string(rate), modes[m].name,
                     std::to_string(result.completed),
                     std::to_string(result.shed),
                     std::to_string(result.ring_steps),
                     msp::Table::cell(100.0 * result.skip_ratio, 1),
                     msp::Table::cell(result.throughput_qps, 1),
                     msp::Table::cell(result.latency.p50),
                     msp::Table::cell(result.latency.p95),
                     msp::Table::cell(result.latency.p99)});

      json.begin_object();
      json.field("rate_qps", static_cast<std::int64_t>(rate));
      json.field("mode", modes[m].name);
      json.field("mass_routing", modes[m].mass_routing);
      json.field("completed", result.completed);
      json.field("shed", result.shed);
      json.field("batches", result.batches);
      json.field("ring_steps", result.ring_steps);
      json.field("steps_visited", result.steps_visited);
      json.field("steps_skipped", result.steps_skipped);
      json.field("skip_ratio", result.skip_ratio);
      json.field("makespan_s", result.makespan_s);
      json.field("throughput_qps", result.throughput_qps);
      json.key("latency").begin_object();
      json.field("mean_s", result.latency.mean);
      json.field("p50_s", result.latency.p50);
      json.field("p95_s", result.latency.p95);
      json.field("p99_s", result.latency.p99);
      json.field("max_s", result.latency.max);
      json.end_object();
      // The audit trail the aggregate columns are derived from: one row
      // per published batch, so skip_ratio is re-checkable from the JSON.
      json.key("batch_routes").begin_array();
      for (const msp::serve::BatchRouteStats& route : result.batch_routes) {
        json.begin_object();
        json.field("batch_id", route.batch_id);
        json.field("steps_visited", route.steps_visited);
        json.field("steps_skipped", route.steps_skipped);
        json.end_object();
      }
      json.end_array();
      json.end_object();

      if (rate == rates.back()) head_to_head[m] = std::move(result);
    }
  }
  json.end_array();

  // Head-to-head at the saturating rate: the continuous ring must sustain a
  // multiple of the naive throughput, and mass routing a multiple of the
  // unrouted ring — the amortization and routing claims this bench exists
  // to measure. Hits are bit-identical across all three.
  const msp::serve::ServiceResult& naive = head_to_head[0];
  const msp::serve::ServiceResult& multi = head_to_head[1];
  const msp::serve::ServiceResult& routed = head_to_head[2];
  const double ratio = naive.throughput_qps > 0.0
                           ? multi.throughput_qps / naive.throughput_qps
                           : 0.0;
  const double routed_ratio = multi.throughput_qps > 0.0
                                  ? routed.throughput_qps / multi.throughput_qps
                                  : 0.0;
  json.key("sustained").begin_object();
  json.field("rate_qps", static_cast<std::int64_t>(rates.back()));
  json.field("naive_qps", naive.throughput_qps);
  json.field("multi_qps", multi.throughput_qps);
  json.field("routed_qps", routed.throughput_qps);
  json.field("throughput_ratio", ratio);
  json.field("routed_vs_multi", routed_ratio);
  json.field("skip_ratio", routed.skip_ratio);
  json.field("steps_visited", routed.steps_visited);
  json.field("steps_skipped", routed.steps_skipped);
  json.field("naive_p99_s", naive.latency.p99);
  json.field("multi_p99_s", multi.latency.p99);
  json.field("routed_p99_s", routed.latency.p99);
  json.field("multi_p99_no_worse", multi.latency.p99 <= naive.latency.p99);
  json.field("routed_p99_no_worse", routed.latency.p99 <= multi.latency.p99);
  json.end_object();
  json.end_object();

  std::cout << "== Online serving: arrival rate x dispatch mode (p = " << p
            << ", tolerance " << config.tolerance_da << " Da) ==\n";
  table.print(std::cout);
  std::cout << "sustained at " << rates.back()
            << " q/s: multi " << msp::Table::cell(multi.throughput_qps, 1)
            << " q/s vs naive " << msp::Table::cell(naive.throughput_qps, 1)
            << " q/s (" << msp::Table::cell(ratio, 2) << "x); routed "
            << msp::Table::cell(routed.throughput_qps, 1) << " q/s ("
            << msp::Table::cell(routed_ratio, 2) << "x multi, skip ratio "
            << msp::Table::cell(routed.skip_ratio, 2) << "), p99 "
            << msp::Table::cell(routed.latency.p99) << " s\n";

  msp::bench::write_json_summary(cli.get_string("out"), json.str());
  return 0;
}
