// Candidate-store bench — the paper's Discussion, second proposal: store
// candidates (not sequences) in memory and communicate them on demand;
// "this strategy could drastically reduce the overall computation time",
// made feasible by Algorithm A's space-optimality, with Algorithm B's
// sorting machinery doing the heavy lifting (our store build IS a parallel
// counting sort of candidates by mass).
//
// Sweep over p in the paper's regime (dense query set): run-time, compute
// total, transported bytes and per-rank memory for Algorithm A vs the
// candidate store.
#include <iostream>

#include "bench/common.hpp"
#include "core/algorithm_a.hpp"
#include "core/candidate_store.hpp"
#include "util/str.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  msp::Cli cli("bench_candidate_store",
               "database transport (A) vs on-demand candidate store");
  msp::bench::add_common_options(cli);
  cli.add_int("sequences", 4000, "database size");
  cli.add_int("dense-queries", 600,
              "queries (dense in mass, the regime where the store pays off)");
  if (!cli.parse(argc, argv)) return 0;

  const auto sequences = static_cast<std::size_t>(cli.get_int("sequences"));
  const auto query_count = static_cast<std::size_t>(cli.get_int("dense-queries"));
  auto procs = cli.get_int_list("procs");
  std::erase_if(procs, [](std::int64_t p) { return p < 2 || p > 64; });

  const msp::bench::Workload workload = msp::bench::make_workload(
      sequences, query_count, static_cast<std::uint64_t>(cli.get_int("seed")));
  const std::string image = workload.image_of_first(sequences);
  const msp::SearchConfig config = msp::bench::bench_config();

  msp::Table table({"p", "A time (s)", "store time (s)", "A compute (s)",
                    "store compute (s)", "store build (s)", "store mem/rank"});
  for (auto p : procs) {
    const msp::sim::Runtime runtime(static_cast<int>(p),
                                    msp::bench::bench_network(),
                                    msp::bench::bench_compute());
    const msp::ParallelRunResult a =
        msp::run_algorithm_a(runtime, image, workload.queries, config);
    const msp::CandidateStoreResult store =
        msp::run_candidate_store(runtime, image, workload.queries, config);
    table.add_row({std::to_string(p),
                   msp::Table::cell(a.report.total_time()),
                   msp::Table::cell(store.report.total_time()),
                   msp::Table::cell(a.report.sum_compute()),
                   msp::Table::cell(store.report.sum_compute()),
                   msp::Table::cell(store.build_seconds),
                   msp::format_bytes(store.report.max_peak_memory())});
  }

  std::cout << "== Candidate store vs Algorithm A ("
            << msp::group_digits(sequences) << " sequences, " << query_count
            << " dense queries) ==\n";
  table.print(std::cout);
  std::cout << "expected: the store cuts total compute (generation paid once "
               "per candidate)\nat the price of a larger per-rank footprint — "
               "the trade the paper predicted.\n";
  return 0;
}
