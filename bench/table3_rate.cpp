// Table III reproduction: candidates evaluated per second as a function of
// processor size, for the largest configured database.
//
// Paper (2.65M microbial database):
//   p           8       16      32      64      128
//   cand/sec    41,429  76,057  159,220 271,294 522,331
// Shape to check: aggregate evaluation rate scales ~linearly with p (the
// paper calls this "likely the most interesting performance measure").
#include <iostream>

#include "bench/common.hpp"
#include "core/algorithm_a.hpp"
#include "util/str.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  msp::Cli cli("bench_table3_rate",
               "Table III: candidates evaluated per second vs processor size");
  msp::bench::add_common_options(cli);
  cli.add_int("sequences", 16000, "database size (sequence count)");
  cli.add_int("rate-queries", 300,
              "queries for this bench (heavier than the sweep default so the "
              "rate stays compute-bound through p=128)");
  if (!cli.parse(argc, argv)) return 0;

  const auto query_count = static_cast<std::size_t>(cli.get_int("rate-queries"));
  const auto sequences = static_cast<std::size_t>(cli.get_int("sequences"));
  auto procs = cli.get_int_list("procs");
  std::erase_if(procs, [](std::int64_t p) { return p < 8; });  // paper starts at 8

  const msp::bench::Workload workload = msp::bench::make_workload(
      sequences, query_count, static_cast<std::uint64_t>(cli.get_int("seed")));
  const std::string image = workload.image_of_first(sequences);
  const msp::SearchConfig config = msp::bench::bench_config();

  msp::Table table({"p", "run-time (s)", "candidates", "candidates/sec",
                    "scaling vs p=8"});
  double rate_p8 = 0.0;
  for (auto p : procs) {
    const msp::sim::Runtime runtime(static_cast<int>(p),
                                    msp::bench::bench_network(),
                                    msp::bench::bench_compute());
    const msp::ParallelRunResult result =
        msp::run_algorithm_a(runtime, image, workload.queries, config);
    const double seconds = result.report.total_time();
    const double rate = static_cast<double>(result.candidates) / seconds;
    if (rate_p8 == 0.0) rate_p8 = rate;
    table.add_row({std::to_string(p), msp::Table::cell(seconds),
                   msp::group_digits(result.candidates),
                   msp::group_digits(static_cast<std::uint64_t>(rate)),
                   msp::Table::cell(rate / rate_p8) + "x"});
  }

  std::cout << "== Table III: candidate evaluation rate ("
            << msp::group_digits(sequences) << "-sequence database, "
            << query_count << " queries) ==\n";
  table.print(std::cout);
  std::cout << "paper: 41,429 -> 522,331 cand/s from p=8 to p=128 "
               "(12.6x over 16x more processors)\n";
  return 0;
}
