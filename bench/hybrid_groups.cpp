// Sub-group extension bench (the paper's Discussion: "For medium range
// inputs ... it could be worth exploring an extension of our approach in
// which processors can divide themselves into smaller sub-groups, where
// the database is partitioned within each sub-group and the query set is
// partitioned across sub-groups").
//
// Sweep the group count g at fixed p: g=1 is Algorithm A, g=p has the
// baseline's memory profile. The trade-off: larger g shortens the ring
// (fewer fenced iterations, less latency) but replicates more of the
// database per rank.
#include <iostream>

#include "bench/common.hpp"
#include "core/algorithm_hybrid.hpp"
#include "util/str.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  msp::Cli cli("bench_hybrid_groups",
               "sub-group hybrid: run-time vs memory across group counts");
  msp::bench::add_common_options(cli);
  cli.add_int("sequences", 8000, "database size");
  cli.add_int("p", 32, "processor count for the sweep");
  if (!cli.parse(argc, argv)) return 0;

  const auto query_count = static_cast<std::size_t>(cli.get_int("queries"));
  const auto sequences = static_cast<std::size_t>(cli.get_int("sequences"));
  const int p = static_cast<int>(cli.get_int("p"));

  const msp::bench::Workload workload = msp::bench::make_workload(
      sequences, query_count, static_cast<std::uint64_t>(cli.get_int("seed")));
  const std::string image = workload.image_of_first(sequences);
  const msp::SearchConfig config = msp::bench::bench_config();

  msp::Table table({"groups (g)", "ring length (p/g)", "run-time (s)",
                    "peak memory/rank", "residual+sync / compute"});
  for (int g = 1; g <= p; g *= 2) {
    if (p % g != 0) continue;
    msp::sim::Runtime runtime(p, msp::bench::bench_network(),
                              msp::bench::bench_compute());
    msp::bench::TraceGate trace(runtime, cli.get_string("trace-out"), g == 1);
    msp::HybridOptions options;
    options.groups = g;
    const msp::HybridResult result = msp::run_algorithm_hybrid(
        runtime, image, workload.queries, config, options);
    trace.write(result.report);
    table.add_row({std::to_string(g), std::to_string(p / g),
                   msp::Table::cell(result.report.total_time()),
                   msp::format_bytes(result.report.max_peak_memory()),
                   msp::Table::cell(result.report.mean_residual_over_compute(),
                                    3)});
  }

  std::cout << "== Sub-group hybrid sweep (p=" << p << ", "
            << msp::group_digits(sequences) << " sequences, " << query_count
            << " queries) ==\n";
  table.print(std::cout);
  std::cout << "g=1 is Algorithm A (minimum memory); g=p replicates the "
               "database (baseline memory).\nThe sweet spot for medium "
               "inputs sits in between — the paper's conjecture.\n";
  return 0;
}
