// Kernel ablation and wall-clock regression harness: the database-walking
// reference kernel vs. the candidate-centric indexed kernel, each under the
// scalar and (when compiled) vectorized scoring backends, on identical
// shards, measured in real (host) wall-clock time — unlike the table benches
// this is about the implementation, not the simulated cluster. Every run
// must agree hit-for-hit across kernels and backends (the bit-identity
// contract of scoring/kernel.hpp); a disagreement makes the ablation
// invalid and the bench fails.
//
// Results append to a trajectory file (BENCH_kernel.json, a JSON array with
// one entry per run). CI replays the bench and gates on the RATIOS — the
// indexed-vs-reference speedup and the simd-vs-scalar backend ratio — which
// transfer across machines, unlike absolute wall-clock; see
// tools/check_kernel_bench.py and EXPERIMENTS.md.
#include <fstream>
#include <iostream>
#include <limits>
#include <sstream>
#include <vector>

#include "bench/common.hpp"
#include "bench/wall_timer.hpp"
#include "core/candidate_index.hpp"
#include "core/search_engine.hpp"
#include "scoring/kernel.hpp"
#include "spectra/theoretical.hpp"
#include "util/json.hpp"
#include "util/table.hpp"

namespace {

struct TimedRun {
  double seconds = 0.0;
  msp::ShardSearchStats stats;
  msp::QueryHits hits;
};

template <typename Search>
TimedRun best_of(int repeats, const msp::SearchEngine& engine,
                 std::size_t query_count, Search&& search) {
  TimedRun best;
  best.seconds = std::numeric_limits<double>::infinity();
  for (int r = 0; r < repeats; ++r) {
    std::vector<msp::TopK<msp::Hit>> tops = engine.make_tops(query_count);
    const msp::WallTimer timer;
    const msp::ShardSearchStats stats = search(tops);
    const double elapsed = timer.seconds();
    if (elapsed < best.seconds) {
      best.seconds = elapsed;
      best.stats = stats;
      best.hits = engine.finalize(tops);
    }
  }
  return best;
}

/// Append `entry` (a JSON object) to the JSON array at `path`, creating the
/// array on first write. Textual append — strip the closing bracket, add the
/// entry — so prior entries pass through byte-identical and the file stays a
/// valid array after every run (the committed baseline entry is entry 0).
void append_trajectory(const std::string& path, const std::string& entry) {
  if (path.empty()) return;
  std::string existing;
  {
    std::ifstream in(path, std::ios::binary);
    if (in)
      existing.assign((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  }
  while (!existing.empty() &&
         (existing.back() == '\n' || existing.back() == ' '))
    existing.pop_back();
  std::ofstream out(path, std::ios::binary);
  MSP_CHECK_MSG(out.good(), "cannot open JSON output " << path);
  if (existing.empty()) {
    out << "[\n" << entry << "\n]\n";
  } else {
    MSP_CHECK_MSG(existing.back() == ']',
                  "trajectory file " << path << " is not a JSON array");
    existing.pop_back();
    while (!existing.empty() &&
           (existing.back() == '\n' || existing.back() == ' '))
      existing.pop_back();
    out << existing << ",\n" << entry << "\n]\n";
  }
  std::cout << "appended to " << path << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  msp::Cli cli("bench_kernel_ablation",
               "reference vs indexed kernel, scalar vs simd backend "
               "(host wall-clock)");
  cli.add_int("sequences", 2500, "database size");
  cli.add_int("queries", 150, "query spectra (searched with 3 charge "
                              "hypotheses each — the multi-hypothesis regime)");
  cli.add_int("repeats", 5, "timing repeats (best-of)");
  cli.add_int("seed", 2009, "workload seed");
  cli.add_string("threads", "1,2,4,8", "kernel_threads sweep");
  cli.add_string("label", "local",
                 "trajectory entry label (CI uses the commit hash)");
  cli.add_string("out", "BENCH_kernel.json",
                 "trajectory JSON array to append to (empty = skip)");
  if (!cli.parse(argc, argv)) return 0;

  const auto sequences = static_cast<std::size_t>(cli.get_int("sequences"));
  const auto query_count = static_cast<std::size_t>(cli.get_int("queries"));
  const int repeats = static_cast<int>(cli.get_int("repeats"));

  const msp::bench::Workload workload = msp::bench::make_workload(
      sequences, query_count, static_cast<std::uint64_t>(cli.get_int("seed")));
  msp::SearchConfig config = msp::bench::bench_config();
  // Charge-hypothesis ambiguity makes candidates match several query
  // entries — the regime where building each candidate's ions once pays.
  config.try_alternate_charges = true;

  const msp::SearchEngine engine(config);
  const msp::PreparedQueries prepared = engine.prepare(workload.queries);

  const msp::WallTimer index_timer;
  const msp::CandidateIndex index =
      msp::CandidateIndex::build(workload.db, config);
  const double index_seconds = index_timer.seconds();

  // The reference kernel under the scalar backend is the baseline every
  // speedup in this bench is measured against.
  msp::set_scoring_backend(msp::ScoringBackend::kScalar);
  const TimedRun reference =
      best_of(repeats, engine, workload.queries.size(), [&](auto& tops) {
        return engine.search_shard_reference(workload.db, prepared, tops);
      });
  const TimedRun indexed_scalar =
      best_of(repeats, engine, workload.queries.size(), [&](auto& tops) {
        return engine.search_shard(workload.db, prepared, tops, nullptr,
                                   &index);
      });

  TimedRun indexed_simd;
  if (msp::simd_compiled()) {
    msp::set_scoring_backend(msp::ScoringBackend::kSimd);
    indexed_simd =
        best_of(repeats, engine, workload.queries.size(), [&](auto& tops) {
          return engine.search_shard(workload.db, prepared, tops, nullptr,
                                     &index);
        });
  }

  // The ablation is only meaningful if every kernel/backend combination
  // agrees hit-for-hit (DESIGN.md §5j's bit-identity contract).
  if (indexed_scalar.hits != reference.hits ||
      indexed_scalar.stats.candidates_evaluated !=
          reference.stats.candidates_evaluated) {
    std::cerr << "FATAL: kernels disagree — ablation invalid\n";
    return 1;
  }
  if (msp::simd_compiled() && indexed_simd.hits != reference.hits) {
    std::cerr << "FATAL: simd backend disagrees with scalar — ablation "
                 "invalid\n";
    return 1;
  }

  const auto per_candidate = [](const msp::ShardSearchStats& stats) {
    const double scored = static_cast<double>(stats.candidates_evaluated +
                                              stats.candidates_prefiltered);
    return scored == 0.0 ? 0.0
                         : static_cast<double>(stats.ions_built) / scored;
  };
  const double fastest_indexed = msp::simd_compiled()
                                     ? indexed_simd.seconds
                                     : indexed_scalar.seconds;
  const double speedup = reference.seconds / fastest_indexed;

  msp::Table table({"kernel", "backend", "threads", "wall (ms)", "speedup",
                    "ions built", "ions/candidate"});
  table.add_row({"reference", "scalar", "1",
                 msp::Table::cell(reference.seconds * 1e3), "1.00",
                 std::to_string(reference.stats.ions_built),
                 msp::Table::cell(per_candidate(reference.stats))});
  table.add_row({"indexed", "scalar", "1",
                 msp::Table::cell(indexed_scalar.seconds * 1e3),
                 msp::Table::cell(reference.seconds / indexed_scalar.seconds),
                 std::to_string(indexed_scalar.stats.ions_built),
                 msp::Table::cell(per_candidate(indexed_scalar.stats))});
  if (msp::simd_compiled())
    table.add_row({"indexed", "simd", "1",
                   msp::Table::cell(indexed_simd.seconds * 1e3),
                   msp::Table::cell(reference.seconds / indexed_simd.seconds),
                   std::to_string(indexed_simd.stats.ions_built),
                   msp::Table::cell(per_candidate(indexed_simd.stats))});

  // Threads sweep under the fastest backend (auto = simd when compiled).
  msp::set_scoring_backend(msp::ScoringBackend::kAuto);
  std::vector<std::pair<std::int64_t, double>> threaded;
  for (const std::int64_t threads : cli.get_int_list("threads")) {
    if (threads <= 1) continue;
    msp::SearchConfig threaded_config = config;
    threaded_config.kernel_threads = static_cast<std::size_t>(threads);
    const msp::SearchEngine threaded_engine(threaded_config);
    const TimedRun run = best_of(
        repeats, threaded_engine, workload.queries.size(), [&](auto& tops) {
          return threaded_engine.search_shard(workload.db, prepared, tops,
                                              nullptr, &index);
        });
    if (run.hits != reference.hits) {
      std::cerr << "FATAL: threaded kernel disagrees at T=" << threads << "\n";
      return 1;
    }
    threaded.emplace_back(threads, run.seconds);
    table.add_row({"indexed", "auto", std::to_string(threads),
                   msp::Table::cell(run.seconds * 1e3),
                   msp::Table::cell(reference.seconds / run.seconds),
                   std::to_string(run.stats.ions_built),
                   msp::Table::cell(per_candidate(run.stats))});
  }

  // Kernel-level throughput: the SIMD-vs-scalar claim measured on the match
  // kernel itself (the end-to-end rows above dilute it with the scalar ion
  // enumeration and model arithmetic around the kernel). The sample is
  // mass-matched (query, ladder) pairs — the pairs the engine actually
  // scores, whose ladder span tracks the query grid — drawn by striding the
  // prepared contexts and each precursor window, and small enough to stay
  // cache-resident (the engine scores each ladder right after building it,
  // so the kernel always runs on warm ladders; sweeping every ladder here
  // would measure DRAM bandwidth instead). The accumulated stats must agree
  // exactly across backends (bit-identity).
  constexpr std::size_t kKernelPairSample = 4096;
  std::vector<std::pair<std::size_t, msp::IonLadder>> pairs;
  pairs.reserve(kKernelPairSample);
  {
    msp::FragmentIonWorkspace workspace;
    const msp::TheoreticalOptions ion_options;
    const std::vector<msp::IndexedCandidate>& entries = index.entries();
    const auto first_at_or_above = [&](double mass) {
      return static_cast<std::size_t>(
          std::lower_bound(entries.begin(), entries.end(), mass,
                           [](const msp::IndexedCandidate& e, double m) {
                             return e.mass < m;
                           }) -
          entries.begin());
    };
    for (std::size_t qi = 0;
         qi < prepared.contexts.size() && pairs.size() < kKernelPairSample;
         qi += 7) {
      const double parent = prepared.contexts[qi].parent_mass();
      const std::size_t lo = first_at_or_above(parent - config.tolerance_da);
      const std::size_t hi = first_at_or_above(parent + config.tolerance_da);
      for (std::size_t c = lo; c < hi && pairs.size() < kKernelPairSample;
           c += 3) {
        const msp::IndexedCandidate& entry = entries[c];
        const msp::Protein& protein = workload.db.proteins[entry.protein];
        const std::string_view peptide =
            std::string_view(protein.residues)
                .substr(entry.offset, entry.length);
        pairs.emplace_back(qi, msp::IonLadder{});
        msp::build_ion_ladder(
            msp::fragment_ions_into(peptide, ion_options, workspace),
            config.bin_width, pairs.back().second);
      }
    }
  }
  struct KernelPass {
    double seconds = std::numeric_limits<double>::infinity();
    double matched_intensity = 0.0;
    std::uint64_t matched = 0;
  };
  const auto kernel_pass = [&](msp::ScoringBackend backend) {
    msp::set_scoring_backend(backend);
    constexpr int kSweeps = 40;  // sweeps per timed repeat (timing stability)
    KernelPass best;
    for (int r = 0; r < repeats; ++r) {
      KernelPass pass;
      pass.seconds = 0.0;
      const msp::WallTimer timer;
      for (int sweep = 0; sweep < kSweeps; ++sweep)
        for (const auto& [qi, ladder] : pairs) {
          const msp::PeakMatchStats stats =
              msp::match_ladder(prepared.contexts[qi].binned(), ladder);
          pass.matched += stats.matched_b + stats.matched_y;
          pass.matched_intensity += stats.matched_intensity;
        }
      pass.seconds = timer.seconds();
      if (pass.seconds < best.seconds) best = pass;
    }
    return best;
  };
  const KernelPass kernel_scalar = kernel_pass(msp::ScoringBackend::kScalar);
  KernelPass kernel_simd;
  if (msp::simd_compiled()) {
    kernel_simd = kernel_pass(msp::ScoringBackend::kSimd);
    if (kernel_simd.matched != kernel_scalar.matched ||
        kernel_simd.matched_intensity != kernel_scalar.matched_intensity) {
      std::cerr << "FATAL: kernel backends disagree on match stats\n";
      return 1;
    }
  }
  msp::set_scoring_backend(msp::ScoringBackend::kAuto);
  const double kernel_ratio =
      msp::simd_compiled() ? kernel_scalar.seconds / kernel_simd.seconds : 1.0;

  std::cout << "== Kernel ablation (" << sequences << " sequences, "
            << query_count << " queries x " << config.charge_hypotheses.size()
            << " charge hypotheses, simd "
            << (msp::simd_compiled() ? "compiled" : "not compiled")
            << ") ==\n";
  table.print(std::cout);
  std::cout << "index build: " << index_seconds * 1e3
            << " ms (paid once per shard at pack time)\n";
  std::cout << "match kernel (" << pairs.size()
            << " mass-matched query/ladder pairs): scalar "
            << kernel_scalar.seconds * 1e3 << " ms";
  if (msp::simd_compiled())
    std::cout << ", simd " << kernel_simd.seconds * 1e3 << " ms ("
              << kernel_ratio << "x)";
  std::cout << "\n";

  msp::JsonWriter json;
  json.begin_object();
  json.field("label", cli.get_string("label"));
  json.field("sequences", sequences);
  json.field("queries", query_count);
  json.field("simd_compiled", msp::simd_compiled());
  json.field("candidates_evaluated",
             indexed_scalar.stats.candidates_evaluated);
  json.field("candidates_prefiltered",
             indexed_scalar.stats.candidates_prefiltered);
  json.field("ions_built_reference", reference.stats.ions_built);
  json.field("ions_built_indexed", indexed_scalar.stats.ions_built);
  json.field("ions_per_candidate_reference", per_candidate(reference.stats));
  json.field("ions_per_candidate_indexed",
             per_candidate(indexed_scalar.stats));
  json.field("index_build_seconds", index_seconds);
  json.field("reference_seconds", reference.seconds);
  json.field("indexed_scalar_seconds", indexed_scalar.seconds);
  json.field("speedup_indexed_scalar",
             reference.seconds / indexed_scalar.seconds);
  if (msp::simd_compiled()) {
    json.field("indexed_simd_seconds", indexed_simd.seconds);
    json.field("speedup_indexed_simd",
               reference.seconds / indexed_simd.seconds);
    json.field("simd_over_scalar",
               indexed_scalar.seconds / indexed_simd.seconds);
  }
  json.field("speedup", speedup);
  json.field("kernel_scalar_seconds", kernel_scalar.seconds);
  if (msp::simd_compiled()) {
    json.field("kernel_simd_seconds", kernel_simd.seconds);
    json.field("kernel_simd_over_scalar", kernel_ratio);
  }
  for (const auto& [threads, seconds] : threaded) {
    json.field("indexed_seconds_t" + std::to_string(threads), seconds);
    json.field("speedup_t" + std::to_string(threads),
               reference.seconds / seconds);
  }
  json.end_object();

  // Indent the entry one level so the trajectory array reads naturally.
  std::istringstream lines(json.str());
  std::ostringstream indented;
  std::string line;
  bool first = true;
  while (std::getline(lines, line)) {
    if (!first) indented << "\n";
    indented << "  " << line;
    first = false;
  }
  append_trajectory(cli.get_string("out"), indented.str());
  return 0;
}
