// Kernel ablation: the database-walking reference kernel vs. the
// candidate-centric indexed kernel on identical shards, measured in real
// (host) wall-clock time — unlike the table benches this is about the
// implementation, not the simulated cluster. Reports ions built per
// candidate evaluated (the amortization the shared fragment-ion workspace
// buys) and the wall-clock speedup, sweeping kernel_threads on top. Results
// land in a JSON file (BENCH_kernel.json) for CI trend tracking.
#include <chrono>
#include <fstream>
#include <iostream>
#include <limits>
#include <vector>

#include "bench/common.hpp"
#include "core/candidate_index.hpp"
#include "core/search_engine.hpp"
#include "util/json.hpp"
#include "util/table.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct TimedRun {
  double seconds = 0.0;
  msp::ShardSearchStats stats;
  msp::QueryHits hits;
};

template <typename Search>
TimedRun best_of(int repeats, const msp::SearchEngine& engine,
                 std::size_t query_count, Search&& search) {
  TimedRun best;
  best.seconds = std::numeric_limits<double>::infinity();
  for (int r = 0; r < repeats; ++r) {
    std::vector<msp::TopK<msp::Hit>> tops = engine.make_tops(query_count);
    const Clock::time_point start = Clock::now();
    const msp::ShardSearchStats stats = search(tops);
    const double elapsed = seconds_since(start);
    if (elapsed < best.seconds) {
      best.seconds = elapsed;
      best.stats = stats;
      best.hits = engine.finalize(tops);
    }
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  msp::Cli cli("bench_kernel_ablation",
               "reference vs candidate-centric scoring kernel (host time)");
  cli.add_int("sequences", 2500, "database size");
  cli.add_int("queries", 150, "query spectra (searched with 3 charge "
                              "hypotheses each — the multi-hypothesis regime)");
  cli.add_int("repeats", 5, "timing repeats (best-of)");
  cli.add_int("seed", 2009, "workload seed");
  cli.add_string("threads", "1,2,4,8", "kernel_threads sweep");
  cli.add_string("out", "BENCH_kernel.json", "JSON output path");
  if (!cli.parse(argc, argv)) return 0;

  const auto sequences = static_cast<std::size_t>(cli.get_int("sequences"));
  const auto query_count = static_cast<std::size_t>(cli.get_int("queries"));
  const int repeats = static_cast<int>(cli.get_int("repeats"));

  const msp::bench::Workload workload = msp::bench::make_workload(
      sequences, query_count, static_cast<std::uint64_t>(cli.get_int("seed")));
  msp::SearchConfig config = msp::bench::bench_config();
  // Charge-hypothesis ambiguity makes candidates match several query
  // entries — the regime where building each candidate's ions once pays.
  config.try_alternate_charges = true;

  const msp::SearchEngine engine(config);
  const msp::PreparedQueries prepared = engine.prepare(workload.queries);

  const Clock::time_point index_start = Clock::now();
  const msp::CandidateIndex index =
      msp::CandidateIndex::build(workload.db, config);
  const double index_seconds = seconds_since(index_start);

  const TimedRun reference =
      best_of(repeats, engine, workload.queries.size(), [&](auto& tops) {
        return engine.search_shard_reference(workload.db, prepared, tops);
      });
  const TimedRun indexed =
      best_of(repeats, engine, workload.queries.size(), [&](auto& tops) {
        return engine.search_shard(workload.db, prepared, tops, nullptr,
                                   &index);
      });

  // The ablation is only meaningful if the two kernels agree hit-for-hit.
  if (indexed.hits != reference.hits ||
      indexed.stats.candidates_evaluated !=
          reference.stats.candidates_evaluated) {
    std::cerr << "FATAL: kernels disagree — ablation invalid\n";
    return 1;
  }

  const auto per_candidate = [](const msp::ShardSearchStats& stats) {
    const double scored = static_cast<double>(stats.candidates_evaluated +
                                              stats.candidates_prefiltered);
    return scored == 0.0 ? 0.0
                         : static_cast<double>(stats.ions_built) / scored;
  };
  const double speedup = reference.seconds / indexed.seconds;

  msp::Table table({"kernel", "threads", "wall (ms)", "speedup",
                    "ions built", "ions/candidate"});
  table.add_row({"reference", "1", msp::Table::cell(reference.seconds * 1e3),
                 "1.00", std::to_string(reference.stats.ions_built),
                 msp::Table::cell(per_candidate(reference.stats))});
  table.add_row({"indexed", "1", msp::Table::cell(indexed.seconds * 1e3),
                 msp::Table::cell(speedup),
                 std::to_string(indexed.stats.ions_built),
                 msp::Table::cell(per_candidate(indexed.stats))});

  std::vector<std::pair<std::int64_t, double>> threaded;
  for (const std::int64_t threads : cli.get_int_list("threads")) {
    if (threads <= 1) continue;
    msp::SearchConfig threaded_config = config;
    threaded_config.kernel_threads = static_cast<std::size_t>(threads);
    const msp::SearchEngine threaded_engine(threaded_config);
    const TimedRun run = best_of(
        repeats, threaded_engine, workload.queries.size(), [&](auto& tops) {
          return threaded_engine.search_shard(workload.db, prepared, tops,
                                              nullptr, &index);
        });
    if (run.hits != reference.hits) {
      std::cerr << "FATAL: threaded kernel disagrees at T=" << threads << "\n";
      return 1;
    }
    threaded.emplace_back(threads, run.seconds);
    table.add_row({"indexed", std::to_string(threads),
                   msp::Table::cell(run.seconds * 1e3),
                   msp::Table::cell(reference.seconds / run.seconds),
                   std::to_string(run.stats.ions_built),
                   msp::Table::cell(per_candidate(run.stats))});
  }

  std::cout << "== Kernel ablation (" << sequences << " sequences, "
            << query_count << " queries x " << config.charge_hypotheses.size()
            << " charge hypotheses) ==\n";
  table.print(std::cout);
  std::cout << "index build: " << index_seconds * 1e3
            << " ms (paid once per shard at pack time)\n";

  msp::JsonWriter json;
  json.begin_object();
  json.field("sequences", sequences);
  json.field("queries", query_count);
  json.field("candidates_evaluated", indexed.stats.candidates_evaluated);
  json.field("candidates_prefiltered", indexed.stats.candidates_prefiltered);
  json.field("ions_built_reference", reference.stats.ions_built);
  json.field("ions_built_indexed", indexed.stats.ions_built);
  json.field("ions_per_candidate_reference", per_candidate(reference.stats));
  json.field("ions_per_candidate_indexed", per_candidate(indexed.stats));
  json.field("index_build_seconds", index_seconds);
  json.field("reference_seconds", reference.seconds);
  json.field("indexed_seconds", indexed.seconds);
  json.field("speedup", speedup);
  for (const auto& [threads, seconds] : threaded) {
    json.field("indexed_seconds_t" + std::to_string(threads), seconds);
    json.field("speedup_t" + std::to_string(threads),
               reference.seconds / seconds);
  }
  json.end_object();
  msp::bench::write_json_summary(cli.get_string("out"), json.str());
  return 0;
}
