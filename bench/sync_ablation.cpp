// Synchronization-model ablation (DESIGN.md design choice: per-iteration
// window fences). 2009-era one-sided MPI over ethernet synchronized ring
// steps with MPI_Win_fence (active target) — a collective that makes every
// rank wait for the slowest each iteration, absorbing load imbalance into
// what the paper calls residual communication. Modern passive-target
// windows need no per-step fence. This bench measures what that design
// choice costs: fenced vs unfenced Algorithm A across p.
#include <iostream>

#include "bench/common.hpp"
#include "core/algorithm_a.hpp"
#include "util/str.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  msp::Cli cli("bench_sync_ablation",
               "Algorithm A: per-iteration fences (2009 active target) vs "
               "fence-free (modern passive target)");
  msp::bench::add_common_options(cli);
  cli.add_int("sequences", 8000, "database size");
  if (!cli.parse(argc, argv)) return 0;

  const auto sequences = static_cast<std::size_t>(cli.get_int("sequences"));
  const auto query_count = static_cast<std::size_t>(cli.get_int("queries"));
  auto procs = cli.get_int_list("procs");
  std::erase_if(procs, [](std::int64_t p) { return p < 2; });

  const msp::bench::Workload workload = msp::bench::make_workload(
      sequences, query_count, static_cast<std::uint64_t>(cli.get_int("seed")));
  const std::string image = workload.image_of_first(sequences);
  const msp::SearchConfig config = msp::bench::bench_config();

  msp::Table table({"p", "fenced (s)", "fence-free (s)", "fence overhead %",
                    "fenced sync wait (s)", "free sync wait (s)"});
  for (auto p : procs) {
    msp::sim::Runtime runtime(static_cast<int>(p),
                              msp::bench::bench_network(),
                              msp::bench::bench_compute());
    msp::bench::TraceGate trace(runtime, cli.get_string("trace-out"),
                                p == procs.back());
    msp::AlgorithmAOptions fenced;
    msp::AlgorithmAOptions free_running;
    free_running.fence_per_iteration = false;
    const auto fenced_run =
        msp::run_algorithm_a(runtime, image, workload.queries, config, fenced);
    trace.write(fenced_run.report);
    const auto free_run = msp::run_algorithm_a(runtime, image, workload.queries,
                                               config, free_running);
    double fenced_sync = 0.0, free_sync = 0.0;
    for (const auto& r : fenced_run.report.ranks)
      fenced_sync += r.sync_wait_seconds;
    for (const auto& r : free_run.report.ranks)
      free_sync += r.sync_wait_seconds;
    const double fenced_s = fenced_run.report.total_time();
    const double free_s = free_run.report.total_time();
    table.add_row({std::to_string(p), msp::Table::cell(fenced_s),
                   msp::Table::cell(free_s),
                   msp::Table::cell(100.0 * (fenced_s - free_s) / free_s, 1),
                   msp::Table::cell(fenced_sync),
                   msp::Table::cell(free_sync)});
  }

  std::cout << "== Synchronization ablation (" << msp::group_digits(sequences)
            << " sequences, " << query_count << " queries) ==\n";
  table.print(std::cout);
  std::cout << "fences turn per-iteration imbalance into wait time (the "
               "bulk-synchronous penalty);\nfence-free ranks only meet at the "
               "final window close.\n";
  return 0;
}
