// Batch-size ablation for the master–worker baseline. Step S2's design
// claim: "since the queries are allocated to worker processors in small
// batches based on demand, the workload is balanced." This bench sweeps
// the batch size from 1 to "all queries at once" and reports run-time and
// the load-imbalance ratio (max worker compute / mean worker compute) —
// the trade between scheduling overhead and balance the paper's choice of
// "small, fixed size batches" navigates.
#include <iostream>

#include "bench/common.hpp"
#include "core/master_worker.hpp"
#include "util/str.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  msp::Cli cli("bench_batch_ablation",
               "master-worker: demand-driven batch size vs load balance");
  msp::bench::add_common_options(cli);
  cli.add_int("sequences", 4000, "database size");
  cli.add_int("p", 8, "processor count (1 master + p-1 workers)");
  if (!cli.parse(argc, argv)) return 0;

  const auto sequences = static_cast<std::size_t>(cli.get_int("sequences"));
  const auto query_count = static_cast<std::size_t>(cli.get_int("queries"));
  const int p = static_cast<int>(cli.get_int("p"));

  const msp::bench::Workload workload = msp::bench::make_workload(
      sequences, query_count, static_cast<std::uint64_t>(cli.get_int("seed")));
  const std::string image = workload.image_of_first(sequences);
  const msp::SearchConfig config = msp::bench::bench_config();

  msp::Table table({"batch size", "run-time (s)", "max/mean worker compute",
                    "batches dealt"});
  for (std::size_t batch :
       {std::size_t{1}, std::size_t{4}, std::size_t{16}, std::size_t{64},
        query_count}) {
    const msp::sim::Runtime runtime(p, msp::bench::bench_network(),
                                    msp::bench::bench_compute());
    msp::MasterWorkerOptions options;
    options.batch_size = batch;
    const msp::ParallelRunResult result = msp::run_master_worker(
        runtime, image, workload.queries, config, options);

    double max_compute = 0.0, total_compute = 0.0;
    int workers = 0;
    for (const auto& rank : result.report.ranks) {
      if (rank.rank == 0) continue;  // master does no scoring
      max_compute = std::max(max_compute, rank.compute_seconds);
      total_compute += rank.compute_seconds;
      ++workers;
    }
    const double mean_compute = total_compute / std::max(1, workers);
    table.add_row({std::to_string(batch),
                   msp::Table::cell(result.report.total_time()),
                   msp::Table::cell(max_compute / std::max(1e-12, mean_compute)),
                   std::to_string((query_count + batch - 1) / batch)});
  }

  std::cout << "== Master-worker batch-size ablation (p=" << p << ", "
            << msp::group_digits(sequences) << " sequences, " << query_count
            << " queries) ==\n";
  table.print(std::cout);
  std::cout << "small batches balance the load (max/mean -> 1); one giant "
               "batch starves all\nbut one worker — the reason for S2's "
               "\"small, fixed size batches\".\n";
  return 0;
}
