// Shared workload construction for the reproduction benches.
//
// Scaling convention (documented per-table in EXPERIMENTS.md): the paper
// ran 1,210 human spectra against up to 2.65M microbial proteins; we default
// to 120 synthetic spectra against up to 16K microbial-like proteins — a
// ~1:10 query scale and ~1:165 database scale — and expose CLI knobs to run
// larger. All timing columns are simulated-cluster virtual seconds (see
// src/simmpi), so the *relationships* between rows/columns are what carries
// over, not the absolute values.
#pragma once

#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "core/config.hpp"
#include "dbgen/protein_gen.hpp"
#include "dbgen/query_gen.hpp"
#include "io/fasta.hpp"
#include "simmpi/netmodel.hpp"
#include "simmpi/runtime.hpp"
#include "simmpi/trace.hpp"
#include "simmpi/trace_validate.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"

namespace msp::bench {

struct Workload {
  ProteinDatabase db;          ///< full-size database (row subsets are prefixes)
  std::vector<Spectrum> queries;

  /// FASTA image of the first `sequences` proteins (the paper's "arbitrary
  /// subsets of sizes 1K, 2K, 4K, ..." are literal prefixes).
  std::string image_of_first(std::size_t sequences) const {
    ProteinDatabase subset;
    subset.proteins.assign(
        db.proteins.begin(),
        db.proteins.begin() +
            static_cast<long>(std::min(sequences, db.proteins.size())));
    return to_fasta_string(subset);
  }
};

inline Workload make_workload(std::size_t sequences, std::size_t query_count,
                              std::uint64_t seed = 2009) {
  Workload workload;
  ProteinGenOptions db_options = microbial_like_options(1.0);
  db_options.sequence_count = sequences;
  db_options.seed = seed;
  workload.db = generate_proteins(db_options);

  QueryGenOptions q_options;
  q_options.query_count = query_count;
  q_options.seed = seed + 1;
  q_options.digest.min_length = 6;
  q_options.digest.max_length = 30;
  workload.queries = spectra_of(generate_queries(workload.db, q_options));
  return workload;
}

/// The search configuration used by every timing bench (MSPolygraph-style
/// likelihood scoring; τ = 10 — the low end of the paper's 10..1000 range).
inline SearchConfig bench_config() {
  SearchConfig config;
  config.tolerance_da = 3.0;
  config.tau = 10;
  config.min_candidate_length = 6;
  config.max_candidate_length = 60;
  config.model = ScoreModel::kLikelihood;
  return config;
}

/// The simulated cluster matching Section III's testbed: 8 ranks per node,
/// gigabit interconnect. μ is calibrated as the *effective* per-stream
/// one-sided transfer rate of a 2009 TCP-based MPI stack (~22 MB/s); see
/// EXPERIMENTS.md for the calibration discussion.
inline sim::NetworkModel bench_network() {
  sim::NetworkModel network;
  network.latency_s = 50e-6;
  network.seconds_per_byte = 4.5e-8;
  network.shm_latency_s = 1e-6;
  network.shm_seconds_per_byte = 0.4e-9;
  network.ranks_per_node = 8;
  network.node_count = 24;  // the paper's 24-node cluster, cyclic placement
  return network;
}

inline sim::ComputeModel bench_compute() { return sim::ComputeModel{}; }

/// Standard CLI options shared by the sweep benches. Benches whose headline
/// metric needs a different amount of work (e.g. enough batch queries to
/// saturate backfill) can override the --queries default.
inline void add_common_options(Cli& cli, std::int64_t default_queries = 120) {
  cli.add_int("queries", default_queries, "number of synthetic query spectra");
  cli.add_string("procs", "1,2,4,8,16,32,64,128",
                 "comma-separated processor counts");
  cli.add_int("seed", 2009, "workload seed");
  cli.add_string("trace-out", "",
                 "write a Chrome trace-event JSON (+ .iterations.csv) of one "
                 "representative traced run to this path");
}

/// `base` with `.tag` inserted before the extension (or appended):
/// trace_path("t.json", "p8") == "t.p8.json". Lets a sweep bench emit one
/// trace file per configuration from a single --trace-out base path.
inline std::string trace_path_with_tag(const std::string& base,
                                       const std::string& tag) {
  const std::size_t dot = base.rfind('.');
  const std::size_t slash = base.rfind('/');
  if (dot == std::string::npos ||
      (slash != std::string::npos && dot < slash))
    return base + "." + tag;
  return base.substr(0, dot) + "." + tag + base.substr(dot);
}

/// Write `report`'s span trace as Chrome trace-event JSON at `path` plus the
/// per-iteration CSV at `path + ".iterations.csv"` and the structured run
/// report at `path + ".report.json"` (RunReport::to_json — the same schema
/// for every bench). The trace is validated before it is written — an
/// export bug fails the bench, not the reader.
inline void write_trace_files(const sim::RunReport& report,
                              const std::string& path) {
  const std::string json = report.to_chrome_trace();
  const std::string problem = sim::validate_chrome_trace(json);
  MSP_CHECK_MSG(problem.empty(), "trace validation failed: " << problem);
  {
    std::ofstream out(path, std::ios::binary);
    MSP_CHECK_MSG(out.good(), "cannot open trace output " << path);
    out << json;
  }
  {
    std::ofstream out(path + ".iterations.csv", std::ios::binary);
    MSP_CHECK_MSG(out.good(),
                  "cannot open trace output " << path << ".iterations.csv");
    out << report.to_iteration_csv();
  }
  {
    std::ofstream out(path + ".report.json", std::ios::binary);
    MSP_CHECK_MSG(out.good(),
                  "cannot open trace output " << path << ".report.json");
    out << report.to_json();
  }
}

/// One-shot trace capture for a sweep bench: arms tracing on `runtime` when
/// --trace-out was given and `representative` holds (each bench picks one
/// cell of its sweep, typically the largest), then write() emits the trace
/// files once and disarms. Replaces the trace_this/enable/disable dance
/// every sweep bench used to hand-roll.
class TraceGate {
 public:
  TraceGate(sim::Runtime& runtime, std::string path, bool representative)
      : runtime_(runtime),
        path_(std::move(path)),
        armed_(!path_.empty() && representative) {
    if (armed_) runtime_.enable_tracing();
  }

  bool armed() const { return armed_; }

  /// Emit the trace files for `report` and disarm (idempotent).
  void write(const sim::RunReport& report) {
    if (!armed_) return;
    write_trace_files(report, path_);
    runtime_.enable_tracing(false);
    armed_ = false;
  }

 private:
  sim::Runtime& runtime_;
  std::string path_;
  bool armed_;
};

/// Write a bench's JSON summary (skipped when `path` is empty) and echo the
/// destination, the convention all sweep benches follow.
inline void write_json_summary(const std::string& path,
                               const std::string& json) {
  if (path.empty()) return;
  std::ofstream out(path, std::ios::binary);
  MSP_CHECK_MSG(out.good(), "cannot open JSON output " << path);
  out << json;
  std::cout << "wrote " << path << "\n";
}

}  // namespace msp::bench
