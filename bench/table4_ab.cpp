// Table IV reproduction: comparative analysis of Algorithms A and B on a
// 20K-sequence database — run-time, speedup, and B's sorting time.
//
// Paper shape to check:
//   * A and B are comparable at small p;
//   * B's sorting time grows with p (1.03s at p=1 → 65.44s at p=64) and
//     eventually dominates, so B's speedup collapses while A's keeps rising;
//   * with complex (human-like) queries every rank needs most shards, so
//     B's sender-group restriction cannot pay for the sort.
// The bench also prints B's mean sender-group size to show *why* (the
// paper's explanation: "each processor had to communicate and fetch
// database segments from a majority of the other p-1 processors").
#include <iostream>

#include "bench/common.hpp"
#include "core/algorithm_a.hpp"
#include "core/algorithm_b.hpp"
#include "util/str.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  msp::Cli cli("bench_table4_ab",
               "Table IV: Algorithm A vs Algorithm B on a 20K database");
  msp::bench::add_common_options(cli);
  cli.add_int("sequences", 20000, "database size (paper: 20K)");
  if (!cli.parse(argc, argv)) return 0;

  const auto query_count = static_cast<std::size_t>(cli.get_int("queries"));
  const auto sequences = static_cast<std::size_t>(cli.get_int("sequences"));
  auto procs = cli.get_int_list("procs");
  std::erase_if(procs, [](std::int64_t p) { return p > 64; });  // paper stops at 64

  const msp::bench::Workload workload = msp::bench::make_workload(
      sequences, query_count, static_cast<std::uint64_t>(cli.get_int("seed")));
  const std::string image = workload.image_of_first(sequences);
  const msp::SearchConfig config = msp::bench::bench_config();

  msp::Table table({"p", "A run-time", "A speedup", "B run-time", "B speedup",
                    "B sort time", "B shards/rank"});
  double a_p1 = 0.0, b_p1 = 0.0;
  for (auto p : procs) {
    const msp::sim::Runtime runtime(static_cast<int>(p),
                                    msp::bench::bench_network(),
                                    msp::bench::bench_compute());
    const msp::ParallelRunResult a =
        msp::run_algorithm_a(runtime, image, workload.queries, config);
    const msp::AlgorithmBResult b =
        msp::run_algorithm_b(runtime, image, workload.queries, config);
    const double a_seconds = a.report.total_time();
    const double b_seconds = b.report.total_time();
    if (p == procs.front()) {
      a_p1 = a_seconds * static_cast<double>(p);
      b_p1 = b_seconds * static_cast<double>(p);
    }
    table.add_row({std::to_string(p), msp::Table::cell(a_seconds),
                   msp::Table::cell(a_p1 / a_seconds /
                                    static_cast<double>(procs.front())),
                   msp::Table::cell(b_seconds),
                   msp::Table::cell(b_p1 / b_seconds /
                                    static_cast<double>(procs.front())),
                   msp::Table::cell(b.max_sort_seconds),
                   msp::Table::cell(b.mean_shards_visited, 1)});
  }

  std::cout << "== Table IV: Algorithms A & B, "
            << msp::group_digits(sequences) << "-sequence database ==\n";
  table.print(std::cout);
  std::cout << "paper shape: B's sort time grows with p until it dominates; "
               "A outruns B at scale.\n";
  return 0;
}
