// google-benchmark micro-benchmarks for the serial kernels: where the per-
// candidate cost ρ actually goes. These calibrate the ComputeModel's
// seconds_per_candidate against the real (host) cost of each stage.
#include <benchmark/benchmark.h>

#include <optional>

#include "core/candidate_index.hpp"
#include "core/search_engine.hpp"
#include "dbgen/protein_gen.hpp"
#include "dbgen/query_gen.hpp"
#include "mass/digest.hpp"
#include "scoring/hyperscore.hpp"
#include "scoring/likelihood.hpp"
#include "scoring/shared_peak.hpp"
#include "spectra/generator.hpp"
#include "spectra/theoretical.hpp"
#include "util/rng.hpp"

namespace {

using namespace msp;

const Spectrum& sample_spectrum() {
  static const Spectrum spectrum = [] {
    SpectrumNoiseModel model;
    Xoshiro256 rng(42);
    return simulate_spectrum("ACDEFGHIKLMNPQRSTVWYK", model, rng);
  }();
  return spectrum;
}

void BM_PeptideMass(benchmark::State& state) {
  const std::string peptide = "ACDEFGHIKLMNPQRSTVWY";
  for (auto _ : state) benchmark::DoNotOptimize(peptide_mass(peptide));
}
BENCHMARK(BM_PeptideMass);

void BM_FragmentIons(benchmark::State& state) {
  const std::string peptide(static_cast<std::size_t>(state.range(0)), 'A');
  for (auto _ : state) benchmark::DoNotOptimize(fragment_ions(peptide));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_FragmentIons)->Arg(8)->Arg(16)->Arg(32)->Complexity();

// Same ladder through the workspace overload — the delta against
// BM_FragmentIons is what the shared fragment-ion workspace saves per call
// (allocation + no return-by-value) once the buffers are warm.
void BM_FragmentIonsInto(benchmark::State& state) {
  const std::string peptide(static_cast<std::size_t>(state.range(0)), 'A');
  const TheoreticalOptions options;
  FragmentIonWorkspace workspace;
  for (auto _ : state)
    benchmark::DoNotOptimize(fragment_ions_into(peptide, options, workspace));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_FragmentIonsInto)->Arg(8)->Arg(16)->Arg(32)->Complexity();

void BM_ScoreSharedPeak(benchmark::State& state) {
  const BinnedSpectrum binned(sample_spectrum());
  for (auto _ : state)
    benchmark::DoNotOptimize(shared_peak_count(binned, "ACDEFGHIKLMNPQRSTVWYK"));
}
BENCHMARK(BM_ScoreSharedPeak);

void BM_ScoreHyperscore(benchmark::State& state) {
  const BinnedSpectrum binned(sample_spectrum());
  for (auto _ : state)
    benchmark::DoNotOptimize(hyperscore(binned, "ACDEFGHIKLMNPQRSTVWYK"));
}
BENCHMARK(BM_ScoreHyperscore);

void BM_ScoreLikelihood(benchmark::State& state) {
  const QueryContext context(sample_spectrum());
  for (auto _ : state)
    benchmark::DoNotOptimize(likelihood_ratio(context, "ACDEFGHIKLMNPQRSTVWYK"));
}
BENCHMARK(BM_ScoreLikelihood);

void BM_Digest(benchmark::State& state) {
  ProteinGenOptions options;
  options.sequence_count = 1;
  options.mean_length = 400;
  const ProteinDatabase db = generate_proteins(options);
  DigestOptions digest;
  digest.missed_cleavages = 2;
  for (auto _ : state)
    benchmark::DoNotOptimize(digest_tryptic(db.proteins[0].residues, digest));
}
BENCHMARK(BM_Digest);

// Shared setup for the shard-search benchmarks so the reference, indexed,
// and threaded variants time the exact same shard and query batch.
struct ShardBench {
  explicit ShardBench(std::size_t sequences, std::size_t kernel_threads = 1) {
    ProteinGenOptions db_options;
    db_options.sequence_count = sequences;
    db = generate_proteins(db_options);
    QueryGenOptions q_options;
    q_options.query_count = 20;
    queries = spectra_of(generate_queries(db, q_options));
    SearchConfig config;
    config.model = ScoreModel::kLikelihood;
    config.kernel_threads = kernel_threads;
    engine.emplace(config);
    prepared = engine->prepare(queries);
    index = CandidateIndex::build(db, config);
  }

  ProteinDatabase db;
  std::vector<Spectrum> queries;
  std::optional<SearchEngine> engine;
  PreparedQueries prepared;
  CandidateIndex index;
};

void report_candidates(benchmark::State& state, std::uint64_t candidates,
                       std::int64_t n) {
  state.counters["cand/s"] = benchmark::Counter(
      static_cast<double>(candidates), benchmark::Counter::kIsRate);
  state.SetComplexityN(n);
}

void BM_SearchShard(benchmark::State& state) {
  const ShardBench bench(static_cast<std::size_t>(state.range(0)));
  std::uint64_t candidates = 0;
  for (auto _ : state) {
    auto tops = bench.engine->make_tops(bench.queries.size());
    candidates += bench.engine
                      ->search_shard(bench.db, bench.prepared, tops, nullptr,
                                     &bench.index)
                      .candidates_evaluated;
  }
  report_candidates(state, candidates, state.range(0));
}
BENCHMARK(BM_SearchShard)->Arg(250)->Arg(500)->Arg(1000)->Complexity();

// The pre-index kernel: re-digests the shard and rebuilds every candidate's
// ions per query. The gap against BM_SearchShard is the candidate-centric
// refactor's whole-kernel win (see bench_kernel_ablation for the tracked
// number).
void BM_SearchShardReference(benchmark::State& state) {
  const ShardBench bench(static_cast<std::size_t>(state.range(0)));
  std::uint64_t candidates = 0;
  for (auto _ : state) {
    auto tops = bench.engine->make_tops(bench.queries.size());
    candidates +=
        bench.engine->search_shard_reference(bench.db, bench.prepared, tops)
            .candidates_evaluated;
  }
  report_candidates(state, candidates, state.range(0));
}
BENCHMARK(BM_SearchShardReference)->Arg(250)->Arg(500)->Arg(1000)->Complexity();

// Intra-rank threading over the index blocks; Arg is kernel_threads on a
// fixed 1000-sequence shard. Scaling requires real cores — on a 1-CPU
// runner the curve is flat, which is itself worth seeing in CI logs.
void BM_SearchShardThreaded(benchmark::State& state) {
  const ShardBench bench(1000, static_cast<std::size_t>(state.range(0)));
  std::uint64_t candidates = 0;
  for (auto _ : state) {
    auto tops = bench.engine->make_tops(bench.queries.size());
    candidates += bench.engine
                      ->search_shard(bench.db, bench.prepared, tops, nullptr,
                                     &bench.index)
                      .candidates_evaluated;
  }
  report_candidates(state, candidates, state.range(0));
}
BENCHMARK(BM_SearchShardThreaded)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// What pack time pays so that query time doesn't: full digest + fragment
// mass enumeration + sort for one shard.
void BM_CandidateIndexBuild(benchmark::State& state) {
  ProteinGenOptions db_options;
  db_options.sequence_count = static_cast<std::size_t>(state.range(0));
  const ProteinDatabase db = generate_proteins(db_options);
  const SearchConfig config;
  for (auto _ : state)
    benchmark::DoNotOptimize(CandidateIndex::build(db, config));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_CandidateIndexBuild)->Arg(250)->Arg(500)->Arg(1000)->Complexity();

void BM_PrepareQuery(benchmark::State& state) {
  SearchConfig config;
  const SearchEngine engine(config);
  const std::vector<Spectrum> one{sample_spectrum()};
  for (auto _ : state) benchmark::DoNotOptimize(engine.prepare(one));
}
BENCHMARK(BM_PrepareQuery);

}  // namespace
