// google-benchmark micro-benchmarks for the serial kernels: where the per-
// candidate cost ρ actually goes. These calibrate the ComputeModel's
// seconds_per_candidate against the real (host) cost of each stage.
#include <benchmark/benchmark.h>

#include "core/search_engine.hpp"
#include "dbgen/protein_gen.hpp"
#include "dbgen/query_gen.hpp"
#include "mass/digest.hpp"
#include "scoring/hyperscore.hpp"
#include "scoring/likelihood.hpp"
#include "scoring/shared_peak.hpp"
#include "spectra/generator.hpp"
#include "spectra/theoretical.hpp"
#include "util/rng.hpp"

namespace {

using namespace msp;

const Spectrum& sample_spectrum() {
  static const Spectrum spectrum = [] {
    SpectrumNoiseModel model;
    Xoshiro256 rng(42);
    return simulate_spectrum("ACDEFGHIKLMNPQRSTVWYK", model, rng);
  }();
  return spectrum;
}

void BM_PeptideMass(benchmark::State& state) {
  const std::string peptide = "ACDEFGHIKLMNPQRSTVWY";
  for (auto _ : state) benchmark::DoNotOptimize(peptide_mass(peptide));
}
BENCHMARK(BM_PeptideMass);

void BM_FragmentIons(benchmark::State& state) {
  const std::string peptide(static_cast<std::size_t>(state.range(0)), 'A');
  for (auto _ : state) benchmark::DoNotOptimize(fragment_ions(peptide));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_FragmentIons)->Arg(8)->Arg(16)->Arg(32)->Complexity();

void BM_ScoreSharedPeak(benchmark::State& state) {
  const BinnedSpectrum binned(sample_spectrum());
  for (auto _ : state)
    benchmark::DoNotOptimize(shared_peak_count(binned, "ACDEFGHIKLMNPQRSTVWYK"));
}
BENCHMARK(BM_ScoreSharedPeak);

void BM_ScoreHyperscore(benchmark::State& state) {
  const BinnedSpectrum binned(sample_spectrum());
  for (auto _ : state)
    benchmark::DoNotOptimize(hyperscore(binned, "ACDEFGHIKLMNPQRSTVWYK"));
}
BENCHMARK(BM_ScoreHyperscore);

void BM_ScoreLikelihood(benchmark::State& state) {
  const QueryContext context(sample_spectrum());
  for (auto _ : state)
    benchmark::DoNotOptimize(likelihood_ratio(context, "ACDEFGHIKLMNPQRSTVWYK"));
}
BENCHMARK(BM_ScoreLikelihood);

void BM_Digest(benchmark::State& state) {
  ProteinGenOptions options;
  options.sequence_count = 1;
  options.mean_length = 400;
  const ProteinDatabase db = generate_proteins(options);
  DigestOptions digest;
  digest.missed_cleavages = 2;
  for (auto _ : state)
    benchmark::DoNotOptimize(digest_tryptic(db.proteins[0].residues, digest));
}
BENCHMARK(BM_Digest);

void BM_SearchShard(benchmark::State& state) {
  ProteinGenOptions db_options;
  db_options.sequence_count = static_cast<std::size_t>(state.range(0));
  const ProteinDatabase db = generate_proteins(db_options);
  QueryGenOptions q_options;
  q_options.query_count = 20;
  const auto queries = spectra_of(generate_queries(db, q_options));
  SearchConfig config;
  config.model = ScoreModel::kLikelihood;
  const SearchEngine engine(config);
  const PreparedQueries prepared = engine.prepare(queries);
  std::uint64_t candidates = 0;
  for (auto _ : state) {
    auto tops = engine.make_tops(queries.size());
    candidates += engine.search_shard(db, prepared, tops).candidates_evaluated;
  }
  state.counters["cand/s"] = benchmark::Counter(
      static_cast<double>(candidates), benchmark::Counter::kIsRate);
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SearchShard)->Arg(250)->Arg(500)->Arg(1000)->Complexity();

void BM_PrepareQuery(benchmark::State& state) {
  SearchConfig config;
  const SearchEngine engine(config);
  const std::vector<Spectrum> one{sample_spectrum()};
  for (auto _ : state) benchmark::DoNotOptimize(engine.prepare(one));
}
BENCHMARK(BM_PrepareQuery);

}  // namespace
