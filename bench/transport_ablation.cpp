// Design-choice ablation (Section II-B): database transport (Algorithm A)
// vs the rejected query-transport model.
//
// The paper's argument for database transport: query transport means "a
// query can get processed in multiple processor locations, and the results
// have to be sent to one root processor for merging". The measurable
// consequences in our implementation: query preprocessing is repeated on
// every rank (p× the prep work) and a top-τ merge phase is appended.
#include <iostream>

#include "bench/common.hpp"
#include "core/algorithm_a.hpp"
#include "core/query_transport.hpp"
#include "util/str.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  msp::Cli cli("bench_transport_ablation",
               "database transport (Algorithm A) vs query transport");
  msp::bench::add_common_options(cli);
  cli.add_int("sequences", 8000, "database size");
  if (!cli.parse(argc, argv)) return 0;

  const auto query_count = static_cast<std::size_t>(cli.get_int("queries"));
  const auto sequences = static_cast<std::size_t>(cli.get_int("sequences"));
  auto procs = cli.get_int_list("procs");
  std::erase_if(procs, [](std::int64_t p) { return p < 2; });

  const msp::bench::Workload workload = msp::bench::make_workload(
      sequences, query_count, static_cast<std::uint64_t>(cli.get_int("seed")));
  const std::string image = workload.image_of_first(sequences);
  const msp::SearchConfig config = msp::bench::bench_config();

  msp::Table table({"p", "DB transport (s)", "query transport (s)",
                    "QT overhead %", "QT compute/rank (s)"});
  for (auto p : procs) {
    const msp::sim::Runtime runtime(static_cast<int>(p),
                                    msp::bench::bench_network(),
                                    msp::bench::bench_compute());
    const msp::ParallelRunResult a =
        msp::run_algorithm_a(runtime, image, workload.queries, config);
    const msp::ParallelRunResult qt =
        msp::run_query_transport(runtime, image, workload.queries, config);
    const double a_seconds = a.report.total_time();
    const double qt_seconds = qt.report.total_time();
    table.add_row(
        {std::to_string(p), msp::Table::cell(a_seconds),
         msp::Table::cell(qt_seconds),
         msp::Table::cell(100.0 * (qt_seconds - a_seconds) / a_seconds, 1),
         msp::Table::cell(qt.report.sum_compute() / static_cast<double>(p))});
  }

  std::cout << "== Transport-model ablation ("
            << msp::group_digits(sequences) << " sequences, " << query_count
            << " queries) ==\n";
  table.print(std::cout);
  std::cout << "expected: query transport pays repeated per-rank query prep "
               "and a merge phase — the paper's reason to reject it.\n";
  return 0;
}
