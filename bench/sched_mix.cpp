// Multi-tenant scheduler sweep: serve-only vs serve+backfill vs
// priority-preemption on one shared serving ring.
//
// The serving bench (serve_latency.cpp) measures what a dedicated ring
// gives one latency-sensitive stream; this bench measures what a *cluster*
// gives a mix of tenants. A bursty serve session leaves the ring parked
// between bursts (the kServeIdle lane the serve-only cell measures); the
// scheduler backfills batch chunks into exactly those measured gaps using
// the Slurm-style fit rule, and the preemption cell adds the safety net
// that evicts lower-priority chunks the moment a serve batch closes. The
// headline numbers:
//
//   reclaimed_idle_ratio   backfill_busy_s / (serve-only idle per rank) —
//                          how much of the measured idle the batch tenant's
//                          chunks actually turned into compute,
//   serve_p99_ratio        the serve tenant's p99 under the full scheduler
//                          over its serve-only p99 — the latency price of
//                          sharing the ring.
//
// CI gates reclaimed_idle_ratio >= 0.3 and serve_p99_ratio <= 1.1 at the
// default 16-rank configuration (tools/check_sched_bench.py), and hits are
// bit-identical across every cell. Results append to a trajectory file
// (BENCH_sched.json, a JSON array with one entry per run; entry 0 is the
// committed baseline) exactly like BENCH_kernel.json.
#include <fstream>
#include <iostream>
#include <sstream>

#include "bench/common.hpp"
#include "sched/scheduler.hpp"
#include "util/json.hpp"
#include "util/table.hpp"

namespace {

/// Append `entry` (a JSON object) to the JSON array at `path`, creating the
/// array on first write. Textual append — strip the closing bracket, add
/// the entry — so prior entries pass through byte-identical and the file
/// stays a valid array after every run.
void append_trajectory(const std::string& path, const std::string& entry) {
  if (path.empty()) return;
  std::string existing;
  {
    std::ifstream in(path, std::ios::binary);
    if (in)
      existing.assign((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  }
  while (!existing.empty() &&
         (existing.back() == '\n' || existing.back() == ' '))
    existing.pop_back();
  std::ofstream out(path, std::ios::binary);
  MSP_CHECK_MSG(out.good(), "cannot open JSON output " << path);
  if (existing.empty()) {
    out << "[\n" << entry << "\n]\n";
  } else {
    MSP_CHECK_MSG(existing.back() == ']',
                  "trajectory file " << path << " is not a JSON array");
    existing.pop_back();
    while (!existing.empty() &&
           (existing.back() == '\n' || existing.back() == ' '))
      existing.pop_back();
    out << existing << ",\n" << entry << "\n]\n";
  }
  std::cout << "appended to " << path << "\n";
}

const msp::sched::TenantAccounting* tenant_named(
    const msp::sched::SchedResult& result, const std::string& name) {
  for (const msp::sched::TenantAccounting& tenant : result.tenants)
    if (tenant.name == name) return &tenant;
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  msp::Cli cli("bench_sched_mix",
               "multi-tenant scheduler: serve-only vs backfill vs preemption");
  // 360 queries by default: 48 serve + 312 batch. The batch backlog must be
  // deep enough that backfill, not work starvation, bounds the reclaimed-idle
  // ratio the CI gate checks.
  msp::bench::add_common_options(cli, /*default_queries=*/360);
  cli.add_int("p", 16, "simulated ranks (one shared serving ring)");
  cli.add_int("sequences", 4000, "database size (proteins)");
  cli.add_int("serve-queries", 48, "queries owned by the serve tenant");
  cli.add_int("burst", 8, "serve arrivals per burst");
  cli.add_double("burst-gap-ms", 200.0,
                 "virtual ms between serve bursts (the idle the batch "
                 "tenant backfills)");
  cli.add_int("chunk", 8, "batch queries per backfill chunk");
  cli.add_int("inflight-chunks", 2, "max batch chunks in flight");
  cli.add_double("tolerance", 0.05,
                 "precursor window half-width in Da (narrow by default — "
                 "the serving regime, where ring steps are cheap enough "
                 "for burst gaps to leave reclaimable idle)");
  cli.add_string("label", "local",
                 "trajectory entry label (CI uses the commit hash)");
  cli.add_string("out", "BENCH_sched.json",
                 "trajectory JSON array to append to (empty = skip)");
  if (!cli.parse(argc, argv)) return 0;

  const int p = static_cast<int>(cli.get_int("p"));
  const auto query_count = static_cast<std::size_t>(cli.get_int("queries"));
  const auto serve_count =
      static_cast<std::size_t>(cli.get_int("serve-queries"));
  MSP_CHECK_MSG(serve_count < query_count,
                "--serve-queries must leave queries for the batch tenant");
  const msp::bench::Workload workload = msp::bench::make_workload(
      static_cast<std::size_t>(cli.get_int("sequences")), query_count,
      static_cast<std::uint64_t>(cli.get_int("seed")));
  const std::string image = workload.image_of_first(
      static_cast<std::size_t>(cli.get_int("sequences")));
  msp::SearchConfig config = msp::bench::bench_config();
  config.tolerance_da = cli.get_double("tolerance");

  // The two-tenant mix: a latency-sensitive serve session with bursty
  // arrivals (frontend) and a low-priority batch scan over the rest of the
  // stream (analytics). Cells differ only in scheduler policy.
  msp::sched::SchedOptions base;
  base.tenants = {{"frontend", 1.0, 0}, {"analytics", 1.0, 0}};
  {
    msp::sched::JobSpec serve;
    serve.name = "stream";
    serve.tenant = "frontend";
    serve.kind = msp::sched::JobKind::kServe;
    serve.priority = msp::sched::Priority::kHigh;
    serve.submit_s = 0.0;
    serve.query_begin = 0;
    serve.query_end = serve_count;
    serve.arrivals.kind = msp::serve::ArrivalKind::kBurst;
    serve.arrivals.burst_size = static_cast<std::size_t>(cli.get_int("burst"));
    serve.arrivals.burst_gap_s = cli.get_double("burst-gap-ms") * 1e-3;
    serve.arrivals.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
    serve.batch.max_batch = serve.arrivals.burst_size;
    serve.batch.max_wait_s = 0.02;
    serve.admission.max_outstanding = 512;
    base.jobs.push_back(serve);

    msp::sched::JobSpec batch;
    batch.name = "scan";
    batch.tenant = "analytics";
    batch.kind = msp::sched::JobKind::kBatch;
    batch.priority = msp::sched::Priority::kLow;
    batch.submit_s = 0.0;
    batch.query_begin = serve_count;
    batch.query_end = query_count;
    base.jobs.push_back(batch);
  }
  base.chunk_queries = static_cast<std::size_t>(cli.get_int("chunk"));
  base.max_inflight_chunks =
      static_cast<std::size_t>(cli.get_int("inflight-chunks"));

  struct Cell {
    const char* name;
    bool batch_tenant;  ///< serve-only drops the batch job entirely
    bool backfill;
    bool preempt;
  };
  const Cell cells[] = {
      {"serve-only", false, false, false},
      {"backfill", true, true, false},
      {"preempt", true, true, true},
  };
  constexpr int kCellCount = 3;

  msp::Table table({"cell", "done", "steps", "backfill", "preempt",
                    "reclaim (s)", "serve p99 (s)", "batch (q/s)",
                    "makespan (s)"});
  msp::sched::SchedResult results[kCellCount];
  for (int c = 0; c < kCellCount; ++c) {
    msp::sched::SchedOptions options = base;
    if (!cells[c].batch_tenant) {
      options.jobs.resize(1);
      options.tenants.resize(1);
    }
    options.backfill = cells[c].backfill;
    options.preempt = cells[c].preempt;
    msp::sim::Runtime runtime(p, msp::bench::bench_network(),
                              msp::bench::bench_compute());
    // Trace the full-policy cell (the representative configuration).
    msp::bench::TraceGate trace(runtime, cli.get_string("trace-out"),
                                c == kCellCount - 1);
    results[c] = msp::sched::run_sched(runtime, image, workload.queries,
                                       config, options);
    trace.write(results[c].report);

    const msp::sched::TenantAccounting* frontend =
        tenant_named(results[c], "frontend");
    const msp::sched::TenantAccounting* analytics =
        tenant_named(results[c], "analytics");
    table.add_row(
        {cells[c].name, std::to_string(results[c].completed),
         std::to_string(results[c].ring_steps),
         std::to_string(results[c].backfill_chunks),
         std::to_string(results[c].preemptions),
         msp::Table::cell(results[c].backfill_busy_s),
         msp::Table::cell(frontend->serve_latency.p99),
         analytics != nullptr
             ? msp::Table::cell(analytics->throughput_qps, 1)
             : std::string("-"),
         msp::Table::cell(results[c].makespan_s)});
  }

  // Hit bit-identity across cells: every query-backed job publishes the
  // same lists no matter which policy scheduled it.
  for (int c = 1; c < kCellCount; ++c)
    for (std::size_t q = serve_count; q < query_count; ++q)
      MSP_CHECK_MSG(results[c].hits[q].size() == results[1].hits[q].size(),
                    "policy changed a hit list at query " << q);

  // Headline ratios (per-rank idle: idle spans park every rank equally, so
  // the aggregate divides by p).
  const msp::sched::SchedResult& serve_only = results[0];
  const msp::sched::SchedResult& full = results[kCellCount - 1];
  const double idle_per_rank =
      serve_only.report.serve_idle_seconds() / static_cast<double>(p);
  const double reclaimed_ratio =
      idle_per_rank > 0.0 ? full.backfill_busy_s / idle_per_rank : 0.0;
  const double p99_serve_only =
      tenant_named(serve_only, "frontend")->serve_latency.p99;
  const double p99_full = tenant_named(full, "frontend")->serve_latency.p99;
  const double p99_ratio =
      p99_serve_only > 0.0 ? p99_full / p99_serve_only : 0.0;

  msp::JsonWriter json;
  json.begin_object();
  json.field("label", cli.get_string("label"));
  json.field("p", p);
  json.field("queries", query_count);
  json.field("serve_queries", serve_count);
  json.field("burst", static_cast<std::int64_t>(cli.get_int("burst")));
  json.field("burst_gap_s", cli.get_double("burst-gap-ms") * 1e-3);
  json.field("chunk_queries", base.chunk_queries);
  json.field("max_inflight_chunks", base.max_inflight_chunks);
  json.key("cells").begin_array();
  for (int c = 0; c < kCellCount; ++c) {
    const msp::sched::SchedResult& result = results[c];
    json.begin_object();
    json.field("name", cells[c].name);
    json.field("backfill", cells[c].backfill);
    json.field("preempt", cells[c].preempt);
    json.field("completed", result.completed);
    json.field("shed", result.shed);
    json.field("batches", result.batches);
    json.field("ring_steps", result.ring_steps);
    json.field("preemptions", result.preemptions);
    json.field("backfill_chunks", result.backfill_chunks);
    json.field("backfill_busy_s", result.backfill_busy_s);
    json.field("serve_idle_s", result.report.serve_idle_seconds());
    json.field("makespan_s", result.makespan_s);
    json.field("throughput_qps", result.throughput_qps);
    json.key("tenants").begin_array();
    for (const msp::sched::TenantAccounting& tenant : result.tenants) {
      json.begin_object();
      json.field("name", tenant.name);
      json.field("jobs_completed", tenant.jobs_completed);
      json.field("queries_completed", tenant.queries_completed);
      json.field("queries_shed", tenant.queries_shed);
      json.field("preemptions", tenant.preemptions);
      json.field("backfill_chunks", tenant.backfill_chunks);
      json.field("usage_end", tenant.usage_end);
      json.field("throughput_qps", tenant.throughput_qps);
      json.field("p99_s", tenant.serve_latency.p99);
      json.end_object();
    }
    json.end_array();
    json.end_object();
  }
  json.end_array();
  json.field("serve_idle_per_rank_s", idle_per_rank);
  json.field("reclaimed_idle_ratio", reclaimed_ratio);
  json.field("serve_p99_serve_only_s", p99_serve_only);
  json.field("serve_p99_full_s", p99_full);
  json.field("serve_p99_ratio", p99_ratio);
  json.end_object();

  std::cout << "== Multi-tenant scheduler (p = " << p << ", "
            << serve_count << " serve + " << query_count - serve_count
            << " batch queries) ==\n";
  table.print(std::cout);
  std::cout << "reclaimed idle: " << msp::Table::cell(full.backfill_busy_s)
            << " s of " << msp::Table::cell(idle_per_rank)
            << " s per-rank serve idle (ratio "
            << msp::Table::cell(reclaimed_ratio, 2) << "); serve p99 "
            << msp::Table::cell(p99_full) << " s vs "
            << msp::Table::cell(p99_serve_only) << " s serve-only (ratio "
            << msp::Table::cell(p99_ratio, 2) << ")\n";

  // Indent the entry one level so the trajectory array reads naturally.
  std::istringstream lines(json.str());
  std::ostringstream indented;
  std::string line;
  bool first = true;
  while (std::getline(lines, line)) {
    if (!first) indented << "\n";
    indented << "  " << line;
    first = false;
  }
  append_trajectory(cli.get_string("out"), indented.str());
  return 0;
}
