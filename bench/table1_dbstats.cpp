// Table I reproduction: input database statistics.
//
// Paper values:           Human        Microbial
//   #Protein sequences    88,333       2,655,064
//   Total length          26,647,093   834,866,454
//   Avg. length           301.66       314.44
//
// We generate the synthetic stand-ins at a configurable scale (default
// 1/100) and print the same three rows, plus the scale so the reader can
// relate them to the paper's column.
#include <iostream>

#include "bench/common.hpp"
#include "dbgen/protein_gen.hpp"
#include "util/cli.hpp"
#include "util/str.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  msp::Cli cli("bench_table1_dbstats", "Table I: input database statistics");
  cli.add_double("scale", 0.01, "fraction of the paper's sequence counts");
  if (!cli.parse(argc, argv)) return 0;
  const double scale = cli.get_double("scale");

  const msp::ProteinDatabase human =
      msp::generate_proteins(msp::human_like_options(scale));
  const msp::ProteinDatabase microbial =
      msp::generate_proteins(msp::microbial_like_options(scale));

  std::cout << "== Table I: input database statistics (scale "
            << scale << " of the paper's counts) ==\n";
  msp::Table table({"", "Human-like", "Microbial-like"});
  table.add_row({"#Protein sequences",
                 msp::group_digits(human.sequence_count()),
                 msp::group_digits(microbial.sequence_count())});
  table.add_row({"Total seq. length (residues)",
                 msp::group_digits(human.total_residues()),
                 msp::group_digits(microbial.total_residues())});
  table.add_row({"Avg. seq. length (residues)",
                 msp::Table::cell(human.average_length()),
                 msp::Table::cell(microbial.average_length())});
  table.print(std::cout);
  std::cout << "paper: 88,333 / 26,647,093 / 301.66 and "
               "2,655,064 / 834,866,454 / 314.44\n";
  return 0;
}
