// Figure 4 reproduction: a) real speedup and b) parallel efficiency of
// Algorithm A, for input sizes ≥ a threshold (the paper uses ≥ 16K).
//
// The paper's chaining rule is applied verbatim: "The speedups for all
// input sizes greater or equal to 400K were calculated relative to their
// corresponding 8 processor run-times, and multiplied by the average
// speedup obtained at p = 8 for smaller input" — our --chain-from plays the
// 400K role for rows too slow (or too big) to run at p = 1.
#include <iostream>

#include "bench/common.hpp"
#include "core/algorithm_a.hpp"
#include "util/str.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  msp::Cli cli("bench_fig4_speedup",
               "Figure 4: speedup and parallel efficiency of Algorithm A");
  msp::bench::add_common_options(cli);
  cli.add_string("sizes", "2000,4000,8000,16000", "database sizes");
  cli.add_int("chain-from", 16000,
              "sizes >= this are chained via the p=8 rule instead of p=1");
  if (!cli.parse(argc, argv)) return 0;

  const auto sizes = cli.get_int_list("sizes");
  const auto procs = cli.get_int_list("procs");
  const auto query_count = static_cast<std::size_t>(cli.get_int("queries"));
  const auto chain_from = cli.get_int("chain-from");

  const std::size_t max_size = static_cast<std::size_t>(
      *std::max_element(sizes.begin(), sizes.end()));
  const msp::bench::Workload workload =
      msp::bench::make_workload(max_size, query_count,
                                static_cast<std::uint64_t>(cli.get_int("seed")));
  const msp::SearchConfig config = msp::bench::bench_config();

  // Pass 1: collect run-times; remember p=1 and p=8 columns.
  std::map<std::int64_t, std::map<std::int64_t, double>> seconds;
  for (auto size : sizes) {
    const std::string image =
        workload.image_of_first(static_cast<std::size_t>(size));
    for (auto p : procs) {
      if (size >= chain_from && p == 1) continue;  // the paper's '-' cells
      msp::sim::Runtime runtime(static_cast<int>(p),
                                msp::bench::bench_network(),
                                msp::bench::bench_compute());
      msp::bench::TraceGate trace(runtime, cli.get_string("trace-out"),
                                  size == sizes.back() && p == procs.back());
      const msp::sim::RunReport report =
          msp::run_algorithm_a(runtime, image, workload.queries, config)
              .report;
      trace.write(report);
      seconds[size][p] = report.total_time();
    }
  }

  // The paper's average p=8 speedup over the smaller (un-chained) inputs.
  double avg_speedup_p8 = 0.0;
  int counted = 0;
  for (auto size : sizes) {
    if (size >= chain_from) continue;
    if (seconds[size].count(1) && seconds[size].count(8)) {
      avg_speedup_p8 += seconds[size][1] / seconds[size][8];
      ++counted;
    }
  }
  avg_speedup_p8 = counted ? avg_speedup_p8 / counted : 4.51;

  auto speedup_of = [&](std::int64_t size, std::int64_t p) {
    if (size >= chain_from)
      return avg_speedup_p8 * seconds[size][8] / seconds[size][p];
    return seconds[size][1] / seconds[size][p];
  };

  std::vector<std::string> header{"DB size"};
  for (auto p : procs) header.push_back("p=" + std::to_string(p));

  // Chained rows have no p=1 run — the paper prints '-' there.
  auto cell_for = [&](std::int64_t size, std::int64_t p, bool efficiency) {
    if (size >= chain_from && p == 1) return std::string("-");
    const double speedup = speedup_of(size, p);
    return efficiency
               ? msp::Table::cell(100.0 * speedup / static_cast<double>(p), 1)
               : msp::Table::cell(speedup);
  };

  std::cout << "== Fig. 4a: real speedup of Algorithm A ==\n";
  msp::Table speedup_table(header);
  for (auto size : sizes) {
    std::vector<std::string> row{
        msp::group_digits(static_cast<std::uint64_t>(size))};
    for (auto p : procs) row.push_back(cell_for(size, p, false));
    speedup_table.add_row(std::move(row));
  }
  speedup_table.print(std::cout);
  std::cout << "(chained rows use the paper's x" << msp::Table::cell(avg_speedup_p8)
            << " average p=8 speedup; paper's constant was 4.51)\n\n";

  std::cout << "== Fig. 4b: parallel efficiency (speedup / p) ==\n";
  msp::Table eff_table(header);
  for (auto size : sizes) {
    std::vector<std::string> row{
        msp::group_digits(static_cast<std::uint64_t>(size))};
    for (auto p : procs) row.push_back(cell_for(size, p, true));
    eff_table.add_row(std::move(row));
  }
  eff_table.print(std::cout);
  std::cout << "(percent; paper: ~100% at p=2 dropping to ~50% at p=4, held "
               "to p=64, 41.5% at p=128)\n";
  return 0;
}
