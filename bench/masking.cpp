// Masking ablation (Section III): "we implemented a second version of the
// algorithm that does not mask communication with computation. Results
// showed that the masking technique reduces the total run-time by a factor
// of 72.75% ± 0.02%."
//
// We run Algorithm A with and without the non-blocking prefetch across
// processor and database sizes and report, per configuration,
//   - the run-time-derived saving (T_unmasked − T_masked) / T_unmasked, and
//   - the overlap-derived saving from the masked run's measured rget
//     overlap (RunReport::masking_saving_estimate) plus its masking
//     efficiency (fraction of issued one-sided transfer time hidden under
//     compute). The two savings are computed independently and should agree
//     to within a couple of points — the "max |Δ|" line checks that.
// See EXPERIMENTS.md for why a per-iteration-overlap design caps the
// theoretical saving at 50% of the exposed transfer time and how the
// paper's larger figure is interpreted.
#include <cmath>
#include <iostream>

#include "bench/common.hpp"
#include "core/algorithm_a.hpp"
#include "util/json.hpp"
#include "util/stats.hpp"
#include "util/str.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  msp::Cli cli("bench_masking",
               "masking ablation: Algorithm A with vs without prefetch overlap");
  msp::bench::add_common_options(cli);
  cli.add_string("sizes", "4000,8000,16000", "database sizes");
  cli.add_string("out", "", "JSON summary output path (e.g. BENCH_masking.json)");
  if (!cli.parse(argc, argv)) return 0;

  const auto sizes = cli.get_int_list("sizes");
  auto procs = cli.get_int_list("procs");
  std::erase_if(procs, [](std::int64_t p) { return p < 2; });
  const auto query_count = static_cast<std::size_t>(cli.get_int("queries"));
  const std::string trace_out = cli.get_string("trace-out");

  const std::size_t max_size = static_cast<std::size_t>(
      *std::max_element(sizes.begin(), sizes.end()));
  const msp::bench::Workload workload = msp::bench::make_workload(
      max_size, query_count, static_cast<std::uint64_t>(cli.get_int("seed")));
  const msp::SearchConfig config = msp::bench::bench_config();

  msp::Table table({"DB size", "p", "masked (s)", "unmasked (s)", "saving %",
                    "overlap sav %", "mask eff %"});
  msp::Accumulator savings;
  msp::Accumulator overlap_savings;
  double max_disagreement = 0.0;
  for (auto size : sizes) {
    const std::string image =
        workload.image_of_first(static_cast<std::size_t>(size));
    for (auto p : procs) {
      msp::sim::Runtime runtime(static_cast<int>(p),
                                msp::bench::bench_network(),
                                msp::bench::bench_compute());
      // Trace the largest configuration of the sweep (one file, not one
      // per cell); the masked run is the interesting timeline.
      msp::bench::TraceGate trace(runtime, trace_out,
                                  size == sizes.back() && p == procs.back());
      msp::AlgorithmAOptions masked;
      msp::AlgorithmAOptions unmasked;
      unmasked.mask = false;
      const msp::sim::RunReport masked_report =
          msp::run_algorithm_a(runtime, image, workload.queries, config, masked)
              .report;
      trace.write(masked_report);
      const double with_mask = masked_report.total_time();
      const double without_mask =
          msp::run_algorithm_a(runtime, image, workload.queries, config,
                               unmasked)
              .report.total_time();
      const double saving = 100.0 * (without_mask - with_mask) / without_mask;
      const double overlap_saving =
          100.0 * masked_report.masking_saving_estimate();
      savings.add(saving);
      overlap_savings.add(overlap_saving);
      max_disagreement =
          std::max(max_disagreement, std::abs(saving - overlap_saving));
      table.add_row({msp::group_digits(static_cast<std::uint64_t>(size)),
                     std::to_string(p), msp::Table::cell(with_mask),
                     msp::Table::cell(without_mask),
                     msp::Table::cell(saving, 1),
                     msp::Table::cell(overlap_saving, 1),
                     msp::Table::cell(
                         100.0 * masked_report.masking_efficiency(), 1)});
    }
  }

  std::cout << "== Masking ablation: Algorithm A prefetch overlap ==\n";
  table.print(std::cout);
  std::cout << "mean saving: " << msp::Table::cell(savings.mean(), 1) << "% +/- "
            << msp::Table::cell(savings.stddev(), 1)
            << "% (paper reports 72.75% +/- 0.02%; see EXPERIMENTS.md)\n";
  std::cout << "mean overlap-derived saving: "
            << msp::Table::cell(overlap_savings.mean(), 1) << "% +/- "
            << msp::Table::cell(overlap_savings.stddev(), 1)
            << "%  (max |run-time vs overlap| disagreement: "
            << msp::Table::cell(max_disagreement, 2) << " points)\n";

  msp::JsonWriter json;
  json.begin_object();
  json.field("mean_saving_percent", savings.mean());
  json.field("stddev_saving_percent", savings.stddev());
  json.field("mean_overlap_saving_percent", overlap_savings.mean());
  json.field("stddev_overlap_saving_percent", overlap_savings.stddev());
  json.field("max_disagreement_points", max_disagreement);
  json.end_object();
  msp::bench::write_json_summary(cli.get_string("out"), json.str());
  return 0;
}
