// Masking ablation (Section III): "we implemented a second version of the
// algorithm that does not mask communication with computation. Results
// showed that the masking technique reduces the total run-time by a factor
// of 72.75% ± 0.02%."
//
// We run Algorithm A with and without the non-blocking prefetch across
// processor and database sizes and report the per-configuration saving
//   (T_unmasked − T_masked) / T_unmasked.
// See EXPERIMENTS.md for why a per-iteration-overlap design caps the
// theoretical saving at 50% of the exposed transfer time and how the
// paper's larger figure is interpreted.
#include <iostream>

#include "bench/common.hpp"
#include "core/algorithm_a.hpp"
#include "util/stats.hpp"
#include "util/str.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  msp::Cli cli("bench_masking",
               "masking ablation: Algorithm A with vs without prefetch overlap");
  msp::bench::add_common_options(cli);
  cli.add_string("sizes", "4000,8000,16000", "database sizes");
  if (!cli.parse(argc, argv)) return 0;

  const auto sizes = cli.get_int_list("sizes");
  auto procs = cli.get_int_list("procs");
  std::erase_if(procs, [](std::int64_t p) { return p < 2; });
  const auto query_count = static_cast<std::size_t>(cli.get_int("queries"));

  const std::size_t max_size = static_cast<std::size_t>(
      *std::max_element(sizes.begin(), sizes.end()));
  const msp::bench::Workload workload = msp::bench::make_workload(
      max_size, query_count, static_cast<std::uint64_t>(cli.get_int("seed")));
  const msp::SearchConfig config = msp::bench::bench_config();

  msp::Table table({"DB size", "p", "masked (s)", "unmasked (s)", "saving %"});
  msp::Accumulator savings;
  for (auto size : sizes) {
    const std::string image =
        workload.image_of_first(static_cast<std::size_t>(size));
    for (auto p : procs) {
      const msp::sim::Runtime runtime(static_cast<int>(p),
                                      msp::bench::bench_network(),
                                      msp::bench::bench_compute());
      msp::AlgorithmAOptions masked;
      msp::AlgorithmAOptions unmasked;
      unmasked.mask = false;
      const double with_mask =
          msp::run_algorithm_a(runtime, image, workload.queries, config, masked)
              .report.total_time();
      const double without_mask =
          msp::run_algorithm_a(runtime, image, workload.queries, config,
                               unmasked)
              .report.total_time();
      const double saving = 100.0 * (without_mask - with_mask) / without_mask;
      savings.add(saving);
      table.add_row({msp::group_digits(static_cast<std::uint64_t>(size)),
                     std::to_string(p), msp::Table::cell(with_mask),
                     msp::Table::cell(without_mask),
                     msp::Table::cell(saving, 1)});
    }
  }

  std::cout << "== Masking ablation: Algorithm A prefetch overlap ==\n";
  table.print(std::cout);
  std::cout << "mean saving: " << msp::Table::cell(savings.mean(), 1) << "% +/- "
            << msp::Table::cell(savings.stddev(), 1)
            << "% (paper reports 72.75% +/- 0.02%; see EXPERIMENTS.md)\n";
  return 0;
}
