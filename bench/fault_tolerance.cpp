// Fault-tolerance overhead: what does surviving a fault cost, in simulated
// run-time, relative to the failure-free baseline?
//
// For each p we run Algorithm A under four schedules — none, a straggler
// (4x compute / 2x network on one rank), transient transfer failures (three
// retried pulls), and a mid-ring rank crash (survivors re-partition the dead
// rank's query block and re-pull its shard from the ring replica) — plus the
// master–worker baseline's crash recovery (the dead worker's in-flight batch
// is re-queued). Output verification against the serial engine runs on every
// row: a recovery that loses hits would show up here before it shows up in
// a paper table.
#include <iostream>
#include <string>

#include "bench/common.hpp"
#include "core/algorithm_a.hpp"
#include "core/master_worker.hpp"
#include "core/search_engine.hpp"
#include "io/fasta.hpp"
#include "util/table.hpp"

namespace {

bool hits_match(const msp::QueryHits& got, const msp::QueryHits& want) {
  if (got.size() != want.size()) return false;
  for (std::size_t q = 0; q < want.size(); ++q) {
    if (got[q].size() != want[q].size()) return false;
    for (std::size_t h = 0; h < want[q].size(); ++h)
      if (!(got[q][h] == want[q][h])) return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  msp::Cli cli("bench_fault_tolerance",
               "overhead of stragglers, transient failures and crash "
               "recovery vs the failure-free run");
  msp::bench::add_common_options(cli);
  cli.add_int("size", 8000, "database size (sequences)");
  if (!cli.parse(argc, argv)) return 0;

  auto procs = cli.get_int_list("procs");
  std::erase_if(procs, [](std::int64_t p) { return p < 2; });
  const auto query_count = static_cast<std::size_t>(cli.get_int("queries"));
  const auto size = static_cast<std::size_t>(cli.get_int("size"));

  const msp::bench::Workload workload = msp::bench::make_workload(
      size, query_count, static_cast<std::uint64_t>(cli.get_int("seed")));
  const std::string image = workload.image_of_first(size);
  const msp::SearchConfig config = msp::bench::bench_config();
  const msp::QueryHits serial =
      msp::SearchEngine(config).search(msp::read_fasta_string(image),
                                       workload.queries);

  struct Scenario {
    const char* name;
    bool master_worker;
    msp::sim::FaultModel (*schedule)(int p);
  };
  const Scenario scenarios[] = {
      {"A baseline", false, [](int) { return msp::sim::FaultModel{}; }},
      {"A straggler", false,
       [](int) {
         msp::sim::FaultModel f;
         f.straggle(1, 4.0, 2.0);
         return f;
       }},
      {"A transient", false,
       [](int) {
         msp::sim::FaultModel f;
         f.fail_transfers(1, {0, 1, 2});
         return f;
       }},
      {"A crash", false,
       [](int p) {
         msp::sim::FaultModel f;
         f.crash(1, p / 2);
         return f;
       }},
      {"MW baseline", true, [](int) { return msp::sim::FaultModel{}; }},
      {"MW crash", true,
       [](int) {
         msp::sim::FaultModel f;
         f.crash(1, 0);
         return f;
       }},
  };

  msp::Table table({"scenario", "p", "time (s)", "overhead %", "retries",
                    "recovery (s)", "exact"});
  for (auto p : procs) {
    double a_baseline = 0.0;
    double mw_baseline = 0.0;
    for (const Scenario& scenario : scenarios) {
      if (scenario.master_worker && p < 3 &&
          std::string(scenario.name) == "MW crash")
        continue;  // killing the only worker is (correctly) unrecoverable
      msp::sim::Runtime runtime(
          static_cast<int>(p), msp::bench::bench_network(),
          msp::bench::bench_compute(), scenario.schedule(static_cast<int>(p)));
      // Trace the crash-recovery timeline at the largest p (one file per
      // faulty scenario; the fault lane shows retries/crash/re-search).
      msp::bench::TraceGate trace(runtime, cli.get_string("trace-out"),
                                  p == procs.back() &&
                                      std::string(scenario.name) == "A crash");
      const msp::ParallelRunResult result =
          scenario.master_worker
              ? msp::run_master_worker(runtime, image, workload.queries, config)
              : msp::run_algorithm_a(runtime, image, workload.queries, config);
      trace.write(result.report);
      const double time = result.report.total_time();
      double& baseline = scenario.master_worker ? mw_baseline : a_baseline;
      if (baseline == 0.0) baseline = time;
      const double overhead = 100.0 * (time - baseline) / baseline;
      table.add_row({scenario.name, std::to_string(p),
                     msp::Table::cell(time), msp::Table::cell(overhead, 1),
                     std::to_string(result.report.total_transfer_retries()),
                     msp::Table::cell(result.report.total_recovery_seconds()),
                     hits_match(result.hits, serial) ? "yes" : "NO"});
    }
  }

  std::cout << "== Fault-tolerance overhead (vs failure-free baseline) ==\n";
  table.print(std::cout);
  std::cout << "'exact' = hit lists identical to the serial engine despite "
               "the injected faults\n";
  return 0;
}
