// Figure 1 reproduction.
//
// Fig. 1a: GenBank growth 1988-2008 (exponential in base pairs).
// Fig. 1b: number of candidate peptides to evaluate per experimental
//          spectrum, by search scope (known protein family → known genome →
//          microbial collection → environmental community), with and
//          without PTMs. The paper's point: candidates grow by orders of
//          magnitude as the biological unknowns grow.
//
// Fig. 1b here is printed twice: once from the closed-form expectation model
// and once *measured* by running the real candidate generator against
// scaled synthetic databases of each scope — showing the model and the
// engine agree.
#include <cmath>
#include <iostream>

#include "bench/common.hpp"
#include "core/search_engine.hpp"
#include "dbgen/growth_model.hpp"
#include "util/cli.hpp"
#include "util/str.hpp"
#include "util/table.hpp"

namespace {

/// Measure mean candidates per spectrum for a database of `sequences`
/// synthetic proteins, extrapolated to `extrapolate_to` sequences (the
/// generator is linear in database size; verified by dbgen tests).
double measured_candidates_per_spectrum(std::size_t sequences,
                                        std::size_t extrapolate_to,
                                        std::size_t query_count) {
  const msp::bench::Workload workload =
      msp::bench::make_workload(sequences, query_count);
  const msp::SearchEngine engine(msp::bench::bench_config());
  const msp::PreparedQueries prepared = engine.prepare(workload.queries);
  auto tops = engine.make_tops(workload.queries.size());
  const msp::ShardSearchStats stats =
      engine.search_shard(workload.db, prepared, tops);
  const double per_query = static_cast<double>(stats.candidates_evaluated) /
                           static_cast<double>(workload.queries.size());
  return per_query * static_cast<double>(extrapolate_to) /
         static_cast<double>(sequences);
}

std::string sci(double value) {
  if (value <= 0) return "0";
  const int exponent = static_cast<int>(std::floor(std::log10(value)));
  const double mantissa = value / std::pow(10.0, exponent);
  return msp::Table::cell(mantissa, 1) + "e" + std::to_string(exponent);
}

}  // namespace

int main(int argc, char** argv) {
  msp::Cli cli("bench_fig1_growth", "Figure 1: data growth and candidate magnitudes");
  cli.add_int("queries", 40, "spectra used for the measured column");
  cli.add_int("probe-sequences", 4000, "synthetic DB size used for measurement");
  if (!cli.parse(argc, argv)) return 0;

  std::cout << "== Fig. 1a: GenBank nucleotide database growth ==\n";
  msp::Table growth({"year", "base pairs", "sequences"});
  for (const msp::GrowthPoint& point : msp::genbank_growth(1988, 2008)) {
    if (point.year % 2 != 0) continue;  // the plot's tick spacing
    growth.add_row({std::to_string(point.year), sci(point.base_pairs),
                    sci(point.sequences)});
  }
  growth.print(std::cout);
  std::cout << "shape check: exponential, ~20-month doubling (paper Fig. 1a)\n\n";

  std::cout << "== Fig. 1b: candidate peptides per spectrum, by scope ==\n";
  const auto rows = msp::candidate_magnitudes();
  msp::Table fig1b({"scope", "DB residues", "candidates (model)",
                    "with PTMs (model)", "candidates (measured)"});
  const auto probe = static_cast<std::size_t>(cli.get_int("probe-sequences"));
  const auto queries = static_cast<std::size_t>(cli.get_int("queries"));
  for (const auto& row : rows) {
    const auto scope_sequences = static_cast<std::size_t>(
        static_cast<double>(row.database_residues) / 314.0);
    const double measured =
        measured_candidates_per_spectrum(probe, scope_sequences, queries);
    fig1b.add_row({row.scope, sci(static_cast<double>(row.database_residues)),
                   sci(static_cast<double>(row.candidates_no_ptm)),
                   sci(static_cast<double>(row.candidates_with_ptm)),
                   sci(measured)});
  }
  fig1b.print(std::cout);
  std::cout << "shape check: candidates grow by orders of magnitude with scope\n"
               "and PTMs multiply them further (paper Fig. 1b).\n";
  return 0;
}
