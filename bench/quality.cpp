// Quality experiment — the paper's third claim (factor iii in the
// abstract): "the run-time savings achieved using parallel processing has
// allowed us to incorporate highly accurate statistical models". Section
// I-A makes it concrete against X!!Tandem: its speed comes from "a fairly
// simple, fast statistical model, and an aggressive prefiltering step that
// could miss true predictions. This is true especially under more complex
// settings involving metagenomic data."
//
// We measure three engines on the same noisy, half-foreign (metagenomic-
// style) query set, searched against a concatenated target+decoy database:
//
//   likelihood      — MSPolygraph's model (this paper's engine),
//   hyperscore      — the fast model alone,
//   fast+prefilter  — hyperscore plus the aggressive screen (X!!Tandem-like).
//
// Reported per engine: identifications at 5% and 10% FDR, implanted-peptide
// recovery, fully-scored candidate count, and simulated run-time at p=8 —
// the accuracy-vs-speed trade the paper's design resolves in favor of
// accuracy by making the compute affordable in parallel.
#include <iostream>

#include "bench/common.hpp"
#include "core/algorithm_a.hpp"
#include "core/refinement.hpp"
#include "core/search_engine.hpp"
#include "dbgen/query_gen.hpp"
#include "io/fasta.hpp"
#include "scoring/fdr.hpp"
#include "util/str.hpp"
#include "util/table.hpp"

namespace {

struct EngineSpec {
  const char* name;
  msp::ScoreModel model;
  bool prefilter;
  std::size_t prefilter_min = 4;
};

struct QualityResult {
  std::size_t accepted_1pct = 0;
  std::size_t accepted_5pct = 0;
  std::size_t recovered = 0;
  std::uint64_t scored = 0;
  std::uint64_t prefiltered = 0;
  double seconds = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  msp::Cli cli("bench_quality",
               "accuracy vs speed: likelihood model vs fast prefiltered model");
  cli.add_int("sequences", 4000, "target database size");
  cli.add_int("quality-queries", 150, "query spectra (half foreign)");
  cli.add_int("p", 8, "processor count for the timing column");
  cli.add_int("seed", 77, "workload seed");
  if (!cli.parse(argc, argv)) return 0;

  const auto sequences = static_cast<std::size_t>(cli.get_int("sequences"));
  const auto query_count =
      static_cast<std::size_t>(cli.get_int("quality-queries"));
  const int p = static_cast<int>(cli.get_int("p"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  // Targets, an unsequenced "foreign" organism, and reversed decoys.
  msp::ProteinGenOptions target_options = msp::microbial_like_options(1.0);
  target_options.sequence_count = sequences;
  target_options.seed = seed;
  const msp::ProteinDatabase targets = msp::generate_proteins(target_options);
  msp::ProteinGenOptions foreign_options = target_options;
  foreign_options.seed = seed + 1;
  foreign_options.id_prefix = "FOREIGN";
  const msp::ProteinDatabase foreign = msp::generate_proteins(foreign_options);
  const msp::ProteinDatabase combined =
      msp::concatenate(targets, msp::make_decoy_database(targets));
  const std::string image = msp::to_fasta_string(combined);

  // Metagenomic-style queries: noisy spectra, half from the unknown.
  msp::QueryGenOptions q_options;
  q_options.query_count = query_count;
  q_options.seed = seed + 2;
  q_options.foreign_fraction = 0.5;
  q_options.noise.peak_dropout = 0.45;
  q_options.noise.noise_peaks_per_100da = 4.0;
  const auto generated = msp::generate_queries(targets, q_options, &foreign);
  const auto queries = msp::spectra_of(generated);

  const EngineSpec engines[] = {
      {"likelihood (this paper)", msp::ScoreModel::kLikelihood, false},
      {"hyperscore (fast model)", msp::ScoreModel::kHyperscore, false},
      {"fast + prefilter (X!!Tandem-like)", msp::ScoreModel::kHyperscore, true, 7},
  };

  msp::Table table({"engine", "IDs @5% FDR", "IDs @10% FDR",
                    "implanted recovered", "fully scored", "screened out",
                    "time p=8 (s)"});
  for (const EngineSpec& spec : engines) {
    msp::SearchConfig config = msp::bench::bench_config();
    config.model = spec.model;
    config.prefilter = spec.prefilter;
    config.prefilter_min_shared_peaks = spec.prefilter_min;
    config.tau = 1;  // best hit per query drives FDR, as in practice

    const msp::sim::Runtime runtime(p, msp::bench::bench_network(),
                                    msp::bench::bench_compute());
    const msp::ParallelRunResult run =
        msp::run_algorithm_a(runtime, image, queries, config);

    QualityResult result;
    result.seconds = run.report.total_time();
    result.scored = run.report.sum_counter("candidates");
    for (const auto& rank : run.report.ranks) {
      auto it = rank.counters.find("prefiltered");
      if (it != rank.counters.end()) result.prefiltered += it->second;
    }

    std::vector<msp::Psm> psms;
    for (std::size_t q = 0; q < queries.size(); ++q) {
      if (run.hits[q].empty()) continue;
      const msp::Hit& best = run.hits[q][0];
      psms.push_back({best.score, msp::is_decoy_id(best.protein_id)});
      if (!generated[q].foreign &&
          (best.peptide.find(generated[q].true_peptide) != std::string::npos ||
           generated[q].true_peptide.find(best.peptide) != std::string::npos))
        ++result.recovered;
    }
    result.accepted_1pct = msp::accepted_at(psms, 0.05);
    result.accepted_5pct = msp::accepted_at(psms, 0.10);

    table.add_row({spec.name, std::to_string(result.accepted_1pct),
                   std::to_string(result.accepted_5pct),
                   std::to_string(result.recovered) + "/" +
                       std::to_string(query_count / 2),
                   msp::group_digits(result.scored),
                   msp::group_digits(result.prefiltered),
                   msp::Table::cell(result.seconds)});
  }

  // Fourth row: X!Tandem-style two-pass refinement — cheap survey of the
  // whole database, accurate model only on the shortlisted proteins.
  {
    msp::RefinementOptions refine;
    refine.first_pass.tolerance_da = msp::bench::bench_config().tolerance_da;
    refine.second_pass.tolerance_da = refine.first_pass.tolerance_da;
    refine.first_pass.tau = 3;
    refine.second_pass.tau = 1;
    refine.max_refined_proteins = 400;
    const msp::ProteinDatabase combined_db = msp::read_fasta_string(image);
    const msp::RefinementResult refined =
        msp::run_refinement(combined_db, queries, refine);
    const msp::sim::ComputeModel cost = msp::bench::bench_compute();
    const double serial_seconds =
        msp::kernel_cost_seconds(refined.first_pass_stats, cost) +
        msp::kernel_cost_seconds(refined.second_pass_stats, cost);
    std::vector<msp::Psm> psms;
    std::size_t recovered = 0;
    for (std::size_t q = 0; q < queries.size(); ++q) {
      if (refined.hits[q].empty()) continue;
      const msp::Hit& best = refined.hits[q][0];
      psms.push_back({best.score, msp::is_decoy_id(best.protein_id)});
      if (!generated[q].foreign &&
          (best.peptide.find(generated[q].true_peptide) != std::string::npos ||
           generated[q].true_peptide.find(best.peptide) != std::string::npos))
        ++recovered;
    }
    table.add_row({"two-pass refinement (X!Tandem-like)",
                   std::to_string(msp::accepted_at(psms, 0.05)),
                   std::to_string(msp::accepted_at(psms, 0.10)),
                   std::to_string(recovered) + "/" +
                       std::to_string(query_count / 2),
                   msp::group_digits(
                       refined.second_pass_stats.candidates_evaluated),
                   msp::group_digits(
                       refined.first_pass_stats.candidates_prefiltered),
                   msp::Table::cell(serial_seconds /
                                    static_cast<double>(p))});
  }

  std::cout << "== Quality vs speed (" << msp::group_digits(sequences)
            << " targets + decoys, " << query_count
            << " noisy queries, 50% foreign) ==\n";
  table.print(std::cout);
  std::cout << "expected shape: the likelihood model identifies the most at "
               "fixed FDR; the\nprefiltered fast engine is cheapest but "
               "misses true peptides — the paper's\njustification for "
               "spending parallel cycles on the accurate model.\n";
  return 0;
}
