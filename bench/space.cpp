// Space benchmark: the paper's headline O((N+m)/p) space-optimality claim
// against the O(N)-per-rank master–worker baseline.
//
// Section I: "given 1 GB RAM per processor, ... the maximum database size
// that the current implementation was able to handle was 1.27 million
// protein sequences, beyond which the code resorts to swap space or crashes
// out of memory"; Section III-A: "we were able to store and analyze 2.65
// million sequences using as little as 8 processors."
//
// Here: per-rank peak memory of Algorithm A vs the baseline as p grows, and
// the largest database each can run under a fixed per-rank budget.
#include <iostream>

#include "bench/common.hpp"
#include "core/algorithm_a.hpp"
#include "core/master_worker.hpp"
#include "util/error.hpp"
#include "util/str.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  msp::Cli cli("bench_space",
               "space-optimality: Algorithm A vs the replicated-DB baseline");
  msp::bench::add_common_options(cli);
  cli.add_int("sequences", 16000, "database size for the peak-memory sweep");
  cli.add_int("budget-kib", 2048, "per-rank memory budget for the wall test");
  if (!cli.parse(argc, argv)) return 0;

  const auto query_count = static_cast<std::size_t>(cli.get_int("queries"));
  const auto sequences = static_cast<std::size_t>(cli.get_int("sequences"));
  auto procs = cli.get_int_list("procs");
  std::erase_if(procs, [](std::int64_t p) { return p < 2; });

  const msp::bench::Workload workload = msp::bench::make_workload(
      sequences, query_count, static_cast<std::uint64_t>(cli.get_int("seed")));
  const std::string image = workload.image_of_first(sequences);
  const msp::SearchConfig config = msp::bench::bench_config();

  std::cout << "== Per-rank peak memory (accounted bytes), "
            << msp::group_digits(sequences) << " sequences ==\n";
  msp::Table table({"p", "Algorithm A peak/rank", "baseline peak/rank",
                    "A advantage"});
  for (auto p : procs) {
    const msp::sim::Runtime runtime(static_cast<int>(p),
                                    msp::bench::bench_network(),
                                    msp::bench::bench_compute());
    const std::size_t a_peak =
        msp::run_algorithm_a(runtime, image, workload.queries, config)
            .report.max_peak_memory();
    const std::size_t mw_peak =
        msp::run_master_worker(runtime, image, workload.queries, config)
            .report.max_peak_memory();
    table.add_row({std::to_string(p), msp::format_bytes(a_peak),
                   msp::format_bytes(mw_peak),
                   msp::Table::cell(static_cast<double>(mw_peak) /
                                        static_cast<double>(a_peak),
                                    1) +
                       "x"});
  }
  table.print(std::cout);
  std::cout << "shape: A's peak shrinks ~1/p; the baseline's stays O(N).\n\n";

  // The 1 GB wall, scaled: grow the database until the baseline OOMs under
  // the budget, then show Algorithm A still runs it.
  const std::size_t budget =
      static_cast<std::size_t>(cli.get_int("budget-kib")) * 1024;
  std::cout << "== Fixed per-rank budget of " << msp::format_bytes(budget)
            << " (the paper's 1 GB wall, scaled) ==\n";
  const int p_wall = 8;
  std::size_t baseline_wall = 0;
  for (std::size_t n = 1000; n <= sequences; n *= 2) {
    const std::string sub_image = workload.image_of_first(n);
    const msp::sim::Runtime runtime(p_wall, msp::bench::bench_network(),
                                    msp::bench::bench_compute());
    msp::MasterWorkerOptions options;
    options.memory_budget_bytes = budget;
    try {
      msp::run_master_worker(runtime, sub_image, workload.queries, config,
                             options);
      baseline_wall = n;
    } catch (const msp::OutOfMemoryBudget&) {
      std::cout << "baseline (replicated DB): OOM at " << msp::group_digits(n)
                << " sequences (last success: "
                << msp::group_digits(baseline_wall) << ")\n";
      break;
    }
  }
  {
    const msp::sim::Runtime runtime(p_wall, msp::bench::bench_network(),
                                    msp::bench::bench_compute());
    msp::AlgorithmAOptions options;
    options.memory_budget_bytes = budget;
    try {
      msp::run_algorithm_a(runtime, image, workload.queries, config, options);
      std::cout << "Algorithm A (O(N/p)): full " << msp::group_digits(sequences)
                << "-sequence database fits on p=" << p_wall
                << " under the same budget\n";
    } catch (const msp::OutOfMemoryBudget&) {
      std::cout << "Algorithm A: unexpectedly exceeded the budget\n";
    }
  }
  std::cout << "paper: baseline capped at 1.27M sequences/GB; A analyzed "
               "2.65M sequences on 8 processors.\n";
  return 0;
}
