#!/usr/bin/env python3
"""Self-test for mspar_tidy.py that needs no clang-tidy binary.

The plugin itself only builds where LLVM dev headers exist (CI), but the
driver's logic — diagnostic parsing, the fixture expectation matrix, the
NOLINT audit — is what decides pass/fail, so it gets tested everywhere via
canned clang-tidy output and a synthetic tree. Registered as the
`mspar_tidy_selftest` ctest leg unconditionally.
"""

import importlib.util
import os
import sys
import tempfile
import unittest

_HERE = os.path.dirname(os.path.abspath(__file__))
_SPEC = importlib.util.spec_from_file_location(
    "mspar_tidy", os.path.join(_HERE, "mspar_tidy.py")
)
mspar_tidy = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(mspar_tidy)


CANNED = """\
/repo/src/core/foo.cpp:12:3: warning: 'rand' is a host wall-clock/entropy \
source; engine code must charge the simulated VirtualClock \
[mspar-no-wall-clock]
  rand();
  ^
/repo/src/core/foo.cpp:40:7: warning: iterating an unordered container \
leaks hash-table order into the result [mspar-no-unordered-iteration]
/repo/src/core/foo.cpp:44:7: warning: unused variable 'x' \
[clang-diagnostic-unused-variable]
12 warnings generated.
Suppressed 11 warnings (11 in non-user code).
"""


class ParseDiagnostics(unittest.TestCase):
    def test_extracts_checks_lines_and_levels(self):
        diags = list(mspar_tidy.parse_diagnostics(CANNED))
        self.assertEqual(len(diags), 3)
        self.assertEqual(diags[0]["check"], "mspar-no-wall-clock")
        self.assertEqual(diags[0]["line"], 12)
        self.assertEqual(diags[0]["col"], 3)
        self.assertEqual(diags[1]["check"], "mspar-no-unordered-iteration")
        self.assertEqual(diags[2]["check"],
                         "clang-diagnostic-unused-variable")
        self.assertTrue(all(d["level"] == "warning" for d in diags))

    def test_detects_compile_errors(self):
        text = "/repo/a.cpp:3:1: error: unknown type name 'Recrd'\n"
        diags = list(mspar_tidy.parse_diagnostics(text))
        self.assertEqual(len(diags), 1)
        self.assertEqual(diags[0]["level"], "error")
        self.assertIsNone(diags[0]["check"])

    def test_ignores_context_and_summary_lines(self):
        text = "  rand();\n  ^\n12 warnings generated.\n"
        self.assertEqual(list(mspar_tidy.parse_diagnostics(text)), [])


class ExpectedLines(unittest.TestCase):
    def test_marker_map(self):
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "bad.cpp")
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(
                    "int a;\n"
                    "rand();  // MSPAR: mspar-no-wall-clock\n"
                    "int b;  // unrelated comment\n"
                    "lgamma(x);  // MSPAR: mspar-thread-unsafe-libm\n"
                )
            self.assertEqual(
                mspar_tidy.expected_lines(path),
                {2: "mspar-no-wall-clock",
                 4: "mspar-thread-unsafe-libm"},
            )


class FixtureMatrix(unittest.TestCase):
    """run_one_fixture against canned clang-tidy output."""

    def run_fixture(self, fixture_text, tidy_output):
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "bad.cpp")
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(fixture_text)
            original = mspar_tidy.run_clang_tidy
            mspar_tidy.run_clang_tidy = lambda *a, **k: (
                0,
                tidy_output.replace("@FIXTURE@", path),
            )
            try:
                options = type(
                    "Options",
                    (),
                    {"clang_tidy": "ct", "plugin": "so"},
                )()
                return mspar_tidy.run_one_fixture(
                    options, "mspar-no-wall-clock", path, "inc"
                )
            finally:
                mspar_tidy.run_clang_tidy = original

    def test_expected_firing_passes(self):
        failures = self.run_fixture(
            "rand();  // MSPAR: mspar-no-wall-clock\n",
            "@FIXTURE@:1:1: warning: banned [mspar-no-wall-clock]\n",
        )
        self.assertEqual(failures, [])

    def test_missing_diagnostic_fails(self):
        failures = self.run_fixture(
            "rand();  // MSPAR: mspar-no-wall-clock\n", ""
        )
        self.assertEqual(len(failures), 1)
        self.assertIn("did not fire", failures[0])

    def test_unmarked_line_firing_fails(self):
        failures = self.run_fixture(
            "int ok;\n",
            "@FIXTURE@:1:1: warning: banned [mspar-no-wall-clock]\n",
        )
        self.assertEqual(len(failures), 1)
        self.assertIn("unmarked line fired", failures[0])

    def test_compile_error_fails(self):
        failures = self.run_fixture(
            "int ok;\n", "@FIXTURE@:1:1: error: broken fixture\n"
        )
        self.assertEqual(len(failures), 1)
        self.assertIn("does not compile clean", failures[0])


class NolintAudit(unittest.TestCase):
    def write_tree(self, tmp, rel, text):
        path = os.path.join(tmp, rel)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text)

    def test_justified_passes_unjustified_fails(self):
        with tempfile.TemporaryDirectory() as tmp:
            self.write_tree(
                tmp,
                "src/core/a.cpp",
                "x();  // NOLINT(mspar-no-wall-clock): bench-only path\n"
                "y();  // NOLINT(mspar-no-wall-clock)\n",
            )
            failures = mspar_tidy.audit_nolint(tmp)
            self.assertEqual(len(failures), 1)
            self.assertIn("a.cpp:2", failures[0])
            self.assertIn("no justification", failures[0])

    def test_bare_nolint_rejected_only_under_src(self):
        with tempfile.TemporaryDirectory() as tmp:
            self.write_tree(tmp, "src/b.cpp", "z();  // NOLINT\n")
            self.write_tree(tmp, "tests/c.cpp", "z();  // NOLINT\n")
            failures = mspar_tidy.audit_nolint(tmp)
            self.assertEqual(len(failures), 1)
            self.assertIn("src", failures[0])
            self.assertIn("bare NOLINT", failures[0])

    def test_non_mspar_nolint_ignored(self):
        with tempfile.TemporaryDirectory() as tmp:
            self.write_tree(
                tmp, "src/d.cpp",
                "w();  // NOLINT(bugprone-branch-clone)\n"
            )
            self.assertEqual(mspar_tidy.audit_nolint(tmp), [])

    def test_build_dirs_skipped(self):
        with tempfile.TemporaryDirectory() as tmp:
            self.write_tree(
                tmp, "build/src/e.cpp",
                "v();  // NOLINT(mspar-no-wall-clock)\n"
            )
            self.assertEqual(mspar_tidy.audit_nolint(tmp), [])


class RepoFixturesWellFormed(unittest.TestCase):
    """The committed fixture tree itself: markers name real checks, every
    bad fixture has at least one marker, every check has a bad/good pair."""

    def test_fixture_tree(self):
        fixtures = os.path.join(_HERE, "fixtures")
        dirs = sorted(
            d
            for d in os.listdir(fixtures)
            if os.path.isdir(os.path.join(fixtures, d)) and d != "include"
        )
        self.assertEqual(
            ["mspar-" + d for d in dirs], sorted(mspar_tidy.CHECKS)
        )
        for d in dirs:
            check = "mspar-" + d
            files = sorted(os.listdir(os.path.join(fixtures, d)))
            self.assertIn("bad.cpp", files, d)
            self.assertIn("good.cpp", files, d)
            bad = mspar_tidy.expected_lines(
                os.path.join(fixtures, d, "bad.cpp")
            )
            self.assertTrue(bad, f"{d}/bad.cpp has no MSPAR markers")
            self.assertEqual(set(bad.values()), {check}, d)
            good = mspar_tidy.expected_lines(
                os.path.join(fixtures, d, "good.cpp")
            )
            self.assertEqual(good, {}, f"{d}/good.cpp must be silent")

    def test_repo_nolint_audit_is_clean(self):
        repo = os.path.dirname(os.path.dirname(_HERE))
        self.assertEqual(mspar_tidy.audit_nolint(repo), [])


if __name__ == "__main__":
    unittest.main(verbosity=2)
