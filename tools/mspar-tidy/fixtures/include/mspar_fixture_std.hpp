// Hermetic miniature of the std/libc surface the mspar-tidy fixtures
// exercise. The fixtures compile with `-nostdinc++` against this header
// only, so the suite never depends on the host's standard library headers
// (clang-tidy's AST matchers key on *names* like ::std::unordered_map and
// ::lgamma, which these stubs reproduce exactly). Keep declarations minimal:
// just enough shape for the fixtures to type-check.
#pragma once

typedef unsigned long mspar_size_t;

extern "C" {
// --- wall clock / entropy (mspar-no-wall-clock) ---
long time(long*);
long clock(void);
int gettimeofday(void*, void*);
int clock_gettime(int, void*);
int rand(void);
void srand(unsigned);
long random(void);
double drand48(void);

// --- global-state libc/libm and their _r variants (thread-unsafe-libm) ---
double lgamma(double);
double lgamma_r(double, int*);
extern int signgam;
char* strtok(char*, const char*);
char* strtok_r(char*, const char*, char**);
struct tm;
struct tm* localtime(const long*);
struct tm* localtime_r(const long*, struct tm*);

// --- raw memory (unchecked-wire-read) ---
void* memcpy(void*, const void*, mspar_size_t);
}

namespace std {

using size_t = mspar_size_t;

enum class byte : unsigned char {};

// --- chrono clocks and random_device (mspar-no-wall-clock) ---
namespace chrono {
struct system_clock {
  struct time_point {};
  static time_point now();
};
struct steady_clock {
  struct time_point {};
  static time_point now();
};
struct high_resolution_clock {
  struct time_point {};
  static time_point now();
};
}  // namespace chrono

struct random_device {
  unsigned operator()();
};

struct mt19937 {
  explicit mt19937(unsigned seed);
  unsigned operator()();
};

// --- comparators (mspar-no-pointer-ordering) ---
template <typename T = void>
struct less {
  bool operator()(const T& a, const T& b) const;
};
template <typename T = void>
struct greater {
  bool operator()(const T& a, const T& b) const;
};

// --- containers ---
template <typename T>
struct vector {
  using iterator = T*;
  using const_iterator = const T*;
  vector();
  void resize(size_t n);
  void push_back(const T& value);
  T* data();
  const T* data() const;
  size_t size() const;
  bool empty() const;
  iterator begin();
  iterator end();
  const_iterator begin() const;
  const_iterator end() const;
  T& operator[](size_t i);
};

struct string {
  const char* data() const;
  size_t size() const;
};

template <typename K, typename V, typename Compare = less<K>>
struct map {
  struct iterator {
    bool operator!=(const iterator& other) const;
    iterator& operator++();
    V& operator*();
  };
  iterator begin();
  iterator end();
  iterator find(const K& key);
  V& operator[](const K& key);
  size_t count(const K& key) const;
};

template <typename K, typename Compare = less<K>>
struct set {
  struct iterator {
    bool operator!=(const iterator& other) const;
    iterator& operator++();
    const K& operator*();
  };
  iterator begin();
  iterator end();
  size_t count(const K& key) const;
};

template <typename T, typename Container = vector<T>,
          typename Compare = less<T>>
struct priority_queue {
  void push(const T& value);
  const T& top() const;
  void pop();
  bool empty() const;
};

template <typename K, typename V>
struct unordered_map {
  struct value_type {
    K first;
    V second;
  };
  struct iterator {
    bool operator!=(const iterator& other) const;
    iterator& operator++();
    value_type& operator*();
    value_type* operator->();
  };
  using const_iterator = iterator;
  iterator begin();
  iterator end();
  const_iterator cbegin() const;
  const_iterator cend() const;
  iterator find(const K& key);
  V& operator[](const K& key);
  V& at(const K& key);
  size_t count(const K& key) const;
  bool contains(const K& key) const;
};

template <typename K>
struct unordered_set {
  struct iterator {
    bool operator!=(const iterator& other) const;
    iterator& operator++();
    const K& operator*();
  };
  using const_iterator = iterator;
  iterator begin();
  iterator end();
  const_iterator cbegin() const;
  const_iterator cend() const;
  iterator find(const K& key);
  size_t count(const K& key) const;
  bool contains(const K& key) const;
};

// --- iteration/algorithm surface the checks look through ---
template <typename C>
auto begin(C& c) -> decltype(c.begin()) {
  return c.begin();
}
template <typename C>
auto end(C& c) -> decltype(c.end()) {
  return c.end();
}

template <typename It, typename T>
T accumulate(It first, It last, T init);

template <typename It, typename Compare>
void sort(It first, It last, Compare cmp);
template <typename It>
void sort(It first, It last);

}  // namespace std
