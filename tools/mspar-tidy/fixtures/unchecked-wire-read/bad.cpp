// Rejection fixture for mspar-unchecked-wire-read: materializing typed
// records from raw payload bytes without the checked wire helpers.
#include <mspar_fixture_std.hpp>

namespace engine {

struct Record {
  double mass;
  int length;
};

Record decode_one(const std::vector<char>& payload) {
  Record record;
  memcpy(&record,  // MSPAR: mspar-unchecked-wire-read
         payload.data(), sizeof(Record));
  return record;
}

void decode_array(const std::vector<char>& payload,
                  std::vector<Record>& out) {
  out.resize(payload.size() / sizeof(Record));
  memcpy(out.data(),  // MSPAR: mspar-unchecked-wire-read
         payload.data(), payload.size());
}

const Record* view_cast(const std::vector<char>& payload) {
  return reinterpret_cast<  // MSPAR: mspar-unchecked-wire-read
      const Record*>(payload.data());
}

const Record* byte_cast(const std::byte* raw) {
  return reinterpret_cast<  // MSPAR: mspar-unchecked-wire-read
      const Record*>(raw);
}

}  // namespace engine
