// Acceptance fixture for mspar-unchecked-wire-read: the encode direction,
// byte-to-byte copies, and decodes routed through namespace wire helpers
// are all sanctioned.
#include <mspar_fixture_std.hpp>

namespace msp {
namespace wire {

// The one sanctioned raw copy: a checked helper that validates the payload
// size before touching memory (mirrors io/wire_record.hpp).
template <typename T>
void checked_array_copy(const std::vector<char>& bytes,
                        std::vector<T>& out) {
  out.resize(bytes.size() / sizeof(T));
  if (!out.empty()) memcpy(out.data(), bytes.data(), bytes.size());
}

}  // namespace wire
}  // namespace msp

namespace engine {

struct Record {
  double mass;
  int length;
};

// Encode direction: exposing typed records as bytes for the transport.
const char* expose_as_bytes(const std::vector<Record>& records) {
  return reinterpret_cast<const char*>(records.data());
}

// Byte-to-byte staging copies never materialize typed state.
void stage(const std::vector<char>& in, std::vector<char>& out) {
  out.resize(in.size());
  if (!in.empty()) memcpy(out.data(), in.data(), in.size());
}

void checked_decode(const std::vector<char>& payload,
                    std::vector<Record>& out) {
  msp::wire::checked_array_copy(payload, out);
}

Record justified_raw_decode(const std::vector<char>& payload) {
  Record record;
  // NOLINTNEXTLINE(mspar-unchecked-wire-read): size proven by caller
  memcpy(&record, payload.data(), sizeof(Record));
  return record;
}

}  // namespace engine
