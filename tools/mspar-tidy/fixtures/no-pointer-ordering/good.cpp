// Acceptance fixture for mspar-no-pointer-ordering: ordering by stable
// value keys, pointer equality, and iterator-style != walks are all fine.
#include <mspar_fixture_std.hpp>

namespace engine {

struct Candidate {
  int ordinal;
  double mass;
};

void value_keyed_containers() {
  std::set<int> by_ordinal;
  std::map<int, Candidate*> by_id;  // pointer VALUES are fine; keys order
  std::less<int> cmp;
  (void)by_ordinal;
  (void)by_id;
  (void)cmp;
}

void stable_sort_through_pointers(std::vector<Candidate*>& candidates) {
  // Ordering *through* pointers by a stable field is deterministic.
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate* a, const Candidate* b) {
              return a->ordinal < b->ordinal;
            });
}

bool identity(const Candidate* a, const Candidate* b) {
  return a == b;  // equality does not depend on address order
}

int pointer_walk(const Candidate* first, const Candidate* last) {
  int count = 0;
  for (const Candidate* it = first; it != last; ++it) ++count;
  return count;
}

bool justified_buffer_order(const Candidate* a, const Candidate* b,
                            std::vector<Candidate*>& scratch) {
  std::sort(scratch.begin(), scratch.end(),
            [](const Candidate* x, const Candidate* y) {
              // Both point into one contiguous arena, so < is the stable
              // ordinal order.
              // NOLINTNEXTLINE(mspar-no-pointer-ordering): same-arena order
              return x < y;
            });
  return a == b;
}

}  // namespace engine
