// Rejection fixture for mspar-no-pointer-ordering.
#include <mspar_fixture_std.hpp>

namespace engine {

struct Candidate {
  int ordinal;
  double mass;
};

void address_keyed_containers() {
  std::set<Candidate*> by_address;  // MSPAR: mspar-no-pointer-ordering
  std::map<Candidate*, int>  // MSPAR: mspar-no-pointer-ordering
      votes;
  std::priority_queue<Candidate*>  // MSPAR: mspar-no-pointer-ordering
      queue;
  (void)by_address;
  (void)votes;
  (void)queue;
}

void address_comparator() {
  std::less<const Candidate*> cmp;  // MSPAR: mspar-no-pointer-ordering
  (void)cmp;
}

void address_sort(std::vector<Candidate*>& candidates) {
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate* a, const Candidate* b) {
              return a < b;  // MSPAR: mspar-no-pointer-ordering
            });
}

}  // namespace engine
