// Acceptance fixture for mspar-no-unordered-iteration: keyed lookups into
// unordered containers are deterministic (simcheck's shard shadow map is
// the in-tree exemplar), ordered containers may be traversed freely, and a
// justified NOLINT covers the one sanctioned traversal shape.
#include <mspar_fixture_std.hpp>

namespace engine {

double keyed_lookups(std::unordered_map<int, double>& shadows, int key) {
  double total = 0.0;
  auto it = shadows.find(key);
  if (it != shadows.end()) total += (*it).second;
  if (shadows.contains(key)) total += shadows.at(key);
  total += static_cast<double>(shadows.count(key));
  shadows[key] = total;
  return total;
}

double ordered_traversal(std::map<int, double>& ordered) {
  double total = 0.0;
  for (auto it = ordered.begin(); it != ordered.end(); ++it) total += *it;
  return total;
}

int vector_accumulate(std::vector<int>& values) {
  return std::accumulate(values.begin(), values.end(), 0);
}

long justified_drain(std::unordered_map<int, long>& counters) {
  long total = 0;
  // Integer addition commutes, so this total is order-invariant (a double
  // sum would NOT be — FP addition is non-associative).
  // NOLINTNEXTLINE(mspar-no-unordered-iteration): integer sum commutes
  for (auto& entry : counters) total += entry.second;
  return total;
}

}  // namespace engine
