// Rejection fixture for mspar-no-unordered-iteration.
#include <mspar_fixture_std.hpp>

namespace engine {

double drain_counters(std::unordered_map<int, double>& counters) {
  double total = 0.0;
  for (auto& entry : counters) {  // MSPAR: mspar-no-unordered-iteration
    total += entry.second;
  }
  return total;
}

int iterator_walk(std::unordered_map<int, int>& table) {
  int sum = 0;
  // Both begin() and end() fire; one marked line covers the pair.
  for (auto it = table.begin();  // MSPAR: mspar-no-unordered-iteration
       it != table.end(); ++it) {  // MSPAR: mspar-no-unordered-iteration
    sum += (*it).second;
  }
  return sum;
}

int accumulate_set(std::unordered_set<int>& seen) {
  return std::accumulate(
      seen.cbegin(),  // MSPAR: mspar-no-unordered-iteration
      seen.cend(), 0);  // MSPAR: mspar-no-unordered-iteration
}

auto free_begin(std::unordered_set<int>& seen) {
  return std::begin(seen);  // MSPAR: mspar-no-unordered-iteration
}

}  // namespace engine
