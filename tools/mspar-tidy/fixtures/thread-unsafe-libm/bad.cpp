// Rejection fixture for mspar-thread-unsafe-libm.
#include <mspar_fixture_std.hpp>

namespace engine {

double log_factorial(int n) {
  double value = lgamma(  // MSPAR: mspar-thread-unsafe-libm
      static_cast<double>(n) + 1.0);
  int sign = signgam;  // MSPAR: mspar-thread-unsafe-libm
  return value * sign;
}

char* first_token(char* text) {
  return strtok(text, " ");  // MSPAR: mspar-thread-unsafe-libm
}

const tm* static_calendar(const long* stamp) {
  return localtime(stamp);  // MSPAR: mspar-thread-unsafe-libm
}

}  // namespace engine
