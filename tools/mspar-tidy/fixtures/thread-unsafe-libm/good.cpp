// Acceptance fixture for mspar-thread-unsafe-libm: the re-entrant variants
// carry their state in caller-owned out-parameters and never race.
#include <mspar_fixture_std.hpp>

namespace engine {

double log_factorial(int n) {
  int sign = 0;
  return lgamma_r(static_cast<double>(n) + 1.0, &sign);
}

char* first_token(char* text) {
  char* state = nullptr;
  return strtok_r(text, " ", &state);
}

const tm* reentrant_calendar(const long* stamp, tm* out) {
  return localtime_r(stamp, out);
}

double justified_single_threaded(int n) {
  // NOLINTNEXTLINE(mspar-thread-unsafe-libm): single-threaded CLI startup
  return lgamma(static_cast<double>(n) + 1.0);
}

}  // namespace engine
