// Acceptance fixture for mspar-no-wall-clock: deterministic time and
// randomness — a virtual clock owned by the caller and a seeded generator —
// plus one justified NOLINT. Must produce zero diagnostics.
#include <mspar_fixture_std.hpp>

namespace engine {

// The sanctioned shape: time is a value the (simulated) runtime advances.
struct VirtualClock {
  double now_seconds = 0.0;
  void charge_compute(double seconds) { now_seconds += seconds; }
};

double charge(VirtualClock& clock) {
  clock.charge_compute(1.5e-9);
  return clock.now_seconds;
}

unsigned seeded_draw(unsigned seed) {
  std::mt19937 generator(seed);  // seeded stream: reproducible by design
  return generator();
}

double bench_only_timing() {
  // Host timing is allowed when the determinism argument is documented:
  // NOLINTNEXTLINE(mspar-no-wall-clock): fixture for justified suppression;
  using Clock = std::chrono::steady_clock;
  Clock::now();
  return 0.0;
}

}  // namespace engine
