// Rejection fixture for mspar-no-wall-clock: every `// MSPAR:` line must
// produce exactly that diagnostic; any other line must stay silent.
#include <mspar_fixture_std.hpp>

namespace engine {

double sample_latency() {
  using Clock = std::chrono::steady_clock;  // MSPAR: mspar-no-wall-clock
  Clock::time_point start = Clock::now();
  (void)start;
  std::chrono::system_clock::now();  // MSPAR: mspar-no-wall-clock
  std::chrono::high_resolution_clock::now();  // MSPAR: mspar-no-wall-clock
  return 0.0;
}

unsigned unseeded_entropy() {
  std::random_device device;  // MSPAR: mspar-no-wall-clock
  unsigned seed = device();
  long now = time(nullptr);  // MSPAR: mspar-no-wall-clock
  gettimeofday(nullptr, nullptr);  // MSPAR: mspar-no-wall-clock
  clock_gettime(0, nullptr);  // MSPAR: mspar-no-wall-clock
  srand(seed);  // MSPAR: mspar-no-wall-clock
  int draw = rand();  // MSPAR: mspar-no-wall-clock
  double wide = drand48();  // MSPAR: mspar-no-wall-clock
  return seed + static_cast<unsigned>(draw + now) +
         static_cast<unsigned>(wide);
}

}  // namespace engine
