#include "ThreadUnsafeLibmCheck.h"

#include "clang/AST/ASTContext.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"
#include "llvm/ADT/StringSwitch.h"

using namespace clang::ast_matchers;

namespace clang::tidy::mspar {

namespace {

/// The sanctioned re-entrant replacement, or "" when there is none to name.
llvm::StringRef replacementFor(llvm::StringRef Name) {
  return llvm::StringSwitch<llvm::StringRef>(Name)
      .Case("lgamma", "lgamma_r")
      .Case("lgammaf", "lgammaf_r")
      .Case("lgammal", "lgammal_r")
      .Case("gamma", "lgamma_r")
      .Case("strtok", "strtok_r")
      .Case("localtime", "localtime_r")
      .Case("gmtime", "gmtime_r")
      .Case("ctime", "ctime_r")
      .Case("asctime", "asctime_r")
      .Default("");
}

}  // namespace

ThreadUnsafeLibmCheck::ThreadUnsafeLibmCheck(StringRef Name,
                                             ClangTidyContext *Context)
    : ClangTidyCheck(Name, Context) {}

void ThreadUnsafeLibmCheck::registerMatchers(MatchFinder *Finder) {
  // Both the C names and their std:: re-exports resolve to the same
  // global-namespace declarations on glibc; list both spellings anyway so
  // a stdlib that declares std::lgamma as its own function still matches.
  Finder->addMatcher(
      callExpr(callee(functionDecl(hasAnyName(
                   "::lgamma", "::lgammaf", "::lgammal", "::std::lgamma",
                   "::gamma", "::strtok", "::localtime", "::gmtime",
                   "::ctime", "::asctime"))))
          .bind("call"),
      this);
  Finder->addMatcher(
      declRefExpr(to(varDecl(hasName("::signgam")))).bind("signgam"), this);
}

void ThreadUnsafeLibmCheck::check(const MatchFinder::MatchResult &Result) {
  const SourceManager &SM = *Result.SourceManager;
  if (const auto *Ref = Result.Nodes.getNodeAs<DeclRefExpr>("signgam")) {
    if (!diagnosable(SM, Ref->getBeginLoc())) return;
    diag(Ref->getBeginLoc(),
         "'signgam' is process-global state written by every lgamma call; "
         "use lgamma_r and its sign out-parameter instead");
    return;
  }
  const auto *Call = Result.Nodes.getNodeAs<CallExpr>("call");
  if (!Call || !diagnosable(SM, Call->getBeginLoc())) return;
  const FunctionDecl *FD = Call->getDirectCallee();
  if (!FD) return;
  const std::string Name = FD->getNameAsString();
  const llvm::StringRef Replacement = replacementFor(Name);
  diag(Call->getBeginLoc(),
       "'%0' mutates process-global libc state and races across kernel "
       "threads; use the re-entrant '%1' (cf. the PR-3 signgam race in "
       "scoring/hyperscore.cpp)")
      << Name << (Replacement.empty() ? llvm::StringRef("_r variant")
                                      : Replacement);
}

}  // namespace clang::tidy::mspar
