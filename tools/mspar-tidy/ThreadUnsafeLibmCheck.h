// mspar-thread-unsafe-libm — ban libc/libm calls that mutate process
// globals, in favor of their _r variants.
//
// PR 3's TSan find is the motivating bug: std::lgamma writes the POSIX
// global `signgam` on every call, so two kernel threads scoring
// concurrently raced on it even though neither read it. The fix
// (::lgamma_r in scoring/hyperscore.cpp) generalizes to a family of
// functions whose results or side state live in process globals:
//
//   lgamma/lgammaf/lgammal, gamma (all write signgam)  -> lgamma_r family
//   strtok (static scan pointer)                       -> strtok_r
//   localtime/gmtime/ctime/asctime (static tm/buffer)  -> *_r variants
//   any direct read or write of signgam itself
//
// Unlike the other checks this one has no default path scope: these
// functions are wrong in a deterministic multithreaded engine anywhere,
// including tests and benches (a racing test is a flaky test). The _r
// variants never match.
#pragma once

#include "MsparTidyUtil.h"
#include "clang-tidy/ClangTidyCheck.h"

namespace clang::tidy::mspar {

class ThreadUnsafeLibmCheck : public ClangTidyCheck {
 public:
  ThreadUnsafeLibmCheck(StringRef Name, ClangTidyContext *Context);
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
};

}  // namespace clang::tidy::mspar
