#include "NoPointerOrderingCheck.h"

#include "clang/AST/ASTContext.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace clang::tidy::mspar {

NoPointerOrderingCheck::NoPointerOrderingCheck(StringRef Name,
                                               ClangTidyContext *Context)
    : ClangTidyCheck(Name, Context),
      Paths_(Options.get("Paths", "(^|/)src/")) {}

void NoPointerOrderingCheck::storeOptions(ClangTidyOptions::OptionMap &Opts) {
  Options.store(Opts, "Paths", Paths_.pattern());
}

void NoPointerOrderingCheck::registerMatchers(MatchFinder *Finder) {
  const auto PointerKey = hasTemplateArgument(0, refersToType(pointerType()));
  const auto ComparatorDecl = classTemplateSpecializationDecl(
      hasAnyName("::std::less", "::std::greater", "::std::less_equal",
                 "::std::greater_equal"),
      PointerKey);
  const auto ContainerDecl = classTemplateSpecializationDecl(
      hasAnyName("::std::map", "::std::set", "::std::multimap",
                 "::std::multiset", "::std::priority_queue"),
      PointerKey);
  Finder->addMatcher(
      typeLoc(loc(qualType(hasDeclaration(ComparatorDecl)))).bind("cmp"),
      this);
  Finder->addMatcher(
      typeLoc(loc(qualType(hasDeclaration(ContainerDecl)))).bind("cont"),
      this);
  // The hand-written comparator: a relational pointer comparison inside a
  // lambda. Plain `p != end` / `p < end` iterator loops outside lambdas are
  // same-allocation and don't match.
  Finder->addMatcher(
      binaryOperator(hasAnyOperatorName("<", ">", "<=", ">="),
                     hasLHS(expr(hasType(isAnyPointer()))),
                     hasRHS(expr(hasType(isAnyPointer()))),
                     hasAncestor(lambdaExpr()))
          .bind("relop"),
      this);
}

void NoPointerOrderingCheck::check(const MatchFinder::MatchResult &Result) {
  const SourceManager &SM = *Result.SourceManager;
  SourceLocation Loc;
  std::string What;
  const char *Form = "";
  if (const auto *TL = Result.Nodes.getNodeAs<TypeLoc>("cmp")) {
    Loc = TL->getBeginLoc();
    What = TL->getType().getAsString();
    Form = "comparator over pointers";
  } else if (const auto *TL = Result.Nodes.getNodeAs<TypeLoc>("cont")) {
    Loc = TL->getBeginLoc();
    What = TL->getType().getAsString();
    Form = "ordered container keyed on a pointer";
  } else if (const auto *Op = Result.Nodes.getNodeAs<BinaryOperator>(
                 "relop")) {
    Loc = Op->getOperatorLoc();
    What = Op->getOpcodeStr().str();
    Form = "relational pointer comparison in a lambda";
  }
  if (!diagnosable(SM, Loc) || !Paths_.matches(SM, Loc)) return;
  if (!Reported_.insert(SM.getSpellingLoc(Loc).getRawEncoding()).second)
    return;
  diag(Loc,
       "'%0' orders by pointer value (%1): addresses change run-to-run "
       "under ASLR, so the order is nondeterministic; key on a stable id "
       "(ordinal, mass, name) instead")
      << What << Form;
}

}  // namespace clang::tidy::mspar
