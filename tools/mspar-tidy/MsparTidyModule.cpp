// mspar-tidy: the repo's determinism invariant, enforced at compile time.
//
// The whole optimization story — SIMD kernels, mass-aware routing, the
// continuous serving ring — rests on one invariant: hits, stats, traces and
// wire records are bit-identical across threads, backends, transports and
// fault schedules. The runtime enforcement (oracle test matrices, TSan,
// simcheck) only catches a violation a test happens to tickle; this plugin
// makes the known violation *classes* unrepresentable in a clean tree:
//
//   mspar-no-wall-clock         host time/entropy outside simmpi + bench
//   mspar-no-unordered-iteration  hash-order traversals in src/
//   mspar-no-pointer-ordering   address-keyed orderings (ASLR-dependent)
//   mspar-thread-unsafe-libm    global-state libc/libm (the signgam class)
//   mspar-unchecked-wire-read   raw decodes bypassing the wire helpers
//
// Build: a clang-tidy plugin module, loaded into the stock clang-tidy via
//   clang-tidy --load=libmspar-tidy.so --checks='mspar-*' ...
// (see tools/mspar-tidy/CMakeLists.txt for the MSPAR_TIDY_PLUGIN tri-state
// and tools/mspar-tidy/mspar_tidy.py for the fixture suite and tree gate).
// Suppression: // NOLINT(mspar-<check>): <justification> — the tree gate
// rejects NOLINTs without one.
#include "NoPointerOrderingCheck.h"
#include "NoUnorderedIterationCheck.h"
#include "NoWallClockCheck.h"
#include "ThreadUnsafeLibmCheck.h"
#include "UncheckedWireReadCheck.h"
#include "clang-tidy/ClangTidyModule.h"
#include "clang-tidy/ClangTidyModuleRegistry.h"

namespace clang::tidy {
namespace mspar {

class MsparTidyModule : public ClangTidyModule {
 public:
  void addCheckFactories(ClangTidyCheckFactories &CheckFactories) override {
    CheckFactories.registerCheck<NoWallClockCheck>("mspar-no-wall-clock");
    CheckFactories.registerCheck<NoUnorderedIterationCheck>(
        "mspar-no-unordered-iteration");
    CheckFactories.registerCheck<NoPointerOrderingCheck>(
        "mspar-no-pointer-ordering");
    CheckFactories.registerCheck<ThreadUnsafeLibmCheck>(
        "mspar-thread-unsafe-libm");
    CheckFactories.registerCheck<UncheckedWireReadCheck>(
        "mspar-unchecked-wire-read");
  }
};

}  // namespace mspar

// Register with the stock clang-tidy's module registry at plugin load.
static ClangTidyModuleRegistry::Add<mspar::MsparTidyModule> X(
    "mspar-module", "Determinism-invariant checks for the mspar engine.");

}  // namespace clang::tidy
