#include "UncheckedWireReadCheck.h"

#include "clang/AST/ASTContext.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace clang::tidy::mspar {

UncheckedWireReadCheck::UncheckedWireReadCheck(StringRef Name,
                                               ClangTidyContext *Context)
    : ClangTidyCheck(Name, Context),
      Paths_(Options.get("Paths", "(^|/)src/(io|core)/")) {}

void UncheckedWireReadCheck::storeOptions(ClangTidyOptions::OptionMap &Opts) {
  Options.store(Opts, "Paths", Paths_.pattern());
}

void UncheckedWireReadCheck::registerMatchers(MatchFinder *Finder) {
  // "Byte-ish": the types a raw payload legitimately lives in. A pointer
  // to anything else on the *destination* side of a copy (or cast) means
  // typed state is being materialized from raw bytes.
  const auto ByteQual = qualType(
      anyOf(isAnyCharacter(),
            hasUnqualifiedDesugaredType(anyOf(
                voidType(), enumType(hasDeclaration(
                                namedDecl(hasName("::std::byte"))))))));
  const auto BytePtr =
      qualType(hasUnqualifiedDesugaredType(pointerType(pointee(ByteQual))));
  const auto NonBytePtr = qualType(
      hasUnqualifiedDesugaredType(pointerType(pointee(unless(ByteQual)))));
  const auto InWireNamespace =
      hasAncestor(functionDecl(hasAncestor(namespaceDecl(hasName("wire")))));

  Finder->addMatcher(
      callExpr(callee(functionDecl(
                   hasAnyName("::memcpy", "::std::memcpy", "::memmove",
                              "::std::memmove", "::__builtin_memcpy"))),
               hasArgument(0, expr(hasType(NonBytePtr))),
               hasArgument(1, expr(hasType(BytePtr))),
               unless(InWireNamespace))
          .bind("copy"),
      this);
  Finder->addMatcher(
      cxxReinterpretCastExpr(hasSourceExpression(hasType(BytePtr)),
                             hasDestinationType(NonBytePtr),
                             unless(InWireNamespace))
          .bind("cast"),
      this);
}

void UncheckedWireReadCheck::check(const MatchFinder::MatchResult &Result) {
  const SourceManager &SM = *Result.SourceManager;
  SourceLocation Loc;
  const char *Form = "";
  if (const auto *Copy = Result.Nodes.getNodeAs<CallExpr>("copy")) {
    Loc = Copy->getBeginLoc();
    Form = "memcpy from a raw byte buffer into typed storage";
  } else if (const auto *Cast =
                 Result.Nodes.getNodeAs<CXXReinterpretCastExpr>("cast")) {
    Loc = Cast->getBeginLoc();
    Form = "reinterpret_cast of a raw byte buffer to a typed pointer";
  }
  if (!diagnosable(SM, Loc) || !Paths_.matches(SM, Loc)) return;
  diag(Loc,
       "%0 bypasses the checked wire helpers; decode through wire::Reader / "
       "wire::get_record_header / wire::checked_array_copy so truncated or "
       "corrupt payloads fail as IoError")
      << Form;
}

}  // namespace clang::tidy::mspar
