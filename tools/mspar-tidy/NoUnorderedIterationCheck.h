// mspar-no-unordered-iteration — flag traversals of std::unordered_{map,
// set,multimap,multiset} in engine code.
//
// Hash-table iteration order depends on the allocator, the insertion
// history and the libstdc++ version; any traversal that feeds hits, traces
// or wire records makes the output machine-dependent. simcheck's shard
// shadow map (src/simmpi/check.hpp) is the canonical *allowed* usage: it is
// only ever probed by key (find / operator[]), never iterated, so its order
// can't leak. This check flags the traversal forms:
//
//   * range-for over an unordered container,
//   * member begin()/end()/cbegin()/cend() calls (iterator loops and
//     std::accumulate/std::for_each-style traversals both start here), and
//   * std::begin/std::end/std::cbegin/std::cend on an unordered container.
//
// Keyed lookups (find, count, contains, at, operator[]) never match. Scope
// is limited to paths matching `Paths` (default: src/). A justified NOLINT
// is the escape hatch for a traversal whose order provably cannot reach any
// deterministic output (e.g. draining a map into a sorted vector).
#pragma once

#include "MsparTidyUtil.h"
#include "clang-tidy/ClangTidyCheck.h"

namespace clang::tidy::mspar {

class NoUnorderedIterationCheck : public ClangTidyCheck {
 public:
  NoUnorderedIterationCheck(StringRef Name, ClangTidyContext *Context);
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
  void storeOptions(ClangTidyOptions::OptionMap &Opts) override;

 private:
  PathFilter Paths_;
};

}  // namespace clang::tidy::mspar
