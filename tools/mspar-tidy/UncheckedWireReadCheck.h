// mspar-unchecked-wire-read — flag raw byte-buffer decodes that bypass the
// checked wire helpers.
//
// Every record family that crosses the simulated wire (pack images,
// "MSPARHST"/"MSPARFRG"/"MSPARIDX" trailers, candidate-record bands) is
// decoded through msp::wire — the bounds-checked Reader, the
// get_record_header validators, and checked_array_copy — so corruption
// fails loudly as IoError instead of reading past a buffer or misparsing
// silently. A hand-rolled `memcpy(&record, bytes.data() + off, n)` or a
// `reinterpret_cast<const Record*>(bytes.data())` sidesteps all of that.
// This check flags, in decode direction only:
//
//   * memcpy whose destination is a pointer to a non-byte object type and
//     whose source is a byte pointer (char/unsigned char/std::byte/void),
//   * reinterpret_cast from a byte pointer to a non-byte object pointer.
//
// The encode direction (object -> bytes, e.g. exposing a record array as a
// char span for an RMA window) stays legal, as does byte->byte copying.
// Code lexically inside `namespace wire` is exempt — that is where the one
// sanctioned memcpy lives. Scope: paths matching `Paths` (default src/io/
// and src/core/, the I/O layer plus pack/unpack + transport decode code).
#pragma once

#include "MsparTidyUtil.h"
#include "clang-tidy/ClangTidyCheck.h"

namespace clang::tidy::mspar {

class UncheckedWireReadCheck : public ClangTidyCheck {
 public:
  UncheckedWireReadCheck(StringRef Name, ClangTidyContext *Context);
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
  void storeOptions(ClangTidyOptions::OptionMap &Opts) override;

 private:
  PathFilter Paths_;
};

}  // namespace clang::tidy::mspar
