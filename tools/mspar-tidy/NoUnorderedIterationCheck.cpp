#include "NoUnorderedIterationCheck.h"

#include "clang/AST/ASTContext.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace clang::tidy::mspar {

NoUnorderedIterationCheck::NoUnorderedIterationCheck(StringRef Name,
                                                     ClangTidyContext *Context)
    : ClangTidyCheck(Name, Context),
      Paths_(Options.get("Paths", "(^|/)src/")) {}

void NoUnorderedIterationCheck::storeOptions(
    ClangTidyOptions::OptionMap &Opts) {
  Options.store(Opts, "Paths", Paths_.pattern());
}

void NoUnorderedIterationCheck::registerMatchers(MatchFinder *Finder) {
  const auto UnorderedDecl = classTemplateSpecializationDecl(
      hasAnyName("::std::unordered_map", "::std::unordered_set",
                 "::std::unordered_multimap", "::std::unordered_multiset"));
  // See through references, typedefs and cv: what matters is the canonical
  // record the expression ultimately denotes.
  const auto UnorderedExpr = expr(hasType(
      hasUnqualifiedDesugaredType(recordType(hasDeclaration(UnorderedDecl)))));

  Finder->addMatcher(
      cxxForRangeStmt(hasRangeInit(UnorderedExpr)).bind("range"), this);
  Finder->addMatcher(
      cxxMemberCallExpr(callee(cxxMethodDecl(hasAnyName("begin", "end",
                                                        "cbegin", "cend"))),
                        on(UnorderedExpr))
          .bind("iter"),
      this);
  Finder->addMatcher(
      callExpr(callee(functionDecl(hasAnyName("::std::begin", "::std::end",
                                              "::std::cbegin",
                                              "::std::cend"))),
               hasArgument(0, UnorderedExpr))
          .bind("iter"),
      this);
}

void NoUnorderedIterationCheck::check(
    const MatchFinder::MatchResult &Result) {
  const SourceManager &SM = *Result.SourceManager;
  SourceLocation Loc;
  if (const auto *Range = Result.Nodes.getNodeAs<CXXForRangeStmt>("range"))
    Loc = Range->getBeginLoc();
  else if (const auto *Iter = Result.Nodes.getNodeAs<CallExpr>("iter"))
    Loc = Iter->getBeginLoc();
  if (!diagnosable(SM, Loc) || !Paths_.matches(SM, Loc)) return;
  diag(Loc,
       "iterating an unordered container leaks hash-table order into the "
       "result; traverse a sorted copy (or an ordered container), or NOLINT "
       "with a justification that the order cannot reach hits, traces, or "
       "wire records");
}

}  // namespace clang::tidy::mspar
