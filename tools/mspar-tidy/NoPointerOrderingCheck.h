// mspar-no-pointer-ordering — flag orderings keyed on pointer values.
//
// Pointer values differ run-to-run under ASLR (and rank-to-rank in a real
// deployment), so any sort order, comparator or ordered-container key that
// involves an address is nondeterministic across executions even when each
// single run looks stable. This check flags:
//
//   * std::less / std::greater / std::less_equal / std::greater_equal
//     specializations over pointer types (the comparator behind every
//     default-ordered container and sort),
//   * std::map/set/multimap/multiset/priority_queue keyed on a pointer
//     type (their default comparator is std::less<T*>), and
//   * relational comparisons (< > <= >=) of two pointer-typed operands
//     inside a lambda — the hand-written-comparator idiom.
//
// Equality (== !=) and hashing of pointers are fine (unordered_map keyed by
// pointer is deterministic as long as it is never iterated — that's
// mspar-no-unordered-iteration's turf). Same-array relational comparisons
// outside comparator lambdas (e.g. `ptr != end` loops) don't match. Scope:
// paths matching `Paths` (default src/). Escape hatch: justified NOLINT
// (e.g. a lambda ordering pointers *into one contiguous buffer*, which is a
// stable ordinal order).
#pragma once

#include "MsparTidyUtil.h"
#include "clang-tidy/ClangTidyCheck.h"
#include "llvm/ADT/DenseSet.h"

namespace clang::tidy::mspar {

class NoPointerOrderingCheck : public ClangTidyCheck {
 public:
  NoPointerOrderingCheck(StringRef Name, ClangTidyContext *Context);
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
  void storeOptions(ClangTidyOptions::OptionMap &Opts) override;

 private:
  PathFilter Paths_;
  llvm::DenseSet<unsigned> Reported_;
};

}  // namespace clang::tidy::mspar
