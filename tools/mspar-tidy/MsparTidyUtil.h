// Shared helpers for the mspar-tidy checks (tools/mspar-tidy/).
//
// Every check scopes its diagnostics by file path: the determinism rules it
// enforces apply to the deterministic engine (src/) but not, e.g., to the
// simulator's own clock (src/simmpi/) or the wall-clock benches (bench/).
// The path filters are check options (see each check's header) so the
// fixture suite can re-point them at the fixture tree, and so a future
// directory move is a one-line .clang-tidy edit, not a plugin rebuild.
#pragma once

#include <algorithm>
#include <string>

#include "clang/Basic/SourceLocation.h"
#include "clang/Basic/SourceManager.h"
#include "llvm/Support/Regex.h"

namespace clang::tidy::mspar {

/// Spelling-location file path of `Loc` with separators normalized to '/',
/// or "" when the location has no file (builtins, command line).
inline std::string locationPath(const SourceManager &SM, SourceLocation Loc) {
  std::string Path = SM.getFilename(SM.getSpellingLoc(Loc)).str();
  std::replace(Path.begin(), Path.end(), '\\', '/');
  return Path;
}

/// A compiled path filter built from a check option. Empty pattern = never
/// matches (so an empty allowlist allows nothing and an empty restriction
/// restricts everything away explicitly, never accidentally).
class PathFilter {
 public:
  explicit PathFilter(std::string Pattern)
      : Pattern_(std::move(Pattern)), Regex_(Pattern_) {}

  /// True when `Loc` spells inside a file whose path matches the pattern.
  bool matches(const SourceManager &SM, SourceLocation Loc) const {
    if (Pattern_.empty()) return false;
    std::string Error;
    if (!Regex_.isValid(Error)) return false;
    const std::string Path = locationPath(SM, Loc);
    return !Path.empty() && Regex_.match(Path);
  }

  const std::string &pattern() const { return Pattern_; }

 private:
  std::string Pattern_;
  llvm::Regex Regex_;
};

/// Common "should this location diagnose at all" guard: skip invalid
/// locations and system headers (matchers fire inside libstdc++'s own
/// <chrono>/<unordered_map> internals; those are not ours to lint).
inline bool diagnosable(const SourceManager &SM, SourceLocation Loc) {
  if (Loc.isInvalid()) return false;
  return !SM.isInSystemHeader(SM.getSpellingLoc(Loc));
}

}  // namespace clang::tidy::mspar
