#!/usr/bin/env python3
"""Driver for the mspar-tidy clang-tidy plugin (tools/mspar-tidy/).

Three subcommands, shared by ctest and CI:

  fixtures      Run each mspar-* check over its bad/good fixture pair and
                assert the exact firing matrix: every line marked
                `// MSPAR: <check>` must produce that diagnostic, every
                unmarked line must stay silent, NOLINT suppressions must be
                honored, and fixtures must compile clean.

  tree          Run `clang-tidy --checks='-*,mspar-*'` over every
                translation unit in compile_commands.json and fail on any
                mspar diagnostic: the tree-wide clean gate. Also runs the
                NOLINT audit.

  audit-nolint  Scan the tree for undocumented suppressions: any
                NOLINT/NOLINTNEXTLINE naming an mspar check must carry a
                `: <justification>` tail, and bare NOLINTs (which would
                silently swallow mspar diagnostics too) are rejected under
                src/.

Exit codes: 0 clean, 1 findings, 2 environment/usage error.
"""

import argparse
import concurrent.futures
import json
import os
import re
import subprocess
import sys

# clang-tidy diagnostic line: "path:line:col: level: message [check]".
DIAG_RE = re.compile(
    r"^(?P<path>[^\s:][^:]*):(?P<line>\d+):(?P<col>\d+): "
    r"(?P<level>warning|error|fatal error): (?P<msg>.*?)"
    r"(?: \[(?P<check>[^\[\]]+)\])?$"
)

# Fixture expectation marker: the line must fire exactly this check.
MARKER_RE = re.compile(r"//\s*MSPAR:\s*(?P<check>mspar-[a-z-]+)")

# A NOLINT comment; group "checks" is None for the bare (suppress-all) form.
NOLINT_RE = re.compile(
    r"NOLINT(?:NEXTLINE|BEGIN|END)?(?:\((?P<checks>[^)]*)\))?"
)

# A justified suppression carries a non-trivial reason after the list.
JUSTIFIED_RE = re.compile(r"NOLINT(?:NEXTLINE)?\([^)]*\)\s*:\s*\S.{3,}")

CHECKS = [
    "mspar-no-wall-clock",
    "mspar-no-unordered-iteration",
    "mspar-no-pointer-ordering",
    "mspar-thread-unsafe-libm",
    "mspar-unchecked-wire-read",
]

# Fixture runs re-point the path-scoped checks at the fixture tree (their
# defaults only fire under src/); mspar-no-wall-clock keeps its default
# allowlist, which the fixture paths don't match, so it stays active.
FIXTURE_CONFIG = json.dumps({
    "CheckOptions": {
        "mspar-no-unordered-iteration.Paths": ".*",
        "mspar-no-pointer-ordering.Paths": ".*",
        "mspar-unchecked-wire-read.Paths": ".*",
    }
})

SOURCE_EXTS = (".cpp", ".hpp", ".h", ".cc", ".cxx")
SKIP_DIRS = {".git", ".cache", "__pycache__"}


def parse_diagnostics(text):
    """Yield dicts for every clang-tidy diagnostic line in `text`."""
    for line in text.splitlines():
        match = DIAG_RE.match(line)
        if match:
            diag = match.groupdict()
            diag["line"] = int(diag["line"])
            diag["col"] = int(diag["col"])
            yield diag


def expected_lines(fixture_path):
    """Map line number -> expected check name from // MSPAR: markers."""
    expected = {}
    with open(fixture_path, encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            match = MARKER_RE.search(line)
            if match:
                expected[number] = match.group("check")
    return expected


def run_clang_tidy(args, extra):
    command = list(args) + list(extra)
    proc = subprocess.run(
        command, stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True
    )
    return proc.returncode, proc.stdout


def cmd_fixtures(options):
    fixtures_dir = os.path.abspath(options.fixtures_dir)
    include_dir = os.path.join(fixtures_dir, "include")
    failures = []
    ran = 0
    for name in sorted(os.listdir(fixtures_dir)):
        check_dir = os.path.join(fixtures_dir, name)
        if not os.path.isdir(check_dir) or name == "include":
            continue
        check = "mspar-" + name
        if check not in CHECKS:
            failures.append(f"{check_dir}: no such check '{check}'")
            continue
        for fixture in sorted(os.listdir(check_dir)):
            if not fixture.endswith(".cpp"):
                continue
            path = os.path.join(check_dir, fixture)
            ran += 1
            failures.extend(run_one_fixture(options, check, path,
                                            include_dir))
    if not ran:
        failures.append(f"no fixtures found under {fixtures_dir}")
    return report(failures, f"fixtures: {ran} fixture files clean")


def run_one_fixture(options, check, path, include_dir):
    _, output = run_clang_tidy(
        [
            options.clang_tidy,
            f"--load={options.plugin}",
            f"--checks=-*,{check}",
            f"--config={FIXTURE_CONFIG}",
            path,
            "--",
            "-std=c++17",
            "-nostdinc++",
            f"-isystem{include_dir}",
        ],
        [],
    )
    failures = []
    fired = {}  # line -> set of checks
    for diag in parse_diagnostics(output):
        if diag["level"] != "warning":
            failures.append(
                f"{path}: fixture does not compile clean:\n{output}"
            )
            return failures
        if not (diag["check"] or "").startswith("mspar-"):
            continue
        if os.path.basename(diag["path"]) != os.path.basename(path):
            failures.append(
                f"{path}: diagnostic escaped the fixture file: "
                f"{diag['path']}:{diag['line']}"
            )
            continue
        fired.setdefault(diag["line"], set()).add(diag["check"])
    expected = expected_lines(path)
    for line, want in sorted(expected.items()):
        got = fired.pop(line, set())
        if want not in got:
            failures.append(
                f"{path}:{line}: expected [{want}] did not fire"
            )
        got.discard(want)
        for stray in sorted(got):
            failures.append(
                f"{path}:{line}: unexpected extra diagnostic [{stray}]"
            )
    for line, checks in sorted(fired.items()):
        for stray in sorted(checks):
            failures.append(
                f"{path}:{line}: unmarked line fired [{stray}]"
            )
    return failures


def compile_commands_files(build_dir, repo_root):
    """Translation units to gate: everything in the compilation database
    that lives inside the repo and outside any build directory."""
    database = os.path.join(build_dir, "compile_commands.json")
    if not os.path.isfile(database):
        print(f"error: {database} not found (configure with CMake first)",
              file=sys.stderr)
        sys.exit(2)
    with open(database, encoding="utf-8") as handle:
        entries = json.load(handle)
    files = set()
    for entry in entries:
        path = os.path.abspath(
            os.path.join(entry.get("directory", "."), entry["file"])
        )
        rel = os.path.relpath(path, repo_root)
        if rel.startswith(".."):
            continue
        if rel.split(os.sep, 1)[0].startswith("build"):
            continue
        files.add(path)
    return sorted(files)


def cmd_tree(options):
    repo_root = os.path.abspath(options.repo)
    files = compile_commands_files(os.path.abspath(options.build), repo_root)
    if not files:
        print("error: compile_commands.json lists no repo files",
              file=sys.stderr)
        sys.exit(2)

    def gate_one(path):
        _, output = run_clang_tidy(
            [
                options.clang_tidy,
                f"--load={options.plugin}",
                "--checks=-*,mspar-*",
                f"--header-filter={re.escape(repo_root)}/.*",
                "-p",
                options.build,
                path,
            ],
            [],
        )
        return output

    findings = set()
    errors = []
    with concurrent.futures.ThreadPoolExecutor(options.jobs) as pool:
        for output in pool.map(gate_one, files):
            for diag in parse_diagnostics(output):
                # .clang-tidy lists mspar-* in WarningsAsErrors, so tree
                # findings arrive at error level — classify by check name,
                # and keep only check-less errors as hard compile failures.
                if (diag["check"] or "").startswith("mspar-"):
                    findings.add(
                        (
                            diag["path"],
                            diag["line"],
                            diag["col"],
                            diag["check"],
                            diag["msg"],
                        )
                    )
                elif diag["level"] != "warning" and (
                    diag["check"] is None
                    or diag["check"].startswith("clang-diagnostic")
                ):
                    errors.append(
                        f"{diag['path']}:{diag['line']}: {diag['level']}: "
                        f"{diag['msg']}"
                    )
    failures = [
        f"{path}:{line}:{col}: [{check}] {msg}"
        for path, line, col, check, msg in sorted(findings)
    ]
    # Hard compile errors make the gate meaningless — surface them first.
    failures = errors + failures
    failures.extend(audit_nolint(repo_root))
    return report(
        failures, f"tree gate: {len(files)} translation units clean"
    )


def audit_nolint(root):
    """Every mspar suppression must be justified; bare NOLINTs are banned
    under src/ because they swallow mspar diagnostics anonymously."""
    failures = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [
            d
            for d in dirnames
            if d not in SKIP_DIRS and not d.startswith("build")
        ]
        for filename in filenames:
            if not filename.endswith(SOURCE_EXTS):
                continue
            path = os.path.join(dirpath, filename)
            rel = os.path.relpath(path, root)
            try:
                with open(path, encoding="utf-8") as handle:
                    lines = handle.readlines()
            except (OSError, UnicodeDecodeError):
                continue
            for number, line in enumerate(lines, start=1):
                for match in NOLINT_RE.finditer(line):
                    checks = match.group("checks")
                    if checks is None:
                        if rel.startswith("src" + os.sep):
                            failures.append(
                                f"{rel}:{number}: bare NOLINT suppresses "
                                "mspar checks anonymously; name the checks "
                                "and justify"
                            )
                        continue
                    if "mspar" not in checks:
                        continue
                    if not JUSTIFIED_RE.search(line):
                        failures.append(
                            f"{rel}:{number}: NOLINT({checks.strip()}) "
                            "has no justification — write "
                            "'NOLINT(<check>): <why this is safe>'"
                        )
    return failures


def cmd_audit(options):
    return report(
        audit_nolint(os.path.abspath(options.root)), "NOLINT audit clean"
    )


def report(failures, clean_message):
    if failures:
        for failure in failures:
            print(failure)
        print(f"mspar-tidy: {len(failures)} finding(s)", file=sys.stderr)
        return 1
    print(f"mspar-tidy: {clean_message}")
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    fixtures = sub.add_parser("fixtures", help="run the fixture matrix")
    fixtures.add_argument("--clang-tidy", required=True)
    fixtures.add_argument("--plugin", required=True)
    fixtures.add_argument(
        "--fixtures-dir",
        default=os.path.join(os.path.dirname(__file__), "fixtures"),
    )
    fixtures.set_defaults(func=cmd_fixtures)

    tree = sub.add_parser("tree", help="tree-wide clean gate")
    tree.add_argument("--clang-tidy", required=True)
    tree.add_argument("--plugin", required=True)
    tree.add_argument("--build", required=True)
    tree.add_argument("--repo", default=os.path.dirname(
        os.path.dirname(os.path.abspath(os.path.dirname(__file__)))))
    tree.add_argument("--jobs", type=int, default=os.cpu_count() or 4)
    tree.set_defaults(func=cmd_tree)

    audit = sub.add_parser("audit-nolint", help="justified-NOLINT audit")
    audit.add_argument("--root", default=os.path.dirname(
        os.path.dirname(os.path.abspath(os.path.dirname(__file__)))))
    audit.set_defaults(func=cmd_audit)

    options = parser.parse_args(argv)
    return options.func(options)


if __name__ == "__main__":
    sys.exit(main())
