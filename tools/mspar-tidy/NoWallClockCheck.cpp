#include "NoWallClockCheck.h"

#include "clang/AST/ASTContext.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace clang::tidy::mspar {

NoWallClockCheck::NoWallClockCheck(StringRef Name, ClangTidyContext *Context)
    : ClangTidyCheck(Name, Context),
      AllowedPaths_(Options.get("AllowedPaths", "(^|/)(src/simmpi|bench)/")) {}

void NoWallClockCheck::storeOptions(ClangTidyOptions::OptionMap &Opts) {
  Options.store(Opts, "AllowedPaths", AllowedPaths_.pattern());
}

void NoWallClockCheck::registerMatchers(MatchFinder *Finder) {
  // Type-level surface: naming one of the wall clocks (or random_device)
  // anywhere — a variable, an alias, a template argument, a ::now() call's
  // nested-name-specifier — is already a determinism leak in engine code.
  const auto BannedRecord = cxxRecordDecl(hasAnyName(
      "::std::chrono::system_clock", "::std::chrono::steady_clock",
      "::std::chrono::high_resolution_clock", "::std::random_device"));
  Finder->addMatcher(
      typeLoc(loc(qualType(hasDeclaration(BannedRecord)))).bind("type"), this);

  // C surface: direct calls. rand()-family is banned here (not just in
  // mspar-thread-unsafe-libm) because even a single-threaded rand() draws
  // from unseeded process-global state.
  Finder->addMatcher(
      callExpr(callee(functionDecl(hasAnyName(
                   "::time", "::clock", "::gettimeofday", "::clock_gettime",
                   "::timespec_get", "::rand", "::srand", "::random",
                   "::srandom", "::rand_r", "::drand48", "::lrand48",
                   "::mrand48"))))
          .bind("call"),
      this);
}

void NoWallClockCheck::check(const MatchFinder::MatchResult &Result) {
  const SourceManager &SM = *Result.SourceManager;
  SourceLocation Loc;
  std::string What;
  if (const auto *TL = Result.Nodes.getNodeAs<TypeLoc>("type")) {
    Loc = TL->getBeginLoc();
    What = TL->getType().getAsString();
  } else if (const auto *Call = Result.Nodes.getNodeAs<CallExpr>("call")) {
    Loc = Call->getBeginLoc();
    if (const FunctionDecl *FD = Call->getDirectCallee())
      What = FD->getQualifiedNameAsString();
  }
  if (!diagnosable(SM, Loc) || AllowedPaths_.matches(SM, Loc)) return;
  // The same source position can re-match through type sugar (elaborated
  // type + underlying record); report each spelling once.
  if (!Reported_.insert(SM.getSpellingLoc(Loc).getRawEncoding()).second)
    return;
  diag(Loc,
       "'%0' is a host wall-clock/entropy source; engine code must charge "
       "the simulated VirtualClock and draw randomness from seeded msp::rng "
       "streams (allowed only under %1)")
      << What << AllowedPaths_.pattern();
}

}  // namespace clang::tidy::mspar
