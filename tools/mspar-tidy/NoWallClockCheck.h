// mspar-no-wall-clock — ban host time and entropy sources outside the
// simulator and the wall-clock benches.
//
// The repo's core invariant (ROADMAP "Trajectory") is that hits, stats and
// traces are bit-identical across threads, backends, transports and fault
// schedules; all time is charged to simmpi's deterministic VirtualClock and
// all randomness flows from seeded msp::rng streams. A single
// std::chrono::steady_clock::now() or rand() in engine code silently breaks
// that contract. This check flags:
//
//   * any mention of std::chrono::{system,steady,high_resolution}_clock or
//     std::random_device (type uses, aliases, ::now() calls), and
//   * calls to the C time/entropy surface: time, clock, gettimeofday,
//     clock_gettime, timespec_get, rand, srand, random, srandom, rand_r,
//     drand48, lrand48, mrand48.
//
// Locations under `AllowedPaths` (default: src/simmpi/ and bench/ — the
// virtual clock's implementation and the host-side wall-clock harnesses)
// are exempt. Anything else needs a `// NOLINT(mspar-no-wall-clock): why`
// with a justification (the tree gate rejects bare NOLINTs).
#pragma once

#include "MsparTidyUtil.h"
#include "clang-tidy/ClangTidyCheck.h"
#include "llvm/ADT/DenseSet.h"

namespace clang::tidy::mspar {

class NoWallClockCheck : public ClangTidyCheck {
 public:
  NoWallClockCheck(StringRef Name, ClangTidyContext *Context);
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
  void storeOptions(ClangTidyOptions::OptionMap &Opts) override;

 private:
  PathFilter AllowedPaths_;
  llvm::DenseSet<unsigned> Reported_;  ///< dedupe sugar/elaborated re-matches
};

}  // namespace clang::tidy::mspar
