#!/usr/bin/env python3
"""Wall-clock regression gate over BENCH_kernel.json (see bench/kernel_ablation.cpp).

BENCH_kernel.json is a JSON array of trajectory entries; entry 0 is the
committed baseline, the last entry is the run under test (the bench appends
its entry on every run). The gate checks RATIOS, not absolute seconds, so it
transfers across machines and shared CI runners:

  * kernel_simd_over_scalar >= --min-kernel-ratio (default 2.0) whenever the
    run was built with SIMD — the acceptance floor for the blocked kernel.
  * speedup_indexed_scalar (indexed engine vs reference re-sort engine) and
    kernel_simd_over_scalar must not drop more than --max-regression
    (default 10%) relative to the baseline entry.

Exit code 0 = pass, 1 = regression, 2 = malformed input.
"""

import argparse
import json
import sys


def fail(msg: str, code: int = 1) -> None:
    print(f"FAIL: {msg}", file=sys.stderr)
    sys.exit(code)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trajectory", help="path to BENCH_kernel.json")
    parser.add_argument("--min-kernel-ratio", type=float, default=2.0,
                        help="floor for kernel_simd_over_scalar (SIMD builds)")
    parser.add_argument("--max-regression", type=float, default=0.10,
                        help="max relative drop vs the baseline entry")
    args = parser.parse_args()

    try:
        with open(args.trajectory, encoding="utf-8") as handle:
            entries = json.load(handle)
    except (OSError, json.JSONDecodeError) as err:
        fail(f"cannot read {args.trajectory}: {err}", code=2)
    if not isinstance(entries, list) or not entries:
        fail(f"{args.trajectory} is not a non-empty JSON array", code=2)

    baseline, current = entries[0], entries[-1]
    print(f"baseline entry: {baseline.get('label', '?')}  "
          f"current entry: {current.get('label', '?')}  "
          f"({len(entries)} entries)")

    checked = []
    if current.get("simd_compiled"):
        ratio = current.get("kernel_simd_over_scalar")
        if ratio is None:
            fail("simd build but no kernel_simd_over_scalar in entry", code=2)
        checked.append(("kernel_simd_over_scalar floor",
                        f"{ratio:.3f} >= {args.min_kernel_ratio:.3f}",
                        ratio >= args.min_kernel_ratio))

    # Relative-drop checks only compare like with like: a scalar-only run
    # has no SIMD ratios, and comparing its end-to-end speedup against a
    # SIMD baseline is still valid because speedup_indexed_scalar is
    # measured under the forced-scalar backend in every build.
    for key in ("speedup_indexed_scalar", "kernel_simd_over_scalar"):
        base, cur = baseline.get(key), current.get(key)
        if base is None or cur is None:
            continue
        floor = base * (1.0 - args.max_regression)
        checked.append((f"{key} vs baseline",
                        f"{cur:.3f} >= {floor:.3f} ({base:.3f} - "
                        f"{args.max_regression:.0%})",
                        cur >= floor))

    ok = True
    for name, detail, passed in checked:
        print(f"{'PASS' if passed else 'FAIL'}: {name}: {detail}")
        ok &= passed
    if not checked:
        fail("no gateable metrics found in trajectory entries", code=2)
    if not ok:
        sys.exit(1)
    print("kernel bench gate: all checks passed")


if __name__ == "__main__":
    main()
