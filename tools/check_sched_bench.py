#!/usr/bin/env python3
"""Scheduler regression gate over BENCH_sched.json (see bench/sched_mix.cpp).

BENCH_sched.json is a JSON array of trajectory entries; entry 0 is the
committed baseline, the last entry is the run under test (the bench appends
its entry on every run). The gate checks RATIOS, not absolute seconds, so it
transfers across machines and shared CI runners:

  * reclaimed_idle_ratio >= --min-reclaim (default 0.30) — backfilled batch
    ring time must reclaim at least 30% of the measured per-rank serve idle.
  * serve_p99_ratio <= --max-p99-ratio (default 1.10) — sharing the ring may
    degrade serve tail latency by at most 10% over the serve-only cell.
  * reclaimed_idle_ratio must not drop, and serve_p99_ratio must not rise,
    more than --max-regression (default 10%) relative to the baseline entry.

Exit code 0 = pass, 1 = regression, 2 = malformed input.
"""

import argparse
import json
import sys


def fail(msg: str, code: int = 1) -> None:
    print(f"FAIL: {msg}", file=sys.stderr)
    sys.exit(code)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trajectory", help="path to BENCH_sched.json")
    parser.add_argument("--min-reclaim", type=float, default=0.30,
                        help="floor for reclaimed_idle_ratio")
    parser.add_argument("--max-p99-ratio", type=float, default=1.10,
                        help="ceiling for serve_p99_ratio (mixed / serve-only)")
    parser.add_argument("--max-regression", type=float, default=0.10,
                        help="max relative drift vs the baseline entry")
    args = parser.parse_args()

    try:
        with open(args.trajectory, encoding="utf-8") as handle:
            entries = json.load(handle)
    except (OSError, json.JSONDecodeError) as err:
        fail(f"cannot read {args.trajectory}: {err}", code=2)
    if not isinstance(entries, list) or not entries:
        fail(f"{args.trajectory} is not a non-empty JSON array", code=2)

    baseline, current = entries[0], entries[-1]
    print(f"baseline entry: {baseline.get('label', '?')}  "
          f"current entry: {current.get('label', '?')}  "
          f"({len(entries)} entries)")

    reclaim = current.get("reclaimed_idle_ratio")
    p99_ratio = current.get("serve_p99_ratio")
    if reclaim is None or p99_ratio is None:
        fail("entry lacks reclaimed_idle_ratio / serve_p99_ratio", code=2)

    checked = [
        ("reclaimed_idle_ratio floor",
         f"{reclaim:.3f} >= {args.min_reclaim:.3f}",
         reclaim >= args.min_reclaim),
        ("serve_p99_ratio ceiling",
         f"{p99_ratio:.3f} <= {args.max_p99_ratio:.3f}",
         p99_ratio <= args.max_p99_ratio),
    ]

    base_reclaim = baseline.get("reclaimed_idle_ratio")
    if base_reclaim is not None:
        floor = base_reclaim * (1.0 - args.max_regression)
        checked.append(("reclaimed_idle_ratio vs baseline",
                        f"{reclaim:.3f} >= {floor:.3f} ({base_reclaim:.3f} - "
                        f"{args.max_regression:.0%})",
                        reclaim >= floor))
    base_p99 = baseline.get("serve_p99_ratio")
    if base_p99 is not None:
        ceiling = base_p99 * (1.0 + args.max_regression)
        checked.append(("serve_p99_ratio vs baseline",
                        f"{p99_ratio:.3f} <= {ceiling:.3f} ({base_p99:.3f} + "
                        f"{args.max_regression:.0%})",
                        p99_ratio <= ceiling))

    ok = True
    for name, detail, passed in checked:
        print(f"{'PASS' if passed else 'FAIL'}: {name}: {detail}")
        ok &= passed
    if not ok:
        sys.exit(1)
    print("sched bench gate: all checks passed")


if __name__ == "__main__":
    main()
