#include "core/pipeline.hpp"

#include "core/search_engine.hpp"
#include "io/fasta.hpp"
#include "util/error.hpp"

namespace msp {

Algorithm algorithm_from_name(const std::string& name) {
  if (name == "serial") return Algorithm::kSerial;
  if (name == "a" || name == "A") return Algorithm::kAlgorithmA;
  if (name == "b" || name == "B") return Algorithm::kAlgorithmB;
  if (name == "hybrid") return Algorithm::kHybrid;
  if (name == "master-worker" || name == "mw") return Algorithm::kMasterWorker;
  if (name == "query" || name == "query-transport")
    return Algorithm::kQueryTransport;
  throw InvalidArgument("unknown algorithm: '" + name +
                        "' (serial|a|b|hybrid|master-worker|query)");
}

const char* algorithm_name(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kSerial: return "serial";
    case Algorithm::kAlgorithmA: return "algorithm-a";
    case Algorithm::kAlgorithmB: return "algorithm-b";
    case Algorithm::kHybrid: return "hybrid";
    case Algorithm::kMasterWorker: return "master-worker";
    case Algorithm::kQueryTransport: return "query-transport";
  }
  return "?";
}

PipelineResult run_pipeline(const std::string& fasta_image,
                            const std::vector<Spectrum>& queries,
                            const PipelineOptions& options) {
  MSP_CHECK_MSG(options.p >= 1, "need p >= 1");
  PipelineResult result;

  if (options.algorithm == Algorithm::kSerial) {
    const SearchEngine engine(options.config);
    const ProteinDatabase db = read_fasta_string(fasta_image);
    result.hits = engine.search(db, queries);
    result.report.p = 1;
    return result;
  }

  const sim::Runtime runtime(options.p, options.network, options.compute,
                             options.faults);
  switch (options.algorithm) {
    case Algorithm::kAlgorithmA: {
      ParallelRunResult run = run_algorithm_a(runtime, fasta_image, queries,
                                              options.config, options.a);
      result.hits = std::move(run.hits);
      result.report = std::move(run.report);
      result.candidates = run.candidates;
      break;
    }
    case Algorithm::kAlgorithmB: {
      AlgorithmBResult run = run_algorithm_b(runtime, fasta_image, queries,
                                             options.config, options.b);
      result.hits = std::move(run.hits);
      result.report = std::move(run.report);
      result.candidates = run.candidates;
      break;
    }
    case Algorithm::kHybrid: {
      HybridResult run = run_algorithm_hybrid(runtime, fasta_image, queries,
                                              options.config, options.hybrid);
      result.hits = std::move(run.hits);
      result.report = std::move(run.report);
      result.candidates = run.candidates;
      break;
    }
    case Algorithm::kMasterWorker: {
      ParallelRunResult run = run_master_worker(
          runtime, fasta_image, queries, options.config, options.master_worker);
      result.hits = std::move(run.hits);
      result.report = std::move(run.report);
      result.candidates = run.candidates;
      break;
    }
    case Algorithm::kQueryTransport: {
      ParallelRunResult run = run_query_transport(runtime, fasta_image, queries,
                                                  options.config,
                                                  options.query_transport);
      result.hits = std::move(run.hits);
      result.report = std::move(run.report);
      result.candidates = run.candidates;
      break;
    }
    case Algorithm::kSerial:
      break;  // handled above
  }
  result.run_seconds = result.report.total_time();
  return result;
}

std::vector<HitRecord> to_hit_records(const std::vector<Spectrum>& queries,
                                      const QueryHits& hits) {
  MSP_CHECK_MSG(queries.size() == hits.size(),
                "queries/hits arity mismatch");
  std::vector<HitRecord> records;
  for (std::size_t q = 0; q < hits.size(); ++q) {
    std::uint32_t rank = 0;
    for (const Hit& hit : hits[q]) {
      HitRecord record;
      record.query_title = queries[q].title().empty()
                               ? "query_" + std::to_string(q)
                               : queries[q].title();
      record.rank = ++rank;
      record.protein_id = hit.protein_id;
      record.peptide = hit.peptide;
      record.fragment_end = hit.end == FragmentEnd::kPrefix ? 'P'
                            : hit.end == FragmentEnd::kSuffix ? 'S'
                                                              : 'I';
      record.candidate_mass = hit.mass;
      record.score = hit.score;
      records.push_back(std::move(record));
    }
  }
  return records;
}

}  // namespace msp
