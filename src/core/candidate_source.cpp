#include "core/candidate_source.hpp"

#include <algorithm>

#include "scoring/shared_peak.hpp"

namespace msp {

void MassWindowCandidateSource::collect(
    const QueryContext& context,
    std::span<const std::uint32_t> /*occupied_bins*/, std::size_t ordinal_lo,
    std::size_t ordinal_hi, std::vector<std::uint32_t>& out,
    ShardSearchStats& stats) {
  out.clear();
  const std::vector<IndexedCandidate>& entries = index_.entries();
  for (std::size_t c = ordinal_lo; c < ordinal_hi; ++c) {
    const IndexedCandidate& entry = entries[c];
    const Protein& protein = shard_.proteins[entry.protein];
    const std::string_view peptide =
        std::string_view(protein.residues).substr(entry.offset, entry.length);
    build_ion_ladder(fragment_ions_into(peptide, ion_options_, workspace_),
                     context.binned().bin_width(), workspace_.ladder);
    ++stats.ions_built;
    const std::size_t votes =
        shared_peak_count(context.binned(), workspace_.ladder);
    if (votes < vote_gate_) {
      ++stats.candidates_prefiltered;
      continue;
    }
    out.push_back(static_cast<std::uint32_t>(c));
  }
}

void FragmentIndexCandidateSource::collect(
    const QueryContext& /*context*/,
    std::span<const std::uint32_t> occupied_bins, std::size_t ordinal_lo,
    std::size_t ordinal_hi, std::vector<std::uint32_t>& out,
    ShardSearchStats& stats) {
  out.clear();
  const auto lo = static_cast<std::uint32_t>(ordinal_lo);
  const auto hi = static_cast<std::uint32_t>(ordinal_hi);
  for (const std::uint32_t bin : occupied_bins) {
    const std::span<const std::uint32_t> list = fragment_.postings(bin);
    // Posting lists are ordinal-ascending (= mass-ascending), so the
    // precursor window restricts each to one contiguous tail slice.
    auto it = std::lower_bound(list.begin(), list.end(), lo);
    for (; it != list.end() && *it < hi; ++it) {
      ++stats.postings_scanned;
      const std::uint32_t ordinal = *it;
      if (votes_[ordinal] == 0) touched_.push_back(ordinal);
      ++votes_[ordinal];
    }
  }
  for (const std::uint32_t ordinal : touched_)
    if (votes_[ordinal] >= vote_gate_) out.push_back(ordinal);
  // Touch order is bin order, not ordinal order: restore the ascending
  // visit order the exhaustive source produces so the scoring loops offer
  // hits identically (TopK is order-invariant, but determinism is easier
  // to see — and to test — with one canonical order).
  std::sort(out.begin(), out.end());
  for (const std::uint32_t ordinal : touched_) votes_[ordinal] = 0;
  touched_.clear();
}

std::vector<std::uint32_t> occupied_bins(const BinnedSpectrum& binned) {
  std::vector<std::uint32_t> bins;
  const std::vector<float>& intensities = binned.intensities();
  bins.reserve(binned.peak_bin_count());
  for (std::size_t b = 0; b < intensities.size(); ++b)
    if (intensities[b] > 0.0f) bins.push_back(static_cast<std::uint32_t>(b));
  return bins;
}

}  // namespace msp
