#include "core/partition.hpp"

#include "io/fasta.hpp"
#include "util/error.hpp"

namespace msp {

ProteinDatabase load_database_shard(std::string_view fasta_bytes, int rank,
                                    int p) {
  MSP_CHECK_MSG(p >= 1 && rank >= 0 && rank < p, "bad rank/p");
  const ByteRange range = chunk_range(fasta_bytes.size(),
                                      static_cast<std::size_t>(rank),
                                      static_cast<std::size_t>(p));
  return read_fasta_chunk(fasta_bytes, range.begin, range.end);
}

QueryRange query_block(std::size_t total_queries, int rank, int p) {
  MSP_CHECK_MSG(p >= 1 && rank >= 0 && rank < p, "bad rank/p");
  const std::size_t base = total_queries / static_cast<std::size_t>(p);
  const std::size_t extra = total_queries % static_cast<std::size_t>(p);
  const auto r = static_cast<std::size_t>(rank);
  const std::size_t begin = r * base + std::min(r, extra);
  return QueryRange{begin, begin + base + (r < extra ? 1 : 0)};
}

std::vector<ProteinDatabase> partition_by_residues(const ProteinDatabase& db,
                                                   int p) {
  MSP_CHECK_MSG(p >= 1, "need p >= 1");
  const std::size_t total = db.total_residues();
  std::vector<ProteinDatabase> shards(static_cast<std::size_t>(p));
  // Greedy contiguous fill: shard r closes once it reaches its residue
  // target; targets are cumulative so rounding never starves the last shard.
  std::size_t shard = 0;
  std::size_t running = 0;
  for (const Protein& protein : db.proteins) {
    // Cumulative target for shards 0..shard: (shard+1)/p of all residues.
    while (shard + 1 < static_cast<std::size_t>(p) &&
           running >= (shard + 1) * total / static_cast<std::size_t>(p)) {
      ++shard;
    }
    shards[shard].proteins.push_back(protein);
    running += protein.length();
  }
  return shards;
}

}  // namespace msp
