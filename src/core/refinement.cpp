#include "core/refinement.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "core/protein_inference.hpp"
#include "util/error.hpp"

namespace msp {

RefinementResult run_refinement(const ProteinDatabase& db,
                                std::span<const Spectrum> queries,
                                const RefinementOptions& options) {
  MSP_CHECK_MSG(options.max_refined_proteins >= 1,
                "refinement needs a non-empty shortlist budget");
  RefinementResult result;

  // ---- pass 1: cheap survey of the whole database ----
  const SearchEngine survey(options.first_pass);
  const PreparedQueries prepared = survey.prepare(queries);
  auto survey_tops = survey.make_tops(queries.size());
  result.first_pass_stats = survey.search_shard(db, prepared, survey_tops);
  const QueryHits survey_hits = survey.finalize(survey_tops);

  // Shortlist proteins by aggregated survey evidence.
  InferenceOptions inference;
  inference.max_hit_rank = options.first_pass.tau;
  std::vector<ProteinEvidence> evidence =
      infer_proteins(survey_hits, inference);
  if (evidence.size() > options.max_refined_proteins)
    evidence.resize(options.max_refined_proteins);
  std::set<std::string> shortlist;
  for (const ProteinEvidence& protein : evidence)
    shortlist.insert(protein.protein_id);
  result.shortlisted_proteins = shortlist.size();

  ProteinDatabase refined;
  for (const Protein& protein : db.proteins)
    if (shortlist.count(protein.id)) refined.proteins.push_back(protein);

  // ---- pass 2: accurate engine over the shortlist only ----
  const SearchEngine accurate(options.second_pass);
  const PreparedQueries prepared2 = accurate.prepare(queries);
  auto tops = accurate.make_tops(queries.size());
  result.second_pass_stats = accurate.search_shard(refined, prepared2, tops);
  result.hits = accurate.finalize(tops);
  return result;
}

}  // namespace msp
