#include "core/ring_service.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace msp {
namespace {

/// Rough per-query memory footprint (peak list + binned vector) — the same
/// accounting rule Algorithm A charges for its query blocks.
std::size_t query_bytes(const Spectrum& spectrum) {
  return spectrum.peaks().size() * sizeof(Peak) + 4096;
}

}  // namespace

RingService::RingService(sim::Comm& comm, const std::string& fasta_image,
                         std::span<const Spectrum> queries,
                         const SearchEngine& engine, QueryHits& all_hits)
    : comm_(comm),
      queries_(queries),
      engine_(engine),
      all_hits_(all_hits),
      p_(comm.size()),
      rank_(comm.rank()) {
  const auto& cost = comm_.compute_model();
  const sim::FaultModel& faults = comm_.faults();
  my_crash_step_ = crash_step_of(rank_);

  const bool fault_tolerant = faults.has_crashes();
  if (fault_tolerant) {
    int survivors = 0;
    for (int r = 0; r < p_; ++r)
      if (crash_step_of(r) < 0) ++survivors;
    if (survivors == 0)
      throw FaultUnrecoverable(
          "fault schedule kills every rank of the service ring — nobody "
          "left to answer the query stream");
  }

  // Shard load + candidate index, as in Algorithm A's A1/A2 setup. Queries
  // are NOT prepared here — they arrive over virtual time and are prepared
  // per batch at admission.
  comm_.trace_mark("serve setup");
  local_db_ = load_database_shard(fasta_image, rank_, p_);
  comm_.clock().charge_io(static_cast<double>(local_db_.total_residues()) *
                          cost.seconds_per_residue_load);
  local_index_ = CandidateIndex::build(local_db_, engine_.config());
  comm_.clock().charge_compute(static_cast<double>(local_index_.size()) *
                               cost.seconds_per_mz);
  local_pack_ = pack_database(local_db_, local_index_);
  comm_.charge_alloc(local_pack_.size());  // D_local (window)
  window_.emplace(comm_, std::span<const char>(local_pack_.data(),
                                               local_pack_.size()));

  std::size_t max_shard = 0;
  for (int r = 0; r < p_; ++r)
    max_shard = std::max(max_shard, window_->shard_size(r));
  comm_.charge_alloc(2 * max_shard);  // D_recv + D_comp
  pulls_ = comm_.network().concurrent_pulls(p_);

  // Ring-successor shard replica, pulled before any crash can fire (the
  // PR-1 recovery scheme): a dead rank's shard stays reachable at its
  // successor for the rest of the service's lifetime.
  if (fault_tolerant) {
    const int predecessor = (rank_ + p_ - 1) % p_;
    sim::RmaRequest pull = window_->rget(predecessor, replica_, pulls_);
    window_->wait(pull);
    comm_.charge_alloc(replica_.size());
    replica_window_.emplace(
        comm_, std::span<const char>(replica_.data(), replica_.size()));
  }

  // Align every clock so the first service boundary is shared — all control
  // determinism derives from boundaries being fence-aligned.
  comm_.barrier();
}

int RingService::crash_step_of(int r) const {
  // Service ring steps are unbounded, so any scheduled step >= 0 fires
  // (contrast Algorithm A, whose single rotation only reaches step p − 1).
  return comm_.faults().crash_step(comm_.global_rank_of(r));
}

bool RingService::dead_at(int r, int at_step) const {
  const int step = crash_step_of(r);
  return step >= 0 && step <= at_step;
}

RingService::ShardFetch RingService::fetch_shard(int owner, int at_step,
                                                 std::vector<char>& dest) {
  if (!dead_at(owner, at_step))
    return ShardFetch{window_->rget(owner, dest, pulls_), &*window_};
  const int holder = (owner + 1) % p_;
  if (dead_at(holder, at_step))
    throw FaultUnrecoverable("shard " + std::to_string(owner) +
                             ": owner and replica holder " +
                             std::to_string(holder) + " both crashed");
  return ShardFetch{replica_window_->rget(holder, dest, pulls_),
                    &*replica_window_};
}

void RingService::admit(const ServiceBatch& batch) {
  const auto& cost = comm_.compute_model();
  Flight flight;
  flight.batch_id = batch.id;
  flight.ids = batch.query_ids;
  flight.first_step = step_;
  // Members: ranks alive through this boundary. A rank whose crash fires at
  // the upcoming step would score nothing, so it is excluded up front; a
  // rank dying later mid-flight is included and its block is orphaned when
  // the crash fires.
  for (int r = 0; r < p_; ++r)
    if (!dead_at(r, step_)) flight.ranks.push_back(r);
  MSP_CHECK_MSG(!flight.ranks.empty(), "service batch with no live ranks");

  const auto member =
      std::find(flight.ranks.begin(), flight.ranks.end(), rank_);
  if (member != flight.ranks.end()) {
    const int index = static_cast<int>(member - flight.ranks.begin());
    flight.block = query_block(flight.ids.size(), index,
                               static_cast<int>(flight.ranks.size()));
    if (flight.block.count() > 0) {
      std::vector<Spectrum> gathered;
      gathered.reserve(flight.block.count());
      for (std::size_t i = flight.block.begin; i < flight.block.end; ++i) {
        MSP_CHECK_MSG(flight.ids[i] < queries_.size(),
                      "service batch query id out of range");
        gathered.push_back(queries_[flight.ids[i]]);
      }
      for (const Spectrum& q : gathered)
        flight.alloc_bytes += query_bytes(q);
      comm_.charge_alloc(flight.alloc_bytes);
      flight.prepared = engine_.prepare(gathered);
      comm_.clock().charge_compute(static_cast<double>(gathered.size()) *
                                   cost.seconds_per_query_prep);
      flight.tops.reserve(flight.block.count());
      for (std::size_t q = 0; q < flight.block.count(); ++q)
        flight.tops.emplace_back(engine_.config().tau,
                                 static_cast<std::size_t>(p_));
    }
    comm_.trace_serve(sim::SpanKind::kServeDispatch,
                      "batch " + std::to_string(batch.id) + ": " +
                          std::to_string(flight.ids.size()) + " queries over " +
                          std::to_string(flight.ranks.size()) + " ranks");
  }
  flights_.push_back(std::move(flight));
}

ServiceStepOutcome RingService::step(bool prefetch_next) {
  const auto& cost = comm_.compute_model();
  const int s = step_;
  comm_.trace_mark("serve step " + std::to_string(s));
  const bool dead = my_crash_step_ >= 0 && s >= my_crash_step_;
  if (s == my_crash_step_)
    comm_.mark_crashed("serve step " + std::to_string(s));

  if (!dead) {
    // Make this step's shard resident. While the ring stays busy the
    // previous step's prefetch already delivered it; after an idle gap (or
    // a declined prefetch hint) fetch it blocking — fully exposed, exactly
    // the cost the masked path avoids.
    const int shard = (rank_ + s) % p_;
    if (shard != rank_ && comp_shard_ != shard) {
      ShardFetch fetch = fetch_shard(shard, s, comp_buffer_);
      fetch.window->wait(fetch.request);
      comp_shard_ = shard;
    }
    PackedShard fetched;
    const ProteinDatabase* shard_db = &local_db_;
    const CandidateIndex* shard_index = &local_index_;
    if (shard != rank_) {
      fetched = unpack_shard(comp_buffer_);
      shard_db = &fetched.db;
      shard_index = fetched.has_index ? &fetched.index : nullptr;
    }

    // Masked prefetch of the next step's shard under this step's scoring
    // (Algorithm A's A2 pattern, amortized over every in-flight batch). The
    // ring knows a next step is coming whenever a flight outlives this one;
    // the hint covers dispatches only the serving layer can foresee. The
    // step counter alone decides which shard each step scores, so a
    // prefetched shard is never the wrong one — it is exactly step s + 1's.
    bool continues = prefetch_next;
    for (const Flight& flight : flights_)
      if (s < flight.first_step + p_ - 1) continues = true;
    ShardFetch prefetch;
    const int next_shard = (rank_ + s + 1) % p_;
    if (continues && next_shard != rank_)
      prefetch = fetch_shard(next_shard, s, recv_buffer_);

    for (Flight& flight : flights_) {
      if (flight.block.count() == 0) continue;
      std::vector<TopK<Hit>> shard_tops =
          engine_.make_tops(flight.block.count());
      const ShardSearchStats stats = engine_.search_shard(
          *shard_db, flight.prepared, shard_tops, nullptr, shard_index);
      comm_.clock().charge_compute(kernel_cost_seconds(stats, cost));
      comm_.bump("candidates", stats.candidates_evaluated);
      comm_.bump("prefiltered", stats.candidates_prefiltered);
      comm_.bump("offers", stats.hits_offered);
      comm_.bump("ions", stats.ions_built);
      for (std::size_t q = 0; q < flight.block.count(); ++q)
        flight.tops[q].absorb(static_cast<std::size_t>(shard), shard_tops[q]);
    }

    if (prefetch.request.active) {
      prefetch.window->wait(prefetch.request);
      std::swap(comp_buffer_, recv_buffer_);
      comp_shard_ = next_shard;
    }
  }
  // Every rank — zombies included — attends the fence: this is both the
  // window epoch and the boundary that re-aligns all clocks, the invariant
  // the replicated controllers live on.
  window_->fence();

  ServiceStepOutcome out;
  out.step = s;

  // Crash boundary: orphan the dead ranks' blocks of every older flight and
  // charge the survivors the (omniscient, deterministic) detection timeout.
  std::vector<int> died;
  for (int r = 0; r < p_; ++r)
    if (crash_step_of(r) == s) died.push_back(r);
  if (!died.empty()) {
    for (Flight& flight : flights_) {
      for (const int d : died) {
        const auto member =
            std::find(flight.ranks.begin(), flight.ranks.end(), d);
        if (member == flight.ranks.end()) continue;
        const int index = static_cast<int>(member - flight.ranks.begin());
        const QueryRange block = query_block(
            flight.ids.size(), index, static_cast<int>(flight.ranks.size()));
        for (std::size_t i = block.begin; i < block.end; ++i) {
          flight.orphaned.push_back(flight.ids[i]);
          out.orphaned.push_back(flight.ids[i]);
        }
      }
    }
    if (!dead) {
      comm_.charge_recovery(comm_.faults().crash_detection_timeout_s,
                            "declared " + std::to_string(died.size()) +
                                " rank(s) dead at serve step " +
                                std::to_string(s));
    }
  }
  // The shared boundary time: post-fence clocks are equal on every rank;
  // zombies add the detection charge they did not pay.
  out.boundary_time = comm_.clock().now();
  if (!died.empty() && dead)
    out.boundary_time += comm_.faults().crash_detection_timeout_s;

  // Publish flights whose last shard this step scored. Owners report their
  // block's hits (charged as output I/O, after the boundary — the next
  // fence absorbs the imbalance, as with every per-rank cost).
  for (auto it = flights_.begin(); it != flights_.end();) {
    Flight& flight = *it;
    if (s != flight.first_step + p_ - 1) {
      ++it;
      continue;
    }
    std::vector<std::size_t> published;
    published.reserve(flight.ids.size());
    for (const std::size_t id : flight.ids)
      if (std::find(flight.orphaned.begin(), flight.orphaned.end(), id) ==
          flight.orphaned.end())
        published.push_back(id);
    if (!dead) {
      comm_.trace_serve(sim::SpanKind::kServePublish,
                        "batch " + std::to_string(flight.batch_id) +
                            " published (" + std::to_string(published.size()) +
                            " queries)");
      if (flight.block.count() > 0) {
        std::size_t reported = 0;
        for (std::size_t q = 0; q < flight.block.count(); ++q) {
          std::vector<Hit> hits = flight.tops[q].finalize();
          reported += hits.size();
          all_hits_[flight.ids[flight.block.begin + q]] = std::move(hits);
        }
        comm_.clock().charge_io(static_cast<double>(reported) *
                                cost.seconds_per_hit_output);
        comm_.bump("hits_reported", reported);
        comm_.release_alloc(flight.alloc_bytes);
      }
    }
    out.published.emplace_back(flight.batch_id, std::move(published));
    it = flights_.erase(it);
  }

  ++step_;
  return out;
}

void RingService::finish() {
  MSP_CHECK_MSG(flights_.empty(), "service finished with batches in flight");
  window_->fence();
  if (replica_window_) replica_window_->fence();
}

}  // namespace msp
