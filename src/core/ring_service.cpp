#include "core/ring_service.hpp"

#include <algorithm>

#include "io/wire_record.hpp"
#include "util/error.hpp"

namespace msp {
namespace {

/// Rough per-query memory footprint (peak list + binned vector) — the same
/// accounting rule Algorithm A charges for its query blocks.
std::size_t query_bytes(const Spectrum& spectrum) {
  return spectrum.peaks().size() * sizeof(Peak) + 4096;
}

/// Reinterpret fetched band bytes as records. The transport moves raw
/// record bytes, so a fetched range is decoded through the wire layer's
/// checked copy (the simulator's virtual clock never sees this host-side
/// copy; a torn fetch throws IoError instead of misparsing the band).
std::span<const CandidateRecord> decode_records(
    const std::vector<char>& bytes, std::vector<CandidateRecord>& out) {
  return wire::checked_array_copy(std::span<const char>(bytes), out,
                                  "ring band");
}

}  // namespace

RingService::RingService(sim::Comm& comm, const std::string& fasta_image,
                         std::span<const Spectrum> queries,
                         const SearchEngine& engine, QueryHits& all_hits,
                         bool mass_routing, double route_bucket_da)
    : comm_(comm),
      queries_(queries),
      engine_(engine),
      all_hits_(all_hits),
      routing_(mass_routing),
      route_bucket_da_(route_bucket_da),
      p_(comm.size()),
      rank_(comm.rank()) {
  const auto& cost = comm_.compute_model();
  const sim::FaultModel& faults = comm_.faults();
  my_crash_step_ = crash_step_of(rank_);

  const SearchConfig& config = engine_.config();
  MSP_CHECK_MSG(config.candidate_mode == CandidateMode::kPrefixSuffix,
                "the banded service ring implements the paper's "
                "prefix/suffix candidate rule");

  const bool fault_tolerant = faults.has_crashes();
  if (fault_tolerant) {
    int survivors = 0;
    for (int r = 0; r < p_; ++r)
      if (crash_step_of(r) < 0) ++survivors;
    if (survivors == 0)
      throw FaultUnrecoverable(
          "fault schedule kills every rank of the service ring — nobody "
          "left to answer the query stream");
  }

  // Band construction: load the i-th chunk (Algorithm A's A1), enumerate
  // its candidate records inside the stream's query-mass envelope, and
  // counting-sort them across ranks so this rank ends up holding one
  // contiguous mass band of the global record array. Queries are NOT
  // prepared here — they arrive over virtual time and are prepared per
  // batch at admission; only their (globally known) precursor masses bound
  // the enumeration, identically on every rank.
  comm_.trace_mark("serve setup");
  ProteinDatabase local_db = load_database_shard(fasta_image, rank_, p_);
  comm_.clock().charge_io(static_cast<double>(local_db.total_residues()) *
                          cost.seconds_per_residue_load);

  double stream_lo = 0.0;
  double stream_hi = -1.0;  // empty stream → empty enumeration window
  for (const Spectrum& query : queries_) {
    for (const double mass : engine_.hypothesis_masses(query)) {
      if (stream_hi < stream_lo) {
        stream_lo = stream_hi = mass;
      } else {
        stream_lo = std::min(stream_lo, mass);
        stream_hi = std::max(stream_hi, mass);
      }
    }
  }
  // Envelope widening: in open/PTM mode a hypothesis accepts candidate
  // masses in [m − window_below, m + window_above], so the band enumeration
  // (and every routing decision below) must widen by the same amounts or
  // a modified match could be provably-"skipped" into nonexistence. Narrow
  // mode degenerates to ±tolerance_da exactly as before.
  std::vector<CandidateRecord> records =
      stream_lo <= stream_hi
          ? enumerate_candidate_records(local_db, config,
                                        stream_lo - config.window_below(),
                                        stream_hi + config.window_above())
          : std::vector<CandidateRecord>{};
  local_db = ProteinDatabase{};
  // Same per-candidate charge as CandidateIndex::build — the enumeration
  // is the same mass walk; ion generation stays a scoring-time cost.
  comm_.clock().charge_compute(static_cast<double>(records.size()) *
                               cost.seconds_per_mz);

  band_ = sort_candidate_records_by_mass(comm_, std::move(records));
  comm_.charge_alloc(band_.size() * sizeof(CandidateRecord));  // D_local
  window_.emplace(comm_,
                  std::span<const char>(
                      reinterpret_cast<const char*>(band_.data()),
                      band_.size() * sizeof(CandidateRecord)));

  std::size_t max_shard = 0;
  for (int r = 0; r < p_; ++r)
    max_shard = std::max(max_shard, window_->shard_size(r));
  comm_.charge_alloc(2 * max_shard);  // D_recv + D_comp
  pulls_ = comm_.network().concurrent_pulls(p_);

  // Ring-successor band replica, pulled before any crash can fire (the
  // PR-1 recovery scheme): a dead rank's band stays reachable at its
  // successor for the rest of the service's lifetime, byte-for-byte at the
  // same offsets — partial fetches redirect without translation.
  if (fault_tolerant) {
    const int predecessor = (rank_ + p_ - 1) % p_;
    sim::RmaRequest pull = window_->rget(predecessor, replica_, pulls_);
    window_->wait(pull);
    comm_.charge_alloc(replica_.size());
    replica_window_.emplace(
        comm_, std::span<const char>(replica_.data(), replica_.size()));
  }

  // The map exchange is collective and runs before any crash can fire,
  // like the replica pull: routing state is frozen global input from the
  // first step on. Bands are mass-contiguous, so a coarse bucket grid
  // keeps each payload to a few KB; the prefix sums over its counts are
  // what clip visited-band fetches to the matching record range, so the
  // counts must be exact (total() == band size ⇒ nothing saturated).
  if (routing_) {
    std::vector<double> band_masses;
    band_masses.reserve(band_.size());
    for (const CandidateRecord& record : band_)
      band_masses.push_back(record.mass);
    const MassHistogram local_histogram =
        MassHistogram::build(std::span<const double>(band_masses),
                             route_bucket_da_);
    MSP_CHECK_MSG(local_histogram.total() == band_.size(),
                  "band histogram lost counts (saturated bucket?) — "
                  "record ranges would under-fetch");
    shard_map_ = ShardMassMap::exchange(comm_, local_histogram);
  }

  // Align every clock so the first service boundary is shared — all control
  // determinism derives from boundaries being fence-aligned.
  comm_.barrier();
}

int RingService::crash_step_of(int r) const {
  // Service ring steps are unbounded, so any scheduled step >= 0 fires
  // (contrast Algorithm A, whose single rotation only reaches step p − 1).
  return comm_.faults().crash_step(comm_.global_rank_of(r));
}

bool RingService::dead_at(int r, int at_step) const {
  const int step = crash_step_of(r);
  return step >= 0 && step <= at_step;
}

RingService::ShardFetch RingService::fetch_shard(int owner, int at_step,
                                                 std::vector<char>& dest) {
  if (!dead_at(owner, at_step))
    return ShardFetch{window_->rget(owner, dest, pulls_), &*window_};
  const int holder = (owner + 1) % p_;
  if (dead_at(holder, at_step))
    throw FaultUnrecoverable("shard " + std::to_string(owner) +
                             ": owner and replica holder " +
                             std::to_string(holder) + " both crashed");
  return ShardFetch{replica_window_->rget(holder, dest, pulls_),
                    &*replica_window_};
}

RingService::ShardFetch RingService::fetch_shard_range(
    int owner, int at_step, std::uint64_t first, std::uint64_t last,
    std::vector<char>& dest) {
  const std::size_t offset =
      static_cast<std::size_t>(first) * sizeof(CandidateRecord);
  const std::size_t length =
      static_cast<std::size_t>(last - first) * sizeof(CandidateRecord);
  if (!dead_at(owner, at_step))
    return ShardFetch{window_->rget_range(owner, offset, length, dest, pulls_),
                      &*window_};
  const int holder = (owner + 1) % p_;
  if (dead_at(holder, at_step))
    throw FaultUnrecoverable("shard " + std::to_string(owner) +
                             ": owner and replica holder " +
                             std::to_string(holder) + " both crashed");
  return ShardFetch{
      replica_window_->rget_range(holder, offset, length, dest, pulls_),
      &*replica_window_};
}

std::span<const CandidateRecord> RingService::resident_records(
    int shard, int at_step, const Flight& flight) {
  if (shard == rank_) return {band_.data(), band_.size()};
  const MassHistogram* histogram = shard_map_.histogram(shard);
  if (histogram == nullptr) {
    // Route-everything fallback (no histogram for this band): fetch whole.
    ShardFetch fetch = fetch_shard(shard, at_step, fetch_buffer_);
    fetch.window->wait(fetch.request);
    return decode_records(fetch_buffer_, scratch_records_);
  }
  const auto [first, last] =
      histogram->record_range(flight.fetch_lo, flight.fetch_hi);
  if (first >= last) {
    scratch_records_.clear();
    return {scratch_records_.data(), scratch_records_.size()};
  }
  ShardFetch fetch =
      fetch_shard_range(shard, at_step, first, last, fetch_buffer_);
  fetch.window->wait(fetch.request);
  return decode_records(fetch_buffer_, scratch_records_);
}

void RingService::admit(const ServiceBatch& batch) {
  const auto& cost = comm_.compute_model();
  Flight flight;
  flight.batch_id = batch.id;
  flight.ids = batch.query_ids;
  flight.first_step = step_;
  // Members: ranks alive through this boundary. A rank whose crash fires at
  // the upcoming step would score nothing, so it is excluded up front; a
  // rank dying later mid-flight is included and its block is orphaned when
  // the crash fires.
  for (int r = 0; r < p_; ++r)
    if (!dead_at(r, step_)) flight.ranks.push_back(r);
  MSP_CHECK_MSG(!flight.ranks.empty(), "service batch with no live ranks");

  // Mass routing: every rank computes the full (member, shard) routing
  // matrix from globally known inputs — the admitted ids, the member list,
  // and the exchanged shard mass map — so the batch-wide audit counters
  // agree everywhere and this rank's own row needs no communication. The
  // map answers conservatively: a 0 is a proof the member's block matches
  // nothing in that shard at the engine's tolerance.
  flight.my_routed.assign(static_cast<std::size_t>(p_), 1);
  if (routing_ && shard_map_.routes()) {
    const double below = engine_.config().window_below();
    const double above = engine_.config().window_above();
    std::vector<double> member_masses;
    for (std::size_t m = 0; m < flight.ranks.size(); ++m) {
      const QueryRange member_block =
          query_block(flight.ids.size(), static_cast<int>(m),
                      static_cast<int>(flight.ranks.size()));
      if (member_block.count() == 0) continue;
      member_masses.clear();
      for (std::size_t i = member_block.begin; i < member_block.end; ++i) {
        MSP_CHECK_MSG(flight.ids[i] < queries_.size(),
                      "service batch query id out of range");
        for (const double mass :
             engine_.hypothesis_masses(queries_[flight.ids[i]]))
          member_masses.push_back(mass);
      }
      for (int shard = 0; shard < p_; ++shard) {
        const bool need =
            shard_map_.needed(shard, member_masses, below, above);
        if (flight.ranks[m] == rank_)
          flight.my_routed[static_cast<std::size_t>(shard)] = need ? 1 : 0;
        if (need)
          ++flight.steps_visited;
        else
          ++flight.steps_skipped;
      }
    }
    comm_.clock().charge_compute(static_cast<double>(flight.ranks.size()) *
                                 static_cast<double>(p_) *
                                 cost.seconds_per_route_check);
  } else {
    // Unrouted: every member with a block visits all p shards. Keeps the
    // audit columns meaningful (skip ratio 0) in unrouted runs.
    for (std::size_t m = 0; m < flight.ranks.size(); ++m)
      if (query_block(flight.ids.size(), static_cast<int>(m),
                      static_cast<int>(flight.ranks.size()))
              .count() > 0)
        flight.steps_visited += static_cast<std::uint64_t>(p_);
  }

  const auto member =
      std::find(flight.ranks.begin(), flight.ranks.end(), rank_);
  if (member != flight.ranks.end()) {
    const int index = static_cast<int>(member - flight.ranks.begin());
    flight.block = query_block(flight.ids.size(), index,
                               static_cast<int>(flight.ranks.size()));
    if (flight.block.count() > 0) {
      std::vector<Spectrum> gathered;
      gathered.reserve(flight.block.count());
      for (std::size_t i = flight.block.begin; i < flight.block.end; ++i) {
        MSP_CHECK_MSG(flight.ids[i] < queries_.size(),
                      "service batch query id out of range");
        gathered.push_back(queries_[flight.ids[i]]);
      }
      for (const Spectrum& q : gathered)
        flight.alloc_bytes += query_bytes(q);
      comm_.charge_alloc(flight.alloc_bytes);
      flight.prepared = engine_.prepare(gathered);
      comm_.clock().charge_compute(static_cast<double>(gathered.size()) *
                                   cost.seconds_per_query_prep);
      // The block's query-mass window: visited-band partial fetches are
      // clipped to it (the scoring merge-join re-applies the exact
      // per-query predicates, so over-fetch is only a time cost).
      flight.fetch_lo =
          flight.prepared.min_mass() - engine_.config().window_below();
      flight.fetch_hi =
          flight.prepared.max_mass() + engine_.config().window_above();
      flight.tops.reserve(flight.block.count());
      for (std::size_t q = 0; q < flight.block.count(); ++q)
        flight.tops.emplace_back(engine_.config().tau,
                                 static_cast<std::size_t>(p_));
      // Shards the router proved empty are recorded as skipped up front:
      // completion accounting stays exact while step() never touches them.
      for (int shard = 0; shard < p_; ++shard)
        if (!flight.my_routed[static_cast<std::size_t>(shard)])
          for (IncrementalTopK<Hit>& top : flight.tops)
            top.skip(static_cast<std::size_t>(shard));
    }
    comm_.trace_serve(sim::SpanKind::kServeDispatch,
                      "batch " + std::to_string(batch.id) + ": " +
                          std::to_string(flight.ids.size()) + " queries over " +
                          std::to_string(flight.ranks.size()) + " ranks");
  }
  flights_.push_back(std::move(flight));
}

ServiceStepOutcome RingService::step(bool prefetch_next) {
  const auto& cost = comm_.compute_model();
  const int s = step_;
  comm_.trace_mark("serve step " + std::to_string(s));
  const bool dead = my_crash_step_ >= 0 && s >= my_crash_step_;
  if (s == my_crash_step_)
    comm_.mark_crashed("serve step " + std::to_string(s));

  if (!dead) {
    const int shard = (rank_ + s) % p_;
    // The router's verdict for this step on this rank: the band must be
    // visited when any in-flight block may hold a candidate in it. A pure
    // function of admit-time state, so reruns and thread counts agree.
    bool need_shard = !routing_;
    if (routing_)
      for (const Flight& flight : flights_)
        if (flight.block.count() > 0 &&
            flight.my_routed[static_cast<std::size_t>(shard)])
          need_shard = true;

    if (!need_shard) {
      // Routed-away step: the constant decision cost only — no band
      // fetch, no decode, no scoring. The fence below still runs, so the
      // lockstep boundary contract is untouched.
      comm_.clock().charge_compute(cost.seconds_per_route_check);
      comm_.bump("route_steps_skipped", 1);
      comm_.trace_serve(sim::SpanKind::kServeRouteSkip,
                        "step " + std::to_string(s) + ": shard " +
                            std::to_string(shard) + " routed away");
    } else if (routing_) {
      comm_.clock().charge_compute(cost.seconds_per_route_check);
      comm_.bump("route_steps_visited", 1);
      // Routed visit: each needed flight fetches only its matching record
      // range of the band (histogram prefix sums bound it), scores it, and
      // moves on — a few KB per flight instead of the whole band, so no
      // masked prefetch chain is worth its buffer here.
      for (Flight& flight : flights_) {
        if (flight.block.count() == 0 ||
            !flight.my_routed[static_cast<std::size_t>(shard)])
          continue;  // admit() already recorded the skip in its tops
        const std::span<const CandidateRecord> resident =
            resident_records(shard, s, flight);
        std::vector<TopK<Hit>> shard_tops =
            engine_.make_tops(flight.block.count());
        const ShardSearchStats stats =
            engine_.search_records(resident, flight.prepared, shard_tops);
        comm_.clock().charge_compute(kernel_cost_seconds(stats, cost));
        comm_.bump("candidates", stats.candidates_evaluated);
        comm_.bump("prefiltered", stats.candidates_prefiltered);
        comm_.bump("offers", stats.hits_offered);
        comm_.bump("ions", stats.ions_built);
        for (std::size_t q = 0; q < flight.block.count(); ++q)
          flight.tops[q].absorb(static_cast<std::size_t>(shard),
                                shard_tops[q]);
      }
    } else {
      // Unrouted visit: make the whole band resident. While the ring stays
      // busy the previous step's prefetch already delivered it; after an
      // idle gap or a declined prefetch hint, fetch it blocking — fully
      // exposed, exactly the cost the masked path avoids.
      if (shard != rank_ && comp_shard_ != shard) {
        ShardFetch fetch = fetch_shard(shard, s, comp_buffer_);
        fetch.window->wait(fetch.request);
        comp_shard_ = shard;
      }
      const std::span<const CandidateRecord> resident =
          shard == rank_
              ? std::span<const CandidateRecord>(band_.data(), band_.size())
              : decode_records(comp_buffer_, scratch_records_);

      // Masked prefetch of the next step's band under this step's scoring
      // (Algorithm A's A2 pattern, amortized over every in-flight batch).
      // The ring knows a next step is coming whenever a flight outlives
      // this one; the hint covers dispatches only the serving layer can
      // foresee. The step counter alone decides which shard each step
      // scores, so a prefetched band is never the wrong one — it is
      // exactly step s + 1's.
      const int next_shard = (rank_ + s + 1) % p_;
      bool continues = prefetch_next;
      for (const Flight& flight : flights_)
        if (s < flight.first_step + p_ - 1) continues = true;
      ShardFetch prefetch;
      if (continues && next_shard != rank_)
        prefetch = fetch_shard(next_shard, s, recv_buffer_);

      for (Flight& flight : flights_) {
        if (flight.block.count() == 0) continue;
        std::vector<TopK<Hit>> shard_tops =
            engine_.make_tops(flight.block.count());
        const ShardSearchStats stats =
            engine_.search_records(resident, flight.prepared, shard_tops);
        comm_.clock().charge_compute(kernel_cost_seconds(stats, cost));
        comm_.bump("candidates", stats.candidates_evaluated);
        comm_.bump("prefiltered", stats.candidates_prefiltered);
        comm_.bump("offers", stats.hits_offered);
        comm_.bump("ions", stats.ions_built);
        for (std::size_t q = 0; q < flight.block.count(); ++q)
          flight.tops[q].absorb(static_cast<std::size_t>(shard),
                                shard_tops[q]);
      }

      if (prefetch.request.active) {
        prefetch.window->wait(prefetch.request);
        std::swap(comp_buffer_, recv_buffer_);
        comp_shard_ = next_shard;
      }
    }
  }
  // Every rank — zombies included — attends the fence: this is both the
  // window epoch and the boundary that re-aligns all clocks, the invariant
  // the replicated controllers live on.
  window_->fence();

  ServiceStepOutcome out;
  out.step = s;

  // Crash boundary: orphan the dead ranks' blocks of every older flight and
  // charge the survivors the (omniscient, deterministic) detection timeout.
  std::vector<int> died;
  for (int r = 0; r < p_; ++r)
    if (crash_step_of(r) == s) died.push_back(r);
  if (!died.empty()) {
    for (Flight& flight : flights_) {
      for (const int d : died) {
        const auto member =
            std::find(flight.ranks.begin(), flight.ranks.end(), d);
        if (member == flight.ranks.end()) continue;
        const int index = static_cast<int>(member - flight.ranks.begin());
        const QueryRange block = query_block(
            flight.ids.size(), index, static_cast<int>(flight.ranks.size()));
        for (std::size_t i = block.begin; i < block.end; ++i) {
          flight.orphaned.push_back(flight.ids[i]);
          out.orphaned.push_back(flight.ids[i]);
        }
      }
    }
    if (!dead) {
      comm_.charge_recovery(comm_.faults().crash_detection_timeout_s,
                            "declared " + std::to_string(died.size()) +
                                " rank(s) dead at serve step " +
                                std::to_string(s));
    }
  }
  // The shared boundary time: post-fence clocks are equal on every rank;
  // zombies add the detection charge they did not pay.
  out.boundary_time = comm_.clock().now();
  if (!died.empty() && dead)
    out.boundary_time += comm_.faults().crash_detection_timeout_s;

  // Publish flights whose last shard this step scored. Owners report their
  // block's hits (charged as output I/O, after the boundary — the next
  // fence absorbs the imbalance, as with every per-rank cost).
  for (auto it = flights_.begin(); it != flights_.end();) {
    Flight& flight = *it;
    if (s != flight.first_step + p_ - 1) {
      ++it;
      continue;
    }
    std::vector<std::size_t> published;
    published.reserve(flight.ids.size());
    for (const std::size_t id : flight.ids)
      if (std::find(flight.orphaned.begin(), flight.orphaned.end(), id) ==
          flight.orphaned.end())
        published.push_back(id);
    if (!dead) {
      comm_.trace_serve(sim::SpanKind::kServePublish,
                        "batch " + std::to_string(flight.batch_id) +
                            " published (" + std::to_string(published.size()) +
                            " queries)");
      if (flight.block.count() > 0) {
        std::size_t reported = 0;
        for (std::size_t q = 0; q < flight.block.count(); ++q) {
          std::vector<Hit> hits = flight.tops[q].finalize();
          reported += hits.size();
          all_hits_[flight.ids[flight.block.begin + q]] = std::move(hits);
        }
        comm_.clock().charge_io(static_cast<double>(reported) *
                                cost.seconds_per_hit_output);
        comm_.bump("hits_reported", reported);
        comm_.release_alloc(flight.alloc_bytes);
      }
    }
    PublishedBatch record;
    record.batch_id = flight.batch_id;
    record.query_ids = std::move(published);
    record.steps_visited = flight.steps_visited;
    record.steps_skipped = flight.steps_skipped;
    out.published.push_back(std::move(record));
    it = flights_.erase(it);
  }

  ++step_;
  return out;
}

std::vector<std::size_t> RingService::preempt(std::size_t batch_id) {
  const auto it =
      std::find_if(flights_.begin(), flights_.end(), [&](const Flight& f) {
        return f.batch_id == batch_id;
      });
  MSP_CHECK_MSG(it != flights_.end(), "preempting a batch not in flight");
  Flight& flight = *it;
  // Everything not already orphaned by a crash goes back to the caller;
  // crash orphans were returned from step() and re-queued there — returning
  // them again would score them twice.
  std::vector<std::size_t> requeue;
  requeue.reserve(flight.ids.size());
  for (const std::size_t id : flight.ids)
    if (std::find(flight.orphaned.begin(), flight.orphaned.end(), id) ==
        flight.orphaned.end())
      requeue.push_back(id);
  const bool dead = my_crash_step_ >= 0 && step_ > my_crash_step_;
  if (!dead && flight.block.count() > 0) comm_.release_alloc(flight.alloc_bytes);
  flights_.erase(it);
  return requeue;
}

void RingService::finish() {
  MSP_CHECK_MSG(flights_.empty(), "service finished with batches in flight");
  window_->fence();
  if (replica_window_) replica_window_->fence();
}

}  // namespace msp
