// Hit types: what the search reports per query.
#pragma once

#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

#include "mass/peptide.hpp"

namespace msp {

/// One candidate that made a query's top-τ list.
///
/// Identification is intrinsic (protein id string + terminal + length), not
/// positional, so the same candidate compares equal no matter which shard
/// ordering or algorithm produced it — the basis of the cross-algorithm
/// validation in Section III ("both implementations A & B successfully
/// reproduce MSPolygraph's output").
struct Hit {
  double score = 0.0;
  std::string protein_id;
  std::uint32_t offset = 0;  ///< start position within the parent sequence
  std::uint32_t length = 0;
  FragmentEnd end = FragmentEnd::kPrefix;
  double mass = 0.0;       ///< candidate neutral mass
  std::string peptide;     ///< residue string of the candidate

  /// Total-order tie break for equal scores (TopK contract).
  std::tuple<std::string_view, std::uint32_t, std::uint32_t> tie_key() const {
    return {protein_id, offset, length};
  }

  friend bool operator==(const Hit& a, const Hit& b) {
    return a.score == b.score && a.protein_id == b.protein_id &&
           a.offset == b.offset && a.length == b.length && a.end == b.end;
  }
};

/// Final result: hits[q] is query q's top-τ, best first.
using QueryHits = std::vector<std::vector<Hit>>;

}  // namespace msp
