// Parallel counting sort of the database by parent m/z (step B2).
//
// The paper exploits that parent m/z values are bounded ("within the range
// [1, ..., 300000]") to sort with a global count array:
//   S1. each rank computes its sequences' parent m/z values and the global
//       maximum via Allreduce;
//   S2. each rank builds a local count array (one slot per integer m/z,
//       weighted by sequence length so the *residue* load balances),
//       Allreduce-sums it, derives the partition pivots, and redistributes
//       sequences with Alltoallv. Equal m/z values land on one rank.
// Every rank ends with a contiguous m/z range of the sorted database of
// ≈ N/p residues, plus the p (begin, end) boundary tuples.
#pragma once

#include <cstdint>
#include <vector>

#include "mass/peptide.hpp"
#include "simmpi/comm.hpp"

namespace msp {

/// m/z range owned by one rank after the sort (paper's (begin_i, end_i)).
struct MzBoundary {
  double begin_mz = 0.0;  ///< inclusive
  double end_mz = 0.0;    ///< inclusive upper bound of owned values
};

struct SortedShard {
  ProteinDatabase shard;              ///< sequences sorted by parent m/z
  std::vector<MzBoundary> boundaries; ///< all p ranks' ranges, rank order
  double sort_seconds = 0.0;          ///< virtual time spent sorting (Table IV)
};

/// Integer bucket of a sequence for the counting sort: floor of its singly
/// protonated parent m/z. Bounded in practice exactly as the paper states.
std::uint32_t mz_bucket(const Protein& protein);

/// Collective: every rank passes its local (unsorted) shard; returns its
/// sorted shard and the global boundary table. Deterministic.
SortedShard parallel_sort_by_mz(sim::Comm& comm, const ProteinDatabase& local);

}  // namespace msp
