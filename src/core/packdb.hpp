// Packed database shards: the byte images Algorithm A/B move between ranks.
//
// The paper transports raw database fragments ("database transport model");
// we serialize a shard's proteins into one contiguous buffer so an RMA get
// of the shard is a single modeled transfer, exactly like the C original.
#pragma once

#include <span>
#include <vector>

#include "core/candidate_index.hpp"
#include "core/fragment_index.hpp"
#include "core/shard_map.hpp"
#include "mass/peptide.hpp"
#include "spectra/spectrum.hpp"

namespace msp {

/// Serialize a database (shard) into one contiguous byte buffer.
std::vector<char> pack_database(const ProteinDatabase& db);

/// Serialize a shard together with its CandidateIndex (the candidate-centric
/// transport: the index is built once at pack time and rides with the shard
/// bytes, so every rank a rotation delivers the shard to reuses one
/// enumeration instead of re-walking the proteins). The image is
/// self-describing — unpack_shard accepts both this and the plain format.
std::vector<char> pack_database(const ProteinDatabase& db,
                                const CandidateIndex& index);

/// Indexed image plus a trailing shard-mass-histogram record (versioned and
/// magic-tagged), the routing layer's summary of the index. Legacy readers
/// of the plain/indexed formats never see the trailer (the magic cannot
/// collide with either lead-in), and unpack_shard accepts all three forms.
std::vector<char> pack_database(const ProteinDatabase& db,
                                const CandidateIndex& index,
                                const MassHistogram& histogram);

/// Indexed image plus a trailing fragment-ion-index record (the open-search
/// postings built next to the CandidateIndex at pack time), without resp.
/// with the histogram trailer. Trailer order is histogram then fragment
/// index; each is magic-discriminated, so every subset parses.
std::vector<char> pack_database(const ProteinDatabase& db,
                                const CandidateIndex& index,
                                const FragmentIndex& fragment);
std::vector<char> pack_database(const ProteinDatabase& db,
                                const CandidateIndex& index,
                                const MassHistogram& histogram,
                                const FragmentIndex& fragment);

/// Inverse of pack_database. Throws IoError on malformed bytes. Accepts
/// indexed images too (the index is parsed and dropped).
ProteinDatabase unpack_database(std::span<const char> bytes);
ProteinDatabase unpack_database(const std::vector<char>& bytes);

/// A shard as it comes off the wire: proteins plus (when the packer shipped
/// them) the shard's candidate index, mass histogram, and fragment-ion
/// index.
struct PackedShard {
  ProteinDatabase db;
  CandidateIndex index;     ///< empty when the image carried none
  bool has_index = false;
  MassHistogram histogram;  ///< empty when the image carried none
  bool has_histogram = false;
  FragmentIndex fragment;   ///< empty when the image carried none
  bool has_fragment = false;
};

/// Inverse of either pack_database form. Throws IoError on malformed bytes.
PackedShard unpack_shard(std::span<const char> bytes);
PackedShard unpack_shard(const std::vector<char>& bytes);

/// Serialize one spectrum (for p2p query batches in the baseline and the
/// query-transport ablation).
std::vector<char> pack_spectra(std::span<const Spectrum> spectra);

/// Largest peak m/z a packed spectrum may carry. Real fragment m/z tops out
/// around 10^4 Da; anything past this is corruption, and an unbounded m/z
/// would size the binned-spectrum grid (floor(max_mz / bin_width) bins)
/// from attacker-controlled bytes.
inline constexpr double kMaxPackedPeakMz = 1.0e6;

/// Inverse of pack_spectra. Throws IoError on malformed bytes, including
/// out-of-domain values a trusting reader would crash or over-allocate on
/// downstream: non-finite/nonpositive precursor m/z, charge < 1, peak or
/// spectrum counts exceeding the payload, peak m/z outside
/// (0, kMaxPackedPeakMz], or non-finite/negative intensity.
std::vector<Spectrum> unpack_spectra(const std::vector<char>& bytes);

}  // namespace msp
