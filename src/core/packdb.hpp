// Packed database shards: the byte images Algorithm A/B move between ranks.
//
// The paper transports raw database fragments ("database transport model");
// we serialize a shard's proteins into one contiguous buffer so an RMA get
// of the shard is a single modeled transfer, exactly like the C original.
#pragma once

#include <span>
#include <vector>

#include "mass/peptide.hpp"
#include "spectra/spectrum.hpp"

namespace msp {

/// Serialize a database (shard) into one contiguous byte buffer.
std::vector<char> pack_database(const ProteinDatabase& db);

/// Inverse of pack_database. Throws IoError on malformed bytes.
ProteinDatabase unpack_database(std::span<const char> bytes);
ProteinDatabase unpack_database(const std::vector<char>& bytes);

/// Serialize one spectrum (for p2p query batches in the baseline and the
/// query-transport ablation).
std::vector<char> pack_spectra(std::span<const Spectrum> spectra);
std::vector<Spectrum> unpack_spectra(const std::vector<char>& bytes);

}  // namespace msp
