// The serial search kernel shared by every parallelization.
//
// Candidate rule (Section II-A): a prefix or suffix of a database sequence
// is a candidate for query q iff its neutral mass lies within m(q) ± δ.
// The kernel iterates database-side: for each sequence it walks the running
// prefix/suffix masses (O(1) each via FragmentMassIndex) and binary-searches
// the mass-sorted query set for matching windows — the same search the paper
// describes for Algorithm B ("maintain the local query set Qi also sorted by
// their m/z values and then use binary search"), applied uniformly.
//
// Every algorithm (serial, A, B, master–worker, query transport) funnels
// through search_shard(), which is what makes the cross-algorithm
// hit-for-hit validation meaningful.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/config.hpp"
#include "core/hit.hpp"
#include "mass/peptide.hpp"
#include "scoring/likelihood.hpp"
#include "scoring/top_hits.hpp"
#include "simmpi/netmodel.hpp"
#include "spectra/spectrum.hpp"

namespace msp {

/// Preprocessed queries plus the mass-sorted view the kernel searches.
/// The sorted view holds one *entry* per parent-mass hypothesis — exactly
/// one per query normally, one per charge hypothesis when
/// SearchConfig::try_alternate_charges is on — so `order`/`sorted_masses`
/// may be longer than `spectra`.
struct PreparedQueries {
  std::vector<Spectrum> spectra;       ///< preprocessed copies
  std::vector<QueryContext> contexts;  ///< binned + background, per query
  std::vector<double> masses;          ///< reported parent mass, query order
  std::vector<std::uint32_t> order;    ///< entry k → query index
  std::vector<double> sorted_masses;   ///< entry k → hypothesis mass, ascending

  std::size_t size() const { return spectra.size(); }
  double min_mass() const;  ///< the paper's m(q)_min (0 when empty)
  double max_mass() const;
};

struct ShardSearchStats {
  std::uint64_t candidates_evaluated = 0;  ///< fully scored (the paper's r)
  std::uint64_t candidates_prefiltered = 0;  ///< screened out cheaply
  std::uint64_t hits_offered = 0;          ///< top-τ updates attempted

  ShardSearchStats& operator+=(const ShardSearchStats& other) {
    candidates_evaluated += other.candidates_evaluated;
    candidates_prefiltered += other.candidates_prefiltered;
    hits_offered += other.hits_offered;
    return *this;
  }
};

/// Virtual compute seconds one kernel invocation costs under `model` —
/// the single place where candidate work maps onto the simulated clock.
inline double kernel_cost_seconds(const ShardSearchStats& stats,
                                  const sim::ComputeModel& model) {
  return static_cast<double>(stats.candidates_evaluated) *
             model.seconds_per_candidate +
         static_cast<double>(stats.candidates_prefiltered) *
             model.seconds_per_prefilter +
         static_cast<double>(stats.hits_offered) * model.seconds_per_hit_update;
}

class SearchEngine {
 public:
  explicit SearchEngine(SearchConfig config);

  const SearchConfig& config() const { return config_; }

  /// Preprocess and index a query set (any subset of the global queries).
  PreparedQueries prepare(std::span<const Spectrum> queries) const;

  /// Score every candidate of `shard` against every matching query in
  /// `queries`, updating tops[q]. tops.size() must equal queries.size().
  /// If `per_query_candidates` is non-null it accumulates, per query, the
  /// number of candidates evaluated (Fig. 1b measurements).
  ShardSearchStats search_shard(
      const ProteinDatabase& shard, const PreparedQueries& queries,
      std::span<TopK<Hit>> tops,
      std::vector<std::uint64_t>* per_query_candidates = nullptr) const;

  /// Score one candidate peptide against one query (model dispatch).
  double score_candidate(const QueryContext& context,
                         std::string_view peptide) const;

  /// Serial end-to-end search — the p=1 reference every parallel variant is
  /// validated against.
  QueryHits search(const ProteinDatabase& db,
                   std::span<const Spectrum> queries) const;

  /// Extract final per-query hit lists (best-first) from the running tops.
  QueryHits finalize(std::vector<TopK<Hit>>& tops) const;

  /// A fresh top-τ list per query.
  std::vector<TopK<Hit>> make_tops(std::size_t query_count) const;

 private:
  SearchConfig config_;
};

}  // namespace msp
