// The serial search kernel shared by every parallelization.
//
// Candidate rule (Section II-A): a prefix or suffix of a database sequence
// is a candidate for query q iff its neutral mass lies within m(q) ± δ.
//
// The kernel is *candidate-centric*: each shard carries a CandidateIndex —
// its candidates already enumerated and mass-sorted — and search_shard()
// merge-joins that array against the mass-sorted query hypotheses. Each
// candidate's theoretical fragment ions are then built exactly once (into a
// reusable workspace) and scored against every query whose window contains
// it, instead of being regenerated per (candidate, query) pair. The paper's
// Discussion identifies on-the-fly candidate generation as the dominant
// query-processing cost; this is the HiCOPS-style fix. The original
// database-walking kernel is retained as search_shard_reference() so tests
// can prove the two are hit-for-hit and counter-for-counter identical.
//
// Every algorithm (serial, A, B, master–worker, query transport) funnels
// through search_shard(), which is what makes the cross-algorithm
// hit-for-hit validation meaningful.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/candidate_index.hpp"
#include "core/candidate_record.hpp"
#include "core/config.hpp"
#include "core/fragment_index.hpp"
#include "core/hit.hpp"
#include "mass/peptide.hpp"
#include "scoring/likelihood.hpp"
#include "scoring/top_hits.hpp"
#include "simmpi/netmodel.hpp"
#include "spectra/spectrum.hpp"
#include "spectra/theoretical.hpp"

namespace msp {

/// Preprocessed queries plus the mass-sorted view the kernel searches.
/// The sorted view holds one *entry* per parent-mass hypothesis — exactly
/// one per query normally, one per charge hypothesis when
/// SearchConfig::try_alternate_charges is on — so `order`/`sorted_masses`
/// may be longer than `spectra`.
struct PreparedQueries {
  std::vector<Spectrum> spectra;       ///< preprocessed copies
  std::vector<QueryContext> contexts;  ///< binned + background, per query
  std::vector<double> masses;          ///< reported parent mass, query order
  std::vector<std::uint32_t> order;    ///< entry k → query index
  std::vector<double> sorted_masses;  ///< entry k → hypothesis mass, rising

  std::size_t size() const { return spectra.size(); }
  double min_mass() const;  ///< the paper's m(q)_min (0 when empty)
  double max_mass() const;
};

struct ShardSearchStats {
  std::uint64_t candidates_evaluated = 0;  ///< fully scored (the paper's r)
  std::uint64_t candidates_prefiltered = 0;  ///< screened out cheaply
  std::uint64_t hits_offered = 0;          ///< top-τ updates attempted
  /// Theoretical fragment-ion generations. The candidate-centric kernel
  /// builds each matched candidate's ions once and reuses them across every
  /// matching query/prefilter, so ions_built ≤ evaluated + prefiltered (with
  /// strict inequality whenever candidates match several hypotheses); the
  /// reference kernel regenerates per scoring call.
  std::uint64_t ions_built = 0;
  /// Fragment-index postings visited during open-search lookups (the
  /// indexed source's whole per-candidate cost; always 0 in narrow-window
  /// search and for the exhaustive source).
  std::uint64_t postings_scanned = 0;

  ShardSearchStats& operator+=(const ShardSearchStats& other) {
    candidates_evaluated += other.candidates_evaluated;
    candidates_prefiltered += other.candidates_prefiltered;
    hits_offered += other.hits_offered;
    ions_built += other.ions_built;
    postings_scanned += other.postings_scanned;
    return *this;
  }
};

/// Virtual compute seconds one kernel invocation costs under `model` —
/// the single place where candidate work maps onto the simulated clock.
/// ρ splits into a generation part (charged per ion build, which the
/// candidate-centric kernel amortizes across queries) and a comparison part
/// (charged per full evaluation) — the same split candidate_store uses, so
/// "store pays generation once" and "the kernel reuses ions" land on one
/// consistent clock.
inline double kernel_cost_seconds(const ShardSearchStats& stats,
                                  const sim::ComputeModel& model) {
  const double generation =
      model.seconds_per_candidate * model.candidate_generation_fraction;
  const double evaluation =
      model.seconds_per_candidate * (1.0 - model.candidate_generation_fraction);
  return static_cast<double>(stats.ions_built) * generation +
         static_cast<double>(stats.candidates_evaluated) * evaluation +
         static_cast<double>(stats.candidates_prefiltered) *
             model.seconds_per_prefilter +
         static_cast<double>(stats.hits_offered) *
             model.seconds_per_hit_update +
         static_cast<double>(stats.postings_scanned) *
             model.seconds_per_posting;
}

class SearchEngine {
 public:
  explicit SearchEngine(SearchConfig config);

  const SearchConfig& config() const { return config_; }

  /// Preprocess and index a query set (any subset of the global queries).
  PreparedQueries prepare(std::span<const Spectrum> queries) const;

  /// The parent-mass hypotheses one raw query contributes — exactly the
  /// enumeration prepare() feeds the kernel (one per charge hypothesis when
  /// try_alternate_charges is on, else the reported parent mass), computable
  /// without preprocessing since preprocessing never alters the precursor.
  /// This is what mass routing matches against shard histograms: routing
  /// and scoring must window on the same masses.
  std::vector<double> hypothesis_masses(const Spectrum& query) const;

  /// Score every candidate of `shard` against every matching query in
  /// `queries`, updating tops[q]. tops.size() must equal queries.size().
  /// If `per_query_candidates` is non-null it accumulates, per query, the
  /// number of candidates evaluated (Fig. 1b measurements).
  ///
  /// The candidate-centric kernel: merge-joins `index` (the shard's
  /// mass-sorted CandidateIndex, normally shipped with the shard bytes)
  /// against the sorted query hypotheses, building each matched candidate's
  /// fragment ions once. When `index` is null a temporary one is built
  /// in-place, so every caller gets the same path. When
  /// config().kernel_threads > 1 the index range fans out over that many
  /// threads with per-thread top-τ lists merged under the total hit order —
  /// hits and counters are identical for every thread count.
  ///
  /// When config().open_search() the kernel switches to the query-centric
  /// open form: each hypothesis windows [m − window_below, m + window_above]
  /// of the index, a CandidateSource gates the window down to candidates
  /// with ≥ vote_gate() matched ions, and only survivors are fully scored.
  /// `fragment` selects the indexed source (per candidate_source; a null
  /// fragment with kAuto falls back to exhaustive enumeration — the
  /// legacy-pack path); hits are bit-identical across sources, thread
  /// counts, and fault schedules. Narrow-window search ignores `fragment`.
  ShardSearchStats search_shard(
      const ProteinDatabase& shard, const PreparedQueries& queries,
      std::span<TopK<Hit>> tops,
      std::vector<std::uint64_t>* per_query_candidates = nullptr,
      const CandidateIndex* index = nullptr,
      const FragmentIndex* fragment = nullptr) const;

  /// The record-array form of the candidate-centric kernel: merge-joins a
  /// mass-ascending CandidateRecord span (a band of the serving ring's
  /// sorted record layout, or any partial fetch of one) against the sorted
  /// query hypotheses, with the same window predicates, lazy one-build-per-
  /// candidate ion generation, prefilter screen, and hit admission as
  /// search_shard() — scores and hits are bit-identical to scoring the same
  /// candidates through the index path. Single-threaded: a band visit
  /// touches few records, so there is nothing to fan out.
  ShardSearchStats search_records(std::span<const CandidateRecord> records,
                                  const PreparedQueries& queries,
                                  std::span<TopK<Hit>> tops) const;

  /// The original database-walking kernel (re-enumerates candidates and
  /// regenerates ions per scoring call). Kept as the ground truth the
  /// kernel-equivalence tests compare search_shard() against. In open mode
  /// it applies the identical widened window and vote gate, so it is also
  /// the oracle for both open-search candidate sources.
  ShardSearchStats search_shard_reference(
      const ProteinDatabase& shard, const PreparedQueries& queries,
      std::span<TopK<Hit>> tops,
      std::vector<std::uint64_t>* per_query_candidates = nullptr) const;

  /// Score one candidate peptide against one query (model dispatch).
  double score_candidate(const QueryContext& context,
                         std::string_view peptide) const;

  /// Same, over the candidate's precomputed fragment ions — builds the SoA
  /// ladder and funnels through the ladder overload. Scores are
  /// bit-identical to the string overload.
  double score_candidate(const QueryContext& context, std::string_view peptide,
                         const std::vector<FragmentIon>& ions) const;

  /// Same, over the candidate's prebuilt ion ladder — the form the blocked
  /// kernel calls so the ladder is built once per candidate and reused
  /// across every matching query. `peptide` is still needed for the
  /// spectral-library lookup in hybrid mode. Every overload funnels here,
  /// which is what keeps the reference oracle bit-identical to the kernels.
  double score_candidate(const QueryContext& context, std::string_view peptide,
                         const IonLadder& ladder) const;

  /// Serial end-to-end search — the p=1 reference every parallel variant is
  /// validated against.
  QueryHits search(const ProteinDatabase& db,
                   std::span<const Spectrum> queries) const;

  /// Extract final per-query hit lists (best-first) from the running tops.
  QueryHits finalize(std::vector<TopK<Hit>>& tops) const;

  /// A fresh top-τ list per query.
  std::vector<TopK<Hit>> make_tops(std::size_t query_count) const;

 private:
  /// The query-centric open-search kernel behind search_shard(); `index`
  /// has already been validated (or built) by the caller.
  ShardSearchStats search_shard_open(
      const ProteinDatabase& shard, const PreparedQueries& queries,
      std::span<TopK<Hit>> tops,
      std::vector<std::uint64_t>* per_query_candidates,
      const CandidateIndex& index, const FragmentIndex* fragment) const;

  SearchConfig config_;
};

}  // namespace msp
