#include "core/shard_map.hpp"

#include <algorithm>
#include <cmath>

#include "core/wire.hpp"
#include "io/wire_record.hpp"
#include "simmpi/comm.hpp"
#include "util/error.hpp"

namespace msp {

namespace {

// Leads the histogram record in a shard pack (and the exchange payload).
// "MSPARHST" in ASCII — distinct from the indexed-shard magic.
constexpr std::uint64_t kHistogramMagic = 0x4D53504152485354ull;
constexpr std::uint32_t kHistogramVersion = 1;

}  // namespace

namespace {

/// Shared accumulation loop over a mass-ascending sequence: buckets come
/// out index-ascending in one pass, the grid extent fixed by the extremes.
MassHistogram build_from_sorted_masses(double front_mass, double back_mass,
                                       std::span<const double> masses,
                                       double width) {
  MassHistogram histogram;
  histogram.bucket_width = width;
  if (masses.empty()) return histogram;
  histogram.min_mass = front_mass;
  const double span = back_mass - histogram.min_mass;
  histogram.bucket_count = static_cast<std::uint64_t>(span / width) + 1;
  for (const double mass : masses) {
    const auto bucket = static_cast<std::uint32_t>(
        std::min(static_cast<double>(histogram.bucket_count - 1),
                 (mass - histogram.min_mass) / width));
    if (!histogram.buckets.empty() &&
        histogram.buckets.back().index == bucket) {
      // Saturate rather than wrap: routing only asks "nonzero?". (A
      // saturated count would make record_range inexact — the serving ring
      // guards by checking total() against its band size.)
      if (histogram.buckets.back().count != UINT32_MAX)
        ++histogram.buckets.back().count;
    } else {
      MSP_CHECK_MSG(histogram.buckets.empty() ||
                        bucket > histogram.buckets.back().index,
                    "histogram masses must be non-decreasing");
      histogram.buckets.push_back(MassBucket{bucket, 1});
    }
  }
  return histogram;
}

}  // namespace

MassHistogram MassHistogram::build(const CandidateIndex& index, double width) {
  MSP_CHECK_MSG(width > 0.0 && std::isfinite(width),
                "histogram bucket width must be positive and finite");
  const std::vector<IndexedCandidate>& entries = index.entries();
  std::vector<double> masses;
  masses.reserve(entries.size());
  for (const IndexedCandidate& entry : entries) masses.push_back(entry.mass);
  if (masses.empty()) {
    MassHistogram histogram;
    histogram.bucket_width = width;
    return histogram;
  }
  return build_from_sorted_masses(masses.front(), masses.back(), masses,
                                  width);
}

MassHistogram MassHistogram::build(std::span<const double> masses,
                                   double width) {
  MSP_CHECK_MSG(width > 0.0 && std::isfinite(width),
                "histogram bucket width must be positive and finite");
  if (masses.empty()) {
    MassHistogram histogram;
    histogram.bucket_width = width;
    return histogram;
  }
  return build_from_sorted_masses(masses.front(), masses.back(), masses,
                                  width);
}

std::uint64_t MassHistogram::total() const {
  std::uint64_t total = 0;
  for (const MassBucket& bucket : buckets) total += bucket.count;
  return total;
}

namespace {

/// Clamped integer bucket index of `mass` on the histogram grid: the floor
/// of (mass − min_mass) / width as an int64, saturated just outside the
/// representable bucket-index domain. All routing comparisons below are
/// then pure integer arithmetic — the old float form compared unclamped
/// doubles against bucket indices and cast them to uint32, which is
/// undefined behavior for NaN and for quotients beyond the uint32 range.
/// NaN saturates low (reject side): a NaN query mass must never claim a
/// band visit, and masses are validated long before routing anyway.
std::int64_t bucket_floor_clamped(double mass, double min_mass, double width) {
  // One past any representable bucket index (indices are uint32 on wire).
  constexpr std::int64_t kAboveGrid =
      static_cast<std::int64_t>(UINT32_MAX) + 1;
  constexpr std::int64_t kBelowGrid = -3;  // below any ±1-widened window
  const double q = std::floor((mass - min_mass) / width);
  if (!(q >= static_cast<double>(kBelowGrid))) return kBelowGrid;
  if (q >= static_cast<double>(kAboveGrid)) return kAboveGrid;
  return static_cast<std::int64_t>(q);
}

}  // namespace

bool MassHistogram::occupied(double lo, double hi) const {
  if (buckets.empty() || hi < lo) return false;
  // Widen by one bucket per side before the grid test so boundary rounding
  // can only produce false positives, never a wrong skip.
  const std::int64_t lo_bucket =
      bucket_floor_clamped(lo, min_mass, bucket_width) - 1;
  const std::int64_t hi_bucket =
      bucket_floor_clamped(hi, min_mass, bucket_width) + 1;
  if (hi_bucket < 0) return false;
  const auto last = static_cast<std::int64_t>(buckets.back().index);
  if (lo_bucket > last) return false;
  // lo_bucket ≤ last < 2^32 here, so the narrowing cast is exact.
  const std::uint32_t first_wanted =
      lo_bucket <= 0 ? 0u : static_cast<std::uint32_t>(lo_bucket);
  const auto it = std::lower_bound(
      buckets.begin(), buckets.end(), first_wanted,
      [](const MassBucket& bucket, std::uint32_t want) {
        return bucket.index < want;
      });
  return it != buckets.end() &&
         static_cast<std::int64_t>(it->index) <= hi_bucket;
}

std::pair<std::uint64_t, std::uint64_t> MassHistogram::record_range(
    double lo, double hi) const {
  if (buckets.empty() || hi < lo) return {0, 0};
  // The same ±1-bucket widening as occupied(): rounding at the window edges
  // can only widen the returned range, never drop a matching record.
  const std::int64_t lo_bucket =
      bucket_floor_clamped(lo, min_mass, bucket_width) - 1;
  const std::int64_t hi_bucket =
      bucket_floor_clamped(hi, min_mass, bucket_width) + 1;
  if (hi_bucket < 0) return {0, 0};
  // Prefix sums over the sparse encoding: records are bucket-ascending in
  // the summarized array, so "count of records in buckets < b" is the index
  // of the first record at or above bucket b.
  std::uint64_t first = 0;
  std::uint64_t last = 0;
  for (const MassBucket& bucket : buckets) {
    const auto index = static_cast<std::int64_t>(bucket.index);
    if (index < lo_bucket) first += bucket.count;
    if (index <= hi_bucket)
      last += bucket.count;
    else
      break;
  }
  return {first, last};
}

void put_histogram(wire::Writer& writer, const MassHistogram& histogram) {
  wire::put_record_header(writer, kHistogramMagic, kHistogramVersion);
  writer.put_double(histogram.bucket_width);
  writer.put_double(histogram.min_mass);
  writer.put_u64(histogram.bucket_count);
  writer.put_u64(histogram.buckets.size());
  writer.reserve(histogram.buckets.size() * 2 * sizeof(std::uint32_t));
  for (const MassBucket& bucket : histogram.buckets) {
    writer.put_u32(bucket.index);
    writer.put_u32(bucket.count);
  }
}

bool peek_histogram(wire::Reader& reader) {
  return wire::peek_record(reader, kHistogramMagic);
}

MassHistogram get_histogram(wire::Reader& reader) {
  wire::get_record_header(reader, kHistogramMagic, kHistogramVersion,
                          "shard mass histogram");
  MassHistogram histogram;
  histogram.bucket_width = reader.get_double();
  histogram.min_mass = reader.get_double();
  histogram.bucket_count = reader.get_u64();
  const std::uint64_t nonzero = reader.get_u64();
  if (!(histogram.bucket_width > 0.0) ||
      !std::isfinite(histogram.bucket_width))
    throw IoError("shard mass histogram: bucket width must be positive "
                  "and finite");
  if (!std::isfinite(histogram.min_mass))
    throw IoError("shard mass histogram: min mass must be finite");
  if (nonzero > histogram.bucket_count)
    throw IoError("shard mass histogram: more nonzero buckets than the "
                  "grid holds");
  histogram.buckets.reserve(nonzero);
  for (std::uint64_t i = 0; i < nonzero; ++i) {
    MassBucket bucket;
    bucket.index = reader.get_u32();
    bucket.count = reader.get_u32();
    if (bucket.count == 0)
      throw IoError("shard mass histogram: zero-count bucket in sparse "
                    "encoding");
    if (bucket.index >= histogram.bucket_count)
      throw IoError("shard mass histogram: bucket index " +
                    std::to_string(bucket.index) + " outside grid of " +
                    std::to_string(histogram.bucket_count));
    if (!histogram.buckets.empty() &&
        bucket.index <= histogram.buckets.back().index)
      throw IoError("shard mass histogram: bucket indices must be strictly "
                    "ascending");
    histogram.buckets.push_back(bucket);
  }
  return histogram;
}

ShardMassMap ShardMassMap::exchange(sim::Comm& comm,
                                    const MassHistogram& local) {
  wire::Writer writer;
  put_histogram(writer, local);
  const std::vector<char> mine = writer.take();

  const int p = comm.size();
  std::vector<std::optional<MassHistogram>> shards(
      static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) {
    const std::vector<char> bytes = comm.bcast(r, mine);
    wire::Reader reader(bytes);
    shards[static_cast<std::size_t>(r)] = get_histogram(reader);
    if (!reader.exhausted())
      throw IoError("shard mass histogram: trailing bytes in exchange "
                    "payload");
  }
  return ShardMassMap(std::move(shards));
}

bool ShardMassMap::known(int shard) const {
  return shard >= 0 && shard < shard_count() &&
         shards_[static_cast<std::size_t>(shard)].has_value();
}

const MassHistogram* ShardMassMap::histogram(int shard) const {
  return known(shard) ? &*shards_[static_cast<std::size_t>(shard)] : nullptr;
}

bool ShardMassMap::routes() const {
  return std::any_of(shards_.begin(), shards_.end(),
                     [](const std::optional<MassHistogram>& h) {
                       return h.has_value();
                     });
}

bool ShardMassMap::needed(int shard,
                          std::span<const double> hypothesis_masses,
                          double tolerance_da) const {
  return needed(shard, hypothesis_masses, tolerance_da, tolerance_da);
}

bool ShardMassMap::needed(int shard,
                          std::span<const double> hypothesis_masses,
                          double below_da, double above_da) const {
  const MassHistogram* hist = histogram(shard);
  if (hist == nullptr) return true;  // unknown: visiting is always safe
  for (const double mass : hypothesis_masses)
    if (hist->occupied(mass - below_da, mass + above_da)) return true;
  return false;
}

}  // namespace msp
