#include "core/query_transport.hpp"

#include <algorithm>

#include "core/packdb.hpp"
#include "core/partition.hpp"
#include "core/search_engine.hpp"
#include "core/wire.hpp"
#include "scoring/top_hits.hpp"
#include "simmpi/comm.hpp"
#include "util/error.hpp"

namespace msp {
namespace {

std::vector<char> pack_hits(const std::vector<std::vector<Hit>>& per_query) {
  wire::Writer writer;
  writer.put_u64(per_query.size());
  for (const auto& hits : per_query) {
    writer.put_u32(static_cast<std::uint32_t>(hits.size()));
    for (const Hit& hit : hits) {
      writer.put_double(hit.score);
      writer.put_string(hit.protein_id);
      writer.put_u32(hit.offset);
      writer.put_u32(hit.length);
      writer.put_u32(static_cast<std::uint32_t>(hit.end));
      writer.put_double(hit.mass);
      writer.put_string(hit.peptide);
    }
  }
  return writer.take();
}

std::vector<std::vector<Hit>> unpack_hits(const std::vector<char>& bytes) {
  wire::Reader reader(bytes);
  std::vector<std::vector<Hit>> per_query(reader.get_u64());
  for (auto& hits : per_query) {
    hits.resize(reader.get_u32());
    for (Hit& hit : hits) {
      hit.score = reader.get_double();
      hit.protein_id = reader.get_string();
      hit.offset = reader.get_u32();
      hit.length = reader.get_u32();
      const std::uint32_t end = reader.get_u32();
      if (end > static_cast<std::uint32_t>(FragmentEnd::kInternal))
        throw IoError("packed hit has invalid fragment-end marker");
      hit.end = static_cast<FragmentEnd>(end);
      hit.mass = reader.get_double();
      hit.peptide = reader.get_string();
    }
  }
  return per_query;
}

}  // namespace

ParallelRunResult run_query_transport(const sim::Runtime& runtime,
                                      const std::string& fasta_image,
                                      const std::vector<Spectrum>& queries,
                                      const SearchConfig& config,
                                      const QueryTransportOptions& options) {
  const int p = runtime.size();
  const SearchEngine engine(config);

  QueryHits all_hits(queries.size());

  sim::RunReport report = runtime.run([&](sim::Comm& comm) {
    const int rank = comm.rank();
    const auto& cost = comm.compute_model();
    if (options.memory_budget_bytes != 0)
      comm.set_memory_budget(options.memory_budget_bytes);

    // Static local database shard (never moves — that is the point).
    comm.trace_mark("QT load+index");
    const ProteinDatabase local_db = load_database_shard(fasta_image, rank, p);
    comm.clock().charge_io(static_cast<double>(local_db.total_residues()) *
                           cost.seconds_per_residue_load);
    std::size_t db_bytes = 0;
    for (const Protein& protein : local_db.proteins)
      db_bytes += protein.residues.size() + protein.id.size();
    comm.charge_alloc(db_bytes);
    // The static shard is indexed once and reused for all p query batches —
    // query transport benefits most, since its shard never moves.
    const CandidateIndex local_index =
        CandidateIndex::build(local_db, engine.config());
    comm.clock().charge_compute(static_cast<double>(local_index.size()) *
                                cost.seconds_per_mz);
    // In open mode the static shard also gets a fragment index, built once
    // and reused for all p query batches (it never ships — queries move).
    const bool use_fragment =
        config.open_search() &&
        config.candidate_source != CandidateSourceKind::kMassWindow;
    FragmentIndex local_fragment;
    if (use_fragment) {
      local_fragment =
          FragmentIndex::build(local_db, local_index, config.bin_width);
      comm.clock().charge_compute(
          static_cast<double>(local_fragment.posting_count()) *
          cost.seconds_per_mz);
    }

    // Local query block, exposed for ring transport as packed bytes.
    const QueryRange block = query_block(queries.size(), rank, p);
    const std::span<const Spectrum> local_queries(queries.data() + block.begin,
                                                  block.count());
    std::vector<char> local_query_pack = pack_spectra(local_queries);
    comm.charge_alloc(local_query_pack.size());
    sim::Window window(comm, local_query_pack);

    // Partial results for EVERY query block this rank scored — the O(m·τ)
    // state the database-transport design avoids.
    std::vector<std::vector<std::vector<Hit>>> partial(
        static_cast<std::size_t>(p));
    const int pulls = comm.network().concurrent_pulls(p);

    std::vector<char> incoming;
    for (int s = 0; s < p; ++s) {
      comm.trace_mark("QT ring step " + std::to_string(s));
      const int j = (rank + s) % p;
      std::vector<Spectrum> batch;
      if (j == rank) {
        batch.assign(local_queries.begin(), local_queries.end());
      } else {
        sim::RmaRequest fetch = window.rget(j, incoming, pulls);
        window.wait(fetch);
        batch = unpack_spectra(incoming);
      }
      const PreparedQueries prepared = engine.prepare(batch);
      comm.clock().charge_compute(static_cast<double>(batch.size()) *
                                  cost.seconds_per_query_prep);
      std::vector<TopK<Hit>> tops = engine.make_tops(batch.size());
      const ShardSearchStats stats =
          engine.search_shard(local_db, prepared, tops, nullptr, &local_index,
                              use_fragment ? &local_fragment : nullptr);
      comm.clock().charge_compute(kernel_cost_seconds(stats, cost));
      comm.bump("candidates", stats.candidates_evaluated);
      comm.bump("prefiltered", stats.candidates_prefiltered);
      comm.bump("ions", stats.ions_built);
      if (config.open_search())
        comm.bump("postings", stats.postings_scanned);
      partial[static_cast<std::size_t>(j)] = engine.finalize(tops);
      if (options.fence_per_iteration) window.fence();
    }
    // Window close is collective (MPI_Win_free semantics).
    window.fence();

    // Merge phase: ship partial lists to each block's owner (the
    // serialization step the paper's database transport avoids).
    comm.trace_mark("QT merge");
    std::vector<std::vector<char>> send(static_cast<std::size_t>(p));
    for (int r = 0; r < p; ++r)
      send[static_cast<std::size_t>(r)] =
          pack_hits(partial[static_cast<std::size_t>(r)]);
    const std::vector<std::vector<char>> received = comm.alltoallv(send);

    std::vector<TopK<Hit>> merged = engine.make_tops(block.count());
    for (const auto& payload : received) {
      const auto partial_hits = unpack_hits(payload);
      MSP_CHECK(partial_hits.size() == block.count());
      for (std::size_t q = 0; q < partial_hits.size(); ++q)
        for (const Hit& hit : partial_hits[q]) merged[q].offer(hit);
    }
    comm.clock().charge_compute(static_cast<double>(block.count() * p) *
                                cost.seconds_per_hit_update *
                                static_cast<double>(config.tau));

    QueryHits final_hits = engine.finalize(merged);
    if (config.open_search()) {
      std::uint64_t misses = 0;
      for (const std::vector<Hit>& hits : final_hits)
        if (hits.empty()) ++misses;
      comm.bump("open_index_miss_queries", misses);
    }
    std::size_t reported = 0;
    for (std::size_t q = 0; q < final_hits.size(); ++q) {
      reported += final_hits[q].size();
      all_hits[block.begin + q] = std::move(final_hits[q]);
    }
    comm.clock().charge_io(static_cast<double>(reported) *
                           cost.seconds_per_hit_output);
  });

  ParallelRunResult result;
  result.candidates = report.sum_counter("candidates");
  result.report = std::move(report);
  result.hits = std::move(all_hits);
  return result;
}

}  // namespace msp
