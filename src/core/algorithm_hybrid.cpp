#include "core/algorithm_hybrid.hpp"

#include "core/partition.hpp"
#include "core/ring_search.hpp"
#include "core/search_engine.hpp"
#include "simmpi/comm.hpp"
#include "util/error.hpp"

namespace msp {

int default_group_count(int p) {
  MSP_CHECK_MSG(p >= 1, "need p >= 1");
  int best = 1;
  for (int g = 1; g * g <= p; ++g)
    if (p % g == 0) best = g;
  return best;
}

HybridResult run_algorithm_hybrid(const sim::Runtime& runtime,
                                  const std::string& fasta_image,
                                  const std::vector<Spectrum>& queries,
                                  const SearchConfig& config,
                                  const HybridOptions& options) {
  const int p = runtime.size();
  const int groups =
      options.groups == 0 ? default_group_count(p) : options.groups;
  MSP_CHECK_MSG(groups >= 1 && groups <= p && p % groups == 0,
                "group count " << groups << " must divide p=" << p);
  const int group_size = p / groups;
  const SearchEngine engine(config);

  AlgorithmAOptions ring_options;
  ring_options.mask = options.mask;
  ring_options.fence_per_iteration = options.fence_per_iteration;

  QueryHits all_hits(queries.size());

  sim::RunReport report = runtime.run([&](sim::Comm& world) {
    if (options.memory_budget_bytes != 0)
      world.set_memory_budget(options.memory_budget_bytes);

    // Sub-groups are contiguous rank blocks: group = rank / group_size.
    const int color = world.rank() / group_size;
    world.trace_mark("hybrid split g=" + std::to_string(color));
    const std::unique_ptr<sim::Comm> sub = world.split(color);

    // Queries partition across groups, then across the group's members
    // (the ring body derives each member's block — and, under crash
    // recovery, each survivor's share of a dead member's block — from the
    // group's slice); the database partitions within each group (every
    // group holds all of it — per-rank memory O(N·g/p)).
    const QueryRange group_block = query_block(queries.size(), color, groups);
    detail::ring_search_body(
        *sub, fasta_image,
        detail::RingQuerySet{
            std::span<const Spectrum>(queries.data() + group_block.begin,
                                      group_block.count()),
            group_block.begin},
        engine, ring_options, all_hits);

    // Groups finish at different times; the job ends when all do.
    world.barrier();
  });

  HybridResult result;
  result.candidates = report.sum_counter("candidates");
  result.groups_used = groups;
  result.report = std::move(report);
  result.hits = std::move(all_hits);
  return result;
}

}  // namespace msp
