// Internal: the A2 ring-rotation search body, shared by Algorithm A (world
// communicator) and the sub-group hybrid (split communicators). Not part of
// the public API.
#pragma once

#include <span>
#include <string>

#include "core/algorithm_a.hpp"
#include "core/hit.hpp"
#include "core/search_engine.hpp"
#include "simmpi/comm.hpp"

namespace msp::detail {

/// Execute steps A1–A3 on `comm`: load the (comm.rank(), comm.size())
/// database chunk of `fasta_image`, search `local_queries` against the
/// rotating shards, and write each query q's hits to
/// all_hits[output_offset + q]. Collective over `comm`.
void ring_search_body(sim::Comm& comm, const std::string& fasta_image,
                      std::span<const Spectrum> local_queries,
                      std::size_t output_offset, const SearchEngine& engine,
                      const AlgorithmAOptions& options, QueryHits& all_hits);

}  // namespace msp::detail
