// Internal: the A2 ring-rotation search body, shared by Algorithm A (world
// communicator) and the sub-group hybrid (split communicators). Not part of
// the public API.
#pragma once

#include <span>
#include <string>

#include "core/algorithm_a.hpp"
#include "core/hit.hpp"
#include "core/search_engine.hpp"
#include "simmpi/comm.hpp"

namespace msp::detail {

/// The communicator's whole query set plus where its hits land in the
/// global output array (the hybrid passes its group's slice). Every rank
/// sees the full set so that, when a rank crashes mid-ring, the survivors
/// can re-partition the dead rank's query block among themselves.
struct RingQuerySet {
  std::span<const Spectrum> queries;  ///< all queries owned by this comm
  std::size_t output_offset = 0;      ///< all_hits index of queries[0]
};

/// Execute steps A1–A3 on `comm`: load the (comm.rank(), comm.size())
/// database chunk of `fasta_image`, search this rank's block of
/// `query_set.queries` against the rotating shards, and write each query
/// q's hits to all_hits[query_set.output_offset + q]. Collective over
/// `comm`.
///
/// Fault tolerance (active when comm.faults() schedules crashes): each
/// shard is replicated on its ring successor before the rotation starts; a
/// rank whose scheduled crash step fires stops contributing work but keeps
/// matching collectives (fail-stop "zombie"); after the rotation, the
/// survivors re-partition each dead rank's query block and re-search it
/// against all shards, pulling a dead rank's shard from its replica.
/// Throws FaultUnrecoverable when a shard's owner and replica holder both
/// died, or when the schedule kills every rank of the communicator.
void ring_search_body(sim::Comm& comm, const std::string& fasta_image,
                      const RingQuerySet& query_set, const SearchEngine& engine,
                      const AlgorithmAOptions& options, QueryHits& all_hits);

}  // namespace msp::detail
