#include "core/master_worker.hpp"

#include <algorithm>

#include "core/packdb.hpp"
#include "core/search_engine.hpp"
#include "core/wire.hpp"
#include "io/fasta.hpp"
#include "scoring/top_hits.hpp"
#include "simmpi/comm.hpp"
#include "util/error.hpp"

namespace msp {
namespace {

constexpr int kTagReady = 1;  ///< worker → master: give me work
constexpr int kTagBatch = 2;  ///< master → worker: [u64 begin][u64 count]
constexpr int kTagStop = 3;   ///< master → worker: no work left

std::vector<char> encode_batch(std::size_t begin, std::size_t count) {
  wire::Writer writer;
  writer.put_u64(begin);
  writer.put_u64(count);
  return writer.take();
}

std::pair<std::size_t, std::size_t> decode_batch(const std::vector<char>& bytes) {
  wire::Reader reader(bytes);
  const std::uint64_t begin = reader.get_u64();
  const std::uint64_t count = reader.get_u64();
  return {begin, count};
}

}  // namespace

ParallelRunResult run_master_worker(const sim::Runtime& runtime,
                                    const std::string& fasta_image,
                                    const std::vector<Spectrum>& queries,
                                    const SearchConfig& config,
                                    const MasterWorkerOptions& options) {
  MSP_CHECK_MSG(options.batch_size >= 1, "batch size must be >= 1");
  const int p = runtime.size();
  const SearchEngine engine(config);

  QueryHits all_hits(queries.size());

  sim::RunReport report = runtime.run([&](sim::Comm& comm) {
    const int rank = comm.rank();
    const auto& cost = comm.compute_model();
    if (options.memory_budget_bytes != 0)
      comm.set_memory_budget(options.memory_budget_bytes);

    // Worker-side search of one query batch against the full database.
    auto process_batch = [&](const ProteinDatabase& db, std::size_t begin,
                             std::size_t count) {
      const std::span<const Spectrum> batch(queries.data() + begin, count);
      const PreparedQueries prepared = engine.prepare(batch);
      comm.clock().charge_compute(static_cast<double>(count) *
                                  cost.seconds_per_query_prep);
      std::vector<TopK<Hit>> tops = engine.make_tops(count);
      const ShardSearchStats stats = engine.search_shard(db, prepared, tops);
      comm.clock().charge_compute(kernel_cost_seconds(stats, cost));
      comm.bump("candidates", stats.candidates_evaluated);
      comm.bump("prefiltered", stats.candidates_prefiltered);
      QueryHits hits = engine.finalize(tops);
      std::size_t reported = 0;
      for (std::size_t q = 0; q < hits.size(); ++q) {
        reported += hits[q].size();
        all_hits[begin + q] = std::move(hits[q]);
      }
      comm.clock().charge_io(static_cast<double>(reported) *
                             cost.seconds_per_hit_output);
    };

    // Every worker loads the ENTIRE database — the O(N) space baseline.
    auto load_full_database = [&]() {
      ProteinDatabase db = read_fasta_string(fasta_image);
      comm.clock().charge_io(static_cast<double>(db.total_residues()) *
                             cost.seconds_per_residue_load);
      std::size_t bytes = 0;
      for (const Protein& protein : db.proteins)
        bytes += protein.residues.size() + protein.id.size() + sizeof(Protein);
      comm.charge_alloc(bytes);
      return db;
    };

    if (p == 1) {
      // Uni-worker degenerate case: serial MSPolygraph.
      const ProteinDatabase db = load_full_database();
      for (std::size_t begin = 0; begin < queries.size();
           begin += options.batch_size) {
        const std::size_t count =
            std::min(options.batch_size, queries.size() - begin);
        process_batch(db, begin, count);
      }
      return;
    }

    if (rank == 0) {
      // S1/S2/S4: the master loads Q and deals batches on demand.
      comm.charge_alloc(queries.size() * 64);  // query metadata only
      std::size_t next = 0;
      int active_workers = p - 1;
      while (active_workers > 0) {
        const sim::Comm::Message ready = comm.recv(sim::Comm::kAnySource,
                                                   kTagReady);
        if (next < queries.size()) {
          const std::size_t count =
              std::min(options.batch_size, queries.size() - next);
          comm.send(ready.source, kTagBatch, encode_batch(next, count));
          next += count;
        } else {
          comm.send(ready.source, kTagStop, {});
          --active_workers;
        }
      }
    } else {
      // S3: workers request, process, repeat.
      const ProteinDatabase db = load_full_database();
      while (true) {
        comm.send(0, kTagReady, {});
        const sim::Comm::Message reply = comm.recv(0);
        if (reply.tag == kTagStop) break;
        const auto [begin, count] = decode_batch(reply.payload);
        process_batch(db, begin, count);
      }
    }
  });

  ParallelRunResult result;
  result.candidates = report.sum_counter("candidates");
  result.report = std::move(report);
  result.hits = std::move(all_hits);
  return result;
}

}  // namespace msp
