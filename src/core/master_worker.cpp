#include "core/master_worker.hpp"

#include <algorithm>
#include <deque>
#include <map>

#include "core/packdb.hpp"
#include "core/search_engine.hpp"
#include "core/wire.hpp"
#include "io/fasta.hpp"
#include "scoring/top_hits.hpp"
#include "simmpi/comm.hpp"
#include "util/error.hpp"

namespace msp {
namespace {

constexpr int kTagReady = 1;    ///< worker → master: give me work
constexpr int kTagBatch = 2;    ///< master → worker: [u64 begin][u64 count]
constexpr int kTagStop = 3;     ///< master → worker: no work left
constexpr int kTagCrashed = 4;  ///< worker → master: fail-stop notification

std::vector<char> encode_batch(std::size_t begin, std::size_t count) {
  wire::Writer writer;
  writer.put_u64(begin);
  writer.put_u64(count);
  return writer.take();
}

std::pair<std::size_t, std::size_t> decode_batch(
    const std::vector<char>& bytes) {
  wire::Reader reader(bytes);
  const std::uint64_t begin = reader.get_u64();
  const std::uint64_t count = reader.get_u64();
  return {begin, count};
}

}  // namespace

ParallelRunResult run_master_worker(const sim::Runtime& runtime,
                                    const std::string& fasta_image,
                                    const std::vector<Spectrum>& queries,
                                    const SearchConfig& config,
                                    const MasterWorkerOptions& options) {
  MSP_CHECK_MSG(options.batch_size >= 1, "batch size must be >= 1");
  const int p = runtime.size();
  const SearchEngine engine(config);

  // A crash schedule the protocol cannot absorb is rejected up front (and
  // deterministically): the master is a single point of failure, and at
  // least one worker must be crash-free to drain the requeued batches.
  const sim::FaultModel& faults = runtime.faults();
  if (faults.has_crashes()) {
    if (faults.crash_step(0) >= 0)
      throw FaultUnrecoverable(
          "master-worker: rank 0 (the master) has no failover");
    int surviving_workers = 0;
    for (int r = 1; r < p; ++r)
      if (faults.crash_step(r) < 0) ++surviving_workers;
    if (surviving_workers == 0)
      throw FaultUnrecoverable(
          "master-worker: fault schedule kills every worker");
  }

  QueryHits all_hits(queries.size());

  sim::RunReport report = runtime.run([&](sim::Comm& comm) {
    const int rank = comm.rank();
    const auto& cost = comm.compute_model();
    if (options.memory_budget_bytes != 0)
      comm.set_memory_budget(options.memory_budget_bytes);

    // Worker-side search of one query batch against the full database. The
    // worker's candidate index is built once at load time and reused by
    // every batch it is dealt.
    auto process_batch = [&](const ProteinDatabase& db,
                             const CandidateIndex& index,
                             const FragmentIndex* fragment, std::size_t begin,
                             std::size_t count) {
      comm.trace_mark("batch [" + std::to_string(begin) + ", " +
                      std::to_string(begin + count) + ")");
      const std::span<const Spectrum> batch(queries.data() + begin, count);
      const PreparedQueries prepared = engine.prepare(batch);
      comm.clock().charge_compute(static_cast<double>(count) *
                                  cost.seconds_per_query_prep);
      std::vector<TopK<Hit>> tops = engine.make_tops(count);
      const ShardSearchStats stats =
          engine.search_shard(db, prepared, tops, nullptr, &index, fragment);
      comm.clock().charge_compute(kernel_cost_seconds(stats, cost));
      comm.bump("candidates", stats.candidates_evaluated);
      comm.bump("prefiltered", stats.candidates_prefiltered);
      comm.bump("ions", stats.ions_built);
      if (config.open_search())
        comm.bump("postings", stats.postings_scanned);
      QueryHits hits = engine.finalize(tops);
      if (config.open_search()) {
        std::uint64_t misses = 0;
        for (const std::vector<Hit>& per_query : hits)
          if (per_query.empty()) ++misses;
        comm.bump("open_index_miss_queries", misses);
      }
      std::size_t reported = 0;
      for (std::size_t q = 0; q < hits.size(); ++q) {
        reported += hits[q].size();
        all_hits[begin + q] = std::move(hits[q]);
      }
      comm.clock().charge_io(static_cast<double>(reported) *
                             cost.seconds_per_hit_output);
    };

    // Every worker loads the ENTIRE database — the O(N) space baseline.
    auto load_full_database = [&]() {
      ProteinDatabase db = read_fasta_string(fasta_image);
      comm.clock().charge_io(static_cast<double>(db.total_residues()) *
                             cost.seconds_per_residue_load);
      std::size_t bytes = 0;
      for (const Protein& protein : db.proteins)
        bytes += protein.residues.size() + protein.id.size() + sizeof(Protein);
      comm.charge_alloc(bytes);
      return db;
    };

    auto build_index = [&](const ProteinDatabase& db) {
      CandidateIndex index = CandidateIndex::build(db, engine.config());
      comm.clock().charge_compute(static_cast<double>(index.size()) *
                                  cost.seconds_per_mz);
      return index;
    };

    // Workers hold the whole database, so the fragment index is built once
    // at load time (never shipped) and reused by every batch.
    auto build_fragment = [&](const ProteinDatabase& db,
                              const CandidateIndex& index) {
      FragmentIndex fragment;
      if (config.open_search() &&
          config.candidate_source != CandidateSourceKind::kMassWindow) {
        fragment = FragmentIndex::build(db, index, config.bin_width);
        comm.clock().charge_compute(
            static_cast<double>(fragment.posting_count()) *
            cost.seconds_per_mz);
      }
      return fragment;
    };

    if (p == 1) {
      // Uni-worker degenerate case: serial MSPolygraph.
      const ProteinDatabase db = load_full_database();
      const CandidateIndex index = build_index(db);
      const FragmentIndex fragment = build_fragment(db, index);
      for (std::size_t begin = 0; begin < queries.size();
           begin += options.batch_size) {
        const std::size_t count =
            std::min(options.batch_size, queries.size() - begin);
        process_batch(db, index, fragment.empty() ? nullptr : &fragment, begin,
                      count);
      }
      return;
    }

    if (rank == 0) {
      // S1/S2/S4: the master loads Q and deals batches on demand. A worker
      // that fail-stops notifies the master (kTagCrashed), which re-queues
      // the worker's in-flight batch for a survivor. While any batch is in
      // flight, idle workers are parked instead of stopped — their stop
      // might otherwise race with a crashed batch bouncing back.
      comm.trace_mark("master deal loop");
      comm.charge_alloc(queries.size() * 64);  // query metadata only
      std::size_t next = 0;
      int active_workers = p - 1;
      std::map<int, std::pair<std::size_t, std::size_t>> in_flight;
      std::deque<std::pair<std::size_t, std::size_t>> requeued;
      std::deque<int> parked;

      auto deal = [&](int worker) {
        if (!requeued.empty()) {
          const auto [begin, count] = requeued.front();
          requeued.pop_front();
          comm.send(worker, kTagBatch, encode_batch(begin, count));
          in_flight[worker] = {begin, count};
        } else if (next < queries.size()) {
          const std::size_t count =
              std::min(options.batch_size, queries.size() - next);
          comm.send(worker, kTagBatch, encode_batch(next, count));
          in_flight[worker] = {next, count};
          next += count;
        } else if (!in_flight.empty()) {
          parked.push_back(worker);
        } else {
          comm.send(worker, kTagStop, {});
          --active_workers;
        }
      };

      while (active_workers > 0) {
        const sim::Comm::Message msg =
            comm.recv(sim::Comm::kAnySource, sim::Comm::kAnyTag);
        if (msg.tag == kTagCrashed) {
          comm.charge_recovery(
              faults.crash_detection_timeout_s,
              "worker " + std::to_string(msg.source) + " crashed");
          const auto it = in_flight.find(msg.source);
          if (it != in_flight.end()) {
            requeued.push_back(it->second);
            in_flight.erase(it);
            comm.bump("requeued_batches");
          }
          --active_workers;
        } else {
          MSP_CHECK_MSG(msg.tag == kTagReady,
                        "master received unexpected tag " << msg.tag);
          in_flight.erase(msg.source);
          deal(msg.source);
        }
        // Requeued work goes to parked workers first; once nothing is in
        // flight and nothing is queued, parked workers can be released.
        while (!parked.empty() && !requeued.empty()) {
          const int worker = parked.front();
          parked.pop_front();
          deal(worker);
        }
        if (in_flight.empty() && requeued.empty()) {
          while (!parked.empty()) {
            comm.send(parked.front(), kTagStop, {});
            parked.pop_front();
            --active_workers;
          }
        }
      }
      if (next < queries.size() || !requeued.empty())
        throw FaultUnrecoverable(
            "master-worker: ran out of workers with queries unassigned");
    } else {
      // S3: workers request, process, repeat. A scheduled crash fires when
      // the worker receives its crash-step'th batch: it fail-stops without
      // processing and notifies the master.
      const int my_crash_batch = faults.crash_step(comm.global_rank());
      const ProteinDatabase db = load_full_database();
      const CandidateIndex index = build_index(db);
      const FragmentIndex fragment = build_fragment(db, index);
      int batches_received = 0;
      while (true) {
        comm.send(0, kTagReady, {});
        const sim::Comm::Message reply = comm.recv(0);
        if (reply.tag == kTagStop) {
          // A crash scheduled past the last batch this worker saw still
          // registers (deterministically) as a crash at shutdown.
          if (my_crash_batch >= 0)
            comm.mark_crashed("at shutdown, before batch ordinal " +
                              std::to_string(my_crash_batch));
          break;
        }
        if (my_crash_batch >= 0 && batches_received == my_crash_batch) {
          comm.mark_crashed("receiving batch ordinal " +
                            std::to_string(batches_received));
          comm.send(0, kTagCrashed, {});
          break;
        }
        ++batches_received;
        const auto [begin, count] = decode_batch(reply.payload);
        process_batch(db, index, fragment.empty() ? nullptr : &fragment, begin,
                      count);
      }
    }
  });

  ParallelRunResult result;
  result.candidates = report.sum_counter("candidates");
  result.report = std::move(report);
  result.hits = std::move(all_hits);
  return result;
}

}  // namespace msp
