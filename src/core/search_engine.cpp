#include "core/search_engine.hpp"

#include <algorithm>
#include <exception>
#include <numeric>
#include <optional>
#include <thread>

#include "core/candidate_source.hpp"
#include "mass/digest.hpp"
#include "scoring/hyperscore.hpp"
#include "scoring/shared_peak.hpp"
#include "util/error.hpp"

namespace msp {

double PreparedQueries::min_mass() const {
  return sorted_masses.empty() ? 0.0 : sorted_masses.front();
}

double PreparedQueries::max_mass() const {
  return sorted_masses.empty() ? 0.0 : sorted_masses.back();
}

SearchEngine::SearchEngine(SearchConfig config) : config_(config) {
  MSP_CHECK_MSG(config_.tolerance_da > 0.0, "tolerance must be positive");
  MSP_CHECK_MSG(config_.tau >= 1, "tau must be >= 1");
  MSP_CHECK_MSG(config_.min_candidate_length >= 2,
                "candidates must have >= 2 residues (fragmentable)");
  MSP_CHECK_MSG(config_.max_candidate_length >= config_.min_candidate_length,
                "candidate length bounds inverted");
  MSP_CHECK_MSG(config_.open_window_da >= 0.0,
                "open window must be non-negative");
  if (config_.open_search())
    MSP_CHECK_MSG(config_.min_fragment_votes >= 1,
                  "open search requires a vote gate of at least 1 (a "
                  "zero-vote candidate is invisible to the fragment index)");
}

PreparedQueries SearchEngine::prepare(std::span<const Spectrum> queries) const {
  PreparedQueries prepared;
  prepared.spectra.reserve(queries.size());
  prepared.contexts.reserve(queries.size());
  prepared.masses.reserve(queries.size());
  // Each query contributes one (mass, query) search entry per parent-mass
  // hypothesis: just the reported charge by default, or one per charge in
  // charge_hypotheses when alternate-charge search is on.
  std::vector<std::pair<double, std::uint32_t>> entries;
  for (std::uint32_t i = 0; i < queries.size(); ++i) {
    const Spectrum& raw = queries[i];
    Spectrum cleaned = preprocess(raw, config_.preprocess);
    prepared.masses.push_back(cleaned.parent_mass());
    if (config_.try_alternate_charges) {
      for (int z : config_.charge_hypotheses) {
        MSP_CHECK_MSG(z >= 1, "charge hypotheses must be >= 1");
        entries.emplace_back(mass_from_mz(raw.precursor_mz(), z), i);
      }
    } else {
      entries.emplace_back(cleaned.parent_mass(), i);
    }
    prepared.contexts.emplace_back(cleaned, config_.bin_width);
    // Xcorr folds its 151-offset background into the query once, here, so
    // every driver and the serve path (all of which funnel through
    // prepare()) share one per-query build.
    if (config_.model == ScoreModel::kXcorr)
      prepared.contexts.back().enable_xcorr();
    prepared.spectra.push_back(std::move(cleaned));
  }
  std::sort(entries.begin(), entries.end());
  prepared.order.reserve(entries.size());
  prepared.sorted_masses.reserve(entries.size());
  for (const auto& [mass, index] : entries) {
    prepared.sorted_masses.push_back(mass);
    prepared.order.push_back(index);
  }
  return prepared;
}

std::vector<double> SearchEngine::hypothesis_masses(
    const Spectrum& query) const {
  std::vector<double> masses;
  if (config_.try_alternate_charges) {
    masses.reserve(config_.charge_hypotheses.size());
    for (const int z : config_.charge_hypotheses) {
      MSP_CHECK_MSG(z >= 1, "charge hypotheses must be >= 1");
      masses.push_back(mass_from_mz(query.precursor_mz(), z));
    }
  } else {
    masses.push_back(query.parent_mass());
  }
  return masses;
}

double SearchEngine::score_candidate(const QueryContext& context,
                                     std::string_view peptide) const {
  return score_candidate(context, peptide, fragment_ions(peptide));
}

double SearchEngine::score_candidate(
    const QueryContext& context, std::string_view peptide,
    const std::vector<FragmentIon>& ions) const {
  static thread_local IonLadder ladder;
  build_ion_ladder(ions, config_.bin_width, ladder);
  return score_candidate(context, peptide, ladder);
}

double SearchEngine::score_candidate(const QueryContext& context,
                                     std::string_view peptide,
                                     const IonLadder& ladder) const {
  switch (config_.model) {
    case ScoreModel::kLikelihood: {
      const double model_score = likelihood_ratio(context, ladder);
      if (config_.library != nullptr) {
        if (const Spectrum* entry = config_.library->find(peptide)) {
          // Hybrid evidence: the candidate explains the query if EITHER its
          // measured consensus pattern or the generic b/y model does —
          // library information can only strengthen a candidate.
          return std::max(model_score,
                          likelihood_ratio_library(context, *entry));
        }
      }
      return model_score;
    }
    case ScoreModel::kHyperscore:
      return hyperscore(context.binned(), ladder);
    case ScoreModel::kSharedPeak:
      return static_cast<double>(shared_peak_count(context.binned(), ladder));
    case ScoreModel::kXcorr: {
      const XcorrContext* x = context.xcorr();
      MSP_CHECK_MSG(x != nullptr,
                    "xcorr scoring requires a query context prepared under "
                    "ScoreModel::kXcorr (QueryContext::enable_xcorr)");
      return xcorr(*x, ladder);
    }
  }
  throw InvalidArgument("unknown score model");
}

namespace {

/// Score index entries [first, last) against all matching queries — the
/// candidate-centric inner loop one thread runs. State it writes (tops,
/// stats, per_query_candidates) is exclusively its own; everything else is
/// read-only, which is what makes the fan-out race-free.
void search_index_block(const SearchEngine& engine,
                        const ProteinDatabase& shard,
                        const CandidateIndex& index,
                        const PreparedQueries& queries, std::size_t first,
                        std::size_t last, std::span<TopK<Hit>> tops,
                        ShardSearchStats& stats,
                        std::vector<std::uint64_t>* per_query_candidates) {
  const SearchConfig& config = engine.config();
  const double delta = config.tolerance_da;
  const std::vector<IndexedCandidate>& entries = index.entries();
  const std::vector<double>& sorted = queries.sorted_masses;

  // Merge-join: entries and query hypotheses are both mass-ascending, so the
  // window [lo, hi) only ever slides forward. Bounds use the same predicates
  // as the reference kernel's binary searches (>= mass-δ, <= mass+δ).
  std::size_t lo = static_cast<std::size_t>(
      std::lower_bound(sorted.begin(), sorted.end(),
                       entries[first].mass - delta) -
      sorted.begin());
  std::size_t hi = lo;

  FragmentIonWorkspace workspace;
  const TheoreticalOptions ion_options;  // same defaults as the string path

  for (std::size_t e = first; e < last; ++e) {
    const IndexedCandidate& entry = entries[e];
    const double mass = entry.mass;
    while (lo < sorted.size() && sorted[lo] < mass - delta) ++lo;
    if (hi < lo) hi = lo;
    while (hi < sorted.size() && sorted[hi] <= mass + delta) ++hi;
    if (lo == hi) continue;

    const Protein& protein = shard.proteins[entry.protein];
    const std::string_view peptide =
        std::string_view(protein.residues).substr(entry.offset, entry.length);

    // Built lazily on the first matching query — ions plus their SoA bin
    // ladder — then shared by every query (and prefilter screen) this
    // candidate reaches. All scoring below runs on the ladder.
    bool built = false;

    for (std::size_t pos = lo; pos < hi; ++pos) {
      const std::uint32_t q = queries.order[pos];
      if (per_query_candidates) ++(*per_query_candidates)[q];
      if (!built) {
        build_ion_ladder(fragment_ions_into(peptide, ion_options, workspace),
                         config.bin_width, workspace.ladder);
        built = true;
        ++stats.ions_built;
      }
      double score;
      if (config.prefilter) {
        const std::size_t shared =
            shared_peak_count(queries.contexts[q].binned(), workspace.ladder);
        if (shared < config.prefilter_min_shared_peaks) {
          ++stats.candidates_prefiltered;
          continue;  // the aggressive screen: never fully scored
        }
        // Under the shared-peak model the screen already IS the score —
        // reuse it instead of scoring the candidate a second time.
        score = config.model == ScoreModel::kSharedPeak
                    ? static_cast<double>(shared)
                    : engine.score_candidate(queries.contexts[q], peptide,
                                             workspace.ladder);
      } else {
        score =
            engine.score_candidate(queries.contexts[q], peptide,
                                   workspace.ladder);
      }
      ++stats.candidates_evaluated;
      if (score < config.score_cutoff) continue;
      // Counted before the top-τ admission test so the counter (and the
      // virtual clock built on it) is independent of visit order.
      ++stats.hits_offered;
      TopK<Hit>& top = tops[q];
      // A full list never admits a strictly worse score: skip before paying
      // for the Hit's string materialization.
      if (top.full() && score < top.cutoff()) continue;
      Hit hit;
      hit.score = score;
      hit.protein_id = protein.id;
      hit.offset = entry.offset;
      hit.length = entry.length;
      hit.end = entry.end;
      hit.mass = mass;
      hit.peptide = std::string(peptide);
      top.offer(hit);
    }
  }
}

/// Score hypothesis entries [first, last) through a CandidateSource — the
/// query-centric open-search inner loop one thread runs. Each hypothesis
/// windows [m − window_below, m + window_above] of the index (one contiguous
/// ordinal range, since entries are mass-ascending), the source gates the
/// window down to candidates with enough matched ions, and only survivors
/// are fully scored. Writes (tops, stats, per_query_candidates) are private
/// to the thread, as in search_index_block.
void search_open_block(
    const SearchEngine& engine, const ProteinDatabase& shard,
    const CandidateIndex& index, const FragmentIndex* fragment,
    const PreparedQueries& queries,
    const std::vector<std::vector<std::uint32_t>>* occupied,
    std::size_t first, std::size_t last, std::span<TopK<Hit>> tops,
    ShardSearchStats& stats,
    std::vector<std::uint64_t>* per_query_candidates) {
  const SearchConfig& config = engine.config();
  const double below = config.window_below();
  const double above = config.window_above();
  const std::vector<IndexedCandidate>& entries = index.entries();
  const std::vector<double>& sorted = queries.sorted_masses;

  // Per-thread source scratch: vote accumulators must not be shared.
  MassWindowCandidateSource window_source(shard, index, config.vote_gate());
  std::optional<FragmentIndexCandidateSource> index_source;
  if (fragment != nullptr) index_source.emplace(*fragment, config.vote_gate());
  CandidateSource& source =
      fragment != nullptr ? static_cast<CandidateSource&>(*index_source)
                          : static_cast<CandidateSource&>(window_source);
  const bool prebuilt = source.ions_prebuilt();

  FragmentIonWorkspace workspace;
  const TheoreticalOptions ion_options;  // same defaults as every kernel
  std::vector<std::uint32_t> survivors;
  const auto entry_below = [](const IndexedCandidate& entry, double mass) {
    return entry.mass < mass;
  };
  const auto entry_above = [](double mass, const IndexedCandidate& entry) {
    return mass < entry.mass;
  };

  for (std::size_t k = first; k < last; ++k) {
    const double mass = sorted[k];
    const std::uint32_t q = queries.order[k];
    const std::size_t lo = static_cast<std::size_t>(
        std::lower_bound(entries.begin(), entries.end(), mass - below,
                         entry_below) -
        entries.begin());
    const std::size_t hi = static_cast<std::size_t>(
        std::upper_bound(entries.begin() + static_cast<std::ptrdiff_t>(lo),
                         entries.end(), mass + above, entry_above) -
        entries.begin());
    // The Fig. 1b measurement stays "candidates in the precursor window" —
    // identical for both sources (it is a property of the window alone).
    if (per_query_candidates) (*per_query_candidates)[q] += hi - lo;
    if (lo == hi) continue;

    source.collect(queries.contexts[q],
                   occupied != nullptr
                       ? std::span<const std::uint32_t>((*occupied)[q])
                       : std::span<const std::uint32_t>(),
                   lo, hi, survivors, stats);

    for (const std::uint32_t c : survivors) {
      const IndexedCandidate& entry = entries[c];
      const Protein& protein = shard.proteins[entry.protein];
      const std::string_view peptide =
          std::string_view(protein.residues).substr(entry.offset,
                                                    entry.length);
      build_ion_ladder(fragment_ions_into(peptide, ion_options, workspace),
                       config.bin_width, workspace.ladder);
      // The exhaustive source already built (and charged) every inspected
      // candidate's ions; the indexed source only ever builds survivors'.
      if (!prebuilt) ++stats.ions_built;
      const double score =
          engine.score_candidate(queries.contexts[q], peptide,
                                 workspace.ladder);
      ++stats.candidates_evaluated;
      if (score < config.score_cutoff) continue;
      ++stats.hits_offered;
      TopK<Hit>& top = tops[q];
      if (top.full() && score < top.cutoff()) continue;
      Hit hit;
      hit.score = score;
      hit.protein_id = protein.id;
      hit.offset = entry.offset;
      hit.length = entry.length;
      hit.end = entry.end;
      hit.mass = entry.mass;
      hit.peptide = std::string(peptide);
      top.offer(hit);
    }
  }
}

}  // namespace

ShardSearchStats SearchEngine::search_shard(
    const ProteinDatabase& shard, const PreparedQueries& queries,
    std::span<TopK<Hit>> tops, std::vector<std::uint64_t>* per_query_candidates,
    const CandidateIndex* index, const FragmentIndex* fragment) const {
  MSP_CHECK_MSG(tops.size() == queries.size(),
                "tops arity must match query arity");
  ShardSearchStats stats;
  if (queries.size() == 0 || shard.proteins.empty()) return stats;

  CandidateIndex local;
  if (index == nullptr) {
    local = CandidateIndex::build(shard, config_);
    index = &local;
  } else {
    MSP_CHECK_MSG(index->params() == CandidateIndexParams::from(config_),
                  "candidate index was built under different enumeration "
                  "parameters than this engine's config");
  }

  if (config_.open_search())
    return search_shard_open(shard, queries, tops, per_query_candidates,
                             *index, fragment);

  const std::vector<IndexedCandidate>& entries = index->entries();
  const double delta = config_.tolerance_da;
  const double query_mass_floor = queries.min_mass() - delta;
  const double query_mass_ceil = queries.max_mass() + delta;
  const auto by_mass = [](const IndexedCandidate& entry, double mass) {
    return entry.mass < mass;
  };
  const std::size_t first = static_cast<std::size_t>(
      std::lower_bound(entries.begin(), entries.end(), query_mass_floor,
                       by_mass) -
      entries.begin());
  std::size_t last = first;
  while (last < entries.size() && entries[last].mass <= query_mass_ceil) ++last;
  if (first >= last) return stats;

  const std::size_t threads =
      std::clamp<std::size_t>(config_.kernel_threads, 1, last - first);
  if (threads <= 1) {
    search_index_block(*this, shard, *index, queries, first, last, tops, stats,
                       per_query_candidates);
    return stats;
  }

  // Fan the entry range over contiguous blocks, one thread each, with fully
  // private outputs; merge in fixed thread order. The final lists depend
  // only on the multiset of offers (TopK's total order), and every counter
  // is a sum over (candidate, query) pairs resp. matched candidates — both
  // partition-invariant — so any thread count produces identical results.
  struct ThreadState {
    std::vector<TopK<Hit>> tops;
    ShardSearchStats stats;
    std::vector<std::uint64_t> per_query;
    std::exception_ptr error;
  };
  std::vector<ThreadState> states(threads);
  std::vector<std::thread> pool;
  pool.reserve(threads);
  const std::size_t span = last - first;
  for (std::size_t t = 0; t < threads; ++t) {
    ThreadState& state = states[t];
    state.tops = make_tops(queries.size());
    if (per_query_candidates) state.per_query.assign(queries.size(), 0);
    const std::size_t block_first = first + span * t / threads;
    const std::size_t block_last = first + span * (t + 1) / threads;
    pool.emplace_back([&, block_first, block_last, t] {
      ThreadState& mine = states[t];
      try {
        search_index_block(*this, shard, *index, queries, block_first,
                           block_last, mine.tops, mine.stats,
                           per_query_candidates ? &mine.per_query : nullptr);
      } catch (...) {
        mine.error = std::current_exception();
      }
    });
  }
  for (std::thread& worker : pool) worker.join();
  for (ThreadState& state : states)
    if (state.error) std::rethrow_exception(state.error);

  for (std::size_t t = 0; t < threads; ++t) {
    const ThreadState& state = states[t];
    for (std::size_t q = 0; q < tops.size(); ++q) tops[q].merge(state.tops[q]);
    stats += state.stats;
    if (per_query_candidates)
      for (std::size_t q = 0; q < state.per_query.size(); ++q)
        (*per_query_candidates)[q] += state.per_query[q];
  }
  return stats;
}

ShardSearchStats SearchEngine::search_shard_open(
    const ProteinDatabase& shard, const PreparedQueries& queries,
    std::span<TopK<Hit>> tops, std::vector<std::uint64_t>* per_query_candidates,
    const CandidateIndex& index, const FragmentIndex* fragment) const {
  ShardSearchStats stats;

  // Source selection: kAuto uses the shipped fragment index when present
  // (legacy images carry none — exhaustive fallback); kFragmentIndex builds
  // one in place when absent; kMassWindow forces exhaustive enumeration.
  FragmentIndex local_fragment;
  if (config_.candidate_source == CandidateSourceKind::kMassWindow) {
    fragment = nullptr;
  } else if (fragment == nullptr &&
             config_.candidate_source == CandidateSourceKind::kFragmentIndex) {
    local_fragment = FragmentIndex::build(shard, index, config_.bin_width);
    fragment = &local_fragment;
  }
  if (fragment != nullptr) {
    MSP_CHECK_MSG(
        fragment->params() ==
            (FragmentIndexParams{index.params(), config_.bin_width}),
        "fragment index was built under different parameters than this "
        "engine's config");
    MSP_CHECK_MSG(fragment->candidate_count() == index.size(),
                  "fragment index does not cover this candidate index");
  }

  const std::size_t hypotheses = queries.sorted_masses.size();
  if (hypotheses == 0 || index.empty()) return stats;

  // The query-side half of the inverted lookup, shared read-only across the
  // fan-out. Skipped entirely on the exhaustive path.
  std::vector<std::vector<std::uint32_t>> occupied;
  if (fragment != nullptr) {
    occupied.reserve(queries.contexts.size());
    for (const QueryContext& context : queries.contexts)
      occupied.push_back(occupied_bins(context.binned()));
  }
  const std::vector<std::vector<std::uint32_t>>* occupied_ptr =
      fragment != nullptr ? &occupied : nullptr;

  const std::size_t threads =
      std::clamp<std::size_t>(config_.kernel_threads, 1, hypotheses);
  if (threads <= 1) {
    search_open_block(*this, shard, index, fragment, queries, occupied_ptr, 0,
                      hypotheses, tops, stats, per_query_candidates);
    return stats;
  }

  // Fan the hypothesis range over contiguous blocks — the open analog of
  // the narrow kernel's entry-range fan-out, with the same merge argument:
  // every hypothesis is processed independently, counters are sums over
  // per-hypothesis work, and TopK depends only on the offer multiset.
  struct ThreadState {
    std::vector<TopK<Hit>> tops;
    ShardSearchStats stats;
    std::vector<std::uint64_t> per_query;
    std::exception_ptr error;
  };
  std::vector<ThreadState> states(threads);
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    ThreadState& state = states[t];
    state.tops = make_tops(queries.size());
    if (per_query_candidates) state.per_query.assign(queries.size(), 0);
    const std::size_t block_first = hypotheses * t / threads;
    const std::size_t block_last = hypotheses * (t + 1) / threads;
    pool.emplace_back([&, block_first, block_last, t] {
      ThreadState& mine = states[t];
      try {
        search_open_block(*this, shard, index, fragment, queries, occupied_ptr,
                          block_first, block_last, mine.tops, mine.stats,
                          per_query_candidates ? &mine.per_query : nullptr);
      } catch (...) {
        mine.error = std::current_exception();
      }
    });
  }
  for (std::thread& worker : pool) worker.join();
  for (ThreadState& state : states)
    if (state.error) std::rethrow_exception(state.error);

  for (std::size_t t = 0; t < threads; ++t) {
    const ThreadState& state = states[t];
    for (std::size_t q = 0; q < tops.size(); ++q) tops[q].merge(state.tops[q]);
    stats += state.stats;
    if (per_query_candidates)
      for (std::size_t q = 0; q < state.per_query.size(); ++q)
        (*per_query_candidates)[q] += state.per_query[q];
  }
  return stats;
}

ShardSearchStats SearchEngine::search_records(
    std::span<const CandidateRecord> records, const PreparedQueries& queries,
    std::span<TopK<Hit>> tops) const {
  MSP_CHECK_MSG(tops.size() == queries.size(),
                "tops arity must match query arity");
  ShardSearchStats stats;
  if (queries.size() == 0 || records.empty()) return stats;

  // A hypothesis m accepts candidate masses [m − below, m + above], so from
  // the candidate side a record of mass M matches hypotheses in
  // [M − above, M + below] — below/above swap direction. Narrow mode has
  // below == above == tolerance_da, leaving this loop exactly as it was.
  const double below = config_.window_below();
  const double above = config_.window_above();
  const std::vector<double>& sorted = queries.sorted_masses;

  // Trim the record span to the query envelope, then merge-join — the same
  // forward-sliding window and boundary predicates as search_index_block.
  const double query_mass_floor = queries.min_mass() - below;
  const double query_mass_ceil = queries.max_mass() + above;
  std::size_t first = static_cast<std::size_t>(
      std::lower_bound(records.begin(), records.end(), query_mass_floor,
                       [](const CandidateRecord& record, double mass) {
                         return record.mass < mass;
                       }) -
      records.begin());
  std::size_t last = first;
  while (last < records.size() && records[last].mass <= query_mass_ceil)
    ++last;
  if (first >= last) return stats;

  std::size_t lo = static_cast<std::size_t>(
      std::lower_bound(sorted.begin(), sorted.end(),
                       records[first].mass - above) -
      sorted.begin());
  std::size_t hi = lo;

  FragmentIonWorkspace workspace;
  const TheoreticalOptions ion_options;  // same defaults as the index path

  for (std::size_t e = first; e < last; ++e) {
    const CandidateRecord& record = records[e];
    const double mass = record.mass;
    while (lo < sorted.size() && sorted[lo] < mass - above) ++lo;
    if (hi < lo) hi = lo;
    while (hi < sorted.size() && sorted[hi] <= mass + below) ++hi;
    if (lo == hi) continue;

    const std::string_view peptide(record.peptide, record.length);
    bool built = false;

    for (std::size_t pos = lo; pos < hi; ++pos) {
      const std::uint32_t q = queries.order[pos];
      if (!built) {
        build_ion_ladder(fragment_ions_into(peptide, ion_options, workspace),
                         config_.bin_width, workspace.ladder);
        built = true;
        ++stats.ions_built;
      }
      double score;
      if (config_.open_search()) {
        // The same gate the CandidateSource paths apply — the record-band
        // form of open search stays hit-identical to search_shard().
        const std::size_t votes =
            shared_peak_count(queries.contexts[q].binned(), workspace.ladder);
        if (votes < config_.vote_gate()) {
          ++stats.candidates_prefiltered;
          continue;
        }
        score = score_candidate(queries.contexts[q], peptide, workspace.ladder);
      } else if (config_.prefilter) {
        const std::size_t shared =
            shared_peak_count(queries.contexts[q].binned(), workspace.ladder);
        if (shared < config_.prefilter_min_shared_peaks) {
          ++stats.candidates_prefiltered;
          continue;  // the aggressive screen: never fully scored
        }
        score = config_.model == ScoreModel::kSharedPeak
                    ? static_cast<double>(shared)
                    : score_candidate(queries.contexts[q], peptide,
                                      workspace.ladder);
      } else {
        score = score_candidate(queries.contexts[q], peptide, workspace.ladder);
      }
      ++stats.candidates_evaluated;
      if (score < config_.score_cutoff) continue;
      ++stats.hits_offered;
      TopK<Hit>& top = tops[q];
      if (top.full() && score < top.cutoff()) continue;
      Hit hit;
      hit.score = score;
      hit.protein_id = record.protein_id;  // NUL-padded → C string
      hit.offset = record.offset;
      hit.length = record.length;
      hit.end = static_cast<FragmentEnd>(record.end);
      hit.mass = mass;
      hit.peptide = std::string(peptide);
      top.offer(hit);
    }
  }
  return stats;
}

ShardSearchStats SearchEngine::search_shard_reference(
    const ProteinDatabase& shard, const PreparedQueries& queries,
    std::span<TopK<Hit>> tops,
    std::vector<std::uint64_t>* per_query_candidates) const {
  MSP_CHECK_MSG(tops.size() == queries.size(),
                "tops arity must match query arity");
  ShardSearchStats stats;
  if (queries.size() == 0 || shard.proteins.empty()) return stats;

  // Candidate-major direction: a candidate of mass M matches hypotheses in
  // [M − window_above, M + window_below] (the below/above swap — see
  // search_records). Narrow mode keeps below == above == tolerance_da.
  const double below = config_.window_below();
  const double above = config_.window_above();
  const double query_mass_floor = queries.min_mass() - below;
  const double query_mass_ceil = queries.max_mass() + above;

  // For one fragment mass, visit all queries whose window contains it.
  auto visit_matches = [&](double mass, std::uint32_t protein_index,
                           std::uint32_t offset, std::uint32_t length,
                           FragmentEnd end) {
    const auto lo = std::lower_bound(queries.sorted_masses.begin(),
                                     queries.sorted_masses.end(), mass - above);
    const auto hi = std::upper_bound(lo, queries.sorted_masses.end(),
                                     mass + below);
    if (lo == hi) return;

    const Protein& protein = shard.proteins[protein_index];
    const std::string_view peptide =
        std::string_view(protein.residues).substr(offset, length);

    for (auto it = lo; it != hi; ++it) {
      const auto sorted_pos =
          static_cast<std::size_t>(it - queries.sorted_masses.begin());
      const std::uint32_t q = queries.order[sorted_pos];
      if (per_query_candidates) ++(*per_query_candidates)[q];
      // Each string-overload scoring call regenerates the candidate's ions
      // from scratch — count those rebuilds so benches can show what the
      // candidate-centric kernel saves.
      if (config_.open_search()) {
        // The identical vote gate both CandidateSource implementations
        // apply — this walk is the oracle for open search too.
        ++stats.ions_built;
        if (shared_peak_count(queries.contexts[q].binned(), peptide) <
            config_.vote_gate()) {
          ++stats.candidates_prefiltered;
          continue;
        }
      } else if (config_.prefilter) {
        ++stats.ions_built;
        if (shared_peak_count(queries.contexts[q].binned(), peptide) <
            config_.prefilter_min_shared_peaks) {
          ++stats.candidates_prefiltered;
          continue;  // the aggressive screen: never fully scored
        }
      }
      ++stats.ions_built;
      const double score = score_candidate(queries.contexts[q], peptide);
      ++stats.candidates_evaluated;
      if (score < config_.score_cutoff) continue;
      Hit hit;
      hit.score = score;
      hit.protein_id = protein.id;
      hit.offset = offset;
      hit.length = length;
      hit.end = end;
      hit.mass = mass;
      hit.peptide = std::string(peptide);
      tops[q].offer(hit);
      ++stats.hits_offered;
    }
  };

  for (std::uint32_t pi = 0; pi < shard.proteins.size(); ++pi) {
    const Protein& protein = shard.proteins[pi];
    const std::size_t len = protein.residues.size();
    if (len < config_.min_candidate_length) continue;
    const FragmentMassIndex index(protein.residues);
    const std::size_t max_k = std::min(len, config_.max_candidate_length);

    if (config_.candidate_mode == CandidateMode::kPrefixSuffix) {
      // Prefix masses grow monotonically in k: stop past the heaviest window.
      for (std::size_t k = config_.min_candidate_length; k <= max_k; ++k) {
        const double mass = index.prefix_mass(k);
        if (mass > query_mass_ceil) break;
        if (mass < query_mass_floor) continue;
        visit_matches(mass, pi, 0, static_cast<std::uint32_t>(k),
                      FragmentEnd::kPrefix);
      }
      for (std::size_t k = config_.min_candidate_length; k <= max_k; ++k) {
        if (k == len) break;  // the full sequence already counted as a prefix
        const double mass = index.suffix_mass(k);
        if (mass > query_mass_ceil) break;
        if (mass < query_mass_floor) continue;
        visit_matches(mass, pi, static_cast<std::uint32_t>(len - k),
                      static_cast<std::uint32_t>(k), FragmentEnd::kSuffix);
      }
    } else {
      // Tryptic extension: enumerate enzymatic peptides; classify termini
      // so prefix/suffix hits stay comparable with the paper mode.
      DigestOptions digest;
      digest.min_length = config_.min_candidate_length;
      digest.max_length = max_k;
      digest.missed_cleavages = config_.candidate_missed_cleavages;
      for (const DigestedPeptide& peptide :
           digest_tryptic(protein.residues, digest)) {
        const double mass = index.prefix_mass(peptide.offset + peptide.length) -
                            index.prefix_mass(peptide.offset) + kWaterMass;
        if (mass < query_mass_floor || mass > query_mass_ceil) continue;
        FragmentEnd end = FragmentEnd::kInternal;
        if (peptide.offset == 0)
          end = FragmentEnd::kPrefix;
        else if (peptide.offset + peptide.length == len)
          end = FragmentEnd::kSuffix;
        visit_matches(mass, pi, static_cast<std::uint32_t>(peptide.offset),
                      static_cast<std::uint32_t>(peptide.length), end);
      }
    }
  }
  return stats;
}

std::vector<TopK<Hit>> SearchEngine::make_tops(std::size_t query_count) const {
  return std::vector<TopK<Hit>>(query_count, TopK<Hit>(config_.tau));
}

QueryHits SearchEngine::finalize(std::vector<TopK<Hit>>& tops) const {
  QueryHits hits;
  hits.reserve(tops.size());
  for (TopK<Hit>& top : tops) hits.push_back(top.sorted());
  return hits;
}

QueryHits SearchEngine::search(const ProteinDatabase& db,
                               std::span<const Spectrum> queries) const {
  const PreparedQueries prepared = prepare(queries);
  std::vector<TopK<Hit>> tops = make_tops(queries.size());
  search_shard(db, prepared, tops);
  return finalize(tops);
}

}  // namespace msp
