#include "core/search_engine.hpp"

#include <algorithm>
#include <numeric>

#include "mass/digest.hpp"
#include "scoring/hyperscore.hpp"
#include "scoring/shared_peak.hpp"
#include "util/error.hpp"

namespace msp {

double PreparedQueries::min_mass() const {
  return sorted_masses.empty() ? 0.0 : sorted_masses.front();
}

double PreparedQueries::max_mass() const {
  return sorted_masses.empty() ? 0.0 : sorted_masses.back();
}

SearchEngine::SearchEngine(SearchConfig config) : config_(config) {
  MSP_CHECK_MSG(config_.tolerance_da > 0.0, "tolerance must be positive");
  MSP_CHECK_MSG(config_.tau >= 1, "tau must be >= 1");
  MSP_CHECK_MSG(config_.min_candidate_length >= 2,
                "candidates must have >= 2 residues (fragmentable)");
  MSP_CHECK_MSG(config_.max_candidate_length >= config_.min_candidate_length,
                "candidate length bounds inverted");
}

PreparedQueries SearchEngine::prepare(std::span<const Spectrum> queries) const {
  PreparedQueries prepared;
  prepared.spectra.reserve(queries.size());
  prepared.contexts.reserve(queries.size());
  prepared.masses.reserve(queries.size());
  // Each query contributes one (mass, query) search entry per parent-mass
  // hypothesis: just the reported charge by default, or one per charge in
  // charge_hypotheses when alternate-charge search is on.
  std::vector<std::pair<double, std::uint32_t>> entries;
  for (std::uint32_t i = 0; i < queries.size(); ++i) {
    const Spectrum& raw = queries[i];
    Spectrum cleaned = preprocess(raw, config_.preprocess);
    prepared.masses.push_back(cleaned.parent_mass());
    if (config_.try_alternate_charges) {
      for (int z : config_.charge_hypotheses) {
        MSP_CHECK_MSG(z >= 1, "charge hypotheses must be >= 1");
        entries.emplace_back(mass_from_mz(raw.precursor_mz(), z), i);
      }
    } else {
      entries.emplace_back(cleaned.parent_mass(), i);
    }
    prepared.contexts.emplace_back(cleaned, config_.bin_width);
    prepared.spectra.push_back(std::move(cleaned));
  }
  std::sort(entries.begin(), entries.end());
  prepared.order.reserve(entries.size());
  prepared.sorted_masses.reserve(entries.size());
  for (const auto& [mass, index] : entries) {
    prepared.sorted_masses.push_back(mass);
    prepared.order.push_back(index);
  }
  return prepared;
}

double SearchEngine::score_candidate(const QueryContext& context,
                                     std::string_view peptide) const {
  switch (config_.model) {
    case ScoreModel::kLikelihood: {
      const double model_score = likelihood_ratio(context, peptide);
      if (config_.library != nullptr) {
        if (const Spectrum* entry = config_.library->find(peptide)) {
          // Hybrid evidence: the candidate explains the query if EITHER its
          // measured consensus pattern or the generic b/y model does —
          // library information can only strengthen a candidate.
          return std::max(model_score,
                          likelihood_ratio_library(context, *entry));
        }
      }
      return model_score;
    }
    case ScoreModel::kHyperscore:
      return hyperscore(context.binned(), peptide);
    case ScoreModel::kSharedPeak:
      return static_cast<double>(shared_peak_count(context.binned(), peptide));
  }
  throw InvalidArgument("unknown score model");
}

ShardSearchStats SearchEngine::search_shard(
    const ProteinDatabase& shard, const PreparedQueries& queries,
    std::span<TopK<Hit>> tops,
    std::vector<std::uint64_t>* per_query_candidates) const {
  MSP_CHECK_MSG(tops.size() == queries.size(),
                "tops arity must match query arity");
  ShardSearchStats stats;
  if (queries.size() == 0 || shard.proteins.empty()) return stats;

  const double delta = config_.tolerance_da;
  const double query_mass_floor = queries.min_mass() - delta;
  const double query_mass_ceil = queries.max_mass() + delta;

  // For one fragment mass, visit all queries whose window contains it.
  auto visit_matches = [&](double mass, std::uint32_t protein_index,
                           std::uint32_t offset, std::uint32_t length,
                           FragmentEnd end) {
    const auto lo = std::lower_bound(queries.sorted_masses.begin(),
                                     queries.sorted_masses.end(), mass - delta);
    const auto hi = std::upper_bound(lo, queries.sorted_masses.end(),
                                     mass + delta);
    if (lo == hi) return;

    const Protein& protein = shard.proteins[protein_index];
    const std::string_view peptide =
        std::string_view(protein.residues).substr(offset, length);

    for (auto it = lo; it != hi; ++it) {
      const auto sorted_pos =
          static_cast<std::size_t>(it - queries.sorted_masses.begin());
      const std::uint32_t q = queries.order[sorted_pos];
      if (per_query_candidates) ++(*per_query_candidates)[q];
      if (config_.prefilter &&
          shared_peak_count(queries.contexts[q].binned(), peptide) <
              config_.prefilter_min_shared_peaks) {
        ++stats.candidates_prefiltered;
        continue;  // the aggressive screen: never fully scored
      }
      const double score = score_candidate(queries.contexts[q], peptide);
      ++stats.candidates_evaluated;
      if (score < config_.score_cutoff) continue;
      Hit hit;
      hit.score = score;
      hit.protein_id = protein.id;
      hit.offset = offset;
      hit.length = length;
      hit.end = end;
      hit.mass = mass;
      hit.peptide = std::string(peptide);
      tops[q].offer(hit);
      ++stats.hits_offered;
    }
  };

  for (std::uint32_t pi = 0; pi < shard.proteins.size(); ++pi) {
    const Protein& protein = shard.proteins[pi];
    const std::size_t len = protein.residues.size();
    if (len < config_.min_candidate_length) continue;
    const FragmentMassIndex index(protein.residues);
    const std::size_t max_k = std::min(len, config_.max_candidate_length);

    if (config_.candidate_mode == CandidateMode::kPrefixSuffix) {
      // Prefix masses grow monotonically in k: stop past the heaviest window.
      for (std::size_t k = config_.min_candidate_length; k <= max_k; ++k) {
        const double mass = index.prefix_mass(k);
        if (mass > query_mass_ceil) break;
        if (mass < query_mass_floor) continue;
        visit_matches(mass, pi, 0, static_cast<std::uint32_t>(k),
                      FragmentEnd::kPrefix);
      }
      for (std::size_t k = config_.min_candidate_length; k <= max_k; ++k) {
        if (k == len) break;  // the full sequence already counted as a prefix
        const double mass = index.suffix_mass(k);
        if (mass > query_mass_ceil) break;
        if (mass < query_mass_floor) continue;
        visit_matches(mass, pi, static_cast<std::uint32_t>(len - k),
                      static_cast<std::uint32_t>(k), FragmentEnd::kSuffix);
      }
    } else {
      // Tryptic extension: enumerate enzymatic peptides; classify termini
      // so prefix/suffix hits stay comparable with the paper mode.
      DigestOptions digest;
      digest.min_length = config_.min_candidate_length;
      digest.max_length = max_k;
      digest.missed_cleavages = config_.candidate_missed_cleavages;
      for (const DigestedPeptide& peptide :
           digest_tryptic(protein.residues, digest)) {
        const double mass = index.prefix_mass(peptide.offset + peptide.length) -
                            index.prefix_mass(peptide.offset) + kWaterMass;
        if (mass < query_mass_floor || mass > query_mass_ceil) continue;
        FragmentEnd end = FragmentEnd::kInternal;
        if (peptide.offset == 0)
          end = FragmentEnd::kPrefix;
        else if (peptide.offset + peptide.length == len)
          end = FragmentEnd::kSuffix;
        visit_matches(mass, pi, static_cast<std::uint32_t>(peptide.offset),
                      static_cast<std::uint32_t>(peptide.length), end);
      }
    }
  }
  return stats;
}

std::vector<TopK<Hit>> SearchEngine::make_tops(std::size_t query_count) const {
  return std::vector<TopK<Hit>>(query_count, TopK<Hit>(config_.tau));
}

QueryHits SearchEngine::finalize(std::vector<TopK<Hit>>& tops) const {
  QueryHits hits;
  hits.reserve(tops.size());
  for (TopK<Hit>& top : tops) hits.push_back(top.sorted());
  return hits;
}

QueryHits SearchEngine::search(const ProteinDatabase& db,
                               std::span<const Spectrum> queries) const {
  const PreparedQueries prepared = prepare(queries);
  std::vector<TopK<Hit>> tops = make_tops(queries.size());
  search_shard(db, prepared, tops);
  return finalize(tops);
}

}  // namespace msp
