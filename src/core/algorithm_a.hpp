// Algorithm A (Figure 2 of the paper): space-optimal parallel peptide
// identification via ring rotation of database shards.
//
// Per rank i of p:
//   A1. Load the i-th N/p byte chunk of the database file (boundary
//       repaired) and the i-th m/p block of queries — space O((N+m)/p).
//   A2. For s = 0..p-1: let j = (i+s) mod p. Before processing shard j,
//       issue a non-blocking one-sided get for shard (i+s+1) mod p into
//       D_recv (communication masked by computation); compare all local
//       queries against D_comp (= shard j), maintaining a running top-τ per
//       query; wait on the get; swap buffers.
//   A3. Report each local query's top-τ list.
//
// Three O(N/p) database buffers exist at any time: D_local (exposed via the
// RMA window), D_recv and D_comp — exactly the paper's memory layout.
#pragma once

#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/hit.hpp"
#include "simmpi/runtime.hpp"
#include "spectra/spectrum.hpp"

namespace msp {

struct AlgorithmAOptions {
  /// Mask communication with computation (the paper's design). When false,
  /// each shard is fetched blocking before it is processed — the paper's
  /// "second version of the algorithm that does not mask".
  bool mask = true;
  /// Synchronize the window at every ring step (MPI_Win_fence-style active
  /// target, the standard 2009 one-sided pattern over ethernet). Makes per-
  /// iteration load imbalance visible as wait time; ablatable.
  bool fence_per_iteration = true;
  /// Mass-aware shard routing (the serving ring's router, shared): exchange
  /// per-shard mass histograms up front, then skip ring steps whose shard
  /// provably holds no candidate for this rank's query block — a constant
  /// routing-decision charge instead of a fetch plus a scoring pass. Hits
  /// are bit-identical with routing on or off.
  bool mass_routing = true;
  /// Per-rank memory budget in bytes (the paper's 1 GB/process cap);
  /// 0 disables. Exceeding it throws OutOfMemoryBudget.
  std::size_t memory_budget_bytes = 0;
};

/// Result of a simulated parallel run.
struct ParallelRunResult {
  sim::RunReport report;
  QueryHits hits;                     ///< hits[q], best-first, global order
  std::uint64_t candidates = 0;       ///< total candidate evaluations
};

/// Run Algorithm A on `runtime.size()` simulated ranks. `fasta_image` is the
/// database file contents (the ranks chunk-load it per step A1).
ParallelRunResult run_algorithm_a(const sim::Runtime& runtime,
                                  const std::string& fasta_image,
                                  const std::vector<Spectrum>& queries,
                                  const SearchConfig& config,
                                  const AlgorithmAOptions& options = {});

}  // namespace msp
