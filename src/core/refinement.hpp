// Two-pass refinement search — X!Tandem's signature strategy (Craig &
// Beavis 2003, the paper's citation [7]: "a method for reducing the time
// required to match protein sequences with tandem mass spectra").
//
// Pass 1 surveys the whole database with a cheap engine (hyperscore, often
// prefiltered) and keeps a shortlist of proteins with any plausible hit;
// pass 2 re-searches ONLY the shortlist with the expensive configuration
// (likelihood model, wider candidate enumeration). The result: most of the
// database sees only the cheap model — the economics the paper's related
// work describes, packaged as a reusable strategy rather than a hard-wired
// accuracy loss.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/config.hpp"
#include "core/hit.hpp"
#include "core/search_engine.hpp"
#include "mass/peptide.hpp"

namespace msp {

struct RefinementOptions {
  /// Cheap survey pass. Defaults: hyperscore + aggressive prefilter.
  SearchConfig first_pass;
  /// Accurate pass over the shortlist. Defaults: likelihood model.
  SearchConfig second_pass;
  /// Keep at most this many proteins (by first-pass evidence) for pass 2.
  std::size_t max_refined_proteins = 100;

  RefinementOptions() {
    first_pass.model = ScoreModel::kHyperscore;
    first_pass.prefilter = true;
    first_pass.tau = 3;
    second_pass.model = ScoreModel::kLikelihood;
  }
};

struct RefinementResult {
  QueryHits hits;  ///< pass-2 hits over the shortlist (authoritative output)
  std::size_t shortlisted_proteins = 0;
  ShardSearchStats first_pass_stats;
  ShardSearchStats second_pass_stats;
};

/// Serial two-pass search. The shortlist is chosen by summed first-pass
/// best-hit scores per protein, deterministically.
RefinementResult run_refinement(const ProteinDatabase& db,
                                std::span<const Spectrum> queries,
                                const RefinementOptions& options = {});

}  // namespace msp
