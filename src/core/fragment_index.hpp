// Per-shard fragment-ion index: the open-search candidate source.
//
// Open/PTM search widens the precursor window from ±δ to ±hundreds of
// daltons, inflating candidates per query by 100–1000x; exhaustively
// building every windowed candidate's ion ladder is then the dominant cost
// (HiCOPS's observation). The fragment-ion index inverts that work: at pack
// time — next to the CandidateIndex — every candidate's theoretical b/y
// ions are binned on the same global grid BinnedSpectrum uses
// (bin = floor(mz / bin_width)), and the index stores, per ion bin, the
// ordinals of the candidates owning an ion in that bin (CSR layout). An
// open-search lookup then walks only the query's *occupied* bins,
// accumulating per-candidate matched-ion counts ("votes") that equal
// shared_peak_count() exactly — candidate ordinals are CandidateIndex entry
// order, which is mass-ascending, so the precursor window restricts each
// posting list to one contiguous ordinal range. Only candidates at or above
// the vote gate are ever fully scored, and because the exhaustive source
// computes the identical integer votes the two sources admit the identical
// candidate set: bit-identical hits by construction (DESIGN.md §5i).
//
// The index ships in the pack image as a versioned magic-tagged record
// ("MSPARFRG") behind the CandidateIndex; legacy images simply lack the
// record and open search falls back to exhaustive enumeration.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/candidate_index.hpp"
#include "mass/peptide.hpp"

namespace msp {

namespace wire {
class Writer;
class Reader;
}  // namespace wire

/// The parameters a fragment index was built under. Valid only for engines
/// whose SearchConfig agrees on the enumeration parameters AND the bin
/// width (votes are bin-occupancy counts — a different grid is a different
/// gate); the engine checks both before searching.
struct FragmentIndexParams {
  CandidateIndexParams index_params;
  double bin_width = 0.0;

  friend bool operator==(const FragmentIndexParams& a,
                         const FragmentIndexParams& b) = default;
};

/// CSR postings over global ion bins for one shard's CandidateIndex.
class FragmentIndex {
 public:
  FragmentIndex() = default;
  /// From parsed wire fields; validates the CSR invariants (monotone
  /// starts, ordinals in range) via the same checks get_fragment_index
  /// applies. `starts` must have bin_count + 1 entries.
  FragmentIndex(FragmentIndexParams params, std::uint64_t candidate_count,
                std::vector<std::uint64_t> starts,
                std::vector<std::uint32_t> postings);

  /// Build from a shard and its CandidateIndex: every entry's theoretical
  /// ions (default TheoreticalOptions — the exact ladder the kernels score)
  /// binned at floor(mz / bin_width). Deterministic: entries are visited in
  /// index order, so each bin's postings come out strictly ordinal-ascending
  /// (which is mass-ascending) with one posting per *distinct* (candidate,
  /// bin) — two ions of one candidate landing in one bin are a single vote,
  /// exactly as the deduplicated shared_peak_count counts them.
  static FragmentIndex build(const ProteinDatabase& shard,
                             const CandidateIndex& index, double bin_width);

  const FragmentIndexParams& params() const { return params_; }
  /// Size of the CandidateIndex this was built over (ordinal bound).
  std::uint64_t candidate_count() const { return candidate_count_; }
  std::uint32_t bin_count() const {
    return starts_.empty() ? 0
                           : static_cast<std::uint32_t>(starts_.size() - 1);
  }
  std::size_t posting_count() const { return postings_.size(); }
  bool empty() const { return postings_.empty(); }

  /// Candidate ordinals (into the CandidateIndex entries) owning an ion in
  /// `bin`, strictly ordinal-ascending (deduplicated per candidate). Empty
  /// for out-of-grid bins.
  std::span<const std::uint32_t> postings(std::uint32_t bin) const {
    if (bin >= bin_count()) return {};
    return std::span<const std::uint32_t>(postings_)
        .subspan(starts_[bin], starts_[bin + 1] - starts_[bin]);
  }

  /// Bytes this index occupies in memory (simulated memory accounting).
  std::size_t byte_size() const {
    return starts_.size() * sizeof(std::uint64_t) +
           postings_.size() * sizeof(std::uint32_t);
  }

  friend bool operator==(const FragmentIndex& a,
                         const FragmentIndex& b) = default;

 private:
  FragmentIndexParams params_;
  std::uint64_t candidate_count_ = 0;
  std::vector<std::uint64_t> starts_;    ///< CSR row starts, bin_count + 1
  std::vector<std::uint32_t> postings_;  ///< candidate ordinals
};

/// Append `index` as a versioned, magic-tagged "MSPARFRG" record.
void put_fragment_index(wire::Writer& writer, const FragmentIndex& index);

/// True when the reader is positioned at a fragment-index record's magic.
bool peek_fragment_index(wire::Reader& reader);

/// Parse a fragment-index record, validating magic, version, and the CSR
/// invariants (positive finite bin width, per-bin counts summing to the
/// posting count, ordinals inside the candidate range, strictly
/// ordinal-ascending posting lists). Throws IoError with a specific message
/// on any violation.
FragmentIndex get_fragment_index(wire::Reader& reader);

}  // namespace msp
