#include "core/fragment_index.hpp"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

#include "core/wire.hpp"
#include "io/wire_record.hpp"
#include "spectra/theoretical.hpp"
#include "util/error.hpp"

namespace msp {

namespace {

// Leads the fragment-ion-index record in a shard pack.
// "MSPARFRG" in ASCII — distinct from the indexed-shard and histogram magics.
constexpr std::uint64_t kFragmentIndexMagic = 0x4D53504152465247ull;
// Version 2: postings are deduplicated per (candidate, bin) — strictly
// ordinal-ascending within a bin — matching the deduplicated shared-peak
// count (one query peak is one piece of evidence). Version-1 records carry
// duplicate postings and are rejected by the shared version check.
constexpr std::uint32_t kFragmentIndexVersion = 2;

void validate_csr(const FragmentIndexParams& params,
                  std::uint64_t candidate_count,
                  const std::vector<std::uint64_t>& starts,
                  const std::vector<std::uint32_t>& postings) {
  MSP_CHECK_MSG(params.bin_width > 0.0 && std::isfinite(params.bin_width),
                "fragment index bin width must be positive and finite");
  MSP_CHECK_MSG(starts.empty() || starts.front() == 0,
                "fragment index CSR must start at zero");
  MSP_CHECK_MSG(starts.empty() ? postings.empty()
                               : starts.back() == postings.size(),
                "fragment index CSR extent must match posting count");
  for (std::size_t b = 1; b < starts.size(); ++b)
    MSP_CHECK_MSG(starts[b - 1] <= starts[b],
                  "fragment index CSR starts must be non-decreasing");
  for (std::size_t b = 1; b < starts.size(); ++b)
    for (std::size_t i = starts[b - 1]; i < starts[b]; ++i) {
      MSP_CHECK_MSG(postings[i] < candidate_count,
                    "fragment index posting outside the candidate range");
      // Strictly ascending: a duplicate posting would make a candidate vote
      // twice for one bin — the duplicate-bin double count the deduplicated
      // shared-peak semantics forbid.
      MSP_CHECK_MSG(i == starts[b - 1] || postings[i - 1] < postings[i],
                    "fragment index postings must be strictly "
                    "ordinal-ascending within a bin");
    }
}

}  // namespace

FragmentIndex::FragmentIndex(FragmentIndexParams params,
                             std::uint64_t candidate_count,
                             std::vector<std::uint64_t> starts,
                             std::vector<std::uint32_t> postings)
    : params_(params),
      candidate_count_(candidate_count),
      starts_(std::move(starts)),
      postings_(std::move(postings)) {
  validate_csr(params_, candidate_count_, starts_, postings_);
}

FragmentIndex FragmentIndex::build(const ProteinDatabase& shard,
                                   const CandidateIndex& index,
                                   double bin_width) {
  MSP_CHECK_MSG(bin_width > 0.0 && std::isfinite(bin_width),
                "fragment index bin width must be positive and finite");
  FragmentIndex out;
  out.params_ = FragmentIndexParams{index.params(), bin_width};
  out.candidate_count_ = index.size();
  if (index.empty()) return out;

  // One (bin, ordinal) pair per *distinct* (candidate, bin) — the same
  // first-hit-wins dedup the IonLadder applies — candidate-major so each
  // bin's postings come out strictly ordinal-ascending under the stable
  // counting sort below. Binning through build_ion_ladder (the exact ladder
  // the kernels score) keeps index votes and the deduplicated
  // shared_peak_count in lockstep, integer-for-integer.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs;
  FragmentIonWorkspace workspace;
  const TheoreticalOptions ion_options;
  std::uint32_t max_bin = 0;
  const std::vector<IndexedCandidate>& entries = index.entries();
  for (std::size_t e = 0; e < entries.size(); ++e) {
    const IndexedCandidate& entry = entries[e];
    const Protein& protein = shard.proteins[entry.protein];
    const std::string_view peptide =
        std::string_view(protein.residues).substr(entry.offset, entry.length);
    build_ion_ladder(fragment_ions_into(peptide, ion_options, workspace),
                     bin_width, workspace.ladder);
    for (std::size_t i = 0; i < workspace.ladder.size; ++i) {
      const auto bin = static_cast<std::uint32_t>(workspace.ladder.bins[i]);
      max_bin = std::max(max_bin, bin);
      pairs.emplace_back(bin, static_cast<std::uint32_t>(e));
    }
  }

  out.starts_.assign(static_cast<std::size_t>(max_bin) + 2, 0);
  for (const auto& [bin, ordinal] : pairs) ++out.starts_[bin + 1];
  for (std::size_t b = 1; b < out.starts_.size(); ++b)
    out.starts_[b] += out.starts_[b - 1];
  out.postings_.resize(pairs.size());
  std::vector<std::uint64_t> cursor(out.starts_.begin(),
                                    out.starts_.end() - 1);
  for (const auto& [bin, ordinal] : pairs)
    out.postings_[cursor[bin]++] = ordinal;
  return out;
}

void put_fragment_index(wire::Writer& writer, const FragmentIndex& index) {
  wire::put_record_header(writer, kFragmentIndexMagic, kFragmentIndexVersion);
  const CandidateIndexParams& params = index.params().index_params;
  writer.put_u8(static_cast<std::uint8_t>(params.mode));
  writer.put_u32(params.min_length);
  writer.put_u32(params.max_length);
  writer.put_u32(params.missed_cleavages);
  writer.put_double(index.params().bin_width);
  writer.put_u64(index.candidate_count());
  const std::uint32_t bins = index.bin_count();
  writer.put_u64(bins);
  writer.put_u64(index.posting_count());
  writer.reserve((static_cast<std::size_t>(bins) + index.posting_count()) *
                 sizeof(std::uint32_t));
  for (std::uint32_t b = 0; b < bins; ++b)
    writer.put_u32(static_cast<std::uint32_t>(index.postings(b).size()));
  for (std::uint32_t b = 0; b < bins; ++b)
    for (const std::uint32_t ordinal : index.postings(b))
      writer.put_u32(ordinal);
}

bool peek_fragment_index(wire::Reader& reader) {
  return wire::peek_record(reader, kFragmentIndexMagic);
}

FragmentIndex get_fragment_index(wire::Reader& reader) {
  wire::get_record_header(reader, kFragmentIndexMagic, kFragmentIndexVersion,
                          "fragment index");
  FragmentIndexParams params;
  params.index_params.mode = static_cast<CandidateMode>(reader.get_u8());
  params.index_params.min_length = reader.get_u32();
  params.index_params.max_length = reader.get_u32();
  params.index_params.missed_cleavages = reader.get_u32();
  params.bin_width = reader.get_double();
  if (!(params.bin_width > 0.0) || !std::isfinite(params.bin_width))
    throw IoError("fragment index: bin width must be positive and finite");
  const std::uint64_t candidates = reader.get_u64();
  const std::uint64_t bins = reader.get_u64();
  const std::uint64_t posting_count = reader.get_u64();
  // Size fields are untrusted: bound them by the bytes actually present
  // before allocating anything proportional to them.
  if (bins > reader.remaining() / sizeof(std::uint32_t))
    throw IoError("fragment index: bin count exceeds payload");
  if (posting_count > reader.remaining() / sizeof(std::uint32_t))
    throw IoError("fragment index: posting count exceeds payload");

  std::vector<std::uint64_t> starts;
  std::vector<std::uint32_t> postings;
  if (bins > 0) {
    starts.reserve(bins + 1);
    starts.push_back(0);
    for (std::uint64_t b = 0; b < bins; ++b)
      starts.push_back(starts.back() + reader.get_u32());
    if (starts.back() != posting_count)
      throw IoError("fragment index: per-bin counts sum to " +
                    std::to_string(starts.back()) + ", expected " +
                    std::to_string(posting_count));
  } else if (posting_count != 0) {
    throw IoError("fragment index: postings without bins");
  }
  postings.reserve(posting_count);
  for (std::uint64_t i = 0; i < posting_count; ++i) {
    const std::uint32_t ordinal = reader.get_u32();
    if (ordinal >= candidates)
      throw IoError("fragment index: posting ordinal " +
                    std::to_string(ordinal) + " outside candidate range of " +
                    std::to_string(candidates));
    postings.push_back(ordinal);
  }
  for (std::uint64_t b = 0; b < bins; ++b)
    for (std::uint64_t i = starts[b] + 1; i < starts[b + 1]; ++i)
      if (postings[i - 1] >= postings[i])
        throw IoError("fragment index: postings must be strictly "
                      "ordinal-ascending within a bin (a duplicate posting "
                      "is a duplicate-bin double vote)");
  return FragmentIndex(params, candidates, std::move(starts),
                       std::move(postings));
}

}  // namespace msp
