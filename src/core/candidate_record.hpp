// Fixed-size candidate records and the parallel mass sort over them — the
// machinery shared by the candidate-store strategy (core/candidate_store)
// and the serving ring's mass-banded shard layout (core/ring_service).
//
// A CandidateRecord is one enumerated prefix/suffix fragment, flattened to
// a fixed 104 bytes so that a contiguous mass range of a sorted record
// array maps to a byte range a single partial one-sided get can fetch.
// sort_candidate_records_by_mass() is Algorithm B's parallel counting sort
// applied to candidates instead of sequences (the extension the paper's
// Discussion anticipates): after it, rank i holds a contiguous mass *band*
// of the global record array, bands ascending with rank.
#pragma once

#include <cstdint>
#include <vector>

#include "core/config.hpp"
#include "mass/peptide.hpp"

namespace msp {

namespace sim {
class Comm;
}  // namespace sim

/// Fixed-size candidate record (fixed so a mass range maps to a byte range
/// that a single partial get can fetch).
struct CandidateRecord {
  double mass = 0.0;
  char protein_id[24] = {};   ///< NUL-padded
  char peptide[64] = {};      ///< NUL-padded residue string
  std::uint32_t offset = 0;   ///< within the parent sequence
  std::uint16_t length = 0;
  std::uint8_t end = 0;       ///< FragmentEnd underlying value
  std::uint8_t pad = 0;
};
static_assert(sizeof(CandidateRecord) == 104);

/// Enumerate `db`'s candidates whose mass lies inside [mass_floor,
/// mass_ceil] — the Section II-A prefix/suffix rule, one record per
/// candidate. Requires CandidateMode::kPrefixSuffix semantics (the k == len
/// suffix is skipped: the full sequence is already counted as a prefix).
/// Throws if a protein id does not fit the record's 24-byte field.
std::vector<CandidateRecord> enumerate_candidate_records(
    const ProteinDatabase& db, const SearchConfig& config, double mass_floor,
    double mass_ceil);

/// The records' total order: mass, then protein id, then offset, then
/// length — a pure function of record contents, so every rank sorting the
/// same multiset produces the same array.
bool candidate_record_less(const CandidateRecord& a, const CandidateRecord& b);

/// Parallel counting sort of candidate records by integer mass bucket —
/// Algorithm B's step B2 applied to candidates. Collective; returns this
/// rank's contiguous mass band (bands ascend with rank; a band may be empty
/// at tiny scale). Every integer mass is owned by exactly one rank, chosen
/// by a running balanced split of the global count array, so the
/// concatenation of all bands is the globally sorted record array.
std::vector<CandidateRecord> sort_candidate_records_by_mass(
    sim::Comm& comm, std::vector<CandidateRecord> local);

}  // namespace msp
