#include "core/algorithm_b.hpp"

#include <algorithm>

#include "core/packdb.hpp"
#include "core/partition.hpp"
#include "core/search_engine.hpp"
#include "core/sortmz.hpp"
#include "mass/amino_acid.hpp"
#include "scoring/top_hits.hpp"
#include "simmpi/comm.hpp"
#include "util/error.hpp"

namespace msp {
namespace {

/// First rank whose sorted m/z range can still contain a sequence of
/// neutral mass ≥ needed_mass (the paper's i′). Conservative by a small
/// slack: skipping is an optimization, never a correctness decision.
int lowest_useful_rank(const std::vector<MzBoundary>& boundaries,
                       double needed_mass) {
  const double needed_mz = needed_mass + kProtonMass - 2.0;  // slack
  for (int r = 0; r < static_cast<int>(boundaries.size()); ++r) {
    if (boundaries[static_cast<std::size_t>(r)].end_mz >= needed_mz) return r;
  }
  return static_cast<int>(boundaries.size());  // empty sender group
}

}  // namespace

AlgorithmBResult run_algorithm_b(const sim::Runtime& runtime,
                                 const std::string& fasta_image,
                                 const std::vector<Spectrum>& queries,
                                 const SearchConfig& config,
                                 const AlgorithmBOptions& options) {
  const int p = runtime.size();
  const SearchEngine engine(config);

  QueryHits all_hits(queries.size());

  sim::RunReport report = runtime.run([&](sim::Comm& comm) {
    const int rank = comm.rank();
    const auto& cost = comm.compute_model();
    if (options.memory_budget_bytes != 0)
      comm.set_memory_budget(options.memory_budget_bytes);

    // ---- B1: load (identical to A1) ----
    comm.trace_mark("B1 load+prepare");
    ProteinDatabase local_db = load_database_shard(fasta_image, rank, p);
    comm.clock().charge_io(static_cast<double>(local_db.total_residues()) *
                           cost.seconds_per_residue_load);
    const QueryRange block = query_block(queries.size(), rank, p);
    const std::span<const Spectrum> local_queries(queries.data() + block.begin,
                                                  block.count());
    const PreparedQueries prepared = engine.prepare(local_queries);
    comm.clock().charge_compute(static_cast<double>(block.count()) *
                                cost.seconds_per_query_prep);
    std::vector<TopK<Hit>> tops = engine.make_tops(block.count());

    // ---- B2: parallel counting sort by parent m/z ----
    comm.trace_mark("B2 mz sort");
    SortedShard sorted = parallel_sort_by_mz(comm, local_db);
    local_db = ProteinDatabase{};  // sorted copy replaces the unsorted shard
    comm.bump("sort_us",
              static_cast<std::uint64_t>(sorted.sort_seconds * 1e6));

    // ---- B3: restricted ring with masked one-sided transport ----
    // Sender group {i′, ..., p−1}: only those sorted shards can contain
    // sequences heavy enough to offer candidates to any local query.
    // window_below() degenerates to tolerance_da in narrow mode; in open
    // mode it widens the restriction so heavy modified matches stay in the
    // sender group (conservative-safe, like the slack below).
    const double min_needed =
        prepared.size() == 0 ? 0.0
                             : prepared.min_mass() - config.window_below();
    const int low_rank =
        prepared.size() == 0 ? p : lowest_useful_rank(sorted.boundaries,
                                                      min_needed);
    const int group = p - low_rank;
    comm.bump("shards_visited", static_cast<std::uint64_t>(group));

    // Index the sorted shard once; the restricted ring ships it with the
    // shard bytes (same candidate-centric transport as Algorithm A).
    const CandidateIndex local_index =
        CandidateIndex::build(sorted.shard, engine.config());
    comm.clock().charge_compute(static_cast<double>(local_index.size()) *
                                cost.seconds_per_mz);
    const bool ship_fragment =
        config.open_search() &&
        config.candidate_source != CandidateSourceKind::kMassWindow;
    FragmentIndex local_fragment;
    if (ship_fragment) {
      local_fragment =
          FragmentIndex::build(sorted.shard, local_index, config.bin_width);
      comm.clock().charge_compute(
          static_cast<double>(local_fragment.posting_count()) *
          cost.seconds_per_mz);
    }
    std::vector<char> local_pack =
        ship_fragment ? pack_database(sorted.shard, local_index, local_fragment)
                      : pack_database(sorted.shard, local_index);
    comm.charge_alloc(local_pack.size());
    sim::Window window(comm, local_pack);
    std::size_t max_shard = 0;
    for (int r = 0; r < p; ++r)
      max_shard = std::max(max_shard, window.shard_size(r));
    comm.charge_alloc(2 * max_shard + static_cast<std::size_t>(p) *
                                          sizeof(MzBoundary));

    // Ranks may have different sender-group sizes; iterate to the global
    // maximum so the per-iteration fences stay collective.
    const auto max_group =
        static_cast<int>(comm.allreduce_max(static_cast<double>(group)));

    // Visit own shard first when it is in the group, then rotate within
    // the group so concurrent ranks spread their pulls.
    auto shard_at = [&](int t) -> int {
      if (group == 0 || t >= group) return -1;
      const int offset = rank >= low_rank ? rank - low_rank : 0;
      return low_rank + (offset + t) % group;
    };

    std::vector<char> comp_buffer;
    std::vector<char> recv_buffer;
    const int pulls = comm.network().concurrent_pulls(p);

    for (int t = 0; t < max_group; ++t) {
      comm.trace_mark("B3 ring step " + std::to_string(t));
      const int current = shard_at(t);
      const int next = shard_at(t + 1);

      sim::RmaRequest prefetch;
      if (options.mask) {
        if (next >= 0 && next != rank)
          prefetch = window.rget(next, recv_buffer, pulls);
      }

      if (current >= 0) {
        PackedShard fetched;
        if (current == rank) {
          // Own shard: search the sorted copy and its index in place.
        } else if (options.mask && t > 0 && !comp_buffer.empty()) {
          fetched = unpack_shard(comp_buffer);
        } else {
          // First remote shard (or unmasked mode): blocking fetch.
          sim::RmaRequest fetch = window.rget(current, comp_buffer, pulls);
          window.wait(fetch);
          fetched = unpack_shard(comp_buffer);
        }
        const ProteinDatabase& shard_db =
            current == rank ? sorted.shard : fetched.db;
        const CandidateIndex* shard_index =
            current == rank ? &local_index
                            : (fetched.has_index ? &fetched.index : nullptr);
        const FragmentIndex* shard_fragment =
            current == rank
                ? (ship_fragment ? &local_fragment : nullptr)
                : (fetched.has_fragment ? &fetched.fragment : nullptr);
        const ShardSearchStats stats = engine.search_shard(
            shard_db, prepared, tops, nullptr, shard_index, shard_fragment);
        comm.clock().charge_compute(kernel_cost_seconds(stats, cost));
        comm.bump("candidates", stats.candidates_evaluated);
        comm.bump("prefiltered", stats.candidates_prefiltered);
        comm.bump("offers", stats.hits_offered);
        comm.bump("ions", stats.ions_built);
        if (config.open_search())
          comm.bump("postings", stats.postings_scanned);
      }

      if (options.mask && prefetch.active) {
        window.wait(prefetch);
        std::swap(comp_buffer, recv_buffer);
      }
      if (options.fence_per_iteration) window.fence();
    }
    // Window close is collective (MPI_Win_free semantics).
    window.fence();

    // ---- report ----
    comm.trace_mark("B4 finalize");
    QueryHits local_hits = engine.finalize(tops);
    if (config.open_search()) {
      std::uint64_t misses = 0;
      for (const std::vector<Hit>& hits : local_hits)
        if (hits.empty()) ++misses;
      comm.bump("open_index_miss_queries", misses);
    }
    std::size_t reported = 0;
    for (std::size_t q = 0; q < local_hits.size(); ++q) {
      reported += local_hits[q].size();
      all_hits[block.begin + q] = std::move(local_hits[q]);
    }
    comm.clock().charge_io(static_cast<double>(reported) *
                           cost.seconds_per_hit_output);
  });

  AlgorithmBResult result;
  result.candidates = report.sum_counter("candidates");
  double sort_max = 0.0;
  double shards_sum = 0.0;
  for (const auto& r : report.ranks) {
    auto it = r.counters.find("sort_us");
    if (it != r.counters.end())
      sort_max = std::max(sort_max, static_cast<double>(it->second) * 1e-6);
    auto sv = r.counters.find("shards_visited");
    if (sv != r.counters.end()) shards_sum += static_cast<double>(sv->second);
  }
  result.max_sort_seconds = sort_max;
  result.mean_shards_visited = shards_sum / static_cast<double>(p);
  result.report = std::move(report);
  result.hits = std::move(all_hits);
  return result;
}

}  // namespace msp
