#include "core/algorithm_a.hpp"

#include <algorithm>
#include <optional>

#include "core/packdb.hpp"
#include "core/partition.hpp"
#include "core/ring_search.hpp"
#include "core/search_engine.hpp"
#include "scoring/top_hits.hpp"
#include "simmpi/comm.hpp"
#include "util/error.hpp"

namespace msp {
namespace detail {
namespace {

/// Rough per-query memory footprint (peak list + binned vector).
std::size_t query_bytes(const Spectrum& spectrum) {
  return spectrum.peaks().size() * sizeof(Peak) + 4096;
}

}  // namespace

void ring_search_body(sim::Comm& comm, const std::string& fasta_image,
                      const RingQuerySet& query_set, const SearchEngine& engine,
                      const AlgorithmAOptions& options, QueryHits& all_hits) {
  const int p = comm.size();
  const int rank = comm.rank();
  const auto& cost = comm.compute_model();
  const sim::FaultModel& faults = comm.faults();

  // Crash schedule in group-rank space. A scheduled step outside [0, p)
  // never fires on this communicator (it names a step of a larger ring).
  auto crash_step_of = [&](int r) {
    const int step = faults.crash_step(comm.global_rank_of(r));
    return step >= 0 && step < p ? step : -1;
  };
  const int my_crash_step = crash_step_of(rank);
  const bool fault_tolerant = faults.has_crashes();
  if (fault_tolerant) {
    int survivors = 0;
    for (int r = 0; r < p; ++r)
      if (crash_step_of(r) < 0) ++survivors;
    if (survivors == 0)
      throw FaultUnrecoverable(
          "fault schedule kills every rank of the ring — nobody left to "
          "recover the query blocks");
  }

  // ---- A1: load the rank's database chunk and prepare its query block ----
  comm.trace_mark("A1 load+prepare");
  ProteinDatabase local_db = load_database_shard(fasta_image, rank, p);
  comm.clock().charge_io(static_cast<double>(local_db.total_residues()) *
                         cost.seconds_per_residue_load);

  const QueryRange block = query_block(query_set.queries.size(), rank, p);
  const std::span<const Spectrum> local_queries(
      query_set.queries.data() + block.begin, block.count());

  std::size_t local_query_bytes = 0;
  for (const Spectrum& q : local_queries) local_query_bytes += query_bytes(q);
  comm.charge_alloc(local_query_bytes);
  const PreparedQueries prepared = engine.prepare(local_queries);
  comm.clock().charge_compute(static_cast<double>(local_queries.size()) *
                              cost.seconds_per_query_prep);

  std::vector<TopK<Hit>> tops = engine.make_tops(local_queries.size());

  // ---- A2: ring rotation with masked one-sided transport ----
  // The shard's candidate index is built once here and ships with the shard
  // bytes, so all p ranks the rotation delivers it to merge-join one
  // enumeration instead of re-walking the proteins. Each entry costs one
  // fragment-mass computation, the same unit as Algorithm B's m/z sort.
  const CandidateIndex local_index =
      CandidateIndex::build(local_db, engine.config());
  comm.clock().charge_compute(static_cast<double>(local_index.size()) *
                              cost.seconds_per_mz);
  // Open search ships a fragment-ion index next to the candidate index so
  // every rank the rotation delivers the shard to gets indexed lookups
  // instead of exhaustive enumeration. Build cost is one mass computation
  // per posting (= per theoretical ion), the same unit as the index build.
  const bool ship_fragment =
      engine.config().open_search() &&
      engine.config().candidate_source != CandidateSourceKind::kMassWindow;
  FragmentIndex local_fragment;
  if (ship_fragment) {
    local_fragment =
        FragmentIndex::build(local_db, local_index, engine.config().bin_width);
    comm.clock().charge_compute(
        static_cast<double>(local_fragment.posting_count()) *
        cost.seconds_per_mz);
  }
  // Mass routing (shared with the serving ring): the shard's bucketed mass
  // histogram rides in the pack trailer, and a collective exchange leaves
  // every rank holding the identical global shard mass map before the
  // rotation starts — routing decisions are then pure functions of frozen
  // global inputs.
  ShardMassMap shard_map;
  std::vector<char> local_pack;
  if (options.mass_routing) {
    const MassHistogram local_histogram = MassHistogram::build(local_index);
    local_pack = ship_fragment
                     ? pack_database(local_db, local_index, local_histogram,
                                     local_fragment)
                     : pack_database(local_db, local_index, local_histogram);
    shard_map = ShardMassMap::exchange(comm, local_histogram);
  } else {
    local_pack = ship_fragment
                     ? pack_database(local_db, local_index, local_fragment)
                     : pack_database(local_db, local_index);
  }
  comm.charge_alloc(local_pack.size());  // D_local (window)
  sim::Window window(comm, local_pack);

  std::size_t max_shard = 0;
  for (int r = 0; r < p; ++r)
    max_shard = std::max(max_shard, window.shard_size(r));
  comm.charge_alloc(2 * max_shard);  // D_recv + D_comp

  std::vector<char> comp_buffer = local_pack;  // D_comp starts as own shard
  std::vector<char> recv_buffer;               // D_recv
  const int pulls = comm.network().concurrent_pulls(p);

  // Shard replication for crash recovery: every rank pulls its ring
  // predecessor's shard before the rotation starts (so the copy exists
  // before any crash can fire) and exposes it through a second window.
  // A dead rank's shard then stays reachable at its successor.
  std::vector<char> replica;
  std::optional<sim::Window> replica_window;
  if (fault_tolerant) {
    const int predecessor = (rank + p - 1) % p;
    sim::RmaRequest pull = window.rget(predecessor, replica, pulls);
    window.wait(pull);
    comm.charge_alloc(replica.size());
    replica_window.emplace(
        comm, std::span<const char>(replica.data(), replica.size()));
  }

  // One-sided fetch of shard `owner` issued at ring step `at_step`,
  // rerouted to the replica when the owner is already dead at issue time
  // (crashes are step-boundary events: a transfer issued before the
  // owner's crash step completes normally).
  struct ShardFetch {
    sim::RmaRequest request;
    sim::Window* window = nullptr;
  };
  auto owner_dead_at = [&](int owner, int at_step) {
    const int step = crash_step_of(owner);
    return step >= 0 && step <= at_step;
  };
  auto fetch_shard = [&](int owner, int at_step,
                         std::vector<char>& dest) -> ShardFetch {
    if (!owner_dead_at(owner, at_step))
      return ShardFetch{window.rget(owner, dest, pulls), &window};
    const int holder = (owner + 1) % p;
    if (owner_dead_at(holder, at_step))
      throw FaultUnrecoverable("shard " + std::to_string(owner) +
                               ": owner and replica holder " +
                               std::to_string(holder) + " both crashed");
    return ShardFetch{replica_window->rget(holder, dest, pulls),
                      &*replica_window};
  };

  // Router verdict per shard for this rank's block, fixed for the whole
  // rotation (the block and the map are both frozen before step 0). A 0 is
  // a proof the block matches nothing in that shard at this tolerance —
  // skipping is an optimization, never a correctness decision.
  std::vector<std::uint8_t> shard_needed(static_cast<std::size_t>(p), 1);
  if (options.mass_routing && shard_map.routes()) {
    std::uint64_t visited = 0;
    std::uint64_t skipped = 0;
    for (int j = 0; j < p; ++j) {
      // Open search widens the scoring window asymmetrically (PTM deltas
      // shift the observed mass); routing must widen identically or a skip
      // could hide a modified match.
      const bool need =
          shard_map.needed(j, std::span<const double>(prepared.sorted_masses),
                           engine.config().window_below(),
                           engine.config().window_above());
      shard_needed[static_cast<std::size_t>(j)] = need ? 1 : 0;
      if (need)
        ++visited;
      else
        ++skipped;
    }
    comm.clock().charge_compute(static_cast<double>(p) *
                                cost.seconds_per_route_check);
    comm.bump("route_steps_visited", visited);
    comm.bump("route_steps_skipped", skipped);
  }

  int comp_shard = rank;  // shard image resident in comp_buffer
  for (int s = 0; s < p; ++s) {
    comm.trace_mark("A2 ring step " + std::to_string(s));
    if (my_crash_step >= 0 && s >= my_crash_step) {
      if (s == my_crash_step)
        comm.mark_crashed("ring step " + std::to_string(s));
      // Fail-stop zombie: the simulated host is gone, but the thread keeps
      // matching the survivors' collectives so fence epochs and window
      // lifetimes stay aligned while they recover.
      if (options.fence_per_iteration) window.fence();
      continue;
    }

    const int current = (rank + s) % p;
    if (!shard_needed[static_cast<std::size_t>(current)]) {
      // Routed-away step: the constant decision cost only — no fetch, no
      // scoring. The per-iteration fence still runs (it is collective).
      comm.clock().charge_compute(cost.seconds_per_route_check);
      comm.trace_mark("A2 ring step " + std::to_string(s) + " routed skip");
      if (options.fence_per_iteration) window.fence();
      continue;
    }

    const int next = (rank + s + 1) % p;

    ShardFetch prefetch;
    if (options.mask) {
      // Non-blocking request for the next *visited* iteration's shard
      // (A2's masking): issued before this iteration's computation. A
      // shard the router will skip is never worth fetching.
      if (s + 1 < p && shard_needed[static_cast<std::size_t>(next)])
        prefetch = fetch_shard(next, s, recv_buffer);
    }
    if (current != rank && comp_shard != current) {
      // Nothing delivered this shard under a previous step's mask (the
      // unmasked variant, or the router skipped the steps in between):
      // fetch it blocking, fully exposing the transfer.
      ShardFetch fetch = fetch_shard(current, s, comp_buffer);
      fetch.window->wait(fetch.request);
      comp_shard = current;
    }

    PackedShard fetched;
    if (current != rank) fetched = unpack_shard(comp_buffer);
    const ProteinDatabase& shard_db = current == rank ? local_db : fetched.db;
    const CandidateIndex* shard_index =
        current == rank ? &local_index
                        : (fetched.has_index ? &fetched.index : nullptr);
    // A fetched legacy pack carries no fragment record → null → the kernel
    // falls back to exhaustive open enumeration for that shard.
    const FragmentIndex* shard_fragment =
        current == rank ? (ship_fragment ? &local_fragment : nullptr)
                        : (fetched.has_fragment ? &fetched.fragment : nullptr);
    const ShardSearchStats stats = engine.search_shard(
        shard_db, prepared, tops, nullptr, shard_index, shard_fragment);
    comm.clock().charge_compute(kernel_cost_seconds(stats, cost));
    comm.bump("candidates", stats.candidates_evaluated);
    comm.bump("prefiltered", stats.candidates_prefiltered);
    comm.bump("offers", stats.hits_offered);
    comm.bump("ions", stats.ions_built);
    if (engine.config().open_search())
      comm.bump("postings", stats.postings_scanned);

    if (options.mask && prefetch.request.active) {
      prefetch.window->wait(prefetch.request);
      std::swap(comp_buffer, recv_buffer);
      comp_shard = next;
    }
    if (options.fence_per_iteration) window.fence();
  }
  // Window close is collective (MPI_Win_free): no rank may free its
  // exposed shard while another can still read it.
  window.fence();

  // ---- A2': survivors adopt the dead ranks' query blocks ----
  if (fault_tolerant) {
    std::vector<int> alive;
    std::vector<int> dead;
    for (int r = 0; r < p; ++r)
      (crash_step_of(r) < 0 ? alive : dead).push_back(r);

    if (!dead.empty() && my_crash_step < 0) {
      comm.trace_mark("A2' recovery re-search");
      // Omniscient deterministic failure detection: the schedule is known
      // to every rank, so survivors charge the detection timeout once
      // instead of simulating a heartbeat protocol.
      comm.charge_recovery(faults.crash_detection_timeout_s,
                           "declared " + std::to_string(dead.size()) +
                               " rank(s) dead");
      const double research_start = comm.clock().now();
      const int my_index = static_cast<int>(
          std::find(alive.begin(), alive.end(), rank) - alive.begin());
      std::uint64_t adopted_total = 0;

      for (const int d : dead) {
        const QueryRange dead_block =
            query_block(query_set.queries.size(), d, p);
        // Re-partition the orphaned block among the survivors; each
        // survivor re-searches its slice against all p shards.
        const QueryRange adopted = query_block(
            dead_block.count(), my_index, static_cast<int>(alive.size()));
        if (adopted.count() == 0) continue;
        const std::span<const Spectrum> orphans(
            query_set.queries.data() + dead_block.begin + adopted.begin,
            adopted.count());

        std::size_t orphan_bytes = 0;
        for (const Spectrum& q : orphans) orphan_bytes += query_bytes(q);
        comm.charge_alloc(orphan_bytes);
        const PreparedQueries orphan_prepared = engine.prepare(orphans);
        comm.clock().charge_compute(static_cast<double>(orphans.size()) *
                                    cost.seconds_per_query_prep);
        std::vector<TopK<Hit>> orphan_tops = engine.make_tops(orphans.size());

        // The adopted block re-enters through the same router: shards that
        // provably hold nothing for the orphans are skipped at the constant
        // decision cost, exactly as in the main rotation.
        std::vector<std::uint8_t> orphan_needed(static_cast<std::size_t>(p),
                                                1);
        if (options.mass_routing && shard_map.routes()) {
          std::uint64_t visited = 0;
          std::uint64_t skipped = 0;
          for (int j = 0; j < p; ++j) {
            const bool need = shard_map.needed(
                j, std::span<const double>(orphan_prepared.sorted_masses),
                engine.config().window_below(), engine.config().window_above());
            orphan_needed[static_cast<std::size_t>(j)] = need ? 1 : 0;
            if (need)
              ++visited;
            else
              ++skipped;
          }
          comm.clock().charge_compute(static_cast<double>(p) *
                                      cost.seconds_per_route_check);
          comm.bump("route_steps_visited", visited);
          comm.bump("route_steps_skipped", skipped);
        }

        for (int shard = 0; shard < p; ++shard) {
          if (!orphan_needed[static_cast<std::size_t>(shard)]) {
            comm.clock().charge_compute(cost.seconds_per_route_check);
            continue;
          }
          PackedShard fetched;
          if (shard != rank) {
            ShardFetch fetch = fetch_shard(shard, p, recv_buffer);
            fetch.window->wait(fetch.request);
            fetched = unpack_shard(recv_buffer);
          }
          const ProteinDatabase& shard_db =
              shard == rank ? local_db : fetched.db;
          const CandidateIndex* shard_index =
              shard == rank ? &local_index
                            : (fetched.has_index ? &fetched.index : nullptr);
          const FragmentIndex* shard_fragment =
              shard == rank
                  ? (ship_fragment ? &local_fragment : nullptr)
                  : (fetched.has_fragment ? &fetched.fragment : nullptr);
          const ShardSearchStats stats =
              engine.search_shard(shard_db, orphan_prepared, orphan_tops,
                                  nullptr, shard_index, shard_fragment);
          comm.clock().charge_compute(kernel_cost_seconds(stats, cost));
          comm.bump("candidates", stats.candidates_evaluated);
          comm.bump("prefiltered", stats.candidates_prefiltered);
          comm.bump("ions", stats.ions_built);
          if (engine.config().open_search())
            comm.bump("postings", stats.postings_scanned);
        }

        QueryHits orphan_hits = engine.finalize(orphan_tops);
        if (engine.config().open_search()) {
          std::uint64_t misses = 0;
          for (const std::vector<Hit>& hits : orphan_hits)
            if (hits.empty()) ++misses;
          comm.bump("open_index_miss_queries", misses);
        }
        std::size_t reported = 0;
        for (std::size_t q = 0; q < orphan_hits.size(); ++q) {
          reported += orphan_hits[q].size();
          all_hits[query_set.output_offset + dead_block.begin + adopted.begin +
                   q] = std::move(orphan_hits[q]);
        }
        comm.clock().charge_io(static_cast<double>(reported) *
                               cost.seconds_per_hit_output);
        comm.release_alloc(orphan_bytes);
        adopted_total += adopted.count();
      }
      comm.bump("recovered_queries", adopted_total);
      comm.note_recovery_span(
          comm.clock().now() - research_start,
          "re-searched " + std::to_string(adopted_total) +
              " orphaned query(ies) against all shards");
    }
    // Replica windows close collectively once every survivor is done
    // re-pulling; zombies attend so their exposed buffers stay alive.
    replica_window->fence();
  }

  // ---- A3: report the top-τ lists for the local queries ----
  comm.trace_mark("A3 finalize");
  if (my_crash_step < 0) {
    QueryHits local_hits = engine.finalize(tops);
    // Index-miss queries (no candidate cleared the vote gate anywhere) are
    // the de novo fallback lane's input; the counter lets callers size it.
    if (engine.config().open_search()) {
      std::uint64_t misses = 0;
      for (const std::vector<Hit>& hits : local_hits)
        if (hits.empty()) ++misses;
      comm.bump("open_index_miss_queries", misses);
    }
    std::size_t reported = 0;
    for (std::size_t q = 0; q < local_hits.size(); ++q) {
      reported += local_hits[q].size();
      all_hits[query_set.output_offset + block.begin + q] =
          std::move(local_hits[q]);
    }
    comm.clock().charge_io(static_cast<double>(reported) *
                           cost.seconds_per_hit_output);
    comm.bump("hits_reported", reported);
  }
}

}  // namespace detail

ParallelRunResult run_algorithm_a(const sim::Runtime& runtime,
                                  const std::string& fasta_image,
                                  const std::vector<Spectrum>& queries,
                                  const SearchConfig& config,
                                  const AlgorithmAOptions& options) {
  const SearchEngine engine(config);

  // Per-query output slots; each query is owned by exactly one rank (its
  // block owner, or on a crash the surviving adopter), so the ranks write
  // disjoint elements (no synchronization needed beyond join).
  QueryHits all_hits(queries.size());

  sim::RunReport report = runtime.run([&](sim::Comm& comm) {
    if (options.memory_budget_bytes != 0)
      comm.set_memory_budget(options.memory_budget_bytes);
    detail::ring_search_body(
        comm, fasta_image,
        detail::RingQuerySet{
            std::span<const Spectrum>(queries.data(), queries.size()), 0},
        engine, options, all_hits);
  });

  ParallelRunResult result;
  result.candidates = report.sum_counter("candidates");
  result.report = std::move(report);
  result.hits = std::move(all_hits);
  return result;
}

}  // namespace msp
