#include "core/algorithm_a.hpp"

#include <algorithm>

#include "core/packdb.hpp"
#include "core/partition.hpp"
#include "core/ring_search.hpp"
#include "core/search_engine.hpp"
#include "scoring/top_hits.hpp"
#include "simmpi/comm.hpp"
#include "util/error.hpp"

namespace msp {
namespace detail {
namespace {

/// Rough per-query memory footprint (peak list + binned vector).
std::size_t query_bytes(const Spectrum& spectrum) {
  return spectrum.peaks().size() * sizeof(Peak) + 4096;
}

}  // namespace

void ring_search_body(sim::Comm& comm, const std::string& fasta_image,
                      std::span<const Spectrum> local_queries,
                      std::size_t output_offset, const SearchEngine& engine,
                      const AlgorithmAOptions& options, QueryHits& all_hits) {
  const int p = comm.size();
  const int rank = comm.rank();
  const auto& cost = comm.compute_model();

  // ---- A1: load the rank's database chunk and prepare its query block ----
  ProteinDatabase local_db = load_database_shard(fasta_image, rank, p);
  comm.clock().charge_io(static_cast<double>(local_db.total_residues()) *
                         cost.seconds_per_residue_load);

  std::size_t local_query_bytes = 0;
  for (const Spectrum& q : local_queries) local_query_bytes += query_bytes(q);
  comm.charge_alloc(local_query_bytes);
  const PreparedQueries prepared = engine.prepare(local_queries);
  comm.clock().charge_compute(static_cast<double>(local_queries.size()) *
                              cost.seconds_per_query_prep);

  std::vector<TopK<Hit>> tops = engine.make_tops(local_queries.size());

  // ---- A2: ring rotation with masked one-sided transport ----
  std::vector<char> local_pack = pack_database(local_db);
  comm.charge_alloc(local_pack.size());  // D_local (window)
  sim::Window window(comm, local_pack);

  std::size_t max_shard = 0;
  for (int r = 0; r < p; ++r)
    max_shard = std::max(max_shard, window.shard_size(r));
  comm.charge_alloc(2 * max_shard);  // D_recv + D_comp

  std::vector<char> comp_buffer = local_pack;  // D_comp starts as own shard
  std::vector<char> recv_buffer;               // D_recv
  const int pulls = comm.network().concurrent_pulls(p);

  for (int s = 0; s < p; ++s) {
    const int next = (rank + s + 1) % p;

    sim::RmaRequest prefetch;
    if (options.mask) {
      // Non-blocking request for the *next* iteration's shard (A2's
      // masking): issued before this iteration's computation.
      if (s + 1 < p) prefetch = window.rget(next, recv_buffer, pulls);
    } else if (s > 0) {
      // Unmasked variant: this iteration's shard is fetched blocking,
      // fully exposing the transfer (s = 0 processes the local shard).
      const int current = (rank + s) % p;
      sim::RmaRequest fetch = window.rget(current, comp_buffer, pulls);
      window.wait(fetch);
    }

    const ProteinDatabase shard_db =
        s == 0 ? std::move(local_db) : unpack_database(comp_buffer);
    const ShardSearchStats stats = engine.search_shard(shard_db, prepared, tops);
    comm.clock().charge_compute(kernel_cost_seconds(stats, cost));
    comm.bump("candidates", stats.candidates_evaluated);
    comm.bump("prefiltered", stats.candidates_prefiltered);
    comm.bump("offers", stats.hits_offered);

    if (options.mask && s + 1 < p) {
      window.wait(prefetch);
      std::swap(comp_buffer, recv_buffer);
    }
    if (options.fence_per_iteration) window.fence();
  }
  // Window close is collective (MPI_Win_free): no rank may free its
  // exposed shard while another can still read it.
  window.fence();

  // ---- A3: report the top-τ lists for the local queries ----
  QueryHits local_hits = engine.finalize(tops);
  std::size_t reported = 0;
  for (std::size_t q = 0; q < local_hits.size(); ++q) {
    reported += local_hits[q].size();
    all_hits[output_offset + q] = std::move(local_hits[q]);
  }
  comm.clock().charge_io(static_cast<double>(reported) *
                         cost.seconds_per_hit_output);
  comm.bump("hits_reported", reported);
}

}  // namespace detail

ParallelRunResult run_algorithm_a(const sim::Runtime& runtime,
                                  const std::string& fasta_image,
                                  const std::vector<Spectrum>& queries,
                                  const SearchConfig& config,
                                  const AlgorithmAOptions& options) {
  const int p = runtime.size();
  const SearchEngine engine(config);

  // Per-query output slots; each query is owned by exactly one rank, so the
  // ranks write disjoint elements (no synchronization needed beyond join).
  QueryHits all_hits(queries.size());

  sim::RunReport report = runtime.run([&](sim::Comm& comm) {
    if (options.memory_budget_bytes != 0)
      comm.set_memory_budget(options.memory_budget_bytes);
    const QueryRange block = query_block(queries.size(), comm.rank(), p);
    detail::ring_search_body(
        comm, fasta_image,
        std::span<const Spectrum>(queries.data() + block.begin, block.count()),
        block.begin, engine, options, all_hits);
  });

  ParallelRunResult result;
  result.candidates = report.sum_counter("candidates");
  result.report = std::move(report);
  result.hits = std::move(all_hits);
  return result;
}

}  // namespace msp
