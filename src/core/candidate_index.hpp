// Shard-resident candidate mass index.
//
// The paper's run-time is dominated by the O(r·k) scoring term (Section
// II-C), and its Discussion notes that "a dominant fraction of the query
// processing time is spent on generating candidates on-the-fly". The
// CandidateIndex moves candidate *enumeration* out of the kernel entirely:
// at pack time (once per shard) every prefix/suffix — or every digested
// peptide in tryptic mode — is materialized as a (mass, protein, offset,
// length, end) entry and the entries are sorted by mass. The kernel then
// merge-joins this array against the mass-sorted query hypotheses instead
// of re-walking every protein on every ring iteration, and Algorithm A's
// rotation ships the index alongside the shard bytes so all p ranks that
// search a shard reuse one enumeration (HiCOPS-style precomputed indexing).
//
// Masses are computed through the same FragmentMassIndex arithmetic the
// reference kernel uses, so indexed and reference searches are bit-identical.
#pragma once

#include <cstdint>
#include <vector>

#include "core/config.hpp"
#include "mass/peptide.hpp"

namespace msp {

/// One enumerated candidate of a shard: a prefix/suffix (or digested
/// peptide) of shard protein `protein`, located so the residue view can be
/// taken without copying.
struct IndexedCandidate {
  double mass = 0.0;          ///< neutral monoisotopic mass (residues + water)
  std::uint32_t protein = 0;  ///< index into the shard's proteins
  std::uint32_t offset = 0;   ///< start position within the parent sequence
  std::uint32_t length = 0;   ///< number of residues
  FragmentEnd end = FragmentEnd::kPrefix;
};

/// The candidate-enumeration parameters an index was built under. An index
/// is only valid for engines whose SearchConfig agrees on all four — the
/// engine checks before searching.
struct CandidateIndexParams {
  CandidateMode mode = CandidateMode::kPrefixSuffix;
  std::uint32_t min_length = 0;
  std::uint32_t max_length = 0;
  std::uint32_t missed_cleavages = 0;  ///< only meaningful in kTryptic mode

  static CandidateIndexParams from(const SearchConfig& config);

  friend bool operator==(const CandidateIndexParams& a,
                         const CandidateIndexParams& b) = default;
};

/// Mass-sorted candidate entries of one shard.
class CandidateIndex {
 public:
  CandidateIndex() = default;
  CandidateIndex(CandidateIndexParams params,
                 std::vector<IndexedCandidate> entries);

  /// Enumerate and sort every candidate of `shard` under `params`. Entry
  /// order is (mass, protein, offset, length) ascending — a total order, so
  /// the build is deterministic for a given shard.
  static CandidateIndex build(const ProteinDatabase& shard,
                              const CandidateIndexParams& params);
  static CandidateIndex build(const ProteinDatabase& shard,
                              const SearchConfig& config);

  const CandidateIndexParams& params() const { return params_; }
  const std::vector<IndexedCandidate>& entries() const { return entries_; }
  bool empty() const { return entries_.empty(); }
  std::size_t size() const { return entries_.size(); }

  /// Bytes this index occupies in memory (for simulated memory accounting).
  std::size_t byte_size() const {
    return entries_.size() * sizeof(IndexedCandidate);
  }

 private:
  CandidateIndexParams params_;
  std::vector<IndexedCandidate> entries_;  ///< mass ascending
};

}  // namespace msp
