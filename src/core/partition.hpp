// Input partitioning (the paper's loading step A1/B1).
//
// The database is split by file byte ranges with boundary repair — exactly
// the rule read_fasta_chunk implements — and queries are split in equal
// blocks. Both are pure functions of (input, rank, p), so every rank can
// compute its own partition with no communication, as in the paper.
#pragma once

#include <cstddef>
#include <span>
#include <string_view>
#include <vector>

#include "mass/peptide.hpp"
#include "spectra/spectrum.hpp"

namespace msp {

/// The shard of `fasta_bytes` owned by `rank` out of `p` (step A1).
ProteinDatabase load_database_shard(std::string_view fasta_bytes, int rank,
                                    int p);

/// Block partition of m queries: rank gets [begin, end).
struct QueryRange {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t count() const { return end - begin; }
};
QueryRange query_block(std::size_t total_queries, int rank, int p);

/// Direct (in-memory) database partition used when no FASTA image exists:
/// contiguous sequence ranges balanced by residue count — same invariant as
/// the byte-chunk rule (each shard ≈ N/p residues), minus the parsing.
std::vector<ProteinDatabase> partition_by_residues(const ProteinDatabase& db,
                                                   int p);

}  // namespace msp
