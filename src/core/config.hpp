// Search configuration shared by every engine variant.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "mass/ptm.hpp"
#include "spectra/library.hpp"
#include "spectra/preprocess.hpp"
#include "spectra/spectrum.hpp"

/// Default for SearchConfig::kernel_threads; override at configure time with
/// -DMSPAR_KERNEL_THREADS_DEFAULT=<n> to exercise the threaded kernel
/// everywhere (CI runs the full test suite this way once).
#ifndef MSPAR_DEFAULT_KERNEL_THREADS
#define MSPAR_DEFAULT_KERNEL_THREADS 1
#endif

namespace msp {

enum class ScoreModel : std::uint8_t {
  kLikelihood,  ///< MSPolygraph's accurate model (default; the paper's point)
  kHyperscore,  ///< X!Tandem-style fast baseline
  kSharedPeak,  ///< simplest; used by tests for hand-checkable scores
  kXcorr,       ///< SEQUEST-style cross-correlation (fast formulation)
};

enum class CandidateSourceKind : std::uint8_t {
  /// Use the shard's fragment-ion index when one was shipped with the pack
  /// image, else fall back to exhaustive mass-window enumeration — the
  /// legacy-pack-safe default.
  kAuto,
  /// Force exhaustive mass-window enumeration (the ablation baseline).
  kMassWindow,
  /// Force the fragment-ion index, building one in place when the caller
  /// did not supply it.
  kFragmentIndex,
};

enum class CandidateMode : std::uint8_t {
  /// The paper's Section II-A rule: candidates are prefixes or suffixes of
  /// database sequences with mass in m(q) ± δ. This is the mode every
  /// complexity bound and benchmark in the reproduction uses.
  kPrefixSuffix,
  /// Extension: candidates are tryptic peptides (internal substrings with
  /// enzymatic termini, bounded missed cleavages) — what production engines
  /// (SEQUEST/X!Tandem/MSPolygraph in digest mode) enumerate. The parallel
  /// algorithms are agnostic to this choice; it only changes the kernel.
  kTryptic,
};

struct SearchConfig {
  /// Parent-mass tolerance δ: a fragment is a candidate for query q iff its
  /// mass lies within m(q) ± δ (Section II-A).
  double tolerance_da = 3.0;
  /// τ: hits retained per query (paper: "between 10 and 1,000").
  std::size_t tau = 10;
  /// Candidate length guards: fragments outside are not even windowed.
  std::size_t min_candidate_length = 6;
  std::size_t max_candidate_length = 100;
  ScoreModel model = ScoreModel::kLikelihood;
  CandidateMode candidate_mode = CandidateMode::kPrefixSuffix;
  /// Missed cleavages allowed in kTryptic candidate enumeration.
  std::size_t candidate_missed_cleavages = 2;
  double bin_width = kDefaultBinWidth;
  /// Minimum score for a candidate to be reported at all (the paper's
  /// "user-specified cutoff"); -inf semantics via a very low default.
  double score_cutoff = -1e18;
  /// X!!Tandem-style aggressive prefiltering (Section I-A: its speed comes
  /// from "a fairly simple, fast statistical model, and an aggressive
  /// prefiltering step that could miss true predictions"): candidates are
  /// first screened with a cheap shared-peak count and only survivors get
  /// the full model score. Off by default — MSPolygraph's accuracy-first
  /// stance is the paper's whole point; bench_quality measures the trade.
  bool prefilter = false;
  std::size_t prefilter_min_shared_peaks = 4;
  /// Charge-state ambiguity handling: low-resolution instruments often
  /// cannot assign the precursor charge, so the reported value may be
  /// wrong. When enabled, every query is searched under a parent-mass
  /// hypothesis for EACH charge in `charge_hypotheses` (its precursor m/z
  /// reinterpreted at that z) in addition to nothing else — the reported
  /// charge is only one of the hypotheses. Off by default.
  bool try_alternate_charges = false;
  std::vector<int> charge_hypotheses = {1, 2, 3};
  /// Optional spectral library (MSPolygraph's hybrid mode, Section I-A):
  /// candidates with a library entry are scored against the measured
  /// consensus spectrum; the rest fall back to the on-the-fly b/y model.
  /// Non-owning; must outlive every engine built from this config. Only
  /// consulted under ScoreModel::kLikelihood.
  const SpectralLibrary* library = nullptr;
  PreprocessOptions preprocess;
  /// --- Open / PTM search (the OMSSA/MSFragger regime) ---------------------
  /// Extra precursor window beyond tolerance_da, applied on both sides: a
  /// candidate of mass M matches hypothesis mass m iff
  /// M ∈ [m − window_below(), m + window_above()]. Zero (with no PTM rules)
  /// is the paper's narrow-window search, bit-for-bit unchanged.
  double open_window_da = 0.0;
  /// Variable-modification rules: the precursor window additionally widens
  /// by the extreme total deltas any variant can carry (ptm_delta_range with
  /// max_ptm_mods), so a query whose precursor was shifted by modifications
  /// still reaches its unmodified base peptide. Candidates are scored on the
  /// unmodified b/y ladder (the open-search convention: fragments away from
  /// the modified site still match).
  std::vector<Ptm> ptms;
  std::size_t max_ptm_mods = 2;
  /// Open-search vote gate: a candidate inside the widened window is fully
  /// scored only when at least this many of its theoretical ions land in
  /// occupied query bins (exactly shared_peak_count). Part of the open-
  /// search *definition* — both the indexed and the exhaustive candidate
  /// sources apply it, which is what makes them provably hit-identical.
  /// Must be ≥ 1: a zero-vote candidate is invisible to an inverted index.
  std::size_t min_fragment_votes = 2;
  /// Which candidate source the open-search kernel uses (narrow-window
  /// search always merge-joins the CandidateIndex and ignores this).
  CandidateSourceKind candidate_source = CandidateSourceKind::kAuto;

  bool open_search() const { return open_window_da > 0.0 || !ptms.empty(); }
  /// How far below a hypothesis mass candidate masses may lie (a +Δ variant
  /// is observed Δ above its base peptide, so positive deltas widen below).
  double window_below() const {
    const PtmDeltaRange range = ptm_delta_range(ptms, max_ptm_mods);
    return tolerance_da + open_window_da + std::max(0.0, range.max_total);
  }
  double window_above() const {
    const PtmDeltaRange range = ptm_delta_range(ptms, max_ptm_mods);
    return tolerance_da + open_window_da + std::max(0.0, -range.min_total);
  }
  /// The effective open-search vote gate: composes with the prefilter knob
  /// (a survivor of the votes gate must also survive the configured
  /// prefilter, and the screen is the same shared-peak count).
  std::size_t vote_gate() const {
    return std::max(min_fragment_votes,
                    prefilter ? prefilter_min_shared_peaks : std::size_t{0});
  }

  /// Intra-rank threading of the scoring kernel: one simulated rank fans its
  /// shard search over this many OS threads (index blocks, per-thread top-τ
  /// lists merged under the total hit order). Purely an implementation-level
  /// speedup — hits and virtual-clock counters are identical for every
  /// setting. The default is compile-time configurable so CI can run the
  /// whole suite threaded (-DMSPAR_KERNEL_THREADS_DEFAULT=4).
  std::size_t kernel_threads = MSPAR_DEFAULT_KERNEL_THREADS;
};

}  // namespace msp
