// Query-transport ablation.
//
// Section II-B weighs two designs: transport the database to the query's
// processor (chosen — Algorithms A/B), or transport the query to the data
// ("the query transport model can help, especially since m is expected to
// be much smaller than n. However ... a query can get processed in multiple
// processor locations, and the results have to be sent to one root
// processor for merging"). We implement the rejected design so the
// trade-off can be measured: static database shards, query blocks rotate
// around the ring, and a final all-to-all merge ships every rank's partial
// top-τ lists back to each query's owner.
#pragma once

#include <string>
#include <vector>

#include "core/algorithm_a.hpp"
#include "core/config.hpp"
#include "simmpi/runtime.hpp"
#include "spectra/spectrum.hpp"

namespace msp {

struct QueryTransportOptions {
  bool fence_per_iteration = true;
  std::size_t memory_budget_bytes = 0;
};

ParallelRunResult run_query_transport(
    const sim::Runtime& runtime, const std::string& fasta_image,
    const std::vector<Spectrum>& queries, const SearchConfig& config,
    const QueryTransportOptions& options = {});

}  // namespace msp
