#include "core/protein_inference.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "util/error.hpp"

namespace msp {

std::vector<ProteinEvidence> infer_proteins(const QueryHits& hits,
                                            const InferenceOptions& options) {
  MSP_CHECK_MSG(options.max_hit_rank >= 1, "max_hit_rank must be >= 1");
  struct Working {
    ProteinEvidence evidence;
    std::set<std::string> peptides;
  };
  std::map<std::string, Working> by_protein;

  for (const auto& query_hits : hits) {
    const std::size_t depth = std::min(options.max_hit_rank, query_hits.size());
    for (std::size_t h = 0; h < depth; ++h) {
      const Hit& hit = query_hits[h];
      if (hit.score < options.min_score) continue;
      Working& working = by_protein[hit.protein_id];
      if (working.evidence.psm_count == 0) {
        working.evidence.protein_id = hit.protein_id;
        working.evidence.best_score = hit.score;
      }
      ++working.evidence.psm_count;
      working.evidence.best_score =
          std::max(working.evidence.best_score, hit.score);
      working.evidence.score_sum += hit.score;
      working.peptides.insert(hit.peptide);
    }
  }

  std::vector<ProteinEvidence> proteins;
  proteins.reserve(by_protein.size());
  for (auto& [id, working] : by_protein) {
    working.evidence.distinct_peptides = working.peptides.size();
    proteins.push_back(std::move(working.evidence));
  }
  std::sort(proteins.begin(), proteins.end());
  return proteins;
}

std::vector<ProteinEvidence> confident_proteins(
    const QueryHits& hits, std::size_t min_distinct_peptides,
    const InferenceOptions& options) {
  std::vector<ProteinEvidence> proteins = infer_proteins(hits, options);
  std::erase_if(proteins, [&](const ProteinEvidence& evidence) {
    return evidence.distinct_peptides < min_distinct_peptides;
  });
  return proteins;
}

}  // namespace msp
