// Global shard mass map: the routing layer for the ring algorithms.
//
// Algorithm B's core observation — a mass-partitioned database means only a
// sub-range of processors can hold candidates for a query — also applies to
// the *unsorted* sharding of Algorithm A and the serving ring, just in a
// weaker form: any shard can be asked about any mass, but at narrow
// precursor tolerance most (query, shard) pairs provably match nothing. A
// MassHistogram summarizes one shard's CandidateIndex as a bucketed
// occupancy map over candidate mass; a ShardMassMap is all p histograms,
// replicated on every rank. A routing check asks "could shard j hold ANY
// candidate within ±δ of ANY of these hypothesis masses?" — a conservative
// question: "no" is a proof (the ring step can be skipped, fetch and
// scoring included, without touching the hits), "yes" merely means the
// shard must be visited as before. Skipping is an optimization, never a
// correctness decision.
//
// Determinism: histograms are built at pack time from the (deterministic)
// CandidateIndex and exchanged collectively before the first ring step, so
// every rank holds byte-identical map state. Routing decisions are pure
// functions of (map, hypothesis masses, δ) — replicated controllers
// evaluating them at fence boundaries agree without any control messages
// (DESIGN.md §5h).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "core/candidate_index.hpp"

namespace msp {

namespace wire {
class Writer;
class Reader;
}  // namespace wire

namespace sim {
class Comm;
}  // namespace sim

/// Default histogram bucket width in daltons. Candidate masses run a few
/// per dalton per shard at test scale, so the bucket grid must be finer
/// than the narrow precursor windows (~0.02–0.05 Da) routing is meant to
/// exploit; 0.01 Da keeps the sparse encoding proportional to the number
/// of candidates, not the mass range.
inline constexpr double kDefaultRouteBucketDa = 0.01;

/// One nonzero bucket of a shard's mass histogram (sparse encoding).
struct MassBucket {
  std::uint32_t index = 0;  ///< bucket ordinal: floor((mass - min) / width)
  std::uint32_t count = 0;  ///< candidates whose mass lands in the bucket
};

/// Bucketed occupancy map over one shard's candidate masses. Buckets are
/// stored sparsely (nonzero only, index-ascending), so wire and memory cost
/// scale with the candidates actually present.
struct MassHistogram {
  double bucket_width = kDefaultRouteBucketDa;
  double min_mass = 0.0;          ///< lightest candidate mass (bucket 0 floor)
  std::uint64_t bucket_count = 0; ///< grid extent; 0 for an empty shard
  std::vector<MassBucket> buckets;

  /// Summarize `index` (entries are mass-ascending, so this is one linear
  /// pass). An empty index yields an empty histogram — which routes as
  /// "never needed", the correct answer for a shard with no candidates.
  static MassHistogram build(const CandidateIndex& index,
                             double width = kDefaultRouteBucketDa);

  /// Summarize an ascending mass array (the serving ring's band layout:
  /// one mass per CandidateRecord, record-array order). Same encoding as
  /// the index overload; `masses` must be non-decreasing.
  static MassHistogram build(std::span<const double> masses,
                             double width = kDefaultRouteBucketDa);

  bool empty() const { return buckets.empty(); }
  std::uint64_t total() const;

  /// Conservative occupancy test for the closed mass interval [lo, hi]:
  /// false proves no candidate mass lies inside; true may be a false
  /// positive. The grid test widens the interval by one bucket on each side
  /// so floating-point boundary cases always err toward "occupied".
  bool occupied(double lo, double hi) const;

  /// Conservative index range [first, last) into the mass-ascending array
  /// this histogram summarizes: every element whose mass lies in [lo, hi]
  /// has index in the range (the range may over-cover by up to one bucket
  /// plus the ±1-bucket widening occupied() uses, never under-cover).
  /// Computed by prefix sums over the sparse bucket counts, so it is only
  /// exact when counts never saturated — the ring checks total() against
  /// the band size at construction. Empty histogram → {0, 0}.
  std::pair<std::uint64_t, std::uint64_t> record_range(double lo,
                                                       double hi) const;
};

/// Append `histogram` as a versioned, magic-tagged record (the shard pack
/// trailer; also the exchange payload).
void put_histogram(wire::Writer& writer, const MassHistogram& histogram);

/// Parse a histogram record, validating magic, version, and invariants
/// (positive finite width, index-ascending nonzero buckets inside the
/// grid). Throws IoError with a specific message on any violation.
MassHistogram get_histogram(wire::Reader& reader);

/// True when the reader is positioned at a histogram record's magic.
bool peek_histogram(wire::Reader& reader);

/// All p shard histograms, replicated identically on every rank. A
/// default-constructed map knows nothing and routes everything — the legacy
/// fallback when shard images carry no histogram record.
class ShardMassMap {
 public:
  ShardMassMap() = default;
  explicit ShardMassMap(std::vector<std::optional<MassHistogram>> shards)
      : shards_(std::move(shards)) {}

  /// Collective: every rank broadcasts its local shard's histogram and
  /// collects the other p−1, leaving identical map state everywhere. Must
  /// run before the first ring step (and before any crash can fire), like
  /// the replica pull.
  static ShardMassMap exchange(sim::Comm& comm, const MassHistogram& local);

  int shard_count() const { return static_cast<int>(shards_.size()); }
  bool known(int shard) const;
  const MassHistogram* histogram(int shard) const;

  /// True when at least one shard is known — i.e. routing can ever skip.
  bool routes() const;

  /// Must the ring visit `shard` for queries with these hypothesis masses
  /// at tolerance ±`tolerance_da`? Unknown shards always answer true
  /// (route-everything fallback); known-empty shards always answer false.
  bool needed(int shard, std::span<const double> hypothesis_masses,
              double tolerance_da) const;

  /// Asymmetric window form, for open/PTM search: a candidate of mass M
  /// matches hypothesis mass m iff M ∈ [m − below, m + above] (a variant
  /// carrying +Δ of modification mass is observed Δ *above* its base
  /// peptide, so the window below m widens by the maximum positive Δ and
  /// the window above by the maximum negative one). Routing must widen by
  /// exactly the kernel's SearchConfig::window_below()/window_above() or
  /// the PR-6 skip proof no longer covers modified precursors.
  bool needed(int shard, std::span<const double> hypothesis_masses,
              double below_da, double above_da) const;

 private:
  std::vector<std::optional<MassHistogram>> shards_;
};

}  // namespace msp
