#include "core/packdb.hpp"

#include <cmath>
#include <string>

#include "core/wire.hpp"
#include "io/wire_record.hpp"

namespace msp {

namespace {

// Leads an indexed-shard image. A legacy image starts with the protein
// count; a count this large would need ~5 exabytes of ids alone, so the two
// formats cannot collide in practice.
// "MSPARIDX" in ASCII.
constexpr std::uint64_t kIndexedShardMagic = 0x4D53504152494458ull;

void put_proteins(wire::Writer& writer, const ProteinDatabase& db) {
  writer.put_u64(db.proteins.size());
  for (const Protein& protein : db.proteins) {
    writer.put_string(protein.id);
    writer.put_string(protein.residues);
  }
}

ProteinDatabase get_proteins(wire::Reader& reader) {
  ProteinDatabase db;
  const std::uint64_t count = reader.get_u64();
  db.proteins.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    Protein protein;
    protein.id = reader.get_string();
    protein.residues = reader.get_string();
    db.proteins.push_back(std::move(protein));
  }
  return db;
}

// Index entries go onto the wire field-by-field (never as raw structs:
// padding bytes would make byte-identical traces depend on stack garbage).
void put_index(wire::Writer& writer, const CandidateIndex& index) {
  const CandidateIndexParams& params = index.params();
  writer.put_u8(static_cast<std::uint8_t>(params.mode));
  writer.put_u32(params.min_length);
  writer.put_u32(params.max_length);
  writer.put_u32(params.missed_cleavages);
  writer.put_u64(index.size());
  writer.reserve(index.size() *
                 (sizeof(double) + 3 * sizeof(std::uint32_t) + 1));
  for (const IndexedCandidate& entry : index.entries()) {
    writer.put_double(entry.mass);
    writer.put_u32(entry.protein);
    writer.put_u32(entry.offset);
    writer.put_u32(entry.length);
    writer.put_u8(static_cast<std::uint8_t>(entry.end));
  }
}

CandidateIndex get_index(wire::Reader& reader) {
  CandidateIndexParams params;
  params.mode = static_cast<CandidateMode>(reader.get_u8());
  params.min_length = reader.get_u32();
  params.max_length = reader.get_u32();
  params.missed_cleavages = reader.get_u32();
  const std::uint64_t count = reader.get_u64();
  std::vector<IndexedCandidate> entries;
  entries.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    IndexedCandidate entry;
    entry.mass = reader.get_double();
    entry.protein = reader.get_u32();
    entry.offset = reader.get_u32();
    entry.length = reader.get_u32();
    entry.end = static_cast<FragmentEnd>(reader.get_u8());
    entries.push_back(entry);
  }
  return CandidateIndex(params, std::move(entries));
}

}  // namespace

std::vector<char> pack_database(const ProteinDatabase& db) {
  wire::Writer writer;
  put_proteins(writer, db);
  return writer.take();
}

std::vector<char> pack_database(const ProteinDatabase& db,
                                const CandidateIndex& index) {
  wire::Writer writer;
  wire::put_record_magic(writer, kIndexedShardMagic);
  put_proteins(writer, db);
  put_index(writer, index);
  return writer.take();
}

std::vector<char> pack_database(const ProteinDatabase& db,
                                const CandidateIndex& index,
                                const FragmentIndex& fragment) {
  wire::Writer writer;
  wire::put_record_magic(writer, kIndexedShardMagic);
  put_proteins(writer, db);
  put_index(writer, index);
  put_fragment_index(writer, fragment);
  return writer.take();
}

std::vector<char> pack_database(const ProteinDatabase& db,
                                const CandidateIndex& index,
                                const MassHistogram& histogram) {
  wire::Writer writer;
  wire::put_record_magic(writer, kIndexedShardMagic);
  put_proteins(writer, db);
  put_index(writer, index);
  put_histogram(writer, histogram);
  return writer.take();
}

std::vector<char> pack_database(const ProteinDatabase& db,
                                const CandidateIndex& index,
                                const MassHistogram& histogram,
                                const FragmentIndex& fragment) {
  wire::Writer writer;
  wire::put_record_magic(writer, kIndexedShardMagic);
  put_proteins(writer, db);
  put_index(writer, index);
  put_histogram(writer, histogram);
  put_fragment_index(writer, fragment);
  return writer.take();
}

PackedShard unpack_shard(std::span<const char> bytes) {
  wire::Reader reader(bytes.data(), bytes.size());
  PackedShard shard;
  if (wire::peek_record(reader, kIndexedShardMagic)) {
    reader.get_u64();  // consume the magic
    shard.db = get_proteins(reader);
    shard.index = get_index(reader);
    shard.has_index = true;
    // Optional trailers, each magic-discriminated: the shard's mass
    // histogram, then its fragment-ion index. Absent in legacy images
    // (routing then treats the shard as unknown — visit always — and open
    // search falls back to exhaustive enumeration).
    if (peek_histogram(reader)) {
      shard.histogram = get_histogram(reader);
      shard.has_histogram = true;
    }
    if (peek_fragment_index(reader)) {
      shard.fragment = get_fragment_index(reader);
      shard.has_fragment = true;
    }
  } else {
    shard.db = get_proteins(reader);
  }
  if (!reader.exhausted())
    throw IoError("packed database has trailing bytes");
  return shard;
}

PackedShard unpack_shard(const std::vector<char>& bytes) {
  return unpack_shard(std::span<const char>(bytes.data(), bytes.size()));
}

ProteinDatabase unpack_database(std::span<const char> bytes) {
  return unpack_shard(bytes).db;
}

ProteinDatabase unpack_database(const std::vector<char>& bytes) {
  return unpack_database(std::span<const char>(bytes.data(), bytes.size()));
}

std::vector<char> pack_spectra(std::span<const Spectrum> spectra) {
  wire::Writer writer;
  writer.put_u64(spectra.size());
  for (const Spectrum& spectrum : spectra) {
    writer.put_string(spectrum.title());
    writer.put_double(spectrum.precursor_mz());
    writer.put_i32(spectrum.charge());
    writer.put_u32(static_cast<std::uint32_t>(spectrum.peaks().size()));
    for (const Peak& peak : spectrum.peaks()) {
      writer.put_double(peak.mz);
      writer.put_double(peak.intensity);
    }
  }
  return writer.take();
}

std::vector<Spectrum> unpack_spectra(const std::vector<char>& bytes) {
  wire::Reader reader(bytes);
  std::vector<Spectrum> spectra;
  const std::uint64_t count = reader.get_u64();
  // Every spectrum record is at least 24 bytes (empty title, zero peaks);
  // bound the reserve by what the payload can actually hold.
  if (count > reader.remaining() / 24)
    throw IoError("packed spectra: spectrum count exceeds payload");
  spectra.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    std::string title = reader.get_string();
    const double precursor = reader.get_double();
    const int charge = reader.get_i32();
    const std::uint32_t peak_count = reader.get_u32();
    // The Spectrum constructor treats nonpositive/NaN peaks as filterable
    // instrument noise, but a pack is machine-written: out-of-domain values
    // here are corruption, and some (an infinite or absurd m/z with positive
    // intensity) would survive the noise filter only to drive the binned
    // grid allocation — floor(max_mz / bin_width) bins — out of memory.
    // Reject at load with the IoError corruption path instead.
    if (!std::isfinite(precursor) || precursor <= 0.0)
      throw IoError("packed spectra: precursor m/z must be positive and "
                    "finite");
    if (charge < 1)
      throw IoError("packed spectra: charge must be >= 1");
    if (peak_count > reader.remaining() / (2 * sizeof(double)))
      throw IoError("packed spectra: peak count exceeds payload");
    std::vector<Peak> peaks;
    peaks.reserve(peak_count);
    for (std::uint32_t k = 0; k < peak_count; ++k) {
      Peak peak;
      peak.mz = reader.get_double();
      peak.intensity = reader.get_double();
      if (!std::isfinite(peak.mz) || peak.mz <= 0.0 ||
          peak.mz > kMaxPackedPeakMz)
        throw IoError("packed spectra: peak m/z outside (0, " +
                      std::to_string(kMaxPackedPeakMz) + "]");
      if (!std::isfinite(peak.intensity) || peak.intensity < 0.0)
        throw IoError("packed spectra: peak intensity must be finite and "
                      "non-negative");
      peaks.push_back(peak);
    }
    spectra.emplace_back(std::move(peaks), precursor, charge, std::move(title));
  }
  if (!reader.exhausted()) throw IoError("packed spectra have trailing bytes");
  return spectra;
}

}  // namespace msp
