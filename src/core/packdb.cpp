#include "core/packdb.hpp"

#include "core/wire.hpp"

namespace msp {

std::vector<char> pack_database(const ProteinDatabase& db) {
  wire::Writer writer;
  writer.put_u64(db.proteins.size());
  for (const Protein& protein : db.proteins) {
    writer.put_string(protein.id);
    writer.put_string(protein.residues);
  }
  return writer.take();
}

ProteinDatabase unpack_database(std::span<const char> bytes) {
  wire::Reader reader(bytes.data(), bytes.size());
  ProteinDatabase db;
  const std::uint64_t count = reader.get_u64();
  db.proteins.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    Protein protein;
    protein.id = reader.get_string();
    protein.residues = reader.get_string();
    db.proteins.push_back(std::move(protein));
  }
  if (!reader.exhausted())
    throw IoError("packed database has trailing bytes");
  return db;
}

ProteinDatabase unpack_database(const std::vector<char>& bytes) {
  return unpack_database(std::span<const char>(bytes.data(), bytes.size()));
}

std::vector<char> pack_spectra(std::span<const Spectrum> spectra) {
  wire::Writer writer;
  writer.put_u64(spectra.size());
  for (const Spectrum& spectrum : spectra) {
    writer.put_string(spectrum.title());
    writer.put_double(spectrum.precursor_mz());
    writer.put_i32(spectrum.charge());
    writer.put_u32(static_cast<std::uint32_t>(spectrum.peaks().size()));
    for (const Peak& peak : spectrum.peaks()) {
      writer.put_double(peak.mz);
      writer.put_double(peak.intensity);
    }
  }
  return writer.take();
}

std::vector<Spectrum> unpack_spectra(const std::vector<char>& bytes) {
  wire::Reader reader(bytes);
  std::vector<Spectrum> spectra;
  const std::uint64_t count = reader.get_u64();
  spectra.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    std::string title = reader.get_string();
    const double precursor = reader.get_double();
    const int charge = reader.get_i32();
    const std::uint32_t peak_count = reader.get_u32();
    std::vector<Peak> peaks;
    peaks.reserve(peak_count);
    for (std::uint32_t k = 0; k < peak_count; ++k) {
      Peak peak;
      peak.mz = reader.get_double();
      peak.intensity = reader.get_double();
      peaks.push_back(peak);
    }
    spectra.emplace_back(std::move(peaks), precursor, charge, std::move(title));
  }
  if (!reader.exhausted()) throw IoError("packed spectra have trailing bytes");
  return spectra;
}

}  // namespace msp
