// Algorithm B (Figure 3 of the paper): Algorithm A plus a parallel
// counting-sort preprocessing step that orders the database by parent m/z,
// so each rank only transports shards from its "sender group".
//
// Candidates for query q can only come from sequences d with
// m(d) ≥ m(q) − δ (a prefix/suffix cannot outweigh its parent). After the
// sort, rank i computes m(q)_min over its local queries, locates the lowest
// rank i′ whose m/z range can still contain such sequences, and restricts
// the ring to {i′, ..., p−1}. The local query set is kept sorted by m/z so
// the kernel's binary search prunes per-shard work (step B3's refinement).
#pragma once

#include <string>
#include <vector>

#include "core/algorithm_a.hpp"
#include "core/config.hpp"
#include "core/hit.hpp"
#include "simmpi/runtime.hpp"
#include "spectra/spectrum.hpp"

namespace msp {

struct AlgorithmBOptions {
  bool mask = true;
  bool fence_per_iteration = true;
  std::size_t memory_budget_bytes = 0;
};

struct AlgorithmBResult {
  sim::RunReport report;
  QueryHits hits;
  std::uint64_t candidates = 0;
  double max_sort_seconds = 0.0;   ///< Table IV's "Sorting time" column
  double mean_shards_visited = 0.0;  ///< sender-group size actually used
};

AlgorithmBResult run_algorithm_b(const sim::Runtime& runtime,
                                 const std::string& fasta_image,
                                 const std::vector<Spectrum>& queries,
                                 const SearchConfig& config,
                                 const AlgorithmBOptions& options = {});

}  // namespace msp
