// Sub-group hybrid — the extension the paper's Discussion proposes for
// "medium range inputs": "it could be worth exploring an extension of our
// approach in which processors can divide themselves into smaller
// sub-groups, where the database is partitioned within each sub-group and
// the query set is partitioned across sub-groups."
//
// With g sub-groups of size p/g each:
//   * every sub-group holds the WHOLE database, partitioned across its own
//     members → per-rank memory O(N·g/p + m/p);
//   * queries are partitioned across sub-groups → each ring is only p/g
//     long, so each shard transfer moves g× more bytes but there are g×
//     fewer fenced iterations (less latency/sync, better masking);
//   * g = 1 degenerates to Algorithm A; g = p degenerates to the
//     master–worker baseline's memory profile (replicated database).
// The bench sweep over g exposes the memory/run-time trade-off the paper
// anticipated.
#pragma once

#include <string>
#include <vector>

#include "core/algorithm_a.hpp"
#include "core/config.hpp"
#include "simmpi/runtime.hpp"
#include "spectra/spectrum.hpp"

namespace msp {

struct HybridOptions {
  /// Number of sub-groups g; must divide p. 0 = auto (√p rounded to a
  /// divisor, balancing ring length against replication).
  int groups = 0;
  bool mask = true;
  bool fence_per_iteration = true;
  std::size_t memory_budget_bytes = 0;
};

struct HybridResult {
  sim::RunReport report;
  QueryHits hits;
  std::uint64_t candidates = 0;
  int groups_used = 0;
};

/// Largest divisor of p that is <= sqrt(p) (the auto choice for g).
int default_group_count(int p);

HybridResult run_algorithm_hybrid(const sim::Runtime& runtime,
                                  const std::string& fasta_image,
                                  const std::vector<Spectrum>& queries,
                                  const SearchConfig& config,
                                  const HybridOptions& options = {});

}  // namespace msp
