#include "core/sortmz.hpp"

#include <algorithm>
#include <cmath>

#include "core/packdb.hpp"
#include "mass/amino_acid.hpp"
#include "util/error.hpp"

namespace msp {

std::uint32_t mz_bucket(const Protein& protein) {
  const double mz = mz_from_mass(peptide_mass(protein.residues), 1);
  MSP_CHECK_MSG(mz >= 0.0 && mz < 3.0e5,
                "parent m/z out of the paper's bounded range: " << mz);
  return static_cast<std::uint32_t>(mz);
}

SortedShard parallel_sort_by_mz(sim::Comm& comm, const ProteinDatabase& local) {
  const int p = comm.size();
  const auto& cost = comm.compute_model();
  const double sort_start = comm.clock().now();

  // ---- S1: local m/z values and the global maximum bucket ----
  std::vector<std::uint32_t> buckets;
  buckets.reserve(local.proteins.size());
  for (const Protein& protein : local.proteins)
    buckets.push_back(mz_bucket(protein));
  comm.clock().charge_compute(static_cast<double>(local.proteins.size()) *
                              cost.seconds_per_mz);
  const double global_max = comm.allreduce_max(
      buckets.empty() ? 0.0
                      : static_cast<double>(*std::max_element(
                            buckets.begin(), buckets.end())));
  const auto array_size = static_cast<std::size_t>(global_max) + 1;

  // ---- S2: global count array (weighted by residues) and redistribution ----
  std::vector<std::uint64_t> counts(array_size, 0);
  for (std::size_t i = 0; i < local.proteins.size(); ++i)
    counts[buckets[i]] += local.proteins[i].length();
  comm.allreduce_sum(counts);

  // Pivots: walk the global count array once; bucket v belongs to the rank
  // whose cumulative residue target it falls under. All ranks compute the
  // identical owner table (no further communication needed).
  std::uint64_t total_residues = 0;
  for (std::uint64_t c : counts) total_residues += c;
  std::vector<std::uint32_t> owner(array_size, 0);
  std::vector<MzBoundary> boundaries(static_cast<std::size_t>(p));
  {
    std::uint64_t running = 0;
    std::uint32_t rank = 0;
    bool rank_has_values = false;
    for (std::size_t v = 0; v < array_size; ++v) {
      // Close rank r once it holds its cumulative share (r+1)·total/p.
      while (rank + 1 < static_cast<std::uint32_t>(p) && rank_has_values &&
             running >= (static_cast<std::uint64_t>(rank) + 1) *
                            total_residues / static_cast<std::uint64_t>(p)) {
        ++rank;
        rank_has_values = false;
      }
      owner[v] = rank;
      if (counts[v] > 0) {
        if (!rank_has_values)
          boundaries[rank].begin_mz = static_cast<double>(v);
        boundaries[rank].end_mz = static_cast<double>(v) + 1.0;
        rank_has_values = true;
      }
      running += counts[v];
    }
  }
  // Ranks that received no buckets keep their zero-width default; give them
  // a consistent empty range at the previous boundary so lookups stay sane.
  for (int r = 1; r < p; ++r) {
    if (boundaries[static_cast<std::size_t>(r)].end_mz == 0.0) {
      boundaries[static_cast<std::size_t>(r)].begin_mz =
          boundaries[static_cast<std::size_t>(r - 1)].end_mz;
      boundaries[static_cast<std::size_t>(r)].end_mz =
          boundaries[static_cast<std::size_t>(r - 1)].end_mz;
    }
  }

  // Pack per-destination sequences and exchange (MPI_Alltoallv).
  std::vector<ProteinDatabase> outgoing(static_cast<std::size_t>(p));
  for (std::size_t i = 0; i < local.proteins.size(); ++i)
    outgoing[owner[buckets[i]]].proteins.push_back(local.proteins[i]);
  std::vector<std::vector<char>> send(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r)
    send[static_cast<std::size_t>(r)] =
        pack_database(outgoing[static_cast<std::size_t>(r)]);
  const std::vector<std::vector<char>> received = comm.alltoallv(send);

  SortedShard result;
  for (const auto& payload : received) {
    ProteinDatabase part = unpack_database(payload);
    for (Protein& protein : part.proteins)
      result.shard.proteins.push_back(std::move(protein));
  }
  // Local final ordering within the owned m/z range (cheap integer keys,
  // precomputed once — mz_bucket is O(sequence length)).
  std::vector<std::pair<std::uint32_t, std::uint32_t>> keyed;
  keyed.reserve(result.shard.proteins.size());
  for (std::uint32_t i = 0; i < result.shard.proteins.size(); ++i)
    keyed.emplace_back(mz_bucket(result.shard.proteins[i]), i);
  std::stable_sort(keyed.begin(), keyed.end());
  ProteinDatabase ordered;
  ordered.proteins.reserve(result.shard.proteins.size());
  for (const auto& [bucket, i] : keyed)
    ordered.proteins.push_back(std::move(result.shard.proteins[i]));
  result.shard = std::move(ordered);
  comm.clock().charge_compute(
      static_cast<double>(result.shard.proteins.size()) * cost.seconds_per_mz *
      2.0);
  result.boundaries = std::move(boundaries);
  result.sort_seconds = comm.clock().now() - sort_start;
  return result;
}

}  // namespace msp
