#include "core/candidate_record.hpp"

#include <algorithm>
#include <cstring>

#include "io/wire_record.hpp"
#include "simmpi/comm.hpp"
#include "util/error.hpp"

namespace msp {
namespace {

CandidateRecord make_record(const Protein& protein, std::uint32_t offset,
                            std::uint16_t length, FragmentEnd end,
                            double mass) {
  MSP_CHECK_MSG(protein.id.size() < sizeof(CandidateRecord{}.protein_id),
                "candidate records require protein ids < 24 chars, got '"
                    << protein.id << "'");
  CandidateRecord record;
  record.mass = mass;
  std::memcpy(record.protein_id, protein.id.data(), protein.id.size());
  std::memcpy(record.peptide, protein.residues.data() + offset, length);
  record.offset = offset;
  record.length = length;
  record.end = static_cast<std::uint8_t>(end);
  return record;
}

}  // namespace

std::vector<CandidateRecord> enumerate_candidate_records(
    const ProteinDatabase& db, const SearchConfig& config, double mass_floor,
    double mass_ceil) {
  MSP_CHECK_MSG(config.max_candidate_length <
                    sizeof(CandidateRecord{}.peptide),
                "candidate records cap peptide length at 63 residues");
  std::vector<CandidateRecord> records;
  for (const Protein& protein : db.proteins) {
    const std::size_t len = protein.residues.size();
    if (len < config.min_candidate_length) continue;
    const FragmentMassIndex index(protein.residues);
    const std::size_t max_k = std::min(len, config.max_candidate_length);
    for (std::size_t k = config.min_candidate_length; k <= max_k; ++k) {
      const double mass = index.prefix_mass(k);
      if (mass > mass_ceil) break;
      if (mass < mass_floor) continue;
      records.push_back(make_record(protein, 0, static_cast<std::uint16_t>(k),
                                    FragmentEnd::kPrefix, mass));
    }
    for (std::size_t k = config.min_candidate_length; k <= max_k; ++k) {
      if (k == len) break;  // full sequence already counted as a prefix
      const double mass = index.suffix_mass(k);
      if (mass > mass_ceil) break;
      if (mass < mass_floor) continue;
      records.push_back(make_record(protein,
                                    static_cast<std::uint32_t>(len - k),
                                    static_cast<std::uint16_t>(k),
                                    FragmentEnd::kSuffix, mass));
    }
  }
  return records;
}

bool candidate_record_less(const CandidateRecord& a,
                           const CandidateRecord& b) {
  if (a.mass != b.mass) return a.mass < b.mass;
  const int id_cmp = std::strncmp(a.protein_id, b.protein_id,
                                  sizeof(a.protein_id));
  if (id_cmp != 0) return id_cmp < 0;
  if (a.offset != b.offset) return a.offset < b.offset;
  return a.length < b.length;
}

std::vector<CandidateRecord> sort_candidate_records_by_mass(
    sim::Comm& comm, std::vector<CandidateRecord> local) {
  const int p = comm.size();
  double local_max = 0.0;
  for (const CandidateRecord& record : local)
    local_max = std::max(local_max, record.mass);
  const double global_max = comm.allreduce_max(local_max);
  const auto array_size = static_cast<std::size_t>(global_max) + 2;

  std::vector<std::uint64_t> counts(array_size, 0);
  for (const CandidateRecord& record : local)
    ++counts[static_cast<std::size_t>(record.mass)];
  comm.allreduce_sum(counts);

  std::uint64_t total = 0;
  for (std::uint64_t c : counts) total += c;
  std::vector<std::uint32_t> owner(array_size, 0);
  {
    std::uint64_t running = 0;
    std::uint32_t rank = 0;
    for (std::size_t v = 0; v < array_size; ++v) {
      while (rank + 1 < static_cast<std::uint32_t>(p) && total > 0 &&
             running >= (static_cast<std::uint64_t>(rank) + 1) * total /
                            static_cast<std::uint64_t>(p)) {
        ++rank;
      }
      owner[v] = rank;
      running += counts[v];
    }
  }

  std::vector<std::vector<char>> send(static_cast<std::size_t>(p));
  for (const CandidateRecord& record : local) {
    auto& payload = send[owner[static_cast<std::size_t>(record.mass)]];
    const char* bytes = reinterpret_cast<const char*>(&record);
    payload.insert(payload.end(), bytes, bytes + sizeof(CandidateRecord));
  }
  const auto received = comm.alltoallv(send);

  std::vector<CandidateRecord> sorted;
  std::vector<CandidateRecord> decoded;
  for (const auto& payload : received) {
    wire::checked_array_copy(std::span<const char>(payload), decoded,
                             "exchanged candidate payload");
    sorted.insert(sorted.end(), decoded.begin(), decoded.end());
  }
  std::sort(sorted.begin(), sorted.end(), candidate_record_less);
  return sorted;
}

}  // namespace msp
