// Candidate-store strategy — the second extension the paper's Discussion
// proposes: "it may be worth exploring an alternative strategy in which
// candidates, and not the database sequences, are stored in-memory and are
// communicated on demand to worker processors. This strategy could
// drastically reduce the overall computation time. While current
// approaches are not designed to store such large magnitudes of candidates
// in memory, our algorithm, because of its space-optimality, makes the
// investigation of this alternative approach feasible. Furthermore, the
// sorting version of our approach (Algorithm B) could prove more useful
// under this setting."
//
// Realization:
//   1. Every rank enumerates its chunk's candidate fragments (prefixes and
//      suffixes in the global query-mass window) into fixed-size records.
//   2. The records are parallel counting-sorted by mass across ranks —
//      Algorithm B's machinery applied to candidates instead of sequences.
//   3. Query processing fetches, on demand, only the record ranges whose
//      mass window matches (partial one-sided gets guided by each rank's
//      mass directory) — no whole-database rotation at all.
// The trade: candidate generation cost is paid once per candidate (not
// once per evaluation), and transfers shrink to the matching ranges; in
// exchange the store is much larger than the raw sequences — measured by
// bench_candidate_store.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/algorithm_a.hpp"
#include "core/candidate_record.hpp"
#include "core/config.hpp"
#include "simmpi/runtime.hpp"
#include "spectra/spectrum.hpp"

namespace msp {

struct CandidateStoreOptions {
  bool fence_per_iteration = true;  ///< kept for symmetry; query phase is
                                    ///  demand-driven and does not fence
  std::size_t memory_budget_bytes = 0;
  /// Directory resolution: each rank publishes this many (mass → record
  /// index) samples so requesters can bound partial fetches.
  std::size_t directory_entries = 256;
};

struct CandidateStoreResult {
  sim::RunReport report;
  QueryHits hits;
  std::uint64_t candidates = 0;        ///< evaluations (scored records)
  std::uint64_t stored_candidates = 0; ///< records built into the store
  double build_seconds = 0.0;          ///< max over ranks (store + sort)
};

CandidateStoreResult run_candidate_store(
    const sim::Runtime& runtime, const std::string& fasta_image,
    const std::vector<Spectrum>& queries, const SearchConfig& config,
    const CandidateStoreOptions& options = {});

}  // namespace msp
