// The MSPolygraph baseline (steps S1–S4 of Section II-A): master–worker
// parallelization with the database fully replicated in every worker's
// memory — O(N) space per processor, which is exactly the limitation the
// paper's Algorithms A/B remove. Included as the comparison baseline for
// the space benchmark and the validation suite.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/algorithm_a.hpp"
#include "core/config.hpp"
#include "simmpi/runtime.hpp"
#include "spectra/spectrum.hpp"

namespace msp {

struct MasterWorkerOptions {
  /// Queries per demand-driven batch (S2: "small, fixed size batches").
  std::size_t batch_size = 16;
  /// Per-rank memory budget; the baseline hits this at ~O(N), reproducing
  /// the paper's "1.27 million protein sequences per 1 GB" wall.
  std::size_t memory_budget_bytes = 0;
};

/// Run the baseline on runtime.size() ranks (rank 0 is the master; with
/// p == 1 the run degenerates to the serial uni-worker MSPolygraph, per the
/// paper's speedup-baseline convention).
ParallelRunResult run_master_worker(const sim::Runtime& runtime,
                                    const std::string& fasta_image,
                                    const std::vector<Spectrum>& queries,
                                    const SearchConfig& config,
                                    const MasterWorkerOptions& options = {});

}  // namespace msp
