// Candidate sources: where the open-search kernel gets its candidates.
//
// Narrow-window search merge-joins the mass-sorted CandidateIndex against
// the sorted query hypotheses — cheap, because a ±δ window holds a handful
// of candidates. Open/PTM search widens the window by orders of magnitude,
// so candidate *generation* (building each windowed candidate's ion ladder
// just to discover it shares no peaks with the query) dominates. The
// CandidateSource abstraction separates "which windowed candidates deserve
// a full score" from the scoring loop:
//
//  - MassWindowCandidateSource: exhaustive enumeration — builds every
//    windowed candidate's ions and counts its matched ions directly. The
//    ablation baseline, and the fallback for legacy pack images that carry
//    no fragment-index record.
//  - FragmentIndexCandidateSource: walks the query's occupied bins through
//    the shard's FragmentIndex postings, accumulating per-candidate vote
//    counts without touching non-matching candidates at all.
//
// Both compute the *identical* integer votes (shared_peak_count over the
// same default b/y ladder and the same global bin grid) and apply the
// identical gate, so they admit the identical candidate set — the kernel
// above them then produces bit-identical hits whichever source is plugged
// in. A source instance is per-thread scratch: collect() mutates internal
// state and must not be shared across the kernel fan-out.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/candidate_index.hpp"
#include "core/fragment_index.hpp"
#include "core/search_engine.hpp"
#include "mass/peptide.hpp"
#include "scoring/likelihood.hpp"
#include "spectra/theoretical.hpp"

namespace msp {

class CandidateSource {
 public:
  virtual ~CandidateSource() = default;

  /// True when collect() already built each inspected candidate's ion
  /// ladder (and charged stats.ions_built for it) — the scoring loop then
  /// reuses the build instead of charging a second one per survivor.
  virtual bool ions_prebuilt() const = 0;

  /// Gather into `out` (cleared first) the ordinals — ascending, indexing
  /// the CandidateIndex entries — of candidates in the ordinal window
  /// [ordinal_lo, ordinal_hi) whose matched-ion count against `context`
  /// reaches the vote gate. `occupied_bins` lists the bins of
  /// context.binned() with nonzero intensity, ascending (only the
  /// fragment-index source consumes it).
  virtual void collect(const QueryContext& context,
                       std::span<const std::uint32_t> occupied_bins,
                       std::size_t ordinal_lo, std::size_t ordinal_hi,
                       std::vector<std::uint32_t>& out,
                       ShardSearchStats& stats) = 0;
};

/// Exhaustive open search: inspect every candidate in the ordinal window,
/// build its ions (charged per inspection — generation is what makes this
/// source expensive), count matched ions directly, gate.
class MassWindowCandidateSource final : public CandidateSource {
 public:
  MassWindowCandidateSource(const ProteinDatabase& shard,
                            const CandidateIndex& index,
                            std::size_t vote_gate)
      : shard_(shard), index_(index), vote_gate_(vote_gate) {}

  bool ions_prebuilt() const override { return true; }
  void collect(const QueryContext& context,
               std::span<const std::uint32_t> occupied_bins,
               std::size_t ordinal_lo, std::size_t ordinal_hi,
               std::vector<std::uint32_t>& out,
               ShardSearchStats& stats) override;

 private:
  const ProteinDatabase& shard_;
  const CandidateIndex& index_;
  std::size_t vote_gate_;
  FragmentIonWorkspace workspace_;
  TheoreticalOptions ion_options_;
};

/// Indexed open search: accumulate votes by scanning the postings of the
/// query's occupied bins, restricted to the ordinal window (posting lists
/// are ordinal-ascending, so the restriction is one binary search per bin).
/// Candidates sharing no bin with the query are never touched — the
/// 100–1000x candidate inflation of the open window costs postings scans,
/// not ion builds.
class FragmentIndexCandidateSource final : public CandidateSource {
 public:
  FragmentIndexCandidateSource(const FragmentIndex& fragment,
                               std::size_t vote_gate)
      : fragment_(fragment),
        vote_gate_(vote_gate),
        votes_(fragment.candidate_count(), 0) {}

  bool ions_prebuilt() const override { return false; }
  void collect(const QueryContext& context,
               std::span<const std::uint32_t> occupied_bins,
               std::size_t ordinal_lo, std::size_t ordinal_hi,
               std::vector<std::uint32_t>& out,
               ShardSearchStats& stats) override;

 private:
  const FragmentIndex& fragment_;
  std::size_t vote_gate_;
  std::vector<std::uint32_t> votes_;     ///< per-ordinal scratch, reset per call
  std::vector<std::uint32_t> touched_;   ///< ordinals with nonzero votes
};

/// The occupied-bin list collect() wants: every global bin of `binned` with
/// nonzero intensity, ascending — the query-side half of the inverted
/// lookup (ions land in bins via the identical floor(mz / width) grid).
std::vector<std::uint32_t> occupied_bins(const BinnedSpectrum& binned);

}  // namespace msp
