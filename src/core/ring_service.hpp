// Multi-batch ring transport for the online query service.
//
// Algorithm A rotates the sharded database once per query *set*: a batch
// costs a full p-step rotation even when it holds a handful of spectra, so
// batch-at-a-time dispatch pays the per-batch communication floor on every
// batch. The service ring instead rotates *continuously*: one global step
// counter s advances whenever any batch is in flight, rank i scores shard
// (i + s) mod p at step s, and every admitted batch is scored against the
// current shard of the same pass — one shard fetch and one fence per step
// no matter how many batches ride it. A batch admitted at the boundary
// before step s has seen all p shards after step s + p − 1 and publishes at
// that boundary (the incremental top-τ merge makes the result identical to
// a one-shot search regardless of shard order).
//
// Determinism without control messages: the fence at the end of every step
// equalizes all ranks' virtual clocks, so any control decision taken at a
// step boundary from globally known inputs (the arrival schedule, the fault
// schedule, published state) is computed identically by every rank. The
// serving layer (src/serve) exploits that by replicating its controller
// per rank; this class's step() returns the fence-aligned boundary time the
// controllers must use as "now".
//
// Fault compatibility (reusing the PR-1 recovery machinery): crash steps in
// the run's FaultModel index *service ring steps*. A crashing rank becomes
// a fail-stop zombie that keeps matching fences; its blocks of every
// in-flight batch are lost and the orphaned query ids are returned from
// step() so the serving layer re-admits them (they re-enter admission, get
// re-batched, and are re-scored from scratch — same hits, later). Shards
// stay reachable through the ring-successor replica window, exactly as in
// Algorithm A.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/candidate_index.hpp"
#include "core/hit.hpp"
#include "core/packdb.hpp"
#include "core/partition.hpp"
#include "core/search_engine.hpp"
#include "scoring/incremental_topk.hpp"
#include "simmpi/comm.hpp"

namespace msp {

/// One closed batch handed to the ring: ids into the service's global query
/// stream (not necessarily contiguous — shed gaps and crash re-admissions
/// fragment the stream).
struct ServiceBatch {
  std::size_t id = 0;
  std::vector<std::size_t> query_ids;
};

/// What one ring step produced. Every field is a function of fence-aligned
/// state plus the globally known schedules, so all ranks (zombies included)
/// return identical outcomes — the lockstep contract the per-rank
/// controllers rely on.
struct ServiceStepOutcome {
  int step = 0;  ///< the step ordinal just executed
  /// Fence-aligned boundary time this step ended on (including the crash
  /// detection charge when a crash fired). Controllers must use this as
  /// "now" — a zombie's own clock lags the survivors'.
  double boundary_time = 0.0;
  /// Batches whose last shard was scored this step, with the query ids
  /// actually published (ids orphaned by crashes excluded).
  std::vector<std::pair<std::size_t, std::vector<std::size_t>>> published;
  /// Query ids orphaned by ranks that crashed at this step; they must
  /// re-enter admission.
  std::vector<std::size_t> orphaned;
};

class RingService {
 public:
  /// Collective over `comm` (window creation + barrier): loads the rank's
  /// shard, builds/packs its candidate index, exposes it, pulls the ring
  /// predecessor's replica when the fault schedule has crashes, and aligns
  /// all clocks so the first boundary is shared. `all_hits` must have one
  /// slot per stream query; owners write disjoint slots at publication.
  RingService(sim::Comm& comm, const std::string& fasta_image,
              std::span<const Spectrum> queries, const SearchEngine& engine,
              QueryHits& all_hits);

  /// Admit a closed batch at the current boundary (before the next step()).
  /// Must be invoked with identical arguments on every rank. The batch's
  /// queries are block-partitioned over the ranks alive at this boundary;
  /// each member gathers and prepares its block (prep compute and memory
  /// are charged here; the next fence re-aligns the clocks).
  void admit(const ServiceBatch& batch);

  /// Advance the ring one step: make shard (rank + s) mod p resident
  /// (blocking only after an idle gap — while batches keep the ring busy
  /// the previous step's masked prefetch already delivered it), score every
  /// in-flight batch's local block against it, optionally prefetch the next
  /// shard under the computation, fence, then publish batches whose last
  /// shard this was. `prefetch_next` is the serving layer's hint that
  /// another step is likely; a wrong hint affects time, never results.
  ServiceStepOutcome step(bool prefetch_next);

  std::size_t in_flight() const { return flights_.size(); }
  int steps_done() const { return step_; }

  /// Collective teardown (window close). Every rank, zombies included,
  /// must call it after the last step.
  void finish();

 private:
  /// Per-rank state of one batch riding the ring.
  struct Flight {
    std::size_t batch_id = 0;
    std::vector<std::size_t> ids;  ///< batch query ids (global stream)
    std::vector<int> ranks;        ///< members: ranks alive at admit
    int first_step = 0;            ///< first ring step that scores it
    std::vector<std::size_t> orphaned;  ///< ids lost to crashes (all ranks)
    // This rank's block (empty when not a member):
    QueryRange block;                   ///< range into `ids`
    PreparedQueries prepared;
    std::vector<IncrementalTopK<Hit>> tops;  ///< one per block query
    std::size_t alloc_bytes = 0;
  };

  struct ShardFetch {
    sim::RmaRequest request;
    sim::Window* window = nullptr;
  };

  int crash_step_of(int r) const;
  bool dead_at(int r, int at_step) const;
  ShardFetch fetch_shard(int owner, int at_step, std::vector<char>& dest);

  sim::Comm& comm_;
  std::span<const Spectrum> queries_;
  const SearchEngine& engine_;
  QueryHits& all_hits_;

  int p_ = 0;
  int rank_ = 0;
  int my_crash_step_ = -1;

  ProteinDatabase local_db_;
  CandidateIndex local_index_;
  std::vector<char> local_pack_;
  std::optional<sim::Window> window_;
  std::vector<char> replica_;
  std::optional<sim::Window> replica_window_;
  std::vector<char> comp_buffer_;
  std::vector<char> recv_buffer_;
  int comp_shard_ = -1;  ///< shard id resident in comp_buffer_ (-1: none)
  int pulls_ = 1;

  int step_ = 0;
  std::vector<Flight> flights_;
};

}  // namespace msp
