// Multi-batch ring transport for the online query service, over a
// mass-banded candidate-record shard layout.
//
// Algorithm A rotates the sharded database once per query *set*: a batch
// costs a full p-step rotation even when it holds a handful of spectra, so
// batch-at-a-time dispatch pays the per-batch communication floor on every
// batch. The service ring instead rotates *continuously*: one global step
// counter s advances whenever any batch is in flight, rank i scores shard
// (i + s) mod p at step s, and every admitted batch is scored against the
// current shard of the same pass — one shard fetch and one fence per step
// no matter how many batches ride it. A batch admitted at the boundary
// before step s has seen all p shards after step s + p − 1 and publishes at
// that boundary (the incremental top-τ merge makes the result identical to
// a one-shot search regardless of shard order).
//
// Shard layout (the mass-routing tentpole): instead of rotating raw
// database chunks, the service applies Algorithm B's machinery to the
// *candidates* — at construction every rank enumerates its chunk's
// candidate records inside the stream's query-mass envelope and a parallel
// counting sort redistributes them so rank j holds the j-th contiguous
// mass band of the global record array (core/candidate_record.hpp). Mass
// bands make routing communication-optimal, the shape HiCOPS and the
// communication-lower-bound analyses argue for: a query's ±δ window
// overlaps O(1) bands, so with the exchanged per-band histograms
// (core/shard_map.hpp) most (block, shard) pairs are *provably* empty and
// the ring step is skipped at a constant decision cost, while a visited
// step fetches only the byte range the histogram's prefix sums bound —
// a few records — instead of a whole shard. With routing off the same
// bands are fetched whole, one per step, recovering the unrouted
// continuous-ring baseline. Hits are bit-identical across all of it.
//
// Determinism without control messages: the fence at the end of every step
// equalizes all ranks' virtual clocks, so any control decision taken at a
// step boundary from globally known inputs (the arrival schedule, the fault
// schedule, the exchanged shard mass map, published state) is computed
// identically by every rank. The serving layer (src/serve) exploits that by
// replicating its controller per rank; this class's step() returns the
// fence-aligned boundary time the controllers must use as "now".
//
// Fault compatibility (reusing the PR-1 recovery machinery): crash steps in
// the run's FaultModel index *service ring steps*. A crashing rank becomes
// a fail-stop zombie that keeps matching fences; its blocks of every
// in-flight batch are lost and the orphaned query ids are returned from
// step() so the serving layer re-admits them (they re-enter admission, get
// re-batched, and are re-scored from scratch — same hits, later). Bands
// stay reachable through the ring-successor replica window, exactly as in
// Algorithm A — the replica holds the same bytes at the same offsets, so
// partial fetches redirect unchanged.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/candidate_record.hpp"
#include "core/hit.hpp"
#include "core/partition.hpp"
#include "core/search_engine.hpp"
#include "core/shard_map.hpp"
#include "scoring/incremental_topk.hpp"
#include "simmpi/comm.hpp"

namespace msp {

/// Default histogram bucket width for the serve ring's band exchange. Bands
/// are contiguous in mass, so the grid only has to resolve *where inside
/// its band* a window falls — a much coarser question than the pack
/// trailer's per-candidate occupancy map answers. 0.25 Da keeps each
/// exchanged histogram to a few KB while bounding partial-fetch overshoot
/// to a fraction of a dalton per side.
inline constexpr double kServeRouteBucketDa = 0.25;

/// One closed batch handed to the ring: ids into the service's global query
/// stream (not necessarily contiguous — shed gaps and crash re-admissions
/// fragment the stream).
struct ServiceBatch {
  std::size_t id = 0;
  std::vector<std::size_t> query_ids;
};

/// What one ring step produced. Every field is a function of fence-aligned
/// state plus the globally known schedules, so all ranks (zombies included)
/// return identical outcomes — the lockstep contract the per-rank
/// controllers rely on.
/// One batch leaving the ring, with the router's audit trail: how many of
/// its (member rank, shard) scoring slots the mass router visited vs
/// proved empty and skipped. Counted over members with nonempty blocks,
/// from globally known inputs — identical on every rank.
struct PublishedBatch {
  std::size_t batch_id = 0;
  /// Query ids actually published (ids orphaned by crashes excluded).
  std::vector<std::size_t> query_ids;
  std::uint64_t steps_visited = 0;
  std::uint64_t steps_skipped = 0;
};

struct ServiceStepOutcome {
  int step = 0;  ///< the step ordinal just executed
  /// Fence-aligned boundary time this step ended on (including the crash
  /// detection charge when a crash fired). Controllers must use this as
  /// "now" — a zombie's own clock lags the survivors'.
  double boundary_time = 0.0;
  /// Batches whose last shard was scored this step.
  std::vector<PublishedBatch> published;
  /// Query ids orphaned by ranks that crashed at this step; they must
  /// re-enter admission.
  std::vector<std::size_t> orphaned;
};

class RingService {
 public:
  /// Collective over `comm` (counting sort + window creation + barrier):
  /// loads the rank's chunk, enumerates its candidate records inside the
  /// stream's query-mass envelope, joins the parallel counting sort that
  /// leaves this rank holding one contiguous mass band, exposes the band's
  /// record bytes, pulls the ring predecessor's replica when the fault
  /// schedule has crashes, and aligns all clocks so the first boundary is
  /// shared. `all_hits` must have one slot per stream query; owners write
  /// disjoint slots at publication. With `mass_routing` on (the default)
  /// every rank also summarizes its band as a mass histogram at
  /// `route_bucket_da` resolution and joins a collective exchange of all p
  /// histograms; admitted batches are then routed only through bands whose
  /// histogram overlaps their query-mass windows, provably-empty ring steps
  /// are skipped at a constant routing-decision cost, and visited remote
  /// bands are fetched partially (only the matching record range). Hits are
  /// bit-identical either way.
  RingService(sim::Comm& comm, const std::string& fasta_image,
              std::span<const Spectrum> queries, const SearchEngine& engine,
              QueryHits& all_hits, bool mass_routing = true,
              double route_bucket_da = kServeRouteBucketDa);

  /// Admit a closed batch at the current boundary (before the next step()).
  /// Must be invoked with identical arguments on every rank. The batch's
  /// queries are block-partitioned over the ranks alive at this boundary;
  /// each member gathers and prepares its block (prep compute and memory
  /// are charged here; the next fence re-aligns the clocks).
  void admit(const ServiceBatch& batch);

  /// Advance the ring one step: make shard (rank + s) mod p resident —
  /// routed mode fetches only each needed flight's matching record range,
  /// unrouted mode fetches the whole band (blocking only after an idle gap;
  /// while batches keep the ring busy the previous step's masked prefetch
  /// already delivered it) — score every in-flight batch's local block
  /// against it, fence, then publish batches whose last shard this was.
  /// `prefetch_next` is the serving layer's hint that another step is
  /// likely; a wrong hint affects time, never results.
  ServiceStepOutcome step(bool prefetch_next);

  /// Remove an in-flight batch at the current boundary (before the next
  /// step()) and return its not-yet-orphaned query ids so the caller can
  /// re-queue them — an *induced recoverable fault* riding the same
  /// orphan/re-admit contract as a crash, so re-scoring from scratch keeps
  /// hits serial-exact by construction (the scheduler's preemption path).
  /// Must be invoked with identical arguments on every rank; the returned
  /// ids are a pure function of replicated flight state, so every rank
  /// computes the same list with no communication. Partial per-shard top-τ
  /// state is discarded; members release their block allocations.
  std::vector<std::size_t> preempt(std::size_t batch_id);

  std::size_t in_flight() const { return flights_.size(); }
  int steps_done() const { return step_; }

  /// Collective teardown (window close). Every rank, zombies included,
  /// must call it after the last step.
  void finish();

 private:
  /// Per-rank state of one batch riding the ring.
  struct Flight {
    std::size_t batch_id = 0;
    std::vector<std::size_t> ids;  ///< batch query ids (global stream)
    std::vector<int> ranks;        ///< members: ranks alive at admit
    int first_step = 0;            ///< first ring step that scores it
    std::vector<std::size_t> orphaned;  ///< ids lost to crashes (all ranks)
    /// Router verdict per shard for THIS rank's block: 0 = provably no
    /// candidates, skip; 1 = must score. All-ones when routing is off or
    /// the rank holds no block.
    std::vector<std::uint8_t> my_routed;
    /// Batch-wide router audit (over all members with nonempty blocks),
    /// computed from global inputs — identical on every rank.
    std::uint64_t steps_visited = 0;
    std::uint64_t steps_skipped = 0;
    // This rank's block (empty when not a member):
    QueryRange block;                   ///< range into `ids`
    PreparedQueries prepared;
    /// The block's query-mass window [min−δ, max+δ] — what partial fetches
    /// of a visited band are clipped to.
    double fetch_lo = 0.0;
    double fetch_hi = 0.0;
    std::vector<IncrementalTopK<Hit>> tops;  ///< one per block query
    std::size_t alloc_bytes = 0;
  };

  struct ShardFetch {
    sim::RmaRequest request;
    sim::Window* window = nullptr;
  };

  int crash_step_of(int r) const;
  bool dead_at(int r, int at_step) const;
  /// Whole-band fetch (unrouted path / replica pull), redirected to the
  /// ring-successor replica when the owner is dead.
  ShardFetch fetch_shard(int owner, int at_step, std::vector<char>& dest);
  /// Partial fetch of records [first, last) of `owner`'s band (routed
  /// path), same replica redirect — the replica holds identical bytes at
  /// identical offsets.
  ShardFetch fetch_shard_range(int owner, int at_step, std::uint64_t first,
                               std::uint64_t last, std::vector<char>& dest);
  /// Blocking-fetch `shard`'s records matching `flight`'s query window into
  /// scratch_records_ and return the span to score (the whole resident band
  /// for the local shard / unrouted path).
  std::span<const CandidateRecord> resident_records(int shard, int at_step,
                                                    const Flight& flight);

  sim::Comm& comm_;
  std::span<const Spectrum> queries_;
  const SearchEngine& engine_;
  QueryHits& all_hits_;
  bool routing_ = true;
  double route_bucket_da_ = kServeRouteBucketDa;
  ShardMassMap shard_map_;  ///< empty (routes nothing out) unless routing_

  int p_ = 0;
  int rank_ = 0;
  int my_crash_step_ = -1;

  std::vector<CandidateRecord> band_;  ///< this rank's mass band (sorted)
  std::optional<sim::Window> window_;  ///< exposes band_'s raw bytes
  std::vector<char> replica_;
  std::optional<sim::Window> replica_window_;
  std::vector<char> comp_buffer_;   ///< unrouted: resident remote band
  std::vector<char> recv_buffer_;   ///< unrouted: masked prefetch target
  std::vector<char> fetch_buffer_;  ///< routed: partial-fetch target
  std::vector<CandidateRecord> scratch_records_;  ///< fetched-bytes decode
  int comp_shard_ = -1;  ///< shard id resident in comp_buffer_ (-1: none)
  int pulls_ = 1;

  int step_ = 0;
  std::vector<Flight> flights_;
};

}  // namespace msp
