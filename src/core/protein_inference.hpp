// Protein inference: aggregate peptide-spectrum matches into protein-level
// evidence — the step that turns the paper's per-query hit lists into the
// biological answer ("identify the set of proteins ... expressed in a
// specific organism", Section I's opening problem statement).
//
// The standard parsimony-flavoured summary: per protein, the number of
// PSMs, the number of *distinct* peptides (the field's main confidence
// signal — one-hit wonders are suspect), and score aggregates.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/hit.hpp"

namespace msp {

struct ProteinEvidence {
  std::string protein_id;
  std::size_t psm_count = 0;          ///< hits attributed to this protein
  std::size_t distinct_peptides = 0;  ///< unique peptide strings among them
  double best_score = 0.0;
  double score_sum = 0.0;

  /// Ranking: more distinct peptides, then higher total score, then id.
  friend bool operator<(const ProteinEvidence& a, const ProteinEvidence& b) {
    if (a.distinct_peptides != b.distinct_peptides)
      return a.distinct_peptides > b.distinct_peptides;
    if (a.score_sum != b.score_sum) return a.score_sum > b.score_sum;
    return a.protein_id < b.protein_id;
  }
};

struct InferenceOptions {
  /// Only hits ranked at most this deep in each query's list count
  /// (1 = best hit per query, the usual choice).
  std::size_t max_hit_rank = 1;
  /// Hits below this score are ignored (the paper's reporting cutoff).
  double min_score = -1e18;
};

/// Aggregate per-query hits into ranked protein evidence (best first).
std::vector<ProteinEvidence> infer_proteins(
    const QueryHits& hits, const InferenceOptions& options = {});

/// Proteins with at least `min_distinct_peptides` (drops one-hit wonders).
std::vector<ProteinEvidence> confident_proteins(
    const QueryHits& hits, std::size_t min_distinct_peptides = 2,
    const InferenceOptions& options = {});

}  // namespace msp
