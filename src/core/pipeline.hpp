// End-to-end pipeline: the public "just run a search" entry point used by
// the examples and by downstream applications. Wraps database/query loading,
// algorithm selection, the simulated parallel run, and hit-report output.
#pragma once

#include <string>
#include <vector>

#include "core/algorithm_a.hpp"
#include "core/algorithm_b.hpp"
#include "core/algorithm_hybrid.hpp"
#include "core/config.hpp"
#include "core/master_worker.hpp"
#include "core/query_transport.hpp"
#include "io/results_io.hpp"
#include "simmpi/faults.hpp"
#include "simmpi/netmodel.hpp"

namespace msp {

enum class Algorithm {
  kSerial,          ///< single-rank reference
  kAlgorithmA,      ///< the paper's primary contribution
  kAlgorithmB,      ///< sorted variant
  kHybrid,          ///< sub-group extension (paper's Discussion)
  kMasterWorker,    ///< MSPolygraph baseline (O(N) memory/rank)
  kQueryTransport,  ///< rejected-design ablation
};

/// Parse an algorithm name ("serial", "a", "b", "master-worker", "query").
Algorithm algorithm_from_name(const std::string& name);
const char* algorithm_name(Algorithm algorithm);

struct PipelineOptions {
  Algorithm algorithm = Algorithm::kAlgorithmA;
  int p = 8;
  SearchConfig config;
  AlgorithmAOptions a;
  AlgorithmBOptions b;
  HybridOptions hybrid;
  MasterWorkerOptions master_worker;
  QueryTransportOptions query_transport;
  sim::NetworkModel network;
  sim::ComputeModel compute;
  /// Deterministic fault schedule for the simulated run (default: none).
  /// Ignored by the serial reference path.
  sim::FaultModel faults;
};

struct PipelineResult {
  QueryHits hits;
  sim::RunReport report;
  std::uint64_t candidates = 0;
  /// Simulated parallel run-time (what the paper's tables report).
  double run_seconds = 0.0;
};

/// Run a search over in-memory inputs. `fasta_image` is the database file
/// contents (see io/fasta.hpp for chunked parallel loading semantics).
PipelineResult run_pipeline(const std::string& fasta_image,
                            const std::vector<Spectrum>& queries,
                            const PipelineOptions& options);

/// Flatten per-query hits into report records (rank-annotated, in query
/// order) ready for write_hits_file().
std::vector<HitRecord> to_hit_records(const std::vector<Spectrum>& queries,
                                      const QueryHits& hits);

}  // namespace msp
