#include "core/candidate_store.hpp"

#include <algorithm>
#include <array>

#include "core/partition.hpp"
#include "core/search_engine.hpp"
#include "io/wire_record.hpp"
#include "mass/amino_acid.hpp"
#include "scoring/top_hits.hpp"
#include "simmpi/comm.hpp"
#include "util/error.hpp"

namespace msp {
namespace {

constexpr std::size_t kDirectoryEntries = 256;

/// Per-rank store metadata exchanged after the sort: record count, mass
/// extremes, and the (implicitly indexed) mass directory.
struct StoreMeta {
  std::uint64_t records = 0;
  double min_mass = 0.0;
  double max_mass = 0.0;
  std::array<double, kDirectoryEntries> directory{};
};
static_assert(std::is_trivially_copyable_v<StoreMeta>);

StoreMeta make_meta(const std::vector<CandidateRecord>& records) {
  StoreMeta meta;
  meta.records = records.size();
  meta.min_mass = records.empty() ? 0.0 : records.front().mass;
  meta.max_mass = records.empty() ? 0.0 : records.back().mass;
  for (std::size_t i = 0; i < kDirectoryEntries; ++i) {
    const std::size_t index =
        records.empty() ? 0 : i * records.size() / kDirectoryEntries;
    meta.directory[i] = records.empty() ? 0.0 : records[index].mass;
  }
  return meta;
}

/// Record-index range [first, last) on `meta`'s rank that could contain
/// masses in [lo, hi], using the coarse directory (over-approximates by at
/// most one directory stride per side).
std::pair<std::size_t, std::size_t> directory_range(const StoreMeta& meta,
                                                    double lo, double hi) {
  if (meta.records == 0 || hi < meta.min_mass || lo > meta.max_mass)
    return {0, 0};
  std::size_t first_sample = 0;
  while (first_sample + 1 < kDirectoryEntries &&
         meta.directory[first_sample + 1] < lo)
    ++first_sample;
  std::size_t last_sample = first_sample;
  while (last_sample + 1 < kDirectoryEntries &&
         meta.directory[last_sample] <= hi)
    ++last_sample;
  const std::size_t first =
      first_sample * meta.records / kDirectoryEntries;
  const std::size_t last =
      last_sample + 1 >= kDirectoryEntries
          ? meta.records
          : std::min<std::size_t>(
                meta.records,
                (last_sample + 1) * meta.records / kDirectoryEntries + 1);
  return {first, last};
}

}  // namespace

CandidateStoreResult run_candidate_store(const sim::Runtime& runtime,
                                         const std::string& fasta_image,
                                         const std::vector<Spectrum>& queries,
                                         const SearchConfig& config,
                                         const CandidateStoreOptions& options) {
  MSP_CHECK_MSG(config.candidate_mode == CandidateMode::kPrefixSuffix,
                "candidate store implements the paper's prefix/suffix rule");
  MSP_CHECK_MSG(config.max_candidate_length <
                    sizeof(CandidateRecord{}.peptide),
                "candidate store caps peptide length at 63 residues");
  const int p = runtime.size();
  const SearchEngine engine(config);

  QueryHits all_hits(queries.size());

  sim::RunReport report = runtime.run([&](sim::Comm& comm) {
    const int rank = comm.rank();
    const auto& cost = comm.compute_model();
    if (options.memory_budget_bytes != 0)
      comm.set_memory_budget(options.memory_budget_bytes);

    // ---- build: load, window, enumerate, sort ----
    comm.trace_mark("store build");
    const double build_start = comm.clock().now();
    ProteinDatabase local_db = load_database_shard(fasta_image, rank, p);
    comm.clock().charge_io(static_cast<double>(local_db.total_residues()) *
                           cost.seconds_per_residue_load);

    const QueryRange block = query_block(queries.size(), rank, p);
    const std::span<const Spectrum> local_queries(queries.data() + block.begin,
                                                  block.count());
    std::size_t query_bytes = 0;
    for (const Spectrum& q : local_queries)
      query_bytes += q.peaks().size() * sizeof(Peak) + 4096;
    comm.charge_alloc(query_bytes);
    const PreparedQueries prepared = engine.prepare(local_queries);
    comm.clock().charge_compute(static_cast<double>(block.count()) *
                                cost.seconds_per_query_prep);

    // Global query-mass window bounds the store.
    const double sentinel = 1e30;
    const double local_lo =
        prepared.size() == 0 ? sentinel : prepared.min_mass();
    const double local_hi =
        prepared.size() == 0 ? -sentinel : prepared.max_mass();
    const double global_lo = comm.allreduce_min(local_lo) - config.tolerance_da;
    const double global_hi = comm.allreduce_max(local_hi) + config.tolerance_da;

    std::vector<CandidateRecord> records =
        global_lo <= global_hi
            ? enumerate_candidate_records(local_db, config, global_lo,
                                          global_hi)
            : std::vector<CandidateRecord>{};
    local_db = ProteinDatabase{};
    // Generation cost paid ONCE per stored candidate (the strategy's
    // premise); evaluations later pay only the comparison remainder.
    comm.clock().charge_compute(static_cast<double>(records.size()) *
                                cost.seconds_per_candidate *
                                cost.candidate_generation_fraction);
    comm.bump("stored", records.size());

    records = sort_candidate_records_by_mass(comm, std::move(records));
    comm.charge_alloc(records.size() * sizeof(CandidateRecord));

    const StoreMeta my_meta = make_meta(records);
    const std::vector<StoreMeta> metas = comm.allgather(my_meta);
    comm.charge_alloc(metas.size() * sizeof(StoreMeta));
    comm.bump("build_us", static_cast<std::uint64_t>(
                              (comm.clock().now() - build_start) * 1e6));

    const std::span<const char> store_bytes(
        reinterpret_cast<const char*>(records.data()),
        records.size() * sizeof(CandidateRecord));
    sim::Window window(comm, store_bytes);

    // ---- query phase: on-demand partial gets of matching ranges ----
    comm.trace_mark("store query");
    std::vector<TopK<Hit>> tops = engine.make_tops(block.count());
    const double eval_cost = cost.seconds_per_candidate *
                             (1.0 - cost.candidate_generation_fraction);
    std::vector<char> fetched;
    std::vector<CandidateRecord> decoded;
    std::uint64_t evaluated = 0;
    std::uint64_t offered = 0;
    std::uint64_t fetches = 0;
    FragmentIonWorkspace workspace;
    const TheoreticalOptions ion_options;

    for (std::size_t qi = 0; qi < block.count(); ++qi) {
      const double mass = prepared.masses[qi];
      const double lo = mass - config.tolerance_da;
      const double hi = mass + config.tolerance_da;
      for (int target = 0; target < p; ++target) {
        const auto [first, last] =
            directory_range(metas[static_cast<std::size_t>(target)], lo, hi);
        if (first >= last) continue;
        sim::RmaRequest fetch = window.rget_range(
            target, first * sizeof(CandidateRecord),
            (last - first) * sizeof(CandidateRecord), fetched, 1);
        window.wait(fetch);
        ++fetches;
        for (const CandidateRecord& record : wire::checked_array_copy(
                 std::span<const char>(fetched), decoded, "store range")) {
          if (record.mass < lo) continue;
          if (record.mass > hi) break;  // records sorted by mass
          const std::string_view peptide(record.peptide, record.length);
          // Allocation-free scoring: the record's ions land in one reused
          // workspace (the store already paid generation at build time, so
          // only the comparison remainder is charged below).
          const std::vector<FragmentIon>& ions =
              fragment_ions_into(peptide, ion_options, workspace);
          const double score =
              engine.score_candidate(prepared.contexts[qi], peptide, ions);
          ++evaluated;
          comm.clock().charge_compute(eval_cost);
          if (score < config.score_cutoff) continue;
          Hit hit;
          hit.score = score;
          hit.protein_id = record.protein_id;  // NUL-padded → C string
          hit.offset = record.offset;
          hit.length = record.length;
          hit.end = static_cast<FragmentEnd>(record.end);
          hit.mass = record.mass;
          hit.peptide = std::string(peptide);
          tops[qi].offer(hit);
          ++offered;
        }
      }
    }
    comm.clock().charge_compute(static_cast<double>(offered) *
                                cost.seconds_per_hit_update);
    comm.bump("candidates", evaluated);
    comm.bump("fetches", fetches);

    // Window close is collective.
    comm.barrier();

    QueryHits local_hits = engine.finalize(tops);
    std::size_t reported = 0;
    for (std::size_t q = 0; q < local_hits.size(); ++q) {
      reported += local_hits[q].size();
      all_hits[block.begin + q] = std::move(local_hits[q]);
    }
    comm.clock().charge_io(static_cast<double>(reported) *
                           cost.seconds_per_hit_output);
  });

  CandidateStoreResult result;
  result.candidates = report.sum_counter("candidates");
  result.stored_candidates = report.sum_counter("stored");
  for (const auto& r : report.ranks) {
    auto it = r.counters.find("build_us");
    if (it != r.counters.end())
      result.build_seconds = std::max(
          result.build_seconds, static_cast<double>(it->second) * 1e-6);
  }
  result.report = std::move(report);
  result.hits = std::move(all_hits);
  return result;
}

}  // namespace msp
