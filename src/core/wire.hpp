// Minimal binary (de)serialization for shard transport and p2p payloads.
// Fixed little-endian-agnostic encoding via memcpy of native types — all
// "ranks" share one process, so byte order never changes underneath us; the
// framing still bounds-checks every read so corrupted payloads fail loudly.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "util/error.hpp"

namespace msp::wire {

class Writer {
 public:
  void put_u8(std::uint8_t value) { put_raw(&value, sizeof(value)); }
  void put_u32(std::uint32_t value) { put_raw(&value, sizeof(value)); }
  void put_u64(std::uint64_t value) { put_raw(&value, sizeof(value)); }
  void put_i32(std::int32_t value) { put_raw(&value, sizeof(value)); }
  void put_double(double value) { put_raw(&value, sizeof(value)); }

  /// Reserve `size` bytes up front (e.g. before streaming a candidate
  /// index whose wire size is known exactly).
  void reserve(std::size_t size) { bytes_.reserve(bytes_.size() + size); }

  void put_string(std::string_view text) {
    MSP_CHECK_MSG(text.size() <= UINT32_MAX, "string too long for wire");
    put_u32(static_cast<std::uint32_t>(text.size()));
    put_raw(text.data(), text.size());
  }

  const std::vector<char>& bytes() const { return bytes_; }
  std::vector<char> take() { return std::move(bytes_); }

 private:
  void put_raw(const void* data, std::size_t size) {
    const char* begin = static_cast<const char*>(data);
    bytes_.insert(bytes_.end(), begin, begin + size);
  }
  std::vector<char> bytes_;
};

class Reader {
 public:
  explicit Reader(const std::vector<char>& bytes)
      : data_(bytes.data()), size_(bytes.size()) {}
  Reader(const char* data, std::size_t size) : data_(data), size_(size) {}

  std::uint8_t get_u8() { return get_pod<std::uint8_t>(); }
  std::uint32_t get_u32() { return get_pod<std::uint32_t>(); }
  std::uint64_t get_u64() { return get_pod<std::uint64_t>(); }
  std::int32_t get_i32() { return get_pod<std::int32_t>(); }
  double get_double() { return get_pod<double>(); }

  /// Peek the next u64 without consuming it (format discrimination).
  std::uint64_t peek_u64() {
    require(sizeof(std::uint64_t));
    std::uint64_t value;
    std::memcpy(&value, data_ + offset_, sizeof(value));
    return value;
  }

  std::string get_string() {
    const std::uint32_t length = get_u32();
    require(length);
    std::string out(data_ + offset_, length);
    offset_ += length;
    return out;
  }

  bool exhausted() const { return offset_ == size_; }
  std::size_t remaining() const { return size_ - offset_; }

 private:
  template <typename T>
  T get_pod() {
    require(sizeof(T));
    T value;
    std::memcpy(&value, data_ + offset_, sizeof(T));
    offset_ += sizeof(T);
    return value;
  }

  void require(std::size_t bytes) const {
    if (offset_ + bytes > size_)
      throw IoError("wire: truncated payload (need " + std::to_string(bytes) +
                    " bytes at offset " + std::to_string(offset_) + " of " +
                    std::to_string(size_) + ")");
  }

  const char* data_;
  std::size_t size_;
  std::size_t offset_ = 0;
};

}  // namespace msp::wire
