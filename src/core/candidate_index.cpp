#include "core/candidate_index.hpp"

#include <algorithm>

#include "mass/amino_acid.hpp"
#include "mass/digest.hpp"
#include "util/error.hpp"

namespace msp {

CandidateIndexParams CandidateIndexParams::from(const SearchConfig& config) {
  CandidateIndexParams params;
  params.mode = config.candidate_mode;
  params.min_length = static_cast<std::uint32_t>(config.min_candidate_length);
  params.max_length = static_cast<std::uint32_t>(config.max_candidate_length);
  params.missed_cleavages =
      config.candidate_mode == CandidateMode::kTryptic
          ? static_cast<std::uint32_t>(config.candidate_missed_cleavages)
          : 0;
  return params;
}

CandidateIndex::CandidateIndex(CandidateIndexParams params,
                               std::vector<IndexedCandidate> entries)
    : params_(params), entries_(std::move(entries)) {}

CandidateIndex CandidateIndex::build(const ProteinDatabase& shard,
                                     const CandidateIndexParams& params) {
  MSP_CHECK_MSG(params.min_length >= 2,
                "candidates must have >= 2 residues (fragmentable)");
  std::vector<IndexedCandidate> entries;
  for (std::uint32_t pi = 0; pi < shard.proteins.size(); ++pi) {
    const Protein& protein = shard.proteins[pi];
    const std::size_t len = protein.residues.size();
    if (len < params.min_length) continue;
    // Same arithmetic as the reference kernel: masses must be bit-identical
    // so indexed and reference searches score the same doubles.
    const FragmentMassIndex index(protein.residues);
    const std::size_t max_k = std::min<std::size_t>(len, params.max_length);

    if (params.mode == CandidateMode::kPrefixSuffix) {
      for (std::size_t k = params.min_length; k <= max_k; ++k) {
        entries.push_back({index.prefix_mass(k), pi, 0,
                           static_cast<std::uint32_t>(k),
                           FragmentEnd::kPrefix});
      }
      for (std::size_t k = params.min_length; k <= max_k; ++k) {
        if (k == len) break;  // the full sequence already counted as a prefix
        entries.push_back({index.suffix_mass(k), pi,
                           static_cast<std::uint32_t>(len - k),
                           static_cast<std::uint32_t>(k),
                           FragmentEnd::kSuffix});
      }
    } else {
      DigestOptions digest;
      digest.min_length = params.min_length;
      digest.max_length = max_k;
      digest.missed_cleavages = params.missed_cleavages;
      for (const DigestedPeptide& peptide :
           digest_tryptic(protein.residues, digest)) {
        const double mass = index.prefix_mass(peptide.offset + peptide.length) -
                            index.prefix_mass(peptide.offset) + kWaterMass;
        FragmentEnd end = FragmentEnd::kInternal;
        if (peptide.offset == 0)
          end = FragmentEnd::kPrefix;
        else if (peptide.offset + peptide.length == len)
          end = FragmentEnd::kSuffix;
        entries.push_back({mass, pi,
                           static_cast<std::uint32_t>(peptide.offset),
                           static_cast<std::uint32_t>(peptide.length), end});
      }
    }
  }
  std::sort(entries.begin(), entries.end(),
            [](const IndexedCandidate& a, const IndexedCandidate& b) {
              if (a.mass != b.mass) return a.mass < b.mass;
              if (a.protein != b.protein) return a.protein < b.protein;
              if (a.offset != b.offset) return a.offset < b.offset;
              return a.length < b.length;
            });
  return CandidateIndex(params, std::move(entries));
}

CandidateIndex CandidateIndex::build(const ProteinDatabase& shard,
                                     const SearchConfig& config) {
  return build(shard, CandidateIndexParams::from(config));
}

}  // namespace msp
