// Virtual-clock arrival processes for the online query service.
//
// The service answers a *stream*: query i of the global stream becomes
// visible to admission at times[i] virtual seconds. Schedules are pure
// functions of (model, count) — every rank computes the same one, which is
// half of what makes the replicated service controllers deterministic (the
// other half is fence-aligned boundaries; see core/ring_service.hpp).
//
//   kUniform — evenly spaced at 1/rate_qps.
//   kPoisson — exponential inter-arrival gaps at mean rate rate_qps, drawn
//              from the repo's deterministic xoshiro stream.
//   kBurst   — bursts of burst_size simultaneous arrivals every
//              burst_gap_s (the worst case for a size-or-deadline batcher).
//   kReplay  — caller-supplied times (a recorded production trace).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace msp::serve {

enum class ArrivalKind { kUniform, kPoisson, kBurst, kReplay };

const char* arrival_kind_name(ArrivalKind kind);
/// "uniform" | "poisson" | "burst" | "replay"; throws InvalidArgument
/// otherwise.
ArrivalKind arrival_kind_from_name(const std::string& name);

struct ArrivalModel {
  ArrivalKind kind = ArrivalKind::kPoisson;
  double rate_qps = 200.0;       ///< mean arrival rate (uniform/poisson)
  std::uint64_t seed = 2009;     ///< poisson inter-arrival draws
  std::size_t burst_size = 16;   ///< arrivals per burst (burst)
  double burst_gap_s = 0.5;      ///< time between burst starts (burst)
  std::vector<double> replay_times;  ///< replay: must cover `count` queries
};

/// Arrival time of each of `count` stream queries, non-decreasing from 0.
std::vector<double> make_arrivals(const ArrivalModel& model,
                                  std::size_t count);

}  // namespace msp::serve
