#include "serve/service.hpp"

#include <algorithm>
#include <deque>
#include <limits>
#include <utility>

#include "core/ring_service.hpp"
#include "core/search_engine.hpp"
#include "simmpi/comm.hpp"
#include "util/error.hpp"

namespace msp::serve {
namespace {

constexpr double kNever = std::numeric_limits<double>::infinity();

/// The replicated service controller. One instance per rank, all fed the
/// same schedules and the same fence-aligned boundary times, so every
/// instance walks the identical state trajectory — admission, batching,
/// dispatch, and shed decisions agree on all ranks by construction.
class Controller {
 public:
  Controller(sim::Comm& comm, const std::vector<double>& arrivals,
             const ServiceOptions& options)
      : comm_(comm),
        arrivals_(arrivals),
        options_(options),
        admission_(options.admission),
        batcher_(options.batch),
        outcomes_(arrivals.size()) {}

  /// Advance the control plane to the fence-aligned time `now`: re-admit
  /// crash orphans, drain delayed admissions into freed capacity, then
  /// replay arrivals and batch deadlines up to `now` in time order.
  void boundary(double now) {
    // Crash orphans re-enter first — they are the stream's oldest unserved
    // queries and already hold admission capacity (never released).
    const std::size_t readmitted = orphans_.size();
    for (const std::size_t id : orphans_) {
      ++outcomes_[id].redispatches;
      batcher_.enqueue(id, now);
    }
    orphans_.clear();

    // Delayed (kDelay) queries admit oldest-first into capacity freed by
    // the publications that ended at this boundary.
    std::size_t admitted = 0;
    while (!waiting_.empty() && admission_.try_admit()) {
      const std::size_t id = waiting_.front();
      waiting_.pop_front();
      outcomes_[id].admit_s = now;
      batcher_.enqueue(id, now);
      ++admitted;
    }

    // Replay the interleaved event timeline up to `now`. On a tie the batch
    // deadline fires before the arrival, so a deadline-closed batch never
    // absorbs a query arriving at its own close instant.
    std::size_t shed = 0;
    for (;;) {
      const double arrival =
          next_arrival_ < arrivals_.size() ? arrivals_[next_arrival_] : kNever;
      const double deadline = batcher_.next_deadline();
      if (std::min(arrival, deadline) > now) break;
      if (deadline <= arrival) {
        batcher_.close_due(deadline);
        continue;
      }
      const std::size_t id = next_arrival_++;
      outcomes_[id].arrival_s = arrival;
      if (admission_.try_admit()) {
        outcomes_[id].admit_s = arrival;
        batcher_.enqueue(id, arrival);
        ++admitted;
      } else if (admission_.policy().overload == OverloadPolicy::kShed) {
        outcomes_[id].shed = true;
        ++shed;
      } else {
        waiting_.push_back(id);
      }
    }
    shed_ += shed;

    for (auto& ids : batcher_.take_closed()) ready_.push_back(std::move(ids));

    if (admitted + readmitted > 0)
      comm_.trace_serve(
          sim::SpanKind::kServeAdmit,
          "admitted " + std::to_string(admitted) +
              (readmitted > 0
                   ? " +" + std::to_string(readmitted) + " re-admitted"
                   : std::string()) +
              " (outstanding " + std::to_string(admission_.outstanding()) +
              ")");
    if (shed > 0)
      comm_.trace_serve(sim::SpanKind::kServeShed,
                        "shed " + std::to_string(shed) + " (outstanding " +
                            std::to_string(admission_.outstanding()) + ")");
  }

  /// Closed batches to dispatch at this boundary. kMultiBatchRing admits
  /// everything ready; kBatchAtATime admits one batch only onto an idle
  /// ring — the naive baseline that pays a full rotation per batch.
  std::vector<ServiceBatch> take_dispatch(double now, std::size_t in_flight) {
    std::vector<ServiceBatch> out;
    while (!ready_.empty()) {
      if (options_.mode == DispatchMode::kBatchAtATime &&
          in_flight + out.size() > 0)
        break;
      ServiceBatch batch;
      batch.id = batches_dispatched_++;
      batch.query_ids = std::move(ready_.front());
      ready_.pop_front();
      for (const std::size_t id : batch.query_ids) {
        outcomes_[id].dispatch_s = now;
        outcomes_[id].batch_id = batch.id;
      }
      out.push_back(std::move(batch));
    }
    return out;
  }

  /// Fold one ring step's outcome back into the control plane.
  void on_step(const ServiceStepOutcome& out) {
    for (const PublishedBatch& batch : out.published) {
      for (const std::size_t id : batch.query_ids)
        outcomes_[id].complete_s = out.boundary_time;
      admission_.release(batch.query_ids.size());
      batch_routes_.push_back(BatchRouteStats{
          batch.batch_id, batch.steps_visited, batch.steps_skipped});
    }
    for (const std::size_t id : out.orphaned) orphans_.push_back(id);
  }

  /// No more work will ever reach the ring.
  bool drained() const {
    return next_arrival_ == arrivals_.size() && waiting_.empty() &&
           orphans_.empty() && batcher_.pending() == 0 && ready_.empty();
  }

  /// Next control-plane event (arrival or batch deadline); the idle ring
  /// sleeps to this instant.
  double next_event_time() const {
    const double arrival =
        next_arrival_ < arrivals_.size() ? arrivals_[next_arrival_] : kNever;
    return std::min(arrival, batcher_.next_deadline());
  }

  std::vector<QueryOutcome>& outcomes() { return outcomes_; }
  std::vector<BatchRouteStats>& batch_routes() { return batch_routes_; }
  std::size_t shed_count() const { return shed_; }
  std::size_t batches_dispatched() const { return batches_dispatched_; }

 private:
  sim::Comm& comm_;
  const std::vector<double>& arrivals_;
  const ServiceOptions& options_;
  AdmissionController admission_;
  AdaptiveBatcher batcher_;
  std::vector<QueryOutcome> outcomes_;
  std::size_t next_arrival_ = 0;
  std::deque<std::size_t> waiting_;  ///< kDelay backpressure queue
  std::deque<std::size_t> orphans_;  ///< crash orphans awaiting re-admission
  std::deque<std::vector<std::size_t>> ready_;  ///< closed, undispatched
  std::vector<BatchRouteStats> batch_routes_;  ///< publication order
  std::size_t batches_dispatched_ = 0;
  std::size_t shed_ = 0;
};

struct BodyOutput {
  std::vector<QueryOutcome> outcomes;
  std::vector<BatchRouteStats> batch_routes;
  std::size_t shed = 0;
  std::size_t batches = 0;
  int ring_steps = 0;
};

void service_body(sim::Comm& comm, const std::string& fasta_image,
                  const std::vector<Spectrum>& queries,
                  const std::vector<double>& arrivals,
                  const SearchEngine& engine, const ServiceOptions& options,
                  QueryHits& all_hits, BodyOutput& output) {
  RingService ring(comm,
                   fasta_image,
                   std::span<const Spectrum>(queries.data(), queries.size()),
                   engine, all_hits, options.mass_routing,
                   options.route_bucket_da);
  Controller ctl(comm, arrivals, options);

  // The service event loop. `boundary` only ever takes fence-aligned values
  // (the post-construction barrier, step() boundary times, idle targets) —
  // never a raw clock read after divergent per-rank charges — which is what
  // keeps the replicated controllers in lockstep.
  double boundary = comm.clock().now();
  for (;;) {
    ctl.boundary(boundary);
    for (ServiceBatch& batch : ctl.take_dispatch(boundary, ring.in_flight()))
      ring.admit(batch);

    if (ring.in_flight() == 0) {
      if (ctl.drained()) break;
      // Idle gap: nothing to score until the next arrival or batch
      // deadline. Advance every clock to that shared instant without
      // polluting the work buckets.
      const double next = ctl.next_event_time();
      MSP_CHECK_MSG(next < kNever, "idle service with no future event");
      comm.clock().idle_until(next);
      boundary = std::max(boundary, next);
      continue;
    }

    const ServiceStepOutcome out = ring.step(!ctl.drained());
    ctl.on_step(out);
    boundary = out.boundary_time;
  }
  ring.finish();

  if (comm.rank() == 0) {
    output.outcomes = std::move(ctl.outcomes());
    output.batch_routes = std::move(ctl.batch_routes());
    output.shed = ctl.shed_count();
    output.batches = ctl.batches_dispatched();
    output.ring_steps = ring.steps_done();
  }
}

}  // namespace

const char* dispatch_mode_name(DispatchMode mode) {
  switch (mode) {
    case DispatchMode::kBatchAtATime: return "naive";
    case DispatchMode::kMultiBatchRing: return "multi";
  }
  return "?";
}

DispatchMode dispatch_mode_from_name(const std::string& name) {
  if (name == "naive") return DispatchMode::kBatchAtATime;
  if (name == "multi") return DispatchMode::kMultiBatchRing;
  throw InvalidArgument("unknown dispatch mode: " + name);
}

ServiceResult run_service(const sim::Runtime& runtime,
                          const std::string& fasta_image,
                          const std::vector<Spectrum>& queries,
                          const SearchConfig& config,
                          const ServiceOptions& options) {
  const SearchEngine engine(config);
  const std::vector<double> arrivals =
      make_arrivals(options.arrivals, queries.size());

  QueryHits all_hits(queries.size());
  BodyOutput output;

  sim::RunReport report = runtime.run([&](sim::Comm& comm) {
    if (options.memory_budget_bytes != 0)
      comm.set_memory_budget(options.memory_budget_bytes);
    service_body(comm, fasta_image, queries, arrivals, engine, options,
                 all_hits, output);
  });

  ServiceResult result;
  result.candidates = report.sum_counter("candidates");
  result.report = std::move(report);
  result.hits = std::move(all_hits);
  result.outcomes = std::move(output.outcomes);
  result.batch_routes = std::move(output.batch_routes);
  result.shed = output.shed;
  result.batches = output.batches;
  result.ring_steps = output.ring_steps;
  for (const BatchRouteStats& route : result.batch_routes) {
    result.steps_visited += route.steps_visited;
    result.steps_skipped += route.steps_skipped;
  }
  if (result.steps_visited + result.steps_skipped > 0)
    result.skip_ratio =
        static_cast<double>(result.steps_skipped) /
        static_cast<double>(result.steps_visited + result.steps_skipped);

  std::vector<double> latencies;
  for (const QueryOutcome& outcome : result.outcomes) {
    if (outcome.complete_s < 0.0) continue;
    ++result.completed;
    latencies.push_back(outcome.complete_s - outcome.arrival_s);
    result.makespan_s = std::max(result.makespan_s, outcome.complete_s);
  }
  result.latency = summarize_latencies(std::move(latencies));
  if (result.makespan_s > 0.0)
    result.throughput_qps =
        static_cast<double>(result.completed) / result.makespan_s;
  return result;
}

}  // namespace msp::serve
