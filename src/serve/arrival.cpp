#include "serve/arrival.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace msp::serve {

const char* arrival_kind_name(ArrivalKind kind) {
  switch (kind) {
    case ArrivalKind::kUniform: return "uniform";
    case ArrivalKind::kPoisson: return "poisson";
    case ArrivalKind::kBurst: return "burst";
    case ArrivalKind::kReplay: return "replay";
  }
  return "?";
}

ArrivalKind arrival_kind_from_name(const std::string& name) {
  if (name == "uniform") return ArrivalKind::kUniform;
  if (name == "poisson") return ArrivalKind::kPoisson;
  if (name == "burst") return ArrivalKind::kBurst;
  if (name == "replay") return ArrivalKind::kReplay;
  throw InvalidArgument("unknown arrival kind: " + name);
}

std::vector<double> make_arrivals(const ArrivalModel& model,
                                  std::size_t count) {
  std::vector<double> times;
  times.reserve(count);
  switch (model.kind) {
    case ArrivalKind::kUniform: {
      MSP_CHECK_MSG(model.rate_qps > 0.0, "arrival rate must be positive");
      for (std::size_t i = 0; i < count; ++i)
        times.push_back(static_cast<double>(i) / model.rate_qps);
      break;
    }
    case ArrivalKind::kPoisson: {
      MSP_CHECK_MSG(model.rate_qps > 0.0, "arrival rate must be positive");
      Xoshiro256 rng(model.seed);
      double t = 0.0;
      for (std::size_t i = 0; i < count; ++i) {
        // Exponential inter-arrival gap; 1 − u avoids log(0).
        t += -__builtin_log(1.0 - rng.uniform()) / model.rate_qps;
        times.push_back(t);
      }
      break;
    }
    case ArrivalKind::kBurst: {
      MSP_CHECK_MSG(model.burst_size >= 1, "burst size must be >= 1");
      MSP_CHECK_MSG(model.burst_gap_s > 0.0, "burst gap must be positive");
      for (std::size_t i = 0; i < count; ++i)
        times.push_back(static_cast<double>(i / model.burst_size) *
                        model.burst_gap_s);
      break;
    }
    case ArrivalKind::kReplay: {
      MSP_CHECK_MSG(model.replay_times.size() >= count,
                    "replay schedule covers fewer arrivals than the stream");
      times.assign(model.replay_times.begin(),
                   model.replay_times.begin() + static_cast<long>(count));
      MSP_CHECK_MSG(std::is_sorted(times.begin(), times.end()),
                    "replay arrival times must be non-decreasing");
      MSP_CHECK_MSG(times.empty() || times.front() >= 0.0,
                    "replay arrival times must be non-negative");
      break;
    }
  }
  return times;
}

}  // namespace msp::serve
