// Online peptide-identification service over the simulated cluster.
//
// The batch pipeline answers "how fast can p ranks chew a fixed workload";
// the service answers the operational question the paper's cluster would
// face next: queries arrive *over time* and each one has a completion
// latency. run_service() plays a deterministic arrival schedule against the
// sharded ring: arrivals pass admission control (bounded outstanding work —
// the serving-time analogue of the paper's 1 GB/process cap), a
// size-or-deadline batcher groups them, and closed batches dispatch into
// the multi-batch continuous ring (core/ring_service.hpp), which scores
// every in-flight batch during one database rotation and publishes each
// batch's top-τ results the moment its last shard is scored.
//
// Control is replicated, not centralized: every rank runs the same
// controller on the same globally-known schedules, and all control
// decisions are taken at fence-aligned boundaries where the virtual clocks
// are provably equal — so the ranks agree on every admission, batch close,
// dispatch, and shed without exchanging a single control message
// (DESIGN.md §5g). Results, traces, and latency numbers are bit-identical
// across reruns and kernel thread counts, with or without fault schedules.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/hit.hpp"
#include "core/ring_service.hpp"
#include "serve/admission.hpp"
#include "serve/arrival.hpp"
#include "serve/batcher.hpp"
#include "serve/slo.hpp"
#include "simmpi/runtime.hpp"
#include "spectra/spectrum.hpp"

namespace msp::serve {

enum class DispatchMode {
  kBatchAtATime,    ///< naive: one batch owns the ring for a full rotation
  kMultiBatchRing,  ///< continuous ring scoring all in-flight batches
};

const char* dispatch_mode_name(DispatchMode mode);
/// "naive" | "multi"; throws InvalidArgument otherwise.
DispatchMode dispatch_mode_from_name(const std::string& name);

struct ServiceOptions {
  ArrivalModel arrivals;
  BatchPolicy batch;
  AdmissionPolicy admission;
  DispatchMode mode = DispatchMode::kMultiBatchRing;
  /// Route batches through the global shard mass map: ring steps whose
  /// shard provably holds no candidate for any in-flight block are skipped
  /// at a constant decision cost (no fetch, no scoring), and visited bands
  /// are fetched partially (only the matching record range). Hits are
  /// bit-identical with routing on or off; only time and the audit
  /// counters change.
  bool mass_routing = true;
  /// Bucket width (Da) of the per-band mass histograms the ring exchanges
  /// for routing. Coarser = smaller exchange payload, slightly wider
  /// partial fetches; never affects hits (see core/ring_service.hpp).
  double route_bucket_da = kServeRouteBucketDa;
  /// Per-rank memory budget in bytes (0 disables). The admission cap is
  /// the deterministic guard that keeps runs under it; exceeding the budget
  /// anyway throws OutOfMemoryBudget, same as the batch drivers.
  std::size_t memory_budget_bytes = 0;
};

/// Per-query service record, all times in virtual seconds (-1 = never
/// happened). Latency is complete_s − arrival_s.
struct QueryOutcome {
  double arrival_s = 0.0;
  double admit_s = -1.0;
  double dispatch_s = -1.0;
  double complete_s = -1.0;
  bool shed = false;               ///< rejected by admission, never scored
  std::uint32_t redispatches = 0;  ///< crash-orphan re-admissions
  std::size_t batch_id = 0;        ///< last batch it rode (if dispatched)
};

/// Router audit for one published batch: its (member rank, shard) scoring
/// slots the mass router visited vs proved empty and skipped.
struct BatchRouteStats {
  std::size_t batch_id = 0;
  std::uint64_t steps_visited = 0;
  std::uint64_t steps_skipped = 0;
};

struct ServiceResult {
  sim::RunReport report;
  QueryHits hits;  ///< hits[q] best-first; empty for shed queries
  std::vector<QueryOutcome> outcomes;
  std::uint64_t candidates = 0;
  std::size_t completed = 0;
  std::size_t shed = 0;
  std::size_t batches = 0;  ///< batches dispatched into the ring
  int ring_steps = 0;
  /// Per-batch router audit, in publication order (empty batches shed
  /// before dispatch never appear). Aggregates below sum these.
  std::vector<BatchRouteStats> batch_routes;
  std::uint64_t steps_visited = 0;
  std::uint64_t steps_skipped = 0;
  /// skipped / (visited + skipped); 0 when nothing was dispatched.
  double skip_ratio = 0.0;
  double makespan_s = 0.0;      ///< last publication boundary
  double throughput_qps = 0.0;  ///< completed / makespan
  LatencySummary latency;       ///< completion latency of completed queries
};

/// Serve `queries` as a stream on `runtime.size()` simulated ranks.
ServiceResult run_service(const sim::Runtime& runtime,
                          const std::string& fasta_image,
                          const std::vector<Spectrum>& queries,
                          const SearchConfig& config,
                          const ServiceOptions& options = {});

}  // namespace msp::serve
