// Latency accounting for the online query service.
//
// Completion latency is per query: publication boundary minus arrival time,
// all in virtual seconds, so the percentiles are deterministic functions of
// (workload, schedule, policies) — the property the latency-SLO bench and
// its byte-identical BENCH_serve.json rest on.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

#include "util/error.hpp"

namespace msp::serve {

/// Nearest-rank percentile (q in (0, 1]) of an ascending-sorted sample.
inline double percentile_sorted(const std::vector<double>& sorted, double q) {
  MSP_CHECK_MSG(!sorted.empty(), "percentile of an empty sample");
  MSP_CHECK_MSG(q > 0.0 && q <= 1.0, "percentile rank out of (0, 1]");
  const std::size_t rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sorted.size())));
  return sorted[std::max<std::size_t>(rank, 1) - 1];
}

struct LatencySummary {
  std::size_t count = 0;
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
};

/// Summary of a latency sample (seconds); all-zero when empty.
inline LatencySummary summarize_latencies(std::vector<double> samples) {
  LatencySummary summary;
  summary.count = samples.size();
  if (samples.empty()) return summary;
  std::sort(samples.begin(), samples.end());
  double total = 0.0;
  for (const double s : samples) total += s;
  summary.mean = total / static_cast<double>(samples.size());
  summary.p50 = percentile_sorted(samples, 0.50);
  summary.p95 = percentile_sorted(samples, 0.95);
  summary.p99 = percentile_sorted(samples, 0.99);
  summary.max = samples.back();
  return summary;
}

}  // namespace msp::serve
