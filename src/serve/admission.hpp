// Admission control and backpressure for the online query service.
//
// The service bounds the queries it holds state for — queued plus in
// flight — the way the paper's 1 GB/process constraint bounds a rank's
// buffers: every admitted query eventually costs its block owner prepared
// spectra and a top-τ list, so max_outstanding is the knob that keeps the
// per-rank memory cap safe under any arrival burst. Overload is resolved
// deterministically by policy: kShed drops the arrival on the floor
// (recorded, never scored), kDelay parks it in an admission queue that
// drains as publications free capacity.
#pragma once

#include <cstddef>
#include <string>

#include "util/error.hpp"

namespace msp::serve {

enum class OverloadPolicy { kShed, kDelay };

const char* overload_policy_name(OverloadPolicy policy);
OverloadPolicy overload_policy_from_name(const std::string& name);

struct AdmissionPolicy {
  std::size_t max_outstanding = 64;  ///< queued + in-flight query cap
  OverloadPolicy overload = OverloadPolicy::kShed;
};

class AdmissionController {
 public:
  explicit AdmissionController(AdmissionPolicy policy) : policy_(policy) {
    MSP_CHECK_MSG(policy_.max_outstanding >= 1,
                  "admission cap must be >= 1 or nothing ever runs");
  }

  bool has_capacity() const { return outstanding_ < policy_.max_outstanding; }

  /// Admit one query if capacity allows; outstanding until released.
  bool try_admit() {
    if (!has_capacity()) return false;
    ++outstanding_;
    return true;
  }

  /// Publication (or terminal shed of an already-admitted query) frees
  /// capacity. Crash-orphaned queries are NOT released — they stay
  /// outstanding until their re-admitted batch finally publishes.
  void release(std::size_t count) {
    MSP_CHECK_MSG(count <= outstanding_, "released more than outstanding");
    outstanding_ -= count;
  }

  std::size_t outstanding() const { return outstanding_; }
  const AdmissionPolicy& policy() const { return policy_; }

 private:
  AdmissionPolicy policy_;
  std::size_t outstanding_ = 0;
};

inline const char* overload_policy_name(OverloadPolicy policy) {
  switch (policy) {
    case OverloadPolicy::kShed: return "shed";
    case OverloadPolicy::kDelay: return "delay";
  }
  return "?";
}

inline OverloadPolicy overload_policy_from_name(const std::string& name) {
  if (name == "shed") return OverloadPolicy::kShed;
  if (name == "delay") return OverloadPolicy::kDelay;
  throw InvalidArgument("unknown overload policy: " + name);
}

}  // namespace msp::serve
