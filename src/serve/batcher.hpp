// Size-or-deadline adaptive batching for the online query service.
//
// Admitted queries accumulate in one open batch; the batch closes the
// moment it reaches max_batch queries (size close — under load) or when its
// *oldest* member has waited max_wait_s (deadline close — under trickle
// traffic), whichever comes first. Closed batches queue for dispatch at the
// next service boundary. The state machine is driven by the replicated
// per-rank controllers with identical inputs, so it is deliberately pure
// bookkeeping: no clocks, no communication.
#pragma once

#include <cstddef>
#include <limits>
#include <utility>
#include <vector>

#include "util/error.hpp"

namespace msp::serve {

struct BatchPolicy {
  std::size_t max_batch = 16;  ///< size close threshold
  double max_wait_s = 0.05;    ///< deadline close: oldest member's max wait
};

class AdaptiveBatcher {
 public:
  explicit AdaptiveBatcher(BatchPolicy policy) : policy_(policy) {
    MSP_CHECK_MSG(policy_.max_batch >= 1, "batch size must be >= 1");
    MSP_CHECK_MSG(policy_.max_wait_s >= 0.0, "batch wait must be >= 0");
  }

  /// Add an admitted query; closes the open batch on reaching max_batch.
  void enqueue(std::size_t query_id, double now) {
    if (open_.empty()) open_time_ = now;
    open_.push_back(query_id);
    if (open_.size() >= policy_.max_batch) close_open();
  }

  /// Virtual time the open batch's deadline fires (+inf with no open
  /// batch) — the controllers' event loop interleaves this with arrivals.
  double next_deadline() const {
    if (open_.empty()) return std::numeric_limits<double>::infinity();
    return open_time_ + policy_.max_wait_s;
  }

  /// Deadline close: no-op unless the open batch's deadline has passed.
  void close_due(double now) {
    if (!open_.empty() && now >= next_deadline()) close_open();
  }

  /// Closed batches awaiting dispatch, oldest first (ownership moves).
  std::vector<std::vector<std::size_t>> take_closed() {
    return std::exchange(closed_, {});
  }

  /// Queries in the batcher (open + closed, not yet taken).
  std::size_t pending() const {
    std::size_t total = open_.size();
    for (const auto& batch : closed_) total += batch.size();
    return total;
  }

 private:
  void close_open() { closed_.push_back(std::exchange(open_, {})); }

  BatchPolicy policy_;
  std::vector<std::size_t> open_;
  double open_time_ = 0.0;
  std::vector<std::vector<std::size_t>> closed_;
};

}  // namespace msp::serve
