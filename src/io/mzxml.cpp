#include "io/mzxml.hpp"

#include <bit>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "util/base64.hpp"
#include "util/error.hpp"
#include "util/str.hpp"

namespace msp {
namespace {

/// Big-endian (network order) 32-bit float ↔ host conversion.
float from_network_float(const std::uint8_t* bytes) {
  std::uint32_t word = (static_cast<std::uint32_t>(bytes[0]) << 24) |
                       (static_cast<std::uint32_t>(bytes[1]) << 16) |
                       (static_cast<std::uint32_t>(bytes[2]) << 8) |
                       static_cast<std::uint32_t>(bytes[3]);
  return std::bit_cast<float>(word);
}

void to_network_float(float value, std::uint8_t* bytes) {
  const auto word = std::bit_cast<std::uint32_t>(value);
  bytes[0] = static_cast<std::uint8_t>(word >> 24);
  bytes[1] = static_cast<std::uint8_t>(word >> 16);
  bytes[2] = static_cast<std::uint8_t>(word >> 8);
  bytes[3] = static_cast<std::uint8_t>(word);
}

/// Attribute value from an element's tag text, or empty.
std::string attribute(std::string_view tag, std::string_view name) {
  const std::string needle = std::string(name) + "=\"";
  const std::size_t start = tag.find(needle);
  if (start == std::string_view::npos) return {};
  const std::size_t value_begin = start + needle.size();
  const std::size_t value_end = tag.find('"', value_begin);
  if (value_end == std::string_view::npos) return {};
  return std::string(tag.substr(value_begin, value_end - value_begin));
}

}  // namespace

std::vector<Spectrum> read_mzxml(std::istream& in) {
  // Slurp: mzXML scans are not line-oriented, so parse over the whole text.
  const std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  std::vector<Spectrum> spectra;

  std::size_t cursor = 0;
  while (true) {
    const std::size_t scan_begin = text.find("<scan", cursor);
    if (scan_begin == std::string::npos) break;
    const std::size_t scan_tag_end = text.find('>', scan_begin);
    if (scan_tag_end == std::string::npos)
      throw IoError("mzXML: unterminated <scan> tag");
    const std::string_view scan_tag(text.data() + scan_begin,
                                    scan_tag_end - scan_begin);
    // Scans nest (<scan>...<scan> for MS2 under MS1); searching for the
    // closing tag from here is safe because we only extract leaf content.
    const std::size_t scan_end = text.find("</scan>", scan_tag_end);
    cursor = scan_tag_end + 1;

    if (attribute(scan_tag, "msLevel") != "2") continue;
    const std::size_t limit =
        scan_end == std::string::npos ? text.size() : scan_end;

    // <precursorMz ...>VALUE</precursorMz>
    const std::size_t precursor_open = text.find("<precursorMz", cursor);
    if (precursor_open == std::string::npos || precursor_open > limit)
      throw IoError("mzXML: msLevel=2 scan without <precursorMz>");
    const std::size_t precursor_tag_end = text.find('>', precursor_open);
    const std::size_t precursor_close = text.find("</precursorMz>",
                                                  precursor_tag_end);
    if (precursor_tag_end == std::string::npos ||
        precursor_close == std::string::npos)
      throw IoError("mzXML: malformed <precursorMz>");
    const std::string_view precursor_tag(text.data() + precursor_open,
                                         precursor_tag_end - precursor_open);
    const std::string charge_text = attribute(precursor_tag, "precursorCharge");
    const int charge = charge_text.empty() ? 1 : std::stoi(charge_text);
    const double precursor_mz = std::stod(
        trim(text.substr(precursor_tag_end + 1,
                         precursor_close - precursor_tag_end - 1)));

    // <peaks ...>BASE64</peaks>
    const std::size_t peaks_open = text.find("<peaks", precursor_close);
    if (peaks_open == std::string::npos)
      throw IoError("mzXML: msLevel=2 scan without <peaks>");
    const std::size_t peaks_tag_end = text.find('>', peaks_open);
    const std::size_t peaks_close = text.find("</peaks>", peaks_tag_end);
    if (peaks_tag_end == std::string::npos || peaks_close == std::string::npos)
      throw IoError("mzXML: malformed <peaks>");
    const std::string_view peaks_tag(text.data() + peaks_open,
                                     peaks_tag_end - peaks_open);
    const std::string precision = attribute(peaks_tag, "precision");
    if (!precision.empty() && precision != "32")
      throw IoError("mzXML: only 32-bit peak payloads are supported");

    std::vector<std::uint8_t> payload;
    try {
      payload = base64_decode(
          std::string_view(text).substr(peaks_tag_end + 1,
                                        peaks_close - peaks_tag_end - 1));
    } catch (const InvalidArgument& error) {
      throw IoError(std::string("mzXML: bad <peaks> payload: ") + error.what());
    }
    if (payload.size() % 8 != 0)
      throw IoError("mzXML: peak payload is not a whole number of m/z-"
                    "intensity float pairs");

    std::vector<Peak> peaks;
    peaks.reserve(payload.size() / 8);
    for (std::size_t i = 0; i < payload.size(); i += 8) {
      Peak peak;
      peak.mz = from_network_float(payload.data() + i);
      peak.intensity = from_network_float(payload.data() + i + 4);
      peaks.push_back(peak);
    }

    const std::string scan_number = attribute(scan_tag, "num");
    spectra.emplace_back(std::move(peaks), precursor_mz, charge,
                         "scan_" + (scan_number.empty()
                                        ? std::to_string(spectra.size())
                                        : scan_number));
    cursor = peaks_close;
  }
  return spectra;
}

std::vector<Spectrum> read_mzxml_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw IoError("cannot open mzXML file: " + path);
  return read_mzxml(in);
}

void write_mzxml(std::ostream& out, const std::vector<Spectrum>& spectra) {
  out << "<?xml version=\"1.0\" encoding=\"ISO-8859-1\"?>\n";
  out << "<mzXML xmlns=\"http://sashimi.sourceforge.net/schema_revision/"
         "mzXML_3.2\">\n";
  out << " <msRun scanCount=\"" << spectra.size() << "\">\n";
  std::size_t scan_number = 0;
  for (const Spectrum& spectrum : spectra) {
    ++scan_number;
    std::vector<std::uint8_t> payload(spectrum.size() * 8);
    for (std::size_t i = 0; i < spectrum.size(); ++i) {
      to_network_float(static_cast<float>(spectrum.peaks()[i].mz),
                       payload.data() + i * 8);
      to_network_float(static_cast<float>(spectrum.peaks()[i].intensity),
                       payload.data() + i * 8 + 4);
    }
    out << "  <scan num=\"" << scan_number << "\" msLevel=\"2\" peaksCount=\""
        << spectrum.size() << "\">\n";
    out << "   <precursorMz precursorCharge=\"" << spectrum.charge() << "\">"
        << std::fixed << std::setprecision(6) << spectrum.precursor_mz()
        << "</precursorMz>\n";
    out << "   <peaks precision=\"32\" byteOrder=\"network\" "
           "contentType=\"m/z-int\">"
        << base64_encode(payload.data(), payload.size()) << "</peaks>\n";
    out << "  </scan>\n";
  }
  out << " </msRun>\n</mzXML>\n";
}

void write_mzxml_file(const std::string& path,
                      const std::vector<Spectrum>& spectra) {
  std::ofstream out(path);
  if (!out) throw IoError("cannot create mzXML file: " + path);
  write_mzxml(out, spectra);
}

}  // namespace msp
