// Hit-report serialization (step S3: "reporting at most τ hits per query to
// an output file"). TSV with a fixed column set so downstream tools and the
// validation tests can diff outputs across algorithm variants byte-for-byte.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace msp {

struct HitRecord {
  std::string query_title;
  std::uint32_t rank = 0;       ///< 1-based within the query's top-τ
  std::string protein_id;
  std::string peptide;          ///< candidate residue string
  char fragment_end = 'P';      ///< 'P' prefix / 'S' suffix / 'I' internal
  double candidate_mass = 0.0;
  double score = 0.0;
};

void write_hits(std::ostream& out, const std::vector<HitRecord>& hits);
void write_hits_file(const std::string& path,
                     const std::vector<HitRecord>& hits);

/// Round-trip reader (used by tests and by the examples' summaries).
std::vector<HitRecord> read_hits(std::istream& in);
std::vector<HitRecord> read_hits_file(const std::string& path);

}  // namespace msp
