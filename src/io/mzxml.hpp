// mzXML-lite reader/writer.
//
// mzXML was the de-facto instrument-output format of the paper's era
// (X!Tandem, SEQUEST and MSPolygraph pipelines all consumed it). Peak data
// is base64-encoded big-endian float pairs inside a <peaks> element; scan
// metadata lives in attributes. We implement the subset real MS/MS search
// needs: msLevel-2 <scan> elements with <precursorMz> and 32-bit network-
// order <peaks> — enough to round-trip our own files and to read typical
// converter output. Not implemented: zlib-compressed peaks, 64-bit
// payloads, indexed footers (readers skip what they don't know).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "spectra/spectrum.hpp"

namespace msp {

/// Parse all msLevel="2" scans. Throws IoError on structural problems
/// (unterminated elements, undecodable peak payloads, missing precursor).
std::vector<Spectrum> read_mzxml(std::istream& in);
std::vector<Spectrum> read_mzxml_file(const std::string& path);

void write_mzxml(std::ostream& out, const std::vector<Spectrum>& spectra);
void write_mzxml_file(const std::string& path,
                      const std::vector<Spectrum>& spectra);

}  // namespace msp
