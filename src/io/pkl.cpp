#include "io/pkl.hpp"

#include <fstream>
#include <iomanip>
#include <sstream>

#include "util/error.hpp"
#include "util/str.hpp"

namespace msp {

std::vector<Spectrum> read_pkl(std::istream& in) {
  std::vector<Spectrum> spectra;
  std::string line;
  std::size_t line_number = 0;

  bool in_block = false;
  double precursor_mz = 0.0;
  int charge = 1;
  std::vector<Peak> peaks;

  auto flush = [&] {
    if (!in_block) return;
    spectra.emplace_back(std::move(peaks), precursor_mz, charge,
                         "pkl_" + std::to_string(spectra.size()));
    peaks = {};
    in_block = false;
  };

  while (std::getline(in, line)) {
    ++line_number;
    const std::string text = trim(line);
    if (text.empty()) {
      flush();
      continue;
    }
    std::istringstream fields(text);
    if (!in_block) {
      // Header: precursor m/z, precursor intensity (ignored), charge.
      double intensity = 0.0;
      if (!(fields >> precursor_mz >> intensity >> charge) ||
          precursor_mz <= 0.0 || charge < 1)
        throw IoError("PKL: bad header on line " + std::to_string(line_number) +
                      ": '" + text + "'");
      in_block = true;
    } else {
      Peak peak;
      if (!(fields >> peak.mz >> peak.intensity))
        throw IoError("PKL: bad peak on line " + std::to_string(line_number) +
                      ": '" + text + "'");
      peaks.push_back(peak);
    }
  }
  flush();
  return spectra;
}

std::vector<Spectrum> read_pkl_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw IoError("cannot open PKL file: " + path);
  return read_pkl(in);
}

void write_pkl(std::ostream& out, const std::vector<Spectrum>& spectra) {
  out << std::fixed;
  for (const Spectrum& spectrum : spectra) {
    out << std::setprecision(6) << spectrum.precursor_mz() << ' '
        << std::setprecision(2) << std::max(1.0, spectrum.max_intensity())
        << ' ' << spectrum.charge() << '\n';
    for (const Peak& peak : spectrum.peaks())
      out << std::setprecision(4) << peak.mz << ' ' << std::setprecision(4)
          << peak.intensity << '\n';
    out << '\n';
  }
}

void write_pkl_file(const std::string& path,
                    const std::vector<Spectrum>& spectra) {
  std::ofstream out(path);
  if (!out) throw IoError("cannot create PKL file: " + path);
  write_pkl(out, spectra);
}

}  // namespace msp
