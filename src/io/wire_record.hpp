// Shared framing for magic-tagged wire records.
//
// Several shard-pack sections are self-describing records: an 8-byte ASCII
// magic (so a reader can peek whether the record is present at all — the
// magics cannot collide with a legacy image's leading count field) followed,
// for versioned records, by a u32 format version. The histogram record
// ("MSPARHST"), the indexed-shard lead-in ("MSPARIDX"), and the fragment-ion
// index record ("MSPARFRG") all share this shape; the helpers below are the
// one place the peek/validate/reject logic lives, so every record family
// fails corruption the same way (IoError with a record-specific message).
#pragma once

#include <cstdint>

#include "core/wire.hpp"

namespace msp::wire {

/// Append an unversioned record lead-in (just the magic).
void put_record_magic(Writer& writer, std::uint64_t magic);

/// Append a versioned record header (magic + u32 version).
void put_record_header(Writer& writer, std::uint64_t magic,
                       std::uint32_t version);

/// True when the reader is positioned at `magic` (nothing is consumed).
/// False on short payloads too, so callers can probe optional trailers.
bool peek_record(Reader& reader, std::uint64_t magic);

/// Consume and validate an unversioned record lead-in. Throws IoError
/// ("<what>: bad magic") when the next 8 bytes are not `magic`.
void get_record_magic(Reader& reader, std::uint64_t magic, const char* what);

/// Consume and validate a versioned record header: the magic must match and
/// the version must equal `version` exactly (records are versioned so a
/// future format bump fails loudly instead of misparsing). Throws IoError
/// with "<what>: bad magic" / "<what>: unsupported version N".
void get_record_header(Reader& reader, std::uint64_t magic,
                       std::uint32_t version, const char* what);

}  // namespace msp::wire
