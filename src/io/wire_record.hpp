// Shared framing for magic-tagged wire records.
//
// Several shard-pack sections are self-describing records: an 8-byte ASCII
// magic (so a reader can peek whether the record is present at all — the
// magics cannot collide with a legacy image's leading count field) followed,
// for versioned records, by a u32 format version. The histogram record
// ("MSPARHST"), the indexed-shard lead-in ("MSPARIDX"), and the fragment-ion
// index record ("MSPARFRG") all share this shape; the helpers below are the
// one place the peek/validate/reject logic lives, so every record family
// fails corruption the same way (IoError with a record-specific message).
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <type_traits>
#include <vector>

#include "core/wire.hpp"

namespace msp::wire {

/// Append an unversioned record lead-in (just the magic).
void put_record_magic(Writer& writer, std::uint64_t magic);

/// Append a versioned record header (magic + u32 version).
void put_record_header(Writer& writer, std::uint64_t magic,
                       std::uint32_t version);

/// True when the reader is positioned at `magic` (nothing is consumed).
/// False on short payloads too, so callers can probe optional trailers.
bool peek_record(Reader& reader, std::uint64_t magic);

/// Consume and validate an unversioned record lead-in. Throws IoError
/// ("<what>: bad magic") when the next 8 bytes are not `magic`.
void get_record_magic(Reader& reader, std::uint64_t magic, const char* what);

/// Consume and validate a versioned record header: the magic must match and
/// the version must equal `version` exactly (records are versioned so a
/// future format bump fails loudly instead of misparsing). Throws IoError
/// with "<what>: bad magic" / "<what>: unsupported version N".
void get_record_header(Reader& reader, std::uint64_t magic,
                       std::uint32_t version, const char* what);

/// Decode a fetched byte payload into typed records: the payload must be a
/// whole number of `T`s (IoError otherwise — a short RMA fetch or corrupted
/// band would misparse every following record), and the bytes land in `out`
/// via one memcpy. This is the single sanctioned bytes→typed decode path;
/// the mspar-unchecked-wire-read tidy check flags raw memcpy/
/// reinterpret_cast decodes that bypass it.
template <typename T>
std::span<const T> checked_array_copy(std::span<const char> bytes,
                                      std::vector<T>& out, const char* what) {
  static_assert(std::is_trivially_copyable_v<T>,
                "wire records must be trivially copyable");
  if (bytes.size() % sizeof(T) != 0)
    throw IoError(std::string(what) + ": payload of " +
                  std::to_string(bytes.size()) +
                  " bytes is not a whole number of " +
                  std::to_string(sizeof(T)) + "-byte records");
  out.resize(bytes.size() / sizeof(T));
  if (!out.empty()) std::memcpy(out.data(), bytes.data(), bytes.size());
  return {out.data(), out.size()};
}

}  // namespace msp::wire
