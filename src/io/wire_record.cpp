#include "io/wire_record.hpp"

#include <string>

#include "util/error.hpp"

namespace msp::wire {

void put_record_magic(Writer& writer, std::uint64_t magic) {
  writer.put_u64(magic);
}

void put_record_header(Writer& writer, std::uint64_t magic,
                       std::uint32_t version) {
  writer.put_u64(magic);
  writer.put_u32(version);
}

bool peek_record(Reader& reader, std::uint64_t magic) {
  return reader.remaining() >= sizeof(std::uint64_t) &&
         reader.peek_u64() == magic;
}

void get_record_magic(Reader& reader, std::uint64_t magic, const char* what) {
  if (reader.get_u64() != magic)
    throw IoError(std::string(what) + ": bad magic");
}

void get_record_header(Reader& reader, std::uint64_t magic,
                       std::uint32_t version, const char* what) {
  get_record_magic(reader, magic, what);
  const std::uint32_t seen = reader.get_u32();
  if (seen != version)
    throw IoError(std::string(what) + ": unsupported version " +
                  std::to_string(seen));
}

}  // namespace msp::wire
