// PKL (Micromass/ProteinLynx) peak-list reader/writer — the other common
// plain-text interchange format besides MGF; X!Tandem and Mascot both
// accept it. One block per spectrum: a "precursor_mz intensity charge"
// header line, then "mz intensity" peak lines, separated by blank lines.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "spectra/spectrum.hpp"

namespace msp {

/// Parse every PKL block. Titles are synthesized ("pkl_0", "pkl_1", ...)
/// since the format carries none. Throws IoError on malformed lines.
std::vector<Spectrum> read_pkl(std::istream& in);
std::vector<Spectrum> read_pkl_file(const std::string& path);

void write_pkl(std::ostream& out, const std::vector<Spectrum>& spectra);
void write_pkl_file(const std::string& path,
                    const std::vector<Spectrum>& spectra);

}  // namespace msp
