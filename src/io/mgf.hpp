// Mascot Generic Format (MGF) reader/writer — the de-facto interchange
// format for MS/MS peak lists, so users can feed real instrument exports to
// the engine in place of our synthetic queries.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "spectra/spectrum.hpp"

namespace msp {

/// Parse all BEGIN IONS / END IONS blocks. Recognized headers: TITLE,
/// PEPMASS (m/z [intensity]), CHARGE ("2+", "2", "+2"), RTINSECONDS
/// (ignored). Unknown KEY=VALUE headers are skipped. Throws IoError on
/// structural problems (unterminated block, bad peak line, missing PEPMASS).
std::vector<Spectrum> read_mgf(std::istream& in);
std::vector<Spectrum> read_mgf_file(const std::string& path);

void write_mgf(std::ostream& out, const std::vector<Spectrum>& spectra);
void write_mgf_file(const std::string& path,
                    const std::vector<Spectrum>& spectra);

}  // namespace msp
