#include "io/results_io.hpp"

#include <fstream>
#include <iomanip>
#include <sstream>

#include "util/error.hpp"
#include "util/str.hpp"

namespace msp {

namespace {
constexpr const char* kHeader =
    "query\trank\tprotein\tpeptide\tend\tmass\tscore";
}

void write_hits(std::ostream& out, const std::vector<HitRecord>& hits) {
  out << kHeader << '\n';
  out << std::fixed;
  for (const HitRecord& hit : hits) {
    out << hit.query_title << '\t' << hit.rank << '\t' << hit.protein_id
        << '\t' << hit.peptide << '\t' << hit.fragment_end << '\t'
        << std::setprecision(4) << hit.candidate_mass << '\t'
        << std::setprecision(6) << hit.score << '\n';
  }
}

void write_hits_file(const std::string& path,
                     const std::vector<HitRecord>& hits) {
  std::ofstream out(path);
  if (!out) throw IoError("cannot create hits file: " + path);
  write_hits(out, hits);
}

std::vector<HitRecord> read_hits(std::istream& in) {
  std::vector<HitRecord> hits;
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    if (line_number == 1) {
      if (line != kHeader)
        throw IoError("hits file: unexpected header '" + line + "'");
      continue;
    }
    const auto fields = split(line, '\t');
    if (fields.size() != 7)
      throw IoError("hits file: expected 7 fields on line " +
                    std::to_string(line_number));
    HitRecord hit;
    hit.query_title = fields[0];
    hit.rank = static_cast<std::uint32_t>(std::stoul(fields[1]));
    hit.protein_id = fields[2];
    hit.peptide = fields[3];
    if (fields[4] != "P" && fields[4] != "S" && fields[4] != "I")
      throw IoError("hits file: bad end marker on line " +
                    std::to_string(line_number));
    hit.fragment_end = fields[4][0];
    hit.candidate_mass = std::stod(fields[5]);
    hit.score = std::stod(fields[6]);
    hits.push_back(std::move(hit));
  }
  return hits;
}

std::vector<HitRecord> read_hits_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw IoError("cannot open hits file: " + path);
  return read_hits(in);
}

}  // namespace msp
