#include "io/fasta.hpp"

#include <fstream>
#include <sstream>

#include "util/error.hpp"
#include "util/str.hpp"

namespace msp {
namespace {

void validate_and_append(std::string& residues, std::string_view line,
                         std::size_t line_number) {
  for (char c : line) {
    if (c == '\r' || c == ' ' || c == '\t') continue;  // tolerate whitespace
    if (c == '*') continue;  // translated stop codons appear in ORF databases
    if (c < 'A' || c > 'Z') {
      if (c >= 'a' && c <= 'z') {
        residues.push_back(static_cast<char>(c - 'a' + 'A'));
        continue;
      }
      throw IoError("FASTA: invalid residue character '" + std::string(1, c) +
                    "' on line " + std::to_string(line_number));
    }
    residues.push_back(c);
  }
}

std::string header_id(std::string_view header_line) {
  // ">id description..." → "id". Header line arrives without the '>'.
  const std::string text = trim(header_line);
  const std::size_t space = text.find_first_of(" \t");
  return space == std::string::npos ? text : text.substr(0, space);
}

}  // namespace

ProteinDatabase read_fasta(std::istream& in) {
  ProteinDatabase db;
  std::string line;
  std::size_t line_number = 0;
  Protein current;
  bool in_record = false;

  auto flush = [&] {
    if (!in_record) return;
    if (current.id.empty())
      throw IoError("FASTA: record with empty id before line " +
                    std::to_string(line_number));
    db.proteins.push_back(std::move(current));
    current = Protein{};
  };

  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty() || line == "\r") continue;
    if (line[0] == '>') {
      flush();
      in_record = true;
      current.id = header_id(std::string_view(line).substr(1));
    } else {
      if (!in_record)
        throw IoError("FASTA: sequence data before first header at line " +
                      std::to_string(line_number));
      validate_and_append(current.residues, line, line_number);
    }
  }
  flush();
  return db;
}

ProteinDatabase read_fasta_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw IoError("cannot open FASTA file: " + path);
  return read_fasta(in);
}

ProteinDatabase read_fasta_string(std::string_view content) {
  std::istringstream in{std::string(content)};
  return read_fasta(in);
}

ByteRange chunk_range(std::size_t total_bytes, std::size_t rank,
                      std::size_t p) {
  MSP_CHECK_MSG(p >= 1, "chunk_range needs p >= 1");
  MSP_CHECK_MSG(rank < p, "rank out of range");
  const std::size_t base = total_bytes / p;
  const std::size_t extra = total_bytes % p;
  // First `extra` chunks get one additional byte.
  const std::size_t begin = rank * base + std::min(rank, extra);
  const std::size_t len = base + (rank < extra ? 1 : 0);
  return ByteRange{begin, begin + len};
}

ProteinDatabase read_fasta_chunk(std::string_view content,
                                 std::size_t chunk_begin,
                                 std::size_t chunk_end) {
  MSP_CHECK_MSG(chunk_begin <= chunk_end && chunk_end <= content.size(),
                "chunk range out of bounds");
  // Ownership rule: a record is ours iff its header '>' byte is in range.
  // Find the first header at or after chunk_begin.
  std::size_t pos = chunk_begin;
  if (pos > 0 || (pos < content.size() && content[pos] != '>')) {
    // Skip forward to a '>' that starts a line (preceded by '\n' or BOF).
    while (pos < chunk_end) {
      if (content[pos] == '>' && (pos == 0 || content[pos - 1] == '\n')) break;
      ++pos;
    }
  }
  if (pos >= chunk_end) return ProteinDatabase{};

  // Read forward past chunk_end until the record that *started* before
  // chunk_end is complete (boundary repair, per step A1).
  std::size_t stop = chunk_end;
  while (stop < content.size()) {
    if (content[stop] == '>' && content[stop - 1] == '\n') break;
    ++stop;
  }
  std::istringstream window{std::string(content.substr(pos, stop - pos))};
  return read_fasta(window);
}

void write_fasta(std::ostream& out, const ProteinDatabase& db,
                 std::size_t width) {
  MSP_CHECK_MSG(width >= 1, "line width must be >= 1");
  for (const Protein& protein : db.proteins) {
    out << '>' << protein.id << '\n';
    for (std::size_t i = 0; i < protein.residues.size(); i += width) {
      out << std::string_view(protein.residues).substr(i, width) << '\n';
    }
  }
}

void write_fasta_file(const std::string& path, const ProteinDatabase& db,
                      std::size_t width) {
  std::ofstream out(path);
  if (!out) throw IoError("cannot create FASTA file: " + path);
  write_fasta(out, db, width);
}

std::string to_fasta_string(const ProteinDatabase& db, std::size_t width) {
  std::ostringstream os;
  write_fasta(os, db, width);
  return os.str();
}

}  // namespace msp
