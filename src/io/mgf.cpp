#include "io/mgf.hpp"

#include <charconv>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "util/error.hpp"
#include "util/str.hpp"

namespace msp {
namespace {

int parse_charge(const std::string& value, std::size_t line_number) {
  std::string digits;
  bool negative = false;
  for (char c : value) {
    if (c == '-') negative = true;
    if (c >= '0' && c <= '9') digits.push_back(c);
  }
  if (digits.empty() || negative)
    throw IoError("MGF: unsupported CHARGE '" + value + "' on line " +
                  std::to_string(line_number));
  return std::stoi(digits);
}

bool parse_peak_line(const std::string& line, Peak& peak) {
  std::istringstream is(line);
  double mz = 0, intensity = 0;
  if (!(is >> mz)) return false;
  if (!(is >> intensity)) intensity = 1.0;  // MGF allows intensity-less rows
  peak = Peak{mz, intensity};
  return true;
}

}  // namespace

std::vector<Spectrum> read_mgf(std::istream& in) {
  std::vector<Spectrum> spectra;
  std::string line;
  std::size_t line_number = 0;

  bool in_block = false;
  std::string title;
  double pepmass = 0.0;
  int charge = 1;
  bool have_pepmass = false;
  std::vector<Peak> peaks;

  while (std::getline(in, line)) {
    ++line_number;
    const std::string text = trim(line);
    if (text.empty() || text[0] == '#') continue;

    if (text == "BEGIN IONS") {
      if (in_block)
        throw IoError("MGF: nested BEGIN IONS on line " +
                      std::to_string(line_number));
      in_block = true;
      title.clear();
      pepmass = 0.0;
      charge = 1;
      have_pepmass = false;
      peaks.clear();
      continue;
    }
    if (text == "END IONS") {
      if (!in_block)
        throw IoError("MGF: END IONS without BEGIN IONS on line " +
                      std::to_string(line_number));
      if (!have_pepmass)
        throw IoError("MGF: block ending on line " +
                      std::to_string(line_number) + " lacks PEPMASS");
      spectra.emplace_back(std::move(peaks), pepmass, charge, std::move(title));
      peaks = {};
      title = {};
      in_block = false;
      continue;
    }
    if (!in_block) continue;  // tolerate preamble junk between blocks

    if (const auto eq = text.find('='); eq != std::string::npos &&
                                        text.find(' ') > eq) {
      const std::string key = to_upper(text.substr(0, eq));
      const std::string value = trim(text.substr(eq + 1));
      if (key == "TITLE") {
        title = value;
      } else if (key == "PEPMASS") {
        std::istringstream is(value);
        if (!(is >> pepmass) || pepmass <= 0.0)
          throw IoError("MGF: bad PEPMASS on line " +
                        std::to_string(line_number));
        have_pepmass = true;
      } else if (key == "CHARGE") {
        charge = parse_charge(value, line_number);
      }
      // Other KEY=VALUE headers (SCANS, RTINSECONDS, ...) are ignored.
      continue;
    }

    Peak peak;
    if (!parse_peak_line(text, peak))
      throw IoError("MGF: unparseable peak line " +
                    std::to_string(line_number) + ": '" + text + "'");
    peaks.push_back(peak);
  }
  if (in_block) throw IoError("MGF: unterminated BEGIN IONS block at EOF");
  return spectra;
}

std::vector<Spectrum> read_mgf_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw IoError("cannot open MGF file: " + path);
  return read_mgf(in);
}

void write_mgf(std::ostream& out, const std::vector<Spectrum>& spectra) {
  out << std::fixed;
  for (const Spectrum& spectrum : spectra) {
    out << "BEGIN IONS\n";
    if (!spectrum.title().empty()) out << "TITLE=" << spectrum.title() << '\n';
    out << "PEPMASS=" << std::setprecision(6) << spectrum.precursor_mz()
        << '\n';
    out << "CHARGE=" << spectrum.charge() << "+\n";
    for (const Peak& peak : spectrum.peaks())
      out << std::setprecision(4) << peak.mz << ' ' << std::setprecision(2)
          << peak.intensity << '\n';
    out << "END IONS\n";
  }
}

void write_mgf_file(const std::string& path,
                    const std::vector<Spectrum>& spectra) {
  std::ofstream out(path);
  if (!out) throw IoError("cannot create MGF file: " + path);
  write_mgf(out, spectra);
}

}  // namespace msp
