// FASTA protein database reader/writer.
//
// Besides the ordinary whole-file reader, this module implements the paper's
// loading step A1: "the loading step loads the database sequence file in
// parallel such that processor Pi receives roughly the i-th N/p byte chunk of
// the file. Care is taken to ensure sequences at the boundaries are fully
// read." read_fasta_chunk() realizes that rule deterministically: a record
// belongs to the chunk whose byte range contains the '>' of its header, so
// the p chunks partition the records with no overlap and no loss.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <string_view>

#include "mass/peptide.hpp"

namespace msp {

/// Parse an entire FASTA stream. Throws IoError on malformed input
/// (content before the first header, or residue characters outside A-Z).
ProteinDatabase read_fasta(std::istream& in);
ProteinDatabase read_fasta_file(const std::string& path);
ProteinDatabase read_fasta_string(std::string_view content);

/// Parse only the records whose header '>' byte lies in
/// [chunk_begin, chunk_end) of `content`. Records straddling chunk_end are
/// read to completion (boundary repair); a chunk that begins mid-record
/// skips forward to the next header.
ProteinDatabase read_fasta_chunk(std::string_view content,
                                 std::size_t chunk_begin,
                                 std::size_t chunk_end);

/// Byte range [begin, end) of chunk `rank` of `p` equal chunks of a
/// `total_bytes`-long file (the remainder spread over the first chunks).
struct ByteRange {
  std::size_t begin = 0;
  std::size_t end = 0;
};
ByteRange chunk_range(std::size_t total_bytes, std::size_t rank, std::size_t p);

/// Write `db` as FASTA with lines wrapped at `width` residues.
void write_fasta(std::ostream& out, const ProteinDatabase& db,
                 std::size_t width = 70);
void write_fasta_file(const std::string& path, const ProteinDatabase& db,
                      std::size_t width = 70);

/// Serialize to an in-memory FASTA string (used by chunk-loading tests and
/// by the simulated parallel loader, which treats the string as "the file").
std::string to_fasta_string(const ProteinDatabase& db, std::size_t width = 70);

}  // namespace msp
