#include "spectra/preprocess.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/error.hpp"

namespace msp {

Spectrum preprocess(const Spectrum& spectrum,
                    const PreprocessOptions& options) {
  MSP_CHECK_MSG(options.window_da > 0.0, "window must be positive");
  MSP_CHECK_MSG(options.peaks_per_window >= 1,
                "need at least 1 peak per window");

  std::vector<Peak> peaks = spectrum.peaks();

  if (options.precursor_exclusion_da > 0.0) {
    const double lo = spectrum.precursor_mz() - options.precursor_exclusion_da;
    const double hi = spectrum.precursor_mz() + options.precursor_exclusion_da;
    std::erase_if(peaks,
                  [&](const Peak& p) { return p.mz >= lo && p.mz <= hi; });
  }

  if (options.sqrt_transform)
    for (Peak& peak : peaks) peak.intensity = std::sqrt(peak.intensity);

  // Window filter: peaks are already sorted by m/z (Spectrum invariant);
  // select top-k by intensity within each fixed window.
  std::vector<Peak> kept;
  kept.reserve(peaks.size());
  std::size_t begin = 0;
  while (begin < peaks.size()) {
    const double window_end =
        (std::floor(peaks[begin].mz / options.window_da) + 1.0) *
        options.window_da;
    std::size_t end = begin;
    while (end < peaks.size() && peaks[end].mz < window_end) ++end;
    std::vector<Peak> window(peaks.begin() + static_cast<long>(begin),
                             peaks.begin() + static_cast<long>(end));
    if (window.size() > options.peaks_per_window) {
      std::nth_element(
          window.begin(),
          window.begin() + static_cast<long>(options.peaks_per_window),
          window.end(), [](const Peak& a, const Peak& b) {
            return a.intensity > b.intensity;
          });
      window.resize(options.peaks_per_window);
    }
    kept.insert(kept.end(), window.begin(), window.end());
    begin = end;
  }

  if (options.normalize_max && !kept.empty()) {
    double peak_max = 0.0;
    for (const Peak& p : kept) peak_max = std::max(peak_max, p.intensity);
    if (peak_max > 0.0)
      for (Peak& p : kept) p.intensity /= peak_max;
  }

  return Spectrum(std::move(kept), spectrum.precursor_mz(), spectrum.charge(),
                  spectrum.title());
}

}  // namespace msp
