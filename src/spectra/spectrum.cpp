#include "spectra/spectrum.hpp"

#include <algorithm>
#include <cmath>

#include "mass/amino_acid.hpp"
#include "util/error.hpp"

namespace msp {

Spectrum::Spectrum(std::vector<Peak> peaks, double precursor_mz, int charge,
                   std::string title)
    : precursor_mz_(precursor_mz), charge_(charge), title_(std::move(title)) {
  MSP_CHECK_MSG(charge >= 1, "spectrum charge must be >= 1");
  MSP_CHECK_MSG(precursor_mz > 0.0, "precursor m/z must be positive");
  peaks_.reserve(peaks.size());
  for (const Peak& peak : peaks)
    if (peak.mz > 0.0 && peak.intensity > 0.0) peaks_.push_back(peak);
  std::sort(peaks_.begin(), peaks_.end(),
            [](const Peak& a, const Peak& b) { return a.mz < b.mz; });
}

double Spectrum::parent_mass() const {
  return mass_from_mz(precursor_mz_, charge_);
}

double Spectrum::min_mz() const {
  return peaks_.empty() ? 0.0 : peaks_.front().mz;
}

double Spectrum::max_mz() const {
  return peaks_.empty() ? 0.0 : peaks_.back().mz;
}

double Spectrum::total_intensity() const {
  double total = 0.0;
  for (const Peak& peak : peaks_) total += peak.intensity;
  return total;
}

double Spectrum::max_intensity() const {
  double peak_max = 0.0;
  for (const Peak& peak : peaks_) peak_max = std::max(peak_max, peak.intensity);
  return peak_max;
}

BinnedSpectrum::BinnedSpectrum(const Spectrum& spectrum, double bin_width)
    : bin_width_(bin_width) {
  MSP_CHECK_MSG(bin_width > 0.0, "bin width must be positive");
  if (spectrum.empty()) return;
  const auto max_bin =
      static_cast<std::size_t>(spectrum.max_mz() / bin_width_) + 1;
  intensities_.assign(max_bin + 1, 0.0f);
  for (const Peak& peak : spectrum.peaks()) {
    const auto bin = static_cast<std::size_t>(peak.mz / bin_width_);
    if (intensities_[bin] == 0.0f) ++peak_bins_;
    intensities_[bin] =
        std::max(intensities_[bin], static_cast<float>(peak.intensity));
  }
}

std::size_t BinnedSpectrum::bin_of(double mz) const {
  if (mz < 0.0 || bin_width_ <= 0.0) return static_cast<std::size_t>(-1);
  const auto bin = static_cast<std::size_t>(mz / bin_width_);
  if (bin >= intensities_.size()) return static_cast<std::size_t>(-1);
  return bin;
}

double BinnedSpectrum::intensity_at(double mz) const {
  const std::size_t bin = bin_of(mz);
  if (bin == static_cast<std::size_t>(-1)) return 0.0;
  return intensities_[bin];
}

bool BinnedSpectrum::has_peak_at(double mz) const {
  return intensity_at(mz) > 0.0;
}

}  // namespace msp
