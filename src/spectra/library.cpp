#include "spectra/library.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "mass/amino_acid.hpp"
#include "util/error.hpp"

namespace msp {

Spectrum build_consensus(std::string_view peptide,
                         const std::vector<Spectrum>& replicates,
                         const ConsensusOptions& options) {
  MSP_CHECK_MSG(!replicates.empty(), "consensus needs at least one replicate");
  MSP_CHECK_MSG(options.bin_width > 0.0, "bin width must be positive");
  MSP_CHECK_MSG(options.min_replicate_fraction > 0.0 &&
                    options.min_replicate_fraction <= 1.0,
                "replicate fraction must be in (0,1]");

  // Per-bin presence counts and intensity sums across replicates.
  // Measurement jitter can land the same fragment on either side of a bin
  // boundary in different replicates, so presence is counted over a
  // ±1-bin neighborhood and one consensus peak is kept per local maximum.
  std::map<std::size_t, std::pair<std::size_t, double>> bins;
  for (const Spectrum& replicate : replicates) {
    std::map<std::size_t, double> replicate_bins;  // max intensity per bin
    for (const Peak& peak : replicate.peaks()) {
      const auto bin = static_cast<std::size_t>(peak.mz / options.bin_width);
      auto [it, inserted] = replicate_bins.try_emplace(bin, peak.intensity);
      if (!inserted) it->second = std::max(it->second, peak.intensity);
    }
    for (const auto& [bin, intensity] : replicate_bins) {
      auto& [count, total] = bins[bin];
      ++count;
      total += intensity;
    }
  }

  auto stats_at = [&](std::size_t bin) -> std::pair<std::size_t, double> {
    const auto it = bins.find(bin);
    return it == bins.end() ? std::pair<std::size_t, double>{0, 0.0}
                            : it->second;
  };
  auto neighborhood = [&](std::size_t bin) {
    auto [count, total] = stats_at(bin);
    if (bin > 0) {
      const auto [c, t] = stats_at(bin - 1);
      count += c;
      total += t;
    }
    const auto [c, t] = stats_at(bin + 1);
    count += c;
    total += t;
    return std::pair<std::size_t, double>{count, total};
  };

  const auto required = static_cast<std::size_t>(
      options.min_replicate_fraction * static_cast<double>(replicates.size()) +
      0.999);  // ceil
  std::vector<Peak> peaks;
  for (const auto& [bin, stats] : bins) {
    const auto [count, total] = neighborhood(bin);
    if (count < required) continue;
    // Local maximum by neighborhood intensity; ties resolve to the lower
    // bin so one fragment yields exactly one consensus peak.
    const double here = stats.second;
    const double left = stats_at(bin - 1).second;
    const double right = stats_at(bin + 1).second;
    if (here < left || (bin > 0 && here == left)) continue;
    if (here < right) continue;
    const double center = (static_cast<double>(bin) + 0.5) * options.bin_width;
    peaks.push_back(Peak{center, total / static_cast<double>(count)});
  }

  // Parent mass from the peptide itself — library entries are identified.
  const double parent = peptide_mass(peptide);
  return Spectrum(std::move(peaks), mz_from_mass(parent, 1), 1,
                  std::string(peptide));
}

void SpectralLibrary::add(std::string peptide, Spectrum consensus) {
  entries_.insert_or_assign(std::move(peptide), std::move(consensus));
}

void SpectralLibrary::add_replicates(std::string peptide,
                                     const std::vector<Spectrum>& replicates,
                                     const ConsensusOptions& options) {
  Spectrum consensus = build_consensus(peptide, replicates, options);
  entries_.insert_or_assign(std::move(peptide), std::move(consensus));
}

const Spectrum* SpectralLibrary::find(std::string_view peptide) const {
  const auto it = entries_.find(peptide);
  return it == entries_.end() ? nullptr : &it->second;
}

void SpectralLibrary::save(std::ostream& out) const {
  out << std::fixed;
  for (const auto& [peptide, spectrum] : entries_) {
    out << peptide << ' ' << spectrum.size() << '\n';
    for (const Peak& peak : spectrum.peaks())
      out << std::setprecision(4) << peak.mz << ' ' << std::setprecision(6)
          << peak.intensity << '\n';
  }
}

SpectralLibrary SpectralLibrary::load(std::istream& in) {
  SpectralLibrary library;
  std::string peptide;
  std::size_t count = 0;
  while (in >> peptide >> count) {
    std::vector<Peak> peaks;
    peaks.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      Peak peak;
      if (!(in >> peak.mz >> peak.intensity))
        throw IoError("spectral library: truncated entry for " + peptide);
      peaks.push_back(peak);
    }
    const double parent = peptide_mass(peptide);
    library.add(peptide, Spectrum(std::move(peaks), mz_from_mass(parent, 1), 1,
                                  peptide));
  }
  return library;
}

}  // namespace msp
