#include "spectra/generator.hpp"

#include <cmath>
#include <cstdint>

#include "mass/amino_acid.hpp"
#include "mass/isotope.hpp"
#include "spectra/theoretical.hpp"
#include "util/error.hpp"

namespace msp {

Spectrum simulate_spectrum(std::string_view peptide,
                           const SpectrumNoiseModel& model, Xoshiro256& rng,
                           std::string title) {
  MSP_CHECK_MSG(peptide.size() >= 2, "peptide too short to fragment");
  MSP_CHECK_MSG(model.peak_dropout >= 0.0 && model.peak_dropout < 1.0,
                "dropout must be in [0,1)");
  MSP_CHECK_MSG(model.charge >= 1, "charge must be >= 1");

  const auto ions = fragment_ions(peptide);
  std::vector<Peak> peaks;
  peaks.reserve(ions.size() + 16);

  // Stable per-(peptide, ion) fragmentation propensity: seeded from the
  // peptide content and the ion identity only, so every replicate of the
  // same peptide shares the same true intensity pattern.
  std::uint64_t peptide_key = 0xcbf29ce484222325ULL;  // FNV-1a
  for (char c : peptide)
    peptide_key =
        (peptide_key ^ static_cast<std::uint64_t>(c)) * 0x100000001b3ULL;

  double max_mz = 0.0;
  for (const FragmentIon& ion : ions) {
    max_mz = std::max(max_mz, ion.mz);
    if (rng.uniform() < model.peak_dropout) continue;  // fragment not observed
    const double mz = ion.mz + model.mz_sigma_da * rng.normal();
    // Base intensity mirrors model_spectrum's b/y weighting; lognormal
    // variation models shot-to-shot abundance differences.
    const double base = ion.type == FragmentIon::Type::kY ? 1.0 : 0.6;
    double propensity = 1.0;
    if (model.fragmentation_sigma > 0.0) {
      Xoshiro256 ion_rng(peptide_key ^
                         (static_cast<std::uint64_t>(ion.index) << 8) ^
                         static_cast<std::uint64_t>(ion.type));
      propensity = std::exp(model.fragmentation_sigma * ion_rng.normal());
    }
    const double intensity =
        base * propensity * std::exp(model.intensity_sigma * rng.normal());
    if (mz <= 0.0) continue;
    peaks.push_back(Peak{mz, intensity});
    if (model.isotope_envelopes) {
      // Satellites at +1.00336/z Da steps (13C spacing), averagine heights.
      const double fragment_mass = ion.mz - kProtonMass;  // z=1 fragments
      const auto envelope = isotope_envelope(std::max(100.0, fragment_mass));
      for (std::size_t k = 1; k < envelope.size(); ++k)
        peaks.push_back(
            Peak{mz + 1.0033548 * static_cast<double>(k),
                 intensity * envelope[k] / envelope[0]});
    }
  }

  // Chemical noise: uniform peaks over [50, max fragment m/z + 50].
  const double span = std::max(100.0, max_mz + 50.0 - 50.0);
  const auto noise_count =
      rng.poisson(model.noise_peaks_per_100da * span / 100.0);
  for (std::uint64_t i = 0; i < noise_count; ++i) {
    const double mz = rng.uniform(50.0, 50.0 + span);
    const double intensity =
        0.2 * std::exp(model.intensity_sigma * rng.normal());
    peaks.push_back(Peak{mz, intensity});
  }

  const double true_mass = peptide_mass(peptide);
  const double observed_mass =
      true_mass + model.precursor_sigma_da * rng.normal();
  if (title.empty()) title = std::string(peptide);
  return Spectrum(std::move(peaks), mz_from_mass(observed_mass, model.charge),
                  model.charge, std::move(title));
}

}  // namespace msp
