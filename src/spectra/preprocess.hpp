// Experimental-spectrum preprocessing: the denoising/normalization pass every
// search engine applies before scoring (X!Tandem, SEQUEST and MSPolygraph all
// do a variant of this).
#pragma once

#include "spectra/spectrum.hpp"

namespace msp {

struct PreprocessOptions {
  /// Keep at most this many most-intense peaks per `window_da` window.
  std::size_t peaks_per_window = 6;
  double window_da = 100.0;
  /// Apply sqrt to intensities (variance stabilization) before windowing.
  bool sqrt_transform = true;
  /// Rescale so the maximum intensity is 1.
  bool normalize_max = true;
  /// Remove peaks within this distance of the precursor m/z (unfragmented
  /// parent contaminates scoring); 0 disables.
  double precursor_exclusion_da = 2.0;
};

/// Returns a cleaned copy of `spectrum`. Deterministic, order-independent.
Spectrum preprocess(const Spectrum& spectrum,
                    const PreprocessOptions& options = {});

}  // namespace msp
