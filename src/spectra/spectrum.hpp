// Spectrum value types.
//
// An experimental spectrum (the paper's "query") is a peak list over m/z with
// a recorded parent (precursor) m/z and charge. Scoring operates on a binned
// fixed-width vector form so that peak matching is O(1) per fragment.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace msp {

struct Peak {
  double mz = 0.0;
  double intensity = 0.0;
};

/// The standard MS/MS fragment bin width: one average amino-acid mass ladder
/// step repeats every ~1.0005 Da (the "averagine" spacing used by SEQUEST).
inline constexpr double kDefaultBinWidth = 1.0005079;

class Spectrum {
 public:
  Spectrum() = default;
  /// Peaks are sorted by m/z on construction; non-positive-intensity and
  /// non-positive-m/z peaks are dropped.
  Spectrum(std::vector<Peak> peaks, double precursor_mz, int charge,
           std::string title = {});

  const std::vector<Peak>& peaks() const { return peaks_; }
  double precursor_mz() const { return precursor_mz_; }
  int charge() const { return charge_; }
  const std::string& title() const { return title_; }

  /// Neutral parent mass implied by precursor m/z and charge — the paper's
  /// m(q), the key used for candidate windowing and for Algorithm B's sort.
  double parent_mass() const;

  std::size_t size() const { return peaks_.size(); }
  bool empty() const { return peaks_.empty(); }

  double min_mz() const;
  double max_mz() const;
  double total_intensity() const;
  double max_intensity() const;

 private:
  std::vector<Peak> peaks_;
  double precursor_mz_ = 0.0;
  int charge_ = 1;
  std::string title_;
};

/// Fixed-width binned spectrum for fast scoring. Intensities are per-bin
/// maxima (peaks falling in one bin do not stack), matching common practice.
class BinnedSpectrum {
 public:
  BinnedSpectrum() = default;
  BinnedSpectrum(const Spectrum& spectrum, double bin_width = kDefaultBinWidth);

  double bin_width() const { return bin_width_; }
  std::size_t bins() const { return intensities_.size(); }
  /// Intensity of the bin containing m/z `mz` (0 beyond the range).
  double intensity_at(double mz) const;
  /// Whether any peak fell into the bin containing `mz`.
  bool has_peak_at(double mz) const;
  std::size_t peak_bin_count() const { return peak_bins_; }

  const std::vector<float>& intensities() const { return intensities_; }

  /// Index of the bin containing `mz`, or SIZE_MAX if out of range.
  std::size_t bin_of(double mz) const;

 private:
  double bin_width_ = kDefaultBinWidth;
  std::vector<float> intensities_;
  std::size_t peak_bins_ = 0;
};

}  // namespace msp
