// Synthetic experimental-spectrum generator.
//
// Substitute for the paper's 1,210 LC-MS/MS human spectra (which are not
// publicly distributable): given a true peptide, simulate the CID
// measurement process — fragment-ion dropout, m/z jitter, intensity
// variation, chemical-noise peaks, and precursor mass error. Ground truth is
// retained in the spectrum title so identification accuracy is checkable.
#pragma once

#include <string>
#include <string_view>

#include "spectra/spectrum.hpp"
#include "util/rng.hpp"

namespace msp {

struct SpectrumNoiseModel {
  double peak_dropout = 0.25;       ///< P(fragment peak missing) — the de
                                    ///  novo literature's key difficulty
  double mz_sigma_da = 0.2;         ///< gaussian jitter on fragment m/z
  double intensity_sigma = 0.5;     ///< lognormal sigma on peak intensity
  double noise_peaks_per_100da = 2; ///< uniform chemical noise density
  double precursor_sigma_da = 0.5;  ///< gaussian error on the parent mass
  int charge = 2;                   ///< reported precursor charge
  /// Sequence-specific fragmentation propensity: real CID intensities
  /// depend on the residues flanking each cleavage, so a peptide's true
  /// intensity pattern deviates from the generic b/y model by a stable,
  /// reproducible factor per ion (lognormal with this sigma, derived
  /// deterministically from peptide+ion — identical across replicates).
  /// This is precisely the structure spectral libraries capture and
  /// idealized model spectra miss. 0 disables.
  double fragmentation_sigma = 0.0;
  /// Emit isotopic envelopes (M+1, M+2, ... satellites per fragment, with
  /// averagine-model heights — Cannon & Jarman 2003, the paper's citation
  /// [4]). Off by default so envelope-unaware tests see single lines.
  bool isotope_envelopes = false;
};

/// Simulate one experimental spectrum of `peptide`. `rng` supplies all
/// randomness; equal (peptide, model, rng state) → identical spectrum.
Spectrum simulate_spectrum(std::string_view peptide,
                           const SpectrumNoiseModel& model, Xoshiro256& rng,
                           std::string title = {});

}  // namespace msp
