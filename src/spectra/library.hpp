// Spectral libraries.
//
// Section I-A: "MSPolygraph is unique in its flexibility to handle model
// spectra in that it combines the use of highly accurate spectral
// libraries, when available, with the use of on-the-fly generation of
// sequence averaged model spectra when spectral libraries are not
// available." A library entry is a consensus spectrum built from replicate
// measurements of a known peptide; scoring against it uses the *observed*
// fragment pattern (intensities included) instead of the idealized b/y
// model, which is why library matches are more accurate.
#pragma once

#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "spectra/spectrum.hpp"

namespace msp {

struct ConsensusOptions {
  double bin_width = kDefaultBinWidth;
  /// A peak survives into the consensus iff present in at least this
  /// fraction of replicates (noise appears in few replicates, true
  /// fragments in most).
  double min_replicate_fraction = 0.5;
};

/// Build one consensus spectrum from replicate measurements of `peptide`.
/// Peak m/z are bin centers; intensities are means over the replicates
/// containing the peak. Throws InvalidArgument on an empty replicate set.
Spectrum build_consensus(std::string_view peptide,
                         const std::vector<Spectrum>& replicates,
                         const ConsensusOptions& options = {});

/// An in-memory peptide → consensus-spectrum map with text serialization.
class SpectralLibrary {
 public:
  /// Insert (or replace) the entry for `peptide`.
  void add(std::string peptide, Spectrum consensus);
  /// Convenience: build the consensus here and insert it.
  void add_replicates(std::string peptide,
                      const std::vector<Spectrum>& replicates,
                      const ConsensusOptions& options = {});

  /// nullptr when the peptide has no library entry (callers then fall back
  /// to the on-the-fly model — MSPolygraph's hybrid behaviour).
  const Spectrum* find(std::string_view peptide) const;

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// Text format: one "PEPTIDE n" header plus n "mz intensity" lines each.
  void save(std::ostream& out) const;
  static SpectralLibrary load(std::istream& in);

 private:
  std::map<std::string, Spectrum, std::less<>> entries_;
};

}  // namespace msp
